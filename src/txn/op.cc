#include "txn/op.h"

#include "util/logging.h"

namespace tdr {

std::string_view OpTypeToString(OpType type) {
  switch (type) {
    case OpType::kRead:
      return "read";
    case OpType::kWrite:
      return "write";
    case OpType::kAdd:
      return "add";
    case OpType::kSubtract:
      return "sub";
    case OpType::kAppend:
      return "append";
    case OpType::kMultiply:
      return "mul";
  }
  return "?";
}

void Op::ApplyTo(Value* value) const {
  switch (type) {
    case OpType::kRead:
      break;
    case OpType::kWrite:
      value->SetScalar(operand);
      break;
    case OpType::kAdd:
      value->SetScalar(value->AsScalar() + operand);
      break;
    case OpType::kSubtract:
      value->SetScalar(value->AsScalar() - operand);
      break;
    case OpType::kAppend:
      value->Append(operand);
      break;
    case OpType::kMultiply:
      value->SetScalar(value->AsScalar() * operand);
      break;
  }
}

std::string Op::ToString() const {
  return StrPrintf("%s(o%llu,%lld)", std::string(OpTypeToString(type)).c_str(),
                   (unsigned long long)oid, (long long)operand);
}

bool OpsCommute(const Op& a, const Op& b) {
  if (a.oid != b.oid) return true;
  if (a.type == OpType::kRead && b.type == OpType::kRead) return true;
  // A read against any write on the same object is order-sensitive.
  if (a.type == OpType::kRead || b.type == OpType::kRead) return false;
  auto is_additive = [](OpType t) {
    return t == OpType::kAdd || t == OpType::kSubtract;
  };
  if (is_additive(a.type) && is_additive(b.type)) return true;
  if (a.type == OpType::kAppend && b.type == OpType::kAppend) return true;
  if (a.type == OpType::kMultiply && b.type == OpType::kMultiply) return true;
  // Blind writes never commute with any other write on the same object
  // (write/write last-wins asymmetry), nor does mixing arithmetic kinds.
  return false;
}

}  // namespace tdr
