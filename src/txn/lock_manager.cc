#include "txn/lock_manager.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace tdr {

std::uint32_t LockManager::AcquireWaiter(TxnId txn, sim::Callback on_grant) {
  std::uint32_t idx;
  if (free_waiter_ != kNil) {
    idx = free_waiter_;
    free_waiter_ = waiters_[idx].next;
  } else {
    idx = static_cast<std::uint32_t>(waiters_.size());
    waiters_.emplace_back();
  }
  Waiter& w = waiters_[idx];
  w.txn = txn;
  w.on_grant = std::move(on_grant);
  w.next = kNil;
  return idx;
}

void LockManager::RecycleWaiter(std::uint32_t idx) {
  Waiter& w = waiters_[idx];
  w.txn = kInvalidTxnId;
  w.on_grant = nullptr;
  w.next = free_waiter_;
  free_waiter_ = idx;
}

std::uint32_t LockManager::AcquireHeldEntry() {
  if (!held_free_.empty()) {
    std::uint32_t idx = held_free_.back();
    held_free_.pop_back();
    return idx;
  }
  std::uint32_t idx = static_cast<std::uint32_t>(held_entries_.size());
  held_entries_.emplace_back();
  // Uniform birth capacity. Free-list entries are picked arbitrarily, so
  // without a shared floor each entry re-learns its capacity the hard
  // way (a steady trickle of growth reallocations instead of a one-time
  // ratchet). 160 covers a full batch apply (<= 128 record locks) plus
  // root-transaction slack.
  held_entries_.back().reserve(160);
  return idx;
}

void LockManager::RecycleHeldEntry(std::uint32_t idx) {
  held_entries_[idx].clear();  // capacity retained
  held_free_.push_back(idx);
}

void LockManager::HeldPush(TxnId txn, ObjectId oid) {
  std::uint32_t* entry = held_index_.Find(txn);
  if (entry == nullptr) {
    std::uint32_t idx = AcquireHeldEntry();
    held_index_.Insert(txn, idx);
    held_entries_[idx].push_back(oid);
    return;
  }
  held_entries_[*entry].push_back(oid);
}

void LockManager::HeldErase(TxnId txn, ObjectId oid) {
  std::uint32_t* entry = held_index_.Find(txn);
  if (entry == nullptr) return;
  std::vector<ObjectId>& v = held_entries_[*entry];
  v.erase(std::remove(v.begin(), v.end(), oid), v.end());
  if (v.empty()) {
    std::uint32_t idx = *entry;
    held_index_.Erase(txn);
    RecycleHeldEntry(idx);
  }
}

LockManager::AcquireOutcome LockManager::Acquire(TxnId txn, ObjectId oid,
                                                 GrantCallback on_grant) {
  assert(oid < slots_.size() && "object id outside the lock table");
  Slot& s = slots_[oid];
  if (s.holder == kInvalidTxnId) {
    s.holder = txn;
    ++locked_objects_;
    HeldPush(txn, oid);
    return AcquireOutcome::kGranted;
  }
  if (s.holder == txn) {
    return AcquireOutcome::kGranted;  // reentrant
  }
  // Must wait. Tentatively enqueue and add wait-for edges — edge to the
  // holder and to each earlier waiter (FIFO queues mean you wait behind
  // them too) — then test whether this request closes a cycle.
  std::uint32_t prev_tail = s.q_tail;
  std::uint32_t w = AcquireWaiter(txn, std::move(on_grant));
  if (prev_tail == kNil) {
    s.q_head = w;
  } else {
    waiters_[prev_tail].next = w;
  }
  s.q_tail = w;
  graph_->AddEdge(txn, s.holder);
  for (std::uint32_t i = s.q_head; i != w; i = waiters_[i].next) {
    graph_->AddEdge(txn, waiters_[i].txn);
  }
  if (detect_cycles_ && graph_->HasCycleFrom(txn)) {
    // The requester is the deadlock victim: withdraw the request.
    ++total_deadlocks_;
    if (prev_tail == kNil) {
      s.q_head = kNil;
    } else {
      waiters_[prev_tail].next = kNil;
    }
    s.q_tail = prev_tail;
    RecycleWaiter(w);
    graph_->ClearOutEdges(txn);
    return AcquireOutcome::kDeadlock;
  }
  ++total_waits_;
  ++shard_waits_[ShardOf(oid)];
  ++waiter_count_;
  return AcquireOutcome::kQueued;
}

void LockManager::Release(TxnId txn, ObjectId oid) {
  ReleaseLocked(txn, oid, /*update_held=*/true);
}

void LockManager::ReleaseLocked(TxnId txn, ObjectId oid, bool update_held) {
  assert(oid < slots_.size());
  Slot& s = slots_[oid];
  if (s.holder != txn) {
    ++bad_releases_;
    return;
  }
  if (update_held) HeldErase(txn, oid);
  if (s.q_head == kNil) {
    s.holder = kInvalidTxnId;
    --locked_objects_;
    return;
  }
  // Grant to the FIFO front. Move the callback out of the pool before
  // invoking: the grant handler may reenter Acquire and grow the pool.
  std::uint32_t front = s.q_head;
  TxnId next_txn = waiters_[front].txn;
  sim::Callback on_grant = std::move(waiters_[front].on_grant);
  s.q_head = waiters_[front].next;
  if (s.q_head == kNil) s.q_tail = kNil;
  RecycleWaiter(front);
  --waiter_count_;
  s.holder = next_txn;
  HeldPush(next_txn, oid);
  // The granted transaction no longer waits for anyone (it was the
  // front: its only edges were to the old holder).
  graph_->ClearOutEdges(next_txn);
  // Remaining waiters no longer wait for the old holder; they already
  // hold edges to the new holder (it was an earlier waiter).
  for (std::uint32_t i = s.q_head; i != kNil; i = waiters_[i].next) {
    graph_->RemoveEdge(waiters_[i].txn, txn);
  }
  if (on_grant) on_grant();
}

void LockManager::ReleaseAll(TxnId txn) {
  std::uint32_t* entry = held_index_.Find(txn);
  if (entry == nullptr) return;
  // Detach the whole entry into a pooled scratch vector: Release fires
  // grant callbacks that may reenter (and ReleaseAll other txns), so
  // the entry must be off the index before the first release.
  std::uint32_t held = *entry;
  std::uint32_t scratch = AcquireHeldEntry();
  held_entries_[scratch].swap(held_entries_[held]);
  held_index_.Erase(txn);
  RecycleHeldEntry(held);
  for (std::size_t i = 0; i < held_entries_[scratch].size(); ++i) {
    ReleaseLocked(txn, held_entries_[scratch][i], /*update_held=*/false);
  }
  RecycleHeldEntry(scratch);
}

bool LockManager::CancelRequest(TxnId txn, ObjectId oid) {
  assert(oid < slots_.size());
  Slot& s = slots_[oid];
  std::uint32_t prev = kNil;
  std::uint32_t cur = s.q_head;
  while (cur != kNil && waiters_[cur].txn != txn) {
    prev = cur;
    cur = waiters_[cur].next;
  }
  if (cur == kNil) return false;
  // Later waiters drop their edge to the cancelled one.
  for (std::uint32_t i = waiters_[cur].next; i != kNil;
       i = waiters_[i].next) {
    graph_->RemoveEdge(waiters_[i].txn, txn);
  }
  if (prev == kNil) {
    s.q_head = waiters_[cur].next;
  } else {
    waiters_[prev].next = waiters_[cur].next;
  }
  if (s.q_tail == cur) s.q_tail = prev;
  RecycleWaiter(cur);
  --waiter_count_;
  graph_->ClearOutEdges(txn);
  return true;
}

bool LockManager::Holds(TxnId txn, ObjectId oid) const {
  assert(oid < slots_.size());
  return slots_[oid].holder == txn;
}

std::size_t LockManager::HeldCount(TxnId txn) const {
  const std::uint32_t* entry = held_index_.Find(txn);
  return entry == nullptr ? 0 : held_entries_[*entry].size();
}

}  // namespace tdr
