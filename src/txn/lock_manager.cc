#include "txn/lock_manager.h"

#include <algorithm>
#include <cassert>

namespace tdr {

void LockManager::AddWaitEdges(const LockState& state, TxnId waiter) const {
  graph_->AddEdge(waiter, state.holder);
  for (const Waiter& w : state.queue) {
    if (w.txn == waiter) break;  // edges only to earlier waiters
    graph_->AddEdge(waiter, w.txn);
  }
}

LockManager::AcquireOutcome LockManager::Acquire(TxnId txn, ObjectId oid,
                                                 GrantCallback on_grant) {
  LockState& state = TableOf(oid)[oid];
  if (state.holder == kInvalidTxnId) {
    state.holder = txn;
    held_[txn].push_back(oid);
    return AcquireOutcome::kGranted;
  }
  if (state.holder == txn) {
    return AcquireOutcome::kGranted;  // reentrant
  }
  // Must wait. Tentatively enqueue and add wait-for edges, then test
  // whether this request closes a cycle.
  state.queue.push_back(Waiter{txn, std::move(on_grant)});
  AddWaitEdges(state, txn);
  if (detect_cycles_ && graph_->HasCycleFrom(txn)) {
    // The requester is the deadlock victim: withdraw the request.
    ++total_deadlocks_;
    state.queue.pop_back();
    graph_->ClearOutEdges(txn);
    return AcquireOutcome::kDeadlock;
  }
  ++total_waits_;
  ++shard_waits_[ShardOf(oid)];
  return AcquireOutcome::kQueued;
}

void LockManager::Release(TxnId txn, ObjectId oid) {
  std::map<ObjectId, LockState>& table = TableOf(oid);
  auto it = table.find(oid);
  if (it == table.end() || it->second.holder != txn) {
    ++bad_releases_;
    return;
  }
  LockState& state = it->second;
  // Drop reverse-index entry.
  auto hit = held_.find(txn);
  if (hit != held_.end()) {
    auto& v = hit->second;
    v.erase(std::remove(v.begin(), v.end(), oid), v.end());
    if (v.empty()) held_.erase(hit);
  }
  if (state.queue.empty()) {
    table.erase(it);
    return;
  }
  // Grant to the FIFO front.
  Waiter next = std::move(state.queue.front());
  state.queue.pop_front();
  state.holder = next.txn;
  held_[next.txn].push_back(oid);
  // The granted transaction no longer waits for anyone (it was the
  // front: its only edges were to the old holder).
  graph_->ClearOutEdges(next.txn);
  // Remaining waiters no longer wait for the old holder; they already
  // hold edges to the new holder (it was an earlier waiter).
  for (const Waiter& w : state.queue) {
    graph_->RemoveEdge(w.txn, txn);
  }
  if (next.on_grant) next.on_grant();
}

void LockManager::ReleaseAll(TxnId txn) {
  auto hit = held_.find(txn);
  if (hit == held_.end()) return;
  // Copy: Release mutates held_.
  std::vector<ObjectId> oids = hit->second;
  for (ObjectId oid : oids) Release(txn, oid);
}

bool LockManager::CancelRequest(TxnId txn, ObjectId oid) {
  std::map<ObjectId, LockState>& table = TableOf(oid);
  auto it = table.find(oid);
  if (it == table.end()) return false;
  LockState& state = it->second;
  auto qit = std::find_if(state.queue.begin(), state.queue.end(),
                          [txn](const Waiter& w) { return w.txn == txn; });
  if (qit == state.queue.end()) return false;
  bool found_cancelled = false;
  // Later waiters drop their edge to the cancelled one.
  for (const Waiter& w : state.queue) {
    if (w.txn == txn) {
      found_cancelled = true;
      continue;
    }
    if (found_cancelled) graph_->RemoveEdge(w.txn, txn);
  }
  state.queue.erase(qit);
  graph_->ClearOutEdges(txn);
  return true;
}

bool LockManager::Holds(TxnId txn, ObjectId oid) const {
  const std::map<ObjectId, LockState>& table = TableOf(oid);
  auto it = table.find(oid);
  return it != table.end() && it->second.holder == txn;
}

std::size_t LockManager::HeldCount(TxnId txn) const {
  auto hit = held_.find(txn);
  return hit == held_.end() ? 0 : hit->second.size();
}

std::size_t LockManager::LockedObjectCount() const {
  std::size_t n = 0;
  for (const auto& table : tables_) n += table.size();
  return n;
}

std::size_t LockManager::WaiterCount() const {
  std::size_t n = 0;
  for (const auto& table : tables_) {
    for (const auto& [oid, state] : table) n += state.queue.size();
  }
  return n;
}

}  // namespace tdr
