#include "txn/replay_validator.h"

#include <algorithm>

namespace tdr {

void ReplayValidator::RecordCommit(const Program& program,
                                   Timestamp commit_ts) {
  log_.push_back(Entry{commit_ts, program});
}

std::map<ObjectId, Value> ReplayValidator::ReplaySerial() const {
  std::vector<const Entry*> order;
  order.reserve(log_.size());
  for (const Entry& e : log_) order.push_back(&e);
  std::stable_sort(order.begin(), order.end(),
                   [](const Entry* a, const Entry* b) {
                     return a->commit_ts < b->commit_ts;
                   });
  std::map<ObjectId, Value> state;
  for (const Entry* e : order) {
    EvaluateProgram(e->program, &state);
  }
  return state;
}

bool ReplayValidator::Matches(const ObjectStore& store) const {
  return Divergence(store).empty();
}

std::vector<ObjectId> ReplayValidator::Divergence(
    const ObjectStore& store) const {
  std::map<ObjectId, Value> replayed = ReplaySerial();
  const Value kZero;
  std::vector<ObjectId> diff;
  for (ObjectId oid = 0; oid < store.size(); ++oid) {
    const Value& live = store.GetUnchecked(oid).value;
    auto it = replayed.find(oid);
    const Value& expected = it != replayed.end() ? it->second : kZero;
    if (live != expected) diff.push_back(oid);
  }
  return diff;
}

}  // namespace tdr
