#ifndef TDR_TXN_EXECUTOR_H_
#define TDR_TXN_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/simulator.h"
#include "storage/update_log.h"
#include "txn/node.h"
#include "txn/op.h"
#include "txn/program.h"
#include "txn/trace.h"
#include "util/sim_time.h"
#include "util/stats.h"

namespace tdr {

/// How a transaction ended.
enum class TxnOutcome {
  kCommitted = 0,
  kDeadlock = 1,    // victim of a wait-for cycle; updates discarded
  kRejected = 2,    // precommit hook (acceptance criterion) said no
  kUnavailable = 3, // never ran: a required master node was disconnected
                    // (synthesized by replication schemes, not Executor)
};

std::string_view TxnOutcomeToString(TxnOutcome outcome);

/// How a plan step behaves once its lock is granted.
enum class StepKind : std::uint8_t {
  /// Apply the op to this node's visible value (the replication-model
  /// default: each replica recomputes the action locally).
  kNormal = 0,
  /// Acquire the lock only; the value is installed later by a
  /// kQuorumApply step of the same op_index. Used by quorum writes to
  /// freeze the whole write set before reading the best version.
  kLockOnly = 1,
  /// Final step of a quorum write: every member of the op's write set
  /// (all steps sharing op_index) is now locked. Read the newest version
  /// among them, apply the op once, and install the SAME resulting value
  /// at every member — Gifford-style version-correct quorum writing.
  kQuorumApply = 2,
};

/// One action of an execution plan: apply `op` at node `node`. A
/// replication scheme compiles a Program into a plan; e.g. eager group
/// replication turns each write into Nodes consecutive steps — "the
/// transaction does N times as much work" (Figure 1).
struct ExecStep {
  NodeId node = 0;
  Op op;
  /// If false, the step is free of Action_Time (it still locks). This
  /// models the paper's footnote-2 alternative where replica updates are
  /// broadcast and applied in parallel, so a transaction's elapsed time
  /// does not grow with N.
  bool charge = true;
  StepKind kind = StepKind::kNormal;
  /// Groups the steps of one program op across nodes (quorum plans).
  int op_index = -1;
};

/// Everything a caller learns about a finished transaction.
struct TxnResult {
  TxnId id = kInvalidTxnId;
  NodeId origin = 0;
  TxnOutcome outcome = TxnOutcome::kDeadlock;
  /// Values observed by kRead steps, in step order.
  std::vector<Value> reads;
  /// Commit timestamp; only meaningful when committed.
  Timestamp commit_ts;
  /// Replica-update records for the lazy propagation pipeline: one per
  /// (node, object) written, with UpdateRecord::origin set to the node
  /// where the write was installed (the origin node for lazy-group root
  /// transactions; the owner node for lazy-master transactions). Built
  /// only when committed and RunOptions::record_updates is set.
  std::vector<UpdateRecord> updates;
  std::uint64_t waits = 0;      // lock requests that had to queue
  SimTime wait_time;            // total time spent blocked
  SimTime start_time;
  SimTime end_time;
  /// True if a kDeadlock outcome came from a wait timeout rather than a
  /// wait-for-graph cycle (timeouts fire on plain long waits too — the
  /// false-positive cost of timeout-based detection).
  bool timed_out = false;

  SimTime Duration() const { return end_time - start_time; }
};

/// Event-driven transaction executor shared by every replication scheme.
///
/// Concurrency-control model (deliberately the paper's, §2/§3):
///  * writes take exclusive locks, held to commit/abort (strict 2PL);
///  * reads take no locks and see the last committed value
///    (committed-read) — own buffered writes are visible to self;
///  * each step costs `action_time` of simulated time after its lock is
///    granted, serializing replica updates exactly as the paper's model
///    chooses to ("we attempt to capture message handling costs by
///    serializing the individual updates", footnote 2);
///  * deadlocks abort the requesting transaction immediately (perfect
///    instant detection, the model's assumption).
///
/// Writes are buffered per (node, object) and installed atomically at
/// commit with the commit timestamp, so aborts need no undo and other
/// transactions never see uncommitted data.
class Executor {
 public:
  using DoneCallback = std::function<void(const TxnResult&)>;
  /// Runs after the last step, before any update is installed. Return
  /// false to reject (abort) the transaction — this is how two-tier
  /// acceptance criteria veto a base transaction.
  using PrecommitHook = std::function<bool(const TxnResult&)>;

  struct RunOptions {
    SimTime action_time = SimTime::Millis(10);
    PrecommitHook precommit;        // optional
    bool record_updates = true;     // build UpdateRecords at commit
    /// Charge action_time for read steps too (default true: the model's
    /// Actions are all the same length).
    bool charge_reads = true;
    /// Take exclusive locks on reads as well — the "true serialization"
    /// the base model deliberately omits ("no read locks"). Ablation
    /// only; rates can only get worse with it on.
    bool lock_reads = false;
    /// If positive, a lock wait longer than this aborts the transaction
    /// (timeout-based deadlock detection, the production alternative to
    /// the wait-for graph the model assumes). The wait-for graph is
    /// still consulted first; timeouts additionally kill long
    /// non-deadlocked waits — the technique's false positives, which
    /// the ablation bench quantifies.
    SimTime wait_timeout = SimTime::Zero();
  };

  /// `nodes[i]->id()` must equal i. All pointers must outlive the
  /// executor. `metrics` may be null — instrumentation then degrades to
  /// no-op handles, which is also how the overhead baseline is measured.
  Executor(sim::Simulator* sim, std::vector<Node*> nodes,
           obs::MetricsRegistry* metrics);

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Starts a transaction originating at `origin` executing `steps`.
  /// `done` fires exactly once, from simulated time, after commit or
  /// abort. Returns the transaction id.
  TxnId Run(NodeId origin, std::vector<ExecStep> steps, RunOptions opts,
            DoneCallback done);

  /// Transactions currently executing or waiting.
  std::size_t ActiveCount() const { return inflight_.size(); }

  /// Draws a transaction id from the executor's pool. Replica-update
  /// appliers that drive LockManagers directly must share this id space
  /// so the cluster-global wait-for graph stays consistent.
  TxnId AllocateTxnId() { return next_txn_id_++; }

  /// Attaches a protocol trace sink (may be null to detach). Not owned.
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }
  TraceSink* trace_sink() const { return trace_; }

  std::uint64_t committed() const { return committed_; }
  std::uint64_t deadlocked() const { return deadlocked_; }
  std::uint64_t rejected() const { return rejected_; }
  /// Subset of deadlocked() caused by wait timeouts (only nonzero when
  /// RunOptions::wait_timeout is used).
  std::uint64_t wait_timeouts() const { return wait_timeouts_; }

  /// Distribution of lock-wait durations (simulated micros).
  const Histogram& wait_histogram() const { return wait_hist_; }

 private:
  struct Inflight {
    TxnId id = kInvalidTxnId;
    NodeId origin = 0;
    std::vector<ExecStep> steps;
    std::size_t pc = 0;
    RunOptions opts;
    DoneCallback done;
    // Buffered writes: final value per (node, object).
    std::map<std::pair<NodeId, ObjectId>, Value> buffer;
    // Timestamp each written (node, object) had before this txn's first
    // write there — the "old time" carried by lazy replica updates
    // (Figure 4).
    std::map<std::pair<NodeId, ObjectId>, Timestamp> observed_ts;
    std::set<NodeId> touched_nodes;
    SimTime wait_started;
    TxnResult result;
  };

  Node* node(NodeId id) { return nodes_[id]; }

  void StepAcquire(Inflight* t);
  void StepExecute(Inflight* t);
  void ApplyStep(Inflight* t);
  void ApplyQuorumStep(Inflight* t);
  void BuildUpdateRecords(Inflight* t, Timestamp commit_ts);
  void Commit(Inflight* t);
  void Abort(Inflight* t, TxnOutcome outcome);
  void Finish(Inflight* t);
  void Emit(TraceEventType type, const Inflight* t, NodeId node,
            ObjectId oid, std::string detail = "");

  sim::Simulator* sim_;
  std::vector<Node*> nodes_;
  // Metric handles, acquired once at construction: the hot path bumps
  // through them in O(1) with no allocation and no name lookup. All are
  // no-ops when the executor was built without a registry.
  obs::MetricsRegistry::Counter m_started_;
  obs::MetricsRegistry::Counter m_lock_waits_;
  obs::MetricsRegistry::Counter m_deadlocks_;
  obs::MetricsRegistry::Counter m_wait_timeouts_;
  obs::MetricsRegistry::Counter m_committed_;
  obs::MetricsRegistry::Counter m_rejected_;
  obs::MetricsRegistry::HistogramHandle m_wait_micros_;
  obs::MetricsRegistry::StatsHandle m_profile_acquire_;
  TraceSink* trace_ = nullptr;
  std::map<TxnId, std::unique_ptr<Inflight>> inflight_;
  TxnId next_txn_id_ = 1;
  std::uint64_t committed_ = 0;
  std::uint64_t deadlocked_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t wait_timeouts_ = 0;
  Histogram wait_hist_;
};

/// Compiles `program` into a single-node plan: every op runs at `node`.
/// Used by lazy schemes (root transaction is local) and by single-node
/// baselines.
std::vector<ExecStep> LocalPlan(NodeId node, const Program& program);

}  // namespace tdr

#endif  // TDR_TXN_EXECUTOR_H_
