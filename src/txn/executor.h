#ifndef TDR_TXN_EXECUTOR_H_
#define TDR_TXN_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "runtime/runtime.h"
#include "storage/update_log.h"
#include "txn/durability.h"
#include "txn/node.h"
#include "txn/op.h"
#include "txn/program.h"
#include "txn/trace.h"
#include "util/sim_time.h"
#include "util/stats.h"

namespace tdr {

/// How a transaction ended.
enum class TxnOutcome {
  kCommitted = 0,
  kDeadlock = 1,    // victim of a wait-for cycle; updates discarded
  kRejected = 2,    // precommit hook (acceptance criterion) said no
  kUnavailable = 3, // never ran: a required master node was disconnected
                    // (synthesized by replication schemes, not Executor)
};

std::string_view TxnOutcomeToString(TxnOutcome outcome);

/// How a plan step behaves once its lock is granted.
enum class StepKind : std::uint8_t {
  /// Apply the op to this node's visible value (the replication-model
  /// default: each replica recomputes the action locally).
  kNormal = 0,
  /// Acquire the lock only; the value is installed later by a
  /// kQuorumApply step of the same op_index. Used by quorum writes to
  /// freeze the whole write set before reading the best version.
  kLockOnly = 1,
  /// Final step of a quorum write: every member of the op's write set
  /// (all steps sharing op_index) is now locked. Read the newest version
  /// among them, apply the op once, and install the SAME resulting value
  /// at every member — Gifford-style version-correct quorum writing.
  kQuorumApply = 2,
};

/// One action of an execution plan: apply `op` at node `node`. A
/// replication scheme compiles a Program into a plan; e.g. eager group
/// replication turns each write into Nodes consecutive steps — "the
/// transaction does N times as much work" (Figure 1).
struct ExecStep {
  NodeId node = 0;
  Op op;
  /// If false, the step is free of Action_Time (it still locks). This
  /// models the paper's footnote-2 alternative where replica updates are
  /// broadcast and applied in parallel, so a transaction's elapsed time
  /// does not grow with N.
  bool charge = true;
  StepKind kind = StepKind::kNormal;
  /// Groups the steps of one program op across nodes (quorum plans).
  int op_index = -1;
};

/// Everything a caller learns about a finished transaction.
struct TxnResult {
  TxnId id = kInvalidTxnId;
  NodeId origin = 0;
  TxnOutcome outcome = TxnOutcome::kDeadlock;
  /// Values observed by kRead steps, in step order.
  std::vector<Value> reads;
  /// Commit timestamp; only meaningful when committed.
  Timestamp commit_ts;
  /// Replica-update records for the lazy propagation pipeline: one per
  /// (node, object) written, with UpdateRecord::origin set to the node
  /// where the write was installed (the origin node for lazy-group root
  /// transactions; the owner node for lazy-master transactions). Built
  /// only when committed and RunOptions::record_updates is set.
  std::vector<UpdateRecord> updates;
  std::uint64_t waits = 0;      // lock requests that had to queue
  SimTime wait_time;            // total time spent blocked
  SimTime start_time;
  SimTime end_time;
  /// True if a kDeadlock outcome came from a wait timeout rather than a
  /// wait-for-graph cycle (timeouts fire on plain long waits too — the
  /// false-positive cost of timeout-based detection).
  bool timed_out = false;

  SimTime Duration() const { return end_time - start_time; }
};

/// Per-transaction completion hook carried by RunOptions as a plain
/// pointer. Replication schemes implement it to observe every outcome
/// (propagate on commit, count aborts) WITHOUT wrapping the caller's
/// done callback in a scheme lambda — the wrapper was a nested closure
/// too fat for any small-buffer store, i.e. one heap allocation per
/// transaction. Runs before the done callback.
class TxnObserver {
 public:
  virtual ~TxnObserver() = default;
  virtual void OnTxnDone(const TxnResult& result) = 0;
};

/// Event-driven transaction executor shared by every replication scheme.
///
/// Concurrency-control model (deliberately the paper's, §2/§3):
///  * writes take exclusive locks, held to commit/abort (strict 2PL);
///  * reads take no locks and see the last committed value
///    (committed-read) — own buffered writes are visible to self;
///  * each step costs `action_time` of simulated time after its lock is
///    granted, serializing replica updates exactly as the paper's model
///    chooses to ("we attempt to capture message handling costs by
///    serializing the individual updates", footnote 2);
///  * deadlocks abort the requesting transaction immediately (perfect
///    instant detection, the model's assumption).
///
/// Writes are buffered per (node, object) and installed atomically at
/// commit with the commit timestamp, so aborts need no undo and other
/// transactions never see uncommitted data.
///
/// Allocation model: transactions run in pooled Inflight records
/// (stable addresses, recycled through a free list) whose vectors —
/// steps, write buffer, observed timestamps, reads, update records —
/// keep their capacity across reuse. Write/timestamp buffers are flat
/// vectors sorted by (node, object), preserving the ordered-map
/// iteration order update-record determinism depends on. Scheduled
/// continuations capture (this, inflight*, txn id) and validate the id
/// (TxnIds are never reused), so there is no per-transaction lookup
/// structure at all. Scalar-valued workloads submitted through
/// NewPlan()/RunPlan() allocate nothing in steady state.
class Executor {
 public:
  using DoneCallback = std::function<void(const TxnResult&)>;
  /// Runs after the last step, before any update is installed. Return
  /// false to reject (abort) the transaction — this is how two-tier
  /// acceptance criteria veto a base transaction.
  using PrecommitHook = std::function<bool(const TxnResult&)>;

  struct RunOptions {
    SimTime action_time = SimTime::Millis(10);
    PrecommitHook precommit;        // optional
    /// Completion hook (not owned; may be null). See TxnObserver.
    TxnObserver* observer = nullptr;
    bool record_updates = true;     // build UpdateRecords at commit
    /// Charge action_time for read steps too (default true: the model's
    /// Actions are all the same length).
    bool charge_reads = true;
    /// Take exclusive locks on reads as well — the "true serialization"
    /// the base model deliberately omits ("no read locks"). Ablation
    /// only; rates can only get worse with it on.
    bool lock_reads = false;
    /// If positive, a lock wait longer than this aborts the transaction
    /// (timeout-based deadlock detection, the production alternative to
    /// the wait-for graph the model assumes). The wait-for graph is
    /// still consulted first; timeouts additionally kill long
    /// non-deadlocked waits — the technique's false positives, which
    /// the ablation bench quantifies.
    SimTime wait_timeout = SimTime::Zero();
  };

  /// `nodes[i]->id()` must equal i. All pointers must outlive the
  /// executor. `metrics` may be null — instrumentation then degrades to
  /// no-op handles, which is also how the overhead baseline is measured.
  Executor(runtime::Runtime* rt, std::vector<Node*> nodes,
           obs::MetricsRegistry* metrics);

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Starts a transaction originating at `origin` executing `steps`.
  /// `done` fires exactly once, from simulated time, after commit or
  /// abort. Returns the transaction id.
  TxnId Run(NodeId origin, std::vector<ExecStep> steps, RunOptions opts,
            DoneCallback done);

  /// Allocation-free submission: NewPlan() hands out a cleared scratch
  /// plan (capacity retained run to run); fill it, then RunPlan() swaps
  /// it into a pooled transaction. Do not hold the reference across
  /// RunPlan() or interleave two NewPlan() builds.
  std::vector<ExecStep>& NewPlan() {
    plan_scratch_.clear();
    return plan_scratch_;
  }
  TxnId RunPlan(NodeId origin, RunOptions opts, DoneCallback done);

  /// Transactions currently executing or waiting.
  std::size_t ActiveCount() const { return active_; }

  /// Draws a transaction id from the executor's pool. Replica-update
  /// appliers that drive LockManagers directly must share this id space
  /// so the cluster-global wait-for graph stays consistent.
  TxnId AllocateTxnId() { return next_txn_id_++; }

  /// Attaches a protocol trace sink (may be null to detach). Not owned.
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }
  TraceSink* trace_sink() const { return trace_; }

  /// Attaches the write-ahead-log seam (may be null — the default —
  /// for no durability). With a hook installed, Commit() logs every
  /// installed write to the touched node's WAL and defers lock release
  /// and completion until every touched log acknowledges durability.
  /// Not owned.
  void set_durability(DurabilityHook* hook) { durability_ = hook; }
  DurabilityHook* durability() const { return durability_; }

  std::uint64_t committed() const { return committed_; }
  std::uint64_t deadlocked() const { return deadlocked_; }
  std::uint64_t rejected() const { return rejected_; }
  /// Subset of deadlocked() caused by wait timeouts (only nonzero when
  /// RunOptions::wait_timeout is used).
  std::uint64_t wait_timeouts() const { return wait_timeouts_; }

  /// Distribution of lock-wait durations (simulated micros).
  const Histogram& wait_histogram() const { return wait_hist_; }

 private:
  /// Buffered write: final value per (node, object), flat-sorted.
  struct WriteEntry {
    NodeId node;
    ObjectId oid;
    Value value;
  };
  /// Timestamp each written (node, object) had before this txn's first
  /// write there — the "old time" carried by lazy replica updates
  /// (Figure 4). Flat-sorted like WriteEntry.
  struct ObservedEntry {
    NodeId node;
    ObjectId oid;
    Timestamp ts;
  };

  struct Inflight {
    TxnId id = kInvalidTxnId;
    std::uint32_t pool_index = 0;
    NodeId origin = 0;
    std::vector<ExecStep> steps;
    std::size_t pc = 0;
    RunOptions opts;
    DoneCallback done;
    std::vector<WriteEntry> buffer;        // sorted by (node, oid)
    std::vector<ObservedEntry> observed_ts;  // sorted by (node, oid)
    std::vector<NodeId> touched_nodes;     // sorted
    SimTime wait_started;
    /// Durability acks still outstanding (WAL commit path); locks
    /// release and `done` fires when this reaches zero.
    std::uint32_t pending_durability = 0;
    TxnResult result;
  };

  Node* node(NodeId id) { return nodes_[id]; }

  Inflight* AcquireInflight();
  void RecycleInflight(Inflight* t);
  TxnId Start(NodeId origin, Inflight* t, RunOptions opts,
              DoneCallback done);
  Value* FindWrite(Inflight* t, NodeId node, ObjectId oid);
  void PutWrite(Inflight* t, NodeId node, ObjectId oid, Value value);
  void ObserveTs(Inflight* t, NodeId node, ObjectId oid,
                 const Timestamp& ts);
  const Timestamp* FindObserved(const Inflight* t, NodeId node,
                                ObjectId oid) const;
  void TouchNode(Inflight* t, NodeId node);

  void StepAcquire(Inflight* t);
  void StepExecute(Inflight* t);
  void ApplyStep(Inflight* t);
  void ApplyQuorumStep(Inflight* t);
  void BuildUpdateRecords(Inflight* t, Timestamp commit_ts);
  void Commit(Inflight* t);
  void CompleteCommit(Inflight* t);
  void OnDurable(Inflight* t, TxnId id);
  void Abort(Inflight* t, TxnOutcome outcome);
  void Finish(Inflight* t);
  void Emit(TraceEventType type, const Inflight* t, NodeId node,
            ObjectId oid, std::string detail = "");

  runtime::Runtime* sim_;
  std::vector<Node*> nodes_;
  // Metric handles, acquired once at construction: the hot path bumps
  // through them in O(1) with no allocation and no name lookup. All are
  // no-ops when the executor was built without a registry.
  obs::MetricsRegistry::Counter m_started_;
  obs::MetricsRegistry::Counter m_lock_waits_;
  obs::MetricsRegistry::Counter m_deadlocks_;
  obs::MetricsRegistry::Counter m_wait_timeouts_;
  obs::MetricsRegistry::Counter m_committed_;
  obs::MetricsRegistry::Counter m_rejected_;
  obs::MetricsRegistry::HistogramHandle m_wait_micros_;
  obs::MetricsRegistry::StatsHandle m_profile_acquire_;
  TraceSink* trace_ = nullptr;
  DurabilityHook* durability_ = nullptr;
  // Inflight pool: stable addresses (unique_ptr slots), recycled
  // through a free list; vectors inside keep capacity across reuse.
  std::vector<std::unique_ptr<Inflight>> pool_;
  std::vector<std::uint32_t> free_inflight_;
  std::size_t active_ = 0;
  std::vector<ExecStep> plan_scratch_;
  std::vector<NodeId> members_scratch_;  // quorum write-set members
  TxnId next_txn_id_ = 1;
  std::uint64_t committed_ = 0;
  std::uint64_t deadlocked_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t wait_timeouts_ = 0;
  Histogram wait_hist_;
};

/// Compiles `program` into a single-node plan: every op runs at `node`.
/// Used by lazy schemes (root transaction is local) and by single-node
/// baselines.
std::vector<ExecStep> LocalPlan(NodeId node, const Program& program);

/// Appends the same plan to `*out` without allocating (capacity
/// permitting) — the NewPlan()/RunPlan() variant.
void LocalPlanInto(NodeId node, const Program& program,
                   std::vector<ExecStep>* out);

}  // namespace tdr

#endif  // TDR_TXN_EXECUTOR_H_
