#ifndef TDR_TXN_OP_H_
#define TDR_TXN_OP_H_

#include <cstdint>
#include <string>

#include "storage/types.h"

namespace tdr {

/// The transaction operation language.
///
/// The two-tier scheme (§7) re-executes tentative transactions at base
/// nodes, so transactions must be *re-executable programs*, not value
/// diffs. Ops are deterministic functions of the pre-state, which is all
/// re-execution needs. The commutative subset (Add/Subtract/Append) is
/// the paper's §6 "incremental transformations of a value that can be
/// applied in any order"; Write/Multiply are the non-commutative
/// record-value updates ("change account from $200 to $150") that cause
/// lost updates under timestamp schemes.
enum class OpType : std::uint8_t {
  kRead = 0,      // record the current value; no state change
  kWrite = 1,     // blind write of a constant (NOT commutative)
  kAdd = 2,       // value += operand (commutative)
  kSubtract = 3,  // value -= operand (commutative; "Debit the account")
  kAppend = 4,    // timestamped append to a list (commutative, §6)
  kMultiply = 5,  // value *= operand (commutes with itself, not with Add)
};

std::string_view OpTypeToString(OpType type);

/// One action of a transaction. `Actions` of these make up a program —
/// the paper's "each transaction updates a fixed number of objects".
struct Op {
  OpType type = OpType::kRead;
  ObjectId oid = 0;
  std::int64_t operand = 0;

  static Op Read(ObjectId oid) { return {OpType::kRead, oid, 0}; }
  static Op Write(ObjectId oid, std::int64_t v) {
    return {OpType::kWrite, oid, v};
  }
  static Op Add(ObjectId oid, std::int64_t delta) {
    return {OpType::kAdd, oid, delta};
  }
  static Op Subtract(ObjectId oid, std::int64_t delta) {
    return {OpType::kSubtract, oid, delta};
  }
  static Op Append(ObjectId oid, std::int64_t item) {
    return {OpType::kAppend, oid, item};
  }
  static Op Multiply(ObjectId oid, std::int64_t factor) {
    return {OpType::kMultiply, oid, factor};
  }

  bool IsWrite() const { return type != OpType::kRead; }

  /// Applies this op to `value` in place. Reads leave it untouched.
  void ApplyTo(Value* value) const;

  /// True if this op type is order-insensitive against any other op of a
  /// commutative type on the same object.
  bool IsCommutative() const {
    return type == OpType::kAdd || type == OpType::kSubtract ||
           type == OpType::kAppend || type == OpType::kRead;
  }

  std::string ToString() const;

  friend bool operator==(const Op& a, const Op& b) {
    return a.type == b.type && a.oid == b.oid && a.operand == b.operand;
  }
};

/// True if executing `a` then `b` always yields the same state as `b`
/// then `a`. Ops on distinct objects always commute; on the same object
/// the commutative arithmetic group {Add, Subtract} commutes, Appends
/// commute with each other, Reads commute with Reads, and Multiply
/// commutes only with Multiply. (Read does NOT commute with a write op —
/// swapping them changes what the read observes.)
bool OpsCommute(const Op& a, const Op& b);

}  // namespace tdr

#endif  // TDR_TXN_OP_H_
