#include "txn/executor.h"

#include <cassert>
#include <utility>

#include "obs/profile.h"
#include "util/logging.h"

namespace tdr {

std::string_view TxnOutcomeToString(TxnOutcome outcome) {
  switch (outcome) {
    case TxnOutcome::kCommitted:
      return "committed";
    case TxnOutcome::kDeadlock:
      return "deadlock";
    case TxnOutcome::kRejected:
      return "rejected";
    case TxnOutcome::kUnavailable:
      return "unavailable";
  }
  return "?";
}

Executor::Executor(sim::Simulator* sim, std::vector<Node*> nodes,
                   obs::MetricsRegistry* metrics)
    : sim_(sim), nodes_(std::move(nodes)) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    assert(nodes_[i] != nullptr && nodes_[i]->id() == i);
  }
  if (metrics != nullptr) {
    m_started_ = metrics->GetCounter("txn.started");
    m_lock_waits_ = metrics->GetCounter("lock.waits");
    m_deadlocks_ = metrics->GetCounter("txn.deadlocks");
    m_wait_timeouts_ = metrics->GetCounter("txn.wait_timeouts");
    m_committed_ = metrics->GetCounter("txn.committed");
    m_rejected_ = metrics->GetCounter("txn.rejected");
    m_wait_micros_ = metrics->GetHistogram("lock.wait_micros");
    m_profile_acquire_ = metrics->GetProfile("profile.lock_acquire");
  }
}

void Executor::Emit(TraceEventType type, const Inflight* t, NodeId node,
                    ObjectId oid, std::string detail) {
  if (trace_ == nullptr) return;
  TraceEvent event;
  event.time = sim_->Now();
  event.type = type;
  event.txn = t->id;
  event.node = node;
  event.oid = oid;
  event.detail = std::move(detail);
  trace_->OnEvent(event);
}

TxnId Executor::Run(NodeId origin, std::vector<ExecStep> steps,
                    RunOptions opts, DoneCallback done) {
  TxnId id = next_txn_id_++;
  auto t = std::make_unique<Inflight>();
  t->id = id;
  t->origin = origin;
  t->steps = std::move(steps);
  t->opts = std::move(opts);
  t->done = std::move(done);
  t->result.id = id;
  t->result.origin = origin;
  t->result.start_time = sim_->Now();
  Inflight* raw = t.get();
  inflight_.emplace(id, std::move(t));
  m_started_.Increment();
  Emit(TraceEventType::kTxnStart, raw, origin, 0,
       StrPrintf("%zu steps", raw->steps.size()));
  StepAcquire(raw);
  return id;
}

void Executor::StepAcquire(Inflight* t) {
  obs::ProfileScope profile(m_profile_acquire_);
  if (t->pc >= t->steps.size()) {
    // All steps applied. Build the update records now (with a
    // placeholder commit timestamp) so the precommit hook — the
    // two-tier acceptance criterion — can inspect the final written
    // values as well as the reads.
    t->result.end_time = sim_->Now();
    if (t->opts.record_updates) BuildUpdateRecords(t, Timestamp::Zero());
    if (t->opts.precommit && !t->opts.precommit(t->result)) {
      Abort(t, TxnOutcome::kRejected);
      return;
    }
    Commit(t);
    return;
  }
  const ExecStep& step = t->steps[t->pc];
  t->touched_nodes.insert(step.node);
  if (!step.op.IsWrite() && !t->opts.lock_reads) {
    // Committed-read: no lock.
    StepExecute(t);
    return;
  }
  Node* n = node(step.node);
  TxnId id = t->id;
  LockManager::AcquireOutcome outcome = n->locks().Acquire(
      id, step.op.oid, [this, id]() {
        // Grant callback: the transaction may have been aborted and
        // erased in the meantime only if someone cancelled the request,
        // which never happens while it is queued; still, look it up
        // defensively.
        auto it = inflight_.find(id);
        if (it == inflight_.end()) return;
        Inflight* t2 = it->second.get();
        SimTime waited = sim_->Now() - t2->wait_started;
        t2->result.wait_time += waited;
        wait_hist_.Add(static_cast<std::uint64_t>(waited.micros()));
        m_wait_micros_.Record(static_cast<std::uint64_t>(waited.micros()));
        const ExecStep& granted = t2->steps[t2->pc];
        Emit(TraceEventType::kLockGrant, t2, granted.node, granted.op.oid,
             StrPrintf("after %s", waited.ToString().c_str()));
        StepExecute(t2);
      });
  switch (outcome) {
    case LockManager::AcquireOutcome::kGranted:
      StepExecute(t);
      return;
    case LockManager::AcquireOutcome::kQueued: {
      ++t->result.waits;
      t->wait_started = sim_->Now();
      m_lock_waits_.Increment();
      Emit(TraceEventType::kLockWait, t, step.node, step.op.oid);
      if (t->opts.wait_timeout > SimTime::Zero()) {
        NodeId wait_node = step.node;
        ObjectId wait_oid = step.op.oid;
        sim_->ScheduleAfter(
            t->opts.wait_timeout, [this, id, wait_node, wait_oid]() {
              auto it = inflight_.find(id);
              if (it == inflight_.end()) return;  // already finished
              Inflight* t2 = it->second.get();
              // Withdraw the request iff it is still queued; a false
              // return means the lock was granted in the meantime.
              if (!node(wait_node)->locks().CancelRequest(id, wait_oid)) {
                return;
              }
              t2->result.timed_out = true;
              ++wait_timeouts_;
              m_wait_timeouts_.Increment();
              Abort(t2, TxnOutcome::kDeadlock);
            });
      }
      return;
    }
    case LockManager::AcquireOutcome::kDeadlock:
      m_deadlocks_.Increment();
      Abort(t, TxnOutcome::kDeadlock);
      return;
  }
}

void Executor::StepExecute(Inflight* t) {
  const ExecStep& step = t->steps[t->pc];
  SimTime cost = (!step.charge || (!step.op.IsWrite() &&
                                   !t->opts.charge_reads))
                     ? SimTime::Zero()
                     : t->opts.action_time;
  TxnId id = t->id;
  sim_->ScheduleAfter(cost, [this, id]() {
    auto it = inflight_.find(id);
    if (it == inflight_.end()) return;
    ApplyStep(it->second.get());
  });
}

void Executor::ApplyStep(Inflight* t) {
  const ExecStep& step = t->steps[t->pc];
  Node* n = node(step.node);
  auto key = std::make_pair(step.node, step.op.oid);
  if (step.kind == StepKind::kLockOnly) {
    // Lock held; the kQuorumApply step installs the value later.
    ++t->pc;
    StepAcquire(t);
    return;
  }
  if (step.kind == StepKind::kQuorumApply) {
    ApplyQuorumStep(t);
    return;
  }
  auto bit = t->buffer.find(key);
  // Visible value: own buffered write, else last committed value.
  Value visible = bit != t->buffer.end()
                      ? bit->second
                      : n->store().GetUnchecked(step.op.oid).value;
  if (step.op.type == OpType::kRead) {
    t->result.reads.push_back(std::move(visible));
  } else {
    if (t->observed_ts.find(key) == t->observed_ts.end()) {
      // Remember the timestamp the transaction saw before its first
      // write here — lazy replica updates carry it as their "old time"
      // (Figure 4).
      t->observed_ts[key] = n->store().GetUnchecked(step.op.oid).ts;
    }
    step.op.ApplyTo(&visible);
    t->buffer[key] = std::move(visible);
  }
  Emit(TraceEventType::kOpApply, t, step.node, step.op.oid,
       step.op.ToString());
  ++t->pc;
  StepAcquire(t);
}

void Executor::ApplyQuorumStep(Inflight* t) {
  const ExecStep& step = t->steps[t->pc];
  // Members of this op's write set: every step sharing its op_index.
  // All of them are locked by now (the kLockOnly steps precede this
  // one), so their values are frozen: read the newest version, apply
  // the op once, install the same value at every member.
  std::vector<NodeId> members;
  for (const ExecStep& s : t->steps) {
    if (s.op_index == step.op_index) members.push_back(s.node);
  }
  Value best;
  Timestamp best_ts;
  bool have_own = false;
  for (NodeId member : members) {
    auto key = std::make_pair(member, step.op.oid);
    auto bit = t->buffer.find(key);
    if (bit != t->buffer.end()) {
      // Our own earlier (buffered) write is newer than anything
      // committed; prefer it.
      best = bit->second;
      have_own = true;
      break;
    }
    const StoredObject& obj =
        node(member)->store().GetUnchecked(step.op.oid);
    if (members.front() == member || obj.ts > best_ts) {
      best = obj.value;
      best_ts = obj.ts;
    }
  }
  if (!have_own) {
    // Record the observed timestamp at the step's node for lazy
    // record-building symmetry.
    auto self_key = std::make_pair(step.node, step.op.oid);
    if (t->observed_ts.find(self_key) == t->observed_ts.end()) {
      t->observed_ts[self_key] = best_ts;
    }
  }
  step.op.ApplyTo(&best);
  for (NodeId member : members) {
    t->buffer[std::make_pair(member, step.op.oid)] = best;
  }
  Emit(TraceEventType::kOpApply, t, step.node, step.op.oid,
       StrPrintf("quorum %s -> %s", step.op.ToString().c_str(),
                 best.ToString().c_str()));
  ++t->pc;
  StepAcquire(t);
}

void Executor::BuildUpdateRecords(Inflight* t, Timestamp commit_ts) {
  // One record per installed (node, object), rebuilt from scratch so the
  // precommit pass (placeholder timestamp) and the commit pass (real
  // timestamp) agree.
  t->result.updates.clear();
  for (const auto& [key, value] : t->buffer) {
    UpdateRecord rec;
    rec.txn = t->id;
    rec.oid = key.second;
    auto oit = t->observed_ts.find(key);
    rec.old_ts =
        oit != t->observed_ts.end() ? oit->second : Timestamp::Zero();
    rec.new_ts = commit_ts;
    rec.new_value = value;
    rec.origin = key.first;
    rec.commit_time = sim_->Now();
    t->result.updates.push_back(std::move(rec));
  }
}

void Executor::Commit(Inflight* t) {
  Node* origin_node = node(t->origin);
  // The commit timestamp must order after every commit this transaction
  // serialized behind at any node it touched: pull all touched clocks
  // forward into the origin's before ticking. Otherwise two writers of
  // one object, serialized by its master's lock, could carry timestamps
  // in the opposite order and newer-wins slave refreshes would converge
  // to a value different from the master's (lost slave update).
  for (NodeId nid : t->touched_nodes) {
    origin_node->clock().Observe(node(nid)->clock().Peek());
  }
  Timestamp commit_ts = origin_node->clock().Tick();
  t->result.commit_ts = commit_ts;
  // Install buffered writes everywhere they were produced.
  for (const auto& [key, value] : t->buffer) {
    Node* n = node(key.first);
    n->clock().Observe(commit_ts);
    Status s = n->store().Put(key.second, value, commit_ts);
    assert(s.ok());
    (void)s;
  }
  // Stamp the pre-built update records with the real commit timestamp.
  if (t->opts.record_updates) BuildUpdateRecords(t, commit_ts);
  for (NodeId nid : t->touched_nodes) {
    node(nid)->locks().ReleaseAll(t->id);
  }
  t->result.outcome = TxnOutcome::kCommitted;
  t->result.end_time = sim_->Now();
  ++committed_;
  m_committed_.Increment();
  Emit(TraceEventType::kTxnCommit, t, t->origin, 0,
       StrPrintf("ts=%s", commit_ts.ToString().c_str()));
  Finish(t);
}

void Executor::Abort(Inflight* t, TxnOutcome outcome) {
  assert(outcome != TxnOutcome::kCommitted);
  for (NodeId nid : t->touched_nodes) {
    node(nid)->locks().ReleaseAll(t->id);
  }
  t->result.outcome = outcome;
  t->result.end_time = sim_->Now();
  if (outcome == TxnOutcome::kDeadlock) {
    ++deadlocked_;
  } else {
    ++rejected_;
    m_rejected_.Increment();
  }
  Emit(TraceEventType::kTxnAbort, t, t->origin, 0,
       std::string(TxnOutcomeToString(outcome)));
  Finish(t);
}

void Executor::Finish(Inflight* t) {
  // Move the node out of the map before invoking the callback: the
  // callback commonly starts new transactions (retry loops) and must not
  // invalidate `t` mid-flight.
  auto it = inflight_.find(t->id);
  assert(it != inflight_.end());
  std::unique_ptr<Inflight> owned = std::move(it->second);
  inflight_.erase(it);
  if (owned->done) owned->done(owned->result);
}

std::vector<ExecStep> LocalPlan(NodeId node, const Program& program) {
  std::vector<ExecStep> steps;
  steps.reserve(program.size());
  for (const Op& op : program.ops()) {
    steps.push_back(ExecStep{node, op});
  }
  return steps;
}

}  // namespace tdr
