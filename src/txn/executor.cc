#include "txn/executor.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/profile.h"
#include "util/logging.h"

namespace tdr {

std::string_view TxnOutcomeToString(TxnOutcome outcome) {
  switch (outcome) {
    case TxnOutcome::kCommitted:
      return "committed";
    case TxnOutcome::kDeadlock:
      return "deadlock";
    case TxnOutcome::kRejected:
      return "rejected";
    case TxnOutcome::kUnavailable:
      return "unavailable";
  }
  return "?";
}

Executor::Executor(runtime::Runtime* rt, std::vector<Node*> nodes,
                   obs::MetricsRegistry* metrics)
    : sim_(rt), nodes_(std::move(nodes)) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    assert(nodes_[i] != nullptr && nodes_[i]->id() == i);
  }
  if (metrics != nullptr) {
    m_started_ = metrics->GetCounter("txn.started");
    m_lock_waits_ = metrics->GetCounter("lock.waits");
    m_deadlocks_ = metrics->GetCounter("txn.deadlocks");
    m_wait_timeouts_ = metrics->GetCounter("txn.wait_timeouts");
    m_committed_ = metrics->GetCounter("txn.committed");
    m_rejected_ = metrics->GetCounter("txn.rejected");
    m_wait_micros_ = metrics->GetHistogram("lock.wait_micros");
    m_profile_acquire_ = metrics->GetProfile("profile.lock_acquire");
  }
}

void Executor::Emit(TraceEventType type, const Inflight* t, NodeId node,
                    ObjectId oid, std::string detail) {
  if (trace_ == nullptr) return;
  TraceEvent event;
  event.time = sim_->Now();
  event.type = type;
  event.txn = t->id;
  event.node = node;
  event.oid = oid;
  event.detail = std::move(detail);
  trace_->OnEvent(event);
}

Executor::Inflight* Executor::AcquireInflight() {
  std::uint32_t idx;
  if (!free_inflight_.empty()) {
    idx = free_inflight_.back();
    free_inflight_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(pool_.size());
    pool_.push_back(std::make_unique<Inflight>());
    pool_[idx]->pool_index = idx;
  }
  return pool_[idx].get();
}

void Executor::RecycleInflight(Inflight* t) {
  // Clear everything but keep every vector's capacity — that is the
  // whole point of the pool. A recycled record keeps id=kInvalidTxnId
  // until reused, so stale (this, t, id) captures fail their id check.
  t->id = kInvalidTxnId;
  t->steps.clear();
  t->pc = 0;
  t->opts.precommit = nullptr;  // release any captured closure now
  t->opts.observer = nullptr;
  t->done = nullptr;
  t->buffer.clear();
  t->observed_ts.clear();
  t->touched_nodes.clear();
  t->result.reads.clear();
  t->result.updates.clear();
  t->result.outcome = TxnOutcome::kDeadlock;
  t->result.waits = 0;
  t->result.wait_time = SimTime::Zero();
  t->result.timed_out = false;
  free_inflight_.push_back(t->pool_index);
}

Value* Executor::FindWrite(Inflight* t, NodeId node, ObjectId oid) {
  auto it = std::lower_bound(
      t->buffer.begin(), t->buffer.end(), std::make_pair(node, oid),
      [](const WriteEntry& e, const std::pair<NodeId, ObjectId>& k) {
        return e.node != k.first ? e.node < k.first : e.oid < k.second;
      });
  if (it != t->buffer.end() && it->node == node && it->oid == oid) {
    return &it->value;
  }
  return nullptr;
}

void Executor::PutWrite(Inflight* t, NodeId node, ObjectId oid,
                        Value value) {
  auto it = std::lower_bound(
      t->buffer.begin(), t->buffer.end(), std::make_pair(node, oid),
      [](const WriteEntry& e, const std::pair<NodeId, ObjectId>& k) {
        return e.node != k.first ? e.node < k.first : e.oid < k.second;
      });
  if (it != t->buffer.end() && it->node == node && it->oid == oid) {
    it->value = std::move(value);
    return;
  }
  t->buffer.insert(it, WriteEntry{node, oid, std::move(value)});
}

void Executor::ObserveTs(Inflight* t, NodeId node, ObjectId oid,
                         const Timestamp& ts) {
  auto it = std::lower_bound(
      t->observed_ts.begin(), t->observed_ts.end(),
      std::make_pair(node, oid),
      [](const ObservedEntry& e, const std::pair<NodeId, ObjectId>& k) {
        return e.node != k.first ? e.node < k.first : e.oid < k.second;
      });
  if (it != t->observed_ts.end() && it->node == node && it->oid == oid) {
    return;  // first observation wins (the pre-txn timestamp)
  }
  t->observed_ts.insert(it, ObservedEntry{node, oid, ts});
}

const Timestamp* Executor::FindObserved(const Inflight* t, NodeId node,
                                        ObjectId oid) const {
  auto it = std::lower_bound(
      t->observed_ts.begin(), t->observed_ts.end(),
      std::make_pair(node, oid),
      [](const ObservedEntry& e, const std::pair<NodeId, ObjectId>& k) {
        return e.node != k.first ? e.node < k.first : e.oid < k.second;
      });
  if (it != t->observed_ts.end() && it->node == node && it->oid == oid) {
    return &it->ts;
  }
  return nullptr;
}

void Executor::TouchNode(Inflight* t, NodeId node) {
  auto it = std::lower_bound(t->touched_nodes.begin(),
                             t->touched_nodes.end(), node);
  if (it == t->touched_nodes.end() || *it != node) {
    t->touched_nodes.insert(it, node);
  }
}

TxnId Executor::Run(NodeId origin, std::vector<ExecStep> steps,
                    RunOptions opts, DoneCallback done) {
  Inflight* t = AcquireInflight();
  t->steps = std::move(steps);
  return Start(origin, t, std::move(opts), std::move(done));
}

TxnId Executor::RunPlan(NodeId origin, RunOptions opts,
                        DoneCallback done) {
  Inflight* t = AcquireInflight();
  // Swap, not move: the scratch vector inherits this record's retained
  // capacity, so plan buffers circulate between the scratch and the
  // pool without ever being freed.
  t->steps.swap(plan_scratch_);
  return Start(origin, t, std::move(opts), std::move(done));
}

TxnId Executor::Start(NodeId origin, Inflight* t, RunOptions opts,
                      DoneCallback done) {
  TxnId id = next_txn_id_++;
  t->id = id;
  t->origin = origin;
  t->opts = std::move(opts);
  t->done = std::move(done);
  t->result.id = id;
  t->result.origin = origin;
  t->result.start_time = sim_->Now();
  ++active_;
  m_started_.Increment();
  if (trace_ != nullptr) {
    Emit(TraceEventType::kTxnStart, t, origin, 0,
         StrPrintf("%zu steps", t->steps.size()));
  }
  StepAcquire(t);
  return id;
}

void Executor::StepAcquire(Inflight* t) {
  obs::ProfileScope profile(m_profile_acquire_);
  if (t->pc >= t->steps.size()) {
    // All steps applied. Build the update records now (with a
    // placeholder commit timestamp) so the precommit hook — the
    // two-tier acceptance criterion — can inspect the final written
    // values as well as the reads.
    t->result.end_time = sim_->Now();
    if (t->opts.record_updates) BuildUpdateRecords(t, Timestamp::Zero());
    if (t->opts.precommit && !t->opts.precommit(t->result)) {
      Abort(t, TxnOutcome::kRejected);
      return;
    }
    Commit(t);
    return;
  }
  const ExecStep& step = t->steps[t->pc];
  TouchNode(t, step.node);
  if (!step.op.IsWrite() && !t->opts.lock_reads) {
    // Committed-read: no lock.
    StepExecute(t);
    return;
  }
  Node* n = node(step.node);
  TxnId id = t->id;
  LockManager::AcquireOutcome outcome = n->locks().Acquire(
      id, step.op.oid, [this, t, id]() {
        // Grants for finished transactions cannot actually happen —
        // queued requests are cancelled before abort — but check the id
        // anyway: TxnIds are never reused, so a recycled record makes a
        // stale grant a no-op.
        if (t->id != id) return;
        SimTime waited = sim_->Now() - t->wait_started;
        t->result.wait_time += waited;
        wait_hist_.Add(static_cast<std::uint64_t>(waited.micros()));
        m_wait_micros_.Record(static_cast<std::uint64_t>(waited.micros()));
        if (trace_ != nullptr) {
          const ExecStep& granted = t->steps[t->pc];
          Emit(TraceEventType::kLockGrant, t, granted.node, granted.op.oid,
               StrPrintf("after %s", waited.ToString().c_str()));
        }
        StepExecute(t);
      });
  switch (outcome) {
    case LockManager::AcquireOutcome::kGranted:
      StepExecute(t);
      return;
    case LockManager::AcquireOutcome::kQueued: {
      ++t->result.waits;
      t->wait_started = sim_->Now();
      m_lock_waits_.Increment();
      Emit(TraceEventType::kLockWait, t, step.node, step.op.oid);
      if (t->opts.wait_timeout > SimTime::Zero()) {
        NodeId wait_node = step.node;
        ObjectId wait_oid = step.op.oid;
        sim_->ScheduleAfterNode(
            wait_node, t->opts.wait_timeout,
            [this, t, id, wait_node, wait_oid]() {
              if (t->id != id) return;  // already finished
              // Withdraw the request iff it is still queued; a false
              // return means the lock was granted in the meantime.
              if (!node(wait_node)->locks().CancelRequest(id, wait_oid)) {
                return;
              }
              t->result.timed_out = true;
              ++wait_timeouts_;
              m_wait_timeouts_.Increment();
              Abort(t, TxnOutcome::kDeadlock);
            });
      }
      return;
    }
    case LockManager::AcquireOutcome::kDeadlock:
      m_deadlocks_.Increment();
      Abort(t, TxnOutcome::kDeadlock);
      return;
  }
}

void Executor::StepExecute(Inflight* t) {
  const ExecStep& step = t->steps[t->pc];
  SimTime cost = (!step.charge || (!step.op.IsWrite() &&
                                   !t->opts.charge_reads))
                     ? SimTime::Zero()
                     : t->opts.action_time;
  TxnId id = t->id;
  // The step mutates step.node's store/locks: run it on that node's
  // worker under the thread backend.
  sim_->ScheduleAfterNode(step.node, cost, [this, t, id]() {
    if (t->id != id) return;
    ApplyStep(t);
  });
}

void Executor::ApplyStep(Inflight* t) {
  const ExecStep& step = t->steps[t->pc];
  Node* n = node(step.node);
  if (step.kind == StepKind::kLockOnly) {
    // Lock held; the kQuorumApply step installs the value later.
    ++t->pc;
    StepAcquire(t);
    return;
  }
  if (step.kind == StepKind::kQuorumApply) {
    ApplyQuorumStep(t);
    return;
  }
  Value* buffered = FindWrite(t, step.node, step.op.oid);
  if (step.op.type == OpType::kRead) {
    // Visible value: own buffered write, else last committed value.
    t->result.reads.push_back(
        buffered != nullptr ? *buffered
                            : n->store().GetUnchecked(step.op.oid).value);
  } else if (buffered != nullptr) {
    step.op.ApplyTo(buffered);
  } else {
    // Remember the timestamp the transaction saw before its first
    // write here — lazy replica updates carry it as their "old time"
    // (Figure 4).
    const StoredObject& obj = n->store().GetUnchecked(step.op.oid);
    ObserveTs(t, step.node, step.op.oid, obj.ts);
    Value visible = obj.value;
    step.op.ApplyTo(&visible);
    PutWrite(t, step.node, step.op.oid, std::move(visible));
  }
  if (trace_ != nullptr) {
    Emit(TraceEventType::kOpApply, t, step.node, step.op.oid,
         step.op.ToString());
  }
  ++t->pc;
  StepAcquire(t);
}

void Executor::ApplyQuorumStep(Inflight* t) {
  const ExecStep& step = t->steps[t->pc];
  // Members of this op's write set: every step sharing its op_index.
  // All of them are locked by now (the kLockOnly steps precede this
  // one), so their values are frozen: read the newest version, apply
  // the op once, install the same value at every member. The member
  // list lives in executor scratch; it is fully consumed before
  // StepAcquire can reenter this function.
  std::vector<NodeId>& members = members_scratch_;
  members.clear();
  for (const ExecStep& s : t->steps) {
    if (s.op_index == step.op_index) members.push_back(s.node);
  }
  Value best;
  Timestamp best_ts;
  bool have_own = false;
  for (NodeId member : members) {
    if (const Value* buffered = FindWrite(t, member, step.op.oid)) {
      // Our own earlier (buffered) write is newer than anything
      // committed; prefer it.
      best = *buffered;
      have_own = true;
      break;
    }
    const StoredObject& obj =
        node(member)->store().GetUnchecked(step.op.oid);
    if (members.front() == member || obj.ts > best_ts) {
      best = obj.value;
      best_ts = obj.ts;
    }
  }
  if (!have_own) {
    // Record the observed timestamp at the step's node for lazy
    // record-building symmetry.
    ObserveTs(t, step.node, step.op.oid, best_ts);
  }
  step.op.ApplyTo(&best);
  for (NodeId member : members) {
    if (Value* slot = FindWrite(t, member, step.op.oid)) {
      *slot = best;
    } else {
      PutWrite(t, member, step.op.oid, best);
    }
  }
  if (trace_ != nullptr) {
    Emit(TraceEventType::kOpApply, t, step.node, step.op.oid,
         StrPrintf("quorum %s -> %s", step.op.ToString().c_str(),
                   best.ToString().c_str()));
  }
  ++t->pc;
  StepAcquire(t);
}

void Executor::BuildUpdateRecords(Inflight* t, Timestamp commit_ts) {
  // One record per installed (node, object), rebuilt from scratch so the
  // precommit pass (placeholder timestamp) and the commit pass (real
  // timestamp) agree. The buffer is sorted by (node, oid) — the same
  // order the ordered map it replaced iterated in.
  t->result.updates.clear();
  for (const WriteEntry& e : t->buffer) {
    UpdateRecord rec;
    rec.txn = t->id;
    rec.oid = e.oid;
    const Timestamp* observed = FindObserved(t, e.node, e.oid);
    rec.old_ts = observed != nullptr ? *observed : Timestamp::Zero();
    rec.new_ts = commit_ts;
    rec.new_value = e.value;
    rec.origin = e.node;
    rec.commit_time = sim_->Now();
    t->result.updates.push_back(std::move(rec));
  }
}

void Executor::Commit(Inflight* t) {
  Node* origin_node = node(t->origin);
  // The commit timestamp must order after every commit this transaction
  // serialized behind at any node it touched: pull all touched clocks
  // forward into the origin's before ticking. Otherwise two writers of
  // one object, serialized by its master's lock, could carry timestamps
  // in the opposite order and newer-wins slave refreshes would converge
  // to a value different from the master's (lost slave update).
  for (NodeId nid : t->touched_nodes) {
    origin_node->clock().Observe(node(nid)->clock().Peek());
  }
  Timestamp commit_ts = origin_node->clock().Tick();
  t->result.commit_ts = commit_ts;
  // Install buffered writes everywhere they were produced.
  for (const WriteEntry& e : t->buffer) {
    Node* n = node(e.node);
    n->clock().Observe(commit_ts);
    Status s = n->store().Put(e.oid, e.value, commit_ts);
    assert(s.ok());
    (void)s;
  }
  // Stamp the pre-built update records with the real commit timestamp.
  if (t->opts.record_updates) BuildUpdateRecords(t, commit_ts);
  // WAL path: log every installed write at its node, then hold locks
  // (and the caller's `done`) until each touched log reports the
  // records durable. The buffer is (node, oid)-sorted, so node runs
  // are contiguous — one durability wait per written node.
  std::uint32_t waits = 0;
  if (durability_ != nullptr && !t->buffer.empty()) {
    for (std::size_t i = 0; i < t->buffer.size();) {
      const NodeId nid = t->buffer[i].node;
      const bool enabled = durability_->Enabled(nid);
      for (; i < t->buffer.size() && t->buffer[i].node == nid; ++i) {
        if (!enabled) continue;
        const WriteEntry& e = t->buffer[i];
        const Timestamp* observed = FindObserved(t, nid, e.oid);
        durability_->LogWrite(
            nid, t->id, e.oid,
            observed != nullptr ? *observed : Timestamp::Zero(), commit_ts,
            e.value);
      }
      if (enabled) ++waits;
    }
  }
  if (waits == 0) {
    // No durability to wait on: the pre-WAL commit tail, verbatim.
    for (NodeId nid : t->touched_nodes) {
      node(nid)->locks().ReleaseAll(t->id);
    }
    t->result.outcome = TxnOutcome::kCommitted;
    t->result.end_time = sim_->Now();
    ++committed_;
    m_committed_.Increment();
    if (trace_ != nullptr) {
      Emit(TraceEventType::kTxnCommit, t, t->origin, 0,
           StrPrintf("ts=%s", commit_ts.ToString().c_str()));
    }
    Finish(t);
    return;
  }
  // The transaction is committed the instant its writes are installed;
  // durability only gates completion (and thus lock release).
  t->result.outcome = TxnOutcome::kCommitted;
  ++committed_;
  m_committed_.Increment();
  if (trace_ != nullptr) {
    Emit(TraceEventType::kTxnCommit, t, t->origin, 0,
         StrPrintf("ts=%s", commit_ts.ToString().c_str()));
  }
  t->pending_durability = waits;
  const TxnId id = t->id;
  for (std::size_t i = 0; i < t->buffer.size();) {
    const NodeId nid = t->buffer[i].node;
    while (i < t->buffer.size() && t->buffer[i].node == nid) ++i;
    if (!durability_->Enabled(nid)) continue;
    durability_->RequestCommitDurability(
        nid, [this, t, id]() { OnDurable(t, id); });
  }
}

void Executor::CompleteCommit(Inflight* t) {
  for (NodeId nid : t->touched_nodes) {
    node(nid)->locks().ReleaseAll(t->id);
  }
  t->result.end_time = sim_->Now();
  Finish(t);
}

void Executor::OnDurable(Inflight* t, TxnId id) {
  // Ids are never reused, so a recycled slot cannot be mistaken for the
  // transaction that parked here (mirrors the step continuations).
  if (t->id != id) return;
  assert(t->pending_durability > 0);
  if (--t->pending_durability > 0) return;
  CompleteCommit(t);
}

void Executor::Abort(Inflight* t, TxnOutcome outcome) {
  assert(outcome != TxnOutcome::kCommitted);
  for (NodeId nid : t->touched_nodes) {
    node(nid)->locks().ReleaseAll(t->id);
  }
  t->result.outcome = outcome;
  t->result.end_time = sim_->Now();
  if (outcome == TxnOutcome::kDeadlock) {
    ++deadlocked_;
  } else {
    ++rejected_;
    m_rejected_.Increment();
  }
  if (trace_ != nullptr) {
    Emit(TraceEventType::kTxnAbort, t, t->origin, 0,
         std::string(TxnOutcomeToString(outcome)));
  }
  Finish(t);
}

void Executor::Finish(Inflight* t) {
  --active_;
  // The observer and done callback commonly start new transactions
  // (retry loops, lazy propagation); the record is recycled only after
  // both return, so `t->result` stays valid throughout and any
  // transaction they start draws a different pool slot.
  if (t->opts.observer != nullptr) t->opts.observer->OnTxnDone(t->result);
  if (t->done) {
    DoneCallback done = std::move(t->done);
    done(t->result);
  }
  RecycleInflight(t);
}

std::vector<ExecStep> LocalPlan(NodeId node, const Program& program) {
  std::vector<ExecStep> steps;
  steps.reserve(program.size());
  LocalPlanInto(node, program, &steps);
  return steps;
}

void LocalPlanInto(NodeId node, const Program& program,
                   std::vector<ExecStep>* out) {
  for (const Op& op : program.ops()) {
    out->push_back(ExecStep{node, op});
  }
}

}  // namespace tdr
