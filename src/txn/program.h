#ifndef TDR_TXN_PROGRAM_H_
#define TDR_TXN_PROGRAM_H_

#include <map>
#include <string>
#include <vector>

#include "storage/types.h"
#include "txn/op.h"

namespace tdr {

/// A transaction program: an ordered list of ops. Programs are the unit
/// the two-tier scheme ships from mobile to base nodes — "sends all its
/// tentative transactions (and all their input parameters) to the base
/// node to be executed in the order in which they committed" (§7).
class Program {
 public:
  Program() = default;
  explicit Program(std::vector<Op> ops) : ops_(std::move(ops)) {}

  const std::vector<Op>& ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }
  const Op& op(std::size_t i) const { return ops_[i]; }

  Program& Add(Op op) {
    ops_.push_back(op);
    return *this;
  }

  /// Empties the program, retaining capacity (scratch-program reuse in
  /// the workload hot path).
  void Clear() { ops_.clear(); }

  /// Distinct objects the program touches, ascending — the transaction's
  /// *scope* in the §7 sense. The scope rule check in the two-tier core
  /// walks this list.
  std::vector<ObjectId> Objects() const;

  /// Distinct objects the program writes, ascending.
  std::vector<ObjectId> WriteSet() const;

  /// Number of write ops ("Actions": the model counts updates only —
  /// "Reads are ignored").
  std::size_t WriteActionCount() const;

  /// True if every op of this program commutes with every op of `other`
  /// (conservative pairwise test). Commuting transactions "can be
  /// applied in any order" (§6) — the property that drives the two-tier
  /// reconciliation rate to zero.
  bool CommutesWith(const Program& other) const;

  /// True if all of this program's ops are from the commutative subset,
  /// i.e. it commutes with any other such program.
  bool IsFullyCommutative() const;

  std::string ToString() const;

  friend bool operator==(const Program& a, const Program& b) {
    return a.ops_ == b.ops_;
  }

 private:
  std::vector<Op> ops_;
};

/// Evaluates a program against a plain map image of the database —
/// the reference (non-concurrent) semantics used by tests and by the
/// §6 convergence schemes. Missing objects read as scalar zero.
/// Returns the values read by kRead ops, in program order.
std::vector<Value> EvaluateProgram(const Program& program,
                                   std::map<ObjectId, Value>* state);

}  // namespace tdr

#endif  // TDR_TXN_PROGRAM_H_
