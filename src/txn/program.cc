#include "txn/program.h"

#include <algorithm>

namespace tdr {

std::vector<ObjectId> Program::Objects() const {
  std::vector<ObjectId> ids;
  ids.reserve(ops_.size());
  for (const Op& op : ops_) ids.push_back(op.oid);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::vector<ObjectId> Program::WriteSet() const {
  std::vector<ObjectId> ids;
  ids.reserve(ops_.size());
  for (const Op& op : ops_) {
    if (op.IsWrite()) ids.push_back(op.oid);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::size_t Program::WriteActionCount() const {
  std::size_t n = 0;
  for (const Op& op : ops_) {
    if (op.IsWrite()) ++n;
  }
  return n;
}

bool Program::CommutesWith(const Program& other) const {
  for (const Op& a : ops_) {
    for (const Op& b : other.ops_) {
      if (!OpsCommute(a, b)) return false;
    }
  }
  return true;
}

bool Program::IsFullyCommutative() const {
  // Reads commute with reads but not with writes, so a program with a
  // read is only unconditionally commutative if nothing writes the read
  // object — too strong a guarantee to claim here; require pure
  // commutative *updates* plus reads of objects the program itself does
  // not treat as order-sensitive. The simple sound rule: every op is
  // Add/Subtract/Append (no reads, no writes, no multiplies).
  for (const Op& op : ops_) {
    if (op.type != OpType::kAdd && op.type != OpType::kSubtract &&
        op.type != OpType::kAppend) {
      return false;
    }
  }
  return true;
}

std::string Program::ToString() const {
  std::string out = "[";
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (i > 0) out += " ";
    out += ops_[i].ToString();
  }
  out += "]";
  return out;
}

std::vector<Value> EvaluateProgram(const Program& program,
                                   std::map<ObjectId, Value>* state) {
  std::vector<Value> reads;
  for (const Op& op : program.ops()) {
    Value& slot = (*state)[op.oid];
    if (op.type == OpType::kRead) {
      reads.push_back(slot);
    } else {
      op.ApplyTo(&slot);
    }
  }
  return reads;
}

}  // namespace tdr
