#ifndef TDR_TXN_NODE_H_
#define TDR_TXN_NODE_H_

#include <memory>
#include <vector>

#include "storage/object_store.h"
#include "storage/timestamp.h"
#include "storage/update_log.h"
#include "txn/lock_manager.h"
#include "txn/wait_for_graph.h"

namespace tdr {

/// One simulated database node: a full replica of the database plus the
/// local transaction machinery ("each node storing a replica of all
/// objects", §2 model). Replication schemes and the two-tier core layer
/// compose behaviour on top; Node itself is policy-free.
class Node {
 public:
  /// `shards` may be null (single-shard lock table) and must otherwise
  /// outlive the node.
  Node(NodeId id, std::uint64_t db_size, WaitForGraph* graph,
       bool detect_deadlock_cycles = true, const ShardMap* shards = nullptr)
      : id_(id),
        store_(db_size),
        locks_(id, db_size, graph, detect_deadlock_cycles, shards),
        clock_(id) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }

  ObjectStore& store() { return store_; }
  const ObjectStore& store() const { return store_; }

  LockManager& locks() { return locks_; }
  const LockManager& locks() const { return locks_; }

  LamportClock& clock() { return clock_; }

  /// Commit-ordered outbound replica updates not yet propagated (lazy
  /// schemes; accumulates while a mobile node is disconnected).
  UpdateLog& out_log() { return out_log_; }
  const UpdateLog& out_log() const { return out_log_; }

  /// Connectivity flag maintained by the net module's ConnectivitySchedule.
  bool connected() const { return connected_; }
  void set_connected(bool connected) { connected_ = connected; }

  /// Crash flag maintained by Network::Crash/Restart. A crashed node is
  /// always disconnected, but unlike a deliberately disconnected mobile
  /// node it loses its volatile receive buffers and must not originate
  /// work; the store and out_log survive (they model the durable state
  /// a recovery log restores).
  bool crashed() const { return crashed_; }
  void set_crashed(bool crashed) { crashed_ = crashed; }

 private:
  NodeId id_;
  ObjectStore store_;
  LockManager locks_;
  LamportClock clock_;
  UpdateLog out_log_;
  bool connected_ = true;
  bool crashed_ = false;
};

}  // namespace tdr

#endif  // TDR_TXN_NODE_H_
