#ifndef TDR_TXN_LOCK_MANAGER_H_
#define TDR_TXN_LOCK_MANAGER_H_

#include <cstdint>
#include <vector>

#include "sim/callback.h"
#include "storage/shard_map.h"
#include "storage/types.h"
#include "txn/wait_for_graph.h"
#include "util/flat_map.h"

namespace tdr {

/// Per-node exclusive lock manager with FIFO wait queues and immediate
/// deadlock detection against a cluster-global WaitForGraph.
///
/// The paper's model uses pure write locking: "it ignores true
/// serialization, and assumes a weak multi-version form of
/// committed-read serialization (no read locks)". Reads never come here;
/// writes take exclusive object locks held to commit/abort (strict 2PL
/// on writes).
///
/// IMPORTANT CONTRACT: a transaction may have at most one outstanding
/// (queued) lock request across the whole cluster at a time — our
/// transactions execute actions sequentially, which guarantees this.
/// The wait-for bookkeeping relies on it.
///
/// Representation: object ids are dense by construction (ObjectStore
/// is 0..db_size), so the lock table is one flat slot per object —
/// holder plus an intrusive FIFO of pooled waiters (SBO grant
/// callbacks, sim/callback.h) — instead of the ordered maps it
/// replaced. Semantics are bit-for-bit identical: grant order is the
/// queue's FIFO order, wait-for edges are installed/removed at exactly
/// the same points, and the reverse (txn -> held objects) index keeps
/// insertion order so ReleaseAll releases in acquisition order.
/// Steady state allocates nothing: waiter slots and held-entry vectors
/// recycle through free lists, and the reverse index is a
/// backward-shift-deleting flat map that never rehashes once the
/// workload's concurrency high-water is reached.
class LockManager {
 public:
  enum class AcquireOutcome {
    kGranted,   // lock acquired immediately (or already held)
    kQueued,    // on_grant will fire when the lock is granted
    kDeadlock,  // queuing would close a wait-for cycle; request dropped
  };

  using GrantCallback = sim::Callback;

  /// `db_size` bounds the object ids this manager may see (the flat
  /// table has one slot per object). `graph` is shared across all lock
  /// managers of a cluster and must outlive them. With `detect_cycles`
  /// false the wait-for graph is still maintained (for diagnostics) but
  /// requests that close a cycle simply QUEUE — deadlock resolution is
  /// then someone else's job (e.g. the executor's wait timeouts). That
  /// is the production timeout-based alternative the ablation bench
  /// compares against.
  ///
  /// `shards` (may be null = one shard, must otherwise outlive the
  /// manager) no longer changes the table layout — the flat table is
  /// already O(1) per object — but still labels each wait with its
  /// shard for the hot-shard diagnostics.
  LockManager(NodeId node, std::uint64_t db_size, WaitForGraph* graph,
              bool detect_cycles = true, const ShardMap* shards = nullptr)
      : node_(node),
        graph_(graph),
        detect_cycles_(detect_cycles),
        shards_(shards),
        slots_(db_size),
        shard_waits_(shards != nullptr ? shards->num_shards() : 1, 0) {}

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Requests the exclusive lock on `oid` for `txn`. Re-acquiring a held
  /// lock returns kGranted. On kQueued, `on_grant` fires exactly once
  /// when the transaction reaches the front; on kDeadlock the request
  /// has been dropped (the requester is the victim — the paper's
  /// per-transaction deadlock hazard, Eq. 3) and `on_grant` never fires.
  AcquireOutcome Acquire(TxnId txn, ObjectId oid, GrantCallback on_grant);

  /// Releases a held lock; grants to the next queued waiter, if any.
  /// Releasing a lock that is not held by `txn` is an internal error and
  /// is ignored (counted in `bad_releases()` for tests to assert on).
  void Release(TxnId txn, ObjectId oid);

  /// Releases every lock `txn` holds at this node (commit/abort path),
  /// in acquisition order.
  void ReleaseAll(TxnId txn);

  /// Withdraws a queued request (the waiter aborted for another reason).
  /// Returns true if a request was withdrawn.
  bool CancelRequest(TxnId txn, ObjectId oid);

  bool Holds(TxnId txn, ObjectId oid) const;

  /// Number of locks `txn` currently holds at this node.
  std::size_t HeldCount(TxnId txn) const;

  /// Number of objects currently locked at this node.
  std::size_t LockedObjectCount() const { return locked_objects_; }

  /// Number of transactions queued (waiting) at this node.
  std::size_t WaiterCount() const { return waiter_count_; }

  std::uint64_t total_waits() const { return total_waits_; }
  std::uint64_t total_deadlocks() const { return total_deadlocks_; }
  std::uint64_t bad_releases() const { return bad_releases_; }

  /// Lock waits that queued on objects of `shard` (0 for out-of-range
  /// shards) — the hot-shard contention signal.
  std::uint64_t shard_waits(ShardId shard) const {
    return shard < shard_waits_.size() ? shard_waits_[shard] : 0;
  }
  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(shard_waits_.size());
  }

  NodeId node() const { return node_; }
  std::uint64_t db_size() const { return slots_.size(); }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// Flat per-object lock slot; q_head/q_tail index the waiter pool.
  struct Slot {
    TxnId holder = kInvalidTxnId;
    std::uint32_t q_head = kNil;
    std::uint32_t q_tail = kNil;
  };

  /// Pooled wait-queue node (free-listed through `next`).
  struct Waiter {
    TxnId txn = kInvalidTxnId;
    sim::Callback on_grant;
    std::uint32_t next = kNil;
  };

  ShardId ShardOf(ObjectId oid) const {
    return shards_ != nullptr ? shards_->ShardOf(oid) : 0;
  }

  std::uint32_t AcquireWaiter(TxnId txn, sim::Callback on_grant);
  void RecycleWaiter(std::uint32_t idx);
  std::uint32_t AcquireHeldEntry();
  void RecycleHeldEntry(std::uint32_t idx);
  void HeldPush(TxnId txn, ObjectId oid);
  void HeldErase(TxnId txn, ObjectId oid);
  /// Release with optional reverse-index maintenance (ReleaseAll
  /// detaches the whole entry up front and skips per-oid erases).
  void ReleaseLocked(TxnId txn, ObjectId oid, bool update_held);

  NodeId node_;
  WaitForGraph* graph_;
  bool detect_cycles_;
  const ShardMap* shards_;
  std::vector<Slot> slots_;  // one per object id
  std::vector<std::uint64_t> shard_waits_;
  // Waiter pool, free-listed through Waiter::next.
  std::vector<Waiter> waiters_;
  std::uint32_t free_waiter_ = kNil;
  // Reverse index: txn -> pooled vector of held object ids (insertion
  // = acquisition order, preserved by HeldErase).
  FlatMap64<std::uint32_t> held_index_;
  std::vector<std::vector<ObjectId>> held_entries_;
  std::vector<std::uint32_t> held_free_;
  std::size_t locked_objects_ = 0;
  std::size_t waiter_count_ = 0;
  std::uint64_t total_waits_ = 0;
  std::uint64_t total_deadlocks_ = 0;
  std::uint64_t bad_releases_ = 0;
};

}  // namespace tdr

#endif  // TDR_TXN_LOCK_MANAGER_H_
