#ifndef TDR_TXN_LOCK_MANAGER_H_
#define TDR_TXN_LOCK_MANAGER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "storage/shard_map.h"
#include "storage/types.h"
#include "txn/wait_for_graph.h"

namespace tdr {

/// Per-node exclusive lock manager with FIFO wait queues and immediate
/// deadlock detection against a cluster-global WaitForGraph.
///
/// The paper's model uses pure write locking: "it ignores true
/// serialization, and assumes a weak multi-version form of
/// committed-read serialization (no read locks)". Reads never come here;
/// writes take exclusive object locks held to commit/abort (strict 2PL
/// on writes).
///
/// IMPORTANT CONTRACT: a transaction may have at most one outstanding
/// (queued) lock request across the whole cluster at a time — our
/// transactions execute actions sequentially, which guarantees this.
/// The wait-for bookkeeping relies on it.
class LockManager {
 public:
  enum class AcquireOutcome {
    kGranted,   // lock acquired immediately (or already held)
    kQueued,    // on_grant will fire when the lock is granted
    kDeadlock,  // queuing would close a wait-for cycle; request dropped
  };

  using GrantCallback = std::function<void()>;

  /// `graph` is shared across all lock managers of a cluster and must
  /// outlive them. With `detect_cycles` false the wait-for graph is
  /// still maintained (for diagnostics) but requests that close a cycle
  /// simply QUEUE — deadlock resolution is then someone else's job
  /// (e.g. the executor's wait timeouts). That is the production
  /// timeout-based alternative the ablation bench compares against.
  ///
  /// `shards` (may be null = one shard, must otherwise outlive the
  /// manager) splits the lock table into one ordered map per shard.
  /// Lock semantics are identical at any shard count — sharding only
  /// shrinks the per-structure footprint, so lookups on a loaded node
  /// search a table S times smaller. Per-shard wait counters feed the
  /// hot-shard diagnostics.
  LockManager(NodeId node, WaitForGraph* graph, bool detect_cycles = true,
              const ShardMap* shards = nullptr)
      : node_(node),
        graph_(graph),
        detect_cycles_(detect_cycles),
        shards_(shards),
        tables_(shards != nullptr ? shards->num_shards() : 1),
        shard_waits_(tables_.size(), 0) {}

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Requests the exclusive lock on `oid` for `txn`. Re-acquiring a held
  /// lock returns kGranted. On kQueued, `on_grant` fires exactly once
  /// when the transaction reaches the front; on kDeadlock the request
  /// has been dropped (the requester is the victim — the paper's
  /// per-transaction deadlock hazard, Eq. 3) and `on_grant` never fires.
  AcquireOutcome Acquire(TxnId txn, ObjectId oid, GrantCallback on_grant);

  /// Releases a held lock; grants to the next queued waiter, if any.
  /// Releasing a lock that is not held by `txn` is an internal error and
  /// is ignored (counted in `bad_releases()` for tests to assert on).
  void Release(TxnId txn, ObjectId oid);

  /// Releases every lock `txn` holds at this node (commit/abort path).
  void ReleaseAll(TxnId txn);

  /// Withdraws a queued request (the waiter aborted for another reason).
  /// Returns true if a request was withdrawn.
  bool CancelRequest(TxnId txn, ObjectId oid);

  bool Holds(TxnId txn, ObjectId oid) const;

  /// Number of locks `txn` currently holds at this node.
  std::size_t HeldCount(TxnId txn) const;

  /// Number of objects currently locked at this node.
  std::size_t LockedObjectCount() const;

  /// Number of transactions queued (waiting) at this node.
  std::size_t WaiterCount() const;

  std::uint64_t total_waits() const { return total_waits_; }
  std::uint64_t total_deadlocks() const { return total_deadlocks_; }
  std::uint64_t bad_releases() const { return bad_releases_; }

  /// Lock waits that queued on `shard`'s table (0 for out-of-range
  /// shards) — the hot-shard contention signal.
  std::uint64_t shard_waits(ShardId shard) const {
    return shard < shard_waits_.size() ? shard_waits_[shard] : 0;
  }
  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(tables_.size());
  }

  NodeId node() const { return node_; }

 private:
  struct Waiter {
    TxnId txn;
    GrantCallback on_grant;
  };
  struct LockState {
    TxnId holder = kInvalidTxnId;
    std::deque<Waiter> queue;
  };

  /// Installs wait-for edges for a newly queued waiter: edge to the
  /// holder and to each earlier waiter (FIFO queues mean you wait behind
  /// them too).
  void AddWaitEdges(const LockState& state, TxnId waiter) const;

  ShardId ShardOf(ObjectId oid) const {
    return shards_ != nullptr ? shards_->ShardOf(oid) : 0;
  }
  std::map<ObjectId, LockState>& TableOf(ObjectId oid) {
    return tables_[ShardOf(oid)];
  }
  const std::map<ObjectId, LockState>& TableOf(ObjectId oid) const {
    return tables_[ShardOf(oid)];
  }

  NodeId node_;
  WaitForGraph* graph_;
  bool detect_cycles_;
  const ShardMap* shards_;
  // Per-shard lock tables holding only objects locked or queued. One
  // table when unsharded.
  std::vector<std::map<ObjectId, LockState>> tables_;
  std::vector<std::uint64_t> shard_waits_;
  // Reverse index: locks held per txn, for ReleaseAll.
  std::unordered_map<TxnId, std::vector<ObjectId>> held_;
  std::uint64_t total_waits_ = 0;
  std::uint64_t total_deadlocks_ = 0;
  std::uint64_t bad_releases_ = 0;
};

}  // namespace tdr

#endif  // TDR_TXN_LOCK_MANAGER_H_
