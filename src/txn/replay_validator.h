#ifndef TDR_TXN_REPLAY_VALIDATOR_H_
#define TDR_TXN_REPLAY_VALIDATOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "storage/object_store.h"
#include "storage/timestamp.h"
#include "txn/program.h"

namespace tdr {

/// Checks single-copy serializability after the fact — §7 property 2:
/// "Base transactions execute with single-copy serializability, so the
/// master base system state is the result of a serializable execution."
///
/// Callers record every committed transaction's program and commit
/// timestamp. Replaying the programs serially in commit-timestamp order
/// over a fresh database image must reproduce the live system's final
/// state exactly:
///  * strict two-phase locking on writes makes conflicting transactions
///    commit in timestamp order (the executor's commit rule pulls every
///    touched clock forward before ticking), and
///  * non-conflicting transactions commute,
/// so any mismatch indicates a concurrency-control bug (lost update,
/// dirty write, timestamp inversion). Tests and examples use this as an
/// end-to-end oracle.
class ReplayValidator {
 public:
  ReplayValidator() = default;

  /// Records one committed transaction. Programs must be the exact
  /// programs executed (the two-tier core records the BASE executions,
  /// not the tentative ones).
  void RecordCommit(const Program& program, Timestamp commit_ts);

  std::size_t recorded() const { return log_.size(); }

  /// Replays all recorded programs in commit-timestamp order over an
  /// all-zero image and returns the resulting state (absent objects are
  /// scalar zero).
  std::map<ObjectId, Value> ReplaySerial() const;

  /// True if the serial replay reproduces `store`'s values exactly.
  bool Matches(const ObjectStore& store) const;

  /// Object ids where replay and `store` disagree, ascending.
  std::vector<ObjectId> Divergence(const ObjectStore& store) const;

  void Clear() { log_.clear(); }

 private:
  struct Entry {
    Timestamp commit_ts;
    Program program;
  };

  std::vector<Entry> log_;
};

}  // namespace tdr

#endif  // TDR_TXN_REPLAY_VALIDATOR_H_
