#ifndef TDR_TXN_DURABILITY_H_
#define TDR_TXN_DURABILITY_H_

#include "sim/callback.h"
#include "storage/timestamp.h"
#include "storage/types.h"

namespace tdr {

/// Commit durability policy (what the WAL does between a transaction's
/// install and its completion).
enum class DurabilityMode : std::uint8_t {
  /// No log. Crash recovery falls back to the legacy model (stores
  /// survive crashes, outboxes act as a durable update log).
  kOff = 0,
  /// One fsync per committing transaction, serialized per node: the
  /// commit waits for its own flush. The paper-era baseline that group
  /// commit exists to beat.
  kCommit = 1,
  /// Group commit: appends accumulate; a flush fires on a small window
  /// timer or a batch-size cap, and every commit whose records it
  /// covers completes together.
  kGroup = 2,
};

inline const char* DurabilityModeName(DurabilityMode mode) {
  switch (mode) {
    case DurabilityMode::kOff:
      return "off";
    case DurabilityMode::kCommit:
      return "commit";
    case DurabilityMode::kGroup:
      return "group";
  }
  return "?";
}

/// The executor's seam to the write-ahead log (src/wal). Lives in txn/
/// so the executor does not depend on the wal module; WalSet implements
/// it. All calls happen inside runtime events at `node` (the executor
/// commits under the origin's event), so implementations need no
/// locking of their own.
class DurabilityHook {
 public:
  virtual ~DurabilityHook() = default;

  /// False disables logging for `node` entirely (commit behaves as
  /// DurabilityMode::kOff there).
  virtual bool Enabled(NodeId node) const = 0;

  /// Appends one committed write to `node`'s log. Called after the
  /// store install, before locks release. `old_ts` is the timestamp the
  /// write replaced (Timestamp::Zero() when unobserved).
  virtual void LogWrite(NodeId node, TxnId txn, ObjectId oid,
                        const Timestamp& old_ts, const Timestamp& new_ts,
                        const Value& value) = 0;

  /// Asks `node`'s committer to make everything logged so far durable
  /// and fire `done` (exactly once, in simulated time) when it is. On a
  /// crashed node `done` still fires — void, so commits never leak
  /// locks — but the records are gone.
  virtual void RequestCommitDurability(NodeId node, sim::Callback done) = 0;
};

}  // namespace tdr

#endif  // TDR_TXN_DURABILITY_H_
