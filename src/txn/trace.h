#ifndef TDR_TXN_TRACE_H_
#define TDR_TXN_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "storage/types.h"
#include "util/sim_time.h"

namespace tdr {

/// Protocol-level trace events emitted by the executor and the replica
/// applier. Traces make the paper's protocol figures (1, 4, 5)
/// reproducible as actual executions — see examples/protocol_traces —
/// and give tests a window into ordering without poking at internals.
enum class TraceEventType : std::uint8_t {
  kTxnStart = 0,
  kLockWait = 1,        // request queued behind a holder
  kLockGrant = 2,       // queued request granted
  kOpApply = 3,         // one action applied (buffered)
  kTxnCommit = 4,
  kTxnAbort = 5,        // deadlock victim or rejected
  kReplicaTxnStart = 6, // replica-update transaction begins at a node
  kReplicaApply = 7,    // one replica update installed
  kReplicaStale = 8,    // newer-wins suppressed a stale update
  kReplicaConflict = 9, // timestamp-match failed: reconciliation needed
  kReplicaTxnDone = 10,
};

std::string_view TraceEventTypeToString(TraceEventType type);

struct TraceEvent {
  SimTime time;
  TraceEventType type = TraceEventType::kTxnStart;
  TxnId txn = kInvalidTxnId;
  NodeId node = 0;
  ObjectId oid = 0;
  /// For replica-side events: the ORIGIN transaction whose updates are
  /// being applied (kInvalidTxnId when not applicable). This is what
  /// lets trace exporters draw a flow from a commit at the origin node
  /// to its replica applications elsewhere.
  TxnId root = kInvalidTxnId;
  std::string detail;

  std::string ToString() const;
};

/// Receives trace events. Implementations must not re-enter the
/// component that emitted the event.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnEvent(const TraceEvent& event) = 0;
};

/// Collects events in memory (tests, examples).
class VectorTraceSink : public TraceSink {
 public:
  void OnEvent(const TraceEvent& event) override {
    events_.push_back(event);
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

  /// Events of one type, in order.
  std::vector<TraceEvent> OfType(TraceEventType type) const;

  /// Multi-line, time-ordered rendering (events are already emitted in
  /// simulated-time order).
  std::string ToString() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace tdr

#endif  // TDR_TXN_TRACE_H_
