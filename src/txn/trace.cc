#include "txn/trace.h"

#include "util/logging.h"

namespace tdr {

std::string_view TraceEventTypeToString(TraceEventType type) {
  switch (type) {
    case TraceEventType::kTxnStart:
      return "txn-start";
    case TraceEventType::kLockWait:
      return "lock-wait";
    case TraceEventType::kLockGrant:
      return "lock-grant";
    case TraceEventType::kOpApply:
      return "op-apply";
    case TraceEventType::kTxnCommit:
      return "txn-commit";
    case TraceEventType::kTxnAbort:
      return "txn-abort";
    case TraceEventType::kReplicaTxnStart:
      return "replica-start";
    case TraceEventType::kReplicaApply:
      return "replica-apply";
    case TraceEventType::kReplicaStale:
      return "replica-stale";
    case TraceEventType::kReplicaConflict:
      return "replica-CONFLICT";
    case TraceEventType::kReplicaTxnDone:
      return "replica-done";
  }
  return "?";
}

std::string TraceEvent::ToString() const {
  return StrPrintf("%10s  n%-2u txn%-4llu %-16s o%-4llu %s",
                   time.ToString().c_str(), node,
                   (unsigned long long)txn,
                   std::string(TraceEventTypeToString(type)).c_str(),
                   (unsigned long long)oid, detail.c_str());
}

std::vector<TraceEvent> VectorTraceSink::OfType(TraceEventType type) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.type == type) out.push_back(e);
  }
  return out;
}

std::string VectorTraceSink::ToString() const {
  std::string out;
  for (const TraceEvent& e : events_) {
    out += e.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace tdr
