#include "txn/wait_for_graph.h"

#include <algorithm>

namespace tdr {

void WaitForGraph::AddEdge(TxnId waiter, TxnId holder) {
  if (waiter == holder) return;  // self-waits are meaningless here
  out_[waiter].insert(holder);
  in_[holder].insert(waiter);
}

void WaitForGraph::RemoveEdge(TxnId waiter, TxnId holder) {
  auto oit = out_.find(waiter);
  if (oit != out_.end()) {
    oit->second.erase(holder);
    if (oit->second.empty()) out_.erase(oit);
  }
  auto iit = in_.find(holder);
  if (iit != in_.end()) {
    iit->second.erase(waiter);
    if (iit->second.empty()) in_.erase(iit);
  }
}

void WaitForGraph::RemoveTxn(TxnId txn) {
  auto oit = out_.find(txn);
  if (oit != out_.end()) {
    for (TxnId holder : oit->second) {
      auto iit = in_.find(holder);
      if (iit != in_.end()) {
        iit->second.erase(txn);
        if (iit->second.empty()) in_.erase(iit);
      }
    }
    out_.erase(oit);
  }
  auto iit = in_.find(txn);
  if (iit != in_.end()) {
    for (TxnId waiter : iit->second) {
      auto o2 = out_.find(waiter);
      if (o2 != out_.end()) {
        o2->second.erase(txn);
        if (o2->second.empty()) out_.erase(o2);
      }
    }
    in_.erase(iit);
  }
}

void WaitForGraph::ClearOutEdges(TxnId waiter) {
  auto oit = out_.find(waiter);
  if (oit == out_.end()) return;
  for (TxnId holder : oit->second) {
    auto iit = in_.find(holder);
    if (iit != in_.end()) {
      iit->second.erase(waiter);
      if (iit->second.empty()) in_.erase(iit);
    }
  }
  out_.erase(oit);
}

bool WaitForGraph::HasCycleFrom(TxnId start) const {
  return !FindCycleFrom(start).empty();
}

std::vector<TxnId> WaitForGraph::FindCycleFrom(TxnId start) const {
  // Iterative DFS recording the path; a return to `start` is a cycle.
  std::vector<TxnId> path;
  std::set<TxnId> visited;
  // Stack of (node, next-edge iterator position expressed as index).
  struct Frame {
    TxnId node;
    std::vector<TxnId> succ;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  auto successors = [this](TxnId t) -> std::vector<TxnId> {
    auto it = out_.find(t);
    if (it == out_.end()) return {};
    return {it->second.begin(), it->second.end()};
  };
  stack.push_back({start, successors(start), 0});
  visited.insert(start);
  path.push_back(start);
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next < top.succ.size()) {
      TxnId next = top.succ[top.next++];
      if (next == start) {
        return path;  // cycle closed
      }
      if (visited.insert(next).second) {
        stack.push_back({next, successors(next), 0});
        path.push_back(next);
      }
    } else {
      stack.pop_back();
      path.pop_back();
    }
  }
  return {};
}

std::size_t WaitForGraph::EdgeCount() const {
  std::size_t n = 0;
  for (const auto& [waiter, holders] : out_) n += holders.size();
  return n;
}

bool WaitForGraph::HasEdge(TxnId waiter, TxnId holder) const {
  auto it = out_.find(waiter);
  return it != out_.end() && it->second.count(holder) > 0;
}

std::vector<TxnId> WaitForGraph::OutEdges(TxnId waiter) const {
  auto it = out_.find(waiter);
  if (it == out_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

}  // namespace tdr
