#include "txn/wait_for_graph.h"

#include <algorithm>

namespace tdr {
namespace {

/// Inserts `x` into sorted `v` if absent; true if inserted.
bool SortedInsert(std::vector<TxnId>& v, TxnId x) {
  auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it != v.end() && *it == x) return false;
  v.insert(it, x);
  return true;
}

/// Erases `x` from sorted `v`; true if it was present.
bool SortedErase(std::vector<TxnId>& v, TxnId x) {
  auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) return false;
  v.erase(it);
  return true;
}

bool SortedContains(const std::vector<TxnId>& v, TxnId x) {
  return std::binary_search(v.begin(), v.end(), x);
}

}  // namespace

std::uint32_t WaitForGraph::EnsureNode(TxnId txn) {
  if (const std::uint32_t* idx = index_.Find(txn)) return *idx;
  std::uint32_t idx;
  if (!free_nodes_.empty()) {
    idx = free_nodes_.back();
    free_nodes_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
    // Uniform birth capacity: recycled entries come off the free list in
    // arbitrary order, so a shared floor keeps a deep wait queue from
    // re-growing whichever entry it happens to draw. 32 covers the FIFO
    // fan-out (edge to the holder plus every earlier waiter).
    nodes_.back().out.reserve(32);
    nodes_.back().in.reserve(32);
  }
  index_.Insert(txn, idx);
  return idx;
}

void WaitForGraph::MaybeRecycle(TxnId txn, std::uint32_t idx) {
  NodeEntry& e = nodes_[idx];
  if (!e.out.empty() || !e.in.empty()) return;
  index_.Erase(txn);
  free_nodes_.push_back(idx);  // clear() already implied: both lists empty
}

void WaitForGraph::AddEdge(TxnId waiter, TxnId holder) {
  if (waiter == holder) return;  // self-waits are meaningless here
  std::uint32_t wi = EnsureNode(waiter);
  std::uint32_t hi = EnsureNode(holder);  // may grow nodes_: index first
  if (SortedInsert(nodes_[wi].out, holder)) {
    SortedInsert(nodes_[hi].in, waiter);
    ++edges_;
  }
}

void WaitForGraph::RemoveEdge(TxnId waiter, TxnId holder) {
  if (const std::uint32_t* wi = index_.Find(waiter)) {
    std::uint32_t idx = *wi;
    if (SortedErase(nodes_[idx].out, holder)) --edges_;
    MaybeRecycle(waiter, idx);
  }
  if (const std::uint32_t* hi = index_.Find(holder)) {
    std::uint32_t idx = *hi;
    SortedErase(nodes_[idx].in, waiter);
    MaybeRecycle(holder, idx);
  }
}

void WaitForGraph::RemoveTxn(TxnId txn) {
  const std::uint32_t* pidx = index_.Find(txn);
  if (pidx == nullptr) return;
  std::uint32_t idx = *pidx;
  NodeEntry& e = nodes_[idx];
  for (TxnId holder : e.out) {
    if (const std::uint32_t* hi = index_.Find(holder)) {
      std::uint32_t h = *hi;
      SortedErase(nodes_[h].in, txn);
      MaybeRecycle(holder, h);
    }
  }
  edges_ -= e.out.size();
  e.out.clear();
  for (TxnId waiter : e.in) {
    if (const std::uint32_t* wi = index_.Find(waiter)) {
      std::uint32_t w = *wi;
      if (SortedErase(nodes_[w].out, txn)) --edges_;
      MaybeRecycle(waiter, w);
    }
  }
  e.in.clear();
  MaybeRecycle(txn, idx);
}

void WaitForGraph::ClearOutEdges(TxnId waiter) {
  const std::uint32_t* pidx = index_.Find(waiter);
  if (pidx == nullptr) return;
  std::uint32_t idx = *pidx;
  NodeEntry& e = nodes_[idx];
  for (TxnId holder : e.out) {
    if (const std::uint32_t* hi = index_.Find(holder)) {
      std::uint32_t h = *hi;
      SortedErase(nodes_[h].in, waiter);
      MaybeRecycle(holder, h);
    }
  }
  edges_ -= e.out.size();
  e.out.clear();
  MaybeRecycle(waiter, idx);
}

bool WaitForGraph::HasCycleFrom(TxnId start) const {
  const std::uint32_t* si = index_.Find(start);
  if (si == nullptr) return false;
  visited_.Clear();
  dfs_stack_.clear();
  visited_.Insert(start, 1);
  dfs_stack_.push_back(Frame{*si, 0});
  while (!dfs_stack_.empty()) {
    Frame& top = dfs_stack_.back();
    const std::vector<TxnId>& out = nodes_[top.node].out;
    if (top.next < out.size()) {
      TxnId next = out[top.next++];
      if (next == start) return true;
      if (visited_.Find(next) == nullptr) {
        visited_.Insert(next, 1);
        if (const std::uint32_t* ni = index_.Find(next)) {
          dfs_stack_.push_back(Frame{*ni, 0});
        }
      }
    } else {
      dfs_stack_.pop_back();
    }
  }
  return false;
}

std::vector<TxnId> WaitForGraph::FindCycleFrom(TxnId start) const {
  // Iterative DFS recording the path; a return to `start` is a cycle.
  // Same ascending successor order as HasCycleFrom, so the reported
  // cycle is the one whose existence that check proved.
  std::vector<TxnId> path;
  const std::uint32_t* si = index_.Find(start);
  if (si == nullptr) return path;
  visited_.Clear();
  dfs_stack_.clear();
  visited_.Insert(start, 1);
  dfs_stack_.push_back(Frame{*si, 0});
  path.push_back(start);
  while (!dfs_stack_.empty()) {
    Frame& top = dfs_stack_.back();
    const std::vector<TxnId>& out = nodes_[top.node].out;
    if (top.next < out.size()) {
      TxnId next = out[top.next++];
      if (next == start) return path;  // cycle closed
      if (visited_.Find(next) == nullptr) {
        visited_.Insert(next, 1);
        if (const std::uint32_t* ni = index_.Find(next)) {
          dfs_stack_.push_back(Frame{*ni, 0});
          path.push_back(next);
        }
      }
    } else {
      dfs_stack_.pop_back();
      path.pop_back();
    }
  }
  return {};
}

bool WaitForGraph::HasEdge(TxnId waiter, TxnId holder) const {
  const std::uint32_t* wi = index_.Find(waiter);
  return wi != nullptr && SortedContains(nodes_[*wi].out, holder);
}

std::vector<TxnId> WaitForGraph::OutEdges(TxnId waiter) const {
  const std::uint32_t* wi = index_.Find(waiter);
  if (wi == nullptr) return {};
  return nodes_[*wi].out;
}

}  // namespace tdr
