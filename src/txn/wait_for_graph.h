#ifndef TDR_TXN_WAIT_FOR_GRAPH_H_
#define TDR_TXN_WAIT_FOR_GRAPH_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "storage/types.h"

namespace tdr {

/// Cluster-global transaction wait-for graph.
///
/// "A deadlock consists of a cycle of transactions waiting for one
/// another" (§3). Every LockManager in a cluster registers its wait
/// edges here, so cycles that span nodes — the common case under eager
/// replication, where one transaction holds locks at N nodes — are
/// detected. The model assumes instantaneous perfect detection, which a
/// shared in-memory graph provides.
class WaitForGraph {
 public:
  WaitForGraph() = default;

  /// Adds a waiter -> holder edge. Parallel edges collapse (a waiter
  /// blocked behind the same transaction at two nodes needs one edge).
  void AddEdge(TxnId waiter, TxnId holder);

  void RemoveEdge(TxnId waiter, TxnId holder);

  /// Drops all edges from and to `txn` (commit/abort/grant cleanup).
  void RemoveTxn(TxnId txn);

  /// Clears every out-edge of `waiter` (its wait ended or changed).
  void ClearOutEdges(TxnId waiter);

  /// True if `start` can reach itself — i.e. adding its current edges
  /// closed a cycle. Iterative DFS.
  bool HasCycleFrom(TxnId start) const;

  /// The cycle through `start` if one exists (start, t1, ..., tk) with
  /// edges start->t1->...->tk->start; empty otherwise.
  std::vector<TxnId> FindCycleFrom(TxnId start) const;

  std::size_t EdgeCount() const;
  bool HasEdge(TxnId waiter, TxnId holder) const;

  /// Transactions `waiter` currently waits for.
  std::vector<TxnId> OutEdges(TxnId waiter) const;

 private:
  // Ordered containers keep traversal order deterministic.
  std::map<TxnId, std::set<TxnId>> out_;
  std::map<TxnId, std::set<TxnId>> in_;  // reverse index for RemoveTxn
};

}  // namespace tdr

#endif  // TDR_TXN_WAIT_FOR_GRAPH_H_
