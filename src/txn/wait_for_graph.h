#ifndef TDR_TXN_WAIT_FOR_GRAPH_H_
#define TDR_TXN_WAIT_FOR_GRAPH_H_

#include <cstdint>
#include <vector>

#include "storage/types.h"
#include "util/flat_map.h"

namespace tdr {

/// Cluster-global transaction wait-for graph.
///
/// "A deadlock consists of a cycle of transactions waiting for one
/// another" (§3). Every LockManager in a cluster registers its wait
/// edges here, so cycles that span nodes — the common case under eager
/// replication, where one transaction holds locks at N nodes — are
/// detected. The model assumes instantaneous perfect detection, which a
/// shared in-memory graph provides.
///
/// Adjacency lives in recycled flat nodes (sorted edge vectors indexed
/// by a FlatMap64), so the edge churn of every lock wait — AddEdge on
/// queue, ClearOutEdges on grant — allocates nothing in steady state.
/// Sorted vectors keep traversal in ascending-TxnId order, matching the
/// ordered-set iteration the deterministic sweeps were built on.
class WaitForGraph {
 public:
  WaitForGraph() = default;

  WaitForGraph(const WaitForGraph&) = delete;
  WaitForGraph& operator=(const WaitForGraph&) = delete;

  /// Adds a waiter -> holder edge. Parallel edges collapse (a waiter
  /// blocked behind the same transaction at two nodes needs one edge).
  void AddEdge(TxnId waiter, TxnId holder);

  void RemoveEdge(TxnId waiter, TxnId holder);

  /// Drops all edges from and to `txn` (commit/abort/grant cleanup).
  void RemoveTxn(TxnId txn);

  /// Clears every out-edge of `waiter` (its wait ended or changed).
  void ClearOutEdges(TxnId waiter);

  /// True if `start` can reach itself — i.e. adding its current edges
  /// closed a cycle. Iterative DFS over member scratch; allocation-free
  /// once the scratch has grown to the working set.
  bool HasCycleFrom(TxnId start) const;

  /// The cycle through `start` if one exists (start, t1, ..., tk) with
  /// edges start->t1->...->tk->start; empty otherwise. Diagnostic path:
  /// allocates its result.
  std::vector<TxnId> FindCycleFrom(TxnId start) const;

  std::size_t EdgeCount() const { return edges_; }
  bool HasEdge(TxnId waiter, TxnId holder) const;

  /// Transactions `waiter` currently waits for (ascending).
  std::vector<TxnId> OutEdges(TxnId waiter) const;

 private:
  /// Per-transaction adjacency, recycled with capacity retained. A
  /// transaction occupies a node while it has any in- or out-edge.
  struct NodeEntry {
    std::vector<TxnId> out;  // sorted ascending
    std::vector<TxnId> in;   // sorted ascending (reverse index)
  };

  std::uint32_t EnsureNode(TxnId txn);
  /// Frees `idx` back to the pool if its edge lists emptied.
  void MaybeRecycle(TxnId txn, std::uint32_t idx);

  FlatMap64<std::uint32_t> index_;  // TxnId -> nodes_ slot
  std::vector<NodeEntry> nodes_;
  std::vector<std::uint32_t> free_nodes_;
  std::size_t edges_ = 0;

  // HasCycleFrom scratch (capacity retained call to call).
  struct Frame {
    std::uint32_t node;  // nodes_ index
    std::uint32_t next;  // position in its out list
  };
  mutable std::vector<Frame> dfs_stack_;
  mutable FlatMap64<std::uint8_t> visited_;
};

}  // namespace tdr

#endif  // TDR_TXN_WAIT_FOR_GRAPH_H_
