#include "storage/shard_map.h"

#include <cassert>

#include "util/logging.h"

namespace tdr {

ShardMap::ShardMap(std::uint64_t db_size, std::uint32_t num_shards)
    : db_size_(db_size), num_shards_(num_shards) {
  assert(db_size_ > 0);
  if (num_shards_ == 0) num_shards_ = 1;
  if (num_shards_ > db_size_) {
    num_shards_ = static_cast<std::uint32_t>(db_size_);
  }
  base_ = db_size_ / num_shards_;
  rem_ = db_size_ % num_shards_;
}

std::string ShardMap::ToString() const {
  return StrPrintf("ShardMap{db_size=%llu shards=%u}",
                   (unsigned long long)db_size_, num_shards_);
}

}  // namespace tdr
