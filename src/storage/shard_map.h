#ifndef TDR_STORAGE_SHARD_MAP_H_
#define TDR_STORAGE_SHARD_MAP_H_

#include <cstdint>
#include <string>

#include "storage/types.h"

namespace tdr {

/// Shards are identified by a dense integer id in [0, num_shards).
using ShardId = std::uint32_t;

/// Range partition of the dense object-id space [0, db_size) into
/// `num_shards` contiguous, near-equal shards (the first `db_size %
/// num_shards` shards hold one extra object).
///
/// Sharding is the scale lever the replication model keeps pointing at:
/// per-update work grows with the number of objects guarded by one
/// structure, so the lock tables, replica appliers, and batch streams
/// all key their state off this map. Contiguous ranges (rather than a
/// hash) keep every per-shard operation a dense scan — shard digests,
/// shard clones, and the hot/cold skew workload are all contiguous-id
/// walks — and make "hot shard" mean what it does in a production
/// range-sharded store: a hot key range.
///
/// The map is pure arithmetic: no allocation, O(1) ShardOf, trivially
/// copyable, deterministic. A ShardMap with one shard is the unsharded
/// world and costs nothing.
class ShardMap {
 public:
  /// `num_shards` is clamped to [1, db_size] (at least one object per
  /// shard; a zero-shard or empty map is meaningless).
  ShardMap(std::uint64_t db_size, std::uint32_t num_shards);

  std::uint64_t db_size() const { return db_size_; }
  std::uint32_t num_shards() const { return num_shards_; }

  /// The shard owning `oid`. Requires oid < db_size().
  ShardId ShardOf(ObjectId oid) const {
    // First `rem_` shards span base_+1 ids each; the rest span base_.
    std::uint64_t wide_span = rem_ * (base_ + 1);
    if (oid < wide_span) {
      return static_cast<ShardId>(oid / (base_ + 1));
    }
    return static_cast<ShardId>(rem_ + (oid - wide_span) / base_);
  }

  /// First object id of `shard`. Requires shard < num_shards().
  ObjectId ShardBegin(ShardId shard) const {
    std::uint64_t wide = shard < rem_ ? shard : rem_;
    return shard * base_ + wide;
  }

  /// One past the last object id of `shard`.
  ObjectId ShardEnd(ShardId shard) const { return ShardBegin(shard + 1); }

  /// Objects in `shard`.
  std::uint64_t ShardSize(ShardId shard) const {
    return base_ + (shard < rem_ ? 1 : 0);
  }

  friend bool operator==(const ShardMap& a, const ShardMap& b) {
    return a.db_size_ == b.db_size_ && a.num_shards_ == b.num_shards_;
  }

  std::string ToString() const;

 private:
  std::uint64_t db_size_;
  std::uint32_t num_shards_;
  std::uint64_t base_;  // objects per shard, rounded down
  std::uint64_t rem_;   // shards carrying one extra object
};

}  // namespace tdr

#endif  // TDR_STORAGE_SHARD_MAP_H_
