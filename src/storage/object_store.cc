#include "storage/object_store.h"

#include "util/logging.h"

namespace tdr {

ObjectStore::ObjectStore(std::uint64_t db_size) : objects_(db_size) {}

Result<std::reference_wrapper<const StoredObject>> ObjectStore::Get(
    ObjectId oid) const {
  if (!Contains(oid)) {
    return Status::NotFound(StrPrintf("object %llu out of range (db=%zu)",
                                      (unsigned long long)oid,
                                      objects_.size()));
  }
  return std::cref(objects_[oid]);
}

Status ObjectStore::Put(ObjectId oid, Value value, Timestamp ts) {
  if (!Contains(oid)) {
    return Status::NotFound("Put: object out of range");
  }
  StoredObject& obj = objects_[oid];
  obj.value = std::move(value);
  obj.ts = ts;
  return Status::OK();
}

Status ObjectStore::ApplyIfTimestampMatches(ObjectId oid, const Value& value,
                                            Timestamp expected_old_ts,
                                            Timestamp new_ts) {
  if (!Contains(oid)) {
    return Status::NotFound("ApplyIfTimestampMatches: object out of range");
  }
  StoredObject& obj = objects_[oid];
  if (obj.ts != expected_old_ts) {
    // "If the current timestamp of the local replica does not match the
    // old timestamp seen by the root transaction, then the update may be
    // dangerous. ... the node rejects the incoming transaction and
    // submits it for reconciliation." (§4)
    //
    // This is the lazy-group hot path at every reconciliation — Eq. (14)
    // makes these frequent by design — so the message must fit the
    // small-string buffer: no formatting, no heap. The caller knows the
    // oid and both timestamps if it wants a detailed trace record.
    return Status::Conflict("ts mismatch");
  }
  obj.value = value;
  obj.ts = new_ts;
  return Status::OK();
}

Status ObjectStore::ApplyIfNewer(ObjectId oid, const Value& value,
                                 Timestamp new_ts, bool* applied) {
  if (!Contains(oid)) {
    return Status::NotFound("ApplyIfNewer: object out of range");
  }
  StoredObject& obj = objects_[oid];
  if (new_ts > obj.ts) {
    obj.value = value;
    obj.ts = new_ts;
    if (applied != nullptr) *applied = true;
  } else {
    // "If the record timestamp is newer than a replica update timestamp,
    // the update is stale and can be ignored." (§5)
    if (applied != nullptr) *applied = false;
  }
  return Status::OK();
}

bool ObjectStore::SameStateAs(const ObjectStore& other) const {
  if (objects_.size() != other.objects_.size()) return false;
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    if (objects_[i].value != other.objects_[i].value) return false;
    if (objects_[i].ts != other.objects_[i].ts) return false;
  }
  return true;
}

bool ObjectStore::SameValuesAs(const ObjectStore& other) const {
  if (objects_.size() != other.objects_.size()) return false;
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    if (objects_[i].value != other.objects_[i].value) return false;
  }
  return true;
}

std::uint64_t ObjectStore::DigestRange(ObjectId begin, ObjectId end) const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  auto mix = [&h](std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (i * 8)) & 0xff;
      h *= 1099511628211ULL;  // FNV prime
    }
  };
  for (ObjectId oid = begin; oid < end; ++oid) {
    const StoredObject& obj = objects_[oid];
    if (obj.value.is_scalar()) {
      mix(0x5ca1a6);
      mix(static_cast<std::uint64_t>(obj.value.AsScalar()));
    } else {
      mix(0x115717);
      for (std::int64_t item : obj.value.AsList()) {
        mix(static_cast<std::uint64_t>(item));
      }
    }
    mix(obj.ts.counter);
    mix(obj.ts.node);
  }
  return h;
}

std::uint64_t ObjectStore::Digest() const {
  return DigestRange(0, objects_.size());
}

std::uint64_t ObjectStore::ShardDigest(const ShardMap& shards,
                                       ShardId shard) const {
  return DigestRange(shards.ShardBegin(shard), shards.ShardEnd(shard));
}

Status ObjectStore::CloneFrom(const ObjectStore& other) {
  if (objects_.size() != other.objects_.size()) {
    return Status::InvalidArgument("CloneFrom: size mismatch");
  }
  objects_ = other.objects_;
  return Status::OK();
}

Status ObjectStore::CloneShardFrom(const ObjectStore& other,
                                   const ShardMap& shards, ShardId shard) {
  if (objects_.size() != other.objects_.size() ||
      shards.db_size() != objects_.size()) {
    return Status::InvalidArgument("CloneShardFrom: size mismatch");
  }
  for (ObjectId oid = shards.ShardBegin(shard); oid < shards.ShardEnd(shard);
       ++oid) {
    objects_[oid] = other.objects_[oid];
  }
  return Status::OK();
}

std::vector<ObjectId> ObjectStore::DiffAgainst(
    const ObjectStore& other) const {
  std::vector<ObjectId> diff;
  std::size_t n = std::min(objects_.size(), other.objects_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (objects_[i].value != other.objects_[i].value) {
      diff.push_back(i);
    }
  }
  return diff;
}

void ObjectStore::ResetToZero() {
  for (StoredObject& obj : objects_) {
    obj = StoredObject{};
  }
}

}  // namespace tdr
