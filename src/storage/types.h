#ifndef TDR_STORAGE_TYPES_H_
#define TDR_STORAGE_TYPES_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace tdr {

/// Database objects are identified by a dense integer id in
/// [0, DB_Size), matching the paper's "fixed set of objects" model.
using ObjectId = std::uint64_t;

/// Nodes are identified by a dense integer id in [0, Nodes).
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNodeId = static_cast<NodeId>(-1);

/// Transaction ids are globally unique across the cluster.
using TxnId = std::uint64_t;
inline constexpr TxnId kInvalidTxnId = 0;

/// The value model: a scalar (account balances, prices, seat counts) or
/// an append-only list (Lotus-Notes-style notes files, Section 6).
/// Scalars support blind writes and commutative add/subtract; lists
/// support commutative timestamped append.
class Value {
 public:
  using List = std::vector<std::int64_t>;

  /// Default: scalar zero.
  Value() : rep_(std::int64_t{0}) {}
  /// Scalar value.
  explicit Value(std::int64_t scalar) : rep_(scalar) {}
  /// List value.
  explicit Value(List list) : rep_(std::move(list)) {}

  bool is_scalar() const { return std::holds_alternative<std::int64_t>(rep_); }
  bool is_list() const { return !is_scalar(); }

  /// Scalar accessor; a list reads as its size (keeps arithmetic ops
  /// total — simplifies the op language; callers normally know the type).
  std::int64_t AsScalar() const {
    if (is_scalar()) return std::get<std::int64_t>(rep_);
    return static_cast<std::int64_t>(std::get<List>(rep_).size());
  }

  const List& AsList() const {
    static const List kEmpty;
    return is_list() ? std::get<List>(rep_) : kEmpty;
  }

  void SetScalar(std::int64_t v) { rep_ = v; }

  /// Appends to the list form; a scalar value is promoted to a
  /// single-element list holding the old scalar first. Items are kept in
  /// sorted order — the item plays the role of the note's timestamp, and
  /// "notes are stored in timestamp order" (§6, Lotus Notes) is exactly
  /// what makes append commute: any interleaving of appends yields the
  /// same final list.
  void Append(std::int64_t item) {
    if (is_scalar()) {
      List promoted;
      std::int64_t old = std::get<std::int64_t>(rep_);
      if (old != 0) promoted.push_back(old);
      rep_ = std::move(promoted);
    }
    List& list = std::get<List>(rep_);
    auto it = std::lower_bound(list.begin(), list.end(), item);
    list.insert(it, item);
  }

  std::string ToString() const {
    if (is_scalar()) return std::to_string(AsScalar());
    std::string out = "[";
    const List& l = AsList();
    for (std::size_t i = 0; i < l.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(l[i]);
    }
    out += "]";
    return out;
  }

  friend bool operator==(const Value& a, const Value& b) {
    return a.rep_ == b.rep_;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return !(a == b);
  }

 private:
  std::variant<std::int64_t, List> rep_;
};

}  // namespace tdr

#endif  // TDR_STORAGE_TYPES_H_
