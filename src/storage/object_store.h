#ifndef TDR_STORAGE_OBJECT_STORE_H_
#define TDR_STORAGE_OBJECT_STORE_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "storage/shard_map.h"
#include "storage/timestamp.h"
#include "storage/types.h"
#include "util/result.h"
#include "util/status.h"

namespace tdr {

/// One replicated object as stored at a node: current value, the
/// timestamp of the transaction that last wrote it, and (for the §6
/// version-vector schemes) its version vector.
struct StoredObject {
  Value value;
  Timestamp ts;
  VersionVector vv;

  std::string ToString() const {
    return value.ToString() + " @" + ts.ToString();
  }
};

/// A node's replica of the database: DB_Size objects, dense ids.
///
/// The store itself is deliberately dumb — all concurrency control and
/// replication policy live above it (txn and replication modules). It
/// provides exactly what those layers need: value/timestamp access, the
/// timestamp tests from §4/§5, and digesting for convergence checks.
class ObjectStore {
 public:
  /// Creates `db_size` objects, all scalar zero at Timestamp::Zero().
  explicit ObjectStore(std::uint64_t db_size);

  std::uint64_t size() const { return objects_.size(); }

  bool Contains(ObjectId oid) const { return oid < objects_.size(); }

  /// Read access. Out-of-range ids are a caller bug in this fixed-schema
  /// model, reported as Status rather than UB.
  Result<std::reference_wrapper<const StoredObject>> Get(ObjectId oid) const;

  /// Mutable access for the concurrency-control layer, which has already
  /// validated the id and holds the object's lock. Range violations are
  /// a caller bug, caught in debug builds only — release builds keep the
  /// branch-free read the executor's hot path relies on.
  StoredObject& GetMutable(ObjectId oid) {
    assert(oid < objects_.size());
    return objects_[oid];
  }
  const StoredObject& GetUnchecked(ObjectId oid) const {
    assert(oid < objects_.size());
    return objects_[oid];
  }

  /// Installs a new value and timestamp unconditionally (used by the
  /// local commit path, which owns the object's lock).
  Status Put(ObjectId oid, Value value, Timestamp ts);

  /// The lazy-GROUP safety test (§4, Figure 4): the incoming replica
  /// update carries the timestamp the root transaction saw. Applies the
  /// update iff the local timestamp equals `expected_old_ts`; otherwise
  /// returns kConflict — the caller must submit the transaction for
  /// reconciliation.
  Status ApplyIfTimestampMatches(ObjectId oid, const Value& value,
                                 Timestamp expected_old_ts,
                                 Timestamp new_ts);

  /// The lazy-MASTER freshness test (§5): applies the update iff the
  /// incoming timestamp is newer than the local replica's. A stale
  /// update is ignored (returns OK with *applied=false), never an error —
  /// slaves converge to the master's latest state regardless of message
  /// ordering.
  Status ApplyIfNewer(ObjectId oid, const Value& value, Timestamp new_ts,
                      bool* applied);

  /// Structural equality of the full database state; the convergence
  /// checker's workhorse ("all the states will be identical", §6).
  bool SameStateAs(const ObjectStore& other) const;

  /// Equality ignoring timestamps — value convergence only.
  bool SameValuesAs(const ObjectStore& other) const;

  /// FNV-1a digest over values+timestamps, for cheap convergence
  /// assertions across many nodes.
  std::uint64_t Digest() const;

  /// Digest over one shard's contiguous id range — the per-shard state
  /// the sharded data plane compares, so convergence checks on a large
  /// store can scan only the shards that changed.
  std::uint64_t ShardDigest(const ShardMap& shards, ShardId shard) const;

  /// Copies the full state of `other` into this store (reconnect
  /// refresh, snapshot install). Sizes must match.
  Status CloneFrom(const ObjectStore& other);

  /// Copies one shard's id range from `other` (per-shard catch-up:
  /// refresh only the shards a rejoining replica actually missed).
  Status CloneShardFrom(const ObjectStore& other, const ShardMap& shards,
                        ShardId shard);

  /// Ids of objects whose value differs from `other` (diagnostics).
  std::vector<ObjectId> DiffAgainst(const ObjectStore& other) const;

  /// Crash model (WAL durability modes): volatile memory is gone —
  /// every object back to scalar zero at Timestamp::Zero(), exactly the
  /// as-constructed state. Capacity is retained; recovery replays the
  /// durable WAL prefix on top.
  void ResetToZero();

 private:
  std::uint64_t DigestRange(ObjectId begin, ObjectId end) const;

  std::vector<StoredObject> objects_;
};

}  // namespace tdr

#endif  // TDR_STORAGE_OBJECT_STORE_H_
