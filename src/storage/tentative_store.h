#ifndef TDR_STORAGE_TENTATIVE_STORE_H_
#define TDR_STORAGE_TENTATIVE_STORE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "storage/object_store.h"
#include "util/result.h"

namespace tdr {

/// The mobile node's two-version store (§7):
///
///   "Replicated data items have two versions at mobile nodes:
///    Master Version: the most recent value received from the object
///    master ... Tentative Version: the local object may be updated by
///    tentative transactions."
///
/// This class overlays tentative versions on a base ObjectStore holding
/// the node's best-known master versions. Reads see the tentative value
/// if one exists, else the master version — "if the mobile node queries
/// this data it sees the tentative values". On reconnect the overlay is
/// discarded wholesale ("discards its tentative object versions since
/// they will soon be refreshed from the masters").
class TentativeStore {
 public:
  /// `master` must outlive this overlay.
  explicit TentativeStore(ObjectStore* master) : master_(master) {}

  TentativeStore(const TentativeStore&) = delete;
  TentativeStore& operator=(const TentativeStore&) = delete;

  ObjectStore& master() { return *master_; }
  const ObjectStore& master() const { return *master_; }

  /// Reads through the overlay: tentative version if present, else the
  /// best-known master version.
  Result<StoredObject> Read(ObjectId oid) const;

  /// True if the object currently has a tentative version.
  bool HasTentative(ObjectId oid) const {
    return overlay_.find(oid) != overlay_.end();
  }

  /// Writes a tentative version (never touches the master version).
  Status WriteTentative(ObjectId oid, Value value, Timestamp ts);

  /// Number of objects with live tentative versions.
  std::size_t TentativeCount() const { return overlay_.size(); }

  /// Ids with tentative versions, ascending (deterministic iteration).
  std::vector<ObjectId> TentativeIds() const;

  /// Drops all tentative versions (reconnect step 1 in §7).
  void DiscardTentative() { overlay_.clear(); }

 private:
  ObjectStore* master_;
  std::map<ObjectId, StoredObject> overlay_;
};

}  // namespace tdr

#endif  // TDR_STORAGE_TENTATIVE_STORE_H_
