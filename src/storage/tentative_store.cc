#include "storage/tentative_store.h"

namespace tdr {

Result<StoredObject> TentativeStore::Read(ObjectId oid) const {
  auto it = overlay_.find(oid);
  if (it != overlay_.end()) {
    return it->second;
  }
  auto base = master_->Get(oid);
  if (!base.ok()) return base.status();
  return base.value().get();
}

Status TentativeStore::WriteTentative(ObjectId oid, Value value,
                                      Timestamp ts) {
  if (!master_->Contains(oid)) {
    return Status::NotFound("WriteTentative: object out of range");
  }
  StoredObject& slot = overlay_[oid];
  slot.value = std::move(value);
  slot.ts = ts;
  return Status::OK();
}

std::vector<ObjectId> TentativeStore::TentativeIds() const {
  std::vector<ObjectId> ids;
  ids.reserve(overlay_.size());
  for (const auto& [oid, obj] : overlay_) ids.push_back(oid);
  return ids;
}

}  // namespace tdr
