#include "storage/timestamp.h"

namespace tdr {

bool VersionVector::Dominates(const VersionVector& other) const {
  bool strictly_greater = false;
  // Every component of `other` must be <= ours.
  for (const auto& [node, c] : other.v_) {
    if (Get(node) < c) return false;
  }
  // And at least one of ours must exceed theirs.
  for (const auto& [node, c] : v_) {
    if (c > other.Get(node)) {
      strictly_greater = true;
      break;
    }
  }
  return strictly_greater;
}

std::string VersionVector::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [node, c] : v_) {
    if (c == 0) continue;
    if (!first) out += ",";
    first = false;
    out += std::to_string(node) + ":" + std::to_string(c);
  }
  out += "}";
  return out;
}

bool operator==(const VersionVector& a, const VersionVector& b) {
  // Zero entries are equivalent to absent entries.
  for (const auto& [node, c] : a.v_) {
    if (c != b.Get(node)) return false;
  }
  for (const auto& [node, c] : b.v_) {
    if (c != a.Get(node)) return false;
  }
  return true;
}

}  // namespace tdr
