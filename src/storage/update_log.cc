#include "storage/update_log.h"

#include <algorithm>

#include "util/logging.h"

namespace tdr {

std::string UpdateRecord::ToString() const {
  return StrPrintf("txn=%llu oid=%llu old=%s new=%s val=%s origin=%u",
                   (unsigned long long)txn, (unsigned long long)oid,
                   old_ts.ToString().c_str(), new_ts.ToString().c_str(),
                   new_value.ToString().c_str(), origin);
}

std::vector<UpdateRecord> UpdateLog::DrainAll() {
  std::vector<UpdateRecord> out(log_.begin(), log_.end());
  log_.clear();
  return out;
}

std::vector<UpdateRecord> UpdateLog::DrainUpTo(SimTime cutoff) {
  std::vector<UpdateRecord> out;
  while (!log_.empty() && log_.front().commit_time <= cutoff) {
    out.push_back(std::move(log_.front()));
    log_.pop_front();
  }
  return out;
}

std::vector<ObjectId> UpdateLog::DistinctObjects() const {
  std::vector<ObjectId> ids;
  ids.reserve(log_.size());
  for (const UpdateRecord& rec : log_) ids.push_back(rec.oid);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace tdr
