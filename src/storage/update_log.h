#ifndef TDR_STORAGE_UPDATE_LOG_H_
#define TDR_STORAGE_UPDATE_LOG_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "storage/timestamp.h"
#include "storage/types.h"
#include "util/sim_time.h"

namespace tdr {

/// One committed object update, as carried by a lazy replica-update
/// transaction (Figure 4: "TRID, Timestamp / OID, old time, new value").
struct UpdateRecord {
  TxnId txn = kInvalidTxnId;       // root transaction id
  ObjectId oid = 0;
  Timestamp old_ts;                // timestamp the root transaction saw
  Timestamp new_ts;                // timestamp assigned at commit
  Value new_value;
  NodeId origin = kInvalidNodeId;  // node where the root txn ran
  SimTime commit_time;             // simulated commit instant

  std::string ToString() const;
};

/// Commit-ordered log of updates originated at a node. Lazy replication
/// drains it to build replica-update transactions; disconnected mobile
/// nodes accumulate entries here until reconnect ("When first connected,
/// a mobile node sends and receives deferred replica updates", §2).
class UpdateLog {
 public:
  UpdateLog() = default;

  void Append(UpdateRecord rec) { log_.push_back(std::move(rec)); }

  std::size_t size() const { return log_.size(); }
  bool empty() const { return log_.empty(); }

  const UpdateRecord& at(std::size_t i) const { return log_[i]; }

  /// Removes and returns all pending records, in commit order.
  std::vector<UpdateRecord> DrainAll();

  /// Removes and returns records committed at or before `cutoff`.
  std::vector<UpdateRecord> DrainUpTo(SimTime cutoff);

  /// Distinct object ids among pending records — the paper's
  /// "Outbound_Updates" set of equation (15).
  std::vector<ObjectId> DistinctObjects() const;

  void Clear() { log_.clear(); }

 private:
  std::deque<UpdateRecord> log_;
};

}  // namespace tdr

#endif  // TDR_STORAGE_UPDATE_LOG_H_
