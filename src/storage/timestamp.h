#ifndef TDR_STORAGE_TIMESTAMP_H_
#define TDR_STORAGE_TIMESTAMP_H_

#include <cstdint>
#include <map>
#include <string>

#include "storage/types.h"

namespace tdr {

/// Lamport timestamp: (counter, node). Counters advance per node on
/// every commit and are merged on message receipt, so timestamps are
/// unique and totally ordered across the cluster — exactly what the
/// paper's lazy-group "old timestamp must match" test (§4, Figure 4) and
/// the lazy-master "newer wins / stale is ignored" test (§5) require.
struct Timestamp {
  std::uint64_t counter = 0;
  NodeId node = 0;

  constexpr Timestamp() = default;
  constexpr Timestamp(std::uint64_t c, NodeId n) : counter(c), node(n) {}

  /// The zero timestamp orders before every commit timestamp and marks a
  /// never-updated object.
  static constexpr Timestamp Zero() { return Timestamp{0, 0}; }

  bool IsZero() const { return counter == 0; }

  std::string ToString() const {
    return std::to_string(counter) + "@" + std::to_string(node);
  }

  friend constexpr bool operator==(Timestamp a, Timestamp b) {
    return a.counter == b.counter && a.node == b.node;
  }
  friend constexpr bool operator!=(Timestamp a, Timestamp b) {
    return !(a == b);
  }
  /// Total order: counter first, node id breaks ties.
  friend constexpr bool operator<(Timestamp a, Timestamp b) {
    if (a.counter != b.counter) return a.counter < b.counter;
    return a.node < b.node;
  }
  friend constexpr bool operator>(Timestamp a, Timestamp b) { return b < a; }
  friend constexpr bool operator<=(Timestamp a, Timestamp b) {
    return !(b < a);
  }
  friend constexpr bool operator>=(Timestamp a, Timestamp b) {
    return !(a < b);
  }
};

/// Per-node Lamport clock.
class LamportClock {
 public:
  explicit LamportClock(NodeId node) : node_(node) {}

  /// Produces the next local timestamp.
  Timestamp Tick() { return Timestamp{++counter_, node_}; }

  /// Advances the clock past an observed remote timestamp (standard
  /// Lamport receive rule).
  void Observe(Timestamp remote) {
    if (remote.counter > counter_) counter_ = remote.counter;
  }

  Timestamp Peek() const { return Timestamp{counter_, node_}; }

 private:
  NodeId node_;
  std::uint64_t counter_ = 0;
};

/// Version vector (one counter per updating node), as used by Microsoft
/// Access "Wingman" replication (§6): each replica keeps a version vector
/// per record; vectors are exchanged pairwise, the dominating version
/// wins, and concurrent versions are flagged as conflicts.
class VersionVector {
 public:
  VersionVector() = default;

  std::uint64_t Get(NodeId node) const {
    auto it = v_.find(node);
    return it == v_.end() ? 0 : it->second;
  }

  void BumpTo(NodeId node, std::uint64_t counter) {
    std::uint64_t& slot = v_[node];
    if (counter > slot) slot = counter;
  }

  void Increment(NodeId node) { ++v_[node]; }

  /// Component-wise maximum.
  void Merge(const VersionVector& other) {
    for (const auto& [node, c] : other.v_) BumpTo(node, c);
  }

  /// True if every component of this vector >= other's and at least one
  /// is strictly greater.
  bool Dominates(const VersionVector& other) const;

  /// Neither dominates and they are unequal: concurrent updates.
  bool ConcurrentWith(const VersionVector& other) const {
    return !(*this == other) && !Dominates(other) && !other.Dominates(*this);
  }

  std::string ToString() const;

  friend bool operator==(const VersionVector& a, const VersionVector& b);

 private:
  // map (not unordered) so iteration and ToString are deterministic.
  std::map<NodeId, std::uint64_t> v_;
};

}  // namespace tdr

#endif  // TDR_STORAGE_TIMESTAMP_H_
