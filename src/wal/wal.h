#ifndef TDR_WAL_WAL_H_
#define TDR_WAL_WAL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/timestamp.h"
#include "storage/types.h"
#include "wal/wal_file.h"
#include "wal/wal_format.h"

namespace tdr::wal {

/// One node's write-ahead log writer.
///
/// Appends encode straight into a reusable pending buffer (capacity
/// retained across flushes — the steady-state append path allocates
/// nothing) and earn monotonically increasing LSNs. A flush moves the
/// pending bytes into the active segment file; when the flush's sync
/// lands, the durable line (`durable_lsn`) advances. The GroupCommitter
/// decides WHEN to flush and models the sync latency; this class only
/// owns bytes, LSNs and segment rolling.
///
/// Flushes are serialized by the caller (at most one in flight), which
/// gives the invariant the torn-tail model relies on: only the newest
/// segment can ever hold unsynced bytes.
class Wal {
 public:
  struct Options {
    /// Roll to a new segment when the active file would exceed this.
    std::uint64_t segment_bytes = 64 * 1024;
  };

  Wal(NodeId node, WalBackend* backend, Options options);

  /// Arms the writer to issue LSNs from `next_lsn` and opens (or
  /// re-creates) segment `segment`. After crash recovery the caller
  /// passes RecoveryResult::next_segment, which REUSES the index of a
  /// torn-header segment that recovery truncated to nothing — opening
  /// the next index instead would strand an empty segment in the dense
  /// count and stop every later recovery short of the records written
  /// after restart.
  void Open(std::uint64_t next_lsn, std::uint32_t segment);

  /// Convenience for a fresh log: opens the next unused index
  /// (backend->SegmentCount(node)).
  void Open(std::uint64_t next_lsn);

  /// Encodes one record into the pending buffer; returns its LSN.
  std::uint64_t Append(TxnId txn, ObjectId oid, ShardId shard,
                       const Timestamp& old_ts, const Timestamp& new_ts,
                       const Value& value);

  /// Writes the pending bytes to the active segment (rolling first if
  /// they would overflow it) and returns the flush target — the highest
  /// LSN the flush will make durable. Caller must not start another
  /// flush until CompleteFlush. A flush with nothing pending is legal
  /// (a pure sync barrier).
  std::uint64_t BeginFlush();

  /// The expensive half of a flush: syncs the file (a real fdatasync
  /// under FileWalBackend's fsync knob). Touches only this node's file
  /// — safe to run off the coordinator as a parallel-class event.
  /// Idempotent; CompleteFlush re-syncs harmlessly after it.
  void SyncFile();

  /// The flush's sync landed: everything written is durable.
  void CompleteFlush(std::uint64_t target_lsn);

  /// Crash support: unflushed appends die with the node.
  void DropPending();
  /// Abandons the file handle (backend bytes survive for recovery).
  void CloseForCrash();

  bool open() const { return file_ != nullptr; }
  std::uint32_t segment() const { return segment_; }
  std::uint64_t appended_lsn() const { return appended_lsn_; }
  std::uint64_t durable_lsn() const { return durable_lsn_; }
  std::size_t pending_records() const { return pending_records_; }
  std::size_t pending_bytes() const { return pending_.size(); }
  std::uint64_t file_size() const { return file_ != nullptr ? file_->size() : 0; }
  std::uint64_t synced_size() const {
    return file_ != nullptr ? file_->synced_size() : 0;
  }

 private:
  void OpenSegment(std::uint32_t segment);

  NodeId node_;
  WalBackend* backend_;
  Options options_;

  std::unique_ptr<WalFile> file_;
  std::uint32_t segment_ = 0;

  std::vector<std::uint8_t> pending_;  // encoded, not yet written to file
  std::size_t pending_records_ = 0;
  std::vector<std::uint8_t> header_scratch_;

  std::uint64_t next_lsn_ = 1;
  std::uint64_t appended_lsn_ = 0;  // highest LSN in buffer or file
  std::uint64_t durable_lsn_ = 0;   // highest LSN a crash cannot lose
};

}  // namespace tdr::wal

#endif  // TDR_WAL_WAL_H_
