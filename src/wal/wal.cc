#include "wal/wal.h"

#include <cassert>

namespace tdr::wal {

Wal::Wal(NodeId node, WalBackend* backend, Options options)
    : node_(node), backend_(backend), options_(options) {
  pending_.reserve(4096);
  header_scratch_.reserve(kSegmentHeaderSize);
}

void Wal::Open(std::uint64_t next_lsn) {
  Open(next_lsn, backend_->SegmentCount(node_));
}

void Wal::Open(std::uint64_t next_lsn, std::uint32_t segment) {
  assert(next_lsn >= 1);
  next_lsn_ = next_lsn;
  appended_lsn_ = next_lsn - 1;
  durable_lsn_ = next_lsn - 1;
  pending_.clear();
  pending_records_ = 0;
  OpenSegment(segment);
}

void Wal::OpenSegment(std::uint32_t segment) {
  segment_ = segment;
  file_ = backend_->Create(node_, segment);
  header_scratch_.clear();
  EncodeSegmentHeader(node_, segment, &header_scratch_);
  // The header rides to durability with the first flush's sync; a crash
  // before that leaves a headerless torn segment, which recovery treats
  // as empty.
  file_->Append(header_scratch_.data(), header_scratch_.size());
}

std::uint64_t Wal::Append(TxnId txn, ObjectId oid, ShardId shard,
                          const Timestamp& old_ts, const Timestamp& new_ts,
                          const Value& value) {
  assert(open() && "append to a crashed writer");
  const std::uint64_t lsn = next_lsn_++;
  AppendRecord(lsn, txn, oid, shard, old_ts, new_ts, value, &pending_);
  ++pending_records_;
  appended_lsn_ = lsn;
  return lsn;
}

std::uint64_t Wal::BeginFlush() {
  assert(open());
  if (!pending_.empty()) {
    // Entering a flush the file is fully synced (flushes are
    // serialized), so a rolled-away segment is durable end to end —
    // only the newest segment can ever be torn.
    if (file_->size() + pending_.size() > options_.segment_bytes &&
        file_->size() > kSegmentHeaderSize) {
      assert(file_->synced_size() == file_->size());
      OpenSegment(segment_ + 1);
    }
    file_->Append(pending_.data(), pending_.size());
    pending_.clear();  // capacity retained
    pending_records_ = 0;
  }
  return appended_lsn_;
}

void Wal::SyncFile() {
  assert(open());
  file_->Sync();
}

void Wal::CompleteFlush(std::uint64_t target_lsn) {
  assert(open());
  file_->Sync();
  assert(target_lsn >= durable_lsn_);
  durable_lsn_ = target_lsn;
}

void Wal::DropPending() {
  pending_.clear();
  pending_records_ = 0;
}

void Wal::CloseForCrash() { file_.reset(); }

}  // namespace tdr::wal
