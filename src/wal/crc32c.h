#ifndef TDR_WAL_CRC32C_H_
#define TDR_WAL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace tdr::wal {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41 reflected to 0x82F63B78)
/// — the checksum used per WAL record. Software table implementation;
/// the WAL's simulated-flush data volumes never make this a hot path,
/// and a table variant is bit-identical everywhere (no SSE4.2
/// dependency). Standard check value: Crc32c("123456789") == 0xE3069283.
std::uint32_t Crc32c(const void* data, std::size_t size);

/// Incremental form: feed `crc` the result of a previous call to extend
/// the checksum over split buffers.
std::uint32_t Crc32cExtend(std::uint32_t crc, const void* data,
                           std::size_t size);

}  // namespace tdr::wal

#endif  // TDR_WAL_CRC32C_H_
