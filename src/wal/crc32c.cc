#include "wal/crc32c.h"

namespace tdr::wal {

namespace {

struct Table {
  std::uint32_t t[256];
  constexpr Table() : t{} {
    constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int b = 0; b < 8; ++b) {
        crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[i] = crc;
    }
  }
};

constexpr Table kTable;

}  // namespace

std::uint32_t Crc32cExtend(std::uint32_t crc, const void* data,
                           std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable.t[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t Crc32c(const void* data, std::size_t size) {
  return Crc32cExtend(0, data, size);
}

}  // namespace tdr::wal
