#include "wal/wal_set.h"

#include <cassert>
#include <utility>

namespace tdr::wal {

WalSet::WalSet(runtime::Runtime* rt, std::uint32_t num_nodes,
               const ShardMap* shards, Options options, Rng rng,
               obs::MetricsRegistry* metrics)
    : rt_(rt),
      shards_(shards),
      options_(std::move(options)),
      rng_(rng),
      crashed_(num_nodes, 0) {
  assert(options_.mode != DurabilityMode::kOff);
  if (metrics != nullptr) {
    metrics_.records_appended = metrics->GetCounter("wal.records_appended");
    metrics_.flushes = metrics->GetCounter("wal.flushes");
    metrics_.records_synced = metrics->GetCounter("wal.records_synced");
    metrics_.flush_records = metrics->GetHistogram("wal.flush_records");
    metrics_.flush_wait_micros =
        metrics->GetHistogram("wal.flush_wait_micros");
    metrics_.crash_dropped_records =
        metrics->GetCounter("wal.crash_dropped_records");
    metrics_.crash_voided_waiters =
        metrics->GetCounter("wal.crash_voided_waiters");
    metrics_.torn_tail_truncations =
        metrics->GetCounter("wal.torn_tail_truncations");
    metrics_.torn_tail_bytes = metrics->GetCounter("wal.torn_tail_bytes");
    metrics_.recovery_replayed = metrics->GetCounter("wal.recovery_replayed");
    metrics_.recovery_segments = metrics->GetCounter("wal.recovery_segments");
    metrics_.catch_up_adopted = metrics->GetCounter("wal.catch_up_adopted");
  }
  if (options_.wal_dir.empty()) {
    backend_ = std::make_unique<MemWalBackend>(
        num_nodes, static_cast<std::size_t>(options_.segment_bytes));
  } else {
    backend_ = std::make_unique<FileWalBackend>(options_.wal_dir, num_nodes,
                                                options_.fsync);
  }
  Wal::Options wal_options;
  wal_options.segment_bytes = options_.segment_bytes;
  GroupCommitter::Options gc_options;
  gc_options.mode = options_.mode;
  gc_options.flush_latency = options_.flush_latency;
  gc_options.group_window = options_.group_window;
  gc_options.group_max_records = options_.group_max_records;
  wals_.reserve(num_nodes);
  committers_.reserve(num_nodes);
  for (NodeId node = 0; node < num_nodes; ++node) {
    // A WalSet is a NEW cluster's log. A reused wal_dir can hold a
    // previous cluster's segments (FileWalBackend probes them so
    // recovery-only readers can see them); arming a fresh LSN-1 writer
    // on top would make the first recovery replay the stale records
    // into the store and then discard this cluster's entire log as a
    // torn tail. Start from nothing instead.
    backend_->Clear(node);
    wals_.push_back(std::make_unique<Wal>(node, backend_.get(), wal_options));
    wals_.back()->Open(/*next_lsn=*/1);
    committers_.push_back(std::make_unique<GroupCommitter>(
        rt_, node, wals_.back().get(), gc_options, &metrics_));
  }
}

bool WalSet::Enabled(NodeId node) const {
  (void)node;
  return true;
}

void WalSet::LogWrite(NodeId node, TxnId txn, ObjectId oid,
                      const Timestamp& old_ts, const Timestamp& new_ts,
                      const Value& value) {
  if (crashed_[node] != 0) {
    // In-flight work at a crashed node still "commits" in memory fiction
    // but logs nothing — the records die with the node.
    metrics_.crash_dropped_records.Increment();
    return;
  }
  wals_[node]->Append(txn, oid, shards_->ShardOf(oid), old_ts, new_ts, value);
  committers_[node]->NotifyAppend();
}

void WalSet::RequestCommitDurability(NodeId node, sim::Callback done) {
  if (crashed_[node] != 0) {
    // Fire void, but from a fresh event: completing a commit inside the
    // executor's own Commit frame would re-enter it.
    rt_->ScheduleAfterNode(node, SimTime(), std::move(done));
    return;
  }
  committers_[node]->RequestDurability(std::move(done));
}

void WalSet::Crash(NodeId node) {
  assert(crashed_[node] == 0);
  crashed_[node] = 1;
  committers_[node]->Crash();
  Wal* wal = wals_[node].get();
  const std::size_t dropped = wal->pending_records();
  if (dropped > 0) metrics_.crash_dropped_records.Increment(dropped);
  wal->DropPending();
  // Torn tail: of the bytes the last (incomplete) fsync covered, the
  // disk finished a random prefix. Synced bytes are contractually safe.
  const std::uint64_t size = wal->file_size();
  const std::uint64_t synced = wal->synced_size();
  const std::uint32_t segment = wal->segment();
  wal->CloseForCrash();
  const std::uint64_t unsynced = size - synced;
  const std::uint64_t keep = synced + rng_.UniformInt(unsynced + 1);
  if (keep < size) {
    metrics_.torn_tail_truncations.Increment();
    metrics_.torn_tail_bytes.Increment(size - keep);
    backend_->TruncateSegment(node, segment, keep);
  }
}

void WalSet::ResetWriter(NodeId node, std::uint64_t next_lsn,
                         std::uint32_t next_segment) {
  assert(crashed_[node] != 0);
  crashed_[node] = 0;
  wals_[node]->Open(next_lsn, next_segment);
  committers_[node]->Reset();
}

}  // namespace tdr::wal
