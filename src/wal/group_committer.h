#ifndef TDR_WAL_GROUP_COMMITTER_H_
#define TDR_WAL_GROUP_COMMITTER_H_

#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "runtime/runtime.h"
#include "sim/callback.h"
#include "storage/types.h"
#include "txn/durability.h"
#include "util/sim_time.h"
#include "wal/wal.h"

namespace tdr::wal {

/// Metric handles shared by every node's committer (registered once by
/// WalSet; all default-constructed no-ops when metrics are off).
struct WalMetrics {
  obs::MetricsRegistry::Counter records_appended;
  obs::MetricsRegistry::Counter flushes;
  obs::MetricsRegistry::Counter records_synced;
  obs::MetricsRegistry::HistogramHandle flush_records;      // batch size
  obs::MetricsRegistry::HistogramHandle flush_wait_micros;  // request→durable
  obs::MetricsRegistry::Counter crash_dropped_records;
  obs::MetricsRegistry::Counter crash_voided_waiters;
  obs::MetricsRegistry::Counter torn_tail_truncations;
  obs::MetricsRegistry::Counter torn_tail_bytes;
  obs::MetricsRegistry::Counter recovery_replayed;
  obs::MetricsRegistry::Counter recovery_segments;
  obs::MetricsRegistry::Counter catch_up_adopted;
};

/// Schedules WAL flushes for one node and parks commit completions
/// until their records are durable — the group-commit engine.
///
/// At most one flush is in flight per node. A flush is BeginFlush on
/// the Wal, then a `flush_latency` runtime event (tagged to the node,
/// like every other per-node event, so the thread backend runs it on
/// the node's worker), then CompleteFlush + waiter completion:
///
///   - kCommit: one waiter completes per flush, and the next flush
///     starts immediately — the serialized fsync-per-commit baseline.
///   - kGroup: a flush starts on a `group_window` timer after the first
///     append (or at once when `group_max_records` accumulate), and
///     completes EVERY waiter whose LSN it covered.
///
/// Crash() voids all parked waiters (commits must never leak locks),
/// bumps an epoch so an in-flight flush completion becomes a no-op, and
/// leaves the committer dead until Reset() at recovery.
class GroupCommitter {
 public:
  struct Options {
    DurabilityMode mode = DurabilityMode::kGroup;
    /// Simulated cost of one fsync.
    SimTime flush_latency = SimTime::Micros(500);
    /// kGroup: how long the first append may wait for company.
    SimTime group_window = SimTime::Micros(250);
    /// kGroup: flush immediately at this many pending records.
    std::size_t group_max_records = 64;
  };

  GroupCommitter(runtime::Runtime* rt, NodeId node, Wal* wal, Options options,
                 WalMetrics* metrics);

  /// A record was appended (with or without a waiter): make sure a
  /// flush is armed so it becomes durable in bounded time.
  void NotifyAppend();

  /// Parks `done` until the log is durable past the current
  /// appended_lsn. Must follow at least one append since the durable
  /// line (the executor only requests durability for nodes it logged
  /// writes at).
  void RequestDurability(sim::Callback done);

  /// Voids every parked waiter (fired, in FIFO order), cancels the
  /// window timer, and deadens the committer.
  void Crash();

  /// Back to life after recovery (the Wal was re-opened by its owner).
  void Reset();

  bool crashed() const { return crashed_; }
  bool flush_in_flight() const { return in_flight_; }

 private:
  struct Waiter {
    std::uint64_t lsn = 0;
    SimTime since;
    sim::Callback done;
  };

  void ArmWindow();
  void MaybeStartFlush();
  void StartFlush();
  void OnFlushDurable();
  /// Fires parked waiters covered by durable_lsn: all of them under
  /// kGroup, at most one under kCommit. Returns how many fired.
  std::size_t FireCovered();

  runtime::Runtime* rt_;
  NodeId node_;
  Wal* wal_;
  Options options_;
  WalMetrics* metrics_;

  // FIFO with a head cursor; compacted when drained so capacity is
  // retained and steady state allocates nothing.
  std::vector<Waiter> waiters_;
  std::size_t waiter_head_ = 0;

  bool in_flight_ = false;
  bool crashed_ = false;
  std::uint64_t epoch_ = 0;  // bumped at Crash(); guards completions
  sim::EventId window_event_ = sim::kInvalidEventId;
};

}  // namespace tdr::wal

#endif  // TDR_WAL_GROUP_COMMITTER_H_
