#ifndef TDR_WAL_WAL_FORMAT_H_
#define TDR_WAL_WAL_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/shard_map.h"
#include "storage/timestamp.h"
#include "storage/types.h"

namespace tdr::wal {

/// Binary WAL record layout (all integers little-endian):
///
///   u32 payload_len          # bytes after the 8-byte record header
///   u32 crc32c(payload)      # detects torn tails and bit rot
///   payload:
///     u64 lsn                # per-node log sequence number, from 1
///     u64 txn                # committing transaction id
///     u64 oid                # object written
///     u32 shard              # ShardMap::ShardOf(oid), for sharded replay
///     u64 old_ts.counter     # timestamp the write replaced
///     u32 old_ts.node
///     u64 new_ts.counter     # commit timestamp installed
///     u32 new_ts.node
///     u8  value_kind         # 0 = scalar, 1 = list
///     scalar: i64            # kind 0
///     list:   u32 n, n*i64   # kind 1 (sorted items, Value::List order)
///
/// A record is valid iff payload_len is in range, the CRC matches, and
/// the payload decodes completely. Recovery stops at the first invalid
/// record — everything before it is the durable prefix, everything at
/// and after it is a torn tail from a crash mid-flush.
struct WalRecord {
  std::uint64_t lsn = 0;
  TxnId txn = kInvalidTxnId;
  ObjectId oid = 0;
  ShardId shard = 0;
  Timestamp old_ts;
  Timestamp new_ts;
  Value value;
};

/// Fixed per-record header: payload_len + crc.
inline constexpr std::size_t kRecordHeaderSize = 8;

/// Segment files open with a 16-byte header:
///   u64 magic "TDRWAL01", u32 node, u32 segment index.
/// Recovery refuses a segment whose header does not match its path.
inline constexpr std::uint64_t kSegmentMagic = 0x3130'4C41'5752'4454ULL;
inline constexpr std::size_t kSegmentHeaderSize = 16;

/// Appends the encoded segment header to `*out`.
void EncodeSegmentHeader(NodeId node, std::uint32_t segment,
                         std::vector<std::uint8_t>* out);

/// Validates the segment header at the start of `data`. Returns true
/// iff `size` covers it and magic/node/segment all match.
bool CheckSegmentHeader(const std::uint8_t* data, std::size_t size,
                        NodeId node, std::uint32_t segment);

/// Appends one encoded record to `*out` (the writer's pending buffer;
/// capacity is retained across flushes, so steady state never
/// allocates). Field form rather than a WalRecord so the commit path
/// encodes straight from the executor's write entries without building
/// an intermediate struct.
void AppendRecord(std::uint64_t lsn, TxnId txn, ObjectId oid, ShardId shard,
                  const Timestamp& old_ts, const Timestamp& new_ts,
                  const Value& value, std::vector<std::uint8_t>* out);

/// Decodes the record at `data`. Returns the encoded size consumed on
/// success; 0 if the bytes do not hold one complete, CRC-valid record
/// (truncated header, truncated payload, CRC mismatch, or malformed
/// payload) — the recovery reader's stop condition.
std::size_t DecodeRecord(const std::uint8_t* data, std::size_t size,
                         WalRecord* out);

}  // namespace tdr::wal

#endif  // TDR_WAL_WAL_FORMAT_H_
