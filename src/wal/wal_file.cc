#include "wal/wal_file.h"

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cassert>
#include <cstdlib>
#include <cstring>

#include "util/logging.h"

namespace tdr::wal {

namespace {

/// Writer over a MemWalBackend segment. The segment vector is owned by
/// the backend, so the bytes survive this handle (crash + recovery
/// re-read them).
class MemWalFile : public WalFile {
 public:
  explicit MemWalFile(std::vector<std::uint8_t>* bytes, std::uint64_t* synced)
      : bytes_(bytes), synced_(synced) {}

  void Append(const std::uint8_t* data, std::size_t size) override {
    bytes_->insert(bytes_->end(), data, data + size);
  }

  void Sync() override { *synced_ = bytes_->size(); }

  std::uint64_t size() const override { return bytes_->size(); }
  std::uint64_t synced_size() const override { return *synced_; }

 private:
  std::vector<std::uint8_t>* bytes_;
  std::uint64_t* synced_;
};

class StdioWalFile : public WalFile {
 public:
  StdioWalFile(std::FILE* f, bool fsync) : f_(f), fsync_(fsync) {}

  ~StdioWalFile() override {
    if (f_ != nullptr) std::fclose(f_);
  }

  void Append(const std::uint8_t* data, std::size_t size) override {
    if (f_ == nullptr) return;
    const std::size_t written = std::fwrite(data, 1, size, f_);
    if (written != size) {
      // A silently-swallowed short write (disk full, I/O error) would
      // leave size_ claiming bytes the file never got, so a later Sync
      // marks them durable and the log corrupts mid-stream instead of
      // tearing at the tail. Fail loudly, in release builds too.
      std::fprintf(stderr, "wal: short write (%zu of %zu bytes)\n", written,
                   size);
      std::abort();
    }
    // Write through immediately: appended-but-unsynced bytes must live
    // in the FILE (the crash model truncates the file to a torn-tail
    // cut point), not in a stdio buffer an abandoned handle would lose
    // or a destructor would resurrect.
    std::fflush(f_);
    size_ += size;
  }

  void Sync() override {
    if (f_ == nullptr || synced_ == size_) return;  // idempotent
    // By default the simulated flush latency models the sync cost and
    // tests on tmpfs would only pay noise; with the fsync knob on, the
    // durability line is backed by a real fdatasync so the bench table
    // shows the honest price.
    if (fsync_) {
      if (::fdatasync(::fileno(f_)) != 0) {
        std::fprintf(stderr, "wal: fdatasync failed\n");
        std::abort();
      }
    }
    synced_ = size_;
  }

  std::uint64_t size() const override { return size_; }
  std::uint64_t synced_size() const override { return synced_; }

 private:
  std::FILE* f_;
  bool fsync_;
  std::uint64_t size_ = 0;
  std::uint64_t synced_ = 0;
};

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

MemWalBackend::MemWalBackend(std::uint32_t num_nodes,
                             std::size_t reserve_bytes)
    : segments_(num_nodes), reserve_bytes_(reserve_bytes) {}

std::unique_ptr<WalFile> MemWalBackend::Create(NodeId node,
                                               std::uint32_t segment) {
  assert(node < segments_.size());
  auto& per_node = segments_[node];
  while (per_node.size() <= segment) {
    per_node.push_back(std::make_unique<Segment>());
  }
  Segment* seg = per_node[segment].get();
  seg->bytes.clear();
  seg->bytes.reserve(reserve_bytes_);
  seg->synced = 0;
  return std::make_unique<MemWalFile>(&seg->bytes, &seg->synced);
}

std::uint32_t MemWalBackend::SegmentCount(NodeId node) const {
  assert(node < segments_.size());
  return static_cast<std::uint32_t>(segments_[node].size());
}

bool MemWalBackend::ReadSegment(NodeId node, std::uint32_t segment,
                                std::vector<std::uint8_t>* out) const {
  assert(node < segments_.size());
  const auto& per_node = segments_[node];
  if (segment >= per_node.size()) return false;
  *out = per_node[segment]->bytes;
  return true;
}

void MemWalBackend::TruncateSegment(NodeId node, std::uint32_t segment,
                                    std::uint64_t keep_bytes) {
  assert(node < segments_.size());
  auto& per_node = segments_[node];
  if (segment >= per_node.size()) return;
  Segment* seg = per_node[segment].get();
  assert(keep_bytes >= seg->synced && "truncating into the durable prefix");
  if (keep_bytes < seg->bytes.size()) {
    seg->bytes.resize(static_cast<std::size_t>(keep_bytes));
  }
}

void MemWalBackend::Clear(NodeId node) {
  assert(node < segments_.size());
  segments_[node].clear();
}

std::vector<std::uint8_t>* MemWalBackend::SegmentBytes(NodeId node,
                                                       std::uint32_t segment) {
  assert(node < segments_.size());
  auto& per_node = segments_[node];
  if (segment >= per_node.size()) return nullptr;
  return &per_node[segment]->bytes;
}

FileWalBackend::FileWalBackend(std::string dir, std::uint32_t num_nodes,
                               bool fsync)
    : dir_(std::move(dir)), created_(num_nodes, 0), fsync_(fsync) {
  ::mkdir(dir_.c_str(), 0755);  // EEXIST is fine
  // Probe pre-existing segments (a wal_dir reused across clusters in
  // one test) so SegmentCount reflects what recovery can read.
  for (NodeId node = 0; node < num_nodes; ++node) {
    while (FileExists(SegmentPath(node, created_[node]))) ++created_[node];
  }
}

std::string FileWalBackend::SegmentPath(NodeId node,
                                        std::uint32_t segment) const {
  return StrPrintf("%s/wal-n%u-s%u.log", dir_.c_str(), node, segment);
}

std::unique_ptr<WalFile> FileWalBackend::Create(NodeId node,
                                                std::uint32_t segment) {
  assert(node < created_.size());
  std::FILE* f = std::fopen(SegmentPath(node, segment).c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "wal: cannot create %s\n",
                 SegmentPath(node, segment).c_str());
    std::abort();
  }
  if (segment >= created_[node]) created_[node] = segment + 1;
  return std::make_unique<StdioWalFile>(f, fsync_);
}

std::uint32_t FileWalBackend::SegmentCount(NodeId node) const {
  assert(node < created_.size());
  return created_[node];
}

bool FileWalBackend::ReadSegment(NodeId node, std::uint32_t segment,
                                 std::vector<std::uint8_t>* out) const {
  std::FILE* f = std::fopen(SegmentPath(node, segment).c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->insert(out->end(), buf, buf + n);
  }
  std::fclose(f);
  return true;
}

void FileWalBackend::TruncateSegment(NodeId node, std::uint32_t segment,
                                     std::uint64_t keep_bytes) {
  const std::string path = SegmentPath(node, segment);
  if (!FileExists(path)) return;
  // POSIX truncate EXTENDS a shorter file with zeros; match the
  // in-memory backend's contract (truncate-only, no-op when shorter).
  struct ::stat st;
  if (::stat(path.c_str(), &st) != 0) return;
  if (static_cast<std::uint64_t>(st.st_size) <= keep_bytes) return;
  int rc = ::truncate(path.c_str(), static_cast<off_t>(keep_bytes));
  assert(rc == 0);
  (void)rc;
}

void FileWalBackend::Clear(NodeId node) {
  assert(node < created_.size());
  for (std::uint32_t seg = 0; seg < created_[node]; ++seg) {
    ::unlink(SegmentPath(node, seg).c_str());
  }
  created_[node] = 0;
}

}  // namespace tdr::wal
