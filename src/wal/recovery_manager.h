#ifndef TDR_WAL_RECOVERY_MANAGER_H_
#define TDR_WAL_RECOVERY_MANAGER_H_

#include <cstdint>
#include <vector>

#include "net/network.h"
#include "txn/node.h"
#include "wal/wal_recovery.h"
#include "wal/wal_set.h"

namespace tdr::wal {

/// The single seam every crash and restart goes through — what the
/// FaultInjector calls instead of touching Network directly — so the
/// durability mode selects the recovery story per run:
///
///   - DurabilityMode::kOff (wals == nullptr): pure pass-through to
///     Network::Crash/Restart. The legacy model: stores survive
///     crashes, outboxes act as a durable update log. Existing suites
///     (quorum chaos, message-pool lifetimes) are bit-identical.
///
///   - WAL modes: a crash loses everything volatile — the store is
///     wiped, the outbox and outbound update log discarded, parked
///     commit waiters void-fired, the WAL's unsynced tail torn at a
///     seeded random byte. Restart rebuilds the store by replaying the
///     WAL's durable prefix (re-observing every replayed timestamp into
///     the node's Lamport clock), re-arms the writer past it, reconnects
///     (which fires the schemes' reconnect catch-up hooks), then adopts
///     newer values object-by-object from reachable live peers, logging
///     each adoption so the repaired state is itself durable.
///
/// The Lamport clock is deliberately NOT reset at a crash: the model
/// treats the counter as recovered from the WAL high-water mark plus
/// the catch-up observations, which keeps every timestamp issued after
/// restart unique without reasoning about pre-crash messages still in
/// flight.
class RecoveryManager {
 public:
  RecoveryManager(std::vector<Node*> nodes, Network* net, WalSet* wals);

  void Crash(NodeId node);
  void Restart(NodeId node);

  /// Bumped every time `node`'s store is wiped by a crash. Observers
  /// holding per-node watermarks (the invariant checker's monotone-
  /// timestamp sweep) reset them when the epoch moves.
  std::uint64_t wipe_epoch(NodeId node) const { return wipe_epoch_[node]; }

  bool wal_enabled() const { return wals_ != nullptr; }

  std::uint64_t records_replayed() const { return records_replayed_; }
  std::uint64_t recoveries() const { return recoveries_; }

 private:
  void PeerCatchUp(Node* node);

  std::vector<Node*> nodes_;
  Network* net_;
  WalSet* wals_;  // null = kOff pass-through
  WalRecovery recovery_;
  std::vector<std::uint64_t> wipe_epoch_;
  std::uint64_t records_replayed_ = 0;
  std::uint64_t recoveries_ = 0;
};

}  // namespace tdr::wal

#endif  // TDR_WAL_RECOVERY_MANAGER_H_
