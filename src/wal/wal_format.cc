#include "wal/wal_format.h"

#include <cstring>

#include "wal/crc32c.h"

namespace tdr::wal {

namespace {

void PutU32(std::uint32_t v, std::vector<std::uint8_t>* out) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

void PutU64(std::uint64_t v, std::vector<std::uint8_t>* out) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

std::uint32_t GetU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t GetU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

// Fixed payload prefix before the value: lsn, txn, oid, shard, two
// timestamps, value kind.
constexpr std::size_t kPayloadPrefix = 8 + 8 + 8 + 4 + 12 + 12 + 1;

}  // namespace

void EncodeSegmentHeader(NodeId node, std::uint32_t segment,
                         std::vector<std::uint8_t>* out) {
  PutU64(kSegmentMagic, out);
  PutU32(node, out);
  PutU32(segment, out);
}

bool CheckSegmentHeader(const std::uint8_t* data, std::size_t size,
                        NodeId node, std::uint32_t segment) {
  if (size < kSegmentHeaderSize) return false;
  return GetU64(data) == kSegmentMagic && GetU32(data + 8) == node &&
         GetU32(data + 12) == segment;
}

void AppendRecord(std::uint64_t lsn, TxnId txn, ObjectId oid, ShardId shard,
                  const Timestamp& old_ts, const Timestamp& new_ts,
                  const Value& value, std::vector<std::uint8_t>* out) {
  const std::size_t header_at = out->size();
  // Reserve the header slots; the payload length and CRC are patched in
  // once the payload is written (single pass, no scratch buffer).
  out->resize(header_at + kRecordHeaderSize);
  const std::size_t payload_at = out->size();
  PutU64(lsn, out);
  PutU64(txn, out);
  PutU64(oid, out);
  PutU32(shard, out);
  PutU64(old_ts.counter, out);
  PutU32(old_ts.node, out);
  PutU64(new_ts.counter, out);
  PutU32(new_ts.node, out);
  if (value.is_scalar()) {
    out->push_back(0);
    PutU64(static_cast<std::uint64_t>(value.AsScalar()), out);
  } else {
    out->push_back(1);
    const Value::List& list = value.AsList();
    PutU32(static_cast<std::uint32_t>(list.size()), out);
    for (std::int64_t item : list) {
      PutU64(static_cast<std::uint64_t>(item), out);
    }
  }
  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(out->size() - payload_at);
  const std::uint32_t crc = Crc32c(out->data() + payload_at, payload_len);
  std::uint8_t* header = out->data() + header_at;
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<std::uint8_t>((payload_len >> (8 * i)) & 0xFF);
    header[4 + i] = static_cast<std::uint8_t>((crc >> (8 * i)) & 0xFF);
  }
}

std::size_t DecodeRecord(const std::uint8_t* data, std::size_t size,
                         WalRecord* out) {
  if (size < kRecordHeaderSize) return 0;
  const std::uint32_t payload_len = GetU32(data);
  const std::uint32_t crc = GetU32(data + 4);
  if (payload_len < kPayloadPrefix) return 0;  // cannot hold the prefix
  if (size - kRecordHeaderSize < payload_len) return 0;
  const std::uint8_t* p = data + kRecordHeaderSize;
  if (Crc32c(p, payload_len) != crc) return 0;
  out->lsn = GetU64(p);
  out->txn = GetU64(p + 8);
  out->oid = GetU64(p + 16);
  out->shard = GetU32(p + 24);
  out->old_ts = Timestamp{GetU64(p + 28), GetU32(p + 36)};
  out->new_ts = Timestamp{GetU64(p + 40), GetU32(p + 48)};
  const std::uint8_t kind = p[52];
  const std::uint8_t* v = p + 53;
  const std::size_t value_bytes = payload_len - (kPayloadPrefix);
  if (kind == 0) {
    if (value_bytes != 8) return 0;
    out->value = Value(static_cast<std::int64_t>(GetU64(v)));
  } else if (kind == 1) {
    if (value_bytes < 4) return 0;
    const std::uint32_t n = GetU32(v);
    if (value_bytes != 4 + std::size_t{n} * 8) return 0;
    Value::List list;
    list.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      list.push_back(static_cast<std::int64_t>(GetU64(v + 4 + 8 * i)));
    }
    out->value = Value(std::move(list));
  } else {
    return 0;
  }
  return kRecordHeaderSize + payload_len;
}

}  // namespace tdr::wal
