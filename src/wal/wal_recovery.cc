#include "wal/wal_recovery.h"

namespace tdr::wal {

RecoveryResult WalRecovery::Recover(NodeId node, const ApplyFn& apply) {
  RecoveryResult result;
  std::uint64_t expected_lsn = 1;
  const std::uint32_t segments = backend_->SegmentCount(node);
  result.next_segment = segments;
  WalRecord record;
  for (std::uint32_t seg = 0; seg < segments; ++seg) {
    if (!backend_->ReadSegment(node, seg, &buf_)) {
      result.next_segment = seg;
      break;
    }
    ++result.segments_read;
    if (buf_.empty()) {
      // Left by a prior recovery truncating a torn header away, or by a
      // crash before any header byte reached the disk. Nothing durable
      // was lost. Reuse a trailing empty index; skip an interior one —
      // later segments may hold durable records that must stay
      // reachable.
      if (seg + 1 == segments) {
        result.next_segment = seg;
        break;
      }
      continue;
    }
    if (!CheckSegmentHeader(buf_.data(), buf_.size(), node, seg)) {
      // A crash can tear even the (unsynced) header of a freshly rolled
      // segment. The whole segment is tail: drop it and hand its index
      // back to the writer.
      result.torn_tail = true;
      result.bytes_truncated += buf_.size();
      backend_->TruncateSegment(node, seg, 0);
      result.next_segment = seg;
      break;
    }
    std::size_t offset = kSegmentHeaderSize;
    bool clean_end = true;
    while (offset < buf_.size()) {
      const std::size_t consumed =
          DecodeRecord(buf_.data() + offset, buf_.size() - offset, &record);
      if (consumed == 0 || record.lsn != expected_lsn) {
        clean_end = false;
        break;
      }
      apply(record);
      ++result.records_replayed;
      ++expected_lsn;
      offset += consumed;
    }
    if (!clean_end) {
      result.torn_tail = true;
      result.bytes_truncated += buf_.size() - offset;
      backend_->TruncateSegment(node, seg, offset);
      // This segment keeps its durable prefix, so the writer must not
      // reuse its index — it resumes in the next one.
      result.next_segment = seg + 1;
      break;  // anything past a torn segment is unreachable history
    }
  }
  result.next_lsn = expected_lsn;
  return result;
}

}  // namespace tdr::wal
