#ifndef TDR_WAL_WAL_RECOVERY_H_
#define TDR_WAL_WAL_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "storage/types.h"
#include "wal/wal_file.h"
#include "wal/wal_format.h"

namespace tdr::wal {

struct RecoveryResult {
  /// Committed records replayed through the apply callback.
  std::uint64_t records_replayed = 0;
  /// Segments visited (including a final torn one).
  std::uint32_t segments_read = 0;
  /// Bytes cut off the torn tail (0 when the log ended clean).
  std::uint64_t bytes_truncated = 0;
  /// True iff a torn tail was found (crash mid-flush).
  bool torn_tail = false;
  /// LSN the writer should continue from.
  std::uint64_t next_lsn = 1;
  /// Segment index the writer should reopen. Usually SegmentCount, but
  /// a segment whose header was torn is truncated to nothing and its
  /// INDEX handed back for reuse — if the writer opened the next index
  /// instead, the stranded empty segment would stop every later
  /// recovery before it reached the records written after restart.
  std::uint32_t next_segment = 0;
};

/// Replays a node's WAL from its backend, in segment order, stopping at
/// the first invalid record — a torn tail from a crash mid-flush, or
/// bit rot. The torn tail is physically truncated off the segment, so
/// a SECOND crash/recovery cycle sees every surviving segment end
/// clean and never mistakes an old partial record for the end of the
/// log. LSNs must be contiguous from 1 across segments; a gap is
/// treated as corruption at that point.
class WalRecovery {
 public:
  using ApplyFn = std::function<void(const WalRecord&)>;

  explicit WalRecovery(WalBackend* backend) : backend_(backend) {}

  /// Replays `node`'s log through `apply` (in LSN order) and truncates
  /// the torn tail, if any.
  RecoveryResult Recover(NodeId node, const ApplyFn& apply);

 private:
  WalBackend* backend_;
  std::vector<std::uint8_t> buf_;
};

}  // namespace tdr::wal

#endif  // TDR_WAL_WAL_RECOVERY_H_
