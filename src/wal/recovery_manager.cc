#include "wal/recovery_manager.h"

#include <cassert>
#include <utility>

namespace tdr::wal {

RecoveryManager::RecoveryManager(std::vector<Node*> nodes, Network* net,
                                 WalSet* wals)
    : nodes_(std::move(nodes)),
      net_(net),
      wals_(wals),
      recovery_(wals != nullptr ? wals->backend() : nullptr),
      wipe_epoch_(nodes_.size(), 0) {}

void RecoveryManager::Crash(NodeId node) {
  if (wals_ == nullptr) {
    net_->Crash(node);
    return;
  }
  Node* n = nodes_[node];
  // Order matters: disconnect first (scheme hooks observe a dead node),
  // then void parked commits (they release locks and finish — no leaks),
  // then lose the volatile state.
  net_->Crash(node);
  net_->DiscardOutbox(node);
  wals_->Crash(node);
  n->store().ResetToZero();
  n->out_log().Clear();
  ++wipe_epoch_[node];
}

void RecoveryManager::Restart(NodeId node) {
  if (wals_ == nullptr) {
    net_->Restart(node);
    return;
  }
  Node* n = nodes_[node];
  // Transactions in flight at the crash kept stepping (the executor has
  // no crash hook) and their void-completed commits may have installed
  // into the doomed store, appended to the outbound log, or parked
  // ships in the outbox. None of that survived the crash in this
  // model: discard it all and rebuild from the durable prefix alone.
  net_->DiscardOutbox(node);
  n->out_log().Clear();
  n->store().ResetToZero();
  WalMetrics& m = wals_->wal_metrics();
  const RecoveryResult result =
      recovery_.Recover(node, [n](const WalRecord& rec) {
        n->store().Put(rec.oid, rec.value, rec.new_ts);
        n->clock().Observe(rec.new_ts);
      });
  wals_->ResetWriter(node, result.next_lsn, result.next_segment);
  records_replayed_ += result.records_replayed;
  ++recoveries_;
  m.recovery_replayed.Increment(result.records_replayed);
  m.recovery_segments.Increment(result.segments_read);
  if (result.torn_tail) {
    m.torn_tail_truncations.Increment();
    m.torn_tail_bytes.Increment(result.bytes_truncated);
  }
  // Reconnect (flushes parked peer traffic, fires the schemes' catch-up
  // hooks), then close the gap the log could not cover: anything
  // committed while this node was down, or lost with the torn tail.
  net_->Restart(node);
  PeerCatchUp(n);
}

void RecoveryManager::PeerCatchUp(Node* node) {
  WalMetrics& m = wals_->wal_metrics();
  const std::uint64_t db = node->store().size();
  for (ObjectId oid = 0; oid < db; ++oid) {
    const Node* best = nullptr;
    for (Node* peer : nodes_) {
      if (peer == node || peer->crashed()) continue;
      if (!net_->Reachable(node->id(), peer->id())) continue;
      const Timestamp& ts = peer->store().GetUnchecked(oid).ts;
      if (best == nullptr || ts > best->store().GetUnchecked(oid).ts) {
        best = peer;
      }
    }
    if (best == nullptr) continue;
    const StoredObject& theirs = best->store().GetUnchecked(oid);
    const StoredObject& mine = node->store().GetUnchecked(oid);
    if (!(theirs.ts > mine.ts)) continue;
    // Adopt and log: repaired state must survive the NEXT crash too.
    wals_->LogWrite(node->id(), kInvalidTxnId, oid, mine.ts, theirs.ts,
                    theirs.value);
    node->store().Put(oid, theirs.value, theirs.ts);
    node->clock().Observe(theirs.ts);
    m.catch_up_adopted.Increment();
  }
  for (Node* peer : nodes_) {
    if (peer == node || peer->crashed()) continue;
    node->clock().Observe(peer->clock().Peek());
  }
}

}  // namespace tdr::wal
