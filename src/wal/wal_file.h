#ifndef TDR_WAL_WAL_FILE_H_
#define TDR_WAL_WAL_FILE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "storage/types.h"

namespace tdr::wal {

/// One open, append-only WAL segment. The writer appends encoded
/// records and periodically syncs; `synced_size` is the durable prefix
/// — bytes a crash can never lose — while bytes past it are at the
/// mercy of the torn-tail model (WalBackend::CrashTruncate).
class WalFile {
 public:
  virtual ~WalFile() = default;

  virtual void Append(const std::uint8_t* data, std::size_t size) = 0;

  /// fsync equivalent: everything appended so far becomes durable.
  /// The LATENCY of a sync is modeled by the GroupCommitter (a
  /// simulated-time flush event), not here — this call is the instant
  /// the durability line moves.
  virtual void Sync() = 0;

  virtual std::uint64_t size() const = 0;
  virtual std::uint64_t synced_size() const = 0;
};

/// Per-node segment store: creates writable segments, reads them back
/// for recovery, and applies the crash model's torn-tail truncation.
/// Segment indices are dense per node (0, 1, 2, ...); only the
/// highest segment can ever hold unsynced bytes (the writer syncs a
/// segment full before rolling to the next).
class WalBackend {
 public:
  virtual ~WalBackend() = default;

  /// Creates (or truncates) segment `segment` of `node` and returns a
  /// writer for it. The backing bytes outlive the returned handle.
  virtual std::unique_ptr<WalFile> Create(NodeId node,
                                          std::uint32_t segment) = 0;

  /// Number of existing segments for `node` (dense from 0).
  virtual std::uint32_t SegmentCount(NodeId node) const = 0;

  /// Reads segment bytes into `*out` (replaced). False if absent.
  virtual bool ReadSegment(NodeId node, std::uint32_t segment,
                           std::vector<std::uint8_t>* out) const = 0;

  /// Crash model: truncates the segment to `keep_bytes` (no-op when it
  /// is already shorter). Callers guarantee keep_bytes >= the synced
  /// prefix — a sync'd byte is durable by contract.
  virtual void TruncateSegment(NodeId node, std::uint32_t segment,
                               std::uint64_t keep_bytes) = 0;

  /// Deletes every segment of `node`. A fresh writer (a new cluster)
  /// starting over on a backend that may hold another log's segments —
  /// appending an LSN-1 log after stale segments would corrupt replay.
  virtual void Clear(NodeId node) = 0;
};

/// In-memory backend for the simulator: segments are byte vectors that
/// survive writer teardown and crashes, living as long as the backend
/// (the cluster's lifetime). Each segment vector reserves
/// `reserve_bytes` at birth, so steady-state appends never allocate.
class MemWalBackend : public WalBackend {
 public:
  explicit MemWalBackend(std::uint32_t num_nodes,
                         std::size_t reserve_bytes = 0);

  std::unique_ptr<WalFile> Create(NodeId node, std::uint32_t segment) override;
  std::uint32_t SegmentCount(NodeId node) const override;
  bool ReadSegment(NodeId node, std::uint32_t segment,
                   std::vector<std::uint8_t>* out) const override;
  void TruncateSegment(NodeId node, std::uint32_t segment,
                       std::uint64_t keep_bytes) override;
  void Clear(NodeId node) override;

  /// Test hook: direct mutable access to a segment's bytes (torn-tail
  /// suites overwrite bytes to corrupt records in place).
  std::vector<std::uint8_t>* SegmentBytes(NodeId node, std::uint32_t segment);

 private:
  struct Segment {
    std::vector<std::uint8_t> bytes;
    std::uint64_t synced = 0;
  };

  std::vector<std::vector<std::unique_ptr<Segment>>> segments_;  // [node]
  std::size_t reserve_bytes_;
};

/// File-system backend: segment `s` of node `n` lives at
/// `<dir>/wal-n<n>-s<s>.log`. Appends go through stdio with explicit
/// flushes on Sync; the torn-tail model truncates with POSIX
/// truncate(). The directory is created on first use. With `fsync`
/// true, Sync issues a real fdatasync on the segment — the honest
/// durability cost — instead of only advancing the modeled line.
class FileWalBackend : public WalBackend {
 public:
  FileWalBackend(std::string dir, std::uint32_t num_nodes,
                 bool fsync = false);

  std::unique_ptr<WalFile> Create(NodeId node, std::uint32_t segment) override;
  std::uint32_t SegmentCount(NodeId node) const override;
  bool ReadSegment(NodeId node, std::uint32_t segment,
                   std::vector<std::uint8_t>* out) const override;
  void TruncateSegment(NodeId node, std::uint32_t segment,
                       std::uint64_t keep_bytes) override;
  void Clear(NodeId node) override;

  std::string SegmentPath(NodeId node, std::uint32_t segment) const;

 private:
  std::string dir_;
  // Highest created segment + 1 per node, tracked so SegmentCount does
  // not re-probe the file system on the hot path.
  std::vector<std::uint32_t> created_;
  bool fsync_ = false;
};

}  // namespace tdr::wal

#endif  // TDR_WAL_WAL_FILE_H_
