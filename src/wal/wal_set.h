#ifndef TDR_WAL_WAL_SET_H_
#define TDR_WAL_WAL_SET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "runtime/runtime.h"
#include "storage/shard_map.h"
#include "txn/durability.h"
#include "util/rng.h"
#include "wal/group_committer.h"
#include "wal/wal.h"
#include "wal/wal_file.h"

namespace tdr::wal {

/// The cluster's write-ahead logs: one Wal writer + GroupCommitter per
/// node over a shared backend, implementing the executor's
/// DurabilityHook. Also owns the crash half of the durability model:
/// Crash(node) voids parked commits, drops unflushed appends, and tears
/// the unsynced file tail at a seeded random byte — the part of the
/// last fsync the disk may or may not have finished.
class WalSet : public DurabilityHook {
 public:
  struct Options {
    DurabilityMode mode = DurabilityMode::kOff;
    /// Empty: in-memory backend (MemWalBackend — the simulator
    /// default). Non-empty: FileWalBackend rooted at this directory.
    std::string wal_dir;
    /// FileWalBackend only: issue a real fdatasync when the durable
    /// line moves (see FileWalBackend). Off by default — the simulated
    /// flush latency models the cost; turn on to pay (and measure) the
    /// true disk price.
    bool fsync = false;
    SimTime flush_latency = SimTime::Micros(500);
    SimTime group_window = SimTime::Micros(250);
    std::size_t group_max_records = 64;
    std::uint64_t segment_bytes = 64 * 1024;
  };

  /// `rng` seeds the torn-tail draws; it is consumed only at crash
  /// events, so clean runs draw identically with or without it.
  WalSet(runtime::Runtime* rt, std::uint32_t num_nodes,
         const ShardMap* shards, Options options, Rng rng,
         obs::MetricsRegistry* metrics);

  // DurabilityHook:
  bool Enabled(NodeId node) const override;
  void LogWrite(NodeId node, TxnId txn, ObjectId oid, const Timestamp& old_ts,
                const Timestamp& new_ts, const Value& value) override;
  void RequestCommitDurability(NodeId node, sim::Callback done) override;

  /// Crash model: void waiters, drop pending appends, torn-tail the
  /// unsynced suffix of the active segment.
  void Crash(NodeId node);

  /// Recovery handoff: re-arms `node`'s writer at `next_lsn` in
  /// segment `next_segment` (RecoveryResult::next_segment — reusing a
  /// truncated-away torn segment's index) and revives its committer.
  void ResetWriter(NodeId node, std::uint64_t next_lsn,
                   std::uint32_t next_segment);

  bool node_crashed(NodeId node) const { return crashed_[node] != 0; }
  WalBackend* backend() { return backend_.get(); }
  Wal* wal(NodeId node) { return wals_[node].get(); }
  WalMetrics& wal_metrics() { return metrics_; }
  const Options& options() const { return options_; }

 private:
  runtime::Runtime* rt_;
  const ShardMap* shards_;
  Options options_;
  Rng rng_;
  WalMetrics metrics_;

  std::unique_ptr<WalBackend> backend_;
  std::vector<std::unique_ptr<Wal>> wals_;
  std::vector<std::unique_ptr<GroupCommitter>> committers_;
  std::vector<char> crashed_;
};

}  // namespace tdr::wal

#endif  // TDR_WAL_WAL_SET_H_
