#include "wal/group_committer.h"

#include <cassert>
#include <utility>

namespace tdr::wal {

GroupCommitter::GroupCommitter(runtime::Runtime* rt, NodeId node, Wal* wal,
                               Options options, WalMetrics* metrics)
    : rt_(rt), node_(node), wal_(wal), options_(options), metrics_(metrics) {
  waiters_.reserve(16);
}

void GroupCommitter::NotifyAppend() {
  if (crashed_) return;
  metrics_->records_appended.Increment();
  if (in_flight_) return;  // the completion restarts or re-arms
  if (options_.mode == DurabilityMode::kGroup &&
      wal_->pending_records() >= options_.group_max_records) {
    MaybeStartFlush();
    return;
  }
  // Even under kCommit, waiterless appends (replica applies) get a
  // background window so unsynced bytes are bounded in time.
  ArmWindow();
}

void GroupCommitter::RequestDurability(sim::Callback done) {
  assert(!crashed_ && "WalSet void-fires requests at crashed nodes");
  // The request follows an append in the same runtime event, so the
  // durable line cannot have caught up in between.
  assert(wal_->appended_lsn() > wal_->durable_lsn());
  waiters_.push_back(
      Waiter{wal_->appended_lsn(), rt_->Now(), std::move(done)});
  if (in_flight_) return;
  if (options_.mode == DurabilityMode::kCommit) {
    MaybeStartFlush();
    return;
  }
  if (wal_->pending_records() >= options_.group_max_records) {
    MaybeStartFlush();
    return;
  }
  ArmWindow();
}

void GroupCommitter::ArmWindow() {
  if (window_event_ != sim::kInvalidEventId) return;
  const SimTime window = options_.mode == DurabilityMode::kGroup
                             ? options_.group_window
                             : options_.flush_latency;
  const std::uint64_t epoch = epoch_;
  window_event_ = rt_->ScheduleAfterNode(node_, window, [this, epoch]() {
    if (epoch != epoch_) return;
    window_event_ = sim::kInvalidEventId;
    MaybeStartFlush();
  });
}

void GroupCommitter::MaybeStartFlush() {
  if (crashed_ || in_flight_) return;
  if (wal_->appended_lsn() <= wal_->durable_lsn()) return;  // nothing new
  StartFlush();
}

void GroupCommitter::StartFlush() {
  if (window_event_ != sim::kInvalidEventId) {
    rt_->Cancel(window_event_);
    window_event_ = sim::kInvalidEventId;
  }
  in_flight_ = true;
  const std::size_t records = wal_->pending_records();
  const std::uint64_t target = wal_->BeginFlush();
  metrics_->flushes.Increment();
  metrics_->flush_records.Record(records);
  metrics_->records_synced.Increment(records);
  const std::uint64_t epoch = epoch_;
  // Two halves: the sync itself touches only this node's file, so it
  // runs as a parallel-class event (concurrent with other nodes' syncs
  // under epoch dispatch); advancing the durable line and firing parked
  // commits mutate shared state, so that stays an exclusive event,
  // chained at the same virtual time. Under the sim backend the split
  // is just two back-to-back events — same bits either way.
  rt_->ScheduleParallelAfterNode(
      node_, options_.flush_latency, [this, epoch, target]() {
        if (epoch != epoch_) return;  // crashed mid-flush
        wal_->SyncFile();
        rt_->ScheduleAfterNode(node_, SimTime::Zero(), [this, epoch, target]() {
          if (epoch != epoch_) return;
          wal_->CompleteFlush(target);
          in_flight_ = false;
          OnFlushDurable();
        });
      });
}

void GroupCommitter::OnFlushDurable() {
  FireCovered();
  if (waiter_head_ < waiters_.size()) {
    // Parked commits are waiting on records still in the pending buffer
    // (or, under kCommit, on their one-flush-each turn): keep the pipe
    // saturated.
    StartFlush();
    return;
  }
  if (wal_->appended_lsn() > wal_->durable_lsn()) {
    // Waiterless appends arrived during the flush; sweep them up on the
    // next window.
    ArmWindow();
  }
}

std::size_t GroupCommitter::FireCovered() {
  const std::uint64_t durable = wal_->durable_lsn();
  std::size_t fired = 0;
  while (waiter_head_ < waiters_.size() &&
         waiters_[waiter_head_].lsn <= durable) {
    Waiter& w = waiters_[waiter_head_];
    ++waiter_head_;
    metrics_->flush_wait_micros.Record(
        static_cast<std::uint64_t>((rt_->Now() - w.since).micros()));
    sim::Callback done = std::move(w.done);
    done();
    ++fired;
    if (options_.mode == DurabilityMode::kCommit) break;  // one per flush
  }
  if (waiter_head_ == waiters_.size()) {
    waiters_.clear();  // capacity retained
    waiter_head_ = 0;
  }
  return fired;
}

void GroupCommitter::Crash() {
  assert(!crashed_);
  crashed_ = true;
  ++epoch_;  // in-flight completion and armed window become no-ops
  window_event_ = sim::kInvalidEventId;
  in_flight_ = false;
  // Commits parked on durability must still finish (void) — a crashed
  // node's locks and inflight slots are not leaked. FIFO order keeps
  // both backends bit-identical.
  std::size_t voided = 0;
  while (waiter_head_ < waiters_.size()) {
    sim::Callback done = std::move(waiters_[waiter_head_].done);
    ++waiter_head_;
    done();
    ++voided;
  }
  waiters_.clear();
  waiter_head_ = 0;
  metrics_->crash_voided_waiters.Increment(voided);
}

void GroupCommitter::Reset() {
  assert(crashed_);
  crashed_ = false;
}

}  // namespace tdr::wal
