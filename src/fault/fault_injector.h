#ifndef TDR_FAULT_FAULT_INJECTOR_H_
#define TDR_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault_plan.h"
#include "net/network.h"
#include "replication/cluster.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace tdr::fault {

/// Executes a FaultPlan against a cluster, deterministically.
///
/// Scheduled actions become ordinary simulator events (so they order
/// with everything else by (time, seq)); probabilistic message faults
/// are applied through the Network's MessageInterceptor hook using a
/// dedicated RNG stream forked from the cluster seed. Identical
/// (seed, plan) pairs therefore produce byte-identical runs — the
/// property the replay tests assert.
///
/// Partitions compose: each active partition (or manual link cut)
/// contributes one "separation" to every link it severs, and a link is
/// physically down while its separation count is nonzero. Overlapping
/// named partitions thus heal correctly in any order.
class FaultInjector : public Network::MessageInterceptor {
 public:
  FaultInjector(Cluster* cluster, FaultPlan plan, Rng rng);

  /// Detaches the interceptor and cancels pending scheduled actions.
  ~FaultInjector() override;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every plan action on the simulator and attaches the
  /// message interceptor. Call once, before running the workload.
  void Arm();

  /// Cancels pending actions, stops chaos and detaches the interceptor.
  /// Already-applied faults (partitions, crashes) stay in force.
  void Disarm();

  // Immediate fault API — tests drive these directly; the scheduled
  // plan actions call the same entry points.
  void Crash(NodeId node);
  void Restart(NodeId node);
  void CutLink(NodeId a, NodeId b);
  void HealLink(NodeId a, NodeId b);
  void StartPartition(const std::string& name, std::vector<NodeId> group);
  void HealPartition(const std::string& name);
  void SetChaosActive(bool active);

  /// Heals every partition and manual cut, restarts every node this
  /// injector crashed, and stops chaos — the end-of-run "heal the
  /// world" step before convergence checks.
  void HealAll();

  bool chaos_active() const { return chaos_active_; }
  std::uint64_t injected_drops() const { return injected_drops_; }
  std::uint64_t injected_duplicates() const { return injected_duplicates_; }
  std::uint64_t injected_delays() const { return injected_delays_; }

  /// Human-readable log of every fault applied so far, with event
  /// times — the trace attached to invariant violations.
  const std::vector<std::string>& applied_log() const { return applied_log_; }
  std::string AppliedLogString() const;

  /// Observer invoked once per applied fault, at the fault's simulated
  /// time, with the log entry (before the "[t=...]" prefix is added).
  /// ChromeTraceWriter::OnFault plugs in here to put faults on their
  /// own trace track. Null detaches.
  using FaultObserver = std::function<void(SimTime, const std::string&)>;
  void set_observer(FaultObserver observer) {
    observer_ = std::move(observer);
  }

  // Network::MessageInterceptor:
  Network::InterceptVerdict OnTransmit(NodeId from, NodeId to) override;

 private:
  void Apply(const FaultAction& action);
  void Separate(NodeId a, NodeId b, int delta);
  void Log(std::string entry);

  Cluster* cluster_;
  FaultPlan plan_;
  Rng rng_;
  bool armed_ = false;
  bool chaos_active_ = false;
  // Separation count per unordered node pair (a < b).
  std::map<std::pair<NodeId, NodeId>, int> separation_;
  std::map<std::string, std::vector<NodeId>> active_partitions_;
  std::vector<NodeId> crashed_by_us_;
  std::vector<sim::EventId> scheduled_;
  std::vector<std::string> applied_log_;
  FaultObserver observer_;
  std::uint64_t injected_drops_ = 0;
  std::uint64_t injected_duplicates_ = 0;
  std::uint64_t injected_delays_ = 0;
};

}  // namespace tdr::fault

#endif  // TDR_FAULT_FAULT_INJECTOR_H_
