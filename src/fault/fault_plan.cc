#include "fault/fault_plan.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <utility>

#include "util/logging.h"

namespace tdr::fault {

namespace {

const char* KindName(FaultAction::Kind kind) {
  switch (kind) {
    case FaultAction::Kind::kCrash: return "crash";
    case FaultAction::Kind::kRestart: return "restart";
    case FaultAction::Kind::kCutLink: return "cut-link";
    case FaultAction::Kind::kHealLink: return "heal-link";
    case FaultAction::Kind::kPartition: return "partition";
    case FaultAction::Kind::kHealPartition: return "heal-partition";
    case FaultAction::Kind::kChaosOn: return "chaos-on";
    case FaultAction::Kind::kChaosOff: return "chaos-off";
  }
  return "?";
}

}  // namespace

std::string FaultAction::ToString() const {
  std::string s = StrPrintf("t=%.3fs %s", at.seconds(), KindName(kind));
  switch (kind) {
    case Kind::kCrash:
    case Kind::kRestart:
      s += StrPrintf(" node=%u", a);
      break;
    case Kind::kCutLink:
    case Kind::kHealLink:
      s += StrPrintf(" link=(%u,%u)", a, b);
      break;
    case Kind::kPartition: {
      s += " \"" + name + "\" group={";
      for (std::size_t i = 0; i < group.size(); ++i) {
        if (i > 0) s += ",";
        s += StrPrintf("%u", group[i]);
      }
      s += "}";
      break;
    }
    case Kind::kHealPartition:
      s += " \"" + name + "\"";
      break;
    case Kind::kChaosOn:
    case Kind::kChaosOff:
      break;
  }
  return s;
}

FaultPlan& FaultPlan::CrashAt(SimTime t, NodeId node) {
  FaultAction a;
  a.at = t;
  a.kind = FaultAction::Kind::kCrash;
  a.a = node;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::RestartAt(SimTime t, NodeId node) {
  FaultAction a;
  a.at = t;
  a.kind = FaultAction::Kind::kRestart;
  a.a = node;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::CutLinkAt(SimTime t, NodeId a, NodeId b) {
  FaultAction act;
  act.at = t;
  act.kind = FaultAction::Kind::kCutLink;
  act.a = a;
  act.b = b;
  actions_.push_back(std::move(act));
  return *this;
}

FaultPlan& FaultPlan::HealLinkAt(SimTime t, NodeId a, NodeId b) {
  FaultAction act;
  act.at = t;
  act.kind = FaultAction::Kind::kHealLink;
  act.a = a;
  act.b = b;
  actions_.push_back(std::move(act));
  return *this;
}

FaultPlan& FaultPlan::PartitionAt(SimTime t, std::string name,
                                  std::vector<NodeId> group) {
  FaultAction a;
  a.at = t;
  a.kind = FaultAction::Kind::kPartition;
  a.name = std::move(name);
  a.group = std::move(group);
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::HealPartitionAt(SimTime t, std::string name) {
  FaultAction a;
  a.at = t;
  a.kind = FaultAction::Kind::kHealPartition;
  a.name = std::move(name);
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::ChaosOnAt(SimTime t) {
  FaultAction a;
  a.at = t;
  a.kind = FaultAction::Kind::kChaosOn;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::ChaosOffAt(SimTime t) {
  FaultAction a;
  a.at = t;
  a.kind = FaultAction::Kind::kChaosOff;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::WithChaos(ChaosProfile profile) {
  chaos_ = profile;
  return *this;
}

bool FaultPlan::ChaosAlwaysOn() const {
  if (chaos_.empty()) return false;
  for (const FaultAction& a : actions_) {
    if (a.kind == FaultAction::Kind::kChaosOn) return false;
  }
  return true;
}

bool FaultPlan::EndsHealed() const {
  std::map<NodeId, int> crashed;
  std::map<std::pair<NodeId, NodeId>, int> cut;
  std::map<std::string, int> parts;
  for (const FaultAction& a : actions_) {
    switch (a.kind) {
      case FaultAction::Kind::kCrash: ++crashed[a.a]; break;
      case FaultAction::Kind::kRestart: --crashed[a.a]; break;
      case FaultAction::Kind::kCutLink: ++cut[{a.a, a.b}]; break;
      case FaultAction::Kind::kHealLink: --cut[{a.a, a.b}]; break;
      case FaultAction::Kind::kPartition: ++parts[a.name]; break;
      case FaultAction::Kind::kHealPartition: --parts[a.name]; break;
      default: break;
    }
  }
  for (const auto& [k, v] : crashed) {
    if (v > 0) return false;
  }
  for (const auto& [k, v] : cut) {
    if (v > 0) return false;
  }
  for (const auto& [k, v] : parts) {
    if (v > 0) return false;
  }
  return true;
}

FaultPlan FaultPlan::Random(Rng* rng, std::uint32_t num_nodes,
                            SimTime horizon) {
  FaultPlan plan;
  double h = horizon.seconds();
  // Crash/restart pairs. Never crash node 0 (keeps a stable reference
  // replica and guarantees the system is never fully dead).
  std::uint64_t crashes = rng->UniformInt(3);  // 0, 1, or 2
  for (std::uint64_t i = 0; i < crashes && num_nodes > 1; ++i) {
    NodeId victim = static_cast<NodeId>(1 + rng->UniformInt(num_nodes - 1));
    double t1 = rng->UniformDouble() * h * 0.6;
    double t2 =
        t1 + 0.05 * h + rng->UniformDouble() * (h * 0.9 - t1 - 0.05 * h);
    plan.CrashAt(SimTime::Seconds(t1), victim)
        .RestartAt(SimTime::Seconds(t2), victim);
  }
  // Named partitions with heals.
  std::uint64_t partitions = rng->UniformInt(3);
  for (std::uint64_t i = 0; i < partitions && num_nodes > 2; ++i) {
    std::uint64_t group_size = 1 + rng->UniformInt(num_nodes / 2);
    std::vector<NodeId> group;
    for (std::uint64_t v :
         rng->SampleWithoutReplacement(num_nodes, group_size)) {
      group.push_back(static_cast<NodeId>(v));
    }
    std::sort(group.begin(), group.end());
    double t1 = rng->UniformDouble() * h * 0.6;
    double t2 =
        t1 + 0.05 * h + rng->UniformDouble() * (h * 0.9 - t1 - 0.05 * h);
    std::string name = StrPrintf("p%llu", (unsigned long long)i);
    plan.PartitionAt(SimTime::Seconds(t1), name, std::move(group))
        .HealPartitionAt(SimTime::Seconds(t2), name);
  }
  // Maybe a probabilistic chaos window.
  if (rng->Bernoulli(0.7)) {
    ChaosProfile chaos;
    chaos.drop_probability = rng->UniformDouble() * 0.02;
    chaos.duplicate_probability = rng->UniformDouble() * 0.02;
    chaos.delay_probability = rng->UniformDouble() * 0.05;
    chaos.max_extra_delay = SimTime::Millis(1 + rng->UniformInt(200));
    double t1 = rng->UniformDouble() * h * 0.4;
    double t2 = t1 + rng->UniformDouble() * (h * 0.9 - t1);
    plan.WithChaos(chaos)
        .ChaosOnAt(SimTime::Seconds(t1))
        .ChaosOffAt(SimTime::Seconds(t2));
  }
  return plan;
}

namespace {

void HashMix(std::uint64_t* h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (8 * i)) & 0xff;
    *h *= 1099511628211ULL;
  }
}

void HashMixStr(std::uint64_t* h, const std::string& s) {
  HashMix(h, s.size());
  for (unsigned char c : s) {
    *h ^= c;
    *h *= 1099511628211ULL;
  }
}

}  // namespace

std::uint64_t FaultPlan::Fingerprint() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  HashMix(&h, actions_.size());
  for (const FaultAction& a : actions_) {
    HashMix(&h, static_cast<std::uint64_t>(a.at.micros()));
    HashMix(&h, static_cast<std::uint64_t>(a.kind));
    HashMix(&h, a.a);
    HashMix(&h, a.b);
    HashMixStr(&h, a.name);
    HashMix(&h, a.group.size());
    for (NodeId n : a.group) HashMix(&h, n);
  }
  // Probabilities hashed by bit pattern: the plan is either built from
  // the same literals (equal bits) or it is not the same plan.
  auto bits = [](double d) {
    std::uint64_t u = 0;
    static_assert(sizeof(u) == sizeof(d));
    std::memcpy(&u, &d, sizeof(u));
    return u;
  };
  HashMix(&h, bits(chaos_.drop_probability));
  HashMix(&h, bits(chaos_.duplicate_probability));
  HashMix(&h, bits(chaos_.delay_probability));
  HashMix(&h, static_cast<std::uint64_t>(chaos_.max_extra_delay.micros()));
  return h;
}

std::string FaultPlan::ToString() const {
  std::string s = StrPrintf("FaultPlan{%zu actions", actions_.size());
  if (!chaos_.empty()) {
    s += StrPrintf(", chaos drop=%.3f dup=%.3f delay=%.3f",
                   chaos_.drop_probability, chaos_.duplicate_probability,
                   chaos_.delay_probability);
  }
  s += "}";
  for (const FaultAction& a : actions_) {
    s += "\n  " + a.ToString();
  }
  return s;
}

}  // namespace tdr::fault
