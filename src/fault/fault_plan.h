#ifndef TDR_FAULT_FAULT_PLAN_H_
#define TDR_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/types.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace tdr::fault {

/// One scheduled fault event. Plans are data, not behaviour: a plan plus
/// a seed fully determines every fault a run experiences, which is what
/// makes chaos runs replayable bit-for-bit.
struct FaultAction {
  enum class Kind {
    kCrash,          // node `a` fails (volatile state lost, log survives)
    kRestart,        // node `a` recovers from its log and rejoins
    kCutLink,        // link (a, b) goes down
    kHealLink,       // link (a, b) comes back
    kPartition,      // named partition: `group` is split from the rest
    kHealPartition,  // the named partition heals
    kChaosOn,        // probabilistic message faults start
    kChaosOff,       // probabilistic message faults stop
  };

  SimTime at;
  Kind kind = Kind::kCrash;
  NodeId a = kInvalidNodeId;
  NodeId b = kInvalidNodeId;
  std::string name;            // partition actions only
  std::vector<NodeId> group;   // kPartition only: the isolated side

  std::string ToString() const;
};

/// Probabilistic per-message fault profile, active while chaos is on.
/// Probabilities are per transmission; draws come from the injector's
/// own seeded RNG stream, so the fault pattern is a pure function of
/// (seed, plan) and the deterministic message order.
struct ChaosProfile {
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  double delay_probability = 0.0;
  /// Extra delay drawn uniformly from (0, max_extra_delay].
  SimTime max_extra_delay = SimTime::Zero();

  bool empty() const {
    return drop_probability <= 0.0 && duplicate_probability <= 0.0 &&
           delay_probability <= 0.0;
  }
};

/// A deterministic schedule of faults plus an optional probabilistic
/// profile. Built fluently:
///
///   FaultPlan plan;
///   plan.CrashAt(SimTime::Seconds(5), 2)
///       .RestartAt(SimTime::Seconds(15), 2)
///       .PartitionAt(SimTime::Seconds(8), "split", {0, 1})
///       .HealPartitionAt(SimTime::Seconds(20), "split")
///       .WithChaos({.drop_probability = 0.01});
///
/// If the profile is nonempty and no explicit kChaosOn action exists,
/// chaos is active for the whole run.
class FaultPlan {
 public:
  FaultPlan& CrashAt(SimTime t, NodeId node);
  FaultPlan& RestartAt(SimTime t, NodeId node);
  FaultPlan& CutLinkAt(SimTime t, NodeId a, NodeId b);
  FaultPlan& HealLinkAt(SimTime t, NodeId a, NodeId b);
  FaultPlan& PartitionAt(SimTime t, std::string name,
                         std::vector<NodeId> group);
  FaultPlan& HealPartitionAt(SimTime t, std::string name);
  FaultPlan& ChaosOnAt(SimTime t);
  FaultPlan& ChaosOffAt(SimTime t);
  FaultPlan& WithChaos(ChaosProfile profile);

  const std::vector<FaultAction>& actions() const { return actions_; }
  const ChaosProfile& chaos() const { return chaos_; }

  /// True if chaos should be on from t=0 (nonempty profile, no explicit
  /// on/off schedule).
  bool ChaosAlwaysOn() const;

  /// True if every crash has a later restart, every cut link a later
  /// heal and every partition a later heal — a well-formed plan for
  /// convergence testing (the system must be whole again at the end).
  bool EndsHealed() const;

  /// Generates a random well-formed plan over `num_nodes` nodes within
  /// `horizon`: 0-2 crash/restart pairs, 0-2 named partitions with
  /// heals, possibly a chaos window with small drop/dup/delay rates.
  /// Every fault heals before `horizon`, so EndsHealed() is true.
  static FaultPlan Random(Rng* rng, std::uint32_t num_nodes,
                          SimTime horizon);

  std::string ToString() const;

  /// Deterministic FNV-1a fingerprint over every action field and the
  /// chaos profile. Two processes that independently build "the same"
  /// plan from a shipped config can prove it cheaply — the proc
  /// backend's config-integrity channel.
  std::uint64_t Fingerprint() const;

 private:
  std::vector<FaultAction> actions_;
  ChaosProfile chaos_;
};

}  // namespace tdr::fault

#endif  // TDR_FAULT_FAULT_PLAN_H_
