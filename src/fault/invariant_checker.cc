#include "fault/invariant_checker.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

#include "core/two_tier.h"
#include "util/logging.h"

namespace tdr::fault {

const char* SchemeClassName(SchemeClass scheme) {
  switch (scheme) {
    case SchemeClass::kEagerGroup: return "eager-group";
    case SchemeClass::kEagerMaster: return "eager-master";
    case SchemeClass::kQuorum: return "quorum-eager";
    case SchemeClass::kLazyGroup: return "lazy-group";
    case SchemeClass::kLazyMaster: return "lazy-master";
    case SchemeClass::kTwoTier: return "two-tier";
  }
  return "?";
}

std::string Violation::ToString() const {
  std::string s = StrPrintf("[t=%.6fs] %s: %s", at.seconds(),
                            invariant.c_str(), detail.c_str());
  if (!fault_trace.empty()) {
    s += "\n  fault trace:\n    ";
    for (char c : fault_trace) {
      s += c;
      if (c == '\n') s += "    ";
    }
  }
  return s;
}

InvariantChecker::InvariantChecker(Cluster* cluster, Options options)
    : cluster_(cluster), options_(std::move(options)) {
  last_ts_.resize(cluster_->size());
  for (NodeId id = 0; id < cluster_->size(); ++id) {
    last_ts_[id].assign(cluster_->options().db_size, Timestamp::Zero());
  }
  wipe_epoch_seen_.assign(cluster_->size(), 0);
}

InvariantChecker::~InvariantChecker() {
  Disarm();
  if (!violations_.empty() && options_.abort_on_unchecked) {
    std::fprintf(stderr,
                 "InvariantChecker[%s]: %llu UNCHECKED invariant "
                 "violation(s) at destruction:\n",
                 SchemeClassName(options_.scheme),
                 (unsigned long long)violations_total_);
    for (const Violation& v : violations_) {
      std::fprintf(stderr, "%s\n", v.ToString().c_str());
    }
    std::abort();
  }
}

void InvariantChecker::Arm() {
  if (sweep_series_ != sim::kInvalidEventId) return;
  if (options_.check_interval <= SimTime::Zero()) return;
  sweep_series_ = cluster_->runtime().RepeatEvery(options_.check_interval,
                                              [this]() { CheckNow(); });
}

void InvariantChecker::Disarm() {
  if (sweep_series_ == sim::kInvalidEventId) return;
  cluster_->runtime().Cancel(sweep_series_);
  sweep_series_ = sim::kInvalidEventId;
}

void InvariantChecker::CheckNow() {
  CheckMonotoneTimestamps();
  CheckTimestampValueAgreement();
  if (UsesOwnership() && options_.ownership != nullptr) {
    CheckMasterDominance();
  }
  if (options_.scheme == SchemeClass::kQuorum && options_.quorum != nullptr) {
    CheckQuorumIntersection();
  }
  cluster_->metrics().Increment("invariant.sweeps");
}

void InvariantChecker::CheckFinal() {
  CheckNow();
  CheckConvergence();
  if (options_.scheme == SchemeClass::kTwoTier &&
      options_.two_tier != nullptr) {
    CheckTwoTierLedger();
  }
}

void InvariantChecker::CheckMonotoneTimestamps() {
  // Under DurabilityMode::kOff stores are durable across crashes (the
  // legacy model), so a crashed node's state stays visible and checked.
  const bool wal = cluster_->recovery().wal_enabled();
  for (NodeId id = 0; id < cluster_->size(); ++id) {
    // A WAL-mode crash wipes the store; recovery replays an older
    // durable prefix. That rewind is legitimate exactly once per wipe:
    // reset the watermarks when the epoch moves, and skip nodes that
    // are down (their wiped state is not externally visible).
    const std::uint64_t epoch = cluster_->recovery().wipe_epoch(id);
    if (epoch != wipe_epoch_seen_[id]) {
      wipe_epoch_seen_[id] = epoch;
      last_ts_[id].assign(last_ts_[id].size(), Timestamp::Zero());
    }
    if (wal && cluster_->node(id)->crashed()) continue;
    const ObjectStore& store = cluster_->node(id)->store();
    std::vector<Timestamp>& last = last_ts_[id];
    for (ObjectId oid = 0; oid < store.size(); ++oid) {
      const Timestamp ts = store.GetUnchecked(oid).ts;
      if (ts < last[oid]) {
        Report("monotone-timestamps",
               StrPrintf("node %u object %llu went backwards: %s -> %s", id,
                         (unsigned long long)oid,
                         last[oid].ToString().c_str(), ts.ToString().c_str()));
      }
      last[oid] = ts;
    }
  }
}

void InvariantChecker::CheckTimestampValueAgreement() {
  // A commit timestamp identifies exactly one write (Lamport timestamps
  // are unique per writer), so two replicas at the same (oid, ts) must
  // agree on the value.
  const bool wal = cluster_->recovery().wal_enabled();
  const std::uint64_t db = cluster_->options().db_size;
  for (ObjectId oid = 0; oid < db; ++oid) {
    std::map<Timestamp, std::pair<NodeId, const StoredObject*>> seen;
    for (NodeId id = 0; id < cluster_->size(); ++id) {
      if (wal && cluster_->node(id)->crashed()) continue;  // wiped
      const StoredObject& obj = cluster_->node(id)->store().GetUnchecked(oid);
      auto [it, inserted] = seen.emplace(obj.ts, std::make_pair(id, &obj));
      if (!inserted && !(it->second.second->value == obj.value)) {
        Report("timestamp-value-agreement",
               StrPrintf("object %llu at ts %s: node %u holds %s, node %u "
                         "holds %s",
                         (unsigned long long)oid, obj.ts.ToString().c_str(),
                         it->second.first,
                         it->second.second->value.ToString().c_str(), id,
                         obj.value.ToString().c_str()));
      }
    }
  }
}

void InvariantChecker::CheckMasterDominance() {
  // "Only the master can update the primary copy": a replica can lag
  // its master but never lead it.
  const bool wal = cluster_->recovery().wal_enabled();
  const std::uint64_t db = cluster_->options().db_size;
  for (ObjectId oid = 0; oid < db; ++oid) {
    const NodeId owner = options_.ownership->OwnerOf(oid);
    // A crashed master's wiped store legitimately lags its replicas
    // until restart recovery catches it up; skip until then.
    if (wal && cluster_->node(owner)->crashed()) continue;
    const Timestamp master_ts =
        cluster_->node(owner)->store().GetUnchecked(oid).ts;
    for (NodeId id = 0; id < cluster_->size(); ++id) {
      if (id == owner) continue;
      if (wal && cluster_->node(id)->crashed()) continue;
      const Timestamp ts = cluster_->node(id)->store().GetUnchecked(oid).ts;
      if (ts > master_ts) {
        Report("single-master-dominance",
               StrPrintf("object %llu: replica at node %u (ts %s) is ahead "
                         "of master node %u (ts %s)",
                         (unsigned long long)oid, id, ts.ToString().c_str(),
                         owner, master_ts.ToString().c_str()));
      }
    }
  }
}

void InvariantChecker::CheckQuorumIntersection() {
  // The newest committed version of each object must be held by
  // replicas mustering >= write_quorum votes: every future write (and
  // with R+W > V, every read) quorum then intersects it. Stores are
  // durable, so crashed nodes still count.
  const QuorumEagerScheme* q = options_.quorum;
  const std::uint64_t db = cluster_->options().db_size;
  for (ObjectId oid = 0; oid < db; ++oid) {
    Timestamp newest = Timestamp::Zero();
    for (NodeId id = 0; id < cluster_->size(); ++id) {
      const Timestamp ts = cluster_->node(id)->store().GetUnchecked(oid).ts;
      if (ts > newest) newest = ts;
    }
    if (newest.IsZero()) continue;  // never written: everyone agrees
    std::uint32_t votes = 0;
    for (NodeId id = 0; id < cluster_->size(); ++id) {
      if (cluster_->node(id)->store().GetUnchecked(oid).ts == newest) {
        votes += q->VoteOf(id);
      }
    }
    if (votes < q->write_quorum()) {
      Report("quorum-intersection",
             StrPrintf("object %llu: newest version ts %s held by only %u "
                       "of %u required votes",
                       (unsigned long long)oid, newest.ToString().c_str(),
                       votes, q->write_quorum()));
    }
  }
}

void InvariantChecker::CheckConvergence() {
  if (options_.scheme == SchemeClass::kLazyGroup) {
    // Divergence here is the paper's system delusion — the invariant is
    // that we DETECT it, not that it is absent.
    delusion_slots_ = cluster_->DivergentSlots();
    cluster_->metrics().Increment("invariant.delusion_slots",
                                   delusion_slots_);
    return;
  }
  if (options_.scheme == SchemeClass::kTwoTier) {
    // Mobile replicas may legitimately lag (they refresh on their own
    // schedule); the paper's property 4 binds the always-connected tier.
    const TwoTierSystem* sys = options_.two_tier;
    if (sys != nullptr && !sys->BaseTierConverged()) {
      Report("base-tier-convergence",
             "base-tier replicas differ after heal and drain");
    }
    return;
  }
  if (!cluster_->Converged()) {
    Report("convergence",
           StrPrintf("replicas differ after heal and drain: %llu divergent "
                     "slots",
                     (unsigned long long)cluster_->DivergentSlots()));
  }
}

void InvariantChecker::CheckTwoTierLedger() {
  // "No lost base updates": every tentative transaction was reprocessed
  // at the base as committed or rejected-with-reason, and nothing is
  // still queued once the system is healed and drained.
  const TwoTierSystem* sys = options_.two_tier;
  const std::uint64_t accounted =
      sys->base_committed() + sys->base_rejected();
  std::uint64_t still_pending = 0;
  for (NodeId id : sys->MobileIds()) {
    still_pending += sys->mobile(id).PendingCount();
  }
  if (sys->tentative_submitted() != accounted + still_pending) {
    Report("two-tier-ledger",
           StrPrintf("tentative_submitted=%llu but base_committed=%llu + "
                     "base_rejected=%llu + pending=%llu",
                     (unsigned long long)sys->tentative_submitted(),
                     (unsigned long long)sys->base_committed(),
                     (unsigned long long)sys->base_rejected(),
                     (unsigned long long)still_pending));
  }
  if (still_pending != 0) {
    Report("two-tier-ledger",
           StrPrintf("%llu tentative transaction(s) still queued after "
                     "heal and drain",
                     (unsigned long long)still_pending));
  }
}

void InvariantChecker::Report(const char* invariant, std::string detail) {
  ++violations_total_;
  cluster_->metrics().Increment("invariant.violations");
  if (violations_.size() >= options_.max_recorded) return;
  Violation v;
  v.invariant = invariant;
  v.detail = std::move(detail);
  v.at = cluster_->runtime().Now();
  if (options_.trace_fn) v.fault_trace = options_.trace_fn();
  violations_.push_back(std::move(v));
}

std::vector<Violation> InvariantChecker::TakeViolations() {
  std::vector<Violation> out = std::move(violations_);
  violations_.clear();
  return out;
}

}  // namespace tdr::fault
