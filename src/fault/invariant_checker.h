#ifndef TDR_FAULT_INVARIANT_CHECKER_H_
#define TDR_FAULT_INVARIANT_CHECKER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "replication/cluster.h"
#include "replication/ownership.h"
#include "replication/quorum.h"
#include "sim/simulator.h"
#include "storage/timestamp.h"

namespace tdr {
class TwoTierSystem;
}  // namespace tdr

namespace tdr::fault {

/// Which scheme's guarantees the checker enforces. The invariant set
/// per class follows the paper's claims: eager schemes and lazy-master
/// must converge; lazy-group is EXPECTED to diverge under faults
/// (system delusion) — divergence is recorded, not flagged.
enum class SchemeClass {
  kEagerGroup,
  kEagerMaster,
  kQuorum,
  kLazyGroup,
  kLazyMaster,
  kTwoTier,
};

const char* SchemeClassName(SchemeClass scheme);

/// One detected invariant violation, with the simulated time it was
/// observed and (when a fault trace provider is wired) the fault
/// history that led up to it.
struct Violation {
  std::string invariant;
  std::string detail;
  SimTime at;
  std::string fault_trace;

  std::string ToString() const;
};

/// Always-on machine checker for the paper's per-scheme guarantees.
///
/// Checks (applicability per scheme in parentheses):
///  * monotone-timestamps (all): a replica's timestamp for an object
///    never moves backwards — newer-wins, timestamp-match, quorum-apply
///    and catch-up must all preserve this.
///  * timestamp-value-agreement (all): two replicas holding the same
///    (object, timestamp) hold the same value — a commit timestamp
///    uniquely identifies one write.
///  * master-dominance (master schemes): the owner's copy of an object
///    carries the newest timestamp anywhere in the cluster — a slave
///    can lag the master but never lead it ("only the master can update
///    the primary copy").
///  * quorum-intersection (quorum): replicas holding the newest version
///    of an object muster at least write_quorum votes, so any future
///    write/read quorum intersects the latest committed write.
///  * convergence (final; all but lazy-group): once every fault heals
///    and queues drain, all replicas hold identical values. For
///    lazy-group the divergent slot count is recorded as the DETECTED
///    delusion instead ("the database will be inconsistent and the
///    inconsistency will not be detected otherwise").
///  * two-tier-ledger (two-tier, final): no lost base updates —
///    every tentative transaction was reprocessed at the base and
///    either committed or rejected-with-reason, none silently dropped.
///
/// If any violation is never acknowledged via TakeViolations() before
/// destruction, the checker aborts the process (the CI gate: a run that
/// ends with unchecked violations fails the build).
class InvariantChecker {
 public:
  struct Options {
    SchemeClass scheme = SchemeClass::kEagerGroup;
    /// Master map, required for master-dominance (eager-master,
    /// lazy-master, two-tier).
    const Ownership* ownership = nullptr;
    /// Vote configuration, required for quorum-intersection.
    const QuorumEagerScheme* quorum = nullptr;
    /// Two-tier bookkeeping, required for the ledger check.
    const TwoTierSystem* two_tier = nullptr;
    /// If positive, CheckNow() runs on this period while armed.
    SimTime check_interval = SimTime::Zero();
    /// Fault history provider (e.g. FaultInjector::AppliedLogString),
    /// captured into each violation.
    std::function<std::string()> trace_fn;
    /// Abort the process from the destructor on unacknowledged
    /// violations. On by default; tests that EXPECT violations must
    /// TakeViolations().
    bool abort_on_unchecked = true;
    /// At most this many violations keep full detail (all are counted).
    std::size_t max_recorded = 100;
  };

  InvariantChecker(Cluster* cluster, Options options);
  ~InvariantChecker();

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  /// Starts the periodic sweep (no-op if check_interval is zero).
  void Arm();

  /// Stops the periodic sweep. Call before draining the simulator to
  /// completion — the sweep series would otherwise run forever.
  void Disarm();

  /// Runs every steady-state check against current cluster state.
  void CheckNow();

  /// End-of-run check: everything in CheckNow() plus convergence (or
  /// delusion recording) and the two-tier ledger.
  void CheckFinal();

  std::uint64_t violations_total() const { return violations_total_; }
  const std::vector<Violation>& violations() const { return violations_; }

  /// Acknowledges and returns all recorded violations; afterwards the
  /// destructor will not abort (until new violations appear).
  std::vector<Violation> TakeViolations();

  /// Divergent (node, object) slots observed by the last CheckFinal()
  /// under lazy-group — the *detected* system delusion.
  std::uint64_t delusion_slots() const { return delusion_slots_; }

 private:
  bool UsesOwnership() const {
    return options_.scheme == SchemeClass::kEagerMaster ||
           options_.scheme == SchemeClass::kLazyMaster ||
           options_.scheme == SchemeClass::kTwoTier;
  }
  void CheckMonotoneTimestamps();
  void CheckTimestampValueAgreement();
  void CheckMasterDominance();
  void CheckQuorumIntersection();
  void CheckConvergence();
  void CheckTwoTierLedger();
  void Report(const char* invariant, std::string detail);

  Cluster* cluster_;
  Options options_;
  sim::EventId sweep_series_ = sim::kInvalidEventId;
  // Last observed timestamp per (node, object), for monotonicity.
  std::vector<std::vector<Timestamp>> last_ts_;
  // RecoveryManager wipe epoch at the last sweep: when it moves, the
  // node's store was legitimately wiped by a WAL-mode crash and its
  // monotonicity watermarks reset (recovery replays an old prefix).
  std::vector<std::uint64_t> wipe_epoch_seen_;
  std::vector<Violation> violations_;
  std::uint64_t violations_total_ = 0;
  std::uint64_t delusion_slots_ = 0;
};

}  // namespace tdr::fault

#endif  // TDR_FAULT_INVARIANT_CHECKER_H_
