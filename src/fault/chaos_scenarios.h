#ifndef TDR_FAULT_CHAOS_SCENARIOS_H_
#define TDR_FAULT_CHAOS_SCENARIOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "fault/invariant_checker.h"
#include "obs/metrics.h"
#include "util/sim_time.h"

namespace tdr::workload {

/// Configuration of one chaos run: a scheme, a workload window, and a
/// fault plan. Everything downstream is a pure function of this struct,
/// so two runs with equal configs are bit-identical.
struct ChaosConfig {
  fault::SchemeClass scheme = fault::SchemeClass::kEagerGroup;
  std::uint32_t num_nodes = 4;
  std::uint64_t db_size = 200;
  double tps_per_node = 20.0;
  double seconds = 30.0;
  std::uint64_t seed = 42;
  SimTime action_time = SimTime::Millis(1);
  /// Invariant sweep period (zero disables periodic sweeps; the final
  /// check always runs).
  SimTime check_interval = SimTime::Seconds(1);
  fault::FaultPlan plan;
  /// Two-tier only: mobile nodes on top of num_nodes base nodes.
  std::uint32_t num_mobile = 2;
  /// Two-tier only: tentative transactions per mobile per cycle.
  std::uint32_t tentative_per_cycle = 3;
  /// If non-empty, write a Chrome trace-event JSON of the run here
  /// (load in https://ui.perfetto.dev): per-node transaction slices,
  /// commit -> replica-apply flow arrows, faults on their own track.
  std::string trace_path;
  /// If non-empty, write a RunReport JSON (schema tdr.run_report.v1)
  /// here: config, metrics snapshot, committed/applied time series, and
  /// the invariant summary.
  std::string report_path;
};

/// Everything a chaos run produces. `Fingerprint()` folds the final
/// store digests and every counter that matters into one value — the
/// replay tests assert fingerprints match across reruns and across
/// SweepRunner thread counts.
struct ChaosOutcome {
  std::uint64_t state_digest = 0;
  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;
  std::uint64_t deadlocks = 0;
  std::uint64_t unavailable = 0;
  std::uint64_t reconciliations = 0;
  std::uint64_t delusion_slots = 0;
  std::uint64_t catch_up_objects = 0;
  std::uint64_t violations = 0;
  std::vector<fault::Violation> violation_list;
  std::uint64_t net_dropped = 0;
  std::uint64_t net_duplicated = 0;
  std::uint64_t net_held = 0;
  std::uint64_t injected_drops = 0;
  std::uint64_t injected_duplicates = 0;
  std::uint64_t injected_delays = 0;
  bool converged = false;
  std::string fault_log;
  // Two-tier ledger.
  std::uint64_t tentative_submitted = 0;
  std::uint64_t base_committed = 0;
  std::uint64_t base_rejected = 0;
  /// Deterministic metrics snapshot taken after the final drain — the
  /// full registry, not just the headline counters above.
  obs::MetricsSnapshot metrics;

  /// Order-sensitive digest over the final state and all counters above
  /// (violation details and the textual log excluded).
  std::uint64_t Fingerprint() const;

  std::string ToString() const;
};

/// Runs one complete chaos experiment:
///   1. arm the fault injector (plan) and the invariant checker;
///   2. drive the workload for the configured window;
///   3. heal every fault, drain all queues, run scheme anti-entropy;
///   4. run the final invariant check (convergence / delusion / ledger).
/// All violations are acknowledged into the outcome (the caller decides
/// whether they are fatal), so RunChaos itself never aborts.
ChaosOutcome RunChaos(const ChaosConfig& config);

/// A named, reusable fault plan shape, parameterized by cluster size
/// and run length.
struct ChaosScenario {
  const char* name;
  const char* description;
  fault::FaultPlan (*plan)(std::uint32_t num_nodes, SimTime horizon);
};

/// The scenario catalog: partition-during-commit, master crash
/// mid-propagation, flaky network (drop+dup+delay), duplicate-delivery
/// reconnect storm, and the acceptance-criterion crash+partition+drop
/// combo.
const std::vector<ChaosScenario>& ChaosCatalog();

/// Catalog lookup by name; aborts on unknown names (test-time misuse).
const ChaosScenario& FindScenario(const std::string& name);

}  // namespace tdr::workload

#endif  // TDR_FAULT_CHAOS_SCENARIOS_H_
