#include "fault/chaos_scenarios.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "core/acceptance.h"
#include "core/two_tier.h"
#include "fault/fault_injector.h"
#include "obs/chrome_trace.h"
#include "obs/run_report.h"
#include "obs/timeseries.h"
#include "replication/driver.h"
#include "replication/eager.h"
#include "replication/lazy_group.h"
#include "replication/lazy_master.h"
#include "replication/ownership.h"
#include "replication/quorum.h"
#include "util/logging.h"

namespace tdr::workload {

namespace {

std::uint64_t FnvMix(std::uint64_t h, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (v >> shift) & 0xffULL;
    h *= 1099511628211ULL;
  }
  return h;
}

std::vector<NodeId> AllNodeIds(std::uint32_t n) {
  std::vector<NodeId> ids(n);
  for (std::uint32_t i = 0; i < n; ++i) ids[i] = i;
  return ids;
}

/// A scheme instance plus the typed side-handles the runner needs.
struct SchemeBundle {
  std::unique_ptr<Ownership> ownership;
  std::unique_ptr<ReplicationScheme> scheme;
  LazyMasterScheme* lazy_master = nullptr;
  LazyGroupScheme* lazy_group = nullptr;
  QuorumEagerScheme* quorum = nullptr;
};

SchemeBundle MakeScheme(Cluster* cluster, fault::SchemeClass cls) {
  SchemeBundle b;
  switch (cls) {
    case fault::SchemeClass::kEagerGroup:
      b.scheme = std::make_unique<EagerGroupScheme>(cluster);
      break;
    case fault::SchemeClass::kEagerMaster:
      b.ownership = std::make_unique<Ownership>(Ownership::RoundRobin(
          cluster->options().db_size, AllNodeIds(cluster->size())));
      b.scheme =
          std::make_unique<EagerMasterScheme>(cluster, b.ownership.get());
      break;
    case fault::SchemeClass::kQuorum: {
      auto q = std::make_unique<QuorumEagerScheme>(cluster);
      b.quorum = q.get();
      b.scheme = std::move(q);
      break;
    }
    case fault::SchemeClass::kLazyGroup: {
      auto g = std::make_unique<LazyGroupScheme>(cluster);
      b.lazy_group = g.get();
      b.scheme = std::move(g);
      break;
    }
    case fault::SchemeClass::kLazyMaster: {
      b.ownership = std::make_unique<Ownership>(Ownership::RoundRobin(
          cluster->options().db_size, AllNodeIds(cluster->size())));
      LazyMasterScheme::Options opts;
      // Under faults the refresh stream is lossy (crashes, drops); the
      // anti-entropy catch-up is what restores the paper's convergence
      // guarantee afterwards.
      opts.reconnect_catch_up = true;
      auto m = std::make_unique<LazyMasterScheme>(cluster, b.ownership.get(),
                                                  opts);
      b.lazy_master = m.get();
      b.scheme = std::move(m);
      break;
    }
    case fault::SchemeClass::kTwoTier:
      std::abort();  // handled by RunChaosTwoTier
  }
  return b;
}

obs::Json InvariantSummaryJson(const ChaosOutcome& out) {
  obs::Json inv = obs::Json::Object();
  inv.Set("violations", out.violations);
  inv.Set("delusion_slots", out.delusion_slots);
  inv.Set("converged", out.converged);
  obs::Json list = obs::Json::Array();
  for (const fault::Violation& v : out.violation_list) {
    obs::Json item = obs::Json::Object();
    item.Set("invariant", v.invariant);
    item.Set("detail", v.detail);
    item.Set("at_seconds", v.at.seconds());
    list.Push(std::move(item));
  }
  inv.Set("violation_list", std::move(list));
  return inv;
}

/// Writes the trace (if requested) and the RunReport (if requested) for
/// a finished chaos run. Shared by the cluster and two-tier runners.
void EmitChaosArtifacts(const ChaosConfig& cfg, const ChaosOutcome& out,
                        const obs::ChromeTraceWriter& trace,
                        const obs::TimeSeries& series,
                        const obs::MetricsRegistry& registry) {
  if (!cfg.trace_path.empty() && !trace.WriteFile(cfg.trace_path)) {
    std::fprintf(stderr, "chaos: cannot write trace to %s\n",
                 cfg.trace_path.c_str());
  }
  if (cfg.report_path.empty()) return;
  obs::RunReport report("chaos");
  report.SetConfig("scheme", fault::SchemeClassName(cfg.scheme))
      .SetConfig("num_nodes", static_cast<std::uint64_t>(cfg.num_nodes))
      .SetConfig("db_size", cfg.db_size)
      .SetConfig("tps_per_node", cfg.tps_per_node)
      .SetConfig("seconds", cfg.seconds)
      .SetConfig("seed", cfg.seed)
      .SetConfig("action_time_us",
                 static_cast<std::int64_t>(cfg.action_time.micros()));
  obs::Json row = obs::Json::Object();
  row.Set("submitted", out.submitted);
  row.Set("committed", out.committed);
  row.Set("deadlocks", out.deadlocks);
  row.Set("unavailable", out.unavailable);
  row.Set("reconciliations", out.reconciliations);
  row.Set("catch_up_objects", out.catch_up_objects);
  row.Set("converged", out.converged);
  report.AddRow(std::move(row));
  report.SetMetrics(out.metrics);
  report.SetSeries(series);
  report.SetInvariants(InvariantSummaryJson(out));
  report.SetProfile(registry);
  if (!report.WriteFile(cfg.report_path)) {
    std::fprintf(stderr, "chaos: cannot write report to %s\n",
                 cfg.report_path.c_str());
  }
}

void FillNetAndFaultStats(const fault::FaultInjector& injector,
                          ChaosOutcome* out) {
  out->injected_drops = injector.injected_drops();
  out->injected_duplicates = injector.injected_duplicates();
  out->injected_delays = injector.injected_delays();
  out->fault_log = injector.AppliedLogString();
}

ChaosOutcome RunChaosCluster(const ChaosConfig& cfg) {
  Cluster::Options copts;
  copts.num_nodes = cfg.num_nodes;
  copts.db_size = cfg.db_size;
  copts.action_time = cfg.action_time;
  copts.seed = cfg.seed;
  Cluster cluster(copts);

  SchemeBundle bundle = MakeScheme(&cluster, cfg.scheme);

  // Dedicated RNG stream: fault draws never perturb workload draws.
  fault::FaultInjector injector(&cluster, cfg.plan, Rng(cfg.seed, 777));
  fault::InvariantChecker::Options chk;
  chk.scheme = cfg.scheme;
  chk.ownership = bundle.ownership.get();
  chk.quorum = bundle.quorum;
  chk.check_interval = cfg.check_interval;
  chk.trace_fn = [&injector]() { return injector.AppliedLogString(); };
  fault::InvariantChecker checker(&cluster, chk);

  obs::ChromeTraceWriter trace;
  if (!cfg.trace_path.empty()) {
    cluster.executor().set_trace_sink(&trace);
    if (bundle.lazy_group != nullptr) bundle.lazy_group->set_trace_sink(&trace);
    if (bundle.lazy_master != nullptr) {
      bundle.lazy_master->set_trace_sink(&trace);
    }
    injector.set_observer([&trace](SimTime t, const std::string& entry) {
      trace.OnFault(t, entry);
    });
  }
  obs::TimeSeriesRecorder recorder(&cluster.sim(), &cluster.metrics());
  if (!cfg.report_path.empty()) {
    recorder.TrackRate("txn.committed");
    recorder.TrackRate("replica.applied");
    recorder.TrackRate("net.delivered");
    recorder.Track("invariant.violations");
    recorder.Start();
  }

  injector.Arm();
  checker.Arm();

  WorkloadDriver::Options dopts;
  dopts.tps_per_node = cfg.tps_per_node;
  dopts.seconds = cfg.seconds;
  WorkloadDriver driver(&cluster, bundle.scheme.get(), dopts);
  WorkloadDriver::Outcome window = driver.Run();
  recorder.Stop();

  // Heal the world, drain every queue, then run the schemes'
  // anti-entropy so convergence checks see steady state.
  checker.Disarm();
  injector.Disarm();
  injector.HealAll();
  cluster.sim().Run();
  if (bundle.lazy_master != nullptr) bundle.lazy_master->CatchUpAll();
  if (bundle.quorum != nullptr) bundle.quorum->CatchUpAll();
  cluster.sim().Run();
  checker.CheckFinal();

  ChaosOutcome out;
  out.submitted = window.submitted;
  out.committed = window.committed;
  out.deadlocks = window.deadlocks;
  out.unavailable = window.unavailable;
  out.reconciliations = bundle.lazy_group != nullptr
                            ? bundle.lazy_group->reconciliations()
                            : cluster.metrics().Get("replica.conflicts");
  out.delusion_slots = checker.delusion_slots();
  out.catch_up_objects =
      bundle.lazy_master != nullptr  ? bundle.lazy_master->catch_up_objects()
      : bundle.quorum != nullptr     ? bundle.quorum->catch_up_objects()
                                     : 0;
  out.violations = checker.violations_total();
  out.violation_list = checker.TakeViolations();
  out.net_dropped = cluster.net().messages_dropped();
  out.net_duplicated = cluster.net().messages_duplicated();
  out.net_held = cluster.net().messages_held();
  out.converged = cluster.Converged();
  out.state_digest = cluster.StateDigest();
  FillNetAndFaultStats(injector, &out);
  out.metrics = cluster.metrics().Snapshot();
  EmitChaosArtifacts(cfg, out, trace, recorder.Series(), cluster.metrics());
  return out;
}

ChaosOutcome RunChaosTwoTier(const ChaosConfig& cfg) {
  TwoTierSystem::Options topts;
  topts.num_base = cfg.num_nodes;
  topts.num_mobile = cfg.num_mobile;
  topts.db_size = cfg.db_size;
  topts.action_time = cfg.action_time;
  topts.seed = cfg.seed;
  TwoTierSystem sys(topts);
  Cluster& cluster = sys.cluster();

  fault::FaultInjector injector(&cluster, cfg.plan, Rng(cfg.seed, 777));
  fault::InvariantChecker::Options chk;
  chk.scheme = fault::SchemeClass::kTwoTier;
  chk.ownership = &sys.ownership();
  chk.two_tier = &sys;
  chk.check_interval = cfg.check_interval;
  chk.trace_fn = [&injector]() { return injector.AppliedLogString(); };
  fault::InvariantChecker checker(&cluster, chk);

  obs::ChromeTraceWriter trace;
  if (!cfg.trace_path.empty()) {
    cluster.executor().set_trace_sink(&trace);
    sys.lazy_master().set_trace_sink(&trace);
    injector.set_observer([&trace](SimTime t, const std::string& entry) {
      trace.OnFault(t, entry);
    });
  }
  obs::TimeSeriesRecorder recorder(&cluster.sim(), &cluster.metrics());
  if (!cfg.report_path.empty()) {
    recorder.TrackRate("txn.committed");
    recorder.TrackRate("replica.applied");
    recorder.TrackRate("net.delivered");
    recorder.Track("invariant.violations");
    recorder.Start();
  }

  injector.Arm();
  checker.Arm();

  Rng rng(cfg.seed, 555);
  ProgramGenerator::Options gopts;
  gopts.db_size = cfg.db_size;
  gopts.actions = 2;
  ProgramGenerator gen(gopts);

  ChaosOutcome out;

  // Base-tier workload: one arrival series per base node.
  std::vector<sim::EventId> base_series;
  std::vector<std::shared_ptr<Rng>> base_rngs;
  SimTime gap = SimTime::Seconds(
      cfg.tps_per_node > 0 ? 1.0 / cfg.tps_per_node : cfg.seconds);
  for (NodeId b = 0; b < sys.num_base(); ++b) {
    auto brng = std::make_shared<Rng>(rng.Fork());
    base_rngs.push_back(brng);
    base_series.push_back(
        sys.sim().RepeatEvery(gap, [&sys, &gen, &out, b, brng]() {
          Program p = gen.Next(*brng);
          if (sys.cluster().node(b)->crashed()) return;
          ++out.submitted;
          sys.SubmitBase(b, p, nullptr);
        }));
  }

  // Mobile workload: four disconnect/work/reconnect cycles across the
  // window; tentative transactions are submitted while disconnected and
  // reprocessed at the base on reconnect.
  constexpr int kCycles = 4;
  double cycle = cfg.seconds / kCycles;
  for (NodeId m : sys.MobileIds()) {
    auto mrng = std::make_shared<Rng>(rng.Fork());
    for (int c = 0; c < kCycles; ++c) {
      double t0 = c * cycle;
      sys.sim().ScheduleAt(SimTime::Seconds(t0 + 0.02 * cycle),
                           [&sys, m]() { sys.Disconnect(m); });
      for (std::uint32_t k = 0; k < cfg.tentative_per_cycle; ++k) {
        double frac = 0.1 + 0.6 * (k + 1.0) /
                                (cfg.tentative_per_cycle + 1.0);
        sys.sim().ScheduleAt(
            SimTime::Seconds(t0 + frac * cycle),
            [&sys, &gen, m, mrng]() {
              Program p = gen.Next(*mrng);
              if (sys.cluster().node(m)->crashed()) return;
              Status s = sys.SubmitTentative(m, std::move(p), AcceptAlways(),
                                             nullptr, nullptr);
              assert(s.ok());
              (void)s;
            });
      }
      sys.sim().ScheduleAt(SimTime::Seconds(t0 + 0.85 * cycle),
                           [&sys, m]() { sys.Connect(m); });
    }
  }

  sys.sim().RunUntil(SimTime::Seconds(cfg.seconds));
  for (sim::EventId id : base_series) sys.sim().Cancel(id);
  recorder.Stop();

  checker.Disarm();
  injector.Disarm();
  injector.HealAll();
  sys.sim().Run();
  // Final drain: cycle each mobile so any reprocessing stalled by a
  // crashed host retries now that the world is healed.
  for (NodeId m : sys.MobileIds()) {
    sys.Disconnect(m);
    sys.Connect(m);
  }
  sys.sim().Run();
  sys.lazy_master().CatchUpAll();
  sys.sim().Run();
  checker.CheckFinal();

  out.committed = cluster.executor().committed();
  out.deadlocks = cluster.executor().deadlocked();
  out.unavailable = cluster.metrics().Get("scheme.unavailable");
  out.reconciliations = cluster.metrics().Get("replica.conflicts");
  out.delusion_slots = checker.delusion_slots();
  out.catch_up_objects = sys.lazy_master().catch_up_objects();
  out.violations = checker.violations_total();
  out.violation_list = checker.TakeViolations();
  out.net_dropped = cluster.net().messages_dropped();
  out.net_duplicated = cluster.net().messages_duplicated();
  out.net_held = cluster.net().messages_held();
  out.converged = sys.BaseTierConverged();
  out.state_digest = cluster.StateDigest();
  out.tentative_submitted = sys.tentative_submitted();
  out.base_committed = sys.base_committed();
  out.base_rejected = sys.base_rejected();
  FillNetAndFaultStats(injector, &out);
  out.metrics = cluster.metrics().Snapshot();
  EmitChaosArtifacts(cfg, out, trace, recorder.Series(), cluster.metrics());
  return out;
}

// --- Scenario catalog ------------------------------------------------

fault::FaultPlan PlanPartitionDuringCommit(std::uint32_t n, SimTime h) {
  std::vector<NodeId> group;
  for (NodeId i = 0; i < n / 2; ++i) group.push_back(i);
  fault::FaultPlan plan;
  plan.PartitionAt(SimTime::Seconds(h.seconds() * 0.25), "split",
                   std::move(group))
      .HealPartitionAt(SimTime::Seconds(h.seconds() * 0.60), "split");
  return plan;
}

fault::FaultPlan PlanMasterCrash(std::uint32_t n, SimTime h) {
  fault::FaultPlan plan;
  NodeId victim = n > 1 ? 1 : 0;
  plan.CrashAt(SimTime::Seconds(h.seconds() * 0.30), victim)
      .RestartAt(SimTime::Seconds(h.seconds() * 0.70), victim);
  return plan;
}

fault::FaultPlan PlanFlakyNetwork(std::uint32_t, SimTime) {
  fault::FaultPlan plan;
  fault::ChaosProfile chaos;
  chaos.drop_probability = 0.01;
  chaos.duplicate_probability = 0.01;
  chaos.delay_probability = 0.02;
  chaos.max_extra_delay = SimTime::Millis(50);
  plan.WithChaos(chaos);
  return plan;
}

fault::FaultPlan PlanDupStormReconnect(std::uint32_t, SimTime) {
  fault::FaultPlan plan;
  fault::ChaosProfile chaos;
  chaos.duplicate_probability = 0.05;
  chaos.delay_probability = 0.05;
  chaos.max_extra_delay = SimTime::Millis(20);
  plan.WithChaos(chaos);
  return plan;
}

fault::FaultPlan PlanCrashPartitionDrop(std::uint32_t n, SimTime h) {
  fault::FaultPlan plan;
  NodeId victim = n > 1 ? 1 : 0;
  std::vector<NodeId> group = {static_cast<NodeId>(n - 1)};
  fault::ChaosProfile chaos;
  chaos.drop_probability = 0.01;
  plan.CrashAt(SimTime::Seconds(h.seconds() * 0.20), victim)
      .RestartAt(SimTime::Seconds(h.seconds() * 0.55), victim)
      .PartitionAt(SimTime::Seconds(h.seconds() * 0.35), "wedge",
                   std::move(group))
      .HealPartitionAt(SimTime::Seconds(h.seconds() * 0.70), "wedge")
      .WithChaos(chaos);
  return plan;
}

}  // namespace

const std::vector<ChaosScenario>& ChaosCatalog() {
  static const std::vector<ChaosScenario> kCatalog = {
      {"partition-during-commit",
       "named partition splits the cluster mid-window, heals later",
       &PlanPartitionDuringCommit},
      {"master-crash",
       "node 1 crashes mid-propagation (volatile buffers lost), restarts "
       "with log recovery",
       &PlanMasterCrash},
      {"flaky-network",
       "always-on 1% drop + 1% duplicate + 2% delay spikes",
       &PlanFlakyNetwork},
      {"dup-storm-reconnect",
       "5% duplicate delivery + delay jitter (idempotence under redelivery)",
       &PlanDupStormReconnect},
      {"crash-partition-drop",
       "crash + one partition/heal cycle + 1% message drop (the acceptance "
       "scenario)",
       &PlanCrashPartitionDrop},
  };
  return kCatalog;
}

const ChaosScenario& FindScenario(const std::string& name) {
  for (const ChaosScenario& s : ChaosCatalog()) {
    if (name == s.name) return s;
  }
  std::fprintf(stderr, "unknown chaos scenario: %s\n", name.c_str());
  std::abort();
}

ChaosOutcome RunChaos(const ChaosConfig& config) {
  if (config.scheme == fault::SchemeClass::kTwoTier) {
    return RunChaosTwoTier(config);
  }
  return RunChaosCluster(config);
}

std::uint64_t ChaosOutcome::Fingerprint() const {
  std::uint64_t h = 1469598103934665603ULL;
  h = FnvMix(h, state_digest);
  h = FnvMix(h, submitted);
  h = FnvMix(h, committed);
  h = FnvMix(h, deadlocks);
  h = FnvMix(h, unavailable);
  h = FnvMix(h, reconciliations);
  h = FnvMix(h, delusion_slots);
  h = FnvMix(h, catch_up_objects);
  h = FnvMix(h, violations);
  h = FnvMix(h, net_dropped);
  h = FnvMix(h, net_duplicated);
  h = FnvMix(h, net_held);
  h = FnvMix(h, injected_drops);
  h = FnvMix(h, injected_duplicates);
  h = FnvMix(h, injected_delays);
  h = FnvMix(h, converged ? 1 : 0);
  h = FnvMix(h, tentative_submitted);
  h = FnvMix(h, base_committed);
  h = FnvMix(h, base_rejected);
  return h;
}

std::string ChaosOutcome::ToString() const {
  return StrPrintf(
      "ChaosOutcome{digest=%016llx submitted=%llu committed=%llu "
      "unavailable=%llu reconciliations=%llu delusion=%llu violations=%llu "
      "dropped=%llu dup=%llu held=%llu converged=%d}",
      (unsigned long long)state_digest, (unsigned long long)submitted,
      (unsigned long long)committed, (unsigned long long)unavailable,
      (unsigned long long)reconciliations, (unsigned long long)delusion_slots,
      (unsigned long long)violations, (unsigned long long)net_dropped,
      (unsigned long long)net_duplicated, (unsigned long long)net_held,
      converged ? 1 : 0);
}

}  // namespace tdr::workload
