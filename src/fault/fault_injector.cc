#include "fault/fault_injector.h"

#include <algorithm>
#include <cassert>

#include "util/logging.h"

namespace tdr::fault {

namespace {

std::pair<NodeId, NodeId> Ordered(NodeId a, NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

FaultInjector::FaultInjector(Cluster* cluster, FaultPlan plan, Rng rng)
    : cluster_(cluster), plan_(std::move(plan)), rng_(rng) {}

FaultInjector::~FaultInjector() { Disarm(); }

void FaultInjector::Arm() {
  if (armed_) return;
  armed_ = true;
  if (!plan_.chaos().empty()) {
    cluster_->net().set_interceptor(this);
    chaos_active_ = plan_.ChaosAlwaysOn();
  }
  for (const FaultAction& action : plan_.actions()) {
    scheduled_.push_back(cluster_->runtime().ScheduleAt(
        action.at, [this, &action]() { Apply(action); }));
  }
}

void FaultInjector::Disarm() {
  if (!armed_) return;
  armed_ = false;
  for (sim::EventId id : scheduled_) cluster_->runtime().Cancel(id);
  scheduled_.clear();
  chaos_active_ = false;
  if (cluster_->net().interceptor() == this) {
    cluster_->net().set_interceptor(nullptr);
  }
}

void FaultInjector::Apply(const FaultAction& action) {
  switch (action.kind) {
    case FaultAction::Kind::kCrash:
      Crash(action.a);
      break;
    case FaultAction::Kind::kRestart:
      Restart(action.a);
      break;
    case FaultAction::Kind::kCutLink:
      CutLink(action.a, action.b);
      break;
    case FaultAction::Kind::kHealLink:
      HealLink(action.a, action.b);
      break;
    case FaultAction::Kind::kPartition:
      StartPartition(action.name, action.group);
      break;
    case FaultAction::Kind::kHealPartition:
      HealPartition(action.name);
      break;
    case FaultAction::Kind::kChaosOn:
      SetChaosActive(true);
      break;
    case FaultAction::Kind::kChaosOff:
      SetChaosActive(false);
      break;
  }
}

void FaultInjector::Separate(NodeId a, NodeId b, int delta) {
  auto key = Ordered(a, b);
  int& count = separation_[key];
  int before = count;
  count += delta;
  assert(count >= 0);
  if (before == 0 && count > 0) {
    cluster_->net().SetLinkUp(key.first, key.second, false);
  } else if (before > 0 && count == 0) {
    separation_.erase(key);
    cluster_->net().SetLinkUp(key.first, key.second, true);
  }
}

void FaultInjector::Crash(NodeId node) {
  if (cluster_->node(node)->crashed()) return;
  // Single seam: the RecoveryManager dispatches on the cluster's
  // durability mode (legacy pass-through under kOff, WAL crash model
  // otherwise), so fault plans run unchanged against any mode.
  cluster_->recovery().Crash(node);
  crashed_by_us_.push_back(node);
  Log(StrPrintf("crash node=%u", node));
  cluster_->metrics().Increment("fault.crashes");
}

void FaultInjector::Restart(NodeId node) {
  if (!cluster_->node(node)->crashed()) return;
  cluster_->recovery().Restart(node);
  crashed_by_us_.erase(
      std::remove(crashed_by_us_.begin(), crashed_by_us_.end(), node),
      crashed_by_us_.end());
  Log(StrPrintf("restart node=%u", node));
  cluster_->metrics().Increment("fault.restarts");
}

void FaultInjector::CutLink(NodeId a, NodeId b) {
  if (a == b) return;
  Separate(a, b, +1);
  Log(StrPrintf("cut-link (%u,%u)", a, b));
  cluster_->metrics().Increment("fault.link_cuts");
}

void FaultInjector::HealLink(NodeId a, NodeId b) {
  if (a == b) return;
  auto it = separation_.find(Ordered(a, b));
  if (it == separation_.end()) return;
  Separate(a, b, -1);
  Log(StrPrintf("heal-link (%u,%u)", a, b));
  cluster_->metrics().Increment("fault.link_heals");
}

void FaultInjector::StartPartition(const std::string& name,
                                   std::vector<NodeId> group) {
  if (active_partitions_.count(name) != 0) return;
  // Sever every link between the group and its complement.
  std::vector<bool> in_group(cluster_->size(), false);
  for (NodeId id : group) in_group[id] = true;
  for (NodeId a = 0; a < cluster_->size(); ++a) {
    if (!in_group[a]) continue;
    for (NodeId b = 0; b < cluster_->size(); ++b) {
      if (in_group[b]) continue;
      Separate(a, b, +1);
    }
  }
  Log(StrPrintf("partition \"%s\" (%zu nodes split off)", name.c_str(),
                group.size()));
  active_partitions_[name] = std::move(group);
  cluster_->metrics().Increment("fault.partitions");
}

void FaultInjector::HealPartition(const std::string& name) {
  auto it = active_partitions_.find(name);
  if (it == active_partitions_.end()) return;
  std::vector<bool> in_group(cluster_->size(), false);
  for (NodeId id : it->second) in_group[id] = true;
  for (NodeId a = 0; a < cluster_->size(); ++a) {
    if (!in_group[a]) continue;
    for (NodeId b = 0; b < cluster_->size(); ++b) {
      if (in_group[b]) continue;
      Separate(a, b, -1);
    }
  }
  // Log before erasing: `name` may alias the map key being erased
  // (HealAll passes `active_partitions_.begin()->first`).
  Log(StrPrintf("heal-partition \"%s\"", name.c_str()));
  active_partitions_.erase(it);
  cluster_->metrics().Increment("fault.partition_heals");
}

void FaultInjector::SetChaosActive(bool active) {
  if (chaos_active_ == active) return;
  chaos_active_ = active;
  Log(active ? "chaos-on" : "chaos-off");
}

void FaultInjector::HealAll() {
  SetChaosActive(false);
  // Heal named partitions first (deterministic map order), then any
  // leftover manual cuts.
  while (!active_partitions_.empty()) {
    HealPartition(active_partitions_.begin()->first);
  }
  while (!separation_.empty()) {
    auto key = separation_.begin()->first;
    separation_.begin()->second = 1;  // collapse nesting: one heal closes it
    Separate(key.first, key.second, -1);
  }
  // Restart crashed nodes in id order for determinism.
  std::vector<NodeId> crashed = crashed_by_us_;
  std::sort(crashed.begin(), crashed.end());
  for (NodeId node : crashed) Restart(node);
  Log("heal-all");
}

Network::InterceptVerdict FaultInjector::OnTransmit(NodeId from, NodeId to) {
  Network::InterceptVerdict v;
  if (!chaos_active_) return v;
  const ChaosProfile& chaos = plan_.chaos();
  // Fixed draw order (drop, duplicate, delay) keeps the stream aligned
  // with the deterministic message order regardless of outcomes.
  bool drop = rng_.Bernoulli(chaos.drop_probability);
  bool dup = rng_.Bernoulli(chaos.duplicate_probability);
  bool delay = rng_.Bernoulli(chaos.delay_probability);
  if (drop) {
    ++injected_drops_;
    cluster_->metrics().Increment("fault.injected_drops");
    v.drop = true;
    return v;
  }
  if (dup) {
    ++injected_duplicates_;
    cluster_->metrics().Increment("fault.injected_duplicates");
    v.copies = 2;
  }
  if (delay && chaos.max_extra_delay > SimTime::Zero()) {
    ++injected_delays_;
    cluster_->metrics().Increment("fault.injected_delays");
    v.extra_delay = SimTime::Micros(
        1 + rng_.UniformInt(
                static_cast<std::uint64_t>(chaos.max_extra_delay.micros())));
  }
  return v;
}

void FaultInjector::Log(std::string entry) {
  if (observer_) observer_(cluster_->runtime().Now(), entry);
  applied_log_.push_back(
      StrPrintf("[t=%.6fs] ", cluster_->runtime().Now().seconds()) +
      std::move(entry));
}

std::string FaultInjector::AppliedLogString() const {
  std::string s;
  for (const std::string& line : applied_log_) {
    if (!s.empty()) s += "\n";
    s += line;
  }
  return s;
}

}  // namespace tdr::fault
