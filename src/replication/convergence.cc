#include "replication/convergence.h"

#include <algorithm>
#include <cassert>

namespace tdr {

ReconciliationRule TimePriorityRule() {
  return [](const ConflictContext& ctx) {
    return ctx.a->ts >= ctx.b->ts ? *ctx.a : *ctx.b;
  };
}

ReconciliationRule SitePriorityRule() {
  return [](const ConflictContext& ctx) {
    return ctx.node_a <= ctx.node_b ? *ctx.a : *ctx.b;
  };
}

ReconciliationRule ValuePriorityRule() {
  return [](const ConflictContext& ctx) {
    return ctx.a->value.AsScalar() >= ctx.b->value.AsScalar() ? *ctx.a
                                                              : *ctx.b;
  };
}

ReconciliationRule EarliestTimestampRule() {
  return [](const ConflictContext& ctx) {
    return ctx.a->ts <= ctx.b->ts ? *ctx.a : *ctx.b;
  };
}

ReconciliationRule PriorityGroupRule(std::map<NodeId, int> rank) {
  return [rank = std::move(rank)](const ConflictContext& ctx) {
    auto rank_of = [&rank](NodeId node) {
      auto it = rank.find(node);
      return it == rank.end() ? INT32_MAX : it->second;
    };
    int ra = rank_of(ctx.node_a);
    int rb = rank_of(ctx.node_b);
    if (ra != rb) return ra < rb ? *ctx.a : *ctx.b;
    return ctx.a->ts >= ctx.b->ts ? *ctx.a : *ctx.b;
  };
}

ReconciliationRule MinimumValueRule() {
  return [](const ConflictContext& ctx) {
    return ctx.a->value.AsScalar() <= ctx.b->value.AsScalar() ? *ctx.a
                                                              : *ctx.b;
  };
}

ReconciliationRule AverageValueRule() {
  return [](const ConflictContext& ctx) {
    StoredObject merged = ctx.a->ts >= ctx.b->ts ? *ctx.a : *ctx.b;
    std::int64_t a = ctx.a->value.AsScalar();
    std::int64_t b = ctx.b->value.AsScalar();
    merged.value = Value(a + (b - a) / 2);
    return merged;
  };
}

ReconciliationRule DiscardRule() {
  return [](const ConflictContext& ctx) { return *ctx.a; };
}

ReconciliationRule OverwriteRule() {
  return [](const ConflictContext& ctx) { return *ctx.b; };
}

ReconciliationRule ListMergeRule() {
  return [](const ConflictContext& ctx) {
    StoredObject merged = ctx.a->ts >= ctx.b->ts ? *ctx.a : *ctx.b;
    if (ctx.a->value.is_list() || ctx.b->value.is_list()) {
      Value combined = ctx.a->value;
      for (std::int64_t item : ctx.b->value.AsList()) {
        combined.Append(item);
      }
      merged.value = std::move(combined);
    } else {
      merged.value =
          Value(ctx.a->value.AsScalar() + ctx.b->value.AsScalar());
    }
    return merged;
  };
}

ReconciliationRule AdditiveMergeRule() {
  return [](const ConflictContext& ctx) {
    // Sums the two concurrent scalar versions. Exact when the common
    // ancestor value is zero (each side's value IS its accumulated
    // increments); for nonzero ancestors the op-based gossip path is the
    // correct commutative mechanism. Takes the newer timestamp.
    StoredObject merged = ctx.a->ts >= ctx.b->ts ? *ctx.a : *ctx.b;
    merged.value =
        Value(ctx.a->value.AsScalar() + ctx.b->value.AsScalar());
    return merged;
  };
}

ReconciliationRule RuleByName(std::string_view name) {
  if (name == "additive") return AdditiveMergeRule();
  if (name == "average") return AverageValueRule();
  if (name == "discard") return DiscardRule();
  if (name == "earliest-timestamp") return EarliestTimestampRule();
  if (name == "latest-timestamp") return TimePriorityRule();
  if (name == "list-merge") return ListMergeRule();
  if (name == "maximum") return ValuePriorityRule();
  if (name == "minimum") return MinimumValueRule();
  if (name == "overwrite") return OverwriteRule();
  if (name == "priority-group") return PriorityGroupRule({});
  if (name == "site-priority") return SitePriorityRule();
  if (name == "user-function") {
    // Template slot: "users can program their own reconciliation rules".
    return TimePriorityRule();
  }
  return nullptr;
}

std::vector<std::string> RuleCatalogue() {
  return {"additive",           "average",  "discard",
          "earliest-timestamp", "latest-timestamp", "list-merge",
          "maximum",            "minimum",  "overwrite",
          "priority-group",     "site-priority", "user-function"};
}

GossipReplica::GossipReplica(NodeId id, std::uint64_t db_size)
    : id_(id), store_(db_size), clock_(id) {}

Timestamp GossipReplica::NextTs() { return clock_.Tick(); }

void GossipReplica::LocalReplace(ObjectId oid, Value value) {
  StoredObject& obj = store_.GetMutable(oid);
  obj.value = std::move(value);
  obj.ts = NextTs();
  obj.vv.Increment(id_);
}

void GossipReplica::LocalReplaceAdd(ObjectId oid, std::int64_t delta) {
  const StoredObject& cur = store_.GetUnchecked(oid);
  LocalReplace(oid, Value(cur.value.AsScalar() + delta));
}

void GossipReplica::LocalDelta(ObjectId oid, std::int64_t delta) {
  StoredObject& obj = store_.GetMutable(oid);
  obj.value.SetScalar(obj.value.AsScalar() + delta);
  obj.ts = NextTs();
  LoggedOp op;
  op.kind = LoggedOp::Kind::kDelta;
  op.oid = oid;
  op.arg = delta;
  op.ts = obj.ts;
  op.origin = id_;
  op.seq = next_seq_++;
  delivered_seq_[id_] = op.seq;
  op_log_.push_back(op);
}

void GossipReplica::LocalAppend(ObjectId oid, std::int64_t item) {
  StoredObject& obj = store_.GetMutable(oid);
  obj.value.Append(item);
  obj.ts = NextTs();
  LoggedOp op;
  op.kind = LoggedOp::Kind::kAppend;
  op.oid = oid;
  op.arg = item;
  op.ts = obj.ts;
  op.origin = id_;
  op.seq = next_seq_++;
  delivered_seq_[id_] = op.seq;
  op_log_.push_back(op);
}

std::uint64_t GossipReplica::ExchangeState(GossipReplica* other,
                                           const ReconciliationRule& rule) {
  assert(store_.size() == other->store_.size());
  std::uint64_t conflicts = 0;
  for (ObjectId oid = 0; oid < store_.size(); ++oid) {
    StoredObject& mine = store_.GetMutable(oid);
    StoredObject& theirs = other->store_.GetMutable(oid);
    if (mine.value == theirs.value && mine.vv == theirs.vv) continue;
    if (mine.vv.Dominates(theirs.vv)) {
      theirs = mine;  // "the most recent update wins each pairwise
                      // exchange" — here, the causally dominant one
      continue;
    }
    if (theirs.vv.Dominates(mine.vv)) {
      mine = theirs;
      continue;
    }
    // Concurrent versions: a real update/update conflict. "Rejected
    // updates are reported" (Access); the rule picks the survivor.
    ++conflicts;
    ++conflicts_;
    ++other->conflicts_;
    ConflictContext ctx;
    ctx.oid = oid;
    ctx.node_a = id_;
    ctx.node_b = other->id_;
    ctx.a = &mine;
    ctx.b = &theirs;
    StoredObject winner = rule(ctx);
    winner.vv = mine.vv;
    winner.vv.Merge(theirs.vv);
    winner.ts = std::max(mine.ts, theirs.ts);
    mine = winner;
    theirs = winner;
  }
  clock_.Observe(other->clock_.Peek());
  other->clock_.Observe(clock_.Peek());
  return conflicts;
}

void GossipReplica::ApplyForeignOp(const LoggedOp& op) {
  StoredObject& obj = store_.GetMutable(op.oid);
  if (op.kind == LoggedOp::Kind::kDelta) {
    obj.value.SetScalar(obj.value.AsScalar() + op.arg);
  } else {
    obj.value.Append(op.arg);
  }
  obj.ts = std::max(obj.ts, op.ts);
  clock_.Observe(op.ts);
  op_log_.push_back(op);  // retained for transitive forwarding
}

std::uint64_t GossipReplica::ExchangeOps(GossipReplica* other) {
  std::uint64_t transferred = 0;
  auto pull = [&transferred](GossipReplica* dst, GossipReplica* src) {
    // Scan the source log for ops past the destination's per-origin
    // watermark. Logs are append-ordered per origin, so one pass with
    // watermark updates delivers each op exactly once.
    for (const LoggedOp& op : src->op_log_) {
      std::uint64_t& seen = dst->delivered_seq_[op.origin];
      if (op.seq <= seen) continue;
      // Ops from one origin appear in seq order, so no gap can form.
      assert(op.seq == seen + 1);
      seen = op.seq;
      dst->ApplyForeignOp(op);
      ++transferred;
    }
  };
  pull(this, other);
  pull(other, this);
  return transferred;
}

GossipCluster::GossipCluster(std::uint32_t replicas, std::uint64_t db_size) {
  replicas_.reserve(replicas);
  for (NodeId id = 0; id < replicas; ++id) {
    replicas_.push_back(std::make_unique<GossipReplica>(id, db_size));
  }
}

std::uint64_t GossipCluster::ConvergeState(const ReconciliationRule& rule) {
  std::uint64_t conflicts = 0;
  for (int round = 0; round < 64; ++round) {
    std::vector<std::uint64_t> before;
    before.reserve(replicas_.size());
    for (const auto& r : replicas_) before.push_back(r->store().Digest());
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      for (std::size_t j = i + 1; j < replicas_.size(); ++j) {
        conflicts += replicas_[i]->ExchangeState(replicas_[j].get(), rule);
      }
    }
    bool changed = false;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (replicas_[i]->store().Digest() != before[i]) {
        changed = true;
        break;
      }
    }
    if (!changed) return conflicts;
  }
  assert(false && "state exchange failed to converge");
  return conflicts;
}

std::uint64_t GossipCluster::ConvergeOps() {
  std::uint64_t total = 0;
  for (int round = 0; round < 64; ++round) {
    std::uint64_t transferred = 0;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      for (std::size_t j = i + 1; j < replicas_.size(); ++j) {
        transferred += replicas_[i]->ExchangeOps(replicas_[j].get());
      }
    }
    total += transferred;
    if (transferred == 0) return total;
  }
  assert(false && "op exchange failed to converge");
  return total;
}

bool GossipCluster::Converged() const {
  for (std::size_t i = 1; i < replicas_.size(); ++i) {
    if (!replicas_[0]->store().SameValuesAs(replicas_[i]->store())) {
      return false;
    }
  }
  return true;
}

}  // namespace tdr
