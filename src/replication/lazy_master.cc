#include "replication/lazy_master.h"

#include <cassert>
#include <cstddef>
#include <utility>

namespace tdr {

LazyMasterScheme::LazyMasterScheme(Cluster* cluster,
                                   const Ownership* ownership,
                                   Options options)
    : cluster_(cluster),
      ownership_(ownership),
      options_(options),
      applier_(&cluster->runtime(), &cluster->executor(),
               cluster->metrics_or_null()) {
  if (options_.batch.flush_window > SimTime::Zero() ||
      options_.batch.max_batch_updates > 0) {
    shipper_ = std::make_unique<BatchShipper>(
        &cluster_->runtime(), &cluster_->net(), cluster_->size(), name(),
        cluster_->metrics_or_null(), options_.batch,
        [this](const UpdateBatch& batch) {
          ApplyAt(cluster_->node(batch.dest), batch.updates);
        });
  }
  if (options_.reconnect_catch_up) {
    for (NodeId id = 0; id < cluster_->size(); ++id) {
      cluster_->net().OnReconnect(id, [this, id]() { CatchUpNode(id); });
    }
    cluster_->net().OnLinkRestored([this](NodeId a, NodeId b) {
      if (cluster_->node(a)->connected()) CatchUpNode(a);
      if (cluster_->node(b)->connected()) CatchUpNode(b);
    });
  }
}

void LazyMasterScheme::Submit(NodeId origin, const Program& program,
                              DoneCallback done) {
  SubmitWithPrecommit(origin, program, nullptr, std::move(done));
}

void LazyMasterScheme::SubmitWithPrecommit(NodeId origin,
                                           const Program& program,
                                           Executor::PrecommitHook precommit,
                                           DoneCallback done) {
  // The originating node and every touched object's master must be
  // reachable; otherwise the RPC to the owner cannot happen. Reachable
  // covers connectivity AND link partitions between origin and owner.
  bool reachable = cluster_->node(origin)->connected();
  if (reachable) {
    for (const Op& op : program.ops()) {
      if (!cluster_->net().Reachable(origin, ownership_->OwnerOf(op.oid))) {
        reachable = false;
        break;
      }
    }
  }
  if (!reachable) {
    cluster_->metrics().Increment("scheme.unavailable");
    TxnResult r;
    r.origin = origin;
    r.outcome = TxnOutcome::kUnavailable;
    r.start_time = cluster_->runtime().Now();
    r.end_time = r.start_time;
    if (done) done(r);
    return;
  }
  // Compile: every op runs at its object's master. This is the "send an
  // RPC to the node owning the object" model; the message costs are the
  // ones the paper ignores. Propagation hangs off the observer hook
  // rather than a wrapper around `done`, so submission allocates
  // nothing (beyond a caller-supplied precommit closure).
  std::vector<ExecStep>& steps = cluster_->executor().NewPlan();
  for (const Op& op : program.ops()) {
    steps.push_back(ExecStep{ownership_->OwnerOf(op.oid), op});
  }
  Executor::RunOptions opts;
  opts.action_time = cluster_->options().action_time;
  opts.record_updates = true;
  opts.precommit = std::move(precommit);
  opts.observer = this;
  cluster_->executor().RunPlan(origin, std::move(opts), std::move(done));
}

void LazyMasterScheme::OnTxnDone(const TxnResult& result) {
  if (result.outcome == TxnOutcome::kCommitted) Propagate(result);
}

void LazyMasterScheme::CatchUpNode(NodeId node) {
  Node* dest = cluster_->node(node);
  for (ObjectId oid = 0; oid < dest->store().size(); ++oid) {
    NodeId owner = ownership_->OwnerOf(oid);
    if (owner == node) continue;  // the master copy is authoritative
    if (!cluster_->net().Reachable(node, owner)) continue;
    const StoredObject& master =
        cluster_->node(owner)->store().GetUnchecked(oid);
    bool applied = false;
    Status s = dest->store().ApplyIfNewer(oid, master.value, master.ts,
                                          &applied);
    assert(s.ok());
    (void)s;
    if (applied) {
      ++catch_up_objects_;
      cluster_->metrics().Increment("lazy_master.catch_up_objects");
    }
  }
}

void LazyMasterScheme::CatchUpAll() {
  for (NodeId id = 0; id < cluster_->size(); ++id) {
    if (cluster_->node(id)->connected()) CatchUpNode(id);
  }
}

void LazyMasterScheme::Propagate(const TxnResult& result) {
  if (result.updates.empty()) return;
  // Group records by the master that installed them; each master then
  // broadcasts one slave-refresh transaction per other node. The
  // executor emits update records ordered by (executing node, oid), so
  // each master's records form one contiguous run — grouping is a scan,
  // not a map build, and visits masters in the same ascending order.
  const std::vector<UpdateRecord>& updates = result.updates;
  for (std::size_t i = 0; i < updates.size();) {
    const NodeId master = updates[i].origin;
    std::size_t j = i;
    while (j < updates.size() && updates[j].origin == master) ++j;
    for (NodeId dest = 0; dest < cluster_->size(); ++dest) {
      if (dest == master) continue;
      if (shipper_ != nullptr) {
        shipper_->Enqueue(master, dest, &updates[i], j - i);
        continue;
      }
      // Unbatched: one refresh message per destination, payload carried
      // in a pooled lease (read-only in the handler — duplicate delivery
      // may invoke it more than once).
      Node* dest_node = cluster_->node(dest);
      net::RecordBufferPool::Lease payload = record_pool_.Acquire();
      payload->assign(updates.begin() + static_cast<std::ptrdiff_t>(i),
                      updates.begin() + static_cast<std::ptrdiff_t>(j));
      cluster_->net().Send(
          master, dest,
          [this, dest_node, payload = std::move(payload)]() {
            ApplyAt(dest_node, *payload);
          });
    }
    i = j;
  }
}

void LazyMasterScheme::ApplyAt(Node* dest,
                               const std::vector<UpdateRecord>& records) {
  ReplicaApplier::Options aopts;
  aopts.action_time = cluster_->options().action_time;
  aopts.mode = ReplicaApplier::Mode::kNewerWins;
  aopts.retry_on_deadlock = options_.retry_replica_deadlocks;
  aopts.shards = &cluster_->shards();
  applier_.Apply(dest, records, aopts,
                 [this](const ReplicaApplier::Report& report) {
                   slave_applied_ += report.applied;
                   stale_ignored_ += report.stale;
                 });
}

void LazyMasterScheme::FlushAllBatches() {
  if (shipper_ != nullptr) shipper_->FlushAll();
}

}  // namespace tdr
