#ifndef TDR_REPLICATION_LAZY_GROUP_H_
#define TDR_REPLICATION_LAZY_GROUP_H_

#include <memory>

#include "net/update_batch.h"
#include "replication/batch_shipper.h"
#include "replication/cluster.h"
#include "replication/replica_applier.h"
#include "replication/scheme.h"

namespace tdr {

/// Lazy GROUP replication (§4, Figure 4): "any node to update any local
/// data. When the transaction commits, a transaction is sent to every
/// other node to apply the root transaction's updates."
///
/// The root transaction runs locally at the origin under ordinary
/// locking. At commit, one replica-update transaction per remote node
/// carries (OID, old timestamp, new value) tuples; each destination
/// applies the timestamp-match test and counts a RECONCILIATION when it
/// fails — the instability the paper quantifies in Eq. (14)/(18).
///
/// Disconnected origins simply queue their replica updates in the
/// network outbox ("the node accepts and applies transactions for a
/// day; then at night it connects and downloads them"), so the mobile
/// analysis of Eqs. (15)-(18) falls out of the same code path.
class LazyGroupScheme : public ReplicationScheme, private TxnObserver {
 public:
  struct Options {
    /// Retry replica-update transactions that become deadlock victims.
    bool retry_replica_deadlocks = true;
    /// If positive, committed updates are not shipped per transaction
    /// but accumulated in the node's out-log and flushed every
    /// `batch_interval` — how production async replication actually
    /// ships its stream. The model prices this directly: batching is a
    /// self-inflicted Disconnect_Time, so Eq. (18) predicts the
    /// reconciliation cost with Disconnect_Time := batch_interval (see
    /// the batching sweep in bench_mobile_disconnect).
    ///
    /// Superseded by the `batch` plane below for new work; kept because
    /// it models a different shape (node-wide log drain on a fixed
    /// period, no coalescing, no size cap).
    SimTime batch_interval = SimTime::Zero();
    /// Per-destination coalescing batch plane (BatchShipper). Engaged
    /// when flush_window or max_batch_updates is positive; replaces the
    /// one-message-per-commit-per-destination shipping with one
    /// UpdateBatch per stream per window, applied atomically per shard
    /// at the destination. Takes precedence over batch_interval.
    BatchShipper::Options batch{SimTime::Zero(), 0, true};
  };

  explicit LazyGroupScheme(Cluster* cluster)
      : LazyGroupScheme(cluster, Options()) {}
  LazyGroupScheme(Cluster* cluster, Options options);

  /// Cancels the periodic batch flushers (their callbacks capture this).
  ~LazyGroupScheme() override;

  std::string_view name() const override { return "lazy-group"; }
  bool eager() const override { return false; }
  bool group_ownership() const override { return true; }
  std::uint64_t TransactionsPerUserUpdate(
      std::uint32_t nodes) const override {
    return nodes;  // root + (N-1) replica-update transactions (Table 1)
  }

  void Submit(NodeId origin, const Program& program,
              DoneCallback done) override;

  /// With batching enabled: flushes one node's accumulated updates now
  /// (each flush ships one replica-update transaction per remote node).
  /// Called automatically every batch_interval; public for tests and
  /// for forcing a final flush at the end of a measurement window.
  void FlushBatches(NodeId origin);

  /// Flushes every node (end-of-run convenience). Drains both the
  /// legacy out-log batches and the BatchShipper streams.
  void FlushAllBatches();

  /// The coalescing batch plane; null when Options::batch is disabled.
  BatchShipper* batch_shipper() { return shipper_.get(); }

  /// Traces replica-update application (forwarded to the applier).
  void set_trace_sink(TraceSink* sink) { applier_.set_trace_sink(sink); }

  /// Reconciliations detected so far (timestamp-match failures across
  /// all replicas).
  std::uint64_t reconciliations() const { return reconciliations_; }
  /// Replica updates applied cleanly.
  std::uint64_t replica_applied() const { return replica_applied_; }

 private:
  /// Executor completion hook (set as RunOptions::observer on every
  /// root transaction): propagates committed updates. Runs before the
  /// caller's done callback, exactly where the old done-wrapper ran.
  void OnTxnDone(const TxnResult& result) override;
  void Propagate(const TxnResult& result);
  void Ship(NodeId origin, const std::vector<UpdateRecord>& records);
  void ApplyBatch(const UpdateBatch& batch);
  void ApplyAt(Node* dest, const std::vector<UpdateRecord>& records);

  Cluster* cluster_;
  Options options_;
  ReplicaApplier applier_;
  std::unique_ptr<BatchShipper> shipper_;
  /// Pooled payload buffers for unbatched shipping: each replica-update
  /// message captures a lease instead of an owned vector copy.
  net::RecordBufferPool record_pool_;
  std::vector<sim::EventId> flusher_series_;
  std::uint64_t reconciliations_ = 0;
  std::uint64_t replica_applied_ = 0;
};

}  // namespace tdr

#endif  // TDR_REPLICATION_LAZY_GROUP_H_
