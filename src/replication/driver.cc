#include "replication/driver.h"

#include "obs/profile.h"
#include "replication/lazy_group.h"
#include "util/logging.h"

namespace tdr {

namespace {

ProgramGenerator::Options WithDbSize(ProgramGenerator::Options o,
                                     std::uint64_t db_size) {
  o.db_size = db_size;
  return o;
}

}  // namespace

std::string WorkloadDriver::Outcome::ToString() const {
  return StrPrintf(
      "window=%.0fs submitted=%llu committed=%llu deadlocks=%llu "
      "waits=%llu reconciliations=%llu unavailable=%llu divergent=%llu",
      seconds, (unsigned long long)submitted, (unsigned long long)committed,
      (unsigned long long)deadlocks, (unsigned long long)waits,
      (unsigned long long)reconciliations, (unsigned long long)unavailable,
      (unsigned long long)divergent_slots);
}

WorkloadDriver::WorkloadDriver(Cluster* cluster, ReplicationScheme* scheme,
                               Options options)
    : cluster_(cluster),
      scheme_(scheme),
      options_(options),
      generator_(WithDbSize(options.workload, cluster->options().db_size)) {
  // Resolve every labeled handle once — metric resolution builds label
  // strings, and Run() is expected to stay allocation-free per window
  // (the E14 steady-state contract).
  for (NodeId origin = 0; origin < cluster_->size(); ++origin) {
    submitted_at_.push_back(cluster_->metrics().GetCounter(
        "driver.submitted", {{"node", std::to_string(origin)}}));
  }
  skipped_crashed_ = cluster_->metrics().GetCounter("driver.skipped_crashed");
  profile_event_loop_ = cluster_->metrics().GetProfile("profile.event_loop");
}

std::uint64_t WorkloadDriver::CurrentReconciliations() const {
  auto* lazy_group = dynamic_cast<LazyGroupScheme*>(scheme_);
  return lazy_group != nullptr
             ? lazy_group->reconciliations()
             : cluster_->metrics().Get("replica.conflicts");
}

WorkloadDriver::Baseline WorkloadDriver::Snapshot() const {
  Baseline b;
  b.committed = cluster_->executor().committed();
  b.deadlocks = cluster_->executor().deadlocked();
  b.waits = cluster_->metrics().Get("lock.waits");
  b.reconciliations = CurrentReconciliations();
  b.unavailable = cluster_->metrics().Get("scheme.unavailable");
  b.replica_deadlocks = cluster_->metrics().Get("replica.deadlocks");
  b.replica_applied = cluster_->metrics().Get("replica.applied");
  b.wait_timeouts = cluster_->executor().wait_timeouts();
  return b;
}

WorkloadDriver::Outcome WorkloadDriver::Run() {
  Baseline before = Snapshot();
  Outcome outcome;
  outcome.seconds = options_.seconds;

  Rng rng = cluster_->ForkRng();
  std::vector<std::unique_ptr<OpenLoopArrivals>> arrivals;
  for (NodeId origin = 0; origin < cluster_->size(); ++origin) {
    OpenLoopArrivals::Options aopts;
    aopts.tps = options_.tps_per_node;
    aopts.poisson = options_.poisson_arrivals;
    // On the thread backend each origin's arrivals (and the submission
    // chain they start) execute on that origin's worker thread.
    aopts.node_affinity = origin;
    auto gen_rng = std::make_shared<Rng>(rng.Fork());
    // Per-origin submission counter handles were resolved in the
    // constructor; bumping them is allocation-free on every arrival.
    obs::MetricsRegistry::Counter submitted_at = submitted_at_[origin];
    arrivals.push_back(std::make_unique<OpenLoopArrivals>(
        &cluster_->runtime(), aopts, rng.Fork(),
        [this, &outcome, origin, gen_rng, submitted_at]() mutable {
          if (cluster_->node(origin)->crashed()) {
            // A crashed node originates nothing; its arrival stream
            // still ticks (and consumes randomness) so the fault does
            // not perturb other nodes' workloads.
            skipped_crashed_.Increment();
            generator_.NextInto(*gen_rng, &program_scratch_);
            return;
          }
          ++outcome.submitted;
          submitted_at.Increment();
          generator_.NextInto(*gen_rng, &program_scratch_);
          scheme_->Submit(origin, program_scratch_, nullptr);
        }));
    arrivals.back()->Start();
  }
  SimTime horizon =
      cluster_->runtime().Now() + SimTime::Seconds(options_.seconds);
  {
    // Wall-clock cost of the whole event loop for this window — the
    // profile section of run reports (kProfile: never part of
    // deterministic snapshots).
    obs::ProfileScope scope(profile_event_loop_);
    cluster_->runtime().RunUntil(horizon);
  }
  for (auto& a : arrivals) a->Stop();

  Baseline after = Snapshot();
  outcome.committed = after.committed - before.committed;
  outcome.deadlocks = after.deadlocks - before.deadlocks;
  outcome.waits = after.waits - before.waits;
  outcome.reconciliations = after.reconciliations - before.reconciliations;
  outcome.unavailable = after.unavailable - before.unavailable;
  outcome.replica_deadlocks =
      after.replica_deadlocks - before.replica_deadlocks;
  outcome.replica_applied = after.replica_applied - before.replica_applied;
  outcome.wait_timeouts = after.wait_timeouts - before.wait_timeouts;
  outcome.divergent_slots = cluster_->DivergentSlots();
  return outcome;
}

}  // namespace tdr
