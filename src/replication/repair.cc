#include "replication/repair.h"

#include "util/logging.h"

namespace tdr {

std::vector<ObjectId> DivergenceRepair::FindDivergentObjects() const {
  std::vector<ObjectId> out;
  const std::uint64_t db_size = cluster_->options().db_size;
  for (ObjectId oid = 0; oid < db_size; ++oid) {
    const Value& reference =
        cluster_->node(0)->store().GetUnchecked(oid).value;
    for (NodeId n = 1; n < cluster_->size(); ++n) {
      if (cluster_->node(n)->store().GetUnchecked(oid).value != reference) {
        out.push_back(oid);
        break;
      }
    }
  }
  return out;
}

StoredObject DivergenceRepair::PickWinner(ObjectId oid,
                                          const ReconciliationRule& rule,
                                          NodeId* source) const {
  StoredObject winner = cluster_->node(0)->store().GetUnchecked(oid);
  NodeId winner_node = 0;
  // Each distinct VERSION enters the tournament once: several replicas
  // holding the same lost branch must not be folded in repeatedly (it
  // would double-count additive merges).
  std::vector<Value> seen = {winner.value};
  for (NodeId n = 1; n < cluster_->size(); ++n) {
    const StoredObject& challenger =
        cluster_->node(n)->store().GetUnchecked(oid);
    bool already = false;
    for (const Value& v : seen) {
      if (v == challenger.value) {
        already = true;
        break;
      }
    }
    if (already) continue;
    seen.push_back(challenger.value);
    ConflictContext ctx;
    ctx.oid = oid;
    ctx.node_a = winner_node;
    ctx.node_b = n;
    ctx.a = &winner;
    ctx.b = &challenger;
    StoredObject merged = rule(ctx);
    // Track provenance: if the merged value equals the challenger's the
    // challenger "won"; synthesized values (additive etc.) keep the
    // incumbent's label with a marker.
    if (merged.value == challenger.value) {
      winner_node = n;
    } else if (!(merged.value == winner.value)) {
      winner_node = kInvalidNodeId;  // synthesized by the rule
    }
    winner = std::move(merged);
  }
  if (source != nullptr) *source = winner_node;
  return winner;
}

DivergenceRepair::Report DivergenceRepair::Plan(
    const ReconciliationRule& rule) const {
  Report report;
  for (ObjectId oid : FindDivergentObjects()) {
    ++report.objects_diverged;
    ObjectReport obj;
    obj.oid = oid;
    // Count distinct values across replicas.
    std::vector<Value> seen;
    for (NodeId n = 0; n < cluster_->size(); ++n) {
      const Value& v = cluster_->node(n)->store().GetUnchecked(oid).value;
      bool found = false;
      for (const Value& s : seen) {
        if (s == v) {
          found = true;
          break;
        }
      }
      if (!found) seen.push_back(v);
    }
    obj.distinct_versions = static_cast<std::uint32_t>(seen.size());
    NodeId source = 0;
    StoredObject winner = PickWinner(oid, rule, &source);
    obj.winner = winner.value;
    obj.winner_source = source == kInvalidNodeId
                            ? "merged"
                            : StrPrintf("node %u", source);
    report.objects.push_back(std::move(obj));
  }
  return report;
}

DivergenceRepair::Report DivergenceRepair::Execute(
    const ReconciliationRule& rule) {
  Report report = Plan(rule);
  if (report.objects_diverged == 0) return report;
  // A repair timestamp newer than every existing one: pull the max of
  // all clocks AND the stored timestamps of the objects under repair
  // into node 0's clock before ticking.
  for (NodeId n = 0; n < cluster_->size(); ++n) {
    cluster_->node(0)->clock().Observe(cluster_->node(n)->clock().Peek());
    for (const ObjectReport& obj : report.objects) {
      cluster_->node(0)->clock().Observe(
          cluster_->node(n)->store().GetUnchecked(obj.oid).ts);
    }
  }
  for (const ObjectReport& obj : report.objects) {
    Timestamp repair_ts = cluster_->node(0)->clock().Tick();
    for (NodeId n = 0; n < cluster_->size(); ++n) {
      Node* node = cluster_->node(n);
      node->clock().Observe(repair_ts);
      const StoredObject& cur = node->store().GetUnchecked(obj.oid);
      if (cur.value == obj.winner && cur.ts == repair_ts) continue;
      Status s = node->store().Put(obj.oid, obj.winner, repair_ts);
      (void)s;
      ++report.replicas_patched;
    }
    cluster_->metrics().Increment("repair.objects");
  }
  return report;
}

}  // namespace tdr
