#include "replication/batch_shipper.h"

#include <utility>

namespace tdr {

BatchShipper::BatchShipper(runtime::Runtime* rt, Network* net,
                           std::uint32_t num_nodes, std::string_view stream,
                           obs::MetricsRegistry* metrics, Options options,
                           DeliverFn deliver)
    : sim_(rt),
      net_(net),
      num_nodes_(num_nodes),
      options_(options),
      deliver_(std::move(deliver)),
      streams_(static_cast<std::size_t>(num_nodes) * num_nodes) {
  // Builders and pooled batches exchange their buffers on every flush
  // (TakeInto swaps), so both sides are held at a common capacity floor:
  // the size cap plus one transaction's worth of overshoot (the cap is
  // tested after an Enqueue finishes appending), or a fixed working-set
  // floor for window-only streams. Without it, buffer capacities churn
  // through the pool and windows keep re-growing whichever buffer they
  // draw — a steady allocation trickle instead of a one-time ratchet.
  reserve_floor_ = options_.max_batch_updates > 0
                       ? options_.max_batch_updates + 32
                       : 160;
  for (Stream& s : streams_) s.builder.Reserve(reserve_floor_);
  if (metrics != nullptr) {
    std::vector<obs::Label> labels{{"stream", std::string(stream)}};
    m_batches_ = metrics->GetCounter("batch.shipped", labels);
    m_updates_ = metrics->GetCounter("batch.updates", labels);
    m_coalesced_ = metrics->GetCounter("batch.coalesced", labels);
    m_batch_size_ = metrics->GetHistogram("batch.size", labels);
    m_flush_delay_us_ = metrics->GetHistogram("batch.flush_delay_us", labels);
  }
}

BatchShipper::~BatchShipper() {
  for (Stream& s : streams_) {
    if (s.flush_event != sim::kInvalidEventId) sim_->Cancel(s.flush_event);
  }
}

void BatchShipper::Enqueue(NodeId origin, NodeId dest,
                           const std::vector<UpdateRecord>& records) {
  Enqueue(origin, dest, records.data(), records.size());
}

void BatchShipper::Enqueue(NodeId origin, NodeId dest,
                           const UpdateRecord* records, std::size_t count) {
  if (count == 0 || origin == dest) return;
  Stream& s = StreamOf(origin, dest);
  bool was_empty = s.builder.empty();
  for (std::size_t i = 0; i < count; ++i) {
    s.builder.Add(records[i], options_.coalesce);
  }
  if (was_empty) {
    s.opened = sim_->Now();
    if (options_.flush_window > SimTime::Zero()) {
      // The flush reads the ORIGIN's stream state: tag it so the thread
      // backend runs it on the origin's worker.
      s.flush_event = sim_->ScheduleAfterNode(
          origin, options_.flush_window,
          [this, origin, dest] { Flush(origin, dest); });
    }
  }
  if (options_.max_batch_updates > 0 &&
      s.builder.size() >= options_.max_batch_updates) {
    Flush(origin, dest);
  }
}

void BatchShipper::Flush(NodeId origin, NodeId dest) {
  Stream& s = StreamOf(origin, dest);
  if (s.flush_event != sim::kInvalidEventId) {
    // No-op when called from inside the window event itself.
    sim_->Cancel(s.flush_event);
    s.flush_event = sim::kInvalidEventId;
  }
  if (s.builder.empty()) return;
  // The batch rides the network as a pooled lease: released (vector
  // capacity retained) when the message record is delivered or
  // dropped. The deliver handler may run more than once (duplicate
  // delivery), so it reads the lease without consuming it.
  net::SharedPool<UpdateBatch>::Lease batch = batch_pool_.Acquire();
  batch->updates.reserve(reserve_floor_);  // swap hands this to the builder
  s.builder.TakeInto(origin, dest, s.next_seq++, s.opened, &*batch);
  ++batches_shipped_;
  updates_shipped_ += batch->size();
  updates_coalesced_ += batch->coalesced;
  m_batches_.Increment();
  m_updates_.Increment(batch->size());
  m_coalesced_.Increment(batch->coalesced);
  m_batch_size_.Record(batch->size());
  m_flush_delay_us_.Record(
      static_cast<std::uint64_t>((sim_->Now() - batch->opened).micros()));
  net_->Send(origin, dest,
             [this, batch = std::move(batch)] { deliver_(*batch); });
}

void BatchShipper::FlushFrom(NodeId origin) {
  for (NodeId dest = 0; dest < num_nodes_; ++dest) Flush(origin, dest);
}

void BatchShipper::FlushAll() {
  for (NodeId origin = 0; origin < num_nodes_; ++origin) FlushFrom(origin);
}

std::size_t BatchShipper::PendingUpdates() const {
  std::size_t pending = 0;
  for (const Stream& s : streams_) pending += s.builder.size();
  return pending;
}

}  // namespace tdr
