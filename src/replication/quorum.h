#ifndef TDR_REPLICATION_QUORUM_H_
#define TDR_REPLICATION_QUORUM_H_

#include <cstdint>
#include <vector>

#include "replication/cluster.h"
#include "replication/scheme.h"
#include "util/result.h"

namespace tdr {

/// Weighted-voting eager replication (Gifford, SOSP'79; Garcia-Molina &
/// Barbara, JACM'85 — both cited in §3): "For high availability, eager
/// replication systems allow updates among members of the quorum or
/// cluster. When a node joins the quorum, the quorum sends the new node
/// all replica updates since the node was disconnected."
///
/// Every replica holds a vote weight. A write commits eagerly at any set
/// of connected replicas holding at least `write_quorum` votes; a read
/// consults replicas holding at least `read_quorum` votes and takes the
/// newest version. With read_quorum + write_quorum > total votes, any
/// read quorum intersects any write quorum, so reads always see the
/// latest committed write even though some replicas are stale.
///
/// Rejoining nodes catch up automatically: the scheme hooks the
/// network's reconnect notification and refreshes every object the node
/// missed from the surviving quorum (newest-version copy).
class QuorumEagerScheme : public ReplicationScheme {
 public:
  struct Options {
    /// Vote weight per node; empty = one vote each.
    std::vector<std::uint32_t> votes;
    /// Votes a write set must muster; 0 = strict majority of all votes.
    std::uint32_t write_quorum = 0;
    /// Votes a read set must muster; 0 = total - write_quorum + 1 (the
    /// minimum that still guarantees intersection).
    std::uint32_t read_quorum = 0;
    bool record_updates = false;
  };

  explicit QuorumEagerScheme(Cluster* cluster)
      : QuorumEagerScheme(cluster, Options()) {}
  QuorumEagerScheme(Cluster* cluster, Options options);

  std::string_view name() const override { return "quorum-eager"; }
  bool eager() const override { return true; }
  bool group_ownership() const override { return true; }
  std::uint64_t TransactionsPerUserUpdate(std::uint32_t) const override {
    return 1;
  }

  /// Runs the transaction eagerly across the current write quorum.
  /// kUnavailable if the connected replicas (including the origin) hold
  /// fewer than write_quorum votes.
  void Submit(NodeId origin, const Program& program,
              DoneCallback done) override;

  /// Quorum read: consults connected replicas holding >= read_quorum
  /// votes and returns the newest version of `oid`. kUnavailable if the
  /// read quorum cannot be formed. (Omniscient view — ignores link
  /// partitions; use ReadLatestAt for the partition-aware read.)
  Result<StoredObject> ReadLatest(ObjectId oid) const;

  /// Partition-aware quorum read as issued from `reader`: only replicas
  /// reachable from the reader can contribute votes.
  Result<StoredObject> ReadLatestAt(NodeId reader, ObjectId oid) const;

  std::uint32_t total_votes() const { return total_votes_; }
  std::uint32_t write_quorum() const { return write_quorum_; }
  std::uint32_t read_quorum() const { return read_quorum_; }
  std::uint32_t VoteOf(NodeId id) const { return votes_[id]; }

  /// Votes currently held by connected replicas (ignores partitions).
  std::uint32_t ConnectedVotes() const;

  /// Votes held by replicas reachable from `origin` (including the
  /// origin itself when connected). Under a link partition this is the
  /// origin's side of the split, which is what quorum formation must
  /// use — a node cannot enlist replicas it cannot talk to.
  std::uint32_t ReachableVotes(NodeId origin) const;

  /// True if a write can currently commit somewhere (ignores partitions).
  bool WriteQuorumAvailable() const {
    return ConnectedVotes() >= write_quorum_;
  }

  /// True if a write submitted at `origin` can currently commit.
  bool WriteQuorumAvailableAt(NodeId origin) const {
    return ReachableVotes(origin) >= write_quorum_;
  }

  std::uint64_t catch_up_objects() const { return catch_up_objects_; }

  /// Anti-entropy sweep: every connected node refreshes from the newest
  /// reachable version of each object. With all links healed this fully
  /// converges the cluster (quorum writes only touch quorum members, so
  /// replicas outside recent write sets are legitimately stale until
  /// they catch up).
  void CatchUpAll();

 private:
  /// Refreshes every stale object of a rejoining node from the newest
  /// reachable replica.
  void CatchUp(NodeId rejoined);

  Cluster* cluster_;
  Options options_;
  std::vector<std::uint32_t> votes_;
  std::uint32_t total_votes_ = 0;
  std::uint32_t write_quorum_ = 0;
  std::uint32_t read_quorum_ = 0;
  std::uint64_t catch_up_objects_ = 0;
  /// Submit's write-set scratch (reused per call, never live across
  /// reentry — Submit does not call itself).
  std::vector<NodeId> members_scratch_;
};

}  // namespace tdr

#endif  // TDR_REPLICATION_QUORUM_H_
