#include "replication/replica_applier.h"

#include <cassert>
#include <map>
#include <string>
#include <utility>

#include "obs/profile.h"
#include "util/logging.h"

namespace tdr {

void ReplicaApplier::Emit(TraceEventType type, const Job& job,
                          ObjectId oid, std::string detail) {
  if (trace_ == nullptr) return;
  TraceEvent event;
  event.time = sim_->Now();
  event.type = type;
  event.txn = job.txn;
  event.node = job.node->id();
  event.oid = oid;
  // The origin transaction whose updates this replica txn applies (a
  // batch carries one origin txn's writes) — what lets trace exporters
  // draw commit -> apply flow arrows.
  if (!job.records.empty()) event.root = job.records[0].txn;
  event.detail = std::move(detail);
  trace_->OnEvent(event);
}

ReplicaApplier::Job* ReplicaApplier::AcquireJob() {
  if (free_jobs_.empty()) {
    auto owned = std::make_unique<Job>();
    owned->pool_index = static_cast<std::uint32_t>(job_pool_.size());
    // Uniform birth capacity (256 >= the 128-update batch cap): the
    // record copy in Apply() then never grows an arbitrary free-list
    // job's buffer at steady state.
    owned->records.reserve(256);
    job_pool_.push_back(std::move(owned));
    free_jobs_.push_back(job_pool_.back()->pool_index);
  }
  Job* job = job_pool_[free_jobs_.back()].get();
  free_jobs_.pop_back();
  job->serial = next_serial_++;
  return job;
}

void ReplicaApplier::RecycleJob(Job* job) {
  job->serial = 0;
  job->node = nullptr;
  job->records.clear();  // keeps capacity for the next batch
  job->done = nullptr;
  job->txn = kInvalidTxnId;
  job->idx = 0;
  job->report = Report{};
  free_jobs_.push_back(job->pool_index);
}

void ReplicaApplier::Apply(Node* node,
                           const std::vector<UpdateRecord>& records,
                           Options options, Done done) {
  if (options.shards != nullptr && options.shards->num_shards() > 1 &&
      !records.empty()) {
    ApplySharded(node, records, options, std::move(done));
    return;
  }
  Job* job = AcquireJob();
  job->node = node;
  job->records = records;
  job->options = options;
  job->done = std::move(done);
  job->txn = executor_->AllocateTxnId();
  ++active_;
  if (job->records.empty()) {
    FinishJob(job);
    return;
  }
  if (trace_ != nullptr) {
    Emit(TraceEventType::kReplicaTxnStart, *job, job->records[0].oid,
         StrPrintf("%zu updates from txn %llu", job->records.size(),
                   (unsigned long long)job->records[0].txn));
  }
  AcquireNext(job);
}

void ReplicaApplier::ApplySharded(Node* node,
                                  const std::vector<UpdateRecord>& records,
                                  const Options& options, Done done) {
  // Partition by shard, preserving update order within each shard.
  // std::map iterates shards ascending, so sub-transaction start order
  // is deterministic. (Cold relative to the single-shard path; the
  // per-call map/aggregation allocations are accepted here.)
  std::map<ShardId, std::vector<UpdateRecord>> by_shard;
  for (const UpdateRecord& rec : records) {
    by_shard[options.shards->ShardOf(rec.oid)].push_back(rec);
  }
  Options sub = options;
  sub.shards = nullptr;  // each group is single-shard by construction
  auto agg = std::make_shared<Report>();
  auto remaining = std::make_shared<std::size_t>(by_shard.size());
  auto shared_done = std::make_shared<Done>(std::move(done));
  for (auto& [shard, recs] : by_shard) {
    ShardAppliedCounter(shard);  // acquire outside the callback
    ShardId sid = shard;
    Apply(node, recs, sub,
          [this, sid, agg, remaining, shared_done](const Report& r) {
            ShardAppliedCounter(sid).Increment(r.applied);
            agg->applied += r.applied;
            agg->stale += r.stale;
            agg->conflicts += r.conflicts;
            agg->deadlock_retries += r.deadlock_retries;
            agg->gave_up = agg->gave_up || r.gave_up;
            if (--*remaining == 0 && *shared_done) (*shared_done)(*agg);
          });
  }
}

obs::MetricsRegistry::Counter& ReplicaApplier::ShardAppliedCounter(
    ShardId shard) {
  if (shard >= shard_applied_.size()) {
    std::size_t old_size = shard_applied_.size();
    shard_applied_.resize(shard + 1);
    if (metrics_ != nullptr) {
      for (std::size_t s = old_size; s < shard_applied_.size(); ++s) {
        shard_applied_[s] = metrics_->GetCounter(
            "replica.shard_applied",
            {{"shard", std::to_string(s)}});
      }
    }
  }
  return shard_applied_[shard];
}

void ReplicaApplier::AcquireNext(Job* job) {
  if (job->idx >= job->records.size()) {
    // All updates installed: release locks and report.
    job->node->locks().ReleaseAll(job->txn);
    FinishJob(job);
    return;
  }
  const UpdateRecord& rec = job->records[job->idx];
  const std::uint64_t serial = job->serial;
  LockManager::AcquireOutcome outcome = job->node->locks().Acquire(
      job->txn, rec.oid, [this, job, serial]() {
        if (job->serial != serial) return;
        // Lock granted after a wait; pay the action time then apply.
        sim_->ScheduleAfterNode(
            job->node->id(), job->options.action_time,
            [this, job, serial]() {
              if (job->serial != serial) return;
              ApplyCurrent(job);
            });
      });
  switch (outcome) {
    case LockManager::AcquireOutcome::kGranted:
      sim_->ScheduleAfterNode(
          job->node->id(), job->options.action_time, [this, job, serial]() {
            if (job->serial != serial) return;
            ApplyCurrent(job);
          });
      return;
    case LockManager::AcquireOutcome::kQueued:
      m_waits_.Increment();
      return;  // grant callback continues the job
    case LockManager::AcquireOutcome::kDeadlock:
      HandleDeadlock(job);
      return;
  }
}

void ReplicaApplier::ApplyCurrent(Job* job) {
  obs::ProfileScope profile(m_profile_apply_);
  const UpdateRecord& rec = job->records[job->idx];
  Node* node = job->node;
  node->clock().Observe(rec.new_ts);
  bool installed = false;
  if (job->options.mode == Mode::kTimestampMatch) {
    Status s = node->store().ApplyIfTimestampMatches(rec.oid, rec.new_value,
                                                     rec.old_ts, rec.new_ts);
    if (s.ok()) {
      installed = true;
      ++job->report.applied;
      m_applied_.Increment();
      if (trace_ != nullptr) {
        Emit(TraceEventType::kReplicaApply, *job, rec.oid,
             StrPrintf("<- %s", rec.new_value.ToString().c_str()));
      }
    } else if (s.IsConflict()) {
      // §4: the node rejects the incoming transaction and submits it for
      // reconciliation. The local value stays; divergence is now visible
      // until someone reconciles.
      ++job->report.conflicts;
      m_conflicts_.Increment();
      if (trace_ != nullptr) {
        Emit(TraceEventType::kReplicaConflict, *job, rec.oid, s.message());
      }
    } else {
      assert(false && "unexpected replica apply failure");
    }
  } else {
    bool applied = false;
    Status s =
        node->store().ApplyIfNewer(rec.oid, rec.new_value, rec.new_ts,
                                   &applied);
    assert(s.ok());
    (void)s;
    if (applied) {
      installed = true;
      ++job->report.applied;
      m_applied_.Increment();
      if (trace_ != nullptr) {
        Emit(TraceEventType::kReplicaApply, *job, rec.oid,
             StrPrintf("<- %s", rec.new_value.ToString().c_str()));
      }
    } else {
      ++job->report.stale;
      m_stale_.Increment();
      Emit(TraceEventType::kReplicaStale, *job, rec.oid);
    }
  }
  // Replica installs must survive a crash just like local commits: log
  // every write that actually changed the store. No durability wait —
  // the apply already happened at the origin's commit; here the group
  // committer's window flushes the append in bounded time.
  if (installed) {
    DurabilityHook* durability = executor_->durability();
    if (durability != nullptr && durability->Enabled(node->id())) {
      durability->LogWrite(node->id(), rec.txn, rec.oid, rec.old_ts,
                           rec.new_ts, rec.new_value);
    }
  }
  ++job->idx;
  AcquireNext(job);
}

void ReplicaApplier::HandleDeadlock(Job* job) {
  m_deadlocks_.Increment();
  job->node->locks().ReleaseAll(job->txn);
  ++job->report.deadlock_retries;
  if (!job->options.retry_on_deadlock ||
      job->report.deadlock_retries > job->options.max_retries) {
    job->report.gave_up = true;
    m_gave_up_.Increment();
    FinishJob(job);
    return;
  }
  // "If a base transaction deadlocks, it is resubmitted and reprocessed
  // until it succeeds" (§7) — same treatment for replica updates. The
  // retry resumes at the blocked record: earlier records were installed
  // before their locks were released, and re-running them would
  // double-count conflicts.
  job->txn = executor_->AllocateTxnId();
  const std::uint64_t serial = job->serial;
  sim_->ScheduleAfterNode(
      job->node->id(), job->options.retry_backoff, [this, job, serial]() {
        if (job->serial != serial) return;
        AcquireNext(job);
      });
}

void ReplicaApplier::FinishJob(Job* job) {
  --active_;
  if (trace_ != nullptr && !job->records.empty()) {
    Emit(TraceEventType::kReplicaTxnDone, *job, job->records[0].oid,
         StrPrintf("applied=%llu stale=%llu conflicts=%llu",
                   (unsigned long long)job->report.applied,
                   (unsigned long long)job->report.stale,
                   (unsigned long long)job->report.conflicts));
  }
  // Recycle before invoking done: a reentrant Apply from the callback
  // can reuse this slot's buffer capacity immediately.
  Done done = std::move(job->done);
  Report report = job->report;
  RecycleJob(job);
  if (done) done(report);
}

}  // namespace tdr
