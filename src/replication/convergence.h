#ifndef TDR_REPLICATION_CONVERGENCE_H_
#define TDR_REPLICATION_CONVERGENCE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/object_store.h"
#include "storage/timestamp.h"
#include "storage/types.h"

namespace tdr {

/// §6: Non-transactional replication. "One strategy is to abandon
/// serializability for the convergence property: if no new transactions
/// arrive, and if all the nodes are connected together, they will all
/// converge to the same replicated state ... but updates may be lost."
///
/// Two propagation styles are implemented, matching the systems the
/// paper surveys:
///
///  * STATE-BASED pairwise exchange (Lotus Notes timestamped replace,
///    Microsoft Access "Wingman" version vectors): replicas compare
///    per-record state and the winner per some rule overwrites the
///    loser. Convergent, but replace/replace races LOSE UPDATES.
///  * OPERATION-BASED gossip (Lotus Notes append, §6's "commutative
///    updates ... applied in any order"): replicas ship their update
///    logs; every operation is eventually applied everywhere exactly
///    once. Convergent AND lossless for commutative ops.

// ---------------------------------------------------------------------------
// Reconciliation rules (Oracle 7-style, §6)
// ---------------------------------------------------------------------------

/// Decides which of two CONCURRENT record versions wins a pairwise
/// exchange. "Oracle 7 provides a choice of twelve reconciliation rules
/// ... give priority to certain sites, or time priority, or value
/// priority ... users can program their own."
struct ConflictContext {
  ObjectId oid = 0;
  NodeId node_a = 0;
  NodeId node_b = 0;
  const StoredObject* a = nullptr;
  const StoredObject* b = nullptr;
};

/// Returns the winning record value for a conflict. The version vectors
/// of both inputs are merged onto the winner by the caller so the
/// decision propagates.
using ReconciliationRule = std::function<StoredObject(const ConflictContext&)>;

/// Later timestamp wins (Notes' timestamped replace — the lost-update
/// rule). Oracle name: "latest timestamp".
ReconciliationRule TimePriorityRule();

/// Earlier timestamp wins (first writer sticks).
ReconciliationRule EarliestTimestampRule();

/// Lower site id wins regardless of time.
ReconciliationRule SitePriorityRule();

/// Explicit site ranking: the version from the highest-ranked (lowest
/// rank number) site wins; unranked sites lose to ranked ones; ties
/// fall back to the later timestamp.
ReconciliationRule PriorityGroupRule(std::map<NodeId, int> rank);

/// Larger scalar value wins. Oracle name: "maximum".
ReconciliationRule ValuePriorityRule();

/// Smaller scalar value wins. Oracle name: "minimum".
ReconciliationRule MinimumValueRule();

/// Mean of the two concurrent scalar values (rounds toward a's side).
ReconciliationRule AverageValueRule();

/// Keep the local (a) version — "discard" the incoming one.
ReconciliationRule DiscardRule();

/// Take the remote (b) version — "overwrite" the local one.
ReconciliationRule OverwriteRule();

/// Union of list values / sum of scalars — set-merge semantics.
ReconciliationRule ListMergeRule();

/// Additive merge: treats both concurrent versions as increments over a
/// common base and sums their effects — the rule that "makes some
/// transactions commutative". Requires scalar values; the common base is
/// approximated as 0 for version-1 records and is exact when each
/// replica's vv records one new local update over the common ancestor
/// value carried in ConflictContext (see GossipReplica::Exchange).
ReconciliationRule AdditiveMergeRule();

/// Looks up one of the twelve built-in rules by its catalogue name —
/// "Oracle 7 provides a choice of twelve reconciliation rules to merge
/// conflicting updates" (§6). Names: "additive", "average", "discard",
/// "earliest-timestamp", "latest-timestamp", "list-merge", "maximum",
/// "minimum", "overwrite", "priority-group" (ranking by ascending node
/// id), "site-priority", "user-function" (a template rejecting nothing,
/// meant to be replaced — "users can program their own reconciliation
/// rules"). Returns null for unknown names.
ReconciliationRule RuleByName(std::string_view name);

/// The twelve catalogue names, sorted.
std::vector<std::string> RuleCatalogue();

// ---------------------------------------------------------------------------
// Replica
// ---------------------------------------------------------------------------

/// One replica participating in §6-style convergence replication.
class GossipReplica {
 public:
  /// One logged local operation, for operation-based gossip.
  struct LoggedOp {
    enum class Kind { kDelta, kAppend } kind = Kind::kDelta;
    ObjectId oid = 0;
    std::int64_t arg = 0;     // delta or appended item
    Timestamp ts;             // unique per op
    NodeId origin = 0;
    std::uint64_t seq = 0;    // per-origin sequence number (1-based)
  };

  GossipReplica(NodeId id, std::uint64_t db_size);

  NodeId id() const { return id_; }
  ObjectStore& store() { return store_; }
  const ObjectStore& store() const { return store_; }

  // --- State-based local updates (timestamped replace / RMW) ---

  /// Local timestamped replace ("change account from $200 to $150"):
  /// installs `value` with a fresh timestamp and bumps this replica's
  /// version-vector slot. Races with other replicas' replaces.
  void LocalReplace(ObjectId oid, Value value);

  /// Read-modify-write convenience: replace with current + delta. This
  /// is the checkbook update *expressed as a replace* — the encoding
  /// that loses updates under timestamp schemes.
  void LocalReplaceAdd(ObjectId oid, std::int64_t delta);

  // --- Operation-based local updates (commutative) ---

  /// Local commutative increment, logged for gossip.
  void LocalDelta(ObjectId oid, std::int64_t delta);

  /// Local timestamped append, logged for gossip (§6 Notes append).
  void LocalAppend(ObjectId oid, std::int64_t item);

  // --- Exchange protocols ---

  /// State-based pairwise exchange with `other` ("version vectors are
  /// exchanged on demand or periodically; the most recent update wins
  /// each pairwise exchange", §6 Access). Dominating versions copy over
  /// dominated ones; concurrent versions invoke `rule` and count a
  /// conflict. Both replicas converge per record.
  /// Returns the number of conflicts reconciled.
  std::uint64_t ExchangeState(GossipReplica* other,
                              const ReconciliationRule& rule);

  /// Operation-based exchange: pulls every logged op from `other` that
  /// this replica has not yet seen (tracked by per-origin sequence
  /// numbers), applies them, and vice versa. Commutative ops make the
  /// application order irrelevant. Returns ops transferred.
  std::uint64_t ExchangeOps(GossipReplica* other);

  const std::vector<LoggedOp>& op_log() const { return op_log_; }
  std::uint64_t conflicts_seen() const { return conflicts_; }

 private:
  void ApplyForeignOp(const LoggedOp& op);
  Timestamp NextTs();

  NodeId id_;
  ObjectStore store_;
  LamportClock clock_;
  // Operation-based state: full op log (own + received), delivery
  // watermark per origin.
  std::vector<LoggedOp> op_log_;
  std::map<NodeId, std::uint64_t> delivered_seq_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t conflicts_ = 0;
};

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// A set of replicas plus all-pairs exchange helpers — the test/bench
/// harness for the §6 experiments (E11).
class GossipCluster {
 public:
  GossipCluster(std::uint32_t replicas, std::uint64_t db_size);

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(replicas_.size());
  }
  GossipReplica& replica(NodeId id) { return *replicas_[id]; }

  /// Runs state-based exchanges over all pairs repeatedly until no
  /// record changes (guaranteed to terminate: records only move "up" in
  /// the version-vector order). Returns total conflicts reconciled.
  std::uint64_t ConvergeState(const ReconciliationRule& rule);

  /// Runs op-based exchanges over all pairs until quiescent. Returns
  /// total ops transferred.
  std::uint64_t ConvergeOps();

  /// All replicas hold identical values.
  bool Converged() const;

 private:
  std::vector<std::unique_ptr<GossipReplica>> replicas_;
};

}  // namespace tdr

#endif  // TDR_REPLICATION_CONVERGENCE_H_
