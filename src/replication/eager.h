#ifndef TDR_REPLICATION_EAGER_H_
#define TDR_REPLICATION_EAGER_H_

#include <vector>

#include "replication/cluster.h"
#include "replication/ownership.h"
#include "replication/scheme.h"

namespace tdr {

/// Eager GROUP replication (§3): "Updates are applied to all replicas of
/// an object as part of the original transaction" and any node may
/// update any object. Each write becomes Nodes sequential locked actions
/// (origin first), so transaction size is Actions x Nodes and duration
/// Actions x Nodes x Action_Time — exactly Eq. (6). There are no
/// reconciliations; conflicts surface as waits and deadlocks.
class EagerGroupScheme : public ReplicationScheme {
 public:
  struct Options {
    /// "Simple eager replication systems prohibit updates if any node is
    /// disconnected" — when true, Submit fails kUnavailable if any node
    /// is offline. When false, offline replicas are skipped (the quorum
    /// assumption the paper adopts for availability).
    bool require_all_connected = true;
    bool record_updates = false;
    /// Footnote-2 ablation: replica updates broadcast in parallel, so
    /// only the first (origin) application of each action costs
    /// Action_Time. Transaction duration stays Actions x Action_Time
    /// regardless of N, and the deadlock growth drops from cubic to
    /// quadratic.
    bool parallel_replica_updates = false;
    /// "True serialization" ablation: reads take exclusive locks too.
    bool lock_reads = false;
    /// Timeout-based deadlock detection ablation (combine with the
    /// cluster's detect_deadlock_cycles=false); zero disables.
    SimTime wait_timeout = SimTime::Zero();
  };

  explicit EagerGroupScheme(Cluster* cluster)
      : EagerGroupScheme(cluster, Options()) {}
  EagerGroupScheme(Cluster* cluster, Options options)
      : cluster_(cluster), options_(options) {}

  std::string_view name() const override { return "eager-group"; }
  bool eager() const override { return true; }
  bool group_ownership() const override { return true; }
  std::uint64_t TransactionsPerUserUpdate(std::uint32_t) const override {
    return 1;  // "one transaction" (Table 1)
  }

  void Submit(NodeId origin, const Program& program,
              DoneCallback done) override;

 private:
  Cluster* cluster_;
  Options options_;
};

/// Eager MASTER replication (§3 end / Table 1): every object has an
/// owner; updates lock the master copy first, then the replicas, still
/// inside the one user transaction. Ordering every writer of an object
/// through its master removes the group scheme's update races; the
/// deadlock analysis (Eq. 12) is otherwise identical, which the
/// benches confirm.
class EagerMasterScheme : public ReplicationScheme {
 public:
  struct Options {
    bool require_all_connected = true;
    bool record_updates = false;
  };

  EagerMasterScheme(Cluster* cluster, const Ownership* ownership)
      : EagerMasterScheme(cluster, ownership, Options()) {}
  EagerMasterScheme(Cluster* cluster, const Ownership* ownership,
                    Options options)
      : cluster_(cluster), ownership_(ownership), options_(options) {}

  std::string_view name() const override { return "eager-master"; }
  bool eager() const override { return true; }
  bool group_ownership() const override { return false; }
  std::uint64_t TransactionsPerUserUpdate(std::uint32_t) const override {
    return 1;
  }

  void Submit(NodeId origin, const Program& program,
              DoneCallback done) override;

 private:
  Cluster* cluster_;
  const Ownership* ownership_;
  Options options_;
};

}  // namespace tdr

#endif  // TDR_REPLICATION_EAGER_H_
