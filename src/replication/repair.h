#ifndef TDR_REPLICATION_REPAIR_H_
#define TDR_REPLICATION_REPAIR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "replication/cluster.h"
#include "replication/convergence.h"

namespace tdr {

/// Repair plan for a system-delusion'd cluster.
///
/// Lazy-group replication leaves replicas divergent after timestamp
/// conflicts: "There is usually no automatic way to reverse the
/// committed replica updates, rather a program or person must reconcile
/// conflicting transactions" (§1). This is that program: it inventories
/// every divergent object across the cluster, picks a winning version
/// per object with a reconciliation rule (the §6 Oracle-style
/// catalogue), and installs the winner everywhere with a fresh
/// timestamp so subsequent lazy updates apply cleanly again.
///
/// The repair is exactly what it claims to be — a policy decision, not
/// a recovery of lost serializability: updates that lost their race are
/// still lost (unless an additive/list-merge rule folds them in). The
/// bench and tests quantify that.
class DivergenceRepair {
 public:
  struct ObjectReport {
    ObjectId oid = 0;
    std::uint32_t distinct_versions = 0;
    Value winner;
    std::string winner_source;  // "node <i>" of the winning version
  };

  struct Report {
    std::uint64_t objects_diverged = 0;
    std::uint64_t replicas_patched = 0;  // (node, object) installs
    std::vector<ObjectReport> objects;   // per divergent object

    bool clean() const { return objects_diverged == 0; }
  };

  explicit DivergenceRepair(Cluster* cluster) : cluster_(cluster) {}

  /// Lists the object ids whose value differs across any pair of
  /// (connected or not) replicas.
  std::vector<ObjectId> FindDivergentObjects() const;

  /// Dry run: what would be repaired and which version would win under
  /// `rule`. Does not modify any store.
  Report Plan(const ReconciliationRule& rule) const;

  /// Executes the plan: installs each winner at every replica with a
  /// fresh timestamp issued past all existing ones (so every replica
  /// ends with the same value AND timestamp, and in-flight stale
  /// updates will lose the §5 newer-wins test afterwards). Returns what
  /// was done.
  Report Execute(const ReconciliationRule& rule);

 private:
  /// Picks the winning version of `oid` under `rule` by a pairwise
  /// tournament across replicas (mirrors repeated pairwise exchange).
  StoredObject PickWinner(ObjectId oid, const ReconciliationRule& rule,
                          NodeId* source) const;

  Cluster* cluster_;
};

}  // namespace tdr

#endif  // TDR_REPLICATION_REPAIR_H_
