#ifndef TDR_REPLICATION_SCHEME_H_
#define TDR_REPLICATION_SCHEME_H_

#include <string>

#include "txn/executor.h"
#include "txn/program.h"

namespace tdr {

/// Interface every replication strategy implements — the Table 1
/// taxonomy made executable. Submit() runs one user transaction under
/// the scheme's rules; everything else (replica propagation, conflict
/// tests, reconciliation bookkeeping) happens behind it in simulated
/// time.
class ReplicationScheme {
 public:
  using DoneCallback = Executor::DoneCallback;

  virtual ~ReplicationScheme() = default;

  virtual std::string_view name() const = 0;

  /// Table 1 row: eager (updates in the user transaction) vs lazy.
  virtual bool eager() const = 0;

  /// Table 1 column: group (update anywhere) vs master ownership.
  virtual bool group_ownership() const = 0;

  /// Transactions a single user update ultimately causes, as a function
  /// of N nodes (Table 1: "N transactions" vs "one transaction").
  virtual std::uint64_t TransactionsPerUserUpdate(
      std::uint32_t nodes) const = 0;

  /// Runs one user transaction originating at `origin`. `done` fires
  /// exactly once in simulated time with the user-visible outcome (for
  /// lazy schemes, that is the root/master transaction's outcome; replica
  /// propagation continues afterwards).
  virtual void Submit(NodeId origin, const Program& program,
                      DoneCallback done) = 0;
};

}  // namespace tdr

#endif  // TDR_REPLICATION_SCHEME_H_
