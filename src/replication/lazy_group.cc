#include "replication/lazy_group.h"

#include <utility>

namespace tdr {

LazyGroupScheme::LazyGroupScheme(Cluster* cluster, Options options)
    : cluster_(cluster),
      options_(options),
      applier_(&cluster->runtime(), &cluster->executor(),
               cluster->metrics_or_null()) {
  if (options_.batch.flush_window > SimTime::Zero() ||
      options_.batch.max_batch_updates > 0) {
    shipper_ = std::make_unique<BatchShipper>(
        &cluster_->runtime(), &cluster_->net(), cluster_->size(), name(),
        cluster_->metrics_or_null(), options_.batch,
        [this](const UpdateBatch& batch) { ApplyBatch(batch); });
  }
  if (options_.batch_interval > SimTime::Zero()) {
    for (NodeId origin = 0; origin < cluster_->size(); ++origin) {
      flusher_series_.push_back(cluster_->runtime().RepeatEvery(
          options_.batch_interval,
          [this, origin]() { FlushBatches(origin); }));
    }
  }
}

LazyGroupScheme::~LazyGroupScheme() {
  for (sim::EventId series : flusher_series_) {
    cluster_->runtime().Cancel(series);
  }
}

void LazyGroupScheme::Submit(NodeId origin, const Program& program,
                             DoneCallback done) {
  // The root transaction is purely local — that is the whole point of
  // lazy replication ("One replica is updated by the originating
  // transaction", Figure 1). A disconnected mobile node can still run it.
  // Propagation hangs off the observer hook rather than a wrapper
  // around `done`, so submission allocates nothing.
  Executor::RunOptions opts;
  opts.action_time = cluster_->options().action_time;
  opts.record_updates = true;
  opts.observer = this;
  LocalPlanInto(origin, program, &cluster_->executor().NewPlan());
  cluster_->executor().RunPlan(origin, std::move(opts), std::move(done));
}

void LazyGroupScheme::OnTxnDone(const TxnResult& result) {
  if (result.outcome == TxnOutcome::kCommitted) Propagate(result);
}

void LazyGroupScheme::Propagate(const TxnResult& result) {
  if (result.updates.empty()) return;
  if (shipper_ != nullptr) {
    // Coalescing batch plane: park the updates on every per-destination
    // stream; the shipper's window/size-cap events ship them.
    for (NodeId dest = 0; dest < cluster_->size(); ++dest) {
      if (dest == result.origin) continue;
      shipper_->Enqueue(result.origin, dest, result.updates);
    }
    return;
  }
  if (options_.batch_interval > SimTime::Zero()) {
    // Batched shipping: park the records in the node's out-log; the
    // periodic flusher drains them.
    Node* origin_node = cluster_->node(result.origin);
    for (const UpdateRecord& rec : result.updates) {
      origin_node->out_log().Append(rec);
    }
    return;
  }
  Ship(result.origin, result.updates);
}

void LazyGroupScheme::FlushBatches(NodeId origin) {
  Node* node = cluster_->node(origin);
  if (node->out_log().empty()) return;
  cluster_->metrics().Increment("lazy_group.batches");
  Ship(origin, node->out_log().DrainAll());
}

void LazyGroupScheme::FlushAllBatches() {
  for (NodeId origin = 0; origin < cluster_->size(); ++origin) {
    FlushBatches(origin);
  }
  if (shipper_ != nullptr) shipper_->FlushAll();
}

void LazyGroupScheme::Ship(NodeId origin,
                           const std::vector<UpdateRecord>& records) {
  // One replica-update transaction per remote node (Figure 1's "three
  // transactions"). If the origin is disconnected, Network queues these
  // in its outbox until reconnect — the 24-hour-propagation-delay effect
  // of §4's mobile scenario. Each message carries a pooled payload
  // lease; the handler reads it without consuming (it may legally be
  // invoked more than once under duplicate delivery), and the lease
  // recycles the buffer when the message record is released.
  for (NodeId dest = 0; dest < cluster_->size(); ++dest) {
    if (dest == origin) continue;
    Node* dest_node = cluster_->node(dest);
    net::RecordBufferPool::Lease payload = record_pool_.Acquire();
    *payload = records;
    cluster_->net().Send(
        origin, dest,
        [this, dest_node, payload = std::move(payload)]() {
          ApplyAt(dest_node, *payload);
        });
  }
}

void LazyGroupScheme::ApplyBatch(const UpdateBatch& batch) {
  ApplyAt(cluster_->node(batch.dest), batch.updates);
}

void LazyGroupScheme::ApplyAt(Node* dest,
                              const std::vector<UpdateRecord>& records) {
  ReplicaApplier::Options aopts;
  aopts.action_time = cluster_->options().action_time;
  aopts.mode = ReplicaApplier::Mode::kTimestampMatch;
  aopts.retry_on_deadlock = options_.retry_replica_deadlocks;
  aopts.shards = &cluster_->shards();
  applier_.Apply(dest, records, aopts,
                 [this](const ReplicaApplier::Report& report) {
                   reconciliations_ += report.conflicts;
                   replica_applied_ += report.applied;
                   if (report.conflicts > 0) {
                     cluster_->metrics().Increment(
                         "lazy_group.reconciliations", report.conflicts);
                   }
                 });
}

}  // namespace tdr
