#ifndef TDR_REPLICATION_OWNERSHIP_H_
#define TDR_REPLICATION_OWNERSHIP_H_

#include <cstdint>
#include <vector>

#include "storage/types.h"

namespace tdr {

/// Maps each object to its master (owner) node — "Each object has a
/// master node. Only the master can update the primary copy of the
/// object" (§2, Figure 2). Group-ownership schemes simply never consult
/// this map.
///
/// Two-tier refinement (§7): "Most items are mastered at base nodes...
/// A mobile node may be the master of some data items", so arbitrary
/// per-object assignment is supported on top of the bulk constructors.
class Ownership {
 public:
  /// Objects dealt round-robin across `owners` (the usual balanced
  /// lazy-master configuration).
  static Ownership RoundRobin(std::uint64_t db_size,
                              std::vector<NodeId> owners);

  /// Every object owned by one node (the Data Cycle architecture the
  /// paper compares against in §7).
  static Ownership SingleMaster(std::uint64_t db_size, NodeId owner);

  NodeId OwnerOf(ObjectId oid) const { return owner_[oid]; }

  void SetOwner(ObjectId oid, NodeId node) { owner_[oid] = node; }

  std::uint64_t db_size() const { return owner_.size(); }

  /// Objects owned by `node`, ascending.
  std::vector<ObjectId> ObjectsOwnedBy(NodeId node) const;

  /// Number of distinct owner nodes.
  std::size_t DistinctOwners() const;

 private:
  explicit Ownership(std::vector<NodeId> owner) : owner_(std::move(owner)) {}

  std::vector<NodeId> owner_;  // indexed by ObjectId
};

}  // namespace tdr

#endif  // TDR_REPLICATION_OWNERSHIP_H_
