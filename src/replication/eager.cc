#include "replication/eager.h"

#include <utility>

namespace tdr {

namespace {

/// Synthesizes an "unavailable" result for a transaction that never ran.
TxnResult UnavailableResult(NodeId origin, SimTime now) {
  TxnResult r;
  r.origin = origin;
  r.outcome = TxnOutcome::kUnavailable;
  r.start_time = now;
  r.end_time = now;
  return r;
}

bool AllReachable(Cluster* cluster, NodeId origin) {
  for (NodeId id = 0; id < cluster->size(); ++id) {
    if (!cluster->net().Reachable(origin, id)) return false;
  }
  return true;
}

}  // namespace

void EagerGroupScheme::Submit(NodeId origin, const Program& program,
                              DoneCallback done) {
  if (!cluster_->node(origin)->connected() ||
      (options_.require_all_connected && !AllReachable(cluster_, origin))) {
    cluster_->metrics().Increment("scheme.unavailable");
    if (done) done(UnavailableResult(origin, cluster_->runtime().Now()));
    return;
  }
  // Compile: each write applies at the origin replica first, then at
  // every other (connected) replica, sequentially — Figure 1's
  // three-node eager transaction. The plan builds in the executor's
  // scratch buffer and runs out of a pooled transaction record.
  std::vector<ExecStep>& steps = cluster_->executor().NewPlan();
  for (const Op& op : program.ops()) {
    if (!op.IsWrite()) {
      steps.push_back(ExecStep{origin, op});
      continue;
    }
    steps.push_back(ExecStep{origin, op});
    for (NodeId n = 0; n < cluster_->size(); ++n) {
      if (n == origin) continue;
      if (!cluster_->net().Reachable(origin, n)) continue;  // quorum variant
      steps.push_back(
          ExecStep{n, op, /*charge=*/!options_.parallel_replica_updates});
    }
  }
  Executor::RunOptions opts;
  opts.action_time = cluster_->options().action_time;
  opts.record_updates = options_.record_updates;
  opts.lock_reads = options_.lock_reads;
  opts.wait_timeout = options_.wait_timeout;
  cluster_->executor().RunPlan(origin, std::move(opts), std::move(done));
}

void EagerMasterScheme::Submit(NodeId origin, const Program& program,
                               DoneCallback done) {
  if (!cluster_->node(origin)->connected() ||
      (options_.require_all_connected && !AllReachable(cluster_, origin))) {
    cluster_->metrics().Increment("scheme.unavailable");
    if (done) done(UnavailableResult(origin, cluster_->runtime().Now()));
    return;
  }
  // Masters must be reachable: "A node wanting to update an object must
  // be connected to the object owner" (§5; same constraint eagerly).
  for (const Op& op : program.ops()) {
    if (op.IsWrite() &&
        !cluster_->net().Reachable(origin, ownership_->OwnerOf(op.oid))) {
      cluster_->metrics().Increment("scheme.unavailable");
      if (done) done(UnavailableResult(origin, cluster_->runtime().Now()));
      return;
    }
  }
  // Compile: writes lock the master copy first ("updates go to this node
  // first and are then applied to the replicas"), then fan out.
  std::vector<ExecStep>& steps = cluster_->executor().NewPlan();
  for (const Op& op : program.ops()) {
    NodeId owner = ownership_->OwnerOf(op.oid);
    if (!op.IsWrite()) {
      // Reads consult the master copy (the current value by definition).
      steps.push_back(ExecStep{owner, op});
      continue;
    }
    steps.push_back(ExecStep{owner, op});
    for (NodeId n = 0; n < cluster_->size(); ++n) {
      if (n == owner) continue;
      if (!cluster_->net().Reachable(origin, n)) continue;
      steps.push_back(ExecStep{n, op});
    }
  }
  Executor::RunOptions opts;
  opts.action_time = cluster_->options().action_time;
  opts.record_updates = options_.record_updates;
  cluster_->executor().RunPlan(origin, std::move(opts), std::move(done));
}

}  // namespace tdr
