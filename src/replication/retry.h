#ifndef TDR_REPLICATION_RETRY_H_
#define TDR_REPLICATION_RETRY_H_

#include <cstdint>

#include "replication/cluster.h"
#include "replication/scheme.h"

namespace tdr {

/// Deadlock-retry wrapper around any ReplicationScheme: the victim is
/// resubmitted after a backoff, up to a cap. The paper uses exactly
/// this policy for replica-update and two-tier base transactions ("it
/// is resubmitted and reprocessed until it succeeds", §7); user-facing
/// transactions in production systems retry the same way.
///
/// Only kDeadlock outcomes retry. kRejected and kUnavailable pass
/// through (they are decisions, not collisions), and so does success.
/// The final callback fires exactly once with the last attempt's result
/// (whose `waits`/timings describe that attempt only).
///
/// LIFETIME: pending backoff events capture `this`; the submitter must
/// outlive the simulation of any retries it started (keep it alongside
/// the Cluster, as the benches and examples do).
class RetryingSubmitter {
 public:
  struct Options {
    int max_retries = 100;
    SimTime backoff = SimTime::Millis(10);
    /// Double the backoff each attempt (capped at 1000x base) — avoids
    /// the livelock of two retriers recolliding in lockstep.
    bool exponential_backoff = true;
  };

  RetryingSubmitter(Cluster* cluster, ReplicationScheme* scheme,
                    Options options)
      : cluster_(cluster), scheme_(scheme), options_(options) {}

  RetryingSubmitter(const RetryingSubmitter&) = delete;
  RetryingSubmitter& operator=(const RetryingSubmitter&) = delete;

  /// Submits with retry-on-deadlock. `done` may be null.
  void Submit(NodeId origin, const Program& program,
              ReplicationScheme::DoneCallback done);

  std::uint64_t retries() const { return retries_; }
  std::uint64_t gave_up() const { return gave_up_; }

 private:
  void Attempt(NodeId origin, Program program,
               ReplicationScheme::DoneCallback done, int attempt);

  Cluster* cluster_;
  ReplicationScheme* scheme_;
  Options options_;
  std::uint64_t retries_ = 0;
  std::uint64_t gave_up_ = 0;
};

}  // namespace tdr

#endif  // TDR_REPLICATION_RETRY_H_
