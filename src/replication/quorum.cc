#include "replication/quorum.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "util/logging.h"

namespace tdr {

QuorumEagerScheme::QuorumEagerScheme(Cluster* cluster, Options options)
    : cluster_(cluster), options_(std::move(options)) {
  votes_ = options_.votes;
  if (votes_.empty()) {
    votes_.assign(cluster_->size(), 1);
  }
  assert(votes_.size() == cluster_->size());
  for (std::uint32_t v : votes_) total_votes_ += v;
  write_quorum_ = options_.write_quorum != 0 ? options_.write_quorum
                                             : total_votes_ / 2 + 1;
  read_quorum_ = options_.read_quorum != 0
                     ? options_.read_quorum
                     : total_votes_ - write_quorum_ + 1;
  // Soundness: any read quorum must intersect any write quorum, and two
  // write quorums must intersect (serializing writers of an object).
  assert(read_quorum_ + write_quorum_ > total_votes_);
  assert(2 * write_quorum_ > total_votes_);
  // Catch-up wiring: a rejoining replica refreshes from the quorum, and
  // a healing link lets both endpoints refresh from the side they could
  // not see during the partition.
  for (NodeId id = 0; id < cluster_->size(); ++id) {
    cluster_->net().OnReconnect(id, [this, id]() { CatchUp(id); });
  }
  cluster_->net().OnLinkRestored([this](NodeId a, NodeId b) {
    if (cluster_->node(a)->connected()) CatchUp(a);
    if (cluster_->node(b)->connected()) CatchUp(b);
  });
}

std::uint32_t QuorumEagerScheme::ConnectedVotes() const {
  std::uint32_t votes = 0;
  for (NodeId id = 0; id < cluster_->size(); ++id) {
    if (cluster_->node(id)->connected()) votes += votes_[id];
  }
  return votes;
}

std::uint32_t QuorumEagerScheme::ReachableVotes(NodeId origin) const {
  if (!cluster_->node(origin)->connected()) return 0;
  std::uint32_t votes = 0;
  for (NodeId id = 0; id < cluster_->size(); ++id) {
    if (cluster_->net().Reachable(origin, id)) votes += votes_[id];
  }
  return votes;
}

void QuorumEagerScheme::Submit(NodeId origin, const Program& program,
                               DoneCallback done) {
  if (!cluster_->node(origin)->connected() ||
      !WriteQuorumAvailableAt(origin)) {
    cluster_->metrics().Increment("scheme.unavailable");
    TxnResult r;
    r.origin = origin;
    r.outcome = TxnOutcome::kUnavailable;
    r.start_time = cluster_->runtime().Now();
    r.end_time = r.start_time;
    if (done) done(r);
    return;
  }
  // Write set: the origin plus replicas it can reach until the quorum
  // is met, kept in ascending id order. The global order serializes all
  // quorum writers of an object through the same first member, so
  // same-object quorum writes cannot deadlock with each other. The
  // member list is per-scheme scratch: Submit never reenters itself
  // while it is live.
  std::vector<NodeId>& members = members_scratch_;
  members.clear();
  std::uint32_t votes = votes_[origin];
  members.push_back(origin);
  for (NodeId id = 0; id < cluster_->size() && votes < write_quorum_;
       ++id) {
    if (id == origin || !cluster_->net().Reachable(origin, id)) continue;
    members.push_back(id);
    votes += votes_[id];
  }
  assert(votes >= write_quorum_);
  std::sort(members.begin(), members.end());
  // Version-correct quorum writing (Gifford): lock the whole write set
  // (kLockOnly steps), then a kQuorumApply step reads the newest locked
  // version, applies the op once, and installs the same value at every
  // member.
  std::vector<ExecStep>& steps = cluster_->executor().NewPlan();
  int op_index = 0;
  for (const Op& op : program.ops()) {
    if (!op.IsWrite()) {
      steps.push_back(ExecStep{origin, op});
      continue;
    }
    for (std::size_t i = 0; i < members.size(); ++i) {
      ExecStep step;
      step.node = members[i];
      step.op = op;
      step.op_index = op_index;
      step.kind = i + 1 < members.size() ? StepKind::kLockOnly
                                         : StepKind::kQuorumApply;
      steps.push_back(step);
    }
    ++op_index;
  }
  Executor::RunOptions opts;
  opts.action_time = cluster_->options().action_time;
  opts.record_updates = options_.record_updates;
  cluster_->executor().RunPlan(origin, std::move(opts), std::move(done));
}

Result<StoredObject> QuorumEagerScheme::ReadLatest(ObjectId oid) const {
  std::uint32_t votes = 0;
  const StoredObject* newest = nullptr;
  for (NodeId id = 0; id < cluster_->size(); ++id) {
    if (!cluster_->node(id)->connected()) continue;
    const ObjectStore& store = cluster_->node(id)->store();
    if (!store.Contains(oid)) {
      return Status::NotFound("ReadLatest: object out of range");
    }
    const StoredObject& obj = store.GetUnchecked(oid);
    if (newest == nullptr || obj.ts > newest->ts) newest = &obj;
    votes += votes_[id];
    if (votes >= read_quorum_) break;
  }
  if (votes < read_quorum_ || newest == nullptr) {
    return Status::Unavailable(
        StrPrintf("read quorum unavailable: %u of %u votes", votes,
                  read_quorum_));
  }
  return *newest;
}

Result<StoredObject> QuorumEagerScheme::ReadLatestAt(NodeId reader,
                                                     ObjectId oid) const {
  std::uint32_t votes = 0;
  const StoredObject* newest = nullptr;
  for (NodeId id = 0; id < cluster_->size(); ++id) {
    if (!cluster_->net().Reachable(reader, id)) continue;
    const ObjectStore& store = cluster_->node(id)->store();
    if (!store.Contains(oid)) {
      return Status::NotFound("ReadLatestAt: object out of range");
    }
    const StoredObject& obj = store.GetUnchecked(oid);
    if (newest == nullptr || obj.ts > newest->ts) newest = &obj;
    votes += votes_[id];
    if (votes >= read_quorum_) break;
  }
  if (votes < read_quorum_ || newest == nullptr) {
    return Status::Unavailable(
        StrPrintf("read quorum unavailable at node %u: %u of %u votes",
                  reader, votes, read_quorum_));
  }
  return *newest;
}

void QuorumEagerScheme::CatchUpAll() {
  for (NodeId id = 0; id < cluster_->size(); ++id) {
    if (cluster_->node(id)->connected()) CatchUp(id);
  }
}

void QuorumEagerScheme::CatchUp(NodeId rejoined) {
  // "The quorum sends the new node all replica updates since the node
  // was disconnected": refresh every object whose newest reachable
  // version is later than the rejoined node's copy. Shards are
  // contiguous id ranges, so walking them in order preserves the
  // ascending-oid refresh order while making per-shard repair volume
  // visible in quorum.shard_catch_up{shard=K}.
  Node* node = cluster_->node(rejoined);
  const ShardMap& shards = cluster_->shards();
  for (ShardId shard = 0; shard < shards.num_shards(); ++shard) {
    std::uint64_t refreshed = 0;
    for (ObjectId oid = shards.ShardBegin(shard);
         oid < shards.ShardEnd(shard); ++oid) {
      const StoredObject* newest = nullptr;
      for (NodeId id = 0; id < cluster_->size(); ++id) {
        if (id == rejoined || !cluster_->net().Reachable(rejoined, id)) {
          continue;
        }
        const StoredObject& obj =
            cluster_->node(id)->store().GetUnchecked(oid);
        if (newest == nullptr || obj.ts > newest->ts) newest = &obj;
      }
      if (newest == nullptr) continue;  // nobody else is up
      bool applied = false;
      Status s = node->store().ApplyIfNewer(oid, newest->value, newest->ts,
                                            &applied);
      assert(s.ok());
      (void)s;
      if (applied) {
        ++catch_up_objects_;
        ++refreshed;
        cluster_->metrics().Increment("quorum.catch_up_objects");
      }
    }
    if (refreshed > 0 && shards.num_shards() > 1) {
      cluster_->metrics()
          .GetCounter("quorum.shard_catch_up",
                      {{"shard", std::to_string(shard)}})
          .Increment(refreshed);
    }
  }
}

}  // namespace tdr
