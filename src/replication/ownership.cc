#include "replication/ownership.h"

#include <algorithm>
#include <cassert>

namespace tdr {

Ownership Ownership::RoundRobin(std::uint64_t db_size,
                                std::vector<NodeId> owners) {
  assert(!owners.empty());
  std::vector<NodeId> map(db_size);
  for (std::uint64_t oid = 0; oid < db_size; ++oid) {
    map[oid] = owners[oid % owners.size()];
  }
  return Ownership(std::move(map));
}

Ownership Ownership::SingleMaster(std::uint64_t db_size, NodeId owner) {
  return Ownership(std::vector<NodeId>(db_size, owner));
}

std::vector<ObjectId> Ownership::ObjectsOwnedBy(NodeId node) const {
  std::vector<ObjectId> out;
  for (std::uint64_t oid = 0; oid < owner_.size(); ++oid) {
    if (owner_[oid] == node) out.push_back(oid);
  }
  return out;
}

std::size_t Ownership::DistinctOwners() const {
  std::vector<NodeId> copy = owner_;
  std::sort(copy.begin(), copy.end());
  copy.erase(std::unique(copy.begin(), copy.end()), copy.end());
  return copy.size();
}

}  // namespace tdr
