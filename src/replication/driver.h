#ifndef TDR_REPLICATION_DRIVER_H_
#define TDR_REPLICATION_DRIVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "replication/cluster.h"
#include "replication/scheme.h"
#include "workload/workload.h"

namespace tdr {

/// Drives the Table-2 workload model against a cluster + scheme and
/// collects the measurements every experiment reports: one open-loop
/// arrival process per node (each with its own deterministic RNG
/// stream), uniform transaction generation, a fixed measurement window.
///
/// This is the engine behind the bench binaries and the tdrsim CLI;
/// library users get the same one-call experiment:
///
///   Cluster cluster(copts);
///   LazyGroupScheme scheme(&cluster);
///   WorkloadDriver driver(&cluster, &scheme, opts);
///   WorkloadDriver::Outcome out = driver.Run();
class WorkloadDriver {
 public:
  struct Options {
    double tps_per_node = 10;                 // TPS (Table 2)
    ProgramGenerator::Options workload;       // Actions, mix, access skew
    double seconds = 300;                     // measurement window
    bool poisson_arrivals = true;
  };

  struct Outcome {
    double seconds = 0;
    std::uint64_t submitted = 0;
    std::uint64_t committed = 0;
    std::uint64_t deadlocks = 0;
    std::uint64_t waits = 0;
    std::uint64_t reconciliations = 0;
    std::uint64_t unavailable = 0;
    std::uint64_t replica_deadlocks = 0;
    std::uint64_t replica_applied = 0;
    std::uint64_t wait_timeouts = 0;
    std::uint64_t divergent_slots = 0;

    double Rate(std::uint64_t count) const {
      return seconds > 0 ? static_cast<double>(count) / seconds : 0;
    }
    double committed_rate() const { return Rate(committed); }
    double deadlock_rate() const { return Rate(deadlocks); }
    double wait_rate() const { return Rate(waits); }
    double reconciliation_rate() const { return Rate(reconciliations); }

    std::string ToString() const;
  };

  /// `cluster` and `scheme` must outlive the driver. The workload's
  /// db_size is forced to the cluster's.
  WorkloadDriver(Cluster* cluster, ReplicationScheme* scheme,
                 Options options);

  WorkloadDriver(const WorkloadDriver&) = delete;
  WorkloadDriver& operator=(const WorkloadDriver&) = delete;

  /// Runs the window (RunUntil seconds of simulated time), stops the
  /// arrival processes, and returns the measured outcome. Counters that
  /// predate this call are subtracted out, so consecutive Run()s on one
  /// cluster measure their own windows.
  Outcome Run();

  /// Reconciliations reported by the scheme if it is a LazyGroupScheme
  /// (else the cluster's replica.conflicts counter). Exposed for
  /// callers composing their own measurement logic.
  std::uint64_t CurrentReconciliations() const;

 private:
  struct Baseline {
    std::uint64_t committed = 0, deadlocks = 0, waits = 0;
    std::uint64_t reconciliations = 0, unavailable = 0;
    std::uint64_t replica_deadlocks = 0, replica_applied = 0;
    std::uint64_t wait_timeouts = 0;
  };

  Baseline Snapshot() const;

  Cluster* cluster_;
  ReplicationScheme* scheme_;
  Options options_;
  ProgramGenerator generator_;
  /// Reused per arrival (single-threaded sim): programs are regenerated
  /// in place instead of allocated per transaction.
  Program program_scratch_;
  /// Metric handles resolved once (label strings allocate); reused by
  /// every window so Run() itself stays off the allocator.
  std::vector<obs::MetricsRegistry::Counter> submitted_at_;
  obs::MetricsRegistry::Counter skipped_crashed_;
  obs::MetricsRegistry::StatsHandle profile_event_loop_;
  std::uint64_t submitted_ = 0;
};

}  // namespace tdr

#endif  // TDR_REPLICATION_DRIVER_H_
