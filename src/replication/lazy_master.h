#ifndef TDR_REPLICATION_LAZY_MASTER_H_
#define TDR_REPLICATION_LAZY_MASTER_H_

#include <memory>
#include <vector>

#include "net/update_batch.h"
#include "replication/batch_shipper.h"
#include "replication/cluster.h"
#include "replication/ownership.h"
#include "replication/replica_applier.h"
#include "replication/scheme.h"

namespace tdr {

/// Lazy MASTER replication (§5): "Updates are first done by the owner
/// and then propagated to other replicas." The master transaction locks
/// and updates only master copies (at the owners); after commit, each
/// owner broadcasts timestamped slave updates, and slaves apply the
/// newer-wins test, ignoring stale updates so "all the replicas
/// converge to the same final state".
///
/// There are no reconciliations — conflicts resolve as waits/deadlocks
/// at the masters, at the Eq. (19) rate. The scheme is unusable by
/// disconnected nodes: Submit returns kUnavailable if any written
/// object's master is unreachable ("A node wanting to update an object
/// must be connected to the object owner").
class LazyMasterScheme : public ReplicationScheme, private TxnObserver {
 public:
  struct Options {
    bool retry_replica_deadlocks = true;
    /// If true, a node catches up from the masters when it reconnects or
    /// a cut link to it heals (anti-entropy): any slave refresh lost to
    /// a crash or dropped message is repaired from the master copy.
    /// Off by default — the paper's base protocol relies purely on the
    /// refresh stream, and the two-tier core manages its own catch-up.
    bool reconnect_catch_up = false;
    /// Per-destination coalescing batch plane (BatchShipper). Engaged
    /// when flush_window or max_batch_updates is positive: each master's
    /// slave refreshes park on its (master, dest) stream instead of
    /// shipping one message per commit, and the destination applies a
    /// batch atomically per shard, newer-wins.
    BatchShipper::Options batch{SimTime::Zero(), 0, true};
  };

  LazyMasterScheme(Cluster* cluster, const Ownership* ownership)
      : LazyMasterScheme(cluster, ownership, Options()) {}
  LazyMasterScheme(Cluster* cluster, const Ownership* ownership,
                   Options options);

  std::string_view name() const override { return "lazy-master"; }
  bool eager() const override { return false; }
  bool group_ownership() const override { return false; }
  std::uint64_t TransactionsPerUserUpdate(
      std::uint32_t nodes) const override {
    return nodes;  // master txn + (N-1) slave refresh txns (Table 1)
  }

  void Submit(NodeId origin, const Program& program,
              DoneCallback done) override;

  /// Submit with a precommit hook — the two-tier core runs base
  /// transactions through this, wiring the acceptance criterion in as
  /// the hook ("If the base transaction fails its acceptance criteria,
  /// the base transaction is aborted", §7).
  void SubmitWithPrecommit(NodeId origin, const Program& program,
                           Executor::PrecommitHook precommit,
                           DoneCallback done);

  /// Traces slave-refresh application (forwarded to the applier).
  void set_trace_sink(TraceSink* sink) { applier_.set_trace_sink(sink); }

  /// Refreshes `node`'s replica of every object from its (reachable)
  /// master copy, newer-wins. The repair path for refreshes lost to
  /// crashes or message drops.
  void CatchUpNode(NodeId node);

  /// Runs CatchUpNode at every connected node — the fault harness calls
  /// this after all partitions heal so convergence checks see the state
  /// the anti-entropy protocol would reach.
  void CatchUpAll();

  /// Ships every pending refresh batch now. No-op without the batch
  /// plane; the measurement harness calls this before convergence
  /// checks (the lazy-master analogue of LazyGroupScheme's
  /// FlushAllBatches).
  void FlushAllBatches();

  /// The coalescing batch plane; null when Options::batch is disabled.
  BatchShipper* batch_shipper() { return shipper_.get(); }

  std::uint64_t slave_updates_applied() const { return slave_applied_; }
  std::uint64_t stale_updates_ignored() const { return stale_ignored_; }
  std::uint64_t catch_up_objects() const { return catch_up_objects_; }

 private:
  /// Executor completion hook (RunOptions::observer on every master
  /// transaction): broadcasts slave refreshes on commit. Runs before
  /// the caller's done callback, exactly where the old done-wrapper ran.
  void OnTxnDone(const TxnResult& result) override;
  void Propagate(const TxnResult& result);
  void ApplyAt(Node* dest, const std::vector<UpdateRecord>& records);

  Cluster* cluster_;
  const Ownership* ownership_;
  Options options_;
  ReplicaApplier applier_;
  std::unique_ptr<BatchShipper> shipper_;
  /// Pooled payload buffers for unbatched refresh shipping.
  net::RecordBufferPool record_pool_;
  std::uint64_t slave_applied_ = 0;
  std::uint64_t stale_ignored_ = 0;
  std::uint64_t catch_up_objects_ = 0;
};

}  // namespace tdr

#endif  // TDR_REPLICATION_LAZY_MASTER_H_
