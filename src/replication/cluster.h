#ifndef TDR_REPLICATION_CLUSTER_H_
#define TDR_REPLICATION_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "net/network.h"
#include "obs/metrics.h"
#include "runtime/runtime.h"
#include "runtime/thread_runtime.h"
#include "sim/simulator.h"
#include "storage/shard_map.h"
#include "txn/executor.h"
#include "txn/node.h"
#include "txn/wait_for_graph.h"
#include "util/rng.h"
#include "util/stats.h"
#include "wal/recovery_manager.h"
#include "wal/wal_set.h"

namespace tdr {

/// Which execution backend a Cluster runs on. Both order events by the
/// same virtual (time, seq) key, so a seeded scenario is bit-identical
/// across backends; kThreads additionally runs each node's events on a
/// dedicated OS thread (see runtime/thread_runtime.h).
enum class RuntimeBackend {
  kSim,      // single-threaded deterministic simulator (default)
  kThreads,  // one worker thread + mailbox per node, sim as the clock
};

/// A fully-replicated cluster per the §2 model: `num_nodes` nodes, each
/// holding a replica of all `db_size` objects, wired by a simulated
/// Network, sharing one Simulator, one wait-for graph, one Executor and
/// one metrics registry. Replication schemes plug in on top.
class Cluster {
 public:
  struct Options {
    std::uint32_t num_nodes = 3;
    std::uint64_t db_size = 10000;
    /// Shards the key space is range-partitioned into (clamped to
    /// [1, db_size]). Every per-object structure — lock tables, replica
    /// appliers, batch streams — keys its state off the resulting
    /// ShardMap. One shard reproduces the unsharded data plane exactly.
    std::uint32_t num_shards = 1;
    SimTime action_time = SimTime::Millis(10);  // Table 2 Action_Time
    Network::Options net;
    std::uint64_t seed = 42;
    /// The model's assumption: instant perfect wait-for-graph deadlock
    /// detection. Turn off to rely on executor wait timeouts instead
    /// (production-style detection; see the A4 ablation).
    bool detect_deadlock_cycles = true;
    /// If false, Executor/Network/schemes are built with no registry —
    /// every metric handle degrades to a no-op. This is the baseline
    /// bench_headline compares against to bound instrumentation
    /// overhead; metrics() still exists but stays empty.
    bool enable_metrics = true;
    /// Execution backend; every component schedules through runtime().
    RuntimeBackend backend = RuntimeBackend::kSim;
    /// kThreads only: wall-seconds per sim-second pacing (0 free-runs).
    double time_scale = 0;
    /// kThreads only: dispatch mode, work stealing, mailbox
    /// backpressure, task-pool sizing (see ThreadRuntime::Options).
    /// `runtime.time_scale` is ignored — the `time_scale` knob above
    /// wins (it predates this struct).
    runtime::ThreadRuntime::Options runtime;
    /// Per-node write-ahead logging (src/wal). kOff keeps the legacy
    /// crash model (durable stores, outbox-as-log); kCommit/kGroup add
    /// a WAL under the executor's commit path and route crash/restart
    /// through WAL recovery. `wal.mode` is the switch; the other fields
    /// tune flush latency, the group-commit window, and segmenting.
    wal::WalSet::Options wal;
  };

  explicit Cluster(Options options);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// The virtual clock / event core. With the kThreads backend, do not
  /// Run it directly — drive execution through runtime() so dispatch
  /// happens; reading Now()/executed_events() is always fine.
  sim::Simulator& sim() { return sim_; }
  /// The execution backend every component schedules against.
  runtime::Runtime& runtime() { return *rt_; }
  /// The thread backend, or null when backend == kSim.
  runtime::ThreadRuntime* thread_runtime() { return thread_rt_.get(); }
  Network& net() { return *net_; }
  Executor& executor() { return *exec_; }
  /// The write-ahead logs, or null when options().wal.mode == kOff.
  wal::WalSet* wals() { return wals_.get(); }
  /// The crash/restart seam (always present; pass-through when WAL is
  /// off). FaultInjector and tests route Crash/Restart through this.
  wal::RecoveryManager& recovery() { return *recovery_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  /// The registry to hand to components: null when metrics are off.
  obs::MetricsRegistry* metrics_or_null() {
    return options_.enable_metrics ? &metrics_ : nullptr;
  }
  WaitForGraph& graph() { return graph_; }
  /// The cluster-wide range partition of the key space.
  const ShardMap& shards() const { return shards_; }

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  Node* node(NodeId id) { return nodes_[id].get(); }
  const Node* node(NodeId id) const { return nodes_[id].get(); }
  std::vector<Node*> node_ptrs();

  const Options& options() const { return options_; }

  /// Independent RNG stream (deterministic given the cluster seed).
  Rng ForkRng() { return rng_.Fork(); }

  /// True if all nodes' stores hold identical values — the convergence
  /// property of §6 ("they will all converge to the same replicated
  /// state"). Timestamps are ignored; value equality is what matters.
  bool Converged() const;

  /// True if every node's store matches `reference` by value.
  bool ConvergedTo(const ObjectStore& reference) const;

  /// Number of (node, object) slots whose value differs from node 0 —
  /// a measure of replica divergence ("system delusion" when it cannot
  /// be repaired).
  std::uint64_t DivergentSlots() const;

  /// Order-sensitive digest of every node's store contents (values and
  /// timestamps) — two runs of the same seeded scenario are bit-identical
  /// iff their digests match. The replay-determinism fingerprint.
  std::uint64_t StateDigest() const;

  /// Shards of `shard` (one digest per node, node order) — the
  /// fine-grained twin of StateDigest for per-shard convergence checks.
  std::vector<std::uint64_t> ShardDigests(ShardId shard) const;

 private:
  Options options_;
  sim::Simulator sim_;
  WaitForGraph graph_;
  Rng rng_;
  obs::MetricsRegistry metrics_;
  ShardMap shards_;
  std::vector<std::unique_ptr<Node>> nodes_;
  // Declared before net_/exec_ (they take rt_), destroyed after them:
  // by then no dispatch is in flight, so joining idle workers is safe.
  std::unique_ptr<runtime::ThreadRuntime> thread_rt_;
  runtime::Runtime* rt_ = nullptr;  // &sim_, or thread_rt_.get()
  std::unique_ptr<Network> net_;
  std::unique_ptr<Executor> exec_;
  std::unique_ptr<wal::WalSet> wals_;  // null when wal.mode == kOff
  std::unique_ptr<wal::RecoveryManager> recovery_;
};

}  // namespace tdr

#endif  // TDR_REPLICATION_CLUSTER_H_
