#include "replication/retry.h"

#include <utility>

namespace tdr {

void RetryingSubmitter::Submit(NodeId origin, const Program& program,
                               ReplicationScheme::DoneCallback done) {
  Attempt(origin, program, std::move(done), 0);
}

void RetryingSubmitter::Attempt(NodeId origin, Program program,
                                ReplicationScheme::DoneCallback done,
                                int attempt) {
  scheme_->Submit(
      origin, program,
      [this, origin, program, done = std::move(done),
       attempt](const TxnResult& result) mutable {
        if (result.outcome != TxnOutcome::kDeadlock ||
            attempt >= options_.max_retries) {
          if (result.outcome == TxnOutcome::kDeadlock) {
            ++gave_up_;
            cluster_->metrics().Increment("retry.gave_up");
          }
          if (done) done(result);
          return;
        }
        ++retries_;
        cluster_->metrics().Increment("retry.resubmitted");
        SimTime backoff = options_.backoff;
        if (options_.exponential_backoff) {
          std::int64_t factor = 1;
          for (int i = 0; i < attempt && factor < 1000; ++i) factor *= 2;
          backoff = backoff * factor;
        }
        cluster_->runtime().ScheduleAfterNode(
            origin, backoff,
            [this, origin, program = std::move(program),
             done = std::move(done), attempt]() mutable {
              Attempt(origin, std::move(program), std::move(done),
                      attempt + 1);
            });
      });
}

}  // namespace tdr
