#include "replication/cluster.h"

namespace tdr {

Cluster::Cluster(Options options)
    : options_(options),
      rng_(options.seed, /*stream=*/1),
      shards_(options.db_size, options.num_shards) {
  nodes_.reserve(options_.num_nodes);
  for (NodeId id = 0; id < options_.num_nodes; ++id) {
    nodes_.push_back(std::make_unique<Node>(
        id, options_.db_size, &graph_, options_.detect_deadlock_cycles,
        &shards_));
  }
  if (options_.backend == RuntimeBackend::kThreads) {
    runtime::ThreadRuntime::Options topts = options_.runtime;
    topts.time_scale = options_.time_scale;
    thread_rt_ = std::make_unique<runtime::ThreadRuntime>(
        &sim_, options_.num_nodes, topts, metrics_or_null());
    rt_ = thread_rt_.get();
  } else {
    rt_ = &sim_;
  }
  net_ = std::make_unique<Network>(rt_, node_ptrs(), options_.net,
                                   metrics_or_null());
  exec_ = std::make_unique<Executor>(rt_, node_ptrs(), metrics_or_null());
  if (options_.wal.mode != DurabilityMode::kOff) {
    // The torn-tail RNG stream is consumed only at crash events, so
    // clean runs are unaffected by its existence.
    wals_ = std::make_unique<wal::WalSet>(rt_, options_.num_nodes, &shards_,
                                          options_.wal,
                                          Rng(options_.seed, /*stream=*/911),
                                          metrics_or_null());
    exec_->set_durability(wals_.get());
  }
  recovery_ = std::make_unique<wal::RecoveryManager>(node_ptrs(), net_.get(),
                                                     wals_.get());
}

std::vector<Node*> Cluster::node_ptrs() {
  std::vector<Node*> ptrs;
  ptrs.reserve(nodes_.size());
  for (auto& n : nodes_) ptrs.push_back(n.get());
  return ptrs;
}

bool Cluster::Converged() const {
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (!nodes_[0]->store().SameValuesAs(nodes_[i]->store())) return false;
  }
  return true;
}

bool Cluster::ConvergedTo(const ObjectStore& reference) const {
  for (const auto& n : nodes_) {
    if (!n->store().SameValuesAs(reference)) return false;
  }
  return true;
}

std::uint64_t Cluster::DivergentSlots() const {
  std::uint64_t divergent = 0;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    divergent += nodes_[i]->store().DiffAgainst(nodes_[0]->store()).size();
  }
  return divergent;
}

std::uint64_t Cluster::StateDigest() const {
  // FNV-1a over the per-store digests, in node order: sensitive to every
  // value and timestamp on every replica.
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& n : nodes_) {
    std::uint64_t d = n->store().Digest();
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (d >> shift) & 0xffULL;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

std::vector<std::uint64_t> Cluster::ShardDigests(ShardId shard) const {
  std::vector<std::uint64_t> digests;
  digests.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    digests.push_back(n->store().ShardDigest(shards_, shard));
  }
  return digests;
}

}  // namespace tdr
