#ifndef TDR_REPLICATION_REPLICA_APPLIER_H_
#define TDR_REPLICATION_REPLICA_APPLIER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "runtime/runtime.h"
#include "storage/shard_map.h"
#include "storage/update_log.h"
#include "txn/executor.h"
#include "txn/node.h"
#include "txn/trace.h"
#include "util/stats.h"

namespace tdr {

/// Applies a batch of replica updates at one node as a *replica update
/// transaction* — the separate lazy transactions of Figure 1/Figure 4.
///
/// The transaction locks each target object (one action per update, each
/// costing Action_Time after its lock grant, so replica updates load the
/// node exactly as the model assumes), then installs the new values
/// under the scheme's conflict test:
///
///  * kTimestampMatch (lazy group, §4): apply iff the local timestamp
///    equals the update's old timestamp; otherwise count a
///    reconciliation and leave the local value alone.
///  * kNewerWins (lazy master, §5): apply iff the update's timestamp is
///    newer; stale updates are silently ignored.
///
/// Replica update transactions "can abort and restart without affecting
/// the user" (§5); on deadlock the applier releases everything and
/// retries after a short backoff, up to max_retries.
class ReplicaApplier {
 public:
  enum class Mode {
    kTimestampMatch,
    kNewerWins,
  };

  struct Options {
    SimTime action_time = SimTime::Millis(10);
    Mode mode = Mode::kTimestampMatch;
    bool retry_on_deadlock = true;
    int max_retries = 1000;
    SimTime retry_backoff = SimTime::Millis(10);
    /// With a multi-shard map, a batch is partitioned by shard and each
    /// non-empty shard applies as its OWN replica transaction, in
    /// ascending shard order — atomic per shard. Lock footprints shrink
    /// to one shard's objects, shards apply concurrently in sim time,
    /// and a deadlock retry re-runs only its shard. Null (or one
    /// shard): the whole batch is one transaction, exactly the
    /// unsharded plane. `done` fires once either way, with the
    /// aggregated report.
    const ShardMap* shards = nullptr;
  };

  struct Report {
    std::uint64_t applied = 0;
    std::uint64_t stale = 0;         // kNewerWins: ignored stale updates
    std::uint64_t conflicts = 0;     // kTimestampMatch: reconciliations
    int deadlock_retries = 0;
    bool gave_up = false;            // exceeded max_retries
  };

  using Done = std::function<void(const Report&)>;

  /// `executor` supplies transaction ids (shared id space keeps the
  /// global wait-for graph sound); `metrics` may be null.
  ReplicaApplier(runtime::Runtime* rt, Executor* executor,
                 obs::MetricsRegistry* metrics)
      : sim_(rt), executor_(executor), metrics_(metrics) {
    if (metrics != nullptr) {
      m_waits_ = metrics->GetCounter("replica.waits");
      m_applied_ = metrics->GetCounter("replica.applied");
      m_conflicts_ = metrics->GetCounter("replica.conflicts");
      m_stale_ = metrics->GetCounter("replica.stale");
      m_deadlocks_ = metrics->GetCounter("replica.deadlocks");
      m_gave_up_ = metrics->GetCounter("replica.gave_up");
      m_profile_apply_ = metrics->GetProfile("profile.replica_apply");
    }
  }

  ReplicaApplier(const ReplicaApplier&) = delete;
  ReplicaApplier& operator=(const ReplicaApplier&) = delete;

  /// Starts one replica update transaction applying `records` at
  /// `node`, in order. The records are copied into a pooled job buffer
  /// (the pool retains capacity across batches, so steady state copies
  /// without allocating). `done` fires once, in simulated time.
  void Apply(Node* node, const std::vector<UpdateRecord>& records,
             Options options, Done done);

  /// Batches currently in flight (including those between retries).
  std::size_t ActiveCount() const { return active_; }

  /// Attaches a protocol trace sink (not owned; null detaches).
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }

 private:
  /// One in-flight batch. Jobs live in a recycled pool (stable
  /// addresses); callbacks capture the raw pointer plus the job's
  /// serial and bail if the serial moved on — the pooled analogue of
  /// the shared_ptr lifetime the applier used to pay an allocation for.
  struct Job {
    std::uint32_t pool_index = 0;
    std::uint64_t serial = 0;  // 0 = idle; never reused while active
    Node* node = nullptr;
    std::vector<UpdateRecord> records;
    Options options;
    Done done;
    TxnId txn = kInvalidTxnId;
    std::size_t idx = 0;
    Report report;
  };

  Job* AcquireJob();
  void RecycleJob(Job* job);
  void ApplySharded(Node* node, const std::vector<UpdateRecord>& records,
                    const Options& options, Done done);
  void AcquireNext(Job* job);
  void ApplyCurrent(Job* job);
  void HandleDeadlock(Job* job);
  void FinishJob(Job* job);
  void Emit(TraceEventType type, const Job& job, ObjectId oid,
            std::string detail = "");
  obs::MetricsRegistry::Counter& ShardAppliedCounter(ShardId shard);

  runtime::Runtime* sim_;
  Executor* executor_;
  obs::MetricsRegistry* metrics_;
  // Cached metric handles; no-ops when built without a registry.
  obs::MetricsRegistry::Counter m_waits_;
  obs::MetricsRegistry::Counter m_applied_;
  obs::MetricsRegistry::Counter m_conflicts_;
  obs::MetricsRegistry::Counter m_stale_;
  obs::MetricsRegistry::Counter m_deadlocks_;
  obs::MetricsRegistry::Counter m_gave_up_;
  obs::MetricsRegistry::StatsHandle m_profile_apply_;
  // Lazily acquired `replica.shard_applied{shard=K}` handles, indexed
  // by shard (no-ops without a registry).
  std::vector<obs::MetricsRegistry::Counter> shard_applied_;
  TraceSink* trace_ = nullptr;
  std::size_t active_ = 0;
  /// Recycled job slots (unique_ptr for address stability) + free list.
  std::vector<std::unique_ptr<Job>> job_pool_;
  std::vector<std::uint32_t> free_jobs_;
  std::uint64_t next_serial_ = 1;
};

}  // namespace tdr

#endif  // TDR_REPLICATION_REPLICA_APPLIER_H_
