#ifndef TDR_REPLICATION_BATCH_SHIPPER_H_
#define TDR_REPLICATION_BATCH_SHIPPER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/message_pool.h"
#include "net/network.h"
#include "net/update_batch.h"
#include "obs/metrics.h"
#include "runtime/runtime.h"
#include "util/sim_time.h"

namespace tdr {

/// The batched log-shipping data plane shared by the lazy replication
/// schemes: one coalescing stream per (origin, destination) pair.
///
/// Instead of one replica-update message per committed transaction per
/// destination (N-1 messages per commit — the naive Figure-4 plane),
/// committed updates park in a per-destination UpdateBatchBuilder. A
/// stream flushes when EITHER
///   * `flush_window` has elapsed since its oldest pending update
///     (bounded staleness — the model prices this exactly like a
///     mobile node's Disconnect_Time, Eq. 18), or
///   * it holds `max_batch_updates` updates (size cap, bounding memory
///     and receiver lock-hold time).
/// Flushing stamps a sequence number and ships ONE message through the
/// simulated network; the scheme's deliver callback then applies it at
/// the destination (atomically per shard, via ReplicaApplier).
///
/// Everything is driven by the deterministic simulator clock: flush
/// events are ordinary sim events, so batched runs replay bit-identical
/// and sweep at any thread count. Crash/partition interplay comes free
/// from Network semantics — a flushed batch from a crashed or
/// partitioned origin queues in the outbox / on the cut link like any
/// other message (the stream is the recovery log).
class BatchShipper {
 public:
  struct Options {
    /// Max time an update waits before its stream flushes. Zero
    /// disables the timer entirely (flush on size cap / FlushAll only).
    SimTime flush_window = SimTime::Millis(50);
    /// Flush as soon as a stream holds this many updates (after
    /// compaction). Zero = unbounded, window-only flushing.
    std::size_t max_batch_updates = 128;
    /// Per-object chain compaction within a window (see UpdateBatch).
    bool coalesce = true;
  };

  /// Runs at the DESTINATION at delivery time.
  using DeliverFn = std::function<void(const UpdateBatch&)>;

  /// `stream` labels this shipper's metrics (e.g. "lazy-group").
  /// `metrics` may be null. `rt` and `net` must outlive the shipper.
  BatchShipper(runtime::Runtime* rt, Network* net, std::uint32_t num_nodes,
               std::string_view stream, obs::MetricsRegistry* metrics,
               Options options, DeliverFn deliver);

  /// Cancels pending flush events (they capture `this`).
  ~BatchShipper();

  BatchShipper(const BatchShipper&) = delete;
  BatchShipper& operator=(const BatchShipper&) = delete;

  /// Parks `records` on the (origin, dest) stream, arming the window
  /// timer on first use and flushing immediately at the size cap.
  void Enqueue(NodeId origin, NodeId dest,
               const std::vector<UpdateRecord>& records);

  /// Span form: parks `count` records starting at `records` (the
  /// allocation-free path for shipping a slice of a commit's updates).
  void Enqueue(NodeId origin, NodeId dest, const UpdateRecord* records,
               std::size_t count);

  /// Ships the (origin, dest) stream's pending batch now, if any.
  void Flush(NodeId origin, NodeId dest);

  /// Ships every pending batch of `origin`.
  void FlushFrom(NodeId origin);

  /// Ships every pending batch (end-of-window drain; also what a final
  /// convergence check must call before comparing replicas).
  void FlushAll();

  const Options& options() const { return options_; }
  std::uint64_t batches_shipped() const { return batches_shipped_; }
  std::uint64_t updates_shipped() const { return updates_shipped_; }
  std::uint64_t updates_coalesced() const { return updates_coalesced_; }
  /// Updates currently parked across all streams.
  std::size_t PendingUpdates() const;

 private:
  struct Stream {
    UpdateBatchBuilder builder;
    SimTime opened;
    sim::EventId flush_event = sim::kInvalidEventId;
    std::uint64_t next_seq = 1;
  };

  Stream& StreamOf(NodeId origin, NodeId dest) {
    return streams_[static_cast<std::size_t>(origin) * num_nodes_ + dest];
  }

  runtime::Runtime* sim_;
  Network* net_;
  std::uint32_t num_nodes_;
  Options options_;
  DeliverFn deliver_;
  // Common capacity floor for builders and pooled batches (they swap
  // buffers on flush); see the constructor.
  std::size_t reserve_floor_ = 0;
  std::vector<Stream> streams_;  // n*n, indexed origin*n + dest
  // Shipped batches ride the network as pooled leases (released when
  // the message is delivered or dropped), not per-flush allocations.
  net::SharedPool<UpdateBatch> batch_pool_;
  // Cached handles (no-ops without a registry).
  obs::MetricsRegistry::Counter m_batches_;
  obs::MetricsRegistry::Counter m_updates_;
  obs::MetricsRegistry::Counter m_coalesced_;
  obs::MetricsRegistry::HistogramHandle m_batch_size_;
  obs::MetricsRegistry::HistogramHandle m_flush_delay_us_;
  std::uint64_t batches_shipped_ = 0;
  std::uint64_t updates_shipped_ = 0;
  std::uint64_t updates_coalesced_ = 0;
};

}  // namespace tdr

#endif  // TDR_REPLICATION_BATCH_SHIPPER_H_
