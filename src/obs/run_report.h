#ifndef TDR_OBS_RUN_REPORT_H_
#define TDR_OBS_RUN_REPORT_H_

#include <string>
#include <string_view>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace tdr::obs {

/// The one machine-readable output format for every bench and chaos
/// run (schema id "tdr.run_report.v1"; tools/check_report.py validates
/// it). A report has fixed top-level sections, each optional except the
/// header, always emitted in the same order:
///
///   schema      "tdr.run_report.v1"
///   experiment  the bench/scenario name
///   config      knobs the run was launched with (insertion-ordered)
///   rows        the bench's table, one object per sweep point
///   metrics     deterministic MetricsSnapshot (name-sorted)
///   series      sim-clock TimeSeries, or merged TimeSeriesStats
///   invariants  invariant-checker summary (plain values; obs does not
///               depend on src/fault)
///   profile     WALL-CLOCK phase timings — nondeterministic by
///               design, kept out of every determinism comparison
///
/// Everything except `profile` is a pure function of (seed, plan):
/// byte-identical across replays and SweepRunner thread counts.
class RunReport {
 public:
  explicit RunReport(std::string experiment)
      : experiment_(std::move(experiment)),
        config_(Json::Object()),
        rows_(Json::Array()) {}

  /// Adds one config knob (emitted in insertion order).
  RunReport& SetConfig(std::string_view key, Json value) {
    config_.Set(key, std::move(value));
    return *this;
  }

  /// Appends one result row (an object; emitted in insertion order).
  RunReport& AddRow(Json row) {
    rows_.Push(std::move(row));
    return *this;
  }

  RunReport& SetMetrics(const MetricsSnapshot& snapshot) {
    metrics_ = MetricsToJson(snapshot);
    return *this;
  }

  RunReport& SetSeries(const TimeSeries& series) {
    series_ = SeriesToJson(series);
    return *this;
  }

  RunReport& SetSeries(const TimeSeriesStats& stats) {
    series_ = SeriesStatsToJson(stats);
    return *this;
  }

  /// Invariant-checker summary, passed as a prebuilt object so obs
  /// never depends on src/fault.
  RunReport& SetInvariants(Json summary) {
    invariants_ = std::move(summary);
    return *this;
  }

  /// Profile section from the registry's kProfile metrics (wall-clock;
  /// excluded from determinism guarantees).
  RunReport& SetProfile(const MetricsRegistry& registry);

  // --- Section serializers (also useful standalone in tests) ---------

  /// {"<name>": {"kind": ..., ...}, ...} in snapshot (= sorted) order.
  static Json MetricsToJson(const MetricsSnapshot& snapshot);
  static Json MetricValueToJson(const MetricValue& value);
  static Json SeriesToJson(const TimeSeries& series);
  static Json SeriesStatsToJson(const TimeSeriesStats& stats);

  Json ToJsonValue() const;
  std::string ToJson(int indent = 1) const {
    return ToJsonValue().Dump(indent);
  }

  /// Writes ToJson() plus a trailing newline; false on I/O failure.
  bool WriteFile(const std::string& path, int indent = 1) const;

 private:
  std::string experiment_;
  Json config_;
  Json rows_;
  Json metrics_;     // null until SetMetrics
  Json series_;      // null until SetSeries
  Json invariants_;  // null until SetInvariants
  Json profile_;     // null until SetProfile
};

}  // namespace tdr::obs

#endif  // TDR_OBS_RUN_REPORT_H_
