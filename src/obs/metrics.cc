#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace tdr::obs {

std::string_view MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
    case MetricKind::kStats:
      return "stats";
    case MetricKind::kProfile:
      return "profile";
  }
  return "?";
}

std::string MetricValue::ToString() const {
  switch (kind) {
    case MetricKind::kCounter:
      return name + "=" + std::to_string(counter);
    case MetricKind::kGauge: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", gauge);
      return name + "=" + buf;
    }
    case MetricKind::kHistogram:
      return name + "=[" + histogram.ToString() + "]";
    case MetricKind::kStats:
    case MetricKind::kProfile:
      return name + "=[" + stats.ToString() + "]";
  }
  return name + "=?";
}

const MetricValue* MetricsSnapshot::Find(std::string_view name) const {
  auto it = std::lower_bound(
      metrics.begin(), metrics.end(), name,
      [](const MetricValue& m, std::string_view n) { return m.name < n; });
  if (it == metrics.end() || it->name != name) return nullptr;
  return &*it;
}

std::uint64_t MetricsSnapshot::Counter(std::string_view name) const {
  const MetricValue* m = Find(name);
  return m != nullptr && m->kind == MetricKind::kCounter ? m->counter : 0;
}

void MetricsSnapshot::MergeCounter(std::string_view name,
                                   std::uint64_t delta) {
  auto it = std::lower_bound(
      metrics.begin(), metrics.end(), name,
      [](const MetricValue& m, std::string_view n) { return m.name < n; });
  if (it != metrics.end() && it->name == name) {
    it->counter += delta;
    return;
  }
  MetricValue v;
  v.name = std::string(name);
  v.kind = MetricKind::kCounter;
  v.counter = delta;
  metrics.insert(it, std::move(v));
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  // Merge-join over two name-sorted vectors; the result stays sorted.
  std::vector<MetricValue> merged;
  merged.reserve(metrics.size() + other.metrics.size());
  std::size_t i = 0, j = 0;
  while (i < metrics.size() || j < other.metrics.size()) {
    if (j >= other.metrics.size() ||
        (i < metrics.size() && metrics[i].name < other.metrics[j].name)) {
      merged.push_back(std::move(metrics[i++]));
      continue;
    }
    if (i >= metrics.size() || other.metrics[j].name < metrics[i].name) {
      merged.push_back(other.metrics[j++]);
      continue;
    }
    MetricValue m = std::move(metrics[i++]);
    const MetricValue& o = other.metrics[j++];
    assert(m.kind == o.kind && "metric kind mismatch in snapshot merge");
    switch (m.kind) {
      case MetricKind::kCounter:
        m.counter += o.counter;
        break;
      case MetricKind::kGauge:
        m.gauge += o.gauge;
        break;
      case MetricKind::kHistogram:
        m.histogram.Merge(o.histogram);
        break;
      case MetricKind::kStats:
      case MetricKind::kProfile:
        m.stats.Merge(o.stats);
        break;
    }
    merged.push_back(std::move(m));
  }
  metrics = std::move(merged);
}

std::string MetricsSnapshot::ToString() const {
  std::string out;
  for (const MetricValue& m : metrics) {
    out += m.ToString();
    out += '\n';
  }
  return out;
}

const std::string& MetricsRegistry::InternLabels(std::vector<Label> labels) {
  static const std::string kEmpty;
  if (labels.empty()) return kEmpty;
  std::sort(labels.begin(), labels.end(),
            [](const Label& a, const Label& b) { return a.key < b.key; });
  std::string suffix = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) suffix += ',';
    suffix += labels[i].key;
    suffix += '=';
    suffix += labels[i].value;
  }
  suffix += '}';
  auto it = label_index_.find(suffix);
  if (it != label_index_.end()) return *it->second;
  label_sets_.push_back(std::move(suffix));
  const std::string& interned = label_sets_.back();
  label_index_.emplace(interned, &interned);
  return interned;
}

MetricsRegistry::Metric* MetricsRegistry::Resolve(std::string_view name,
                                                  std::vector<Label> labels,
                                                  MetricKind kind) {
  const std::string& suffix = InternLabels(std::move(labels));
  std::string canonical;
  canonical.reserve(name.size() + suffix.size());
  canonical.append(name);
  canonical.append(suffix);
  auto it = index_.find(canonical);
  if (it != index_.end()) {
    Metric* m = &metrics_[it->second];
    assert(m->kind == kind && "metric re-registered under another kind");
    return m;
  }
  metrics_.emplace_back();
  Metric* m = &metrics_.back();
  m->kind = kind;
  index_.emplace(std::move(canonical), metrics_.size() - 1);
  return m;
}

MetricsRegistry::Counter MetricsRegistry::GetCounter(
    std::string_view name, std::vector<Label> labels) {
  return Counter(
      &Resolve(name, std::move(labels), MetricKind::kCounter)->counter);
}

MetricsRegistry::Gauge MetricsRegistry::GetGauge(std::string_view name,
                                                 std::vector<Label> labels) {
  return Gauge(&Resolve(name, std::move(labels), MetricKind::kGauge)->gauge);
}

MetricsRegistry::HistogramHandle MetricsRegistry::GetHistogram(
    std::string_view name, std::vector<Label> labels) {
  return HistogramHandle(
      &Resolve(name, std::move(labels), MetricKind::kHistogram)->histogram);
}

MetricsRegistry::StatsHandle MetricsRegistry::GetStats(
    std::string_view name, std::vector<Label> labels) {
  return StatsHandle(
      &Resolve(name, std::move(labels), MetricKind::kStats)->stats);
}

MetricsRegistry::StatsHandle MetricsRegistry::GetProfile(
    std::string_view name, std::vector<Label> labels) {
  return StatsHandle(
      &Resolve(name, std::move(labels), MetricKind::kProfile)->stats);
}

void MetricsRegistry::Increment(std::string_view name, std::uint64_t delta) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    Metric& m = metrics_[it->second];
    assert(m.kind == MetricKind::kCounter);
    m.counter += delta;
    return;
  }
  GetCounter(name).Increment(delta);
}

std::uint64_t MetricsRegistry::Get(std::string_view name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return 0;
  const Metric& m = metrics_[it->second];
  return m.kind == MetricKind::kCounter ? m.counter : 0;
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  GetGauge(name).Set(value);
}

double MetricsRegistry::Value(std::string_view name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return 0.0;
  const Metric& m = metrics_[it->second];
  switch (m.kind) {
    case MetricKind::kCounter:
      return static_cast<double>(m.counter);
    case MetricKind::kGauge:
      return m.gauge;
    default:
      return 0.0;
  }
}

void MetricsRegistry::Reset() {
  for (Metric& m : metrics_) {
    m.counter = 0;
    m.gauge = 0.0;
    m.histogram = Histogram();
    m.stats = OnlineStats();
  }
}

MetricsSnapshot MetricsRegistry::Snapshot(
    const SnapshotOptions& options) const {
  MetricsSnapshot snap;
  snap.metrics.reserve(metrics_.size());
  for (const auto& [canonical, idx] : index_) {  // sorted by name
    const Metric& m = metrics_[idx];
    if (m.kind == MetricKind::kProfile && !options.include_profile) continue;
    MetricValue v;
    v.name = canonical;
    v.kind = m.kind;
    v.counter = m.counter;
    v.gauge = m.gauge;
    v.histogram = m.histogram;
    v.stats = m.stats;
    snap.metrics.push_back(std::move(v));
  }
  return snap;
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::CounterSnapshot() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& [canonical, idx] : index_) {
    const Metric& m = metrics_[idx];
    if (m.kind == MetricKind::kCounter) out.emplace_back(canonical, m.counter);
  }
  return out;
}

std::string MetricsRegistry::ToString() const {
  SnapshotOptions all;
  all.include_profile = true;
  return Snapshot(all).ToString();
}

}  // namespace tdr::obs
