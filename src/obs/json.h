#ifndef TDR_OBS_JSON_H_
#define TDR_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tdr::obs {

/// Minimal deterministic JSON value for report and trace emission.
///
/// Guarantees the rest of obs depends on:
///  * object members keep INSERTION order (callers choose a canonical
///    order once; Dump never reorders);
///  * number formatting is a pure function of the bits (%lld for
///    integers, %.17g round-trip for doubles), so equal values dump to
///    equal bytes on every run and thread count;
///  * strings are escaped per RFC 8259 (control chars, quote,
///    backslash).
///
/// This is a writer's data model, not a parser — nothing in the repo
/// reads JSON back (tools/check_report.py does, in Python).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(double value) : type_(Type::kNumber), num_(value) {}
  Json(int value) : Json(static_cast<std::int64_t>(value)) {}
  Json(std::int64_t value)
      : type_(Type::kNumber), int_(value), is_int_(true) {}
  Json(std::uint64_t value);
  Json(std::string value) : type_(Type::kString), str_(std::move(value)) {}
  Json(std::string_view value) : Json(std::string(value)) {}
  Json(const char* value) : Json(std::string(value)) {}

  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  /// Object member set/replace (insertion order preserved). Returns
  /// *this for chaining.
  Json& Set(std::string_view key, Json value);
  /// Object member lookup; null if absent (or not an object).
  const Json* Find(std::string_view key) const;

  /// Array append. Returns *this for chaining.
  Json& Push(Json value);

  /// Array element access; null if out of range (or not an array).
  const Json* Item(std::size_t index) const;

  // Scalar reads for structural checks (tests walk emitted documents
  // with these). Each returns the fallback when the type differs.
  double AsDouble(double fallback = 0.0) const;
  std::int64_t AsInt(std::int64_t fallback = 0) const;
  const std::string& AsString() const { return str_; }
  bool AsBool(bool fallback = false) const {
    return type_ == Type::kBool ? bool_ : fallback;
  }

  std::size_t size() const;

  /// Serializes. indent == 0 is compact; indent > 0 pretty-prints with
  /// that many spaces per level. Both are deterministic.
  std::string Dump(int indent = 0) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;
  static void AppendEscaped(std::string* out, std::string_view s);

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  bool is_int_ = false;
  std::string str_;
  std::vector<std::pair<std::string, Json>> members_;  // kObject
  std::vector<Json> items_;                            // kArray
};

}  // namespace tdr::obs

#endif  // TDR_OBS_JSON_H_
