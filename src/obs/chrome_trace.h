#ifndef TDR_OBS_CHROME_TRACE_H_
#define TDR_OBS_CHROME_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "txn/trace.h"
#include "util/sim_time.h"

namespace tdr::obs {

/// Converts a protocol TraceEvent stream plus fault-injector events
/// into Chrome trace-event JSON, loadable in Perfetto
/// (https://ui.perfetto.dev) or chrome://tracing.
///
/// Track layout:
///  * one process ("node N") per cluster node, simulated micros as ts;
///  * user transactions as complete (`X`) slices on their origin node,
///    from kTxnStart to commit/abort, args carrying outcome and detail;
///  * replica-update transactions as `X` slices on the applying node;
///  * lock waits/grants, op applies, stale/conflict decisions as
///    instant (`i`) events on the node where they happened;
///  * flow events (`s`/`t`/`f`, id = origin txn) linking a committed
///    transaction at its origin to every replica application of its
///    updates — the paper's Figure 1/4 pipelines, drawn as arrows;
///  * fault-injector actions (crash, restart, partition, heal, chaos)
///    as global instants on a dedicated "faults" process.
///
/// Attach as the executor's (and appliers') TraceSink, feed faults via
/// OnFault, then ToJson()/WriteFile() once the run is over. Events are
/// buffered raw and converted at serialization time, when slice ends
/// and flow targets are known; output is sorted by (time, arrival), so
/// per-track timestamps are monotone. The writer is a pure function of
/// the event stream — deterministic runs produce byte-identical traces.
class ChromeTraceWriter : public TraceSink {
 public:
  struct Options {
    /// Emit per-op instant events (kOpApply etc.). On by default; turn
    /// off to shrink traces of long runs to just slices and flows.
    bool instants = true;
    /// Emit flow arrows from commits to replica applications.
    bool flows = true;
  };

  ChromeTraceWriter() : ChromeTraceWriter(Options()) {}
  explicit ChromeTraceWriter(Options options) : options_(options) {}

  // TraceSink:
  void OnEvent(const TraceEvent& event) override { events_.push_back(event); }

  /// Records one fault-injector action (the FaultInjector observer
  /// hook feeds this). `description` is the human-readable entry, e.g.
  /// "partition \"wedge\" (1 nodes split off)".
  void OnFault(SimTime time, std::string_view description) {
    faults_.emplace_back(time, std::string(description));
  }

  std::size_t event_count() const {
    return events_.size() + faults_.size();
  }

  /// The full trace document: {"traceEvents": [...], ...}.
  Json ToJsonValue() const;
  std::string ToJson() const { return ToJsonValue().Dump(); }

  /// Writes ToJson() to `path`; false on I/O failure.
  bool WriteFile(const std::string& path) const;

 private:
  Options options_;
  std::vector<TraceEvent> events_;
  std::vector<std::pair<SimTime, std::string>> faults_;
};

}  // namespace tdr::obs

#endif  // TDR_OBS_CHROME_TRACE_H_
