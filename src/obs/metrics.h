#ifndef TDR_OBS_METRICS_H_
#define TDR_OBS_METRICS_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/stats.h"

namespace tdr::obs {

/// What a metric measures. Kinds share one namespace: registering the
/// same canonical name under two kinds is a programming error.
enum class MetricKind : std::uint8_t {
  kCounter = 0,    // monotone uint64 (events, messages, deadlocks)
  kGauge = 1,      // last-write-wins double (queue depth, sim totals)
  kHistogram = 2,  // util/stats.h Histogram (latency-like uint64 values)
  kStats = 3,      // util/stats.h OnlineStats (Welford moments)
  kProfile = 4,    // OnlineStats of WALL-CLOCK micros (ProfileScope).
                   // Nondeterministic by nature, so Snapshot() excludes
                   // profile metrics unless explicitly asked — replay
                   // and sweep determinism must never depend on the
                   // host's clock.
};

std::string_view MetricKindName(MetricKind kind);

/// One label dimension of a metric, e.g. {"scheme", "lazy-master"}.
struct Label {
  std::string key;
  std::string value;
};

/// Point-in-time value of one metric (canonical name = base name plus
/// the interned label suffix, e.g. `replica.applied{node=3}`).
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter = 0;
  double gauge = 0.0;
  Histogram histogram;  // kHistogram only
  OnlineStats stats;    // kStats / kProfile only

  std::string ToString() const;
};

/// Deterministic snapshot of a registry: values sorted by canonical
/// name, independent of registration order. Snapshots from repetitions
/// of a sweep merge with `Merge` (counter addition, histogram bucket
/// addition, parallel Welford), in fixed block order, so merged results
/// are bit-stable at any SweepRunner thread count.
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;  // sorted by name

  const MetricValue* Find(std::string_view name) const;
  std::uint64_t Counter(std::string_view name) const;
  void Merge(const MetricsSnapshot& other);
  /// Adds `delta` to the named counter, inserting a kCounter entry at
  /// its sorted position if absent — how the multi-process backend
  /// folds per-process transport counters into one run snapshot.
  void MergeCounter(std::string_view name, std::uint64_t delta);
  std::string ToString() const;
};

struct SnapshotOptions {
  /// Include kProfile metrics (wall-clock, nondeterministic). Off by
  /// default so snapshots stay replay- and thread-count-stable.
  bool include_profile = false;
};

/// Labeled metrics registry: the cluster-wide instrumentation sink.
///
/// Hot paths acquire a handle once (name lookup, label interning — the
/// only place that allocates) and update through it in O(1) with no
/// allocation: a handle is a raw pointer at the metric's storage cell,
/// stable for the registry's lifetime (`std::deque` slabs never move).
/// A default-constructed handle is a no-op, so instrumented code runs
/// unchanged — and unmeasurably — when no registry is attached.
///
/// The registry is single-threaded by design, like everything else in
/// one simulation run; parallelism lives in SweepRunner, where each run
/// owns its registry and snapshots merge deterministically.
///
/// The string API (Increment/Get) serves cold paths and keeps the call
/// sites of the retired CounterRegistry working verbatim; it performs a
/// transparent (no-copy) map lookup per call.
class MetricsRegistry {
 public:
  class Counter {
   public:
    Counter() = default;
    void Increment(std::uint64_t delta = 1) {
      if (cell_ != nullptr) *cell_ += delta;
    }
    std::uint64_t value() const { return cell_ != nullptr ? *cell_ : 0; }

   private:
    friend class MetricsRegistry;
    explicit Counter(std::uint64_t* cell) : cell_(cell) {}
    std::uint64_t* cell_ = nullptr;
  };

  class Gauge {
   public:
    Gauge() = default;
    void Set(double value) {
      if (cell_ != nullptr) *cell_ = value;
    }
    void Add(double delta) {
      if (cell_ != nullptr) *cell_ += delta;
    }
    double value() const { return cell_ != nullptr ? *cell_ : 0.0; }

   private:
    friend class MetricsRegistry;
    explicit Gauge(double* cell) : cell_(cell) {}
    double* cell_ = nullptr;
  };

  class HistogramHandle {
   public:
    HistogramHandle() = default;
    void Record(std::uint64_t value) {
      if (hist_ != nullptr) hist_->Add(value);
    }
    /// Null for a no-op handle.
    const Histogram* histogram() const { return hist_; }

   private:
    friend class MetricsRegistry;
    explicit HistogramHandle(Histogram* hist) : hist_(hist) {}
    Histogram* hist_ = nullptr;
  };

  class StatsHandle {
   public:
    StatsHandle() = default;
    void Record(double value) {
      if (stats_ != nullptr) stats_->Add(value);
    }
    const OnlineStats* stats() const { return stats_; }

   private:
    friend class MetricsRegistry;
    explicit StatsHandle(OnlineStats* stats) : stats_(stats) {}
    OnlineStats* stats_ = nullptr;
  };

  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- Handle acquisition (cold; allocates on first registration) ----
  // The same (name, labels) always yields a handle at the same cell,
  // so handles may be acquired redundantly and cached freely.

  Counter GetCounter(std::string_view name, std::vector<Label> labels = {});
  Gauge GetGauge(std::string_view name, std::vector<Label> labels = {});
  HistogramHandle GetHistogram(std::string_view name,
                               std::vector<Label> labels = {});
  StatsHandle GetStats(std::string_view name, std::vector<Label> labels = {});
  /// Like GetStats but kind kProfile: wall-clock values, excluded from
  /// deterministic snapshots (see MetricKind::kProfile).
  StatsHandle GetProfile(std::string_view name,
                         std::vector<Label> labels = {});

  // --- String API (cold-path convenience, CounterRegistry-compatible) -

  void Increment(std::string_view name, std::uint64_t delta = 1);
  /// Counter value; 0 if the name is unknown (or not a counter).
  std::uint64_t Get(std::string_view name) const;
  void SetGauge(std::string_view name, double value);
  /// Counter or gauge value as a double (what TimeSeriesRecorder
  /// samples); 0 for unknown names and non-scalar kinds.
  double Value(std::string_view name) const;

  /// Zeroes every value. Registrations — and outstanding handles — stay
  /// valid.
  void Reset();

  std::size_t size() const { return metrics_.size(); }
  /// Distinct label sets interned so far (the empty set not counted).
  std::size_t label_sets_interned() const { return label_sets_.size(); }

  MetricsSnapshot Snapshot(const SnapshotOptions& options = {}) const;
  /// Sorted (name, value) pairs of the counters only — the old
  /// CounterRegistry::Snapshot shape, kept for table printing.
  std::vector<std::pair<std::string, std::uint64_t>> CounterSnapshot() const;
  std::string ToString() const;

 private:
  struct Metric {
    MetricKind kind = MetricKind::kCounter;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    Histogram histogram;
    OnlineStats stats;
  };

  /// Interns the label set, returning the canonical suffix ("" for no
  /// labels, else "{k=v,...}" with keys sorted).
  const std::string& InternLabels(std::vector<Label> labels);
  Metric* Resolve(std::string_view name, std::vector<Label> labels,
                  MetricKind kind);

  // Slab of metric storage; deque never relocates, so handles stay
  // valid for the registry's lifetime.
  std::deque<Metric> metrics_;
  // Canonical name -> slab index. Sorted map = deterministic iteration
  // independent of registration order. Transparent comparator: lookups
  // by string_view never build a temporary std::string.
  std::map<std::string, std::size_t, std::less<>> index_;
  // Interned label suffixes (deduplicated, stable addresses).
  std::deque<std::string> label_sets_;
  std::map<std::string, const std::string*, std::less<>> label_index_;
};

}  // namespace tdr::obs

#endif  // TDR_OBS_METRICS_H_
