#include "obs/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace tdr::obs {

Json::Json(std::uint64_t value) : type_(Type::kNumber) {
  if (value <= static_cast<std::uint64_t>(INT64_MAX)) {
    int_ = static_cast<std::int64_t>(value);
    is_int_ = true;
  } else {
    num_ = static_cast<double>(value);
  }
}

Json& Json::Set(std::string_view key, Json value) {
  assert(type_ == Type::kObject);
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
  return *this;
}

const Json* Json::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::Push(Json value) {
  assert(type_ == Type::kArray);
  items_.push_back(std::move(value));
  return *this;
}

const Json* Json::Item(std::size_t index) const {
  if (type_ != Type::kArray || index >= items_.size()) return nullptr;
  return &items_[index];
}

double Json::AsDouble(double fallback) const {
  if (type_ != Type::kNumber) return fallback;
  return is_int_ ? static_cast<double>(int_) : num_;
}

std::int64_t Json::AsInt(std::int64_t fallback) const {
  if (type_ != Type::kNumber) return fallback;
  return is_int_ ? int_ : static_cast<std::int64_t>(num_);
}

std::size_t Json::size() const {
  switch (type_) {
    case Type::kObject:
      return members_.size();
    case Type::kArray:
      return items_.size();
    default:
      return 0;
  }
}

void Json::AppendEscaped(std::string* out, std::string_view s) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

namespace {

void Indent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<std::size_t>(indent) *
                  static_cast<std::size_t>(depth),
              ' ');
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber: {
      char buf[40];
      if (is_int_) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(int_));
      } else if (!std::isfinite(num_)) {
        // JSON has no inf/nan; null is the least-lossy encoding.
        std::snprintf(buf, sizeof(buf), "null");
      } else if (num_ == std::floor(num_) && std::fabs(num_) < 9e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", num_);
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", num_);
      }
      *out += buf;
      return;
    }
    case Type::kString:
      AppendEscaped(out, str_);
      return;
    case Type::kArray: {
      if (items_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        Indent(out, indent, depth + 1);
        items_[i].DumpTo(out, indent, depth + 1);
      }
      Indent(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        Indent(out, indent, depth + 1);
        AppendEscaped(out, members_[i].first);
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      Indent(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

}  // namespace tdr::obs
