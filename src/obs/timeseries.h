#ifndef TDR_OBS_TIMESERIES_H_
#define TDR_OBS_TIMESERIES_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "runtime/runtime.h"
#include "util/sim_time.h"
#include "util/stats.h"

namespace tdr::obs {

/// A fixed-interval recording of selected metrics over one run. Sample
/// k of a channel is the metric's value at sim time (k+1) * interval
/// (cumulative channels) or the increment over the k-th interval (rate
/// channels). Channels are name-sorted, so the series — like a metrics
/// snapshot — is independent of registration order.
struct TimeSeries {
  double interval_seconds = 0.0;
  struct Channel {
    std::string name;
    bool rate = false;
    std::vector<double> values;
  };
  std::vector<Channel> channels;  // sorted by name

  std::size_t samples() const {
    return channels.empty() ? 0 : channels.front().values.size();
  }
  const Channel* Find(std::string_view name) const;
  std::string ToString() const;
};

/// Per-bucket Welford moments over many TimeSeries — how parallel
/// sweeps aggregate repetitions. Add() each run's series (channels must
/// match), Merge() partial accumulations blockwise in fixed block order
/// (OnlineStats::Merge is the parallel-Welford combine), and the merged
/// moments are bit-stable at any SweepRunner thread count.
struct TimeSeriesStats {
  double interval_seconds = 0.0;
  struct Channel {
    std::string name;
    std::vector<OnlineStats> buckets;
  };
  std::vector<Channel> channels;

  void Add(const TimeSeries& series);
  void Merge(const TimeSeriesStats& other);
};

/// Samples registry metrics on the SIMULATOR clock — never wall time —
/// so a recording is as deterministic as the run that produced it: the
/// same (seed, plan) yields the same series, bit for bit, on any
/// machine at any sweep thread count.
class TimeSeriesRecorder {
 public:
  struct Options {
    SimTime interval = SimTime::Millis(500);
  };

  /// `rt` and `registry` must outlive the recorder.
  TimeSeriesRecorder(runtime::Runtime* rt, MetricsRegistry* registry)
      : TimeSeriesRecorder(rt, registry, Options()) {}
  TimeSeriesRecorder(runtime::Runtime* rt, MetricsRegistry* registry,
                     Options options);
  ~TimeSeriesRecorder();

  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  /// Registers a channel sampling the metric's cumulative value. Call
  /// before Start(). `name` is the canonical metric name (counter or
  /// gauge).
  void Track(std::string_view name);
  /// Registers a channel sampling the per-interval increment.
  void TrackRate(std::string_view name);

  /// Begins sampling: one sample per interval from Now() + interval.
  void Start();
  /// Stops sampling (idempotent; the destructor calls it too).
  void Stop();

  bool running() const { return series_id_ != sim::kInvalidEventId; }

  /// The recording so far; channels sorted by name.
  TimeSeries Series() const;

 private:
  struct Channel {
    std::string name;
    bool rate = false;
    double last = 0.0;
    std::vector<double> values;
  };

  void SampleAll();

  runtime::Runtime* sim_;
  MetricsRegistry* registry_;
  Options options_;
  std::vector<Channel> channels_;
  sim::EventId series_id_ = sim::kInvalidEventId;
};

}  // namespace tdr::obs

#endif  // TDR_OBS_TIMESERIES_H_
