#include "obs/chrome_trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

namespace tdr::obs {

namespace {

// The faults track needs a pid no node can collide with; NodeId is
// 32-bit so this is out of range by construction.
constexpr std::int64_t kFaultPid = static_cast<std::int64_t>(1) << 40;

struct Entry {
  std::int64_t ts = 0;    // micros
  std::size_t seq = 0;    // arrival order, the tie-breaker
  Json json;
};

Json MakeEvent(const char* ph, std::string_view name, std::int64_t ts,
               std::int64_t pid, std::int64_t tid) {
  Json e = Json::Object();
  e.Set("name", name);
  e.Set("ph", ph);
  e.Set("ts", ts);
  e.Set("pid", pid);
  e.Set("tid", tid);
  return e;
}

const char* OutcomeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kTxnCommit:
      return "commit";
    case TraceEventType::kTxnAbort:
      return "abort";
    case TraceEventType::kReplicaTxnDone:
      return "done";
    default:
      return "unfinished";
  }
}

}  // namespace

Json ChromeTraceWriter::ToJsonValue() const {
  // Pass 1: index transaction lifetimes and flow targets. A slice is a
  // (start, end) pair keyed by TxnId — ids are globally unique, so one
  // map covers user and replica transactions alike.
  std::map<TxnId, const TraceEvent*> starts;
  std::map<TxnId, const TraceEvent*> ends;
  // Origin txn -> its replica-update transactions, in arrival order
  // (arrival order is simulated-time order: the executor emits events
  // as the simulator executes them).
  std::map<TxnId, std::vector<const TraceEvent*>> applies_by_root;
  std::set<std::int64_t> pids;
  std::int64_t last_ts = 0;

  for (const TraceEvent& e : events_) {
    pids.insert(static_cast<std::int64_t>(e.node));
    last_ts = std::max(last_ts, e.time.micros());
    switch (e.type) {
      case TraceEventType::kTxnStart:
      case TraceEventType::kReplicaTxnStart:
        starts.emplace(e.txn, &e);
        if (e.type == TraceEventType::kReplicaTxnStart &&
            e.root != kInvalidTxnId) {
          applies_by_root[e.root].push_back(&e);
        }
        break;
      case TraceEventType::kTxnCommit:
      case TraceEventType::kTxnAbort:
      case TraceEventType::kReplicaTxnDone:
        ends.emplace(e.txn, &e);
        break;
      default:
        break;
    }
  }
  for (const auto& [time, desc] : faults_) {
    (void)desc;
    last_ts = std::max(last_ts, time.micros());
  }

  // Pass 2: emit entries.
  std::vector<Entry> entries;
  entries.reserve(events_.size() + faults_.size());
  std::size_t seq = 0;

  auto add = [&](std::int64_t ts, Json json) {
    entries.push_back(Entry{ts, seq++, std::move(json)});
  };

  for (const TraceEvent& e : events_) {
    const auto pid = static_cast<std::int64_t>(e.node);
    const auto tid = static_cast<std::int64_t>(e.txn);
    switch (e.type) {
      case TraceEventType::kTxnStart:
      case TraceEventType::kReplicaTxnStart: {
        // Slices are emitted as complete (`X`) events at their START
        // time — concurrent transactions on one node would make B/E
        // pairs nest incorrectly, but each txn has its own tid so X
        // slices land on their own row.
        const TraceEvent* end = nullptr;
        if (auto it = ends.find(e.txn); it != ends.end()) end = it->second;
        const std::int64_t start_ts = e.time.micros();
        const std::int64_t end_ts = end != nullptr ? end->time.micros()
                                                   : last_ts;
        char name[48];
        std::snprintf(name, sizeof(name), "%s %llu",
                      e.type == TraceEventType::kTxnStart ? "txn"
                                                          : "replica-txn",
                      static_cast<unsigned long long>(e.txn));
        Json slice = MakeEvent("X", name, start_ts, pid, tid);
        slice.Set("dur", end_ts - start_ts);
        Json args = Json::Object();
        args.Set("outcome",
                 OutcomeName(end != nullptr ? end->type : e.type));
        if (!e.detail.empty()) args.Set("detail", e.detail);
        if (end != nullptr && !end->detail.empty()) {
          args.Set("end_detail", end->detail);
        }
        if (e.root != kInvalidTxnId) {
          args.Set("origin_txn", static_cast<std::uint64_t>(e.root));
        }
        slice.Set("args", std::move(args));
        add(start_ts, std::move(slice));
        break;
      }
      case TraceEventType::kTxnCommit: {
        // Flow origin: one arrow fans out from this commit to every
        // replica application of its updates.
        if (!options_.flows) break;
        auto it = applies_by_root.find(e.txn);
        if (it == applies_by_root.end()) break;
        Json flow = MakeEvent("s", "replicate", e.time.micros(), pid, tid);
        flow.Set("id", static_cast<std::uint64_t>(e.txn));
        add(e.time.micros(), std::move(flow));
        break;
      }
      case TraceEventType::kTxnAbort:
      case TraceEventType::kReplicaTxnDone:
        // Slice end; already folded into the X event.
        break;
      default: {
        if (!options_.instants) break;
        Json inst = MakeEvent("i", TraceEventTypeToString(e.type),
                              e.time.micros(), pid, tid);
        inst.Set("s", "t");
        if (!e.detail.empty() || e.oid != 0) {
          Json args = Json::Object();
          args.Set("oid", static_cast<std::uint64_t>(e.oid));
          if (!e.detail.empty()) args.Set("detail", e.detail);
          inst.Set("args", std::move(args));
        }
        add(e.time.micros(), std::move(inst));
        break;
      }
    }
  }

  // Flow steps/ends: bind each replica-update slice back to its origin
  // commit. The last application terminates the flow ("f" with
  // bp:"e"); intermediate ones are steps ("t").
  if (options_.flows) {
    for (const auto& [root, applies] : applies_by_root) {
      for (std::size_t i = 0; i < applies.size(); ++i) {
        const TraceEvent& e = *applies[i];
        const bool final_step = i + 1 == applies.size();
        Json flow = MakeEvent(final_step ? "f" : "t", "replicate",
                              e.time.micros(),
                              static_cast<std::int64_t>(e.node),
                              static_cast<std::int64_t>(e.txn));
        flow.Set("id", static_cast<std::uint64_t>(root));
        if (final_step) flow.Set("bp", "e");
        add(e.time.micros(), std::move(flow));
      }
    }
  }

  for (const auto& [time, desc] : faults_) {
    Json inst = MakeEvent("i", desc, time.micros(), kFaultPid, 0);
    inst.Set("s", "g");
    add(time.micros(), std::move(inst));
  }

  // Monotone per-track timestamps: sort globally by (ts, arrival).
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.seq < b.seq;
                   });

  Json trace_events = Json::Array();
  // Metadata first: name the node tracks and the faults track.
  for (std::int64_t pid : pids) {
    Json meta = MakeEvent("M", "process_name", 0, pid, 0);
    char name[32];
    std::snprintf(name, sizeof(name), "node %lld",
                  static_cast<long long>(pid));
    meta.Set("args", Json::Object().Set("name", name));
    trace_events.Push(std::move(meta));
  }
  if (!faults_.empty()) {
    Json meta = MakeEvent("M", "process_name", 0, kFaultPid, 0);
    meta.Set("args", Json::Object().Set("name", "faults"));
    trace_events.Push(std::move(meta));
  }
  for (Entry& entry : entries) {
    trace_events.Push(std::move(entry.json));
  }

  Json doc = Json::Object();
  doc.Set("traceEvents", std::move(trace_events));
  doc.Set("displayTimeUnit", "ms");
  return doc;
}

bool ChromeTraceWriter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = ToJsonValue().Dump(1);
  const bool ok =
      std::fwrite(body.data(), 1, body.size(), f) == body.size() &&
      std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace tdr::obs
