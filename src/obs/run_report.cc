#include "obs/run_report.h"

#include <cstdio>

namespace tdr::obs {

Json RunReport::MetricValueToJson(const MetricValue& value) {
  Json v = Json::Object();
  v.Set("kind", MetricKindName(value.kind));
  switch (value.kind) {
    case MetricKind::kCounter:
      v.Set("value", value.counter);
      break;
    case MetricKind::kGauge:
      v.Set("value", value.gauge);
      break;
    case MetricKind::kHistogram:
      v.Set("count", value.histogram.count());
      v.Set("mean", value.histogram.mean());
      v.Set("min", value.histogram.min());
      v.Set("max", value.histogram.max());
      v.Set("p50", value.histogram.Percentile(50.0));
      v.Set("p95", value.histogram.Percentile(95.0));
      v.Set("p99", value.histogram.Percentile(99.0));
      break;
    case MetricKind::kStats:
    case MetricKind::kProfile:
      v.Set("count", value.stats.count());
      v.Set("mean", value.stats.mean());
      v.Set("stddev", value.stats.stddev());
      v.Set("min", value.stats.min());
      v.Set("max", value.stats.max());
      break;
  }
  return v;
}

Json RunReport::MetricsToJson(const MetricsSnapshot& snapshot) {
  Json out = Json::Object();
  for (const MetricValue& value : snapshot.metrics) {
    out.Set(value.name, MetricValueToJson(value));
  }
  return out;
}

Json RunReport::SeriesToJson(const TimeSeries& series) {
  Json out = Json::Object();
  out.Set("interval_seconds", series.interval_seconds);
  out.Set("samples", static_cast<std::uint64_t>(series.samples()));
  Json channels = Json::Array();
  for (const TimeSeries::Channel& channel : series.channels) {
    Json c = Json::Object();
    c.Set("name", channel.name);
    c.Set("rate", channel.rate);
    Json values = Json::Array();
    for (double v : channel.values) values.Push(v);
    c.Set("values", std::move(values));
    channels.Push(std::move(c));
  }
  out.Set("channels", std::move(channels));
  return out;
}

Json RunReport::SeriesStatsToJson(const TimeSeriesStats& stats) {
  Json out = Json::Object();
  out.Set("interval_seconds", stats.interval_seconds);
  Json channels = Json::Array();
  for (const TimeSeriesStats::Channel& channel : stats.channels) {
    Json c = Json::Object();
    c.Set("name", channel.name);
    Json mean = Json::Array();
    Json stddev = Json::Array();
    Json count = Json::Array();
    for (const OnlineStats& bucket : channel.buckets) {
      mean.Push(bucket.mean());
      stddev.Push(bucket.stddev());
      count.Push(bucket.count());
    }
    c.Set("mean", std::move(mean));
    c.Set("stddev", std::move(stddev));
    c.Set("count", std::move(count));
    channels.Push(std::move(c));
  }
  out.Set("channels", std::move(channels));
  return out;
}

RunReport& RunReport::SetProfile(const MetricsRegistry& registry) {
  SnapshotOptions options;
  options.include_profile = true;
  Json out = Json::Object();
  for (const MetricValue& value : registry.Snapshot(options).metrics) {
    if (value.kind != MetricKind::kProfile) continue;
    out.Set(value.name, MetricValueToJson(value));
  }
  profile_ = std::move(out);
  return *this;
}

Json RunReport::ToJsonValue() const {
  Json doc = Json::Object();
  doc.Set("schema", "tdr.run_report.v1");
  doc.Set("experiment", experiment_);
  doc.Set("config", config_);
  doc.Set("rows", rows_);
  if (!metrics_.is_null()) doc.Set("metrics", metrics_);
  if (!series_.is_null()) doc.Set("series", series_);
  if (!invariants_.is_null()) doc.Set("invariants", invariants_);
  if (!profile_.is_null()) doc.Set("profile", profile_);
  return doc;
}

bool RunReport::WriteFile(const std::string& path, int indent) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = ToJson(indent);
  const bool ok =
      std::fwrite(body.data(), 1, body.size(), f) == body.size() &&
      std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace tdr::obs
