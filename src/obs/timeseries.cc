#include "obs/timeseries.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace tdr::obs {

const TimeSeries::Channel* TimeSeries::Find(std::string_view name) const {
  for (const Channel& c : channels) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::string TimeSeries::ToString() const {
  char head[64];
  std::snprintf(head, sizeof(head), "interval=%.6gs samples=%zu\n",
                interval_seconds, samples());
  std::string out = head;
  for (const Channel& c : channels) {
    out += c.name;
    out += c.rate ? " (rate):" : ":";
    for (double v : c.values) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), " %.6g", v);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

void TimeSeriesStats::Add(const TimeSeries& series) {
  if (channels.empty()) {
    interval_seconds = series.interval_seconds;
    channels.reserve(series.channels.size());
    for (const TimeSeries::Channel& c : series.channels) {
      channels.push_back(Channel{c.name, {}});
    }
  }
  assert(channels.size() == series.channels.size() &&
         "TimeSeriesStats::Add: channel sets differ");
  for (std::size_t i = 0; i < channels.size(); ++i) {
    assert(channels[i].name == series.channels[i].name);
    const std::vector<double>& values = series.channels[i].values;
    std::vector<OnlineStats>& buckets = channels[i].buckets;
    if (buckets.size() < values.size()) buckets.resize(values.size());
    for (std::size_t k = 0; k < values.size(); ++k) {
      buckets[k].Add(values[k]);
    }
  }
}

void TimeSeriesStats::Merge(const TimeSeriesStats& other) {
  if (other.channels.empty()) return;
  if (channels.empty()) {
    *this = other;
    return;
  }
  assert(channels.size() == other.channels.size() &&
         "TimeSeriesStats::Merge: channel sets differ");
  for (std::size_t i = 0; i < channels.size(); ++i) {
    assert(channels[i].name == other.channels[i].name);
    std::vector<OnlineStats>& buckets = channels[i].buckets;
    const std::vector<OnlineStats>& theirs = other.channels[i].buckets;
    if (buckets.size() < theirs.size()) buckets.resize(theirs.size());
    for (std::size_t k = 0; k < theirs.size(); ++k) {
      buckets[k].Merge(theirs[k]);
    }
  }
}

TimeSeriesRecorder::TimeSeriesRecorder(runtime::Runtime* rt,
                                       MetricsRegistry* registry,
                                       Options options)
    : sim_(rt), registry_(registry), options_(options) {}

TimeSeriesRecorder::~TimeSeriesRecorder() { Stop(); }

void TimeSeriesRecorder::Track(std::string_view name) {
  assert(!running() && "Track() must precede Start()");
  channels_.push_back(Channel{std::string(name), false, 0.0, {}});
}

void TimeSeriesRecorder::TrackRate(std::string_view name) {
  assert(!running() && "TrackRate() must precede Start()");
  channels_.push_back(Channel{std::string(name), true, 0.0, {}});
}

void TimeSeriesRecorder::Start() {
  if (running()) return;
  std::sort(channels_.begin(), channels_.end(),
            [](const Channel& a, const Channel& b) { return a.name < b.name; });
  for (Channel& c : channels_) {
    c.last = registry_->Value(c.name);
  }
  series_id_ =
      sim_->RepeatEvery(options_.interval, [this]() { SampleAll(); });
}

void TimeSeriesRecorder::Stop() {
  if (!running()) return;
  sim_->Cancel(series_id_);
  series_id_ = sim::kInvalidEventId;
}

void TimeSeriesRecorder::SampleAll() {
  for (Channel& c : channels_) {
    double now = registry_->Value(c.name);
    c.values.push_back(c.rate ? now - c.last : now);
    c.last = now;
  }
}

TimeSeries TimeSeriesRecorder::Series() const {
  TimeSeries out;
  out.interval_seconds = options_.interval.seconds();
  out.channels.reserve(channels_.size());
  for (const Channel& c : channels_) {
    out.channels.push_back(TimeSeries::Channel{c.name, c.rate, c.values});
  }
  return out;
}

}  // namespace tdr::obs
