#ifndef TDR_OBS_PROFILE_H_
#define TDR_OBS_PROFILE_H_

#include "obs/metrics.h"

// Compiled in (1) or out (0) by the TDR_PROFILING CMake option. When
// out, ProfileScope is an empty type and the compiler deletes every
// scope entirely — the instrumented hot paths carry zero cost.
#ifndef TDR_PROFILING_ENABLED
#define TDR_PROFILING_ENABLED 1
#endif

#if TDR_PROFILING_ENABLED
#include <chrono>
#endif

namespace tdr::obs {

/// RAII wall-clock timer for a real execution phase (event loop, lock
/// acquisition, replica apply, invariant sweep): records the scope's
/// elapsed WALL micros into a kProfile stats metric at destruction.
///
/// Profile metrics measure the host, not the simulation, so they are
/// nondeterministic by nature; the registry keeps them out of
/// deterministic snapshots (see MetricKind::kProfile) and RunReport
/// emits them in a separate, explicitly nondeterministic section.
///
///   obs::ProfileScope scope(registry->GetProfile("profile.replica_apply"));
///
/// Acquire the StatsHandle once (cold) and pass it by value; a default
/// (no-op) handle makes the scope free even when profiling is compiled
/// in.
class ProfileScope {
 public:
#if TDR_PROFILING_ENABLED
  explicit ProfileScope(MetricsRegistry::StatsHandle handle)
      : handle_(handle), start_(std::chrono::steady_clock::now()) {}
  ~ProfileScope() {
    auto elapsed = std::chrono::steady_clock::now() - start_;
    handle_.Record(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }
#else
  explicit ProfileScope(MetricsRegistry::StatsHandle) {}
#endif

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
#if TDR_PROFILING_ENABLED
  MetricsRegistry::StatsHandle handle_;
  std::chrono::steady_clock::time_point start_;
#endif
};

}  // namespace tdr::obs

#endif  // TDR_OBS_PROFILE_H_
