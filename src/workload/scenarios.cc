#include "workload/scenarios.h"

#include <cassert>

#include "util/logging.h"

namespace tdr {

TpcbWorkload::TpcbWorkload(Options options) : options_(options) {
  assert(options_.branches > 0);
  assert(options_.tellers_per_branch > 0);
  assert(options_.accounts_per_branch > 0);
  assert(options_.history_partitions > 0);
  db_size_ = static_cast<std::uint64_t>(options_.branches) +
             tellers() + accounts() + options_.history_partitions;
}

ObjectId TpcbWorkload::BranchId(std::uint32_t branch) const {
  assert(branch < options_.branches);
  return branch;
}

ObjectId TpcbWorkload::TellerId(std::uint32_t teller) const {
  assert(teller < tellers());
  return options_.branches + teller;
}

ObjectId TpcbWorkload::AccountId(std::uint32_t account) const {
  assert(account < accounts());
  return options_.branches + tellers() + account;
}

ObjectId TpcbWorkload::HistoryId(std::uint32_t partition) const {
  assert(partition < options_.history_partitions);
  return options_.branches + tellers() + accounts() + partition;
}

Program TpcbWorkload::NextTransaction(Rng& rng,
                                      std::int64_t history_stamp) {
  std::uint32_t teller =
      static_cast<std::uint32_t>(rng.UniformInt(tellers()));
  std::uint32_t branch = BranchOfTeller(teller);
  std::uint32_t account = branch * options_.accounts_per_branch +
                          static_cast<std::uint32_t>(
                              rng.UniformInt(options_.accounts_per_branch));
  std::int64_t amount = rng.UniformRange(1, options_.max_amount);
  if (rng.Bernoulli(0.5)) amount = -amount;  // debit or credit
  std::uint32_t partition = static_cast<std::uint32_t>(
      rng.UniformInt(options_.history_partitions));
  Program p;
  p.Add(Op::Add(AccountId(account), amount));
  p.Add(Op::Add(TellerId(teller), amount));
  p.Add(Op::Add(BranchId(branch), amount));
  p.Add(Op::Append(HistoryId(partition), history_stamp));
  return p;
}

std::string TpcbWorkload::Describe() const {
  return StrPrintf(
      "TPC-B-style: %u branches x %u tellers x %u accounts, %u history "
      "partitions, %llu objects",
      options_.branches, options_.tellers_per_branch,
      options_.accounts_per_branch, options_.history_partitions,
      (unsigned long long)db_size_);
}

ProgramGenerator::Options HotColdShardScenario::MakeGeneratorOptions()
    const {
  ProgramGenerator::Options opts;
  opts.db_size = db_size;
  opts.actions = actions;
  opts.mix = OpMix::AllWrites();
  opts.skew_num_shards = num_shards;
  opts.skew_hot_shards = hot_shards;
  opts.skew_hot_fraction = hot_fraction;
  return opts;
}

std::string HotColdShardScenario::Describe() const {
  return StrPrintf(
      "hot/cold shards: %llu objects in %u shards, %.0f%% of picks in "
      "the first %u shard(s), %u actions/txn",
      (unsigned long long)db_size, num_shards, hot_fraction * 100.0,
      hot_shards, actions);
}

}  // namespace tdr
