#ifndef TDR_WORKLOAD_WORKLOAD_H_
#define TDR_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "runtime/runtime.h"
#include "txn/program.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace tdr {

/// Relative weights of op types in generated transactions. The paper's
/// base model is all-updates ("Inserts and deletes are modeled as
/// updates. Reads are ignored."); the default mix is 100% blind writes.
/// Commutative mixes model the §6/§7 designed-to-commute workloads.
struct OpMix {
  double write = 1.0;     // blind record-value write (NOT commutative)
  double add = 0.0;       // commutative increment
  double subtract = 0.0;  // commutative decrement
  double append = 0.0;    // commutative timestamped append
  double read = 0.0;      // reads (ignored by the model; for extensions)

  static OpMix AllWrites() { return OpMix{1, 0, 0, 0, 0}; }
  static OpMix AllCommutative() { return OpMix{0, 0.5, 0.5, 0, 0}; }
  static OpMix Mixed(double commutative_fraction) {
    OpMix m;
    m.write = 1.0 - commutative_fraction;
    m.add = commutative_fraction / 2;
    m.subtract = commutative_fraction / 2;
    return m;
  }
};

/// Generates transaction programs per the Table 2 model: each
/// transaction touches `actions` objects "chosen uniformly from the
/// database" (no hotspots), each with one update action. A Zipfian
/// skew knob exists for the hotspot ablation.
class ProgramGenerator {
 public:
  struct Options {
    std::uint64_t db_size = 10000;
    std::uint32_t actions = 4;
    OpMix mix;
    /// Objects per transaction are distinct (the model counts distinct
    /// resources); turn off to allow repeats.
    bool distinct_objects = true;
    /// 0 = uniform access (the paper's model); (0,1) = Zipfian skew.
    double zipf_theta = 0.0;
    /// Hot/cold SHARD skew (the bench_sharding scenario). With
    /// skew_hot_shards > 0, the key space is viewed as skew_num_shards
    /// contiguous range shards (set it to match
    /// Cluster::Options::num_shards) and each object pick lands in the
    /// first skew_hot_shards shards with probability skew_hot_fraction,
    /// uniform within the chosen region. Composes with
    /// distinct_objects; mutually exclusive with zipf_theta.
    std::uint32_t skew_num_shards = 0;
    std::uint32_t skew_hot_shards = 0;
    double skew_hot_fraction = 0.0;
    /// Operand range for arithmetic/write/append ops.
    std::int64_t operand_lo = 1;
    std::int64_t operand_hi = 100;
  };

  explicit ProgramGenerator(Options options);

  /// Generates the next random program using `rng`.
  Program Next(Rng& rng);

  /// Allocation-free form: regenerates `*out` in place (cleared first,
  /// capacity retained) with the same draws Next() makes. The hot-path
  /// submission loop reuses one scratch Program this way.
  void NextInto(Rng& rng, Program* out);

  const Options& options() const { return options_; }

 private:
  OpType PickType(Rng& rng);
  ObjectId PickObject(Rng& rng);

  Options options_;
  std::vector<std::pair<OpType, double>> cdf_;  // cumulative mix
  std::unique_ptr<ZipfianGenerator> zipf_;
  /// First object id past the hot shard range; 0 = shard skew off.
  std::uint64_t hot_span_ = 0;
  // Per-call scratch (single-threaded generation).
  std::vector<std::uint64_t> sample_scratch_;
  std::vector<ObjectId> chosen_scratch_;
};

/// Open-loop transaction arrivals: each node "originates a fixed number
/// of transactions per second" regardless of how the system copes —
/// that open-loop property is what lets load build up and rates explode,
/// so preserving it matters.
class OpenLoopArrivals {
 public:
  using ArrivalCallback = std::function<void()>;

  struct Options {
    double tps = 10.0;          // arrivals per simulated second
    bool poisson = true;        // exponential gaps; false = deterministic
    /// Node whose worker runs the arrivals under the thread backend
    /// (the originating node); kAnyNode = coordinator-inline.
    std::uint32_t node_affinity = runtime::kAnyNode;
  };

  OpenLoopArrivals(runtime::Runtime* rt, Options options, Rng rng,
                   ArrivalCallback on_arrival);

  /// Stops and cancels any pending arrival event (the scheduled event
  /// captures `this`, so it must not outlive the object).
  ~OpenLoopArrivals();

  OpenLoopArrivals(const OpenLoopArrivals&) = delete;
  OpenLoopArrivals& operator=(const OpenLoopArrivals&) = delete;

  /// Starts generating arrivals from Now() until Stop().
  void Start();
  void Stop();

  std::uint64_t arrivals() const { return arrivals_; }

 private:
  void ScheduleNext();

  runtime::Runtime* sim_;
  Options options_;
  Rng rng_;
  ArrivalCallback on_arrival_;
  bool running_ = false;
  sim::EventId pending_ = sim::kInvalidEventId;
  std::uint64_t arrivals_ = 0;
};

}  // namespace tdr

#endif  // TDR_WORKLOAD_WORKLOAD_H_
