#include "workload/workload.h"

#include <cassert>

#include "storage/shard_map.h"

namespace tdr {

ProgramGenerator::ProgramGenerator(Options options)
    : options_(std::move(options)) {
  assert(options_.db_size > 0);
  assert(options_.actions > 0);
  assert(!options_.distinct_objects ||
         options_.actions <= options_.db_size);
  double total = options_.mix.write + options_.mix.add +
                 options_.mix.subtract + options_.mix.append +
                 options_.mix.read;
  assert(total > 0);
  double cum = 0;
  auto push = [&](OpType t, double w) {
    if (w <= 0) return;
    cum += w / total;
    cdf_.emplace_back(t, cum);
  };
  push(OpType::kWrite, options_.mix.write);
  push(OpType::kAdd, options_.mix.add);
  push(OpType::kSubtract, options_.mix.subtract);
  push(OpType::kAppend, options_.mix.append);
  push(OpType::kRead, options_.mix.read);
  cdf_.back().second = 1.0;  // guard against rounding
  if (options_.zipf_theta > 0.0) {
    zipf_ = std::make_unique<ZipfianGenerator>(options_.db_size,
                                               options_.zipf_theta);
  }
  if (options_.skew_hot_shards > 0 && options_.skew_hot_fraction > 0.0) {
    assert(zipf_ == nullptr && "zipf_theta and shard skew are exclusive");
    ShardMap shards(options_.db_size, options_.skew_num_shards);
    // Shards are contiguous from id 0, so the hot region is a prefix.
    if (options_.skew_hot_shards < shards.num_shards()) {
      hot_span_ = shards.ShardBegin(options_.skew_hot_shards);
    }
    // hot_shards >= num_shards covers the whole key space: no skew.
  }
}

OpType ProgramGenerator::PickType(Rng& rng) {
  double u = rng.UniformDouble();
  for (const auto& [type, cum] : cdf_) {
    if (u <= cum) return type;
  }
  return cdf_.back().first;
}

ObjectId ProgramGenerator::PickObject(Rng& rng) {
  if (zipf_ != nullptr) return zipf_->Next(rng);
  if (hot_span_ > 0) {
    if (rng.Bernoulli(options_.skew_hot_fraction)) {
      return rng.UniformInt(hot_span_);
    }
    return hot_span_ + rng.UniformInt(options_.db_size - hot_span_);
  }
  return rng.UniformInt(options_.db_size);
}

Program ProgramGenerator::Next(Rng& rng) {
  Program prog;
  NextInto(rng, &prog);
  return prog;
}

void ProgramGenerator::NextInto(Rng& rng, Program* out) {
  out->Clear();
  if (options_.distinct_objects && zipf_ == nullptr && hot_span_ == 0) {
    // Uniform + distinct: sample without replacement.
    rng.SampleWithoutReplacementInto(options_.db_size, options_.actions,
                                     &sample_scratch_);
    for (std::uint64_t oid : sample_scratch_) {
      std::int64_t operand =
          rng.UniformRange(options_.operand_lo, options_.operand_hi);
      out->Add(Op{PickType(rng), oid, operand});
    }
    return;
  }
  // Zipfian (or repeats allowed): rejection-sample distinctness.
  chosen_scratch_.clear();
  for (std::uint32_t i = 0; i < options_.actions; ++i) {
    ObjectId oid = PickObject(rng);
    if (options_.distinct_objects) {
      bool dup = false;
      for (ObjectId c : chosen_scratch_) {
        if (c == oid) {
          dup = true;
          break;
        }
      }
      if (dup) {
        --i;
        continue;
      }
      chosen_scratch_.push_back(oid);
    }
    std::int64_t operand =
        rng.UniformRange(options_.operand_lo, options_.operand_hi);
    out->Add(Op{PickType(rng), oid, operand});
  }
}

OpenLoopArrivals::OpenLoopArrivals(runtime::Runtime* rt, Options options,
                                   Rng rng, ArrivalCallback on_arrival)
    : sim_(rt),
      options_(options),
      rng_(rng),
      on_arrival_(std::move(on_arrival)) {
  assert(options_.tps > 0);
}

OpenLoopArrivals::~OpenLoopArrivals() { Stop(); }

void OpenLoopArrivals::Start() {
  if (running_) return;
  running_ = true;
  ScheduleNext();
}

void OpenLoopArrivals::Stop() {
  running_ = false;
  if (pending_ != sim::kInvalidEventId) {
    sim_->Cancel(pending_);
    pending_ = sim::kInvalidEventId;
  }
}

void OpenLoopArrivals::ScheduleNext() {
  double gap_seconds = options_.poisson
                           ? rng_.Exponential(1.0 / options_.tps)
                           : 1.0 / options_.tps;
  pending_ = sim_->ScheduleAfterNode(
      options_.node_affinity, SimTime::Seconds(gap_seconds), [this]() {
        pending_ = sim::kInvalidEventId;
        if (!running_) return;
        ++arrivals_;
        on_arrival_();
        ScheduleNext();
      });
}

}  // namespace tdr
