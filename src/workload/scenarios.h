#ifndef TDR_WORKLOAD_SCENARIOS_H_
#define TDR_WORKLOAD_SCENARIOS_H_

#include <cstdint>
#include <string>

#include "txn/program.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace tdr {

/// TPC-B-style debit/credit workload ("as in the checkbook example
/// earlier, or in the TPC-A, TPC-B, and TPC-C benchmarks", §3 — the
/// database whose size grows with the system).
///
/// Database layout over the dense object-id space:
///   [0, branches)                                branch balances
///   [branches, branches + tellers)               teller balances
///   [.., .. + accounts)                          account balances
///   [.., .. + history_partitions)                history (append lists)
///
/// Each transaction is the classic profile: debit/credit an account,
/// its teller, its branch, and append a history record — four actions,
/// ALL COMMUTATIVE (adds + timestamped append), which is exactly why
/// banks could run this workload replicated long before general
/// update-anywhere worked: it is the §6/§7 design discipline.
class TpcbWorkload {
 public:
  struct Options {
    std::uint32_t branches = 2;
    std::uint32_t tellers_per_branch = 10;
    std::uint32_t accounts_per_branch = 100;
    std::uint32_t history_partitions = 8;
    std::int64_t max_amount = 100;  // |delta| drawn from [1, max]
  };

  explicit TpcbWorkload(Options options);

  /// Total object-id space the workload needs; size your ObjectStore /
  /// Cluster db_size to at least this.
  std::uint64_t db_size() const { return db_size_; }

  std::uint32_t branches() const { return options_.branches; }
  std::uint32_t tellers() const {
    return options_.branches * options_.tellers_per_branch;
  }
  std::uint32_t accounts() const {
    return options_.branches * options_.accounts_per_branch;
  }

  // Object-id helpers.
  ObjectId BranchId(std::uint32_t branch) const;
  ObjectId TellerId(std::uint32_t teller) const;
  ObjectId AccountId(std::uint32_t account) const;
  ObjectId HistoryId(std::uint32_t partition) const;

  /// The branch an account or teller belongs to.
  std::uint32_t BranchOfAccount(std::uint32_t account) const {
    return account / options_.accounts_per_branch;
  }
  std::uint32_t BranchOfTeller(std::uint32_t teller) const {
    return teller / options_.tellers_per_branch;
  }

  /// One debit/credit transaction: random teller (which fixes the
  /// branch), random account of that branch, random signed amount.
  /// `history_stamp` becomes the appended history item; pass something
  /// unique per call (e.g. a sequence number) so appends are distinct.
  Program NextTransaction(Rng& rng, std::int64_t history_stamp);

  /// Invariant over any committed set of TPC-B transactions: the sum of
  /// all account balances equals the sum of all teller balances equals
  /// the sum of all branch balances (each delta is applied to one of
  /// each). Checkable against any store via these id ranges.
  std::string Describe() const;

 private:
  Options options_;
  std::uint64_t db_size_;
};

/// Hot/cold shard skew scenario — the bench_sharding workload. The key
/// space is range-partitioned into `num_shards` (match the cluster's
/// ShardMap) and `hot_fraction` of every transaction's object picks
/// land in the first `hot_shards` shards. Replica-update traffic then
/// concentrates on a few shards, which is exactly what per-shard lock
/// tables and per-window batch coalescing exist to absorb.
struct HotColdShardScenario {
  std::uint64_t db_size = 10000;
  std::uint32_t num_shards = 16;
  std::uint32_t hot_shards = 1;
  double hot_fraction = 0.9;
  std::uint32_t actions = 4;

  /// ProgramGenerator options realizing the skew (all-writes mix, the
  /// paper's base model).
  ProgramGenerator::Options MakeGeneratorOptions() const;
  std::string Describe() const;
};

}  // namespace tdr

#endif  // TDR_WORKLOAD_SCENARIOS_H_
