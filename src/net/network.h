#ifndef TDR_NET_NETWORK_H_
#define TDR_NET_NETWORK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "txn/node.h"
#include "util/rng.h"
#include "util/sim_time.h"
#include "util/stats.h"

namespace tdr {

/// Simulated point-to-point network between cluster nodes.
///
/// The paper's base model *ignores* message propagation delay and
/// per-message CPU ("Message_Delay ... Message_cpu ... ignored"), so the
/// default delay is zero — but both knobs exist because the paper
/// repeatedly notes rates only get worse with real delays, and the
/// delay ablation bench demonstrates exactly that.
///
/// Disconnection semantics (the mobile-node model of §2/§4):
///  * a message sent while the SENDER is disconnected waits in the
///    sender's outbox until it reconnects;
///  * a message arriving while the RECEIVER is disconnected waits in the
///    receiver's inbox until it reconnects;
///  * order is preserved per queue.
class Network {
 public:
  /// A delivered message is just a callback run at the destination at
  /// delivery time. Replication schemes close over whatever state the
  /// message carries (update records, transaction programs, ...).
  using Handler = std::function<void()>;

  struct Options {
    /// One-way propagation delay (paper default: zero).
    SimTime delay = SimTime::Zero();
    /// Sender/receiver processing cost per message (paper default: zero;
    /// charged as additional latency, the model's simplification).
    SimTime message_cpu = SimTime::Zero();
  };

  Network(sim::Simulator* sim, std::vector<Node*> nodes, Options options,
          CounterRegistry* counters);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Sends a message; `fn` runs at the destination after the configured
  /// delay once both endpoints have been connected. Self-sends are
  /// delivered (with delay) without touching connectivity.
  void Send(NodeId from, NodeId to, Handler fn);

  /// Broadcasts to every node except `from`.
  void Broadcast(NodeId from, const std::function<Handler(NodeId to)>& make);

  /// Marks the node (dis)connected and flushes queues on reconnect.
  /// This is the single authority on Node::connected().
  void SetConnected(NodeId node, bool connected);

  /// Registered callbacks run after a node reconnects and its queued
  /// traffic has been flushed — replication schemes hook their
  /// reconnect exchange protocol here.
  void OnReconnect(NodeId node, std::function<void()> fn);

  /// Callbacks run when a node disconnects.
  void OnDisconnect(NodeId node, std::function<void()> fn);

  std::uint64_t messages_sent() const { return sent_; }
  std::uint64_t messages_delivered() const { return delivered_; }
  std::uint64_t messages_queued() const { return queued_; }
  std::size_t PendingAt(NodeId node) const {
    return outbox_[node].size() + inbox_[node].size();
  }

 private:
  struct Pending {
    NodeId from;
    NodeId to;
    Handler fn;
  };

  void Transmit(NodeId from, NodeId to, Handler fn);
  void Arrive(NodeId from, NodeId to, Handler fn);

  sim::Simulator* sim_;
  std::vector<Node*> nodes_;
  Options options_;
  CounterRegistry* counters_;
  std::vector<std::deque<Pending>> outbox_;  // per sender
  std::vector<std::deque<Pending>> inbox_;   // per receiver
  std::vector<std::vector<std::function<void()>>> on_reconnect_;
  std::vector<std::vector<std::function<void()>>> on_disconnect_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t queued_ = 0;
};

/// Drives the connect/disconnect cycle of one (mobile) node, per the
/// model's Time_Between_Disconnects / Disconnected_time parameters
/// (Table 2). "The node accepts and applies transactions for a day.
/// Then, at night it connects and downloads them" (§4) corresponds to a
/// long disconnected_time and a short connected window.
class ConnectivitySchedule {
 public:
  struct Options {
    /// Mean time the node stays connected between disconnects.
    SimTime time_between_disconnects = SimTime::Seconds(3600);
    /// Mean time the node stays disconnected.
    SimTime disconnected_time = SimTime::Seconds(0);
    /// If true, phase lengths are exponentially distributed with the
    /// above means; if false they are deterministic.
    bool exponential = false;
    /// If true the node starts disconnected (mobile default).
    bool start_disconnected = false;
  };

  ConnectivitySchedule(sim::Simulator* sim, Network* network, NodeId node,
                       Options options, Rng rng);

  /// Stops and cancels the pending phase-change event (it captures
  /// `this`, so it must not outlive the schedule).
  ~ConnectivitySchedule();

  ConnectivitySchedule(const ConnectivitySchedule&) = delete;
  ConnectivitySchedule& operator=(const ConnectivitySchedule&) = delete;

  /// Begins the cycle. Idempotent.
  void Start();

  /// Stops future phase changes (the node stays in its current state).
  void Stop();

  std::uint64_t cycles() const { return cycles_; }

 private:
  SimTime PhaseLength(SimTime mean);
  void EnterConnected();
  void EnterDisconnected();

  sim::Simulator* sim_;
  Network* network_;
  NodeId node_;
  Options options_;
  Rng rng_;
  bool running_ = false;
  sim::EventId pending_ = sim::kInvalidEventId;
  std::uint64_t cycles_ = 0;
};

}  // namespace tdr

#endif  // TDR_NET_NETWORK_H_
