#ifndef TDR_NET_NETWORK_H_
#define TDR_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "net/message_pool.h"
#include "obs/metrics.h"
#include "runtime/runtime.h"
#include "sim/callback.h"
#include "txn/node.h"
#include "util/rng.h"
#include "util/sim_time.h"
#include "util/stats.h"

namespace tdr {

/// Simulated point-to-point network between cluster nodes.
///
/// The paper's base model *ignores* message propagation delay and
/// per-message CPU ("Message_Delay ... Message_cpu ... ignored"), so the
/// default delay is zero — but both knobs exist because the paper
/// repeatedly notes rates only get worse with real delays, and the
/// delay ablation bench demonstrates exactly that.
///
/// Disconnection semantics (the mobile-node model of §2/§4):
///  * a message sent while the SENDER is disconnected waits in the
///    sender's outbox until it reconnects;
///  * a message arriving while the RECEIVER is disconnected waits in the
///    receiver's inbox until it reconnects;
///  * order is preserved per queue.
///
/// Failure semantics (the fault-injection model, src/fault):
///  * every link is either up (default) or cut; a message transmitted
///    over a cut link parks in a per-link held queue and resumes
///    transmission when the link heals — partitions delay, they do not
///    silently drop (the sender's replication stream is durable);
///  * an attached MessageInterceptor may drop, duplicate, or delay each
///    transmission — the probabilistic fault layer;
///  * a CRASHED node (Crash/Restart) loses its volatile receive
///    buffers: its inbox is discarded at crash time and messages
///    arriving while it is down are dropped. Its outbox survives — a
///    queued outbound message corresponds to a committed update in the
///    node's recovery log, and Restart re-ships it (log recovery).
///
/// Allocation model: every message lives in a net::MessagePool record
/// from Send to delivery — queued, link-parked, and in-flight states
/// are intrusive links over the same slab, and a scheduled delivery
/// captures only (this, handle). A duplicated transmission (fault
/// injection) stays ONE record whose handler runs `copies` times at
/// arrival: the injector schedules copies back-to-back at the same
/// latency with consecutive event seqs, so no other event can
/// interleave and the merged delivery is observationally identical.
/// Handlers therefore must tolerate repeat invocation (treat captured
/// payloads as read-only); they run from simulated time, never
/// synchronously inside Send.
class Network {
 public:
  /// A delivered message is just a callback run at the destination at
  /// delivery time. Replication schemes close over whatever state the
  /// message carries — move-only, 64-byte small-buffer (sim::Callback);
  /// bulk payloads ride in a RecordBufferPool lease, not the capture.
  using Handler = sim::Callback;

  struct Options {
    /// One-way propagation delay (paper default: zero).
    SimTime delay = SimTime::Zero();
    /// Sender/receiver processing cost per message (paper default: zero;
    /// charged as additional latency, the model's simplification).
    SimTime message_cpu = SimTime::Zero();
  };

  /// What the fault layer may do to one message transmission.
  struct InterceptVerdict {
    bool drop = false;            // message lost forever
    std::uint32_t copies = 1;     // >1 = duplicate delivery
    SimTime extra_delay = SimTime::Zero();  // reorder/delay spike
  };

  /// Interception point consulted once per message transmission (not
  /// for self-sends). Implemented by fault::FaultInjector; the default
  /// (no interceptor) is the perfect network the paper assumes.
  class MessageInterceptor {
   public:
    virtual ~MessageInterceptor() = default;
    virtual InterceptVerdict OnTransmit(NodeId from, NodeId to) = 0;
  };

  /// Observation point for every cross-node delivery, invoked
  /// immediately before the delivered message's handler runs (both the
  /// direct arrival path and the reconnect inbox flush; self-sends are
  /// excluded). The hook runs inside the delivery's runtime event, so
  /// the sequence of OnDeliver calls is exactly the deterministic
  /// delivery order of the seeded schedule — the property the
  /// multi-process backend (src/proc) builds its socket rendezvous on.
  /// Hooks must not mutate cluster state, send messages, or draw from
  /// any cluster RNG stream; they may block (the proc backend blocks a
  /// receiving process until the matching frame arrives on the wire).
  class DeliveryHook {
   public:
    virtual ~DeliveryHook() = default;
    virtual void OnDeliver(NodeId from, NodeId to, std::uint32_t copies) = 0;
  };

  /// `metrics` may be null (uninstrumented network). `rt` is the
  /// execution backend (the simulator, or the thread backend).
  Network(runtime::Runtime* rt, std::vector<Node*> nodes, Options options,
          obs::MetricsRegistry* metrics);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  ~Network();

  /// Sends a message; `fn` runs at the destination after the configured
  /// delay once both endpoints have been connected. Self-sends are
  /// delivered (with delay) without touching connectivity or faults.
  void Send(NodeId from, NodeId to, Handler fn);

  /// Broadcasts to every node except `from`; `make(to)` builds each
  /// destination's handler. Templated so per-destination handler
  /// construction goes straight into the pooled record.
  template <typename MakeHandler>
  void Broadcast(NodeId from, MakeHandler&& make) {
    for (NodeId to = 0; to < nodes_.size(); ++to) {
      if (to == from) continue;
      Send(from, to, make(to));
    }
  }

  /// Marks the node (dis)connected and flushes queues on reconnect.
  /// This is the single authority on Node::connected().
  void SetConnected(NodeId node, bool connected);

  /// Registered callbacks run after a node reconnects and its queued
  /// traffic has been flushed — replication schemes hook their
  /// reconnect exchange protocol here.
  void OnReconnect(NodeId node, std::function<void()> fn);

  /// Callbacks run when a node disconnects.
  void OnDisconnect(NodeId node, std::function<void()> fn);

  // --- Fault surface (driven by fault::FaultInjector) ---------------

  /// Attaches/detaches the probabilistic fault layer (not owned).
  void set_interceptor(MessageInterceptor* interceptor) {
    interceptor_ = interceptor;
  }
  MessageInterceptor* interceptor() const { return interceptor_; }

  /// Attaches/detaches the delivery observation hook (not owned).
  void set_delivery_hook(DeliveryHook* hook) { delivery_hook_ = hook; }
  DeliveryHook* delivery_hook() const { return delivery_hook_; }

  /// Cuts or restores the (symmetric) link between `a` and `b`.
  /// Restoring re-transmits every message held on the link, then runs
  /// the OnLinkRestored callbacks — catch-up protocols hook there.
  void SetLinkUp(NodeId a, NodeId b, bool up);
  bool LinkUp(NodeId a, NodeId b) const;

  /// True if a message sent now from `from` would be delivered without
  /// queueing: both endpoints connected and the link up. Self-links are
  /// always reachable. This is the reachability replication schemes
  /// consult ("must be connected to the object owner").
  bool Reachable(NodeId from, NodeId to) const;

  /// Callbacks run after a cut link heals (both orders of (a, b) are
  /// reported as passed to SetLinkUp).
  void OnLinkRestored(std::function<void(NodeId a, NodeId b)> fn);

  /// Crashes the node: marks it crashed + disconnected, discards its
  /// inbox (volatile receive buffers), keeps its outbox (recovery log).
  void Crash(NodeId node);

  /// Restarts a crashed node: clears the crash flag, reconnects (which
  /// flushes the surviving outbox — log recovery — and fires the
  /// reconnect hooks, e.g. quorum catch-up).
  void Restart(NodeId node);

  /// Discards the node's queued outbound messages. The default crash
  /// model treats the outbox as a durable log and keeps it; under WAL
  /// durability modes the RecoveryManager calls this at crash — unsent
  /// messages are volatile state, and recovery replays from the WAL
  /// instead.
  void DiscardOutbox(NodeId node);

  std::uint64_t messages_sent() const { return sent_; }
  std::uint64_t messages_delivered() const { return delivered_; }
  std::uint64_t messages_queued() const { return queued_; }
  std::uint64_t messages_dropped() const { return dropped_; }
  std::uint64_t messages_duplicated() const { return duplicated_; }
  std::uint64_t messages_held() const { return held_total_; }
  std::size_t PendingAt(NodeId node) const {
    return static_cast<std::size_t>(outbox_[node].count +
                                    inbox_[node].count);
  }
  /// Messages currently parked on cut links.
  std::size_t HeldCount() const;

  /// Pool occupancy: messages currently queued, parked, or in flight.
  std::size_t MessagesLive() const { return pool_.in_use(); }

 private:
  using Handle = net::MessagePool::Handle;
  using MsgQueue = net::MessagePool::Queue;

  void Transmit(Handle h);
  void Arrive(Handle h);
  /// Releases every record in `q` (counters untouched).
  void Discard(MsgQueue& q);
  std::size_t LinkIndex(NodeId a, NodeId b) const {
    return static_cast<std::size_t>(a) * nodes_.size() + b;
  }

  runtime::Runtime* sim_;
  std::vector<Node*> nodes_;
  Options options_;
  // Cached metric handles (no-ops without a registry); Send/Transmit/
  // Arrive are the hottest paths in large sweeps.
  obs::MetricsRegistry::Counter m_sent_;
  obs::MetricsRegistry::Counter m_held_;
  obs::MetricsRegistry::Counter m_dropped_;
  obs::MetricsRegistry::Counter m_duplicated_;
  obs::MetricsRegistry::Counter m_crash_dropped_;
  obs::MetricsRegistry::Counter m_delivered_;
  obs::MetricsRegistry::Counter m_inbox_lost_;
  obs::MetricsRegistry::Counter m_crashes_;
  obs::MetricsRegistry::Counter m_restarts_;
  MessageInterceptor* interceptor_ = nullptr;
  DeliveryHook* delivery_hook_ = nullptr;
  net::MessagePool pool_;
  std::vector<MsgQueue> outbox_;  // per sender
  std::vector<MsgQueue> inbox_;   // per receiver
  std::vector<std::uint8_t> link_up_;  // n*n, symmetric
  // Messages parked on cut links, indexed by directed LinkIndex(from,
  // to); FIFO order is preserved through heal, so per-link ordering
  // survives a partition. Heal drains (a, b) then (b, a) — the same
  // deterministic order the std::map representation flushed in.
  std::vector<MsgQueue> held_;
  std::vector<std::vector<std::function<void()>>> on_reconnect_;
  std::vector<std::vector<std::function<void()>>> on_disconnect_;
  std::vector<std::function<void(NodeId, NodeId)>> on_link_restored_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t queued_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t held_total_ = 0;
};

/// Drives the connect/disconnect cycle of one (mobile) node, per the
/// model's Time_Between_Disconnects / Disconnected_time parameters
/// (Table 2). "The node accepts and applies transactions for a day.
/// Then, at night it connects and downloads them" (§4) corresponds to a
/// long disconnected_time and a short connected window.
class ConnectivitySchedule {
 public:
  struct Options {
    /// Mean time the node stays connected between disconnects.
    SimTime time_between_disconnects = SimTime::Seconds(3600);
    /// Mean time the node stays disconnected.
    SimTime disconnected_time = SimTime::Seconds(0);
    /// If true, phase lengths are exponentially distributed with the
    /// above means; if false they are deterministic.
    bool exponential = false;
    /// If true the node starts disconnected (mobile default).
    bool start_disconnected = false;
  };

  ConnectivitySchedule(runtime::Runtime* rt, Network* network, NodeId node,
                       Options options, Rng rng);

  /// Stops and cancels the pending phase-change event (it captures
  /// `this`, so it must not outlive the schedule).
  ~ConnectivitySchedule();

  ConnectivitySchedule(const ConnectivitySchedule&) = delete;
  ConnectivitySchedule& operator=(const ConnectivitySchedule&) = delete;

  /// Begins the cycle. Idempotent.
  void Start();

  /// Stops future phase changes (the node stays in its current state).
  void Stop();

  std::uint64_t cycles() const { return cycles_; }

 private:
  SimTime PhaseLength(SimTime mean);
  void EnterConnected();
  void EnterDisconnected();

  runtime::Runtime* sim_;
  Network* network_;
  NodeId node_;
  Options options_;
  Rng rng_;
  bool running_ = false;
  sim::EventId pending_ = sim::kInvalidEventId;
  std::uint64_t cycles_ = 0;
};

}  // namespace tdr

#endif  // TDR_NET_NETWORK_H_
