#include "net/network.h"

#include <cassert>
#include <utility>

namespace tdr {

Network::Network(runtime::Runtime* rt, std::vector<Node*> nodes,
                 Options options, obs::MetricsRegistry* metrics)
    : sim_(rt),
      nodes_(std::move(nodes)),
      options_(options),
      outbox_(nodes_.size()),
      inbox_(nodes_.size()),
      link_up_(nodes_.size() * nodes_.size(), 1),
      held_(nodes_.size() * nodes_.size()),
      on_reconnect_(nodes_.size()),
      on_disconnect_(nodes_.size()) {
  if (metrics != nullptr) {
    m_sent_ = metrics->GetCounter("net.sent");
    m_held_ = metrics->GetCounter("net.held");
    m_dropped_ = metrics->GetCounter("net.dropped");
    m_duplicated_ = metrics->GetCounter("net.duplicated");
    m_crash_dropped_ = metrics->GetCounter("net.crash_dropped");
    m_delivered_ = metrics->GetCounter("net.delivered");
    m_inbox_lost_ = metrics->GetCounter("net.inbox_lost");
    m_crashes_ = metrics->GetCounter("net.crashes");
    m_restarts_ = metrics->GetCounter("net.restarts");
  }
}

Network::~Network() = default;

void Network::Send(NodeId from, NodeId to, Handler fn) {
  assert(from < nodes_.size() && to < nodes_.size());
  ++sent_;
  m_sent_.Increment();
  Handle h = pool_.Acquire(from, to, std::move(fn));
  if (from != to && !nodes_[from]->connected()) {
    // Sender offline: hold in its outbox until reconnect.
    ++queued_;
    pool_.Push(outbox_[from], h);
    return;
  }
  Transmit(h);
}

void Network::Transmit(Handle h) {
  NodeId from, to;
  {
    net::MessagePool::Message& m = pool_.Get(h);
    from = m.from;
    to = m.to;
  }
  SimTime extra = SimTime::Zero();
  if (from != to) {
    if (!LinkUp(from, to)) {
      // Link cut: park on the link; SetLinkUp(..., true) resumes us.
      ++held_total_;
      m_held_.Increment();
      pool_.Push(held_[LinkIndex(from, to)], h);
      return;
    }
    if (interceptor_ != nullptr) {
      InterceptVerdict v = interceptor_->OnTransmit(from, to);
      if (v.drop || v.copies == 0) {
        ++dropped_;
        m_dropped_.Increment();
        pool_.Release(h);
        return;
      }
      extra = v.extra_delay;
      if (v.copies > 1) {
        // One record, delivered `copies` times at arrival. The copies
        // would have been scheduled back-to-back with consecutive seqs
        // at the same latency, so nothing could interleave between
        // them — merged delivery is observationally identical.
        pool_.Get(h).copies = v.copies;
        duplicated_ += v.copies - 1;
        m_duplicated_.Increment(v.copies - 1);
      }
    }
  }
  SimTime latency = options_.delay + options_.message_cpu * 2 + extra;
  // Delivery runs at the DESTINATION: tag the event so the thread
  // backend executes it on the receiving node's worker.
  sim_->ScheduleAfterNode(to, latency, [this, h]() { Arrive(h); });
}

void Network::Arrive(Handle h) {
  NodeId from, to;
  std::uint32_t copies;
  {
    net::MessagePool::Message& m = pool_.Get(h);
    from = m.from;
    to = m.to;
    copies = m.copies;
  }
  if (from != to && nodes_[to]->crashed()) {
    // A crashed receiver has no process to buffer the message; it is
    // lost (the sender-side out_log, not this copy, is what recovery
    // replays).
    dropped_ += copies;
    m_crash_dropped_.Increment(copies);
    pool_.Release(h);
    return;
  }
  if (from != to && !nodes_[to]->connected()) {
    // Receiver offline: hold in its inbox until reconnect.
    queued_ += copies;
    pool_.Push(inbox_[to], h);
    return;
  }
  // The delivery is now certain to run: give the hook its rendezvous
  // point (the proc backend ships/awaits the matching wire frame here).
  if (delivery_hook_ != nullptr && from != to) {
    delivery_hook_->OnDeliver(from, to, copies);
  }
  // Move the handler out of the slab before invoking: the handler may
  // Send (growing the slab, which would invalidate the record
  // reference), and releasing first lets the slot recycle immediately.
  sim::Callback fn = std::move(pool_.Get(h).fn);
  pool_.Release(h);
  delivered_ += copies;
  m_delivered_.Increment(copies);
  for (std::uint32_t c = 0; c < copies; ++c) fn();
}

void Network::Discard(MsgQueue& q) {
  for (Handle h = pool_.Detach(q); h != net::MessagePool::kNil;) {
    Handle next = pool_.NextOf(h);
    pool_.Release(h);
    h = next;
  }
}

void Network::SetConnected(NodeId node, bool connected) {
  assert(node < nodes_.size());
  Node* n = nodes_[node];
  if (n->connected() == connected) return;
  n->set_connected(connected);
  if (!connected) {
    for (const auto& fn : on_disconnect_[node]) fn();
    return;
  }
  // Reconnect: flush the outbox (messages start their journey now) and
  // the inbox (messages that arrived while offline deliver now). Both
  // chains are detached first, so handlers re-queueing traffic cannot
  // perturb the drain.
  for (Handle h = pool_.Detach(outbox_[node]);
       h != net::MessagePool::kNil;) {
    Handle next = pool_.NextOf(h);
    Transmit(h);
    h = next;
  }
  for (Handle h = pool_.Detach(inbox_[node]); h != net::MessagePool::kNil;) {
    Handle next = pool_.NextOf(h);
    NodeId from = pool_.Get(h).from;
    std::uint32_t copies = pool_.Get(h).copies;
    sim::Callback fn = std::move(pool_.Get(h).fn);
    pool_.Release(h);
    if (delivery_hook_ != nullptr && from != node) {
      delivery_hook_->OnDeliver(from, node, copies);
    }
    delivered_ += copies;
    m_delivered_.Increment(copies);
    for (std::uint32_t c = 0; c < copies; ++c) fn();
    h = next;
  }
  for (const auto& fn : on_reconnect_[node]) fn();
}

void Network::OnReconnect(NodeId node, std::function<void()> fn) {
  on_reconnect_[node].push_back(std::move(fn));
}

void Network::OnDisconnect(NodeId node, std::function<void()> fn) {
  on_disconnect_[node].push_back(std::move(fn));
}

bool Network::LinkUp(NodeId a, NodeId b) const {
  assert(a < nodes_.size() && b < nodes_.size());
  if (a == b) return true;
  return link_up_[LinkIndex(a, b)] != 0;
}

bool Network::Reachable(NodeId from, NodeId to) const {
  assert(from < nodes_.size() && to < nodes_.size());
  if (from == to) return true;
  return nodes_[from]->connected() && nodes_[to]->connected() &&
         LinkUp(from, to);
}

void Network::SetLinkUp(NodeId a, NodeId b, bool up) {
  assert(a < nodes_.size() && b < nodes_.size());
  if (a == b) return;  // self-links are permanently up
  bool was_up = link_up_[LinkIndex(a, b)] != 0;
  if (was_up == up) return;
  link_up_[LinkIndex(a, b)] = up ? 1 : 0;
  link_up_[LinkIndex(b, a)] = up ? 1 : 0;
  if (!up) return;
  // Heal: resume transmission of everything parked on the link, in the
  // order it was sent (per direction, (a, b) before (b, a) — the order
  // the former std::map representation flushed in), then let catch-up
  // protocols run.
  for (std::size_t idx : {LinkIndex(a, b), LinkIndex(b, a)}) {
    for (Handle h = pool_.Detach(held_[idx]); h != net::MessagePool::kNil;) {
      Handle next = pool_.NextOf(h);
      Transmit(h);
      h = next;
    }
  }
  for (const auto& fn : on_link_restored_) fn(a, b);
}

void Network::OnLinkRestored(std::function<void(NodeId, NodeId)> fn) {
  on_link_restored_.push_back(std::move(fn));
}

void Network::Crash(NodeId node) {
  assert(node < nodes_.size());
  Node* n = nodes_[node];
  if (n->crashed()) return;
  n->set_crashed(true);
  SetConnected(node, false);
  // Volatile receive buffers are gone. The outbox stays: each entry is a
  // committed update in the node's durable log, re-shipped at Restart.
  std::size_t lost = static_cast<std::size_t>(inbox_[node].count);
  if (lost > 0) {
    dropped_ += lost;
    m_inbox_lost_.Increment(lost);
    Discard(inbox_[node]);
  }
  m_crashes_.Increment();
}

void Network::Restart(NodeId node) {
  assert(node < nodes_.size());
  Node* n = nodes_[node];
  if (!n->crashed()) return;
  n->set_crashed(false);
  m_restarts_.Increment();
  // Reconnecting flushes the surviving outbox (log recovery) and fires
  // the reconnect hooks so schemes run their catch-up protocols.
  SetConnected(node, true);
}

void Network::DiscardOutbox(NodeId node) {
  assert(node < nodes_.size());
  std::size_t lost = static_cast<std::size_t>(outbox_[node].count);
  if (lost > 0) {
    dropped_ += lost;
    m_dropped_.Increment(lost);
    Discard(outbox_[node]);
  }
}

std::size_t Network::HeldCount() const {
  std::size_t total = 0;
  for (const MsgQueue& q : held_) {
    total += static_cast<std::size_t>(q.count);
  }
  return total;
}

ConnectivitySchedule::ConnectivitySchedule(runtime::Runtime* rt,
                                           Network* network, NodeId node,
                                           Options options, Rng rng)
    : sim_(rt),
      network_(network),
      node_(node),
      options_(options),
      rng_(rng) {}

SimTime ConnectivitySchedule::PhaseLength(SimTime mean) {
  if (!options_.exponential) return mean;
  return SimTime::Seconds(rng_.Exponential(mean.seconds()));
}

void ConnectivitySchedule::Start() {
  if (running_) return;
  running_ = true;
  if (options_.start_disconnected) {
    network_->SetConnected(node_, false);
    EnterDisconnected();
  } else {
    network_->SetConnected(node_, true);
    EnterConnected();
  }
}

ConnectivitySchedule::~ConnectivitySchedule() { Stop(); }

void ConnectivitySchedule::Stop() {
  running_ = false;
  if (pending_ != sim::kInvalidEventId) {
    sim_->Cancel(pending_);
    pending_ = sim::kInvalidEventId;
  }
}

void ConnectivitySchedule::EnterConnected() {
  if (!running_) return;
  SimTime up = PhaseLength(options_.time_between_disconnects);
  pending_ = sim_->ScheduleAfter(up, [this]() {
    pending_ = sim::kInvalidEventId;
    if (!running_) return;
    if (options_.disconnected_time <= SimTime::Zero()) {
      // Degenerate schedule: never actually disconnects.
      EnterConnected();
      return;
    }
    network_->SetConnected(node_, false);
    ++cycles_;
    EnterDisconnected();
  });
}

void ConnectivitySchedule::EnterDisconnected() {
  if (!running_) return;
  SimTime down = PhaseLength(options_.disconnected_time);
  pending_ = sim_->ScheduleAfter(down, [this]() {
    pending_ = sim::kInvalidEventId;
    if (!running_) return;
    network_->SetConnected(node_, true);
    EnterConnected();
  });
}

}  // namespace tdr
