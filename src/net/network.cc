#include "net/network.h"

#include <cassert>
#include <utility>

namespace tdr {

Network::Network(sim::Simulator* sim, std::vector<Node*> nodes,
                 Options options, CounterRegistry* counters)
    : sim_(sim),
      nodes_(std::move(nodes)),
      options_(options),
      counters_(counters),
      outbox_(nodes_.size()),
      inbox_(nodes_.size()),
      on_reconnect_(nodes_.size()),
      on_disconnect_(nodes_.size()) {}

void Network::Send(NodeId from, NodeId to, Handler fn) {
  assert(from < nodes_.size() && to < nodes_.size());
  ++sent_;
  if (counters_ != nullptr) counters_->Increment("net.sent");
  if (from != to && !nodes_[from]->connected()) {
    // Sender offline: hold in its outbox until reconnect.
    ++queued_;
    outbox_[from].push_back(Pending{from, to, std::move(fn)});
    return;
  }
  Transmit(from, to, std::move(fn));
}

void Network::Transmit(NodeId from, NodeId to, Handler fn) {
  SimTime latency = options_.delay + options_.message_cpu * 2;
  sim_->ScheduleAfter(latency, [this, from, to, fn = std::move(fn)]() mutable {
    Arrive(from, to, std::move(fn));
  });
}

void Network::Arrive(NodeId from, NodeId to, Handler fn) {
  if (from != to && !nodes_[to]->connected()) {
    // Receiver offline: hold in its inbox until reconnect.
    ++queued_;
    inbox_[to].push_back(Pending{from, to, std::move(fn)});
    return;
  }
  ++delivered_;
  if (counters_ != nullptr) counters_->Increment("net.delivered");
  fn();
}

void Network::Broadcast(NodeId from,
                        const std::function<Handler(NodeId)>& make) {
  for (NodeId to = 0; to < nodes_.size(); ++to) {
    if (to == from) continue;
    Send(from, to, make(to));
  }
}

void Network::SetConnected(NodeId node, bool connected) {
  assert(node < nodes_.size());
  Node* n = nodes_[node];
  if (n->connected() == connected) return;
  n->set_connected(connected);
  if (!connected) {
    for (const auto& fn : on_disconnect_[node]) fn();
    return;
  }
  // Reconnect: flush the outbox (messages start their journey now) and
  // the inbox (messages that arrived while offline deliver now).
  std::deque<Pending> out = std::move(outbox_[node]);
  outbox_[node].clear();
  for (Pending& p : out) Transmit(p.from, p.to, std::move(p.fn));
  std::deque<Pending> in = std::move(inbox_[node]);
  inbox_[node].clear();
  for (Pending& p : in) {
    ++delivered_;
    if (counters_ != nullptr) counters_->Increment("net.delivered");
    p.fn();
  }
  for (const auto& fn : on_reconnect_[node]) fn();
}

void Network::OnReconnect(NodeId node, std::function<void()> fn) {
  on_reconnect_[node].push_back(std::move(fn));
}

void Network::OnDisconnect(NodeId node, std::function<void()> fn) {
  on_disconnect_[node].push_back(std::move(fn));
}

ConnectivitySchedule::ConnectivitySchedule(sim::Simulator* sim,
                                           Network* network, NodeId node,
                                           Options options, Rng rng)
    : sim_(sim),
      network_(network),
      node_(node),
      options_(options),
      rng_(rng) {}

SimTime ConnectivitySchedule::PhaseLength(SimTime mean) {
  if (!options_.exponential) return mean;
  return SimTime::Seconds(rng_.Exponential(mean.seconds()));
}

void ConnectivitySchedule::Start() {
  if (running_) return;
  running_ = true;
  if (options_.start_disconnected) {
    network_->SetConnected(node_, false);
    EnterDisconnected();
  } else {
    network_->SetConnected(node_, true);
    EnterConnected();
  }
}

ConnectivitySchedule::~ConnectivitySchedule() { Stop(); }

void ConnectivitySchedule::Stop() {
  running_ = false;
  if (pending_ != sim::kInvalidEventId) {
    sim_->Cancel(pending_);
    pending_ = sim::kInvalidEventId;
  }
}

void ConnectivitySchedule::EnterConnected() {
  if (!running_) return;
  SimTime up = PhaseLength(options_.time_between_disconnects);
  pending_ = sim_->ScheduleAfter(up, [this]() {
    pending_ = sim::kInvalidEventId;
    if (!running_) return;
    if (options_.disconnected_time <= SimTime::Zero()) {
      // Degenerate schedule: never actually disconnects.
      EnterConnected();
      return;
    }
    network_->SetConnected(node_, false);
    ++cycles_;
    EnterDisconnected();
  });
}

void ConnectivitySchedule::EnterDisconnected() {
  if (!running_) return;
  SimTime down = PhaseLength(options_.disconnected_time);
  pending_ = sim_->ScheduleAfter(down, [this]() {
    pending_ = sim::kInvalidEventId;
    if (!running_) return;
    network_->SetConnected(node_, true);
    EnterConnected();
  });
}

}  // namespace tdr
