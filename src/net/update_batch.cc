#include "net/update_batch.h"

#include <utility>

#include "util/logging.h"

namespace tdr {

std::string UpdateBatch::ToString() const {
  return StrPrintf(
      "UpdateBatch{%u->%u seq=%llu updates=%zu coalesced=%llu opened=%s}",
      origin, dest, (unsigned long long)seq, updates.size(),
      (unsigned long long)coalesced, opened.ToString().c_str());
}

void UpdateBatchBuilder::Add(const UpdateRecord& rec, bool coalesce) {
  if (coalesce) {
    if (std::uint32_t* pos = index_.Find(rec.oid + 1)) {
      // Chain compaction: keep the pending record's pre-image, adopt
      // the newer post-image. The receiver applies one hop t0 -> tk in
      // place of the k-hop chain.
      UpdateRecord& pending = updates_[*pos];
      pending.txn = rec.txn;
      pending.new_ts = rec.new_ts;
      pending.new_value = rec.new_value;
      pending.commit_time = rec.commit_time;
      ++coalesced_;
      return;
    }
    index_.Insert(rec.oid + 1,
                  static_cast<std::uint32_t>(updates_.size()));
  }
  updates_.push_back(rec);
}

UpdateBatch UpdateBatchBuilder::Take(NodeId origin, NodeId dest,
                                     std::uint64_t seq, SimTime opened) {
  UpdateBatch batch;
  TakeInto(origin, dest, seq, opened, &batch);
  return batch;
}

void UpdateBatchBuilder::TakeInto(NodeId origin, NodeId dest,
                                  std::uint64_t seq, SimTime opened,
                                  UpdateBatch* out) {
  out->origin = origin;
  out->dest = dest;
  out->seq = seq;
  out->opened = opened;
  out->updates.swap(updates_);
  out->coalesced = coalesced_;
  updates_.clear();
  index_.Clear();
  coalesced_ = 0;
}

}  // namespace tdr
