#include "net/update_batch.h"

#include <utility>

#include "util/logging.h"

namespace tdr {

std::string UpdateBatch::ToString() const {
  return StrPrintf(
      "UpdateBatch{%u->%u seq=%llu updates=%zu coalesced=%llu opened=%s}",
      origin, dest, (unsigned long long)seq, updates.size(),
      (unsigned long long)coalesced, opened.ToString().c_str());
}

void UpdateBatchBuilder::Add(const UpdateRecord& rec, bool coalesce) {
  if (coalesce) {
    auto it = index_.find(rec.oid);
    if (it != index_.end()) {
      // Chain compaction: keep the pending record's pre-image, adopt
      // the newer post-image. The receiver applies one hop t0 -> tk in
      // place of the k-hop chain.
      UpdateRecord& pending = updates_[it->second];
      pending.txn = rec.txn;
      pending.new_ts = rec.new_ts;
      pending.new_value = rec.new_value;
      pending.commit_time = rec.commit_time;
      ++coalesced_;
      return;
    }
    index_.emplace(rec.oid, updates_.size());
  }
  updates_.push_back(rec);
}

UpdateBatch UpdateBatchBuilder::Take(NodeId origin, NodeId dest,
                                     std::uint64_t seq, SimTime opened) {
  UpdateBatch batch;
  batch.origin = origin;
  batch.dest = dest;
  batch.seq = seq;
  batch.opened = opened;
  batch.updates = std::move(updates_);
  batch.coalesced = coalesced_;
  updates_.clear();
  index_.clear();
  coalesced_ = 0;
  return batch;
}

}  // namespace tdr
