#ifndef TDR_NET_MESSAGE_POOL_H_
#define TDR_NET_MESSAGE_POOL_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/callback.h"
#include "storage/types.h"
#include "storage/update_log.h"

namespace tdr::net {

/// Pool of recycled, generation-tagged message records — the network's
/// half of the zero-allocation hot path (the simulator's event slab is
/// the other half, see sim/simulator.h).
///
/// Every in-flight, queued (outbox/inbox), or link-parked message is
/// one pooled record holding its endpoints and a sim::Callback (64-byte
/// inline buffer, SBO — see sim/callback.h). Records link into
/// intrusive FIFO queues through their `next` slot index, so parking a
/// message on a cut link or an offline node's queue is a pointer swing,
/// not a deque push. Releasing a record destroys the callback (running
/// RAII releases of any captured payload lease), bumps the slot's
/// generation, and free-lists the slot; steady state allocates nothing.
///
/// Handles are (generation << 32 | slot), like sim::EventId: a stale
/// handle — one that outlived its record — trips the Get() assert
/// instead of silently aliasing a recycled message.
class MessagePool {
 public:
  using Handle = std::uint64_t;
  static constexpr Handle kNil = 0;
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  struct Message {
    NodeId from = 0;
    NodeId to = 0;
    /// Duplicate-delivery count (fault injection); the network invokes
    /// `fn` this many times at arrival. Queue::count sums copies so
    /// pending-message accounting matches the one-record-per-copy
    /// representation this pool replaced.
    std::uint32_t copies = 1;
    sim::Callback fn;

   private:
    friend class MessagePool;
    std::uint32_t gen = 1;        // bumped on release; never 0
    std::uint32_t next = kNilSlot;  // queue / free-list link
  };

  /// Intrusive FIFO of pooled messages.
  struct Queue {
    std::uint32_t head = kNilSlot;
    std::uint32_t tail = kNilSlot;
    std::uint64_t count = 0;  // sum of Message::copies
    bool empty() const { return head == kNilSlot; }
  };

  MessagePool() = default;
  MessagePool(const MessagePool&) = delete;
  MessagePool& operator=(const MessagePool&) = delete;

  Handle Acquire(NodeId from, NodeId to, sim::Callback fn) {
    std::uint32_t slot;
    if (free_head_ != kNilSlot) {
      slot = free_head_;
      free_head_ = slots_[slot].next;
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Message& m = slots_[slot];
    m.from = from;
    m.to = to;
    m.copies = 1;
    m.fn = std::move(fn);
    m.next = kNilSlot;
    ++in_use_;
    return MakeHandle(slot);
  }

  /// The record behind a live handle. The reference is invalidated by
  /// the next Acquire() (slab growth) — do not hold it across one.
  Message& Get(Handle h) {
    std::uint32_t slot = SlotOf(h);
    assert(slot < slots_.size() && slots_[slot].gen == GenOf(h) &&
           "stale or invalid message handle");
    return slots_[slot];
  }

  /// Destroys the callback (releasing any captured payload lease),
  /// invalidates outstanding handles to the record, and recycles the
  /// slot.
  void Release(Handle h) {
    std::uint32_t slot = SlotOf(h);
    assert(slot < slots_.size() && slots_[slot].gen == GenOf(h) &&
           "double release or stale handle");
    Message& m = slots_[slot];
    m.fn = nullptr;
    ++m.gen;
    if (m.gen == 0) m.gen = 1;
    m.next = free_head_;
    free_head_ = slot;
    assert(in_use_ > 0);
    --in_use_;
  }

  void Push(Queue& q, Handle h) {
    std::uint32_t slot = SlotOf(h);
    Message& m = Get(h);
    m.next = kNilSlot;
    if (q.tail == kNilSlot) {
      q.head = slot;
    } else {
      slots_[q.tail].next = slot;
    }
    q.tail = slot;
    q.count += m.copies;
  }

  /// Pops the front record; kNil when empty.
  Handle Pop(Queue& q) {
    if (q.head == kNilSlot) return kNil;
    std::uint32_t slot = q.head;
    Message& m = slots_[slot];
    q.head = m.next;
    if (q.head == kNilSlot) q.tail = kNilSlot;
    q.count -= m.copies;
    m.next = kNilSlot;
    return MakeHandle(slot);
  }

  /// Detaches the whole chain (the queue becomes empty) for draining:
  ///
  ///   for (Handle h = pool.Detach(q); h != kNil;) {
  ///     Handle next = pool.NextOf(h);
  ///     ...  // may Push/Release h, may Acquire
  ///     h = next;
  ///   }
  ///
  /// Reading NextOf before processing makes the walk immune to the
  /// record being re-queued (which rewrites its link).
  Handle Detach(Queue& q) {
    Handle head = q.head == kNilSlot ? kNil : MakeHandle(q.head);
    q.head = kNilSlot;
    q.tail = kNilSlot;
    q.count = 0;
    return head;
  }

  /// Successor of `h` in the chain it was detached from.
  Handle NextOf(Handle h) {
    std::uint32_t next = Get(h).next;
    return next == kNilSlot ? kNil : MakeHandle(next);
  }

  std::size_t in_use() const { return in_use_; }
  std::size_t capacity() const { return slots_.size(); }

 private:
  static std::uint32_t SlotOf(Handle h) {
    return static_cast<std::uint32_t>(h);
  }
  static std::uint32_t GenOf(Handle h) {
    return static_cast<std::uint32_t>(h >> 32);
  }
  Handle MakeHandle(std::uint32_t slot) const {
    return (static_cast<Handle>(slots_[slot].gen) << 32) | slot;
  }

  std::vector<Message> slots_;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t in_use_ = 0;
};

/// Free list of reusable message payload objects (record vectors,
/// update batches).
///
/// A replication scheme ships a payload by acquiring a lease, filling
/// `*lease`, and moving the lease into the message callback's capture.
/// The lease destructor — run when the network releases the delivered
/// (or dropped) message — resets the payload via `PoolClear` (found by
/// ADL; the vector overload clears retaining capacity) and free-lists
/// the slot, so per-send payload allocation disappears once buffers
/// have grown to the workload's high-water mark. Handlers may be
/// invoked more than once (duplicate delivery): they must treat the
/// leased payload as read-only.
///
/// The slot store is shared (not owned by the pool object): a lease
/// captured in an undelivered message may legally outlive the scheme
/// that owns the pool — teardown order is scheme first, network (and
/// its parked messages) after — and the last lease standing frees the
/// store.
template <typename T>
class SharedPool {
 private:
  struct State {
    std::vector<std::unique_ptr<T>> slots;
    std::vector<std::uint32_t> free_list;
  };

 public:
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : state_(std::move(other.state_)), idx_(other.idx_) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        state_ = std::move(other.state_);
        idx_ = other.idx_;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { Release(); }

    T& operator*() const { return *state_->slots[idx_]; }
    T* operator->() const { return &**this; }
    explicit operator bool() const { return state_ != nullptr; }

   private:
    friend class SharedPool;
    Lease(std::shared_ptr<State> state, std::uint32_t idx)
        : state_(std::move(state)), idx_(idx) {}
    void Release() {
      if (state_ == nullptr) return;
      PoolClear(*state_->slots[idx_]);
      state_->free_list.push_back(idx_);
      state_.reset();
    }

    std::shared_ptr<State> state_;
    std::uint32_t idx_ = 0;
  };

  SharedPool() : state_(std::make_shared<State>()) {}
  SharedPool(const SharedPool&) = delete;
  SharedPool& operator=(const SharedPool&) = delete;

  /// A cleared payload object (previous capacity retained).
  Lease Acquire() {
    if (!state_->free_list.empty()) {
      std::uint32_t idx = state_->free_list.back();
      state_->free_list.pop_back();
      return Lease(state_, idx);
    }
    auto idx = static_cast<std::uint32_t>(state_->slots.size());
    state_->slots.push_back(std::make_unique<T>());
    return Lease(state_, idx);
  }

  std::size_t pooled() const { return state_->slots.size(); }

 private:
  std::shared_ptr<State> state_;
};

using RecordBufferPool = SharedPool<std::vector<UpdateRecord>>;

}  // namespace tdr::net

namespace tdr {

/// SharedPool reset hook for plain vector payloads (capacity retained).
template <typename T>
inline void PoolClear(std::vector<T>& v) {
  v.clear();
}

}  // namespace tdr

#endif  // TDR_NET_MESSAGE_POOL_H_
