#ifndef TDR_NET_UPDATE_BATCH_H_
#define TDR_NET_UPDATE_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/types.h"
#include "storage/update_log.h"
#include "util/flat_map.h"
#include "util/sim_time.h"

namespace tdr {

/// The wire unit of batched log shipping: one origin's committed
/// updates to one destination, coalesced over a flush window. Replaces
/// the per-commit replica-update message of the naive lazy schemes —
/// Parallel Deferred Update Replication and SCAR-style systems ship
/// exactly this shape: a commit-ordered, per-object-compacted slice of
/// the origin's update log.
///
/// Updates stay in commit order. When two updates in the same window
/// touch the same object, the builder compacts them into one record
/// whose `old_ts` is the FIRST update's pre-image timestamp and whose
/// (new_ts, new_value) are the LAST's — the receiver's timestamp-match
/// test then behaves as if it had applied the whole chain, and the
/// newer-wins test sees only the final state. That compaction is where
/// batching beats per-update shipping on hot keys: a key updated k
/// times per window ships (and locks, and costs Action_Time) once.
struct UpdateBatch {
  NodeId origin = kInvalidNodeId;
  NodeId dest = kInvalidNodeId;
  /// Per-(origin, dest) stream sequence number, starting at 1.
  std::uint64_t seq = 0;
  /// Sim time the batch's first update was enqueued — flush latency is
  /// ship time minus this.
  SimTime opened;
  /// Commit-ordered, per-object-compacted updates.
  std::vector<UpdateRecord> updates;
  /// Updates absorbed by compaction (they never hit the wire).
  std::uint64_t coalesced = 0;

  std::size_t size() const { return updates.size(); }
  bool empty() const { return updates.empty(); }
  std::string ToString() const;
};

/// SharedPool reset hook: pooled batches recycle with their update
/// vector's capacity retained.
inline void PoolClear(UpdateBatch& batch) {
  batch.updates.clear();
  batch.coalesced = 0;
}

/// Accumulates one (origin, dest) stream's updates between flushes.
/// Append is O(1); per-object compaction is an index hit. The builder
/// is deliberately network-oblivious — the replication layer decides
/// when to flush and where the batch goes.
class UpdateBatchBuilder {
 public:
  /// Adds `rec` to the pending batch. With `coalesce`, an update to an
  /// object already pending is folded into the existing record (chain
  /// compaction as documented on UpdateBatch) instead of appended.
  void Add(const UpdateRecord& rec, bool coalesce);

  std::size_t size() const { return updates_.size(); }
  bool empty() const { return updates_.empty(); }
  std::uint64_t coalesced() const { return coalesced_; }

  /// Moves the pending updates out as a batch stamped with the stream
  /// coordinates, and resets the builder for the next window.
  UpdateBatch Take(NodeId origin, NodeId dest, std::uint64_t seq,
                   SimTime opened);

  /// Allocation-free Take: swaps the pending updates into `*out`
  /// (whose cleared vector's capacity the builder inherits for the
  /// next window) instead of minting a new batch.
  void TakeInto(NodeId origin, NodeId dest, std::uint64_t seq,
                SimTime opened, UpdateBatch* out);

  /// Pre-grows the pending-update buffer. TakeInto swaps capacities
  /// with the receiving batch, so callers cycling builders against a
  /// batch pool should hold both sides at a common floor — otherwise
  /// every swap can hand a window a buffer smaller than its traffic.
  void Reserve(std::size_t n) { updates_.reserve(n); }

 private:
  std::vector<UpdateRecord> updates_;
  // Pending position per object, for compaction. Flat map so the
  // per-window fill/clear cycle allocates nothing at steady state;
  // keys are oid + 1 (key 0 is the map's empty sentinel).
  FlatMap64<std::uint32_t> index_;
  std::uint64_t coalesced_ = 0;
};

}  // namespace tdr

#endif  // TDR_NET_UPDATE_BATCH_H_
