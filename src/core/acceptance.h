#ifndef TDR_CORE_ACCEPTANCE_H_
#define TDR_CORE_ACCEPTANCE_H_

#include <functional>
#include <optional>
#include <string>

#include "txn/executor.h"

namespace tdr {

/// Verdict of an acceptance criterion on a reprocessed base transaction.
struct AcceptanceDecision {
  bool accepted = true;
  std::string reason;  // diagnostic returned to the mobile node on reject

  static AcceptanceDecision Accept() { return {true, ""}; }
  static AcceptanceDecision Reject(std::string why) {
    return {false, std::move(why)};
  }
};

/// "The base transaction has an acceptance criterion: a test the
/// resulting outputs must pass for the slightly different base
/// transaction results to be acceptable" (§7). The criterion sees both
/// the base execution's result and the original tentative execution's
/// result, so it can compare outputs.
using AcceptanceCriterion = std::function<AcceptanceDecision(
    const TxnResult& base, const TxnResult& tentative)>;

/// Final value the transaction wrote to `oid` (from its update records),
/// if it wrote it.
std::optional<Value> FinalValueOf(const TxnResult& result, ObjectId oid);

// Builders for the paper's §7 example criteria.

/// Accepts everything — the pure-commutative workload's criterion
/// ("It is fine if the checking account balance is different when the
/// transaction is reprocessed").
AcceptanceCriterion AcceptAlways();

/// "The bank balance must not go negative": the base transaction's
/// final value of `oid` must be >= `floor`.
AcceptanceCriterion ScalarAtLeast(ObjectId oid, std::int64_t floor);

/// "The price quote can not exceed the tentative quote": the base
/// transaction's final value of `oid` must be <= the tentative
/// transaction's final value of the same object.
AcceptanceCriterion NoWorseThanTentative(ObjectId oid);

/// "If the acceptance criteria requires the base and tentative
/// transaction have identical outputs": every read the base transaction
/// made must equal the corresponding tentative read.
AcceptanceCriterion IdenticalReads();

/// "If the price of an item has increased by a LARGE amount ... the
/// quote must be reconciled": tolerate drift between the base and
/// tentative final value of `oid` up to `percent` of the tentative
/// value (absolute drift for a zero tentative value is rejected unless
/// equal). The in-between point of the acceptance spectrum: looser than
/// IdenticalWrites, tighter than AcceptAlways.
AcceptanceCriterion WithinPercentOfTentative(ObjectId oid, double percent);

/// The strictest §7 criterion: the base transaction must write exactly
/// the values the tentative one wrote ("the replication system can do no
/// more than detect that there is a difference between the tentative and
/// base transaction"). Appropriate for non-commutative transactions,
/// where a different outcome means the tentative premise was violated.
AcceptanceCriterion IdenticalWrites();

/// Conjunction: accept only if both accept (reports the first reason).
AcceptanceCriterion Both(AcceptanceCriterion a, AcceptanceCriterion b);

}  // namespace tdr

#endif  // TDR_CORE_ACCEPTANCE_H_
