#include "core/two_tier.h"

#include <cassert>
#include <utility>

#include "util/logging.h"

namespace tdr {

namespace {

Cluster::Options MakeClusterOptions(const TwoTierSystem::Options& o) {
  Cluster::Options c;
  c.num_nodes = o.num_base + o.num_mobile;
  c.db_size = o.db_size;
  c.action_time = o.action_time;
  c.net = o.net;
  c.seed = o.seed;
  return c;
}

std::vector<NodeId> BaseNodeIds(std::uint32_t num_base) {
  std::vector<NodeId> ids(num_base);
  for (std::uint32_t i = 0; i < num_base; ++i) ids[i] = i;
  return ids;
}

}  // namespace

TwoTierSystem::TwoTierSystem(Options options)
    : options_(options),
      cluster_(MakeClusterOptions(options)),
      // "Most items are mastered at base nodes" — round-robin there.
      ownership_(Ownership::RoundRobin(options.db_size,
                                       BaseNodeIds(options.num_base))),
      lazy_master_(&cluster_, &ownership_),
      applier_(&cluster_.sim(), &cluster_.executor(),
               cluster_.metrics_or_null()) {
  assert(options_.num_base >= 1);
  for (NodeId id = options_.num_base;
       id < options_.num_base + options_.num_mobile; ++id) {
    mobiles_.emplace(id, std::unique_ptr<MobileNode>(
                             new MobileNode(this, cluster_.node(id))));
    // Mobile nodes start disconnected (that is their normal state).
    cluster_.net().SetConnected(id, false);
    // Reconnect wiring: §7 exchange protocol. Network flushes the
    // mobile's queued slave updates first (protocol step "accepts
    // replica updates from the base node"), then this hook discards
    // tentative versions and reprocesses pending tentative txns.
    MobileNode* m = mobiles_.at(id).get();
    cluster_.net().OnReconnect(id, [this, m]() {
      // Step 1: "Discards its tentative object versions since they will
      // soon be refreshed from the masters."
      m->tentative_.DiscardTentative();
      MaybeDrain(m);
    });
  }
}

void TwoTierSystem::SetMobileMaster(ObjectId oid, NodeId mobile_id) {
  assert(IsMobile(mobile_id));
  ownership_.SetOwner(oid, mobile_id);
}

Status TwoTierSystem::SubmitTentative(NodeId mobile_id, Program program,
                                      AcceptanceCriterion acceptance,
                                      TentativeCallback on_tentative,
                                      FinalCallback on_final) {
  if (!IsMobile(mobile_id)) {
    return Status::InvalidArgument("SubmitTentative: not a mobile node");
  }
  MobileNode* m = mobiles_.at(mobile_id).get();
  // SCOPE RULE: "they may involve objects mastered on base nodes and
  // mastered at the mobile node originating the transaction" (§7).
  for (ObjectId oid : program.Objects()) {
    NodeId owner = ownership_.OwnerOf(oid);
    if (!IsBase(owner) && owner != mobile_id) {
      return Status::InvalidArgument(StrPrintf(
          "scope rule violation: object %llu is mastered at node %u, "
          "which is neither a base node nor mobile node %u",
          (unsigned long long)oid, owner, mobile_id));
    }
  }
  MobileNode::PendingTxn item;
  item.seq = m->next_seq_++;
  item.program = std::move(program);
  item.acceptance = acceptance ? std::move(acceptance) : AcceptAlways();
  item.on_tentative_cb = std::move(on_tentative);
  item.on_final = std::move(on_final);
  ++tentative_submitted_;
  cluster_.metrics().Increment("twotier.tentative_submitted");
  m->to_execute_.push_back(std::move(item));
  if (!m->executing_) ExecuteNextTentative(m);
  return Status::OK();
}

void TwoTierSystem::ExecuteNextTentative(MobileNode* m) {
  if (m->to_execute_.empty()) {
    m->executing_ = false;
    return;
  }
  m->executing_ = true;
  // Tentative transactions run locally, serialized per mobile node (one
  // user per checkbook), costing Action_Time per op.
  SimTime duration =
      options_.action_time *
      static_cast<std::int64_t>(m->to_execute_.front().program.size());
  sim().ScheduleAfter(duration, [this, m]() {
    MobileNode::PendingTxn item = std::move(m->to_execute_.front());
    m->to_execute_.pop_front();
    // Apply the program to the tentative overlay, recording the result.
    TxnResult& res = item.tentative_result;
    res.origin = m->id();
    res.outcome = TxnOutcome::kCommitted;
    res.start_time = sim().Now() - options_.action_time *
                                       static_cast<std::int64_t>(
                                           item.program.size());
    res.end_time = sim().Now();
    std::map<ObjectId, Value> written;
    for (const Op& op : item.program.ops()) {
      auto cur = m->tentative_.Read(op.oid);
      assert(cur.ok());
      Value value = cur.value().value;
      if (op.type == OpType::kRead) {
        res.reads.push_back(value);
        continue;
      }
      op.ApplyTo(&value);
      Timestamp ts = m->node_->clock().Tick();
      Status s = m->tentative_.WriteTentative(op.oid, value, ts);
      assert(s.ok());
      (void)s;
      written[op.oid] = value;
      res.commit_ts = ts;
    }
    for (const auto& [oid, value] : written) {
      UpdateRecord rec;
      rec.oid = oid;
      rec.new_value = value;
      rec.new_ts = res.commit_ts;
      rec.origin = m->id();
      rec.commit_time = sim().Now();
      res.updates.push_back(std::move(rec));
    }
    ++m->tentative_committed_;
    cluster_.metrics().Increment("twotier.tentative_committed");
    if (item.on_tentative_cb) item.on_tentative_cb(res);
    // Queue for base reprocessing in tentative-commit order.
    m->pending_.push_back(std::move(item));
    if (m->connected()) MaybeDrain(m);
    ExecuteNextTentative(m);
  });
}

void TwoTierSystem::MaybeDrain(MobileNode* m) {
  if (m->draining_ || m->pending_.empty() || !m->connected()) return;
  m->draining_ = true;
  ReprocessFront(m, /*attempts=*/0);
}

void TwoTierSystem::ReprocessFront(MobileNode* m, int attempts) {
  if (m->pending_.empty() || !m->connected()) {
    m->draining_ = false;
    return;
  }
  // Peek, do not pop: on kUnavailable the item stays for the next
  // reconnect.
  const MobileNode::PendingTxn& front = m->pending_.front();
  // Capture the acceptance decision made inside the precommit hook so
  // the rejection diagnostic survives to the FinalOutcome.
  auto decision = std::make_shared<AcceptanceDecision>();
  auto acceptance = front.acceptance;
  TxnResult tentative_snapshot = front.tentative_result;
  lazy_master_.SubmitWithPrecommit(
      m->id(), front.program,
      [decision, acceptance, tentative_snapshot](const TxnResult& base) {
        *decision = acceptance(base, tentative_snapshot);
        return decision->accepted;
      },
      [this, m, attempts, decision](const TxnResult& base) {
        switch (base.outcome) {
          case TxnOutcome::kCommitted: {
            MobileNode::PendingTxn item = std::move(m->pending_.front());
            m->pending_.pop_front();
            ++base_committed_;
            base_deadlock_retries_ += attempts;
            cluster_.metrics().Increment("twotier.base_committed");
            FinalOutcome out;
            out.accepted = true;
            out.base_result = base;
            out.base_deadlock_retries = attempts;
            DeliverFinal(m, std::move(item), std::move(out));
            ReprocessFront(m, 0);
            return;
          }
          case TxnOutcome::kRejected: {
            MobileNode::PendingTxn item = std::move(m->pending_.front());
            m->pending_.pop_front();
            ++base_rejected_;
            base_deadlock_retries_ += attempts;
            cluster_.metrics().Increment("twotier.base_rejected");
            FinalOutcome out;
            out.accepted = false;
            out.reason = decision->reason;
            out.base_result = base;
            out.base_deadlock_retries = attempts;
            DeliverFinal(m, std::move(item), std::move(out));
            ReprocessFront(m, 0);
            return;
          }
          case TxnOutcome::kDeadlock: {
            // "If a base transaction deadlocks, it is resubmitted and
            // reprocessed until it succeeds" (§7).
            cluster_.metrics().Increment("twotier.base_deadlocks");
            if (attempts + 1 > options_.max_base_retries) {
              // Safety valve; with the paper's semantics this should be
              // unreachable in practice.
              MobileNode::PendingTxn item = std::move(m->pending_.front());
              m->pending_.pop_front();
              FinalOutcome out;
              out.accepted = false;
              out.reason = "base transaction exceeded deadlock retries";
              out.base_result = base;
              out.base_deadlock_retries = attempts + 1;
              DeliverFinal(m, std::move(item), std::move(out));
              ReprocessFront(m, 0);
              return;
            }
            sim().ScheduleAfter(options_.base_retry_backoff,
                                [this, m, attempts]() {
                                  ReprocessFront(m, attempts + 1);
                                });
            return;
          }
          case TxnOutcome::kUnavailable:
            // Mobile dropped off mid-drain; keep the item pending.
            cluster_.metrics().Increment("twotier.requeued_unavailable");
            m->draining_ = false;
            return;
        }
      });
}

void TwoTierSystem::DeliverFinal(MobileNode* m, MobileNode::PendingTxn item,
                                 FinalOutcome outcome) {
  if (!item.on_final) return;
  // The notice travels host -> mobile; if the mobile has dropped off it
  // waits in the mobile's inbox ("Accepts notice of the success or
  // failure of each tentative transaction" happens at the next
  // reconnect).
  NodeId host = HostOf(m->id());
  auto cb = item.on_final;
  cluster_.net().Send(host, m->id(),
                      [cb, outcome = std::move(outcome)]() { cb(outcome); });
}

void TwoTierSystem::SubmitBase(NodeId base_origin, const Program& program,
                               Executor::DoneCallback done) {
  assert(IsBase(base_origin));
  lazy_master_.Submit(base_origin, program, std::move(done));
}

Status TwoTierSystem::SubmitLocal(NodeId mobile_id, const Program& program,
                                  Executor::DoneCallback done) {
  if (!IsMobile(mobile_id)) {
    return Status::InvalidArgument("SubmitLocal: not a mobile node");
  }
  MobileNode* m = mobiles_.at(mobile_id).get();
  for (ObjectId oid : program.Objects()) {
    if (ownership_.OwnerOf(oid) != mobile_id) {
      return Status::InvalidArgument(StrPrintf(
          "local transaction touches object %llu not mastered at mobile "
          "node %u",
          (unsigned long long)oid, mobile_id));
    }
    if (m->tentative_.HasTentative(oid)) {
      // "They cannot read or write any tentative data because that
      // would make them tentative."
      return Status::FailedPrecondition(StrPrintf(
          "object %llu has a tentative version; a local transaction "
          "cannot touch it",
          (unsigned long long)oid));
    }
  }
  // The mobile node IS the master of everything in scope: execute
  // directly against its master copies. This works disconnected.
  Executor::RunOptions opts;
  opts.action_time = options_.action_time;
  opts.record_updates = true;
  cluster_.metrics().Increment("twotier.local_submitted");
  cluster_.executor().Run(
      mobile_id, LocalPlan(mobile_id, program), std::move(opts),
      [this, mobile_id, done = std::move(done)](const TxnResult& result) {
        if (result.outcome == TxnOutcome::kCommitted) {
          cluster_.metrics().Increment("twotier.local_committed");
          // Standard lazy-master slave refresh from the mobile master to
          // every other replica; the Network queues these in the
          // mobile's outbox until it reconnects.
          for (NodeId dest = 0; dest < cluster_.size(); ++dest) {
            if (dest == mobile_id) continue;
            Node* dest_node = cluster_.node(dest);
            std::vector<UpdateRecord> records = result.updates;
            cluster_.net().Send(
                mobile_id, dest,
                [this, dest_node,
                 records = std::move(records)]() mutable {
                  ReplicaApplier::Options aopts;
                  aopts.action_time = options_.action_time;
                  aopts.mode = ReplicaApplier::Mode::kNewerWins;
                  applier_.Apply(dest_node, std::move(records), aopts,
                                 nullptr);
                });
          }
        }
        if (done) done(result);
      });
  return Status::OK();
}

void TwoTierSystem::Connect(NodeId mobile_id) {
  assert(IsMobile(mobile_id));
  cluster_.net().SetConnected(mobile_id, true);
}

void TwoTierSystem::Disconnect(NodeId mobile_id) {
  assert(IsMobile(mobile_id));
  cluster_.net().SetConnected(mobile_id, false);
}

bool TwoTierSystem::BaseTierConverged() const {
  const ObjectStore& ref = cluster_.node(0)->store();
  for (NodeId id = 1; id < options_.num_base; ++id) {
    if (!cluster_.node(id)->store().SameValuesAs(ref)) return false;
  }
  return true;
}

}  // namespace tdr
