#include "core/acceptance.h"

#include "util/logging.h"

namespace tdr {

std::optional<Value> FinalValueOf(const TxnResult& result, ObjectId oid) {
  // Update records are one per (node, object); any record for `oid`
  // carries the same final value (all replicas written by one txn get
  // the same value), so the first match suffices.
  for (const UpdateRecord& rec : result.updates) {
    if (rec.oid == oid) return rec.new_value;
  }
  return std::nullopt;
}

AcceptanceCriterion AcceptAlways() {
  return [](const TxnResult&, const TxnResult&) {
    return AcceptanceDecision::Accept();
  };
}

AcceptanceCriterion ScalarAtLeast(ObjectId oid, std::int64_t floor) {
  return [oid, floor](const TxnResult& base, const TxnResult&) {
    std::optional<Value> v = FinalValueOf(base, oid);
    if (!v.has_value()) {
      // The base transaction did not touch the guarded object; nothing
      // to check.
      return AcceptanceDecision::Accept();
    }
    if (v->AsScalar() < floor) {
      return AcceptanceDecision::Reject(
          StrPrintf("object %llu final value %lld below floor %lld",
                    (unsigned long long)oid, (long long)v->AsScalar(),
                    (long long)floor));
    }
    return AcceptanceDecision::Accept();
  };
}

AcceptanceCriterion NoWorseThanTentative(ObjectId oid) {
  return [oid](const TxnResult& base, const TxnResult& tentative) {
    std::optional<Value> b = FinalValueOf(base, oid);
    std::optional<Value> t = FinalValueOf(tentative, oid);
    if (!b.has_value() || !t.has_value()) {
      return AcceptanceDecision::Accept();
    }
    if (b->AsScalar() > t->AsScalar()) {
      return AcceptanceDecision::Reject(StrPrintf(
          "object %llu base value %lld exceeds tentative quote %lld",
          (unsigned long long)oid, (long long)b->AsScalar(),
          (long long)t->AsScalar()));
    }
    return AcceptanceDecision::Accept();
  };
}

AcceptanceCriterion IdenticalReads() {
  return [](const TxnResult& base, const TxnResult& tentative) {
    if (base.reads.size() != tentative.reads.size()) {
      return AcceptanceDecision::Reject("read counts differ");
    }
    for (std::size_t i = 0; i < base.reads.size(); ++i) {
      if (base.reads[i] != tentative.reads[i]) {
        return AcceptanceDecision::Reject(StrPrintf(
            "read %zu differs: base=%s tentative=%s", i,
            base.reads[i].ToString().c_str(),
            tentative.reads[i].ToString().c_str()));
      }
    }
    return AcceptanceDecision::Accept();
  };
}

AcceptanceCriterion WithinPercentOfTentative(ObjectId oid,
                                             double percent) {
  return [oid, percent](const TxnResult& base, const TxnResult& tentative) {
    std::optional<Value> b = FinalValueOf(base, oid);
    std::optional<Value> t = FinalValueOf(tentative, oid);
    if (!b.has_value() || !t.has_value()) {
      return AcceptanceDecision::Accept();
    }
    double base_v = static_cast<double>(b->AsScalar());
    double tent_v = static_cast<double>(t->AsScalar());
    double drift = base_v - tent_v;
    if (drift < 0) drift = -drift;
    double allowed = tent_v < 0 ? -tent_v : tent_v;
    allowed = allowed * percent / 100.0;
    if (drift > allowed) {
      return AcceptanceDecision::Reject(StrPrintf(
          "object %llu drifted %.0f from tentative %.0f (> %.1f%%)",
          (unsigned long long)oid, drift, tent_v, percent));
    }
    return AcceptanceDecision::Accept();
  };
}

AcceptanceCriterion IdenticalWrites() {
  return [](const TxnResult& base, const TxnResult& tentative) {
    for (const UpdateRecord& rec : tentative.updates) {
      std::optional<Value> b = FinalValueOf(base, rec.oid);
      if (!b.has_value() || *b != rec.new_value) {
        return AcceptanceDecision::Reject(StrPrintf(
            "object %llu: base wrote %s, tentative wrote %s",
            (unsigned long long)rec.oid,
            b.has_value() ? b->ToString().c_str() : "(nothing)",
            rec.new_value.ToString().c_str()));
      }
    }
    return AcceptanceDecision::Accept();
  };
}

AcceptanceCriterion Both(AcceptanceCriterion a, AcceptanceCriterion b) {
  return [a = std::move(a), b = std::move(b)](const TxnResult& base,
                                              const TxnResult& tentative) {
    AcceptanceDecision da = a(base, tentative);
    if (!da.accepted) return da;
    return b(base, tentative);
  };
}

}  // namespace tdr
