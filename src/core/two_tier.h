#ifndef TDR_CORE_TWO_TIER_H_
#define TDR_CORE_TWO_TIER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/acceptance.h"
#include "replication/cluster.h"
#include "replication/lazy_master.h"
#include "replication/ownership.h"
#include "replication/replica_applier.h"
#include "storage/tentative_store.h"
#include "util/result.h"

namespace tdr {

class TwoTierSystem;

/// Outcome of reprocessing one tentative transaction at the base —
/// delivered to the mobile node's FinalCallback ("the originating node
/// and person who generated the transaction are informed it failed and
/// why it failed", §7).
struct FinalOutcome {
  bool accepted = false;
  std::string reason;          // rejection diagnostic
  TxnResult base_result;       // the base execution
  int base_deadlock_retries = 0;
};

/// A mobile node in the two-tier scheme (§7): usually disconnected,
/// holds a full replica (its best-known MASTER versions, refreshed by
/// ordinary lazy-master slave updates whenever connected) plus a
/// TENTATIVE overlay written by tentative transactions. Owned by
/// TwoTierSystem; user code reaches it for reads and stats.
class MobileNode {
 public:
  NodeId id() const { return node_->id(); }
  bool connected() const { return node_->connected(); }

  /// Reads through the tentative overlay: "If the mobile node queries
  /// this data it sees the tentative values" (§7).
  Result<StoredObject> Read(ObjectId oid) const {
    return tentative_.Read(oid);
  }

  /// True if `oid` currently has a tentative (not yet base-confirmed)
  /// version.
  bool HasTentative(ObjectId oid) const {
    return tentative_.HasTentative(oid);
  }

  /// Tentative transactions awaiting reprocessing at the base.
  std::size_t PendingCount() const { return pending_.size(); }

  std::uint64_t tentative_committed() const { return tentative_committed_; }

 private:
  friend class TwoTierSystem;

  struct PendingTxn {
    std::uint64_t seq = 0;
    Program program;
    AcceptanceCriterion acceptance;
    TxnResult tentative_result;
    std::function<void(const TxnResult&)> on_tentative_cb;
    std::function<void(const FinalOutcome&)> on_final;
  };

  MobileNode(TwoTierSystem* sys, Node* node)
      : sys_(sys), node_(node), tentative_(&node->store()) {}

  TwoTierSystem* sys_;
  Node* node_;
  TentativeStore tentative_;
  std::deque<PendingTxn> pending_;  // commit order
  // Tentative executions are serialized per mobile node (one user).
  std::deque<PendingTxn> to_execute_;
  bool executing_ = false;
  bool draining_ = false;
  std::uint64_t next_seq_ = 1;
  std::uint64_t tentative_committed_ = 0;
};

/// The paper's contribution: two-tier replication (§7).
///
///   * Base nodes [0, num_base) are always connected and master most
///     objects; among themselves they run ordinary lazy-master
///     replication.
///   * Mobile nodes [num_base, num_base+num_mobile) are usually
///     disconnected. They originate TENTATIVE transactions against
///     their local tentative versions; on reconnect, each tentative
///     transaction is re-executed as a BASE transaction against master
///     copies in commit order, subject to its acceptance criterion.
///     Deadlocked base transactions are resubmitted until they succeed;
///     rejected ones are reported back to the mobile node with a
///     diagnostic.
///
/// Key properties (§7, all covered by tests):
///   1. mobile nodes may update while disconnected;
///   2. base transactions execute with single-copy serializability;
///   3. a transaction is durable when its base transaction completes;
///   4. replicas at connected nodes converge to the base state;
///   5. if all transactions commute there are no reconciliations.
class TwoTierSystem {
 public:
  struct Options {
    std::uint32_t num_base = 2;
    std::uint32_t num_mobile = 2;
    std::uint64_t db_size = 1000;
    SimTime action_time = SimTime::Millis(10);
    Network::Options net;
    std::uint64_t seed = 42;
    /// Base transactions are retried on deadlock up to this many times.
    int max_base_retries = 1000;
    SimTime base_retry_backoff = SimTime::Millis(10);
  };

  explicit TwoTierSystem(Options options);

  TwoTierSystem(const TwoTierSystem&) = delete;
  TwoTierSystem& operator=(const TwoTierSystem&) = delete;

  Cluster& cluster() { return cluster_; }
  const Cluster& cluster() const { return cluster_; }
  sim::Simulator& sim() { return cluster_.sim(); }
  Ownership& ownership() { return ownership_; }
  const Ownership& ownership() const { return ownership_; }
  LazyMasterScheme& lazy_master() { return lazy_master_; }

  std::uint32_t num_base() const { return options_.num_base; }
  std::uint32_t num_mobile() const { return options_.num_mobile; }
  bool IsBase(NodeId id) const { return id < options_.num_base; }
  bool IsMobile(NodeId id) const {
    return id >= options_.num_base &&
           id < options_.num_base + options_.num_mobile;
  }
  /// The base node that hosts a mobile node's reconnect exchanges.
  NodeId HostOf(NodeId mobile) const {
    return static_cast<NodeId>((mobile - options_.num_base) %
                               options_.num_base);
  }

  MobileNode& mobile(NodeId id) { return *mobiles_.at(id); }
  const MobileNode& mobile(NodeId id) const { return *mobiles_.at(id); }

  /// Ids of all mobile nodes, ascending.
  std::vector<NodeId> MobileIds() const {
    std::vector<NodeId> ids;
    ids.reserve(mobiles_.size());
    for (const auto& [id, m] : mobiles_) ids.push_back(id);
    return ids;
  }

  /// Re-masters an object at a mobile node ("A mobile node may be the
  /// master of some data items", §7). Call before running transactions.
  void SetMobileMaster(ObjectId oid, NodeId mobile_id);

  using TentativeCallback = std::function<void(const TxnResult&)>;
  using FinalCallback = std::function<void(const FinalOutcome&)>;

  /// Submits a tentative transaction at a mobile node. Enforces the §7
  /// SCOPE RULE: the program may touch only objects mastered at base
  /// nodes or at this mobile node. `on_tentative` fires when the local
  /// tentative execution commits (immediately visible to local reads);
  /// `on_final` fires after base reprocessing, possibly much later.
  /// Either callback may be null.
  Status SubmitTentative(NodeId mobile_id, Program program,
                         AcceptanceCriterion acceptance,
                         TentativeCallback on_tentative,
                         FinalCallback on_final);

  /// Ordinary connected-operation transaction from a base node: plain
  /// lazy-master execution ("a two-tier system operates much like a
  /// lazy-master system", §7).
  void SubmitBase(NodeId base_origin, const Program& program,
                  Executor::DoneCallback done);

  /// §7 local transactions: "Local transactions that read and write only
  /// local data can be designed in any way you like. They cannot read or
  /// write any tentative data." The program may touch only objects
  /// MASTERED AT THIS MOBILE NODE; it commits immediately against the
  /// mobile's master copies (the mobile IS the master), is durable at
  /// once, and its replica updates propagate to the rest of the network
  /// lazily — queued while disconnected, flushed at reconnect.
  /// Fails kInvalidArgument on scope violation, kFailedPrecondition if
  /// the program would read tentative data.
  Status SubmitLocal(NodeId mobile_id, const Program& program,
                     Executor::DoneCallback done);

  /// Connectivity control for mobile nodes (wraps Network::SetConnected;
  /// reconnect triggers the §7 exchange protocol).
  void Connect(NodeId mobile_id);
  void Disconnect(NodeId mobile_id);

  // Aggregate statistics.
  std::uint64_t tentative_submitted() const { return tentative_submitted_; }
  std::uint64_t base_committed() const { return base_committed_; }
  std::uint64_t base_rejected() const { return base_rejected_; }
  std::uint64_t base_deadlock_retries() const {
    return base_deadlock_retries_;
  }

  /// True if every base node's replica matches base node 0 by value —
  /// property 4 restricted to the always-connected tier.
  bool BaseTierConverged() const;

 private:
  void ExecuteNextTentative(MobileNode* m);
  void MaybeDrain(MobileNode* m);
  void ReprocessFront(MobileNode* m, int attempts);
  void DeliverFinal(MobileNode* m, MobileNode::PendingTxn item,
                    FinalOutcome outcome);

  Options options_;
  Cluster cluster_;
  Ownership ownership_;
  LazyMasterScheme lazy_master_;
  ReplicaApplier applier_;  // lazy slave refreshes for local transactions
  std::map<NodeId, std::unique_ptr<MobileNode>> mobiles_;
  std::uint64_t tentative_submitted_ = 0;
  std::uint64_t base_committed_ = 0;
  std::uint64_t base_rejected_ = 0;
  std::uint64_t base_deadlock_retries_ = 0;
};

}  // namespace tdr

#endif  // TDR_CORE_TWO_TIER_H_
