#include "proc/process_coordinator.h"

#include <errno.h>
#include <signal.h>
#include <stdio.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <sstream>

#include "util/logging.h"

namespace tdr::proc {

namespace {

std::int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendLine(std::string* out, const char* key, std::uint64_t value) {
  out->append(StrPrintf("%s=%llu\n", key,
                        static_cast<unsigned long long>(value)));
}

}  // namespace

std::string NodeReport::Serialize() const {
  std::string out;
  AppendLine(&out, "node", node);
  AppendLine(&out, "state_digest", state_digest);
  AppendLine(&out, "matrix_fp", matrix_fp);
  AppendLine(&out, "metrics_fp", metrics_fp);
  AppendLine(&out, "plan_fp", plan_fp);
  AppendLine(&out, "committed", committed);
  AppendLine(&out, "invariant_violations", invariant_violations);
  AppendLine(&out, "shards", owned_shard_digests.size());
  for (std::size_t i = 0; i < owned_shard_digests.size(); ++i) {
    out.append(StrPrintf(
        "shard=%zu:%llu\n", i,
        static_cast<unsigned long long>(owned_shard_digests[i])));
  }
  for (const auto& [name, value] : counters) {
    out.append(StrPrintf("counter=%s:%llu\n", name.c_str(),
                         static_cast<unsigned long long>(value)));
  }
  return out;
}

bool NodeReport::Parse(const std::string& text, NodeReport* out,
                       std::string* error) {
  *out = NodeReport();
  std::size_t shards = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      *error = StrPrintf("report line without '=': %s", line.c_str());
      return false;
    }
    const std::string key = line.substr(0, eq);
    const std::string val = line.substr(eq + 1);
    char* end = nullptr;
    if (key == "shard") {
      const std::size_t colon = val.find(':');
      if (colon == std::string::npos) {
        *error = StrPrintf("malformed shard line: %s", line.c_str());
        return false;
      }
      const std::size_t idx =
          std::strtoull(val.c_str(), &end, 10);
      if (idx != out->owned_shard_digests.size()) {
        *error = StrPrintf("shard lines out of order at: %s", line.c_str());
        return false;
      }
      out->owned_shard_digests.push_back(
          std::strtoull(val.c_str() + colon + 1, &end, 10));
      continue;
    }
    if (key == "counter") {
      const std::size_t colon = val.rfind(':');
      if (colon == std::string::npos) {
        *error = StrPrintf("malformed counter line: %s", line.c_str());
        return false;
      }
      out->counters.emplace_back(
          val.substr(0, colon),
          std::strtoull(val.c_str() + colon + 1, &end, 10));
      continue;
    }
    const std::uint64_t num = std::strtoull(val.c_str(), &end, 10);
    if (end == val.c_str() || *end != '\0') {
      *error = StrPrintf("non-numeric value in: %s", line.c_str());
      return false;
    }
    if (key == "node") {
      out->node = static_cast<std::uint32_t>(num);
    } else if (key == "state_digest") {
      out->state_digest = num;
    } else if (key == "matrix_fp") {
      out->matrix_fp = num;
    } else if (key == "metrics_fp") {
      out->metrics_fp = num;
    } else if (key == "plan_fp") {
      out->plan_fp = num;
    } else if (key == "committed") {
      out->committed = num;
    } else if (key == "invariant_violations") {
      out->invariant_violations = num;
    } else if (key == "shards") {
      shards = num;
    } else {
      *error = StrPrintf("unknown report key: %s", key.c_str());
      return false;
    }
  }
  if (out->owned_shard_digests.size() != shards) {
    *error = StrPrintf("report declared %zu shards, carried %zu", shards,
                       out->owned_shard_digests.size());
    return false;
  }
  return true;
}

bool ProcessCoordinator::NodeContext::Barrier(std::string* error) {
  Frame drained;
  drained.kind = FrameKind::kDrained;
  drained.origin = node_;
  drained.dest = kCoordinatorId;
  if (!control_->Send(kCoordinatorId, drained) ||
      !control_->FlushAll(30000)) {
    *error = StrPrintf("drained handshake send failed: %s",
                       control_->error().c_str());
    return false;
  }
  Frame proceed;
  if (!control_->WaitFrame(kCoordinatorId, &proceed, 120000)) {
    *error = StrPrintf("no proceed from coordinator: %s",
                       control_->error().c_str());
    return false;
  }
  if (proceed.kind != FrameKind::kProceed) {
    *error = StrPrintf("expected proceed, got %s",
                       proceed.ToString().c_str());
    return false;
  }
  return true;
}

void ProcessCoordinator::NodeContext::Fail(const std::string& why) {
  TDR_LOG_ERROR("proc child %u failing: %s", node_, why.c_str());
  Frame err;
  err.kind = FrameKind::kError;
  err.origin = node_;
  err.dest = kCoordinatorId;
  err.payload = why;
  control_->Send(kCoordinatorId, err);
  control_->FlushAll(10000);
  ::_exit(1);
}

namespace {

/// Child-side main: builds transports over the fds this child keeps,
/// waits for its config, runs the body, ships the report, exits. Never
/// returns.
[[noreturn]] void ChildMain(std::uint32_t node, std::uint32_t num_nodes,
                            std::vector<SocketTransport::PeerEndpoint> data,
                            int control_fd,
                            const ProcessCoordinator::ChildBody& body) {
  SocketTransport control({{kCoordinatorId, control_fd}},
                          StrPrintf("child-%u-ctl", node));
  SocketTransport transport(std::move(data), StrPrintf("child-%u", node));
  Frame config;
  if (!control.WaitFrame(kCoordinatorId, &config, 120000) ||
      config.kind != FrameKind::kConfig) {
    TDR_LOG_ERROR("proc child %u: no config frame: %s", node,
                  control.error().c_str());
    ::_exit(2);
  }
  ProcessCoordinator::NodeContext ctx(node, num_nodes,
                                      std::move(config.payload),
                                      &transport, &control);
  if (transport.failed()) ctx.Fail(transport.error());
  NodeReport report = body(ctx);
  Frame out;
  out.kind = FrameKind::kReport;
  out.origin = node;
  out.dest = kCoordinatorId;
  out.payload = report.Serialize();
  if (!control.Send(kCoordinatorId, out) || !control.FlushAll(30000)) {
    ::_exit(3);
  }
  ::_exit(0);
}

void KillAll(const std::vector<pid_t>& pids) {
  for (pid_t pid : pids) {
    if (pid > 0) ::kill(pid, SIGKILL);
  }
}

/// Reaps every child, SIGKILLing any that outlives the deadline.
/// Appends a diagnosis for abnormal exits.
void ReapAll(const std::vector<pid_t>& pids, std::int64_t deadline_ms,
             std::string* abnormal) {
  std::vector<pid_t> left = pids;
  bool killed = false;
  while (true) {
    bool any = false;
    for (pid_t& pid : left) {
      if (pid <= 0) continue;
      any = true;
      int status = 0;
      const pid_t got = ::waitpid(pid, &status, WNOHANG);
      if (got == pid) {
        if (WIFSIGNALED(status) &&
            !(killed && WTERMSIG(status) == SIGKILL)) {
          abnormal->append(StrPrintf("; child pid %d killed by signal %d",
                                     static_cast<int>(pid),
                                     WTERMSIG(status)));
        } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0 &&
                   WEXITSTATUS(status) != 1) {
          // Exit 1 is NodeContext::Fail, already reported via kError.
          abnormal->append(StrPrintf("; child pid %d exited %d",
                                     static_cast<int>(pid),
                                     WEXITSTATUS(status)));
        }
        pid = -1;
      } else if (got < 0 && errno != EINTR) {
        pid = -1;
      }
    }
    if (!any) return;
    if (NowMs() >= deadline_ms && !killed) {
      abnormal->append("; SIGKILLed unresponsive children");
      KillAll(left);
      killed = true;
      deadline_ms = NowMs() + 5000;
    }
    ::usleep(2000);
  }
}

}  // namespace

ProcessCoordinator::Result ProcessCoordinator::Run(const Options& options,
                                                   const ChildBody& body) {
  Result result;
  const std::uint32_t n = options.num_nodes;
  if (n < 2) {
    result.error = "proc backend needs at least 2 nodes";
    return result;
  }
  // One stream socketpair per node pair (data) and per child (control),
  // all created before any fork so every child can inherit exactly the
  // ends it needs.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::pair<int, int>>
      pair_fds;
  std::vector<std::pair<int, int>> ctl_fds(n, {-1, -1});  // {parent, child}
  std::vector<int> all_fds;
  auto fail_setup = [&](const std::string& why) {
    for (int fd : all_fds) ::close(fd);
    result.error = why;
    return result;
  };
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) < 0) {
        return fail_setup(StrPrintf("socketpair(%u,%u): %s", i, j,
                                    strerror(errno)));
      }
      pair_fds[{i, j}] = {sv[0], sv[1]};
      all_fds.push_back(sv[0]);
      all_fds.push_back(sv[1]);
    }
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) < 0) {
      return fail_setup(StrPrintf("control socketpair(%u): %s", i,
                                  strerror(errno)));
    }
    ctl_fds[i] = {sv[0], sv[1]};
    all_fds.push_back(sv[0]);
    all_fds.push_back(sv[1]);
  }

  // Forked children inherit stdio buffers; flush so diagnostics are not
  // duplicated into every child.
  ::fflush(nullptr);
  std::vector<pid_t> pids(n, -1);
  for (std::uint32_t node = 0; node < n; ++node) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      KillAll(pids);
      std::string reap;
      ReapAll(pids, NowMs() + 5000, &reap);
      return fail_setup(StrPrintf("fork child %u: %s", node,
                                  strerror(errno)));
    }
    if (pid == 0) {
      // Child: keep this node's end of each of its pair sockets and its
      // control socket; close everything else.
      std::vector<SocketTransport::PeerEndpoint> data;
      for (auto& [key, fds] : pair_fds) {
        if (key.first == node) {
          data.push_back({key.second, fds.first});
          ::close(fds.second);
        } else if (key.second == node) {
          data.push_back({key.first, fds.second});
          ::close(fds.first);
        } else {
          ::close(fds.first);
          ::close(fds.second);
        }
      }
      for (std::uint32_t i = 0; i < n; ++i) {
        ::close(ctl_fds[i].first);
        if (i != node) ::close(ctl_fds[i].second);
      }
      ChildMain(node, n, std::move(data), ctl_fds[node].second, body);
    }
    pids[node] = pid;
  }
  // Parent: close all child-side ends.
  for (auto& [key, fds] : pair_fds) {
    ::close(fds.first);
    ::close(fds.second);
  }
  for (std::uint32_t i = 0; i < n; ++i) ::close(ctl_fds[i].second);

  std::vector<SocketTransport::PeerEndpoint> ctl_peers;
  for (std::uint32_t i = 0; i < n; ++i) {
    ctl_peers.push_back({i, ctl_fds[i].first});
  }
  SocketTransport control(std::move(ctl_peers), "coordinator");

  auto abort_run = [&](std::string why) {
    KillAll(pids);
    std::string reap;
    ReapAll(pids, NowMs() + 5000, &reap);
    result.error = why + reap;
    return result;
  };

  for (std::uint32_t node = 0; node < n; ++node) {
    Frame cfg;
    cfg.kind = FrameKind::kConfig;
    cfg.origin = kCoordinatorId;
    cfg.dest = node;
    cfg.payload = options.config;
    if (!control.Send(node, cfg)) {
      return abort_run(StrPrintf("config send to child %u: %s", node,
                                 control.error().c_str()));
    }
  }
  if (!control.FlushAll(options.phase_timeout_ms)) {
    return abort_run(StrPrintf("config flush: %s", control.error().c_str()));
  }

  // Phase 1: all children report drained (or the first kError wins).
  for (std::uint32_t node = 0; node < n; ++node) {
    Frame f;
    if (!control.WaitFrame(node, &f, options.phase_timeout_ms)) {
      return abort_run(StrPrintf("child %u never drained: %s", node,
                                 control.error().c_str()));
    }
    if (f.kind == FrameKind::kError) {
      return abort_run(StrPrintf("child %u failed: %s", node,
                                 f.payload.c_str()));
    }
    if (f.kind != FrameKind::kDrained) {
      return abort_run(StrPrintf("child %u sent %s while draining", node,
                                 f.ToString().c_str()));
    }
  }
  // Phase 2: release the barrier, collect reports.
  for (std::uint32_t node = 0; node < n; ++node) {
    Frame go;
    go.kind = FrameKind::kProceed;
    go.origin = kCoordinatorId;
    go.dest = node;
    if (!control.Send(node, go)) {
      return abort_run(StrPrintf("proceed send to child %u: %s", node,
                                 control.error().c_str()));
    }
  }
  if (!control.FlushAll(options.phase_timeout_ms)) {
    return abort_run(StrPrintf("proceed flush: %s",
                               control.error().c_str()));
  }
  result.reports.resize(n);
  for (std::uint32_t node = 0; node < n; ++node) {
    Frame f;
    if (!control.WaitFrame(node, &f, options.phase_timeout_ms)) {
      return abort_run(StrPrintf("child %u never reported: %s", node,
                                 control.error().c_str()));
    }
    if (f.kind == FrameKind::kError) {
      return abort_run(StrPrintf("child %u failed: %s", node,
                                 f.payload.c_str()));
    }
    if (f.kind != FrameKind::kReport) {
      return abort_run(StrPrintf("child %u sent %s instead of a report",
                                 node, f.ToString().c_str()));
    }
    std::string parse_error;
    if (!NodeReport::Parse(f.payload, &result.reports[node],
                           &parse_error)) {
      return abort_run(StrPrintf("child %u report unparsable: %s", node,
                                 parse_error.c_str()));
    }
    if (result.reports[node].node != node) {
      return abort_run(StrPrintf("child %u reported as node %u", node,
                                 result.reports[node].node));
    }
  }
  std::string abnormal;
  ReapAll(pids, NowMs() + options.phase_timeout_ms, &abnormal);
  if (!abnormal.empty()) {
    result.error = "children exited abnormally" + abnormal;
    return result;
  }
  result.ok = true;
  return result;
}

bool ProcessCoordinator::ValidateReports(
    const std::vector<NodeReport>& reports, std::string* error) {
  if (reports.empty()) {
    *error = "no reports";
    return false;
  }
  const NodeReport& first = reports.front();
  for (std::size_t i = 1; i < reports.size(); ++i) {
    const NodeReport& r = reports[i];
    if (r.state_digest != first.state_digest) {
      *error = StrPrintf(
          "state digest split-brain: node 0 -> %016llx, node %u -> %016llx",
          static_cast<unsigned long long>(first.state_digest), r.node,
          static_cast<unsigned long long>(r.state_digest));
      return false;
    }
    if (r.matrix_fp != first.matrix_fp) {
      *error = StrPrintf("shard matrix fp mismatch at node %u", r.node);
      return false;
    }
    if (r.metrics_fp != first.metrics_fp) {
      *error = StrPrintf("metrics fp mismatch at node %u", r.node);
      return false;
    }
    if (r.plan_fp != first.plan_fp) {
      *error = StrPrintf("fault plan fp mismatch at node %u", r.node);
      return false;
    }
    if (r.committed != first.committed) {
      *error = StrPrintf("committed count mismatch at node %u", r.node);
      return false;
    }
    if (r.owned_shard_digests.size() != first.owned_shard_digests.size()) {
      *error = StrPrintf("shard count mismatch at node %u", r.node);
      return false;
    }
  }
  return true;
}

std::vector<std::vector<std::uint64_t>>
ProcessCoordinator::AssembleShardMatrix(
    const std::vector<NodeReport>& reports) {
  std::vector<std::vector<std::uint64_t>> matrix;
  if (reports.empty()) return matrix;
  const std::size_t shards = reports.front().owned_shard_digests.size();
  matrix.assign(shards, std::vector<std::uint64_t>(reports.size(), 0));
  for (const NodeReport& r : reports) {
    for (std::size_t s = 0; s < shards && s < r.owned_shard_digests.size();
         ++s) {
      matrix[s][r.node] = r.owned_shard_digests[s];
    }
  }
  return matrix;
}

std::vector<std::pair<std::string, std::uint64_t>>
ProcessCoordinator::MergeCounters(const std::vector<NodeReport>& reports) {
  std::map<std::string, std::uint64_t> merged;
  for (const NodeReport& r : reports) {
    for (const auto& [name, value] : r.counters) merged[name] += value;
  }
  return {merged.begin(), merged.end()};
}

}  // namespace tdr::proc
