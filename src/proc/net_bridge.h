#ifndef TDR_PROC_NET_BRIDGE_H_
#define TDR_PROC_NET_BRIDGE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/network.h"
#include "proc/socket_transport.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"

namespace tdr::proc {

/// The multi-process backend's Network::DeliveryHook: in a child
/// process owning node `owned`, every cross-node delivery whose origin
/// is the owned node SHIPS a frame to the destination's process, and
/// every delivery destined to the owned node BLOCKS until the matching
/// frame arrives from the origin's process and verifies it field by
/// field — endpoints, per-(origin, dest) sequence number, virtual
/// delivery time, merged duplicate count, and the executed-event
/// schedule fingerprint.
///
/// Because every child executes the same recorded (time, seq) event
/// schedule (DESIGN.md §13's oracle construction, re-used at §15), the
/// two owners observe each delivery at the same point of the same
/// total order; the socket hop is therefore deadlock-free (the sender
/// side never blocks, and a blocked receiver's transport keeps
/// draining all peers) and any disagreement — a lost, reordered,
/// duplicated, truncated, or corrupted frame — is caught at the exact
/// delivery that diverged, not as a digest mismatch 10^5 events later.
class NetBridge : public Network::DeliveryHook {
 public:
  struct Options {
    /// How long a receive rendezvous may stall before the run is
    /// declared wedged (a peer process died or desynced).
    int wait_timeout_ms = 60000;
  };

  /// `on_fatal` is invoked (with a diagnosis) on any verification or
  /// transport failure; it must not return (the child reports the
  /// error on its control pipe and exits). `sim` provides the
  /// executed-event fingerprint; `rt` the virtual clock.
  NetBridge(std::uint32_t owned, std::uint32_t num_nodes,
            SocketTransport* transport, runtime::Runtime* rt,
            const sim::Simulator* sim, Options options,
            std::function<void(const std::string&)> on_fatal);

  void OnDeliver(NodeId from, NodeId to, std::uint32_t copies) override;

  std::uint64_t shipped() const { return shipped_; }
  std::uint64_t verified() const { return verified_; }
  /// Deliveries between two remote nodes (observed but no socket work).
  std::uint64_t observed_remote() const { return observed_remote_; }

 private:
  [[noreturn]] void Fatal(const std::string& why);
  std::uint64_t NextSeq(NodeId from, NodeId to) {
    return ++pair_seq_[static_cast<std::size_t>(from) * num_nodes_ + to];
  }

  std::uint32_t owned_;
  std::uint32_t num_nodes_;
  SocketTransport* transport_;
  runtime::Runtime* rt_;
  const sim::Simulator* sim_;
  Options options_;
  std::function<void(const std::string&)> on_fatal_;
  std::vector<std::uint64_t> pair_seq_;  // num_nodes^2 delivery counters
  std::uint64_t shipped_ = 0;
  std::uint64_t verified_ = 0;
  std::uint64_t observed_remote_ = 0;
};

}  // namespace tdr::proc

#endif  // TDR_PROC_NET_BRIDGE_H_
