#ifndef TDR_PROC_SOCKET_TRANSPORT_H_
#define TDR_PROC_SOCKET_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "proc/frame.h"

namespace tdr::proc {

/// Framed, nonblocking message transport over a set of Unix-domain
/// stream sockets — one per peer. This is the data plane of the
/// multi-process backend: each node process owns one transport over
/// its (num_nodes - 1) pair sockets, and the coordinator owns one over
/// the per-child control pipes.
///
/// Mechanics:
///  * Send() encodes into a per-peer send queue and flushes
///    opportunistically with writev (scatter-gather over the queued
///    frame buffers); a short write leaves the tail queued and arms
///    EPOLLOUT, so a send NEVER blocks — in-memory queues are the
///    backpressure buffer, which is what makes the delivery rendezvous
///    deadlock-free (see DESIGN.md §15.3).
///  * WaitFrame(peer) runs the epoll loop: every readable socket is
///    drained into its peer's FrameDecoder (partial-read reassembly)
///    and decoded frames queue per peer, every writable socket flushes
///    its backlog — so a process blocked waiting on one peer still
///    consumes traffic from, and completes handshakes with, all the
///    others.
///  * Any decode failure (bad magic/CRC/length), peer hangup with an
///    undelivered partial frame, or poll error poisons the transport;
///    failed()/error() report it.
///
/// Single-threaded by design, like everything inside one node process
/// (the thread backend dispatches one event at a time, so hook calls
/// are serialized even there).
class SocketTransport {
 public:
  struct PeerEndpoint {
    std::uint32_t id = 0;
    int fd = -1;
  };

  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t writev_calls = 0;
    std::uint64_t read_calls = 0;
    std::uint64_t partial_writes = 0;   // short writev left bytes queued
    std::uint64_t partial_frames = 0;   // frames reassembled across reads
    std::uint64_t eagain_waits = 0;     // epoll cycles taken while waiting
  };

  /// Takes ownership of every fd (closed on destruction) and switches
  /// them to nonblocking mode. `who` names the owner in error strings.
  SocketTransport(std::vector<PeerEndpoint> peers, std::string who);
  ~SocketTransport();

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Queues `frame` for `peer` and flushes as far as the socket
  /// accepts. Returns false if the transport has failed.
  bool Send(std::uint32_t peer, const Frame& frame);

  /// Pops the next received frame from `peer`, blocking in the epoll
  /// loop up to `timeout_ms`. Returns false on timeout, hangup, or
  /// stream corruption (error() explains).
  bool WaitFrame(std::uint32_t peer, Frame* out, int timeout_ms);

  /// Nonblocking pop of an already-received frame.
  bool TryNext(std::uint32_t peer, Frame* out);

  /// Flushes every send queue to the kernel, pumping reads meanwhile
  /// (so two mutually-flushing processes cannot wedge). False on
  /// timeout or failure.
  bool FlushAll(int timeout_ms);

  /// True if nothing is buffered anywhere: no queued sends, no
  /// received-but-unconsumed frames, no partial reassembly bytes. The
  /// drain barrier asserts this — a leftover frame means the processes
  /// disagreed about the schedule. `why` (optional) gets a diagnosis.
  bool Idle(std::string* why) const;

  std::size_t PendingReceived(std::uint32_t peer) const;
  std::size_t QueuedSendBytes() const;

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Peer {
    std::uint32_t id = 0;
    int fd = -1;
    FrameDecoder decoder;
    std::deque<Frame> inbox;
    std::deque<std::string> sendq;
    std::size_t send_off = 0;  // consumed prefix of sendq.front()
    bool want_write = false;
    bool hup = false;
  };

  Peer* FindPeer(std::uint32_t id);
  const Peer* FindPeer(std::uint32_t id) const;
  bool Fail(const std::string& why);
  /// One epoll_wait cycle; drains readable peers, flushes writable
  /// ones. Returns false on transport failure.
  bool Pump(int timeout_ms);
  bool FlushPeer(Peer& peer);
  bool ReadPeer(Peer& peer);
  void UpdateInterest(Peer& peer);

  std::vector<Peer> peers_;
  std::string who_;
  int epoll_fd_ = -1;
  Stats stats_;
  bool failed_ = false;
  std::string error_;
};

}  // namespace tdr::proc

#endif  // TDR_PROC_SOCKET_TRANSPORT_H_
