#ifndef TDR_PROC_FRAME_H_
#define TDR_PROC_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace tdr::proc {

/// What a frame carries. kDeliver frames ride the node-pair data
/// sockets (one per cross-node Network delivery); the rest are the
/// coordinator control protocol on the parent<->child pipes.
enum class FrameKind : std::uint8_t {
  kDeliver = 1,  // node->node: one Network delivery rendezvous
  kConfig = 2,   // parent->child: the serialized run configuration
  kDrained = 3,  // child->parent: local schedule fully drained
  kProceed = 4,  // parent->child: all nodes drained; capture digests
  kReport = 5,   // child->parent: digests + counters payload
  kError = 6,    // child->parent: verification/protocol failure
};

const char* FrameKindName(FrameKind kind);

/// One wire frame. For kDeliver the fixed fields describe the delivery
/// being rendezvoused: (origin, dest) endpoints, the per-(origin, dest)
/// delivery sequence number, the virtual time of the delivery event,
/// the merged duplicate count (fault injection), and the sender's
/// executed-event count at delivery time — the recorded-schedule
/// fingerprint that makes a receiver's verification exact, not
/// heuristic. Control frames use `origin` as the sending node and carry
/// their data in `payload`.
struct Frame {
  FrameKind kind = FrameKind::kDeliver;
  std::uint32_t origin = 0;
  std::uint32_t dest = 0;
  std::uint64_t pair_seq = 0;
  std::int64_t time_us = 0;
  std::uint32_t copies = 1;
  std::uint64_t schedule_fp = 0;
  std::string payload;

  std::string ToString() const;

  friend bool operator==(const Frame& a, const Frame& b) {
    return a.kind == b.kind && a.origin == b.origin && a.dest == b.dest &&
           a.pair_seq == b.pair_seq && a.time_us == b.time_us &&
           a.copies == b.copies && a.schedule_fp == b.schedule_fp &&
           a.payload == b.payload;
  }
};

/// Wire layout: [magic u32][len u32][crc u32][body], all little-endian.
/// `len` is the body size, `crc` is CRC32C (the WAL's Castagnoli
/// polynomial) over the body — a wrong length misaligns every later
/// header, and the magic + CRC pair turns that into a hard error
/// instead of silent garbage. The body packs the fixed Frame fields
/// (37 bytes) followed by the payload.
inline constexpr std::uint32_t kFrameMagic = 0x46524454u;  // "TDRF"
inline constexpr std::size_t kFrameHeaderBytes = 12;
inline constexpr std::size_t kFrameFixedBodyBytes = 37;
/// Upper bound on one body; a length above it is treated as stream
/// corruption (control payloads are reports and configs, far smaller).
inline constexpr std::uint32_t kMaxFrameBodyBytes = 16u << 20;

/// Appends the encoded frame to `*out`.
void EncodeFrame(const Frame& frame, std::string* out);

/// Convenience: the encoded bytes of one frame.
std::string EncodeFrameToString(const Frame& frame);

/// Incremental frame reassembler: feed it whatever byte windows the
/// socket hands you — single bytes, header/body splits, several frames
/// at once — and pop complete verified frames. Any integrity failure
/// (bad magic, oversized length, CRC mismatch, truncated fixed fields)
/// poisons the decoder permanently: a byte stream that lost framing
/// cannot be trusted to resynchronize.
class FrameDecoder {
 public:
  enum class Status {
    kFrame,     // *out holds the next complete frame
    kNeedMore,  // no complete frame buffered yet
    kError,     // stream corrupt; error() explains
  };

  void Feed(const void* data, std::size_t size);
  Status Next(Frame* out);

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  /// True if a partial frame (or partial header) is buffered.
  bool HasPartial() const { return !failed_ && pos_ < buf_.size(); }
  std::uint64_t frames_decoded() const { return frames_decoded_; }
  std::uint64_t bytes_fed() const { return bytes_fed_; }
  /// Frames whose bytes arrived across more than one Feed call — the
  /// reassembly-path counter the proc transport reports.
  std::uint64_t partial_frames() const { return partial_frames_; }

 private:
  Status Fail(const std::string& why);

  std::string buf_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  bool pending_partial_ = false;
  std::string error_;
  std::uint64_t frames_decoded_ = 0;
  std::uint64_t bytes_fed_ = 0;
  std::uint64_t partial_frames_ = 0;
};

/// FNV-1a over a byte range — the cheap deterministic fingerprint used
/// for metrics snapshots and fault plans crossing the control pipe.
std::uint64_t HashBytes(const void* data, std::size_t size,
                        std::uint64_t seed = 1469598103934665603ULL);

}  // namespace tdr::proc

#endif  // TDR_PROC_FRAME_H_
