#include "proc/socket_transport.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/uio.h>
#include <unistd.h>

#include <chrono>

#include "util/logging.h"

namespace tdr::proc {

namespace {

/// writev takes at most IOV_MAX iovecs; 16 covers any realistic burst
/// per flush round while keeping the stack array small.
constexpr int kMaxIov = 16;
constexpr std::size_t kReadChunk = 16 * 1024;

std::int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SocketTransport::SocketTransport(std::vector<PeerEndpoint> peers,
                                 std::string who)
    : who_(std::move(who)) {
  // A peer process can exit (crash, _exit after kError) while we still
  // hold queued bytes for it; writes must surface EPIPE, not kill us.
  ::signal(SIGPIPE, SIG_IGN);
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    Fail(StrPrintf("%s: epoll_create1: %s", who_.c_str(), strerror(errno)));
    return;
  }
  peers_.reserve(peers.size());
  for (const PeerEndpoint& ep : peers) {
    Peer p;
    p.id = ep.id;
    p.fd = ep.fd;
    const int flags = ::fcntl(p.fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(p.fd, F_SETFL, flags | O_NONBLOCK) < 0) {
      Fail(StrPrintf("%s: fcntl(O_NONBLOCK) peer %u: %s", who_.c_str(),
                     p.id, strerror(errno)));
    }
    peers_.push_back(std::move(p));
  }
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    struct epoll_event ev;
    ev.events = EPOLLIN;
    ev.data.u64 = i;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, peers_[i].fd, &ev) < 0) {
      Fail(StrPrintf("%s: epoll_ctl(ADD) peer %u: %s", who_.c_str(),
                     peers_[i].id, strerror(errno)));
    }
  }
}

SocketTransport::~SocketTransport() {
  for (Peer& p : peers_) {
    if (p.fd >= 0) ::close(p.fd);
  }
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

SocketTransport::Peer* SocketTransport::FindPeer(std::uint32_t id) {
  for (Peer& p : peers_) {
    if (p.id == id) return &p;
  }
  return nullptr;
}

const SocketTransport::Peer* SocketTransport::FindPeer(
    std::uint32_t id) const {
  for (const Peer& p : peers_) {
    if (p.id == id) return &p;
  }
  return nullptr;
}

bool SocketTransport::Fail(const std::string& why) {
  if (!failed_) {
    failed_ = true;
    error_ = why;
    TDR_LOG_ERROR("proc transport failed: %s", why.c_str());
  }
  return false;
}

void SocketTransport::UpdateInterest(Peer& peer) {
  const bool want = !peer.sendq.empty();
  if (want == peer.want_write || peer.fd < 0) return;
  peer.want_write = want;
  struct epoll_event ev;
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.u64 = static_cast<std::uint64_t>(&peer - peers_.data());
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, peer.fd, &ev) < 0) {
    Fail(StrPrintf("%s: epoll_ctl(MOD) peer %u: %s", who_.c_str(), peer.id,
                   strerror(errno)));
  }
}

bool SocketTransport::FlushPeer(Peer& peer) {
  while (!peer.sendq.empty()) {
    struct iovec iov[kMaxIov];
    int n = 0;
    std::size_t want = 0;
    for (const std::string& seg : peer.sendq) {
      if (n == kMaxIov) break;
      const std::size_t off = (n == 0) ? peer.send_off : 0;
      iov[n].iov_base = const_cast<char*>(seg.data()) + off;
      iov[n].iov_len = seg.size() - off;
      want += iov[n].iov_len;
      ++n;
    }
    ssize_t wrote = ::writev(peer.fd, iov, n);
    ++stats_.writev_calls;
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        UpdateInterest(peer);
        return true;  // kernel buffer full; EPOLLOUT resumes us
      }
      return Fail(StrPrintf("%s: writev to peer %u: %s", who_.c_str(),
                            peer.id, strerror(errno)));
    }
    stats_.bytes_sent += static_cast<std::uint64_t>(wrote);
    if (static_cast<std::size_t>(wrote) < want) ++stats_.partial_writes;
    std::size_t remaining = static_cast<std::size_t>(wrote);
    while (remaining > 0) {
      std::string& head = peer.sendq.front();
      const std::size_t head_left = head.size() - peer.send_off;
      if (remaining >= head_left) {
        remaining -= head_left;
        peer.send_off = 0;
        peer.sendq.pop_front();
      } else {
        peer.send_off += remaining;
        remaining = 0;
      }
    }
  }
  UpdateInterest(peer);
  return true;
}

bool SocketTransport::ReadPeer(Peer& peer) {
  for (;;) {
    // Scatter the read across two chunks: a frame burst larger than one
    // chunk lands in a single readv, and the decoder reassembles frames
    // that straddle the boundary — the partial-read path under test.
    char a[kReadChunk];
    char b[kReadChunk];
    struct iovec iov[2] = {{a, sizeof(a)}, {b, sizeof(b)}};
    ssize_t got = ::readv(peer.fd, iov, 2);
    ++stats_.read_calls;
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return Fail(StrPrintf("%s: readv from peer %u: %s", who_.c_str(),
                            peer.id, strerror(errno)));
    }
    if (got == 0) {
      peer.hup = true;
      return true;
    }
    stats_.bytes_received += static_cast<std::uint64_t>(got);
    const std::size_t first =
        static_cast<std::size_t>(got) < sizeof(a)
            ? static_cast<std::size_t>(got)
            : sizeof(a);
    peer.decoder.Feed(a, first);
    if (static_cast<std::size_t>(got) > sizeof(a)) {
      peer.decoder.Feed(b, static_cast<std::size_t>(got) - sizeof(a));
    }
    Frame f;
    for (;;) {
      FrameDecoder::Status st = peer.decoder.Next(&f);
      if (st == FrameDecoder::Status::kFrame) {
        ++stats_.frames_received;
        peer.inbox.push_back(std::move(f));
        continue;
      }
      if (st == FrameDecoder::Status::kError) {
        return Fail(StrPrintf("%s: stream from peer %u corrupt: %s",
                              who_.c_str(), peer.id,
                              peer.decoder.error().c_str()));
      }
      break;
    }
    stats_.partial_frames = 0;
    for (const Peer& p : peers_) {
      stats_.partial_frames += p.decoder.partial_frames();
    }
    if (static_cast<std::size_t>(got) < sizeof(a) + sizeof(b)) return true;
  }
}

bool SocketTransport::Pump(int timeout_ms) {
  if (failed_) return false;
  struct epoll_event events[16];
  int n;
  do {
    n = ::epoll_wait(epoll_fd_, events, 16, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    return Fail(
        StrPrintf("%s: epoll_wait: %s", who_.c_str(), strerror(errno)));
  }
  for (int i = 0; i < n; ++i) {
    Peer& peer = peers_[events[i].data.u64];
    if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
      if (!ReadPeer(peer)) return false;
    }
    if (events[i].events & EPOLLOUT) {
      if (!FlushPeer(peer)) return false;
    }
  }
  return !failed_;
}

bool SocketTransport::Send(std::uint32_t peer_id, const Frame& frame) {
  if (failed_) return false;
  Peer* peer = FindPeer(peer_id);
  if (peer == nullptr) {
    return Fail(StrPrintf("%s: send to unknown peer %u", who_.c_str(),
                          peer_id));
  }
  peer->sendq.push_back(EncodeFrameToString(frame));
  ++stats_.frames_sent;
  return FlushPeer(*peer);
}

bool SocketTransport::TryNext(std::uint32_t peer_id, Frame* out) {
  Peer* peer = FindPeer(peer_id);
  if (peer == nullptr || peer->inbox.empty()) return false;
  *out = std::move(peer->inbox.front());
  peer->inbox.pop_front();
  return true;
}

bool SocketTransport::WaitFrame(std::uint32_t peer_id, Frame* out,
                                int timeout_ms) {
  if (failed_) return false;
  Peer* peer = FindPeer(peer_id);
  if (peer == nullptr) {
    return Fail(StrPrintf("%s: wait on unknown peer %u", who_.c_str(),
                          peer_id));
  }
  const std::int64_t deadline = NowMs() + timeout_ms;
  for (;;) {
    if (TryNext(peer_id, out)) return true;
    if (peer->hup) {
      return Fail(StrPrintf("%s: peer %u hung up with no frame pending",
                            who_.c_str(), peer_id));
    }
    const std::int64_t left = deadline - NowMs();
    if (left <= 0) {
      // A timeout is a protocol stall, not stream corruption — report
      // it without poisoning the transport so the caller can decide.
      error_ = StrPrintf("%s: timeout (%d ms) waiting for frame from %u",
                         who_.c_str(), timeout_ms, peer_id);
      return false;
    }
    ++stats_.eagain_waits;
    if (!Pump(static_cast<int>(left < 100 ? left : 100))) return false;
  }
}

bool SocketTransport::FlushAll(int timeout_ms) {
  const std::int64_t deadline = NowMs() + timeout_ms;
  for (;;) {
    bool pending = false;
    for (Peer& p : peers_) {
      if (!FlushPeer(p)) return false;
      pending = pending || !p.sendq.empty();
    }
    if (!pending) return true;
    const std::int64_t left = deadline - NowMs();
    if (left <= 0) {
      error_ = StrPrintf("%s: timeout flushing send queues", who_.c_str());
      return false;
    }
    if (!Pump(static_cast<int>(left < 100 ? left : 100))) return false;
  }
}

bool SocketTransport::Idle(std::string* why) const {
  for (const Peer& p : peers_) {
    if (!p.sendq.empty()) {
      if (why != nullptr) {
        *why = StrPrintf("%zu unsent frame buffers for peer %u",
                         p.sendq.size(), p.id);
      }
      return false;
    }
    if (!p.inbox.empty()) {
      if (why != nullptr) {
        *why = StrPrintf("%zu unconsumed frames from peer %u (first %s)",
                         p.inbox.size(), p.id,
                         p.inbox.front().ToString().c_str());
      }
      return false;
    }
    if (p.decoder.HasPartial()) {
      if (why != nullptr) {
        *why = StrPrintf("partial frame bytes from peer %u", p.id);
      }
      return false;
    }
  }
  return true;
}

std::size_t SocketTransport::PendingReceived(std::uint32_t peer_id) const {
  const Peer* peer = FindPeer(peer_id);
  return peer != nullptr ? peer->inbox.size() : 0;
}

std::size_t SocketTransport::QueuedSendBytes() const {
  std::size_t total = 0;
  for (const Peer& p : peers_) {
    for (const std::string& seg : p.sendq) total += seg.size();
    total -= p.send_off;
  }
  return total;
}

}  // namespace tdr::proc
