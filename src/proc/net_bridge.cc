#include "proc/net_bridge.h"

#include "util/logging.h"

namespace tdr::proc {

NetBridge::NetBridge(std::uint32_t owned, std::uint32_t num_nodes,
                     SocketTransport* transport, runtime::Runtime* rt,
                     const sim::Simulator* sim, Options options,
                     std::function<void(const std::string&)> on_fatal)
    : owned_(owned),
      num_nodes_(num_nodes),
      transport_(transport),
      rt_(rt),
      sim_(sim),
      options_(options),
      on_fatal_(std::move(on_fatal)),
      pair_seq_(static_cast<std::size_t>(num_nodes) * num_nodes, 0) {}

void NetBridge::Fatal(const std::string& why) {
  on_fatal_(why);
  // on_fatal must not return; if it does, we cannot continue executing
  // a schedule the peers no longer agree with.
  TDR_LOG_ERROR("NetBridge fatal handler returned: %s", why.c_str());
  ::abort();
}

void NetBridge::OnDeliver(NodeId from, NodeId to, std::uint32_t copies) {
  // Every child advances the same per-pair counter on every cross-node
  // delivery it observes, whether or not it owns an endpoint — that is
  // what lets the receiving side predict the exact sequence number the
  // sender stamped.
  const std::uint64_t seq = NextSeq(from, to);
  if (from != owned_ && to != owned_) {
    ++observed_remote_;
    return;
  }
  Frame expect;
  expect.kind = FrameKind::kDeliver;
  expect.origin = from;
  expect.dest = to;
  expect.pair_seq = seq;
  expect.time_us = rt_->Now().micros();
  expect.copies = copies;
  expect.schedule_fp = sim_->executed_events();
  if (from == owned_) {
    if (!transport_->Send(to, expect)) {
      Fatal(StrPrintf("node %u: ship of %s failed: %s", owned_,
                      expect.ToString().c_str(),
                      transport_->error().c_str()));
    }
    ++shipped_;
    return;
  }
  // to == owned_: block until the origin's process ships the matching
  // frame, then verify every field against the locally computed
  // expectation. Frames per pair socket are FIFO, so the head frame
  // must BE this delivery — anything else is a desync.
  Frame got;
  if (!transport_->WaitFrame(from, &got, options_.wait_timeout_ms)) {
    Fatal(StrPrintf("node %u: no frame from node %u for %s: %s", owned_,
                    from, expect.ToString().c_str(),
                    transport_->error().c_str()));
  }
  if (!(got == expect)) {
    Fatal(StrPrintf("node %u: delivery mismatch: expected %s got %s",
                    owned_, expect.ToString().c_str(),
                    got.ToString().c_str()));
  }
  ++verified_;
}

}  // namespace tdr::proc
