#ifndef TDR_PROC_PROCESS_COORDINATOR_H_
#define TDR_PROC_PROCESS_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "proc/socket_transport.h"

namespace tdr::proc {

/// The coordinator's peer id on a child's control transport.
inline constexpr std::uint32_t kCoordinatorId = 0xffffff00u;

/// What one node process reports back over its control pipe after the
/// drain barrier. The digests let the parent check two things:
///  * every child computed the SAME full-cluster digest (they all ran
///    the identical schedule to the same state), and
///  * the per-shard matrix ASSEMBLED from each owner's column — one
///    row slice per OS process — matches that same state, so the
///    authoritative copy of every replica agrees too.
struct NodeReport {
  std::uint32_t node = 0;
  std::uint64_t state_digest = 0;
  /// FNV-1a over the full shard×node digest matrix as this child saw it.
  std::uint64_t matrix_fp = 0;
  /// FNV-1a over the metrics snapshot text (0 if metrics disabled).
  std::uint64_t metrics_fp = 0;
  /// Fingerprint of the fault plan the child ran (config integrity).
  std::uint64_t plan_fp = 0;
  std::uint64_t committed = 0;
  std::uint64_t invariant_violations = 0;
  /// Per shard, the digest of the OWNED node's replica — this child's
  /// column of the matrix.
  std::vector<std::uint64_t> owned_shard_digests;
  /// Sorted (name, value) transport/bridge counters, merged by the
  /// parent into the run outcome.
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  std::string Serialize() const;
  static bool Parse(const std::string& text, NodeReport* out,
                    std::string* error);
};

/// Forks one OS process per node, wires a Unix-domain stream socket
/// pair per node pair (the data plane) plus one control socketpair per
/// child, and runs the control protocol:
///
///   parent: kConfig(payload) to every child
///   child:  builds its cluster from the payload, runs the schedule,
///           flushes, sends kDrained
///   parent: once ALL children drained -> kProceed to every child
///   child:  verifies its transport is idle, captures digests, sends
///           kReport(serialized NodeReport), _exit(0)
///   any verification failure -> kError(diagnosis), nonzero exit
///
/// The two-phase drain barrier exists so no child tears down its
/// sockets while a peer might still need to converse with it, and so
/// the final idle check runs after every process has provably stopped
/// sending.
class ProcessCoordinator {
 public:
  struct Options {
    std::uint32_t num_nodes = 0;
    /// Opaque run configuration shipped in the kConfig frame.
    std::string config;
    /// Parent-side patience for each protocol phase; a child that
    /// wedges past this is SIGKILLed and reported.
    int phase_timeout_ms = 120000;
  };

  /// Everything a child body needs: identity, the config payload, the
  /// data-plane transport (peers = all other node ids), and the
  /// control-protocol helpers.
  class NodeContext {
   public:
    NodeContext(std::uint32_t node, std::uint32_t num_nodes,
                std::string config, SocketTransport* data,
                SocketTransport* control)
        : node_(node),
          num_nodes_(num_nodes),
          config_(std::move(config)),
          data_(data),
          control_(control) {}

    std::uint32_t node() const { return node_; }
    std::uint32_t num_nodes() const { return num_nodes_; }
    const std::string& config() const { return config_; }
    SocketTransport* data() { return data_; }

    /// Drain barrier: kDrained up, block for kProceed. False (with
    /// diagnosis) if the coordinator went away.
    bool Barrier(std::string* error);

    /// Reports a fatal child-side failure (kError frame) and exits the
    /// process. Never returns — a forked child must not unwind back
    /// into the test harness.
    [[noreturn]] void Fail(const std::string& why);

   private:
    std::uint32_t node_;
    std::uint32_t num_nodes_;
    std::string config_;
    SocketTransport* data_;
    SocketTransport* control_;
  };

  /// Runs in the forked child; returns the report to ship. Use
  /// ctx.Fail() for any error path.
  using ChildBody = std::function<NodeReport(NodeContext& ctx)>;

  struct Result {
    bool ok = false;
    std::string error;
    /// One report per node, indexed by node id (valid when ok).
    std::vector<NodeReport> reports;
  };

  /// Forks, runs, collects, reaps. Never throws; all failure modes
  /// (child kError, crash, wedge, malformed report) land in
  /// Result::error.
  static Result Run(const Options& options, const ChildBody& body);

  /// Cross-child equality checks on the collected reports; false with
  /// a diagnosis on the first disagreement.
  static bool ValidateReports(const std::vector<NodeReport>& reports,
                              std::string* error);

  /// matrix[shard][node] assembled from each owner's column.
  static std::vector<std::vector<std::uint64_t>> AssembleShardMatrix(
      const std::vector<NodeReport>& reports);

  /// Sums each counter name across reports.
  static std::vector<std::pair<std::string, std::uint64_t>> MergeCounters(
      const std::vector<NodeReport>& reports);
};

}  // namespace tdr::proc

#endif  // TDR_PROC_PROCESS_COORDINATOR_H_
