#include "proc/frame.h"

#include <cstring>

#include "util/logging.h"
#include "wal/crc32c.h"

namespace tdr::proc {

namespace {

void PutU32(std::string* out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

std::uint32_t GetU32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t GetU64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

const char* FrameKindName(FrameKind kind) {
  switch (kind) {
    case FrameKind::kDeliver:
      return "deliver";
    case FrameKind::kConfig:
      return "config";
    case FrameKind::kDrained:
      return "drained";
    case FrameKind::kProceed:
      return "proceed";
    case FrameKind::kReport:
      return "report";
    case FrameKind::kError:
      return "error";
  }
  return "?";
}

std::string Frame::ToString() const {
  return StrPrintf(
      "[%s %u->%u seq=%llu t=%lldus copies=%u fp=%llu payload=%zuB]",
      FrameKindName(kind), origin, dest,
      static_cast<unsigned long long>(pair_seq),
      static_cast<long long>(time_us), copies,
      static_cast<unsigned long long>(schedule_fp), payload.size());
}

void EncodeFrame(const Frame& frame, std::string* out) {
  std::string body;
  body.reserve(kFrameFixedBodyBytes + frame.payload.size());
  body.push_back(static_cast<char>(frame.kind));
  PutU32(&body, frame.origin);
  PutU32(&body, frame.dest);
  PutU64(&body, frame.pair_seq);
  PutU64(&body, static_cast<std::uint64_t>(frame.time_us));
  PutU32(&body, frame.copies);
  PutU64(&body, frame.schedule_fp);
  body.append(frame.payload);
  PutU32(out, kFrameMagic);
  PutU32(out, static_cast<std::uint32_t>(body.size()));
  PutU32(out, wal::Crc32c(body.data(), body.size()));
  out->append(body);
}

std::string EncodeFrameToString(const Frame& frame) {
  std::string out;
  EncodeFrame(frame, &out);
  return out;
}

void FrameDecoder::Feed(const void* data, std::size_t size) {
  if (failed_ || size == 0) return;
  bytes_fed_ += size;
  // Compact the consumed prefix before growing; the buffer only ever
  // holds whole undecoded frames plus at most one partial tail.
  if (pos_ > 0) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(static_cast<const char*>(data), size);
}

FrameDecoder::Status FrameDecoder::Fail(const std::string& why) {
  failed_ = true;
  error_ = why;
  return Status::kError;
}

FrameDecoder::Status FrameDecoder::Next(Frame* out) {
  if (failed_) return Status::kError;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderBytes) {
    pending_partial_ = avail > 0;
    return Status::kNeedMore;
  }
  const char* head = buf_.data() + pos_;
  const std::uint32_t magic = GetU32(head);
  if (magic != kFrameMagic) {
    return Fail(StrPrintf("bad frame magic 0x%08x", magic));
  }
  const std::uint32_t len = GetU32(head + 4);
  if (len > kMaxFrameBodyBytes) {
    return Fail(StrPrintf("frame body length %u exceeds cap %u", len,
                          kMaxFrameBodyBytes));
  }
  if (len < kFrameFixedBodyBytes) {
    return Fail(StrPrintf("frame body length %u below fixed fields (%zu)",
                          len, kFrameFixedBodyBytes));
  }
  if (avail < kFrameHeaderBytes + len) {
    pending_partial_ = true;
    return Status::kNeedMore;
  }
  const std::uint32_t want_crc = GetU32(head + 8);
  const char* body = head + kFrameHeaderBytes;
  const std::uint32_t got_crc = wal::Crc32c(body, len);
  if (want_crc != got_crc) {
    return Fail(StrPrintf("frame CRC mismatch: header 0x%08x body 0x%08x",
                          want_crc, got_crc));
  }
  out->kind = static_cast<FrameKind>(static_cast<unsigned char>(body[0]));
  out->origin = GetU32(body + 1);
  out->dest = GetU32(body + 5);
  out->pair_seq = GetU64(body + 9);
  out->time_us = static_cast<std::int64_t>(GetU64(body + 17));
  out->copies = GetU32(body + 25);
  out->schedule_fp = GetU64(body + 29);
  out->payload.assign(body + kFrameFixedBodyBytes,
                      len - kFrameFixedBodyBytes);
  pos_ += kFrameHeaderBytes + len;
  ++frames_decoded_;
  if (pending_partial_) {
    ++partial_frames_;
    pending_partial_ = false;
  }
  return Status::kFrame;
}

std::uint64_t HashBytes(const void* data, std::size_t size,
                        std::uint64_t seed) {
  std::uint64_t h = seed;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace tdr::proc
