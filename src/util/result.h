#ifndef TDR_UTIL_RESULT_H_
#define TDR_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace tdr {

/// Result<T> holds either a value of type T or a non-OK Status — the
/// StatusOr idiom. Accessing the value of an errored Result is a
/// programming error and asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error Status. Constructing a Result
  /// from an OK status is a bug; it is converted to an internal error so
  /// the mistake is observable rather than silently empty.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;            // OK iff value_ is engaged
  std::optional<T> value_;
};

/// Assigns the value of the Result expression `rexpr` to `lhs`, or
/// early-returns its status from the enclosing function.
#define TDR_ASSIGN_OR_RETURN(lhs, rexpr)            \
  TDR_ASSIGN_OR_RETURN_IMPL_(                       \
      TDR_RESULT_CONCAT_(_tdr_result, __LINE__), lhs, rexpr)

#define TDR_RESULT_CONCAT_INNER_(a, b) a##b
#define TDR_RESULT_CONCAT_(a, b) TDR_RESULT_CONCAT_INNER_(a, b)
#define TDR_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace tdr

#endif  // TDR_UTIL_RESULT_H_
