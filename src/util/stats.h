#ifndef TDR_UTIL_STATS_H_
#define TDR_UTIL_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tdr {

/// Online mean/variance accumulator (Welford). O(1) space, numerically
/// stable; used by benches to report measured rates with confidence
/// intervals across simulation repetitions.
class OnlineStats {
 public:
  OnlineStats() = default;

  void Add(double x);

  /// Merges another accumulator into this one (parallel Welford).
  void Merge(const OnlineStats& other);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

  /// Standard error of the mean.
  double stderr_mean() const;

  /// Half-width of the ~95% confidence interval on the mean (1.96 sigma;
  /// fine for the sample counts benches use).
  double ci95_half_width() const;

  std::string ToString() const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-boundary histogram with power-of-two-ish buckets, in the spirit
/// of the RocksDB statistics histograms. Records latency-like values
/// (e.g. lock wait durations in simulated microseconds).
class Histogram {
 public:
  Histogram();

  void Add(std::uint64_t value);
  void Merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  double mean() const;
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }

  /// Approximate percentile via linear interpolation within the bucket.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  std::string ToString() const;

 private:
  static const std::vector<std::uint64_t>& Boundaries();

  std::vector<std::uint64_t> buckets_;  // parallel to Boundaries()
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace tdr

#endif  // TDR_UTIL_STATS_H_
