#ifndef TDR_UTIL_FLAT_MAP_H_
#define TDR_UTIL_FLAT_MAP_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace tdr {

/// Open-addressed linear-probe hash map from a 64-bit key to a small
/// trivially-copyable value, built for steady-state-zero-allocation
/// hot paths (lock-manager reverse index, batch-builder coalescing
/// index). Two properties matter there:
///
///  * deletion is backward-shift, not tombstone: a workload that
///    inserts and erases forever (every transaction does) never
///    degrades the table or forces a cleanup rehash — the table only
///    reallocates when *live* occupancy crosses the load limit, which
///    a bounded-concurrency workload reaches once and never again;
///  * keys hash through a Fibonacci mix, so the sequential ids this
///    codebase uses (TxnIds, ObjectIds) spread instead of clustering.
///
/// Key 0 is reserved as the empty sentinel (kInvalidTxnId is 0 and
/// object ids are offset by callers that need id 0).
template <typename Value>
class FlatMap64 {
 public:
  static constexpr std::uint64_t kEmptyKey = 0;

  FlatMap64() : slots_(kMinCapacity), mask_(kMinCapacity - 1) {}

  FlatMap64(const FlatMap64&) = delete;
  FlatMap64& operator=(const FlatMap64&) = delete;

  /// Pointer to the value for `key`, or null. Invalidated by the next
  /// Insert (possible rehash).
  Value* Find(std::uint64_t key) {
    assert(key != kEmptyKey);
    for (std::size_t i = IdealSlot(key);; i = (i + 1) & mask_) {
      if (slots_[i].key == key) return &slots_[i].value;
      if (slots_[i].key == kEmptyKey) return nullptr;
    }
  }
  const Value* Find(std::uint64_t key) const {
    return const_cast<FlatMap64*>(this)->Find(key);
  }

  /// Inserts `key` (which must be absent) mapping to `value`.
  void Insert(std::uint64_t key, Value value) {
    assert(key != kEmptyKey);
    if ((size_ + 1) * 4 > slots_.size() * 3) Grow();
    std::size_t i = IdealSlot(key);
    while (slots_[i].key != kEmptyKey) {
      assert(slots_[i].key != key && "duplicate insert");
      i = (i + 1) & mask_;
    }
    slots_[i] = Slot{key, value};
    ++size_;
  }

  /// Erases `key`; returns false if absent. Backward-shift deletion:
  /// the probe chain is compacted in place, no tombstones.
  bool Erase(std::uint64_t key) {
    assert(key != kEmptyKey);
    std::size_t i = IdealSlot(key);
    while (slots_[i].key != key) {
      if (slots_[i].key == kEmptyKey) return false;
      i = (i + 1) & mask_;
    }
    std::size_t hole = i;
    for (std::size_t j = (hole + 1) & mask_; slots_[j].key != kEmptyKey;
         j = (j + 1) & mask_) {
      // Move slot j into the hole unless it already sits within its
      // own probe chain segment (ideal position cyclically after the
      // hole). Standard linear-probe compaction.
      std::size_t ideal = IdealSlot(slots_[j].key);
      if (((j - ideal) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = slots_[j];
        hole = j;
      }
    }
    slots_[hole] = Slot{};
    --size_;
    return true;
  }

  /// Empties the table, retaining capacity.
  void Clear() {
    if (size_ == 0) return;
    std::fill(slots_.begin(), slots_.end(), Slot{});
    size_ = 0;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return slots_.size(); }

 private:
  static constexpr std::size_t kMinCapacity = 16;  // power of two

  struct Slot {
    std::uint64_t key = kEmptyKey;
    Value value{};
  };

  std::size_t IdealSlot(std::uint64_t key) const {
    // Fibonacci hashing: golden-ratio multiply, top bits index.
    return static_cast<std::size_t>(
               (key * 0x9E3779B97F4A7C15ull) >> 32) &
           mask_;
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    size_ = 0;
    for (const Slot& s : old) {
      if (s.key != kEmptyKey) {
        std::size_t i = IdealSlot(s.key);
        while (slots_[i].key != kEmptyKey) i = (i + 1) & mask_;
        slots_[i] = s;
        ++size_;
      }
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_;
  std::size_t size_ = 0;
};

}  // namespace tdr

#endif  // TDR_UTIL_FLAT_MAP_H_
