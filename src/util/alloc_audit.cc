#include "util/alloc_audit.h"

namespace tdr::alloc_internal {

// Defined here (tdr_util, always linked) so any TU can read the
// counters; only the hook TU in tdr_alloc_audit ever bumps them.
std::atomic<std::uint64_t> g_allocations{0};
std::atomic<std::uint64_t> g_deallocations{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<std::int64_t> g_trace_budget{0};
std::atomic<bool> g_hooks_linked{false};

}  // namespace tdr::alloc_internal
