#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <unordered_set>

namespace tdr {

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u) {
  // Standard PCG32 seeding sequence.
  Next();
  state_ += seed;
  Next();
}

std::uint32_t Rng::Next() {
  std::uint64_t oldstate = state_;
  state_ = oldstate * 6364136223846793005ULL + inc_;
  std::uint32_t xorshifted =
      static_cast<std::uint32_t>(((oldstate >> 18u) ^ oldstate) >> 27u);
  std::uint32_t rot = static_cast<std::uint32_t>(oldstate >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
}

std::uint64_t Rng::Next64() {
  return (static_cast<std::uint64_t>(Next()) << 32) | Next();
}

std::uint64_t Rng::UniformInt(std::uint64_t bound) {
  assert(bound > 0);
  if (bound == 1) return 0;
  // Unbiased rejection sampling (Lemire-style threshold on 64 bits).
  std::uint64_t threshold = (-bound) % bound;
  for (;;) {
    std::uint64_t r = Next64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::UniformRange(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(UniformInt(span));
}

double Rng::UniformDouble() {
  // 53 random bits into [0, 1).
  return (Next64() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Exponential(double mean) {
  assert(mean > 0.0);
  double u = UniformDouble();
  // u in [0,1); 1-u in (0,1] so the log is finite.
  return -mean * std::log(1.0 - u);
}

std::uint64_t Rng::Poisson(double mean) {
  assert(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 64.0) {
    // Knuth: multiply uniforms until the product drops below e^-mean.
    double limit = std::exp(-mean);
    double product = UniformDouble();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= UniformDouble();
    }
    return count;
  }
  // Normal approximation, adequate for large means.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  // Box-Muller; guard u1 away from 0.
  if (u1 < 1e-300) u1 = 1e-300;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  double v = mean + std::sqrt(mean) * z;
  return v < 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

std::vector<std::uint64_t> Rng::SampleWithoutReplacement(std::uint64_t n,
                                                         std::uint64_t k) {
  std::vector<std::uint64_t> out;
  out.reserve(k);
  SampleWithoutReplacementInto(n, k, &out);
  return out;
}

void Rng::SampleWithoutReplacementInto(std::uint64_t n, std::uint64_t k,
                                       std::vector<std::uint64_t>* out) {
  assert(k <= n);
  out->clear();
  // Floyd's algorithm: k iterations. Membership tests scan the (small)
  // output vector directly — k is a transaction's action count, so the
  // scan beats a hash set and keeps the call allocation-free once the
  // caller's scratch vector has grown to k. Draw-for-draw identical to
  // the set-based version: one UniformInt per iteration, same
  // replacement rule on duplicates.
  for (std::uint64_t j = n - k; j < n; ++j) {
    std::uint64_t t = UniformInt(j + 1);
    bool duplicate = false;
    for (std::uint64_t c : *out) {
      if (c == t) {
        duplicate = true;
        break;
      }
    }
    out->push_back(duplicate ? j : t);
  }
}

Rng Rng::Fork() { return Rng(Next64(), Next64() | 1); }

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  assert(theta > 0.0 && theta < 1.0);
  auto zeta = [theta](std::uint64_t count) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= count; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  };
  zetan_ = zeta(n);
  zeta2theta_ = zeta(2);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

std::uint64_t ZipfianGenerator::Next(Rng& rng) {
  double u = rng.UniformDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  double v = static_cast<double>(n_) *
             std::pow(eta_ * u - eta_ + 1.0, alpha_);
  std::uint64_t idx = static_cast<std::uint64_t>(v);
  return idx >= n_ ? n_ - 1 : idx;
}

}  // namespace tdr
