#ifndef TDR_UTIL_STATUS_H_
#define TDR_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace tdr {

/// Canonical error codes, a deliberately small subset of the usual
/// RocksDB/absl palette — enough to distinguish the failure classes that
/// arise in a replicated transaction system.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   // caller passed a bad parameter
  kNotFound = 2,          // object/node/transaction does not exist
  kAlreadyExists = 3,     // duplicate registration
  kFailedPrecondition = 4,// API called in the wrong state
  kAborted = 5,           // transaction aborted (deadlock victim, etc.)
  kConflict = 6,          // replica update conflict needing reconciliation
  kUnavailable = 7,       // node disconnected / master unreachable
  kRejected = 8,          // tentative transaction failed acceptance criteria
  kOutOfRange = 9,        // index/time out of bounds
  kInternal = 10,         // invariant violation inside the library
};

/// Returns the canonical lower-case name of `code` (e.g. "aborted").
std::string_view StatusCodeToString(StatusCode code);

/// Status describes the outcome of a fallible operation. Library code
/// never throws on expected failure paths (deadlock aborts, replication
/// conflicts, acceptance rejections are *normal* events in this domain);
/// it returns Status / Result<T> instead.
///
/// The OK status carries no message and is cheap to copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  // Factory helpers, one per code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Rejected(std::string msg) {
    return Status(StatusCode::kRejected, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsConflict() const { return code_ == StatusCode::kConflict; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsRejected() const { return code_ == StatusCode::kRejected; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK. The usual early-exit macro.
#define TDR_RETURN_IF_ERROR(expr)                    \
  do {                                               \
    ::tdr::Status _tdr_status = (expr);              \
    if (!_tdr_status.ok()) return _tdr_status;       \
  } while (false)

}  // namespace tdr

#endif  // TDR_UTIL_STATUS_H_
