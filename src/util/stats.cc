#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace tdr {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  std::uint64_t n = count_ + other.count_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::stderr_mean() const {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double OnlineStats::ci95_half_width() const { return 1.96 * stderr_mean(); }

std::string OnlineStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.6g +/- %.3g [min=%.6g max=%.6g sd=%.4g]",
                static_cast<unsigned long long>(count_), mean(),
                ci95_half_width(), min_, max_, stddev());
  return buf;
}

const std::vector<std::uint64_t>& Histogram::Boundaries() {
  // Upper bounds: 1,2,3,...,10, then 12,14,...  roughly exponential with
  // ~1.5x steps, up to 2^62.
  static const std::vector<std::uint64_t>& kBounds = *[] {
    auto* v = new std::vector<std::uint64_t>;
    for (std::uint64_t i = 1; i <= 10; ++i) v->push_back(i);
    std::uint64_t b = 10;
    while (b < (1ULL << 62)) {
      b += std::max<std::uint64_t>(1, b / 2);
      v->push_back(b);
    }
    return v;
  }();
  return kBounds;
}

Histogram::Histogram() : buckets_(Boundaries().size(), 0) {}

void Histogram::Add(std::uint64_t value) {
  const auto& bounds = Boundaries();
  auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  std::size_t idx = it == bounds.end() ? bounds.size() - 1
                                       : static_cast<std::size_t>(
                                             it - bounds.begin());
  ++buckets_[idx];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::Merge(const Histogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::mean() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  double rank = p / 100.0 * static_cast<double>(count_);
  const auto& bounds = Boundaries();
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    double lo_cum = static_cast<double>(cum);
    cum += buckets_[i];
    if (static_cast<double>(cum) >= rank) {
      double lo = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      double hi = static_cast<double>(bounds[i]);
      double frac =
          (rank - lo_cum) / static_cast<double>(buckets_[i]);
      double v = lo + frac * (hi - lo);
      return std::clamp(v, static_cast<double>(min_),
                        static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);
}

std::string Histogram::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%llu",
                static_cast<unsigned long long>(count_), mean(),
                Percentile(50), Percentile(95), Percentile(99),
                static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace tdr
