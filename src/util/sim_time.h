#ifndef TDR_UTIL_SIM_TIME_H_
#define TDR_UTIL_SIM_TIME_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace tdr {

/// Simulated time, measured in integer microseconds since simulation
/// start. Integer time keeps the event queue total order exact and
/// platform-independent (doubles would make tie-breaking fragile).
///
/// SimTime is a strong typedef: it supports ordering, addition of
/// durations, and conversion helpers, but will not silently mix with raw
/// integers.
class SimTime {
 public:
  constexpr SimTime() : micros_(0) {}
  constexpr explicit SimTime(std::int64_t micros) : micros_(micros) {}

  static constexpr SimTime Zero() { return SimTime(0); }
  static constexpr SimTime Micros(std::int64_t us) { return SimTime(us); }
  static constexpr SimTime Millis(std::int64_t ms) {
    return SimTime(ms * 1000);
  }
  static constexpr SimTime Seconds(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e6 + (s >= 0 ? 0.5 : -0.5)));
  }
  /// The largest representable time; used as an "infinitely far" horizon.
  static constexpr SimTime Max() {
    return SimTime(INT64_MAX);
  }

  constexpr std::int64_t micros() const { return micros_; }
  constexpr double seconds() const { return micros_ / 1e6; }

  std::string ToString() const {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6fs", seconds());
    return buf;
  }

  friend constexpr bool operator==(SimTime a, SimTime b) {
    return a.micros_ == b.micros_;
  }
  friend constexpr bool operator!=(SimTime a, SimTime b) {
    return a.micros_ != b.micros_;
  }
  friend constexpr bool operator<(SimTime a, SimTime b) {
    return a.micros_ < b.micros_;
  }
  friend constexpr bool operator<=(SimTime a, SimTime b) {
    return a.micros_ <= b.micros_;
  }
  friend constexpr bool operator>(SimTime a, SimTime b) {
    return a.micros_ > b.micros_;
  }
  friend constexpr bool operator>=(SimTime a, SimTime b) {
    return a.micros_ >= b.micros_;
  }

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime(a.micros_ + b.micros_);
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime(a.micros_ - b.micros_);
  }
  SimTime& operator+=(SimTime d) {
    micros_ += d.micros_;
    return *this;
  }

  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime(a.micros_ * k);
  }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) {
    return a * k;
  }

 private:
  std::int64_t micros_;
};

}  // namespace tdr

#endif  // TDR_UTIL_SIM_TIME_H_
