#ifndef TDR_UTIL_ALLOC_AUDIT_H_
#define TDR_UTIL_ALLOC_AUDIT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace tdr {

/// Heap-allocation audit counters.
///
/// The counters live in tdr_util (always linked, always zero-cost to
/// read), but they only ever move when the *hook* translation unit —
/// util/alloc_audit_hooks.cc, packaged as the `tdr_alloc_audit` static
/// library — is linked into the final binary. That TU replaces the
/// global `operator new` / `operator delete` with counting versions, so
/// only audit-aware targets (tests/alloc_audit_test, bench_hot_path)
/// pay for the hook; everything else keeps the stock allocator.
///
/// Counting is process-wide and thread-safe (relaxed atomics). Audited
/// measurement windows are expected to be single-threaded simulation
/// runs, so attribution is unambiguous there.
struct AllocStats {
  std::uint64_t allocations = 0;    // operator new calls
  std::uint64_t deallocations = 0;  // operator delete calls
  std::uint64_t bytes = 0;          // total bytes requested
};

namespace alloc_internal {
extern std::atomic<std::uint64_t> g_allocations;
extern std::atomic<std::uint64_t> g_deallocations;
extern std::atomic<std::uint64_t> g_bytes;
extern std::atomic<std::int64_t> g_trace_budget;
extern std::atomic<bool> g_hooks_linked;
}  // namespace alloc_internal

/// Debugging aid: dump a backtrace to stderr for each of the next
/// `count` operator-new calls (then go quiet again). No-op unless the
/// hook library is linked. Point an offending bench at this, pipe
/// stderr through addr2line, and the residual allocation sites fall
/// out — the localization half of the audit harness.
inline void TraceNextAllocations(std::int64_t count) {
  alloc_internal::g_trace_budget.store(count, std::memory_order_relaxed);
}

/// True when the counting operator new/delete replacement is linked
/// into this binary (i.e. the target links tdr_alloc_audit). When
/// false, AllocSnapshot() is frozen at zero and audit assertions are
/// vacuous — callers should skip rather than "pass".
inline bool AllocAuditLinked() {
  return alloc_internal::g_hooks_linked.load(std::memory_order_relaxed);
}

/// Current process-wide counter values.
inline AllocStats AllocSnapshot() {
  AllocStats s;
  s.allocations =
      alloc_internal::g_allocations.load(std::memory_order_relaxed);
  s.deallocations =
      alloc_internal::g_deallocations.load(std::memory_order_relaxed);
  s.bytes = alloc_internal::g_bytes.load(std::memory_order_relaxed);
  return s;
}

/// Measurement window: counts allocations since construction.
///
///   AllocScope scope;
///   ... hot path ...
///   EXPECT_EQ(scope.allocations(), 0u);
class AllocScope {
 public:
  AllocScope() : start_(AllocSnapshot()) {}

  std::uint64_t allocations() const {
    return AllocSnapshot().allocations - start_.allocations;
  }
  std::uint64_t deallocations() const {
    return AllocSnapshot().deallocations - start_.deallocations;
  }
  std::uint64_t bytes() const { return AllocSnapshot().bytes - start_.bytes; }

 private:
  AllocStats start_;
};

}  // namespace tdr

#endif  // TDR_UTIL_ALLOC_AUDIT_H_
