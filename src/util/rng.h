#ifndef TDR_UTIL_RNG_H_
#define TDR_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace tdr {

/// Deterministic pseudo-random number generator (PCG32, O'Neill 2014).
///
/// Every source of randomness in the simulator draws from an explicitly
/// seeded Rng so simulation runs are reproducible bit-for-bit across
/// platforms. Independent subsystems should use independent streams
/// (distinct `stream` values under the same seed) so adding draws in one
/// subsystem does not perturb another.
class Rng {
 public:
  /// Seeds the generator. Distinct (seed, stream) pairs produce
  /// statistically independent sequences.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 1);

  /// Uniform 32-bit value.
  std::uint32_t Next();

  /// Uniform 64-bit value.
  std::uint64_t Next64();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses unbiased
  /// rejection sampling.
  std::uint64_t UniformInt(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0). Used for
  /// Poisson inter-arrival times in the workload generator.
  double Exponential(double mean);

  /// Poisson-distributed count with the given mean (>= 0). Knuth's
  /// multiplication method for small means, normal approximation above
  /// 64 to stay O(1).
  std::uint64_t Poisson(double mean);

  /// Samples k distinct values uniformly from [0, n) without
  /// replacement (Floyd's algorithm). Requires k <= n. The result is in
  /// no particular order.
  std::vector<std::uint64_t> SampleWithoutReplacement(std::uint64_t n,
                                                      std::uint64_t k);

  /// Allocation-free form: fills `*out` (cleared first, capacity
  /// retained) with the same draws the vector-returning overload makes.
  void SampleWithoutReplacementInto(std::uint64_t n, std::uint64_t k,
                                    std::vector<std::uint64_t>* out);

  /// Returns a new generator carved from this one — convenient for
  /// handing each simulated node its own stream.
  Rng Fork();

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Zipfian generator over [0, n) with skew parameter theta in (0, 1),
/// following the standard Gray et al. / YCSB construction. theta -> 0 is
/// uniform-ish; theta -> 1 is heavily skewed. The paper's base model is
/// uniform (no hotspots); this exists for the hotspot ablation.
class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t n, double theta);

  std::uint64_t Next(Rng& rng);

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

}  // namespace tdr

#endif  // TDR_UTIL_RNG_H_
