#include "util/logging.h"

#include <cstdio>
#include <vector>

namespace tdr {

LogLevel Log::level_ = LogLevel::kWarn;

void Log::SetLevel(LogLevel level) { level_ = level; }

LogLevel Log::GetLevel() { return level_; }

void Log::Printf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  static const char* kPrefix[] = {"[debug] ", "[info]  ", "[warn]  ",
                                  "[error] ", ""};
  va_list ap;
  va_start(ap, fmt);
  std::string body = VStrPrintf(fmt, ap);
  va_end(ap);
  std::fprintf(stderr, "%s%s\n", kPrefix[static_cast<int>(level)],
               body.c_str());
}

std::string VStrPrintf(const char* fmt, va_list ap) {
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  if (n <= 0) {
    va_end(ap2);
    return "";
  }
  std::vector<char> buf(static_cast<std::size_t>(n) + 1);
  std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
  va_end(ap2);
  return std::string(buf.data(), static_cast<std::size_t>(n));
}

std::string StrPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::string out = VStrPrintf(fmt, ap);
  va_end(ap);
  return out;
}

}  // namespace tdr
