#ifndef TDR_UTIL_LOGGING_H_
#define TDR_UTIL_LOGGING_H_

#include <cstdarg>
#include <string>

namespace tdr {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Minimal leveled logger writing to stderr. Benches run with kWarn so
/// that measurement output on stdout stays machine-parseable; tests that
/// want protocol traces lower the level to kDebug.
class Log {
 public:
  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();

  /// printf-style logging.
  static void Printf(LogLevel level, const char* fmt, ...)
      __attribute__((format(printf, 2, 3)));

 private:
  static LogLevel level_;
};

/// printf-style formatting into a std::string.
std::string StrPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));
std::string VStrPrintf(const char* fmt, va_list ap);

#define TDR_LOG_DEBUG(...) \
  ::tdr::Log::Printf(::tdr::LogLevel::kDebug, __VA_ARGS__)
#define TDR_LOG_INFO(...) \
  ::tdr::Log::Printf(::tdr::LogLevel::kInfo, __VA_ARGS__)
#define TDR_LOG_WARN(...) \
  ::tdr::Log::Printf(::tdr::LogLevel::kWarn, __VA_ARGS__)
#define TDR_LOG_ERROR(...) \
  ::tdr::Log::Printf(::tdr::LogLevel::kError, __VA_ARGS__)

}  // namespace tdr

#endif  // TDR_UTIL_LOGGING_H_
