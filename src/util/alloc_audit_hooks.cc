// Counting replacements for the global allocation functions.
//
// This TU is compiled into the `tdr_alloc_audit` static library and
// linked ONLY into allocation-audited targets (tests/alloc_audit_test,
// bench_hot_path). Linking it replaces the C++ runtime's operator
// new/delete for the whole binary ([replacement.functions]); every
// other target keeps the stock allocator and pays nothing.
//
// The hooks forward to malloc/free and bump the relaxed atomics in
// util/alloc_audit.h. They must not themselves use operator new.

#include <execinfo.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <new>

#include "util/alloc_audit.h"

namespace {

using tdr::alloc_internal::g_allocations;
using tdr::alloc_internal::g_bytes;
using tdr::alloc_internal::g_deallocations;
using tdr::alloc_internal::g_hooks_linked;
using tdr::alloc_internal::g_trace_budget;

// Backtrace dump for TraceNextAllocations(). backtrace() itself can
// allocate on its first call (lazy libgcc load), so a thread-local
// reentrancy guard keeps that from recursing into the trace path.
thread_local bool g_in_trace = false;

void MaybeTrace(std::size_t size) {
  if (g_trace_budget.load(std::memory_order_relaxed) <= 0 || g_in_trace) {
    return;
  }
  if (g_trace_budget.fetch_sub(1, std::memory_order_relaxed) <= 0) return;
  g_in_trace = true;
  void* frames[24];
  int depth = backtrace(frames, 24);
  std::fprintf(stderr, "[alloc-audit] operator new(%zu):\n", size);
  // backtrace_symbols_fd writes without calling malloc.
  backtrace_symbols_fd(frames, depth, STDERR_FILENO);
  std::fprintf(stderr, "[alloc-audit] ----\n");
  g_in_trace = false;
}

// Flipped at static-init so AllocAuditLinked() reports the truth even
// before main(). Ordering with other static initializers is irrelevant:
// the counters are valid (constant-initialized) from load time.
const bool g_mark_linked = [] {
  g_hooks_linked.store(true, std::memory_order_relaxed);
  return true;
}();

void* CountedAlloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  MaybeTrace(size);
  if (align > alignof(std::max_align_t)) {
    void* p = nullptr;
    // aligned_alloc requires size to be a multiple of alignment.
    std::size_t rounded = (size + align - 1) / align * align;
    p = std::aligned_alloc(align, rounded);
    return p;
  }
  return std::malloc(size);
}

void CountedFree(void* p) {
  if (p == nullptr) return;
  g_deallocations.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = CountedAlloc(size, 0);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = CountedAlloc(size, 0);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size, 0);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size, 0);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = CountedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = CountedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return CountedAlloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return CountedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { CountedFree(p); }
void operator delete[](void* p) noexcept { CountedFree(p); }
void operator delete(void* p, std::size_t) noexcept { CountedFree(p); }
void operator delete[](void* p, std::size_t) noexcept { CountedFree(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  CountedFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  CountedFree(p);
}
void operator delete(void* p, std::align_val_t) noexcept { CountedFree(p); }
void operator delete[](void* p, std::align_val_t) noexcept { CountedFree(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  CountedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  CountedFree(p);
}
