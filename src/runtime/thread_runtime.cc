#include "runtime/thread_runtime.h"

#include <utility>

namespace tdr::runtime {

namespace {

using SteadyClock = std::chrono::steady_clock;

double ToSeconds(SteadyClock::duration d) {
  return std::chrono::duration<double>(d).count();
}

/// Accumulates the wall/sim costs of one Run/RunUntil call.
class RunScope {
 public:
  RunScope(double* wall, double* sim_secs, const sim::Simulator* clock)
      : wall_(wall),
        sim_secs_(sim_secs),
        clock_(clock),
        wall_start_(SteadyClock::now()),
        sim_start_(clock->Now()) {}
  ~RunScope() {
    *wall_ += ToSeconds(SteadyClock::now() - wall_start_);
    *sim_secs_ += (clock_->Now() - sim_start_).seconds();
  }

 private:
  double* wall_;
  double* sim_secs_;
  const sim::Simulator* clock_;
  SteadyClock::time_point wall_start_;
  SimTime sim_start_;
};

}  // namespace

ThreadRuntime::ThreadRuntime(sim::Simulator* clock, std::uint32_t num_nodes,
                             Options options, obs::MetricsRegistry* metrics)
    : clock_(clock),
      options_(options),
      metrics_(metrics),
      barrier_(num_nodes) {
  workers_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Spawn only after every Worker exists: a worker's loop touches just
  // its own slot, but the vector must not grow under it.
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    workers_[i]->thread = std::thread([this, i] { WorkerLoop(i); });
  }
}

ThreadRuntime::~ThreadRuntime() { Shutdown(); }

sim::EventId ThreadRuntime::ScheduleAtNode(std::uint32_t node, SimTime when,
                                           sim::Callback fn) {
  // The wrapper owns the real callback and lives in the clock's slab;
  // at fire time (coordinator) it hands the callback to the node's
  // worker and blocks until done, so the capture outlives execution.
  // For repeat series the same wrapper fires every tick.
  return clock_->ScheduleAt(when, [this, node, fn = std::move(fn)]() mutable {
    Dispatch(node, &fn);
  });
}

sim::EventId ThreadRuntime::ScheduleAfterNode(std::uint32_t node,
                                              SimTime delay,
                                              sim::Callback fn) {
  return ScheduleAtNode(
      node, clock_->Now() + (delay < SimTime::Zero() ? SimTime::Zero() : delay),
      std::move(fn));
}

sim::EventId ThreadRuntime::RepeatEvery(SimTime interval, sim::Callback fn) {
  return clock_->RepeatEvery(interval,
                             [this, fn = std::move(fn)]() mutable {
                               Dispatch(kAnyNode, &fn);
                             });
}

void ThreadRuntime::Dispatch(std::uint32_t node, sim::Callback* fn) {
  if (node >= workers_.size() || stopped_) {
    ++inline_events_;
    (*fn)();
    return;
  }
  Task task;
  task.fn = fn;
  task.done = &gate_;
  gate_.Reset();
  if (!workers_[node]->box.Push(&task)) {
    // Closed mailbox (shutdown race): degrade to inline execution —
    // same order, same result, just no thread hop.
    ++inline_events_;
    (*fn)();
    return;
  }
  ++dispatched_;
  gate_.Wait();
}

void ThreadRuntime::WorkerLoop(std::uint32_t index) {
  Worker& w = *workers_[index];
  while (Task* task = w.box.Pop()) {
    SteadyClock::time_point start = SteadyClock::now();
    (*task->fn)();
    w.busy += SteadyClock::now() - start;
    ++w.executed;
    if (task->done != nullptr) task->done->Signal();
  }
  // Mailbox closed and drained: rendezvous so no worker exits while a
  // sibling still holds undrained work.
  barrier_.ArriveAndWait();
}

void ThreadRuntime::Pace(SimTime next) {
  if (!pace_anchored_) {
    pace_anchored_ = true;
    pace_wall_start_ = SteadyClock::now();
    pace_sim_start_ = clock_->Now();
  }
  double sim_elapsed = (next - pace_sim_start_).seconds();
  if (sim_elapsed <= 0) return;
  std::this_thread::sleep_until(
      pace_wall_start_ +
      std::chrono::duration_cast<SteadyClock::duration>(
          std::chrono::duration<double>(sim_elapsed * options_.time_scale)));
}

std::uint64_t ThreadRuntime::RunUntil(SimTime horizon) {
  RunScope scope(&wall_seconds_, &sim_seconds_, clock_);
  if (options_.time_scale <= 0) return clock_->RunUntil(horizon);
  std::uint64_t ran = 0;
  SimTime next;
  while (clock_->PeekNextTime(&next) && next <= horizon) {
    Pace(next);
    if (!clock_->Step()) break;
    ++ran;
  }
  // Nothing left at or before the horizon; advance Now() to it, exactly
  // as the sim backend does.
  clock_->RunUntil(horizon);
  return ran;
}

std::uint64_t ThreadRuntime::Run(std::uint64_t max_events) {
  RunScope scope(&wall_seconds_, &sim_seconds_, clock_);
  if (options_.time_scale <= 0) return clock_->Run(max_events);
  std::uint64_t ran = 0;
  SimTime next;
  while (ran < max_events && clock_->PeekNextTime(&next)) {
    Pace(next);
    if (!clock_->Step()) break;
    ++ran;
  }
  return ran;
}

void ThreadRuntime::Shutdown() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& w : workers_) w->box.Close();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  PublishMetrics();
}

double ThreadRuntime::worker_busy_seconds() const {
  double total = 0;
  for (const auto& w : workers_) total += ToSeconds(w->busy);
  return total;
}

void ThreadRuntime::PublishMetrics() {
  if (metrics_ == nullptr) return;
  // Wall-clock-derived values go to kProfile metrics only: they are
  // nondeterministic by nature and must never leak into deterministic
  // snapshots (obs::SnapshotOptions excludes kProfile by default).
  obs::MetricsRegistry::StatsHandle busy =
      metrics_->GetProfile("runtime.worker_busy_seconds");
  obs::MetricsRegistry::StatsHandle depth =
      metrics_->GetProfile("runtime.mailbox_max_depth");
  obs::MetricsRegistry::StatsHandle util =
      metrics_->GetProfile("runtime.worker_utilization");
  for (const auto& w : workers_) {
    busy.Record(ToSeconds(w->busy));
    depth.Record(static_cast<double>(w->box.max_depth()));
    if (wall_seconds_ > 0) {
      util.Record(ToSeconds(w->busy) / wall_seconds_);
    }
  }
  if (sim_seconds_ > 0) {
    metrics_->GetProfile("runtime.wall_sim_ratio")
        .Record(wall_seconds_ / sim_seconds_);
  }
}

}  // namespace tdr::runtime
