#include "runtime/thread_runtime.h"

#include <cassert>
#include <utility>

namespace tdr::runtime {

namespace {

using SteadyClock = std::chrono::steady_clock;

double ToSeconds(SteadyClock::duration d) {
  return std::chrono::duration<double>(d).count();
}

/// Accumulates the wall/sim costs of one Run/RunUntil call.
class RunScope {
 public:
  RunScope(double* wall, double* sim_secs, const sim::Simulator* clock)
      : wall_(wall),
        sim_secs_(sim_secs),
        clock_(clock),
        wall_start_(SteadyClock::now()),
        sim_start_(clock->Now()) {}
  ~RunScope() {
    *wall_ += ToSeconds(SteadyClock::now() - wall_start_);
    *sim_secs_ += (clock_->Now() - sim_start_).seconds();
  }

 private:
  double* wall_;
  double* sim_secs_;
  const sim::Simulator* clock_;
  SteadyClock::time_point wall_start_;
  SimTime sim_start_;
};

/// The task whose callback is executing on this thread — the context
/// that routes Schedule* calls from inside a parallel group into the
/// task's deferred buffer. Thread-local so concurrent parallel-class
/// tasks each see their own context.
thread_local Task* tls_current_task = nullptr;

}  // namespace

ThreadRuntime::ThreadRuntime(sim::Simulator* clock, std::uint32_t num_nodes,
                             Options options, obs::MetricsRegistry* metrics)
    : clock_(clock),
      options_(options),
      metrics_(metrics),
      pool_(std::make_shared<TaskPool>(
          options.task_pool_capacity == 0 ? 1 : options.task_pool_capacity)),
      barrier_(num_nodes) {
  if (metrics_ != nullptr && options_.dispatch == DispatchMode::kEpoch) {
    epoch_width_profile_ = metrics_->GetProfile("runtime.epoch_width");
  }
  workers_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    workers_[i]->box.set_capacity(options_.mailbox_capacity);
  }
  // Spawn only after every Worker exists: a worker's loop touches just
  // its own slot, but the vector must not grow under it.
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    workers_[i]->thread = std::thread([this, i] { WorkerLoop(i); });
  }
}

ThreadRuntime::~ThreadRuntime() { Shutdown(); }

sim::EventId ThreadRuntime::Schedule(std::uint32_t node, SimTime when,
                                     sim::Callback fn, ExecClass cls) {
  Task* cur = tls_current_task;
  if (cur != nullptr && cur->parallel_group) {
    // Called from inside an in-flight parallel group: the shared event
    // core is off limits, so buffer the request on the calling task.
    // The coordinator replays buffers in plan-slot order at the group
    // barrier, which assigns exactly the sequence numbers the serial
    // oracle would have.
    DeferredSchedule d;
    d.node = node;
    d.when = when;
    d.cls = cls;
    d.fn = std::move(fn);
    cur->deferred.push_back(std::move(d));
    return sim::kInvalidEventId;
  }
  // Pooled wrapper: the callback moves into the task at schedule time,
  // so the lambda registered with the clock captures two pointers and
  // stays inside sim::Callback's inline buffer — no allocation.
  Task* t = pool_->Acquire();
  t->owned = std::move(fn);
  t->node = node;
  t->cls = cls;
  sim::EventId id =
      clock_->ScheduleAt(when, [this, lease = TaskLease(pool_, t)]() mutable {
        OnWrapperFire(lease.take());
      });
  t->origin = id;
  return id;
}

sim::EventId ThreadRuntime::RepeatEvery(SimTime interval, sim::Callback fn) {
  assert(!(tls_current_task != nullptr && tls_current_task->parallel_group) &&
         "RepeatEvery from a parallel-class task is unsupported");
  // The series' task holds the callback for its whole life and every
  // tick runs it borrowed (`fn` set): the wrapper's lease releases the
  // task when the series is cancelled or the clock is torn down.
  Task* t = pool_->Acquire();
  t->owned = std::move(fn);
  t->fn = &t->owned;
  t->node = kAnyNode;
  sim::EventId id = clock_->RepeatEvery(
      interval, [this, lease = TaskLease(pool_, t)]() mutable {
        OnRepeatFire(lease.get());
      });
  t->origin = id;
  return id;
}

bool ThreadRuntime::Cancel(sim::EventId id) {
  if (id == sim::kInvalidEventId) return false;
  bool hit = clock_->Cancel(id);
  // A same-timestamp cancel may target an event already collected into
  // the executing wave (popped from the clock, not yet run): sweep the
  // not-yet-executed plan suffix. Only exclusive tasks may Cancel, and
  // they run in strict plan order, so plan_cursor_ is the exact floor.
  Task* self = tls_current_task;
  for (std::size_t k = plan_cursor_; k < plan_.size(); ++k) {
    Task* t = plan_[k];
    if (t == self || t->cancelled || t->origin != id) continue;
    t->cancelled = true;
    hit = true;
    break;
  }
  return hit;
}

void ThreadRuntime::OnWrapperFire(Task* task) {
  if (collecting_) {
    plan_.push_back(task);
    return;
  }
  RunImmediate(task);
}

void ThreadRuntime::OnRepeatFire(Task* task) {
  if (collecting_) {
    plan_.push_back(task);
    return;
  }
  RunImmediate(task);
}

void ThreadRuntime::RunImmediate(Task* task) {
  const bool one_shot = task->fn == nullptr;
  const std::uint32_t node = task->node;
  if (node >= workers_.size() || stopped_) {
    ++inline_events_;
    RunTaskBody(task);
  } else {
    task->done = &gate_;
    task->weight = 1;
    gate_.Reset();
    if (workers_[node]->box.Push(task)) {
      ++dispatched_;
      gate_.Wait();
    } else {
      // Closed mailbox (shutdown race): degrade to inline execution —
      // same order, same result, just no thread hop.
      task->done = nullptr;
      ++inline_events_;
      RunTaskBody(task);
    }
  }
  if (one_shot) {
    pool_->Release(task);
  } else {
    task->done = nullptr;  // repeat tick: the wrapper keeps the task
  }
}

void ThreadRuntime::RunTaskBody(Task* task) {
  Task* prev = tls_current_task;
  tls_current_task = task;
  if (task->fn != nullptr) {
    (*task->fn)();
  } else {
    task->owned();
    // Destroy the capture (releasing pooled payload leases etc.) right
    // after the call, at the same serial position the sim oracle does.
    task->owned = nullptr;
  }
  tls_current_task = prev;
}

void ThreadRuntime::RunChainFrom(Task* head, Worker* worker) {
  Task* chain = head;
  while (chain != nullptr) {
    Task* next_chain = nullptr;
    for (Task* t = chain; t != nullptr;) {
      Task* next = t->run_next;
      if (t->cls == ExecClass::kExclusive && plan_cursor_ < t->plan_index) {
        // Execution progress for Cancel's sweep; ordered by the baton.
        plan_cursor_ = t->plan_index;
      }
      if (!t->cancelled) {
        if (worker != nullptr) {
          SteadyClock::time_point start = SteadyClock::now();
          RunTaskBody(t);
          worker->busy += SteadyClock::now() - start;
          ++worker->executed;
        } else {
          RunTaskBody(t);
        }
      }
      if (next == nullptr) {
        // Chain tail. Read everything needed before signalling: once
        // the gate fires the coordinator may recycle the task.
        Task* succ = t->chain_next;
        EpochGate* arrive = t->epoch_gate;
        Gate* done = t->done;
        if (succ != nullptr) {
          // Baton hand-off: push the successor chain straight to its
          // worker — one wake per node switch instead of two per event.
          Mailbox& box = workers_[succ->exec_node]->box;
          Mailbox::PushResult r = box.PushChain(
              succ, options_.overflow == OverflowPolicy::kBlock);
          if (r != Mailbox::PushResult::kOk) {
            if (r == Mailbox::PushResult::kFull) {
              sheds_.fetch_add(1, std::memory_order_relaxed);
            }
            next_chain = succ;  // full or closed: run it on this thread
          }
        }
        if (arrive != nullptr) {
          arrive->Arrive();
          if (worker != nullptr && options_.steal_untagged) {
            DrainStealPool(worker);
          }
        }
        if (done != nullptr) done->Signal();
      }
      t = next;
    }
    chain = next_chain;
  }
}

void ThreadRuntime::DrainStealPool(Worker* worker) {
  while (Task* t = steal_box_.TryPop()) {
    if (!t->cancelled) {
      if (worker != nullptr) {
        SteadyClock::time_point start = SteadyClock::now();
        RunTaskBody(t);
        worker->busy += SteadyClock::now() - start;
        ++worker->executed;
        steals_.fetch_add(1, std::memory_order_relaxed);
      } else {
        RunTaskBody(t);
      }
    }
    if (t->epoch_gate != nullptr) t->epoch_gate->Arrive();
  }
}

std::uint32_t ThreadRuntime::LaneOf(const Task* task,
                                    std::uint32_t prev_worker) const {
  if (stopped_ || workers_.empty()) return kCoord;
  if (task->node < workers_.size()) return task->node;
  if (!options_.steal_untagged) return kCoord;
  if (task->cls == ExecClass::kParallel) return kStealPool;
  // Untagged exclusive with stealing on: ride the chain in progress.
  return prev_worker < workers_.size() ? prev_worker : 0;
}

std::uint64_t ThreadRuntime::RunEpochs(SimTime horizon,
                                       std::uint64_t max_events,
                                       bool bounded_horizon) {
  std::uint64_t ran = 0;
  SimTime next;
  while (ran < max_events && clock_->PeekNextTime(&next) &&
         (!bounded_horizon || next <= horizon)) {
    if (options_.time_scale > 0) Pace(next);
    // Collect one WAVE: every ready event at `next`. Firing wrappers
    // append their tasks to the plan instead of dispatching. Events a
    // wave schedules back at the same timestamp (zero-delay follow-ups)
    // have higher seq and form the next wave — still same-T, exactly
    // the serial order.
    collecting_ = true;
    plan_.clear();
    const std::uint64_t budget = max_events - ran;
    std::uint64_t steps = 0;
    while (steps < budget) {
      if (!clock_->Step()) break;
      ++steps;
      SimTime t2;
      if (!clock_->PeekNextTime(&t2) || t2 != next) break;
    }
    collecting_ = false;
    ran += steps;
    ExecuteWave();
    ReleaseWave();
  }
  return ran;
}

void ThreadRuntime::ExecuteWave() {
  const std::size_t n = plan_.size();
  if (n == 0) return;
  ++epochs_;
  if (n > epoch_width_max_) epoch_width_max_ = n;
  if (n > plan_high_water_) plan_high_water_ = n;
  epoch_width_profile_.Record(static_cast<double>(n));
  plan_cursor_ = 0;
  for (std::size_t k = 0; k < n; ++k) {
    plan_[k]->plan_index = static_cast<std::uint32_t>(k);
  }
  std::size_t i = 0;
  while (i < n) {
    Task* t = plan_[i];
    if (t->cls == ExecClass::kParallel) {
      // Maximal run of parallel-class tasks: one concurrent group.
      std::size_t j = i;
      while (j < n && plan_[j]->cls == ExecClass::kParallel) ++j;
      ExecParallelGroup(i, j);
      i = j;
    } else if (LaneOf(t, kCoord) == kCoord) {
      // Untagged exclusive without stealing: inline on the
      // coordinator, exactly like turn-based dispatch.
      t->exec_node = kCoord;
      plan_cursor_ = i;
      if (!t->cancelled) RunTaskBody(t);
      ++i;
    } else {
      // Maximal run of worker-lane exclusive tasks: chained serial
      // segment, retired with one barrier.
      std::size_t j = i;
      while (j < n && plan_[j]->cls == ExecClass::kExclusive &&
             LaneOf(plan_[j], 0) != kCoord) {
        ++j;
      }
      ExecSerialSegment(i, j);
      i = j;
    }
  }
  plan_cursor_ = n;
  // Planned-lane accounting, applied after the wave so cancellation is
  // settled: deterministic even when sheds/steals move actual
  // execution around (see dispatched()).
  for (std::size_t k = 0; k < n; ++k) {
    Task* t = plan_[k];
    if (t->cancelled) continue;
    if (t->exec_node == kCoord) {
      ++inline_events_;
    } else {
      ++dispatched_;
    }
  }
}

void ThreadRuntime::ExecSerialSegment(std::size_t begin, std::size_t end) {
  // Resolve lanes left to right; untagged tasks (stealing on) ride the
  // chain they interrupt, or the first tagged successor when leading.
  std::uint32_t prev = kCoord;
  for (std::size_t k = begin; k < end; ++k) {
    Task* t = plan_[k];
    std::uint32_t lane = LaneOf(t, prev);
    if (prev == kCoord && t->node >= workers_.size()) {
      for (std::size_t m = k + 1; m < end; ++m) {
        if (plan_[m]->node < workers_.size()) {
          lane = plan_[m]->node;
          break;
        }
      }
    }
    t->exec_node = lane;
    prev = lane;
  }
  // Chain consecutive same-lane tasks (zero hand-offs inside a chain);
  // baton-link each chain's tail to the next chain's head; the last
  // tail owes the segment barrier.
  Task* first_chain = nullptr;
  Task* chain_head = nullptr;
  Task* tail = nullptr;
  std::uint32_t chain_len = 0;
  for (std::size_t k = begin; k < end; ++k) {
    Task* t = plan_[k];
    t->run_next = nullptr;
    t->chain_next = nullptr;
    t->epoch_gate = nullptr;
    t->done = nullptr;
    t->weight = 1;
    if (chain_head != nullptr && t->exec_node == chain_head->exec_node) {
      tail->run_next = t;
      tail = t;
      ++chain_len;
    } else {
      if (chain_head != nullptr) {
        chain_head->weight = chain_len;
        tail->chain_next = t;
      } else {
        first_chain = t;
      }
      chain_head = t;
      tail = t;
      chain_len = 1;
    }
  }
  chain_head->weight = chain_len;
  tail->epoch_gate = &epoch_gate_;
  epoch_gate_.Reset(1);
  Mailbox& box = workers_[first_chain->exec_node]->box;
  Mailbox::PushResult r =
      box.PushChain(first_chain, options_.overflow == OverflowPolicy::kBlock);
  if (r != Mailbox::PushResult::kOk) {
    if (r == Mailbox::PushResult::kFull) {
      sheds_.fetch_add(1, std::memory_order_relaxed);
    }
    RunChainFrom(first_chain, nullptr);
  }
  epoch_gate_.Wait();
}

void ThreadRuntime::ExecParallelGroup(std::size_t begin, std::size_t end) {
  const std::size_t num_workers = workers_.size();
  group_heads_.assign(num_workers, nullptr);
  group_tails_.assign(num_workers, nullptr);
  shed_chains_.clear();
  std::size_t chains = 0;
  std::size_t steal_tasks = 0;
  for (std::size_t k = begin; k < end; ++k) {
    Task* t = plan_[k];
    t->run_next = nullptr;
    t->chain_next = nullptr;
    t->epoch_gate = nullptr;
    t->done = nullptr;
    t->weight = 1;
    t->parallel_group = true;
    const std::uint32_t lane = LaneOf(t, kCoord);
    t->exec_node = lane;
    if (lane < num_workers) {
      // Same-node tasks keep FIFO order in one chain per worker.
      if (group_heads_[lane] == nullptr) {
        group_heads_[lane] = t;
        ++chains;
      } else {
        group_tails_[lane]->run_next = t;
        ++group_heads_[lane]->weight;
      }
      group_tails_[lane] = t;
    } else if (lane == kStealPool) {
      ++steal_tasks;
    }
  }
  // Arm the barrier before anything is in flight: one arrival per
  // chain (its tail) plus one per steal-pool task.
  epoch_gate_.Reset(chains + steal_tasks);
  for (std::size_t node = 0; node < num_workers; ++node) {
    Task* head = group_heads_[node];
    if (head == nullptr) continue;
    group_tails_[node]->epoch_gate = &epoch_gate_;
    Mailbox::PushResult r = workers_[node]->box.PushChain(
        head, options_.overflow == OverflowPolicy::kBlock);
    if (r == Mailbox::PushResult::kOk) continue;
    if (r == Mailbox::PushResult::kFull) {
      sheds_.fetch_add(1, std::memory_order_relaxed);
    }
    shed_chains_.push_back(head);
  }
  if (steal_tasks > 0) {
    for (std::size_t k = begin; k < end; ++k) {
      Task* t = plan_[k];
      if (t->exec_node != kStealPool) continue;
      t->epoch_gate = &epoch_gate_;
      if (steal_box_.PushChain(t, false) != Mailbox::PushResult::kOk) {
        // Closed (shutdown): run inline, still settle the barrier.
        if (!t->cancelled) RunTaskBody(t);
        epoch_gate_.Arrive();
      }
    }
  }
  // The coordinator's share while workers chew: chains shed by full
  // mailboxes, its own untagged tasks, then help drain the steal pool.
  for (Task* head : shed_chains_) RunChainFrom(head, nullptr);
  for (std::size_t k = begin; k < end; ++k) {
    Task* t = plan_[k];
    if (t->exec_node == kCoord && !t->cancelled) RunTaskBody(t);
  }
  DrainStealPool(nullptr);
  epoch_gate_.Wait();
  // Replay deferred schedules in plan-slot order — identical sequence
  // assignment to the serial oracle, which ran each callback (and its
  // schedules) at exactly this slot position.
  for (std::size_t k = begin; k < end; ++k) {
    Task* t = plan_[k];
    t->parallel_group = false;
    for (DeferredSchedule& d : t->deferred) {
      Schedule(d.node, d.when, std::move(d.fn), d.cls);
    }
    t->deferred.clear();
  }
}

void ThreadRuntime::ReleaseWave() {
  for (Task* t : plan_) {
    if (t->fn != nullptr) {
      // Repeat-series task: owned by its wrapper for the series' life;
      // clear only the wave-transient state.
      t->done = nullptr;
      t->weight = 1;
      t->parallel_group = false;
      t->cancelled = false;
      t->run_next = nullptr;
      t->chain_next = nullptr;
      t->epoch_gate = nullptr;
    } else {
      pool_->Release(t);
    }
  }
  plan_.clear();
}

void ThreadRuntime::WorkerLoop(std::uint32_t index) {
  Worker& w = *workers_[index];
  while (Task* task = w.box.Pop()) {
    RunChainFrom(task, &w);
  }
  // Mailbox closed and drained: rendezvous so no worker exits while a
  // sibling still holds undrained work.
  barrier_.ArriveAndWait();
}

void ThreadRuntime::Pace(SimTime next) {
  if (!pace_anchored_) {
    pace_anchored_ = true;
    pace_wall_start_ = SteadyClock::now();
    pace_sim_start_ = clock_->Now();
  }
  double sim_elapsed = (next - pace_sim_start_).seconds();
  if (sim_elapsed <= 0) return;
  std::this_thread::sleep_until(
      pace_wall_start_ +
      std::chrono::duration_cast<SteadyClock::duration>(
          std::chrono::duration<double>(sim_elapsed * options_.time_scale)));
}

std::uint64_t ThreadRuntime::RunUntil(SimTime horizon) {
  RunScope scope(&wall_seconds_, &sim_seconds_, clock_);
  if (options_.dispatch == DispatchMode::kEpoch && !stopped_) {
    std::uint64_t ran = RunEpochs(horizon, ~std::uint64_t{0}, true);
    // Nothing left at or before the horizon; advance Now() to it,
    // exactly as the sim backend does.
    clock_->RunUntil(horizon);
    return ran;
  }
  if (options_.time_scale <= 0) return clock_->RunUntil(horizon);
  std::uint64_t ran = 0;
  SimTime next;
  while (clock_->PeekNextTime(&next) && next <= horizon) {
    Pace(next);
    if (!clock_->Step()) break;
    ++ran;
  }
  clock_->RunUntil(horizon);
  return ran;
}

std::uint64_t ThreadRuntime::Run(std::uint64_t max_events) {
  RunScope scope(&wall_seconds_, &sim_seconds_, clock_);
  if (options_.dispatch == DispatchMode::kEpoch && !stopped_) {
    return RunEpochs(SimTime::Zero(), max_events, false);
  }
  if (options_.time_scale <= 0) return clock_->Run(max_events);
  std::uint64_t ran = 0;
  SimTime next;
  while (ran < max_events && clock_->PeekNextTime(&next)) {
    Pace(next);
    if (!clock_->Step()) break;
    ++ran;
  }
  return ran;
}

void ThreadRuntime::Shutdown() {
  if (stopped_) return;
  stopped_ = true;
  steal_box_.Close();
  for (auto& w : workers_) w->box.Close();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  PublishMetrics();
}

double ThreadRuntime::worker_busy_seconds() const {
  double total = 0;
  for (const auto& w : workers_) total += ToSeconds(w->busy);
  return total;
}

std::uint64_t ThreadRuntime::backpressure_stalls() const {
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->box.stalls();
  return total;
}

void ThreadRuntime::PublishMetrics() {
  if (metrics_ == nullptr) return;
  // Wall-clock-derived values go to kProfile metrics only: they are
  // nondeterministic by nature and must never leak into deterministic
  // snapshots (obs::SnapshotOptions excludes kProfile by default).
  // That covers the epoch-shape numbers too: steal and shed counts
  // depend on which thread won a race, and keeping the whole family
  // kProfile keeps threads-backend snapshots bit-identical to the sim
  // oracle's.
  obs::MetricsRegistry::StatsHandle busy =
      metrics_->GetProfile("runtime.worker_busy_seconds");
  obs::MetricsRegistry::StatsHandle depth =
      metrics_->GetProfile("runtime.mailbox_max_depth");
  obs::MetricsRegistry::StatsHandle util =
      metrics_->GetProfile("runtime.worker_utilization");
  for (const auto& w : workers_) {
    busy.Record(ToSeconds(w->busy));
    depth.Record(static_cast<double>(w->box.max_depth()));
    if (wall_seconds_ > 0) {
      util.Record(ToSeconds(w->busy) / wall_seconds_);
    }
  }
  if (sim_seconds_ > 0) {
    metrics_->GetProfile("runtime.wall_sim_ratio")
        .Record(wall_seconds_ / sim_seconds_);
  }
  // Coordinator dispatch-queue high-water mark (plan slots), the
  // backpressure-tuning signal mailbox_max_depth alone can't give.
  metrics_->GetProfile("runtime.dispatch_queue_max_depth")
      .Record(static_cast<double>(plan_high_water_));
  if (options_.dispatch == DispatchMode::kEpoch) {
    metrics_->GetProfile("runtime.epoch_count")
        .Record(static_cast<double>(epochs_));
    metrics_->GetProfile("runtime.epoch_width_max")
        .Record(static_cast<double>(epoch_width_max_));
    metrics_->GetProfile("runtime.epoch_steals")
        .Record(static_cast<double>(steal_count()));
  }
  if (options_.mailbox_capacity != 0) {
    metrics_->GetProfile("runtime.backpressure_stalls")
        .Record(static_cast<double>(backpressure_stalls()));
    metrics_->GetProfile("runtime.backpressure_sheds")
        .Record(static_cast<double>(shed_count()));
  }
}

}  // namespace tdr::runtime
