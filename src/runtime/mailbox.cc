#include "runtime/mailbox.h"

namespace tdr::runtime {

void StopBarrier::ArriveAndWait() {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t gen = generation_;
  if (++arrived_ == parties_) {
    arrived_ = 0;
    ++generation_;
    lock.unlock();
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [this, gen] { return generation_ != gen; });
}

Mailbox::PushResult Mailbox::PushChain(Task* task, bool block_when_full) {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return PushResult::kClosed;
  // Full means the bound is set and this chain would overflow it. An
  // empty queue always admits the chain, even one heavier than the
  // whole capacity — oversized chains make progress instead of
  // deadlocking the producer.
  auto full = [this, task] {
    return capacity_ != 0 && depth_ != 0 && depth_ + task->weight > capacity_;
  };
  if (full()) {
    if (!block_when_full) return PushResult::kFull;
    ++stalls_;
    room_cv_.wait(lock, [this, &full] { return closed_ || !full(); });
    if (closed_) return PushResult::kClosed;
  }
  task->next = nullptr;
  if (tail_ != nullptr) {
    tail_->next = task;
  } else {
    head_ = task;
  }
  tail_ = task;
  depth_ += task->weight;
  ++pushed_;
  if (depth_ > max_depth_) max_depth_ = depth_;
  lock.unlock();
  cv_.notify_one();
  return PushResult::kOk;
}

Task* Mailbox::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return head_ != nullptr || closed_; });
  Task* task = head_;
  if (task == nullptr) return nullptr;
  head_ = task->next;
  if (head_ == nullptr) tail_ = nullptr;
  depth_ -= task->weight;
  task->next = nullptr;
  const bool bounded = capacity_ != 0;
  lock.unlock();
  if (bounded) room_cv_.notify_all();
  return task;
}

Task* Mailbox::TryPop() {
  std::unique_lock<std::mutex> lock(mu_);
  Task* task = head_;
  if (task == nullptr) return nullptr;
  head_ = task->next;
  if (head_ == nullptr) tail_ = nullptr;
  depth_ -= task->weight;
  task->next = nullptr;
  const bool bounded = capacity_ != 0;
  lock.unlock();
  if (bounded) room_cv_.notify_all();
  return task;
}

void Mailbox::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
  room_cv_.notify_all();
}

}  // namespace tdr::runtime
