#include "runtime/mailbox.h"

namespace tdr::runtime {

void StopBarrier::ArriveAndWait() {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t gen = generation_;
  if (++arrived_ == parties_) {
    arrived_ = 0;
    ++generation_;
    lock.unlock();
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [this, gen] { return generation_ != gen; });
}

bool Mailbox::Push(Task* task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    task->next = nullptr;
    if (tail_ != nullptr) {
      tail_->next = task;
    } else {
      head_ = task;
    }
    tail_ = task;
    ++depth_;
    ++pushed_;
    if (depth_ > max_depth_) max_depth_ = depth_;
  }
  cv_.notify_one();
  return true;
}

Task* Mailbox::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return head_ != nullptr || closed_; });
  Task* task = head_;
  if (task != nullptr) {
    head_ = task->next;
    if (head_ == nullptr) tail_ = nullptr;
    --depth_;
    task->next = nullptr;
  }
  return task;
}

Task* Mailbox::TryPop() {
  std::lock_guard<std::mutex> lock(mu_);
  Task* task = head_;
  if (task != nullptr) {
    head_ = task->next;
    if (head_ == nullptr) tail_ = nullptr;
    --depth_;
    task->next = nullptr;
  }
  return task;
}

void Mailbox::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

}  // namespace tdr::runtime
