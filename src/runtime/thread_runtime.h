#ifndef TDR_RUNTIME_THREAD_RUNTIME_H_
#define TDR_RUNTIME_THREAD_RUNTIME_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "runtime/mailbox.h"
#include "runtime/runtime.h"
#include "runtime/task_pool.h"
#include "sim/simulator.h"

namespace tdr::runtime {

/// Real-threads execution backend: every cluster node gets its own OS
/// worker thread with an MPSC mailbox, and node-tagged events execute
/// on that node's thread.
///
/// Ordering is the key design decision. The cluster shares genuinely
/// cross-node state — one Executor, one WaitForGraph, one metrics
/// registry — so nodes cannot fire arbitrary events concurrently
/// without giving up the semantics the paper's model (and the sim
/// oracle) defines. The backend wraps the cluster's own sim::Simulator
/// as the virtual clock and event order, and a coordinator (whoever
/// calls Run/RunUntil) drives it in one of two dispatch modes:
///
///  * kTurnBased (default): the coordinator pops events one at a time
///    in exactly the sim's (time, seq) order, hands each node-tagged
///    callback to its worker's mailbox, and blocks on a completion
///    gate until the worker has run it. kAnyNode events run inline.
///  * kEpoch: the coordinator collects every ready event that shares
///    the next virtual timestamp into one WAVE, plans it into
///    segments, and retires each segment with a single counted
///    barrier instead of a per-event gate round-trip. Runs of
///    same-node events collapse into chains (zero hand-offs inside a
///    chain); at a node switch the finishing worker batons the next
///    chain directly to its peer's mailbox (one wake instead of two);
///    and consecutive ScheduleParallel* events on distinct nodes —
///    callbacks that touch only node-private state, see runtime.h —
///    genuinely overlap across workers. Untagged events run inline on
///    the coordinator as in turn-based mode, or (steal_untagged) ride
///    the current chain / enter a work-stealing pool that idle chain
///    finishers drain.
///
/// Epoch mode preserves the oracle contract by construction: exclusive
/// events still execute in exact (time, seq) order (chains and batons
/// are just cheaper signalling for the same total order), parallel
/// groups only contain events whose mutual order is unobservable, and
/// schedules issued inside a parallel group are deferred and replayed
/// in plan-slot order so sequence numbers come out exactly as the
/// serial sim would have assigned them. The differential suite sweeps
/// both modes (× stealing × backpressure) against the sim oracle.
///
/// Epoch mode requires every event to be scheduled THROUGH this
/// runtime (true for the whole cluster): events scheduled directly on
/// the underlying simulator would execute during wave collection,
/// ahead of lower-seq collected events.
///
/// Dispatch is allocation-free in both modes: scheduling acquires a
/// pooled Task (runtime/task_pool.h), moves the callback into it, and
/// registers a two-pointer wrapper with the event core — inside
/// sim::Callback's inline buffer, so steady state allocates nothing
/// (runtime_task_pool_test pins this with the alloc-audit harness).
///
/// Backpressure (off by default): `mailbox_capacity` bounds each
/// worker mailbox's queued task weight; a full mailbox either blocks
/// the producer (kBlock — safe: consumers drain unconditionally) or
/// sheds the chain to the producer, which runs it inline (kShed —
/// order preserved, just no hand-off). Both keep results bit-identical
/// to the oracle; only wall-clock pacing changes.
///
/// Wall-clock pacing: with `time_scale` > 0 the coordinator sleeps
/// each event (turn-based) or wave (epoch) until its virtual time maps
/// to the wall clock (wall_seconds = sim_seconds * time_scale).
class ThreadRuntime final : public Runtime {
 public:
  enum class DispatchMode : std::uint8_t {
    kTurnBased = 0,
    kEpoch = 1,
  };

  /// What a bounded mailbox does when a push would overflow it.
  enum class OverflowPolicy : std::uint8_t {
    kBlock = 0,  // producer waits for room (counted as a stall)
    kShed = 1,   // producer runs the chain inline (counted as a shed)
  };

  struct Options {
    /// Wall-seconds per sim-second; 0 = run as fast as dispatch allows.
    double time_scale = 0;
    DispatchMode dispatch = DispatchMode::kTurnBased;
    /// Epoch mode: untagged (kAnyNode) events ride the current chain
    /// (exclusive) or enter the work-stealing pool (parallel-class)
    /// instead of running inline on the coordinator.
    bool steal_untagged = false;
    /// Max queued task weight per worker mailbox; 0 = unbounded.
    std::size_t mailbox_capacity = 0;
    OverflowPolicy overflow = OverflowPolicy::kBlock;
    /// Pooled task wrappers materialized at birth; exhaustion grows
    /// the pool (counted, see TaskPool::grow_events).
    std::size_t task_pool_capacity = 256;
  };

  /// `clock` is the cluster's own simulator, used as virtual clock and
  /// event core (never Run directly when this backend owns it).
  /// `metrics` may be null; profile metrics (worker busy time, mailbox
  /// depth, epoch shape, wall/sim ratio) are published on Shutdown.
  ThreadRuntime(sim::Simulator* clock, std::uint32_t num_nodes,
                Options options, obs::MetricsRegistry* metrics);

  /// Shutdown(), then joins every worker.
  ~ThreadRuntime() override;

  // --- Runtime interface --------------------------------------------

  SimTime Now() const override { return clock_->Now(); }
  sim::EventId ScheduleAt(SimTime when, sim::Callback fn) override {
    return ScheduleAtNode(kAnyNode, when, std::move(fn));
  }
  sim::EventId ScheduleAfter(SimTime delay, sim::Callback fn) override {
    return ScheduleAfterNode(kAnyNode, delay, std::move(fn));
  }
  sim::EventId RepeatEvery(SimTime interval, sim::Callback fn) override;
  bool Cancel(sim::EventId id) override;
  std::uint64_t RunUntil(SimTime horizon) override;
  std::uint64_t Run(std::uint64_t max_events = (1ULL << 32)) override;
  bool Idle() const override { return clock_->Idle(); }
  std::size_t PendingEvents() const override {
    return clock_->PendingEvents();
  }
  sim::EventId ScheduleAtNode(std::uint32_t node, SimTime when,
                              sim::Callback fn) override {
    return Schedule(node, when, std::move(fn), ExecClass::kExclusive);
  }
  sim::EventId ScheduleAfterNode(std::uint32_t node, SimTime delay,
                                 sim::Callback fn) override {
    return Schedule(node, After(delay), std::move(fn),
                    ExecClass::kExclusive);
  }
  sim::EventId ScheduleParallelAtNode(std::uint32_t node, SimTime when,
                                      sim::Callback fn) override {
    return Schedule(node, when, std::move(fn), ExecClass::kParallel);
  }
  sim::EventId ScheduleParallelAfterNode(std::uint32_t node, SimTime delay,
                                         sim::Callback fn) override {
    return Schedule(node, After(delay), std::move(fn),
                    ExecClass::kParallel);
  }

  // --- Lifecycle ----------------------------------------------------

  /// Stop/drain barrier: closes every mailbox, waits for all workers to
  /// drain and rendezvous, joins them, publishes profile metrics.
  /// Idempotent; after shutdown every event runs inline on the caller.
  void Shutdown();

  bool stopped() const { return stopped_; }

  // --- Introspection (stress suite + bench_runtime) -----------------

  std::uint32_t workers() const {
    return static_cast<std::uint32_t>(workers_.size());
  }
  const Mailbox& mailbox(std::uint32_t node) const {
    return workers_[node]->box;
  }
  /// Events executed on worker threads / inline on the coordinator.
  /// Both are deterministic: epoch mode classifies by the PLANNED lane
  /// (a shed chain the coordinator ran for a full mailbox still counts
  /// as dispatched), so the split is a pure function of the seeded
  /// scenario, not of wall-clock races.
  std::uint64_t dispatched() const { return dispatched_; }
  std::uint64_t inline_events() const { return inline_events_; }
  /// Epoch-mode shape: waves executed, widest wave, and the
  /// coordinator's dispatch-queue high-water mark (plan slots).
  std::uint64_t epochs() const { return epochs_; }
  std::uint64_t epoch_width_max() const { return epoch_width_max_; }
  std::size_t dispatch_queue_max_depth() const { return plan_high_water_; }
  /// Untagged tasks drained from the steal pool by node workers, and
  /// chains shed to their producer by a full mailbox. Wall-clock-racy
  /// (kProfile-only), unlike the planned counters above.
  std::uint64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }
  std::uint64_t shed_count() const {
    return sheds_.load(std::memory_order_relaxed);
  }
  /// Times a bounded mailbox push had to wait for room.
  std::uint64_t backpressure_stalls() const;
  const TaskPool& task_pool() const { return *pool_; }
  /// Wall-clock seconds spent inside Run/RunUntil, and the virtual
  /// seconds they advanced — their ratio is the wall/sim speed metric.
  double wall_seconds() const { return wall_seconds_; }
  double sim_seconds() const { return sim_seconds_; }
  /// Total wall-clock seconds workers spent executing callbacks. Only
  /// stable after Shutdown() (the destructor calls it).
  double worker_busy_seconds() const;

 private:
  struct Worker {
    Mailbox box;
    std::chrono::steady_clock::duration busy{};
    std::uint64_t executed = 0;
    std::thread thread;
  };

  /// RAII ownership of a pooled task inside a scheduling wrapper: the
  /// wrapper fire consumes (take()) the task; a wrapper destroyed
  /// without firing — cancellation, or simulator teardown — returns it
  /// to the pool. Holds the pool shared so wrappers still pending in
  /// the event core at simulator destruction (which may outlive this
  /// runtime) release into a live pool.
  class TaskLease {
   public:
    TaskLease(std::shared_ptr<TaskPool> pool, Task* task)
        : pool_(std::move(pool)), task_(task) {}
    TaskLease(TaskLease&& other) noexcept
        : pool_(std::move(other.pool_)), task_(other.task_) {
      other.task_ = nullptr;
    }
    TaskLease(const TaskLease&) = delete;
    TaskLease& operator=(const TaskLease&) = delete;
    TaskLease& operator=(TaskLease&&) = delete;
    ~TaskLease() {
      if (task_ != nullptr) pool_->Release(task_);
    }

    Task* take() {
      Task* t = task_;
      task_ = nullptr;
      return t;
    }
    Task* get() const { return task_; }

   private:
    std::shared_ptr<TaskPool> pool_;
    Task* task_;
  };

  SimTime After(SimTime delay) const {
    return clock_->Now() + (delay < SimTime::Zero() ? SimTime::Zero() : delay);
  }

  /// Every schedule funnels here: defers if called from inside a
  /// parallel group, else registers a pooled wrapper with the clock.
  sim::EventId Schedule(std::uint32_t node, SimTime when, sim::Callback fn,
                        ExecClass cls);
  /// Wrapper fire: appends to the wave plan (collecting) or executes
  /// immediately (turn-based / stopped).
  void OnWrapperFire(Task* task);
  void OnRepeatFire(Task* task);
  /// Turn-based per-event protocol: run on `task->node`'s worker
  /// (blocking on the gate) or inline; releases one-shot tasks.
  void RunImmediate(Task* task);
  /// Invokes the task's callback (borrowed or owned) with the
  /// deferred-schedule context set.
  void RunTaskBody(Task* task);
  /// Runs a chain and its baton successors that land back on this
  /// thread (shed/closed mailboxes); `worker` null on the coordinator.
  void RunChainFrom(Task* head, Worker* worker);
  void DrainStealPool(Worker* worker);

  // --- Epoch engine (coordinator only) ------------------------------
  std::uint64_t RunEpochs(SimTime horizon, std::uint64_t max_events,
                          bool bounded_horizon);
  void ExecuteWave();
  void ExecSerialSegment(std::size_t begin, std::size_t end);
  void ExecParallelGroup(std::size_t begin, std::size_t end);
  /// Resolved executor for a planned task: a worker index, kCoord, or
  /// kStealPool. `prev_worker` carries the chain context for
  /// baton-riding untagged exclusive tasks.
  std::uint32_t LaneOf(const Task* task, std::uint32_t prev_worker) const;
  void ReleaseWave();

  void WorkerLoop(std::uint32_t index);
  /// Sleeps until `next` maps onto the wall clock (time_scale > 0).
  void Pace(SimTime next);
  void PublishMetrics();

  static constexpr std::uint32_t kCoord = 0xfffffffeu;
  static constexpr std::uint32_t kStealPool = 0xfffffffdu;

  sim::Simulator* clock_;
  Options options_;
  obs::MetricsRegistry* metrics_;
  std::shared_ptr<TaskPool> pool_;
  std::vector<std::unique_ptr<Worker>> workers_;
  StopBarrier barrier_;
  Gate gate_;  // one dispatch in flight at a time (turn-based)
  EpochGate epoch_gate_;   // one per in-flight segment (epoch)
  Mailbox steal_box_;      // untagged parallel tasks, any worker drains
  bool stopped_ = false;
  std::uint64_t dispatched_ = 0;
  std::uint64_t inline_events_ = 0;

  // Wave state (coordinator-owned; workers see tasks via mailbox HB).
  bool collecting_ = false;
  std::vector<Task*> plan_;
  std::size_t plan_high_water_ = 0;
  /// Plan index currently executing — the floor of Cancel's sweep.
  /// Written by whichever thread runs each exclusive task; the baton
  /// hand-off orders every write-then-read.
  std::size_t plan_cursor_ = 0;
  std::uint64_t epochs_ = 0;
  std::uint64_t epoch_width_max_ = 0;
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> sheds_{0};
  // Scratch reused across waves (capacity sticks, no per-wave allocs).
  std::vector<Task*> group_heads_;
  std::vector<Task*> group_tails_;
  std::vector<Task*> shed_chains_;
  obs::MetricsRegistry::StatsHandle epoch_width_profile_;

  bool pace_anchored_ = false;
  std::chrono::steady_clock::time_point pace_wall_start_;
  SimTime pace_sim_start_;
  double wall_seconds_ = 0;
  double sim_seconds_ = 0;
};

}  // namespace tdr::runtime

#endif  // TDR_RUNTIME_THREAD_RUNTIME_H_
