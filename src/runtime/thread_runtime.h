#ifndef TDR_RUNTIME_THREAD_RUNTIME_H_
#define TDR_RUNTIME_THREAD_RUNTIME_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "runtime/mailbox.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"

namespace tdr::runtime {

/// Real-threads execution backend: every cluster node gets its own OS
/// worker thread with an MPSC mailbox, and node-tagged events execute
/// on that node's thread.
///
/// Ordering is the key design decision. The cluster shares genuinely
/// cross-node state — one Executor, one WaitForGraph, one metrics
/// registry — so nodes cannot fire events concurrently without giving
/// up the semantics the paper's model (and the sim oracle) defines.
/// Instead the backend is TURN-BASED: it wraps the cluster's own
/// sim::Simulator as the virtual clock and event order, and a
/// coordinator (whoever calls Run/RunUntil) pops events in exactly the
/// sim's (time, seq) order, dispatching each node-tagged callback to
/// its worker's mailbox and blocking on a completion gate until the
/// worker has run it. Events with kAnyNode affinity run inline on the
/// coordinator.
///
/// Consequences:
///  * Equivalence by construction: a seeded scenario executes the same
///    events in the same order with the same virtual timestamps as the
///    sim backend, so final store digests are bit-identical. The
///    differential suite (tests/runtime_differential_test.cc) asserts
///    this for every scheme; it is the oracle contract, not a hope.
///  * Real concurrency where it matters for testing: node state
///    genuinely migrates across threads on every dispatch, so the
///    mailbox/gate happens-before edges — and any component that
///    secretly relied on thread identity — are exercised for real and
///    verified under TSan.
///  * Wall-clock pacing: with `time_scale` > 0 the coordinator sleeps
///    each event until its virtual time maps to the wall clock
///    (wall_seconds = sim_seconds * time_scale), turning simulated
///    delivery delays into real ones. 0 free-runs.
///
/// Scheduling through this backend allocates (one wrapper per event):
/// the zero-allocation contract belongs to the sim backend; promoting
/// the dispatch path to pooled wrappers is a ROADMAP open item.
class ThreadRuntime final : public Runtime {
 public:
  struct Options {
    /// Wall-seconds per sim-second; 0 = run as fast as dispatch allows.
    double time_scale = 0;
  };

  /// `clock` is the cluster's own simulator, used as virtual clock and
  /// event core (never Run directly when this backend owns it).
  /// `metrics` may be null; profile metrics (worker busy time, mailbox
  /// depth, wall/sim ratio) are published on Shutdown.
  ThreadRuntime(sim::Simulator* clock, std::uint32_t num_nodes,
                Options options, obs::MetricsRegistry* metrics);

  /// Shutdown(), then joins every worker.
  ~ThreadRuntime() override;

  // --- Runtime interface --------------------------------------------

  SimTime Now() const override { return clock_->Now(); }
  sim::EventId ScheduleAt(SimTime when, sim::Callback fn) override {
    return ScheduleAtNode(kAnyNode, when, std::move(fn));
  }
  sim::EventId ScheduleAfter(SimTime delay, sim::Callback fn) override {
    return ScheduleAfterNode(kAnyNode, delay, std::move(fn));
  }
  sim::EventId RepeatEvery(SimTime interval, sim::Callback fn) override;
  bool Cancel(sim::EventId id) override { return clock_->Cancel(id); }
  std::uint64_t RunUntil(SimTime horizon) override;
  std::uint64_t Run(std::uint64_t max_events = (1ULL << 32)) override;
  bool Idle() const override { return clock_->Idle(); }
  std::size_t PendingEvents() const override {
    return clock_->PendingEvents();
  }
  sim::EventId ScheduleAtNode(std::uint32_t node, SimTime when,
                              sim::Callback fn) override;
  sim::EventId ScheduleAfterNode(std::uint32_t node, SimTime delay,
                                 sim::Callback fn) override;

  // --- Lifecycle ----------------------------------------------------

  /// Stop/drain barrier: closes every mailbox, waits for all workers to
  /// drain and rendezvous, joins them, publishes profile metrics.
  /// Idempotent; after shutdown every event runs inline on the caller.
  void Shutdown();

  bool stopped() const { return stopped_; }

  // --- Introspection (stress suite + bench_runtime) -----------------

  std::uint32_t workers() const {
    return static_cast<std::uint32_t>(workers_.size());
  }
  const Mailbox& mailbox(std::uint32_t node) const {
    return workers_[node]->box;
  }
  /// Events executed on worker threads / inline on the coordinator.
  /// Both are deterministic (pure functions of the seeded scenario).
  std::uint64_t dispatched() const { return dispatched_; }
  std::uint64_t inline_events() const { return inline_events_; }
  /// Wall-clock seconds spent inside Run/RunUntil, and the virtual
  /// seconds they advanced — their ratio is the wall/sim speed metric.
  double wall_seconds() const { return wall_seconds_; }
  double sim_seconds() const { return sim_seconds_; }
  /// Total wall-clock seconds workers spent executing callbacks. Only
  /// stable after Shutdown() (the destructor calls it).
  double worker_busy_seconds() const;

 private:
  struct Worker {
    Mailbox box;
    std::chrono::steady_clock::duration busy{};
    std::uint64_t executed = 0;
    std::thread thread;
  };

  /// Runs `fn` on `node`'s worker (blocking until done) or inline.
  /// Coordinator-only: called from inside clock_ event execution.
  void Dispatch(std::uint32_t node, sim::Callback* fn);
  void WorkerLoop(std::uint32_t index);
  /// Sleeps until `next` maps onto the wall clock (time_scale > 0).
  void Pace(SimTime next);
  void PublishMetrics();

  sim::Simulator* clock_;
  Options options_;
  obs::MetricsRegistry* metrics_;
  std::vector<std::unique_ptr<Worker>> workers_;
  StopBarrier barrier_;
  Gate gate_;  // one dispatch in flight at a time (turn-based)
  bool stopped_ = false;
  std::uint64_t dispatched_ = 0;
  std::uint64_t inline_events_ = 0;
  bool pace_anchored_ = false;
  std::chrono::steady_clock::time_point pace_wall_start_;
  SimTime pace_sim_start_;
  double wall_seconds_ = 0;
  double sim_seconds_ = 0;
};

}  // namespace tdr::runtime

#endif  // TDR_RUNTIME_THREAD_RUNTIME_H_
