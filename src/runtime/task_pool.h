#ifndef TDR_RUNTIME_TASK_POOL_H_
#define TDR_RUNTIME_TASK_POOL_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>

#include "runtime/mailbox.h"

namespace tdr::runtime {

/// Free list of recycled Task wrappers — the dispatch plane's half of
/// the zero-allocation story (net::MessagePool is the data plane's,
/// and the simulator's event slab the event core's).
///
/// ThreadRuntime acquires one pooled task per scheduled event at
/// *schedule* time and moves the callback into it, so the wrapper
/// lambda registered with the event core captures only two pointers
/// and stays inside sim::Callback's inline buffer: scheduling through
/// the thread backend no longer heap-allocates per event. Tasks return
/// to the pool when their event has run or been cancelled.
///
/// The slab is a deque so records have stable addresses — live Task*
/// survive growth (unlike MessagePool, which hands out slot indices
/// for exactly this reason). `birth_capacity` tasks are materialized
/// up front; exhaustion grows the slab (counted in `grow_events`), and
/// steady state — pool high-water below capacity — allocates nothing,
/// which `runtime_task_pool_test` pins with the alloc-audit harness.
///
/// Single-threaded by design: Acquire/Release happen on the
/// coordinator, or on a worker while it holds the dispatch baton
/// (exclusive tasks never overlap), so the mailbox hand-off mutexes
/// already order every access.
class TaskPool {
 public:
  explicit TaskPool(std::size_t birth_capacity) { Grow(birth_capacity); }

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// A reset task (callback slots empty, links null). Grows the slab
  /// when the free list is dry.
  Task* Acquire() {
    if (free_ == nullptr) {
      ++grow_events_;
      Grow(slab_.empty() ? 1 : slab_.size());  // double, like vector
    }
    Task* t = free_;
    free_ = t->next;
    t->next = nullptr;
    ++in_use_;
    if (in_use_ > max_in_use_) max_in_use_ = in_use_;
    return t;
  }

  /// Destroys the owned callback (running RAII releases of anything it
  /// captured), clears the epoch fields, and free-lists the task. The
  /// deferred buffer keeps its capacity, like every pooled buffer here.
  void Release(Task* t) {
    assert(in_use_ > 0 && "TaskPool::Release without matching Acquire");
    t->fn = nullptr;
    t->done = nullptr;
    t->owned = nullptr;
    t->weight = 1;
    t->node = 0xffffffffu;
    t->cls = ExecClass::kExclusive;
    t->parallel_group = false;
    t->cancelled = false;
    t->origin = sim::kInvalidEventId;
    t->run_next = nullptr;
    t->chain_next = nullptr;
    t->epoch_gate = nullptr;
    t->deferred.clear();
    t->next = free_;
    free_ = t;
    --in_use_;
  }

  std::size_t capacity() const { return slab_.size(); }
  std::size_t in_use() const { return in_use_; }
  std::size_t max_in_use() const { return max_in_use_; }
  /// Times Acquire() found the free list empty and grew the slab.
  std::uint64_t grow_events() const { return grow_events_; }

 private:
  void Grow(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      slab_.emplace_back();
      Task* t = &slab_.back();
      t->next = free_;
      free_ = t;
    }
  }

  std::deque<Task> slab_;
  Task* free_ = nullptr;
  std::size_t in_use_ = 0;
  std::size_t max_in_use_ = 0;
  std::uint64_t grow_events_ = 0;
};

}  // namespace tdr::runtime

#endif  // TDR_RUNTIME_TASK_POOL_H_
