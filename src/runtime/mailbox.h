#ifndef TDR_RUNTIME_MAILBOX_H_
#define TDR_RUNTIME_MAILBOX_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "sim/callback.h"

namespace tdr::runtime {

class Gate;

/// One unit of work handed to a worker thread. The callback is NOT
/// owned: it lives in the scheduling wrapper (thread_runtime.cc) or on
/// a test's stack, and must stay valid until the task has executed —
/// the dispatch protocol guarantees that by blocking the producer on
/// `done` until the consumer signals completion.
struct Task {
  sim::Callback* fn = nullptr;
  Gate* done = nullptr;  // optional completion signal
  Task* next = nullptr;  // intrusive mailbox link
};

/// Single-shot, reusable completion gate (mutex + condvar). The
/// coordinator Reset()s it, hands it to a worker inside a Task, and
/// Wait()s; the worker Signal()s after running the task. The mutex
/// hand-off is also the happens-before edge that lets all of the
/// cluster's single-threaded state (stores, lock tables, the event
/// core itself) migrate between threads without atomics.
class Gate {
 public:
  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    signaled_ = false;
  }

  void Signal() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      signaled_ = true;
    }
    cv_.notify_one();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return signaled_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool signaled_ = false;
};

/// All-parties rendezvous used as the shared stop/drain barrier: every
/// worker drains its mailbox, arrives, and no worker exits until all
/// have drained. Reusable across generations.
class StopBarrier {
 public:
  explicit StopBarrier(std::size_t parties) : parties_(parties) {}

  StopBarrier(const StopBarrier&) = delete;
  StopBarrier& operator=(const StopBarrier&) = delete;

  void ArriveAndWait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
};

/// MPSC mailbox: any thread may Push, one worker Pop()s. Mutex+condvar
/// by design — the dispatch protocol keeps at most one task in flight
/// per mailbox in normal operation, so a lock-free queue would buy
/// nothing (the stress suite still hammers the multi-producer path).
///
/// Close() wakes the consumer; Pop() then drains whatever is queued
/// before returning nullptr, so no accepted task is ever lost — the
/// drain half of the stop/drain barrier.
class Mailbox {
 public:
  Mailbox() = default;

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues `task`; false (task not queued) if the mailbox is closed.
  bool Push(Task* task);

  /// Blocks until a task is available or the mailbox is closed AND
  /// drained; nullptr means "closed, nothing left".
  Task* Pop();

  /// Non-blocking Pop: nullptr when empty (closed or not).
  Task* TryPop();

  /// Rejects future pushes and wakes the consumer.
  void Close();

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }
  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return depth_;
  }
  /// High-water mark of queued tasks (the mailbox-depth metric).
  std::size_t max_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return max_depth_;
  }
  std::uint64_t pushed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pushed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  Task* head_ = nullptr;
  Task* tail_ = nullptr;
  std::size_t depth_ = 0;
  std::size_t max_depth_ = 0;
  std::uint64_t pushed_ = 0;
  bool closed_ = false;
};

}  // namespace tdr::runtime

#endif  // TDR_RUNTIME_MAILBOX_H_
