#ifndef TDR_RUNTIME_MAILBOX_H_
#define TDR_RUNTIME_MAILBOX_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "sim/callback.h"
#include "sim/event_id.h"
#include "util/sim_time.h"

namespace tdr::runtime {

class Gate;
class EpochGate;

/// How a scheduled event may execute relative to its epoch-mates.
/// kExclusive events may touch shared cluster state (the executor, the
/// message pool, metric cells, the event core), so the epoch planner
/// serializes them in exact (time, seq) order. kParallel is a promise
/// made at the call site: the callback touches only its node's private
/// state, and any events it schedules are deferred and replayed in
/// slot order — only then may same-timestamp events on distinct nodes
/// genuinely overlap.
enum class ExecClass : std::uint8_t {
  kExclusive = 0,
  kParallel = 1,
};

/// A scheduling request a parallel-class task issued while its group
/// was in flight. Replayed by the coordinator in plan-slot order at
/// the group barrier, so sequence numbers come out exactly as the
/// serial oracle would have assigned them.
struct DeferredSchedule {
  std::uint32_t node = 0;
  SimTime when;  // absolute virtual time
  ExecClass cls = ExecClass::kExclusive;
  sim::Callback fn;
};

/// One unit of work handed to a worker thread.
///
/// Two ownership modes coexist:
///  * `fn` set — the callback is BORROWED: it lives in the scheduling
///    wrapper (repeat series), or on a test's stack, and must stay
///    valid until the task has executed.
///  * `fn` null — the callback is `owned`: epoch dispatch moves the
///    scheduled callback into the pooled task at schedule time, so
///    firing never chases a pointer into the event slab (whose slots
///    are recycled the moment the wrapper pops).
///
/// The epoch fields below `weight` link tasks into per-worker chains
/// (`run_next`), chains into baton sequences (`chain_next`), and hang
/// the segment barrier plus the deferred-schedule buffer off the
/// right places. They are owned by the coordinator's plan; mailbox
/// mutexes provide the happens-before edges that publish them to
/// workers.
struct Task {
  Task() = default;
  /// Test convenience: a borrowed-callback task (the pre-epoch shape).
  explicit Task(sim::Callback* f) : fn(f) {}

  sim::Callback* fn = nullptr;  // borrowed callback (see above)
  Gate* done = nullptr;         // turn-based completion signal
  Task* next = nullptr;         // intrusive mailbox link
  sim::Callback owned;          // owned callback (epoch one-shots)
  /// Queue-depth contribution of a PushChain (chain length); plain
  /// pushes weigh 1.
  std::uint32_t weight = 1;
  std::uint32_t node = 0xffffffffu;  // node affinity tag (kAnyNode)
  ExecClass cls = ExecClass::kExclusive;
  /// Set while the task executes inside a parallel group: Schedule*
  /// calls from the callback are deferred into `deferred` instead of
  /// touching the shared event core.
  bool parallel_group = false;
  /// Cancelled after collection (ThreadRuntime::Cancel found it in the
  /// current plan): the executor skips the body but keeps the slot.
  bool cancelled = false;
  sim::EventId origin = sim::kInvalidEventId;  // wrapper's event id
  /// Resolved executor lane (worker index / kCoord / kStealPool),
  /// assigned by the planner; a finishing worker reads its successor
  /// chain head's lane to know which mailbox gets the baton.
  std::uint32_t exec_node = 0;
  /// This task's slot in the wave plan — the floor for Cancel's sweep
  /// over not-yet-executed plan entries.
  std::uint32_t plan_index = 0;
  Task* run_next = nullptr;    // next task in this worker chain
  Task* chain_next = nullptr;  // successor chain head (serial baton)
  EpochGate* epoch_gate = nullptr;  // chain tail: arrive here when done
  std::vector<DeferredSchedule> deferred;  // parallel tasks only
};

/// Single-shot, reusable completion gate (mutex + condvar). The
/// coordinator Reset()s it, hands it to a worker inside a Task, and
/// Wait()s; the worker Signal()s after running the task. The mutex
/// hand-off is also the happens-before edge that lets all of the
/// cluster's single-threaded state (stores, lock tables, the event
/// core itself) migrate between threads without atomics.
class Gate {
 public:
  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    signaled_ = false;
  }

  void Signal() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      signaled_ = true;
    }
    cv_.notify_one();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return signaled_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool signaled_ = false;
};

/// Counted completion barrier for epoch segments: the coordinator
/// Reset(n)s it to the number of completions the segment owes (chains
/// plus steal-pool tasks), workers Arrive() as they finish, and the
/// coordinator Wait()s for zero. One EpochGate round-trip per segment
/// replaces the per-event Gate hand-shake of turn-based dispatch.
class EpochGate {
 public:
  void Reset(std::size_t count) {
    std::lock_guard<std::mutex> lock(mu_);
    remaining_ = count;
  }

  void Arrive(std::size_t n = 1) {
    bool done = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      remaining_ -= n;
      done = remaining_ == 0;
    }
    if (done) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t remaining_ = 0;
};

/// All-parties rendezvous used as the shared stop/drain barrier: every
/// worker drains its mailbox, arrives, and no worker exits until all
/// have drained. Reusable across generations.
class StopBarrier {
 public:
  explicit StopBarrier(std::size_t parties) : parties_(parties) {}

  StopBarrier(const StopBarrier&) = delete;
  StopBarrier& operator=(const StopBarrier&) = delete;

  void ArriveAndWait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
};

/// MPSC mailbox: any thread may Push, one worker Pop()s (TryPop is
/// safe from any thread, which is how the epoch steal pool shares one
/// mailbox among many draining workers). Mutex+condvar by design —
/// dispatch keeps at most a handful of chains in flight per mailbox,
/// so a lock-free queue would buy nothing (the stress suite still
/// hammers the multi-producer path).
///
/// Close() wakes the consumer; Pop() then drains whatever is queued
/// before returning nullptr, so no accepted task is ever lost — the
/// drain half of the stop/drain barrier.
///
/// Backpressure: with a nonzero `capacity`, Push blocks (kBlock) or
/// refuses (kFull, the shed-to-caller policy) while the queued weight
/// is at or above the bound. Unbounded (capacity 0, the default)
/// pushes never stall and never shed.
class Mailbox {
 public:
  enum class PushResult : std::uint8_t { kOk, kClosed, kFull };

  Mailbox() = default;

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Bounded-depth mode: queued weight is capped at `capacity`
  /// (0 restores unbounded). Call before concurrent use.
  void set_capacity(std::size_t capacity) { capacity_ = capacity; }

  /// Enqueues `task`; false (task not queued) if the mailbox is closed.
  /// Bounded mailboxes block until there is room (the kBlock policy).
  bool Push(Task* task) { return PushChain(task, true) == PushResult::kOk; }

  /// Enqueues a chain (`run_next`-linked; `task->weight` must hold its
  /// length) as one queue node. When the mailbox is bounded and full:
  /// blocks until room if `block_when_full` (counting the stall), else
  /// returns kFull and queues nothing — the caller sheds by running
  /// the chain itself.
  PushResult PushChain(Task* task, bool block_when_full);

  /// Blocks until a task is available or the mailbox is closed AND
  /// drained; nullptr means "closed, nothing left".
  Task* Pop();

  /// Non-blocking Pop: nullptr when empty (closed or not).
  Task* TryPop();

  /// Rejects future pushes and wakes consumer and blocked producers.
  void Close();

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }
  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return depth_;
  }
  /// High-water mark of queued weight (the mailbox-depth metric).
  std::size_t max_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return max_depth_;
  }
  std::uint64_t pushed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pushed_;
  }
  /// Times a bounded Push had to wait for room (backpressure stalls).
  std::uint64_t stalls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stalls_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable room_cv_;  // producers blocked on capacity
  Task* head_ = nullptr;
  Task* tail_ = nullptr;
  std::size_t depth_ = 0;
  std::size_t max_depth_ = 0;
  std::size_t capacity_ = 0;  // 0 = unbounded
  std::uint64_t pushed_ = 0;
  std::uint64_t stalls_ = 0;
  bool closed_ = false;
};

}  // namespace tdr::runtime

#endif  // TDR_RUNTIME_MAILBOX_H_
