#ifndef TDR_RUNTIME_RUNTIME_H_
#define TDR_RUNTIME_RUNTIME_H_

#include <cstddef>
#include <cstdint>
#include <utility>

#include "sim/callback.h"
#include "sim/event_id.h"
#include "util/sim_time.h"

namespace tdr::runtime {

/// Node affinity wildcard: the event belongs to no particular node and
/// may run wherever the backend finds convenient (the sim ignores
/// affinity entirely; the thread backend runs kAnyNode events inline on
/// the coordinator).
inline constexpr std::uint32_t kAnyNode = 0xffffffffu;

/// The execution surface shared by the deterministic simulator and the
/// real-threads backend.
///
/// Everything above the event core — Network, Executor, BatchShipper,
/// ReplicaApplier, workload arrivals, the fault layer — schedules
/// against this interface instead of sim::Simulator directly. Both
/// backends order events by the same virtual (time, seq) key, so a
/// seeded scenario produces the same committed history and the same
/// final store digests on either one; the thread backend additionally
/// executes each node's events on that node's own OS thread (see
/// runtime/thread_runtime.h for the dispatch protocol).
///
/// The `*Node` overloads tag an event with the node whose state it
/// touches. Tags never affect ordering — they only tell the thread
/// backend which worker runs the callback — so components may tag
/// conservatively (or not at all) without changing any result.
class Runtime {
 public:
  virtual ~Runtime() = default;

  /// Current virtual time. Starts at zero.
  virtual SimTime Now() const = 0;

  /// Schedules `fn` at absolute virtual time `when` (clamped to Now()
  /// if in the past, as sim::Simulator does).
  virtual sim::EventId ScheduleAt(SimTime when, sim::Callback fn) = 0;

  /// Schedules `fn` to run `delay` after Now() (negative delays clamp
  /// to zero).
  virtual sim::EventId ScheduleAfter(SimTime delay, sim::Callback fn) = 0;

  /// Schedules `fn` every `interval` until the returned id is
  /// cancelled.
  virtual sim::EventId RepeatEvery(SimTime interval, sim::Callback fn) = 0;

  /// Cancels a pending event; true if it existed and had not fired.
  virtual bool Cancel(sim::EventId id) = 0;

  /// Runs events up to and including `horizon`, then advances Now() to
  /// the horizon. Returns the number of events executed.
  virtual std::uint64_t RunUntil(SimTime horizon) = 0;

  /// Runs until the queue is empty (bounded by `max_events`).
  virtual std::uint64_t Run(std::uint64_t max_events = (1ULL << 32)) = 0;

  /// True if no events are pending.
  virtual bool Idle() const = 0;

  /// Number of pending (non-cancelled) events.
  virtual std::size_t PendingEvents() const = 0;

  /// Affinity-tagged variants: `node` is the node whose state `fn`
  /// mutates. The base implementations drop the tag — exactly what the
  /// single-threaded simulator wants.
  virtual sim::EventId ScheduleAtNode(std::uint32_t node, SimTime when,
                                      sim::Callback fn) {
    (void)node;
    return ScheduleAt(when, std::move(fn));
  }
  virtual sim::EventId ScheduleAfterNode(std::uint32_t node, SimTime delay,
                                         sim::Callback fn) {
    (void)node;
    return ScheduleAfter(delay, std::move(fn));
  }

  /// Parallel-class variants: the caller PROMISES that `fn` touches
  /// only node-private state — no executor, no message pool, no shared
  /// metric cells, no reads of other nodes — so the thread backend's
  /// epoch dispatcher may overlap it with same-timestamp parallel
  /// events on other nodes. Restrictions on the callback under epoch
  /// dispatch (enforced by convention, audited at the call sites):
  ///
  ///  * It may call Schedule*/ScheduleParallel*; the request is
  ///    deferred to the group barrier and replayed in deterministic
  ///    order, and the call returns sim::kInvalidEventId — treat these
  ///    schedules as fire-and-forget.
  ///  * It must not Cancel, must not call Run*/Peek-style methods, and
  ///    must not record metrics.
  ///
  /// The base implementations forward to the tagged variants: the
  /// simulator (and turn-based dispatch) runs parallel-class events
  /// exactly like any other, which is what makes the sim the oracle
  /// for the parallel schedule.
  virtual sim::EventId ScheduleParallelAtNode(std::uint32_t node, SimTime when,
                                              sim::Callback fn) {
    return ScheduleAtNode(node, when, std::move(fn));
  }
  virtual sim::EventId ScheduleParallelAfterNode(std::uint32_t node,
                                                 SimTime delay,
                                                 sim::Callback fn) {
    return ScheduleAfterNode(node, delay, std::move(fn));
  }

 protected:
  Runtime() = default;
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;
};

}  // namespace tdr::runtime

#endif  // TDR_RUNTIME_RUNTIME_H_
