#include "analytic/fit.h"

#include <cmath>

namespace tdr::analytic {

PowerLawFit FitPowerLaw(const std::vector<std::pair<double, double>>& xy) {
  PowerLawFit fit;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  int n = 0;
  for (const auto& [x, y] : xy) {
    if (x <= 0 || y <= 0) continue;
    double lx = std::log(x), ly = std::log(y);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    syy += ly * ly;
    ++n;
  }
  fit.points_used = n;
  if (n < 2) return fit;
  double denom = n * sxx - sx * sx;
  if (denom == 0) return fit;
  fit.exponent = (n * sxy - sx * sy) / denom;
  fit.log_constant = (sy - fit.exponent * sx) / n;
  double ss_tot = syy - sy * sy / n;
  if (ss_tot > 0) {
    // SS_res = sum (ly - (k lx + c))^2, expanded in the accumulators.
    double ss_res = syy - 2 * fit.exponent * sxy -
                    2 * fit.log_constant * sy +
                    fit.exponent * fit.exponent * sxx +
                    2 * fit.exponent * fit.log_constant * sx +
                    n * fit.log_constant * fit.log_constant;
    fit.r_squared = 1.0 - ss_res / ss_tot;
  } else {
    fit.r_squared = 1.0;  // all y equal: a flat line fits perfectly
  }
  return fit;
}

double FitPowerLawExponent(
    const std::vector<std::pair<double, double>>& xy) {
  return FitPowerLaw(xy).exponent;
}

double GeometricMeanRatio(const std::vector<double>& measured,
                          const std::vector<double>& model) {
  double sum = 0;
  int n = 0;
  std::size_t limit = std::min(measured.size(), model.size());
  for (std::size_t i = 0; i < limit; ++i) {
    if (measured[i] <= 0 || model[i] <= 0) continue;
    sum += std::log(measured[i] / model[i]);
    ++n;
  }
  return n == 0 ? 0 : std::exp(sum / n);
}

}  // namespace tdr::analytic
