#ifndef TDR_ANALYTIC_FIT_H_
#define TDR_ANALYTIC_FIT_H_

#include <utility>
#include <vector>

namespace tdr::analytic {

/// Result of a least-squares fit of log(y) = k·log(x) + c.
struct PowerLawFit {
  double exponent = 0;   // k — the growth order the paper's claims are about
  double log_constant = 0;  // c
  double r_squared = 0;  // goodness of fit in log-log space
  int points_used = 0;   // points with x > 0 and y > 0
};

/// Fits y ~ C·x^k over the positive points of `xy`. This is how every
/// bench turns a sweep into "measured growth exponent k (model: 3.00)".
/// Needs at least two positive points; otherwise returns a zero fit.
PowerLawFit FitPowerLaw(const std::vector<std::pair<double, double>>& xy);

/// Convenience: just the exponent.
double FitPowerLawExponent(const std::vector<std::pair<double, double>>& xy);

/// Geometric mean of measured/model ratios over positive pairs — the
/// constant-factor offset between a simulation sweep and the closed
/// form (EXPERIMENTS.md quotes these). Returns 0 if no valid pair.
double GeometricMeanRatio(const std::vector<double>& measured,
                          const std::vector<double>& model);

}  // namespace tdr::analytic

#endif  // TDR_ANALYTIC_FIT_H_
