#ifndef TDR_ANALYTIC_MODEL_H_
#define TDR_ANALYTIC_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tdr::analytic {

/// The model parameters of Table 2, plus the mobile-node timing knobs.
/// All times in seconds; rates in events per second.
struct ModelParams {
  double db_size = 10000;     // DB_Size: distinct objects in the database
  double nodes = 1;           // Nodes: each node replicates all objects
  double tps = 10;            // TPS: transactions/second originating per node
  double actions = 4;         // Actions: updates per transaction
  double action_time = 0.01;  // Action_Time: seconds per action
  // Mobile-node parameters (§4 disconnected analysis):
  double time_between_disconnects = 3600;  // mean connected time
  double disconnected_time = 0;            // Disconnect_Time
  // Explicitly ignored by the model; retained so ablations can name them:
  double message_delay = 0;
  double message_cpu = 0;

  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Single-node base case (§3, equations 1–5)
// ---------------------------------------------------------------------------

/// Eq. (1): Transactions = TPS x Actions x Action_Time — the number of
/// concurrent transactions originating at one node.
double ConcurrentTransactions(const ModelParams& p);

/// Eq. (2): PW ≈ Transactions x Actions² / (2 x DB_Size) — probability a
/// transaction waits at least once in its lifetime.
double SingleNodeWaitProbability(const ModelParams& p);

/// Eq. (3): PD ≈ PW² / Transactions = Transactions x Actions⁴ /
/// (4 x DB_Size²) — probability a transaction deadlocks.
double SingleNodeDeadlockProbability(const ModelParams& p);

/// Eq. (4): per-transaction deadlock rate (deadlocks/second) =
/// PD / (Actions x Action_Time).
double SingleNodeTxnDeadlockRate(const ModelParams& p);

/// Eq. (5): whole-node deadlock rate = Eq.(4) x Eq.(1) =
/// TPS² x Action_Time x Actions⁵ / (4 x DB_Size²).
double SingleNodeDeadlockRate(const ModelParams& p);

/// Companion to Eq. (5) by the same argument applied to waits: the
/// single-node wait rate = PW / duration x Transactions =
/// TPS² x Action_Time x Actions³ / (2 x DB_Size).
double SingleNodeWaitRate(const ModelParams& p);

// ---------------------------------------------------------------------------
// Eager replication (§3, equations 6–13)
// ---------------------------------------------------------------------------

/// Eq. (6): transaction size in actions = Actions x Nodes.
double EagerTransactionSize(const ModelParams& p);

/// Eq. (6): transaction duration = Actions x Nodes x Action_Time.
double EagerTransactionDuration(const ModelParams& p);

/// Eq. (6): aggregate user transaction rate = TPS x Nodes.
double TotalTps(const ModelParams& p);

/// Eq. (7): total concurrent transactions in the system =
/// TPS x Actions x Action_Time x Nodes² (holds for eager AND lazy: eager
/// has fewer-longer transactions, lazy more-shorter ones).
double TotalTransactions(const ModelParams& p);

/// Eq. (8): cluster-wide action (update) rate = TPS x Actions x Nodes².
double ActionRate(const ModelParams& p);

/// Eq. (9): probability an eager transaction waits =
/// TPS x Action_Time x Actions³ x Nodes² / (2 x DB_Size).
double EagerWaitProbability(const ModelParams& p);

/// Eq. (10): system-wide eager wait rate =
/// TPS² x Action_Time x (Actions x Nodes)³ / (2 x DB_Size).
double EagerWaitRate(const ModelParams& p);

/// Eq. (11): probability an eager transaction deadlocks =
/// TPS x Action_Time x Actions⁵ x Nodes² / (4 x DB_Size²).
double EagerDeadlockProbability(const ModelParams& p);

/// Eq. (12): system-wide eager deadlock rate =
/// TPS² x Action_Time x Actions⁵ x Nodes³ / (4 x DB_Size²).
/// THE headline: cubic in nodes, fifth power in transaction size.
double EagerDeadlockRate(const ModelParams& p);

/// Eq. (13): Eq. (12) with the database scaled up with the system
/// (DB_Size := db_size x Nodes, as in TPC-A/B/C):
/// TPS² x Action_Time x Actions⁵ x Nodes / (4 x db_size²) — linear in
/// nodes. `p.db_size` is the per-node base size here.
double EagerDeadlockRateScaledDb(const ModelParams& p);

// ---------------------------------------------------------------------------
// Lazy group replication (§4, equations 14–18)
// ---------------------------------------------------------------------------

/// Eq. (14): lazy-group reconciliation rate — transactions that would
/// wait under eager face reconciliation under lazy group, so this equals
/// the eager wait rate, Eq. (10):
/// TPS² x Action_Time x (Actions x Nodes)³ / (2 x DB_Size).
double LazyGroupReconciliationRate(const ModelParams& p);

/// Eq. (15): distinct outbound pending object updates when a mobile node
/// reconnects ≈ Disconnect_Time x TPS x Actions.
double MobileOutboundUpdates(const ModelParams& p);

/// Eq. (16): pending inbound updates from the rest of the network ≈
/// (Nodes - 1) x Disconnect_Time x TPS x Actions.
double MobileInboundUpdates(const ModelParams& p);

/// Eq. (17): probability a reconnecting node needs reconciliation ≈
/// Inbound x Outbound / DB_Size ≈
/// Nodes x (Disconnect_Time x TPS x Actions)² / DB_Size.
double MobileCollisionProbability(const ModelParams& p);

/// Eq. (18): system-wide mobile reconciliation rate ≈
/// P(collision) x Nodes / Disconnect_Time =
/// Disconnect_Time x (TPS x Actions x Nodes)² / DB_Size.
double MobileReconciliationRate(const ModelParams& p);

// ---------------------------------------------------------------------------
// Lazy master replication (§5, equation 19) and two-tier (§7)
// ---------------------------------------------------------------------------

/// Eq. (19): lazy-master deadlock rate =
/// (TPS x Nodes)² x Action_Time x Actions⁵ / (4 x DB_Size²) — quadratic
/// in nodes (all master transactions contend at the owners).
double LazyMasterDeadlockRate(const ModelParams& p);

/// §7: two-tier base transactions execute under lazy-master rules, so
/// their deadlock rate is Eq. (19). Deadlocked base transactions are
/// resubmitted until they succeed.
double TwoTierBaseDeadlockRate(const ModelParams& p);

/// §7: the two-tier reconciliation rate is the acceptance-failure rate;
/// it is ZERO when all transactions commute. `non_commutative_fraction`
/// scales the mobile collision exposure for mixed workloads: only
/// colliding non-commutative tentative transactions can fail acceptance.
double TwoTierReconciliationRate(const ModelParams& p,
                                 double non_commutative_fraction);

// ---------------------------------------------------------------------------
// Sweep helper
// ---------------------------------------------------------------------------

/// One row of the scaling tables the benches print.
struct ScalingRow {
  double nodes = 1;
  double eager_wait_rate = 0;           // Eq. (10)
  double eager_deadlock_rate = 0;       // Eq. (12)
  double eager_deadlock_scaled_db = 0;  // Eq. (13)
  double lazy_group_reconciliation = 0; // Eq. (14)
  double lazy_master_deadlock = 0;      // Eq. (19)
  double two_tier_base_deadlock = 0;    // Eq. (19) applied to base txns
};

/// Evaluates the model at each node count in `node_counts`.
std::vector<ScalingRow> SweepNodes(const ModelParams& base,
                                   const std::vector<double>& node_counts);

}  // namespace tdr::analytic

#endif  // TDR_ANALYTIC_MODEL_H_
