#include "analytic/model.h"

#include <cmath>

#include "util/logging.h"

namespace tdr::analytic {

namespace {
double Pow(double b, int e) { return std::pow(b, e); }
}  // namespace

std::string ModelParams::ToString() const {
  return StrPrintf(
      "db_size=%.0f nodes=%.0f tps=%.3g actions=%.0f action_time=%.4gs "
      "disconnect=%.3gs",
      db_size, nodes, tps, actions, action_time, disconnected_time);
}

double ConcurrentTransactions(const ModelParams& p) {
  // Eq. (1)
  return p.tps * p.actions * p.action_time;
}

double SingleNodeWaitProbability(const ModelParams& p) {
  // Eq. (2)
  return ConcurrentTransactions(p) * p.actions * p.actions /
         (2.0 * p.db_size);
}

double SingleNodeDeadlockProbability(const ModelParams& p) {
  // Eq. (3): PW^2 / Transactions.
  double pw = SingleNodeWaitProbability(p);
  double txns = ConcurrentTransactions(p);
  if (txns <= 0) return 0;
  return pw * pw / txns;
}

double SingleNodeTxnDeadlockRate(const ModelParams& p) {
  // Eq. (4): PD / (Actions x Action_Time).
  return p.tps * Pow(p.actions, 4) / (4.0 * p.db_size * p.db_size);
}

double SingleNodeDeadlockRate(const ModelParams& p) {
  // Eq. (5)
  return p.tps * p.tps * p.action_time * Pow(p.actions, 5) /
         (4.0 * p.db_size * p.db_size);
}

double SingleNodeWaitRate(const ModelParams& p) {
  // PW / duration x Transactions (the Eq.(10) argument at Nodes = 1).
  return p.tps * p.tps * p.action_time * Pow(p.actions, 3) /
         (2.0 * p.db_size);
}

double EagerTransactionSize(const ModelParams& p) {
  // Eq. (6)
  return p.actions * p.nodes;
}

double EagerTransactionDuration(const ModelParams& p) {
  // Eq. (6)
  return p.actions * p.nodes * p.action_time;
}

double TotalTps(const ModelParams& p) {
  // Eq. (6)
  return p.tps * p.nodes;
}

double TotalTransactions(const ModelParams& p) {
  // Eq. (7)
  return p.tps * p.actions * p.action_time * p.nodes * p.nodes;
}

double ActionRate(const ModelParams& p) {
  // Eq. (8)
  return p.tps * p.actions * p.nodes * p.nodes;
}

double EagerWaitProbability(const ModelParams& p) {
  // Eq. (9)
  return p.tps * p.action_time * Pow(p.actions, 3) * p.nodes * p.nodes /
         (2.0 * p.db_size);
}

double EagerWaitRate(const ModelParams& p) {
  // Eq. (10)
  return p.tps * p.tps * p.action_time * Pow(p.actions * p.nodes, 3) /
         (2.0 * p.db_size);
}

double EagerDeadlockProbability(const ModelParams& p) {
  // Eq. (11)
  return p.tps * p.action_time * Pow(p.actions, 5) * p.nodes * p.nodes /
         (4.0 * p.db_size * p.db_size);
}

double EagerDeadlockRate(const ModelParams& p) {
  // Eq. (12)
  return p.tps * p.tps * p.action_time * Pow(p.actions, 5) *
         Pow(p.nodes, 3) / (4.0 * p.db_size * p.db_size);
}

double EagerDeadlockRateScaledDb(const ModelParams& p) {
  // Eq. (13): substitute DB_Size -> db_size x Nodes into Eq. (12).
  return p.tps * p.tps * p.action_time * Pow(p.actions, 5) * p.nodes /
         (4.0 * p.db_size * p.db_size);
}

double LazyGroupReconciliationRate(const ModelParams& p) {
  // Eq. (14) == Eq. (10): waits become reconciliations.
  return EagerWaitRate(p);
}

double MobileOutboundUpdates(const ModelParams& p) {
  // Eq. (15)
  return p.disconnected_time * p.tps * p.actions;
}

double MobileInboundUpdates(const ModelParams& p) {
  // Eq. (16)
  return (p.nodes - 1.0) * p.disconnected_time * p.tps * p.actions;
}

double MobileCollisionProbability(const ModelParams& p) {
  // Eq. (17). The paper approximates Nodes-1 by Nodes in the displayed
  // closed form; we keep the exact product of Eqs. (15) and (16).
  return MobileInboundUpdates(p) * MobileOutboundUpdates(p) / p.db_size;
}

double MobileReconciliationRate(const ModelParams& p) {
  // Eq. (18): P(collision) x Nodes / Disconnect_Time.
  if (p.disconnected_time <= 0) return 0;
  return MobileCollisionProbability(p) * p.nodes / p.disconnected_time;
}

double LazyMasterDeadlockRate(const ModelParams& p) {
  // Eq. (19)
  return Pow(p.tps * p.nodes, 2) * p.action_time * Pow(p.actions, 5) /
         (4.0 * p.db_size * p.db_size);
}

double TwoTierBaseDeadlockRate(const ModelParams& p) {
  // §7: "When executing a base transaction, the two-tier scheme is a
  // lazy-master scheme. So, the deadlock rate for base transactions is
  // given by equation (19)."
  return LazyMasterDeadlockRate(p);
}

double TwoTierReconciliationRate(const ModelParams& p,
                                 double non_commutative_fraction) {
  // §7: "The reconciliation rate for base transactions will be zero if
  // all the transactions commute." Only the non-commutative fraction of
  // colliding tentative transactions is exposed to acceptance failure,
  // so the rate is the mobile collision rate scaled by that fraction
  // (both colliding parties must be non-commutative for the conflict to
  // be unresolvable, hence the square).
  double f = non_commutative_fraction;
  return MobileReconciliationRate(p) * f * f;
}

std::vector<ScalingRow> SweepNodes(const ModelParams& base,
                                   const std::vector<double>& node_counts) {
  std::vector<ScalingRow> rows;
  rows.reserve(node_counts.size());
  for (double n : node_counts) {
    ModelParams p = base;
    p.nodes = n;
    ScalingRow row;
    row.nodes = n;
    row.eager_wait_rate = EagerWaitRate(p);
    row.eager_deadlock_rate = EagerDeadlockRate(p);
    row.eager_deadlock_scaled_db = EagerDeadlockRateScaledDb(p);
    row.lazy_group_reconciliation = LazyGroupReconciliationRate(p);
    row.lazy_master_deadlock = LazyMasterDeadlockRate(p);
    row.two_tier_base_deadlock = TwoTierBaseDeadlockRate(p);
    rows.push_back(row);
  }
  return rows;
}

}  // namespace tdr::analytic
