#ifndef TDR_SIM_CALLBACK_H_
#define TDR_SIM_CALLBACK_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace tdr::sim {

/// Move-only callable wrapper with a 64-byte inline buffer.
///
/// std::function was the event core's dominant steady-state cost: its
/// small-object buffer is 16 bytes on libstdc++, so nearly every
/// scheduled event (a `this` pointer plus a couple of ids, or a nested
/// functor) heap-allocated on schedule and freed on fire/cancel.
/// Callback inlines captures up to kInlineSize bytes and only falls
/// back to the heap beyond that; moving it relocates the inline buffer
/// and never allocates.
///
/// The wrapper is deliberately minimal: no target_type, no copying, no
/// allocator support. Invoking an empty Callback is undefined (the
/// simulator never stores empty callbacks in live events).
class Callback {
 public:
  /// Large enough for every capture list in the simulator's hot paths
  /// (network delivery closures carry a 32-byte std::function plus ids).
  static constexpr std::size_t kInlineSize = 64;

  Callback() noexcept = default;
  Callback(std::nullptr_t) noexcept {}  // NOLINT: match std::function

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, Callback> &&
                                        std::is_invocable_r_v<void, D&>>>
  Callback(F&& f) {  // NOLINT: implicit, like std::function
    if constexpr (FitsInline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(buf_) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  Callback(Callback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      Relocate(other);
      other.ops_ = nullptr;
    }
  }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        Relocate(other);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  Callback& operator=(std::nullptr_t) noexcept {
    Reset();
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { Reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  // A null `relocate` means "memcpy the whole inline buffer" — true for
  // every trivially-copyable capture AND for the heap fallback (the
  // buffer then holds just an owning pointer). A null `destroy` means
  // trivially destructible. The nulls matter: moving and destroying
  // callbacks happens several times per event, and a predictable
  // load-test-skip beats an indirect call through a per-type thunk.
  struct Ops {
    void (*invoke)(void* self);
    // Move-constructs *src into dst and destroys *src (null: memcpy).
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* self) noexcept;  // null: trivial
  };

  template <typename D>
  static constexpr bool FitsInline() {
    return sizeof(D) <= kInlineSize &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* self) { (*static_cast<D*>(self))(); },
      std::is_trivially_copyable_v<D>
          ? nullptr
          : +[](void* src, void* dst) noexcept {
              D* from = static_cast<D*>(src);
              ::new (dst) D(std::move(*from));
              from->~D();
            },
      std::is_trivially_destructible_v<D>
          ? nullptr
          : +[](void* self) noexcept { static_cast<D*>(self)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* self) { (**static_cast<D**>(self))(); },
      nullptr,  // relocating an owning pointer is a copy of the buffer
      [](void* self) noexcept { delete *static_cast<D**>(self); },
  };

  void Relocate(Callback& other) noexcept {
    if (ops_->relocate != nullptr) {
      ops_->relocate(other.buf_, buf_);
    } else {
      std::memcpy(buf_, other.buf_, kInlineSize);
    }
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace tdr::sim

#endif  // TDR_SIM_CALLBACK_H_
