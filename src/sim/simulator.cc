#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace tdr::sim {

EventId Simulator::RepeatEvery(SimTime interval, Callback fn) {
  assert(interval > SimTime::Zero());
  // The previous engine allocated a separate series handle from the
  // sequence counter before scheduling the first tick. Consume one here
  // too so the sequence stream — and with it every tie-break order and
  // seeded simulation outcome — is unchanged.
  ++next_seq_;
  return AddEvent(now_ + interval, interval, std::move(fn));
}

void Simulator::Compact() {
  heap_.Compact([this](const HeapEntry& entry) {
    return slots_[entry.slot].gen == entry.gen;
  });
}

void Simulator::FireTop() {
  const HeapEntry top = heap_.Top();
  heap_.PopTop();
  now_ = top.when;
  ++executed_events_;
  Event& e = slots_[top.slot];
  if (e.interval == SimTime::Zero()) {
    // One-shot: release the slot before invoking so Cancel(own id)
    // inside the callback reports "already fired" and the slot is
    // immediately reusable by whatever the callback schedules.
    Callback fn = std::move(e.fn);
    ReleaseSlot(top.slot);
    --pending_;
    fn();
  } else {
    // Repeat series: the callback runs with the slot held but off-heap,
    // then the series re-arms unless the callback cancelled it (which
    // bumps the generation and drops it from `pending_`). The callback
    // is moved out during the call so a reentrant Cancel never destroys
    // a running function object.
    Callback fn = std::move(e.fn);
    fn();
    Event& e2 = slots_[top.slot];  // the slab may have grown and moved
    if (e2.gen == top.gen) {
      // Fresh sequence number per occurrence, exactly as if this tick
      // had scheduled its successor — keeps tie-break order identical
      // to an explicit reschedule.
      e2.fn = std::move(fn);
      heap_.Push(HeapEntry{now_ + e2.interval, next_seq_++, top.slot,
                           top.gen});
    }
  }
}

std::uint64_t Simulator::RunUntil(SimTime horizon) {
  std::uint64_t ran = 0;
  while (true) {
    SkipStale();
    if (heap_.empty() || heap_.Top().when > horizon) break;
    FireTop();
    ++ran;
  }
  if (now_ < horizon) now_ = horizon;
  return ran;
}

std::uint64_t Simulator::Run(std::uint64_t max_events) {
  std::uint64_t ran = 0;
  while (ran < max_events) {
    SkipStale();
    if (heap_.empty()) break;
    FireTop();
    ++ran;
  }
  return ran;
}

bool Simulator::Step() {
  SkipStale();
  if (heap_.empty()) return false;
  FireTop();
  return true;
}

}  // namespace tdr::sim
