#include "sim/simulator.h"

#include <cassert>
#include <memory>
#include <utility>

namespace tdr::sim {

EventId Simulator::ScheduleAt(SimTime when, Callback fn) {
  if (when < now_) {
    ++clamped_schedules_;
    when = now_;
  }
  EventId id = next_seq_++;
  queue_.push(Event{when, id, std::move(fn)});
  pending_ids_.insert(id);
  return id;
}

EventId Simulator::ScheduleAfter(SimTime delay, Callback fn) {
  if (delay < SimTime::Zero()) delay = SimTime::Zero();
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool Simulator::Cancel(EventId id) {
  if (id == kInvalidEventId) return false;
  if (repeating_.erase(id) > 0) {
    // The already-scheduled next occurrence will notice the series is
    // gone and fire as a no-op.
    return true;
  }
  // We cannot remove from the middle of a priority queue; mark instead.
  if (pending_ids_.erase(id) == 0) return false;
  cancelled_.insert(id);
  return true;
}

EventId Simulator::RepeatEvery(SimTime interval, Callback fn) {
  assert(interval > SimTime::Zero());
  EventId series = next_seq_++;
  repeating_.emplace(series, std::move(fn));
  ScheduleTick(series, interval);
  return series;
}

void Simulator::ScheduleTick(EventId series, SimTime interval) {
  // The queued event holds only the series id; the callback lives in
  // repeating_ so Cancel() frees it (no shared_ptr self-capture cycle).
  ScheduleAfter(interval, [this, series, interval]() {
    auto it = repeating_.find(series);
    if (it == repeating_.end()) return;  // series cancelled
    // Copy before invoking: the callback may Cancel() its own series,
    // which erases the map entry — destroying the std::function while
    // it executes would be undefined behaviour.
    Callback fn = it->second;
    fn();
    // Re-look-up: the callback may have cancelled the series.
    if (repeating_.find(series) == repeating_.end()) return;
    ScheduleTick(series, interval);
  });
}

bool Simulator::PopNext(Event* out) {
  while (!queue_.empty()) {
    // priority_queue::top returns const&; we must copy the callback.
    // Move via const_cast is the standard idiom here and safe because
    // the element is popped immediately.
    Event& top = const_cast<Event&>(queue_.top());
    Event ev{top.when, top.seq, std::move(top.fn)};
    queue_.pop();
    auto it = cancelled_.find(ev.seq);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    pending_ids_.erase(ev.seq);
    *out = std::move(ev);
    return true;
  }
  return false;
}

std::uint64_t Simulator::RunUntil(SimTime horizon) {
  std::uint64_t ran = 0;
  Event ev;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.when > horizon) break;
    if (!PopNext(&ev)) break;
    if (ev.when > horizon) {
      // PopNext may skip cancelled events and surface one past the
      // horizon; push it back untouched.
      pending_ids_.insert(ev.seq);
      queue_.push(std::move(ev));
      break;
    }
    now_ = ev.when;
    ++executed_events_;
    ++ran;
    ev.fn();
  }
  if (now_ < horizon) now_ = horizon;
  return ran;
}

std::uint64_t Simulator::Run(std::uint64_t max_events) {
  std::uint64_t ran = 0;
  Event ev;
  while (ran < max_events && PopNext(&ev)) {
    now_ = ev.when;
    ++executed_events_;
    ++ran;
    ev.fn();
  }
  return ran;
}

bool Simulator::Step() {
  Event ev;
  if (!PopNext(&ev)) return false;
  now_ = ev.when;
  ++executed_events_;
  ev.fn();
  return true;
}

}  // namespace tdr::sim
