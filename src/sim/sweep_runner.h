#ifndef TDR_SIM_SWEEP_RUNNER_H_
#define TDR_SIM_SWEEP_RUNNER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace tdr::sim {

/// Derives the seed for sweep run `index` from a sweep-level base seed
/// (SplitMix64 finalizer over the pair). Pure function of its inputs,
/// so a sweep's per-run seeds — and therefore its results — are fixed
/// by (base_seed, index) alone, independent of thread count, schedule,
/// or which other runs exist.
std::uint64_t DeriveSeed(std::uint64_t base_seed, std::uint64_t index);

/// Deterministic parallel runner for independent simulation jobs.
///
/// Each job owns everything it touches (its own Simulator, Cluster,
/// Rng); the runner only distributes indices over a thread pool and
/// joins. Because jobs never share mutable state and each job's inputs
/// are a pure function of its index, results are bit-identical
/// regardless of thread count or scheduling — `threads = 1` is the
/// reference execution and anything else must match it exactly.
class SweepRunner {
 public:
  struct Options {
    /// Worker threads; 0 means one per hardware thread.
    unsigned threads = 0;
  };

  SweepRunner() : SweepRunner(Options{}) {}
  explicit SweepRunner(Options options);

  unsigned threads() const { return threads_; }

  /// Invokes job(i) for every i in [0, n), distributing indices over
  /// the pool; blocks until all jobs finish. Jobs must be independent:
  /// anything they share must be immutable or synchronized by the
  /// caller. If a job throws, the first exception is rethrown after all
  /// workers drain.
  void Run(std::size_t n, const std::function<void(std::size_t)>& job) const;

  /// Typed fan-out: returns fn(0..n-1) in index order, so the result is
  /// independent of which thread computed which element.
  template <typename R>
  std::vector<R> Map(std::size_t n,
                     const std::function<R(std::size_t)>& fn) const {
    std::vector<R> out(n);
    Run(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  unsigned threads_;
};

}  // namespace tdr::sim

#endif  // TDR_SIM_SWEEP_RUNNER_H_
