#ifndef TDR_SIM_EVENT_ID_H_
#define TDR_SIM_EVENT_ID_H_

#include <cstdint>

namespace tdr::sim {

/// Identifies a scheduled event so it can be cancelled. Ids are never
/// reused within one Simulator. Split out of simulator.h so the
/// runtime::Runtime interface (runtime/runtime.h) can speak EventIds
/// without pulling in the whole event core.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

}  // namespace tdr::sim

#endif  // TDR_SIM_EVENT_ID_H_
