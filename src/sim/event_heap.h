#ifndef TDR_SIM_EVENT_HEAP_H_
#define TDR_SIM_EVENT_HEAP_H_

#include <algorithm>
#include <cstddef>
#include <vector>

namespace tdr::sim {

/// d-ary min-heap of small value entries.
///
/// Entries carry their own ordering key (the simulator packs (time, seq,
/// slot, generation) into 24 bytes), so every sift comparison reads
/// contiguous heap memory — never the event slab. That locality is the
/// whole point: on queues bigger than cache, chasing a handle into the
/// slab per comparison costs a cache miss per level.
///
/// Arity 4 instead of 2: sift-down does 3 extra comparisons per level
/// but halves the number of levels, and the level-per-level memory walk
/// — not the comparisons — dominates once the heap leaves L1.
///
/// There is no positional removal. The simulator cancels lazily (stale
/// entries are skipped at pop time by a generation check) and calls
/// Compact() when stale entries pile up. Compact() preserves pop order:
/// keys are unique, and every valid heap over the same entries pops the
/// same sequence.
template <typename Entry, typename Less, unsigned Arity = 4>
class EventHeap {
  static_assert(Arity >= 2, "a heap needs at least two children per node");

 public:
  bool empty() const { return data_.empty(); }
  std::size_t size() const { return data_.size(); }

  const Entry& Top() const { return data_.front(); }

  void Push(const Entry& entry) {
    data_.push_back(entry);
    SiftUp(data_.size() - 1);
  }

  void PopTop() {
    Entry moved = data_.back();
    data_.pop_back();
    if (data_.empty()) return;
    data_[0] = moved;
    SiftDown(0);
  }

  /// Drops every entry for which keep() is false, then re-heapifies
  /// (Floyd, O(n)).
  template <typename Keep>
  void Compact(Keep keep) {
    data_.erase(std::remove_if(data_.begin(), data_.end(),
                               [&](const Entry& e) { return !keep(e); }),
                data_.end());
    if (data_.size() < 2) return;
    for (std::size_t i = (data_.size() - 2) / Arity + 1; i-- > 0;) {
      SiftDown(i);
    }
  }

  void Reserve(std::size_t n) { data_.reserve(n); }

 private:
  void SiftUp(std::size_t pos) {
    Entry entry = data_[pos];
    while (pos > 0) {
      std::size_t parent = (pos - 1) / Arity;
      if (!less_(entry, data_[parent])) break;
      data_[pos] = data_[parent];
      pos = parent;
    }
    data_[pos] = entry;
  }

  void SiftDown(std::size_t pos) {
    Entry entry = data_[pos];
    const std::size_t n = data_.size();
    while (true) {
      const std::size_t first = pos * Arity + 1;
      if (first + Arity > n) {
        // Partial (or absent) child group — necessarily the last level:
        // any child of `best` would be at index > n (see the arity
        // algebra in the header comment), so one move finishes the sift.
        if (first < n) {
          std::size_t best = first;
          for (std::size_t c = first + 1; c < n; ++c) {
            best = less_(data_[c], data_[best]) ? c : best;
          }
          if (less_(data_[best], entry)) {
            data_[pos] = data_[best];
            pos = best;
          }
        }
        break;
      }
      // Full child group. Min-child selection is the hot comparison and
      // each outcome is a coin flip, so pick via conditional moves — a
      // pairwise tournament, not a serial scan, to keep the cmovs off
      // one dependency chain.
      std::size_t best;
      if constexpr (Arity == 4) {
        const std::size_t l =
            less_(data_[first + 1], data_[first]) ? first + 1 : first;
        const std::size_t r =
            less_(data_[first + 3], data_[first + 2]) ? first + 3 : first + 2;
        best = less_(data_[r], data_[l]) ? r : l;
      } else {
        best = first;
        for (unsigned c = 1; c < Arity; ++c) {
          best = less_(data_[first + c], data_[best]) ? first + c : best;
        }
      }
      if (!less_(data_[best], entry)) break;
      data_[pos] = data_[best];
      pos = best;
    }
    data_[pos] = entry;
  }

  std::vector<Entry> data_;
  Less less_;
};

}  // namespace tdr::sim

#endif  // TDR_SIM_EVENT_HEAP_H_
