#include "sim/sweep_runner.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace tdr::sim {

std::uint64_t DeriveSeed(std::uint64_t base_seed, std::uint64_t index) {
  // SplitMix64 finalizer over base_seed advanced by the golden-ratio
  // increment per index. index+1 keeps DeriveSeed(s, 0) != s so a run
  // never silently inherits the sweep-level seed.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

SweepRunner::SweepRunner(Options options) : threads_(options.threads) {
  if (threads_ == 0) {
    threads_ = std::thread::hardware_concurrency();
    if (threads_ == 0) threads_ = 1;
  }
}

void SweepRunner::Run(std::size_t n,
                      const std::function<void(std::size_t)>& job) const {
  if (n == 0) return;
  unsigned workers =
      static_cast<std::size_t>(threads_) < n ? threads_
                                             : static_cast<unsigned>(n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) job(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex error_mu;
  std::exception_ptr first_error;
  auto worker = [&] {
    while (true) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        job(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace tdr::sim
