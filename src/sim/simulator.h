#ifndef TDR_SIM_SIMULATOR_H_
#define TDR_SIM_SIMULATOR_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "runtime/runtime.h"
#include "sim/callback.h"
#include "sim/event_heap.h"
#include "sim/event_id.h"
#include "util/sim_time.h"

namespace tdr::sim {

/// Deterministic discrete-event simulator.
///
/// Events are (time, sequence, callback) triples executed in strictly
/// nondecreasing time order; ties break by scheduling order (sequence),
/// which makes runs reproducible across platforms. All of the replication
/// machinery in this library — transaction actions, message deliveries,
/// disconnect/reconnect cycles — runs as events on one Simulator.
///
/// The simulator is single-threaded by design: the paper's model counts
/// logical conflicts, and a deterministic single-threaded event loop
/// reproduces those exactly while staying debuggable. Parallelism lives
/// one level up (sweep_runner.h): independent configurations each own a
/// Simulator and run concurrently.
///
/// Internals: callbacks live in a slab (`slots_`) recycled through a
/// free-list, and firing order comes from a 4-ary heap whose 24-byte
/// entries carry the (time, seq) key inline — sift comparisons never
/// touch the slab. EventIds are generation-tagged slot handles;
/// cancellation just bumps the slot's generation (O(1)) and the stale
/// heap entry is skipped at pop time, with periodic compaction when
/// stale entries outnumber live ones. Callbacks use a small-buffer-
/// optimized wrapper (callback.h), so scheduling, cancelling and firing
/// allocate nothing in steady state. Repeat series are intrusive: the
/// series' own slot is re-armed after each tick with a fresh sequence
/// number, so periodic timers never touch a side table.
///
/// The class is `final` and implements runtime::Runtime: components
/// typed against the interface pay one virtual dispatch per schedule,
/// while everything holding a concrete Simulator (the tests, the sweep
/// runner, the thread backend's clock core) devirtualizes back to the
/// same inline fast paths as before.
class Simulator final : public runtime::Runtime {
 public:
  using Callback = ::tdr::sim::Callback;

  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Starts at zero.
  SimTime Now() const override { return now_; }

  /// Schedules `fn` to run at absolute time `when`. Scheduling in the
  /// past is an error and the event is clamped to Now() (and counted in
  /// `clamped_schedules()` so tests can assert it never happens).
  EventId ScheduleAt(SimTime when, Callback fn) override {
    if (when < now_) {
      ++clamped_schedules_;
      when = now_;
    }
    return AddEvent(when, SimTime::Zero(), std::move(fn));
  }

  /// Schedules `fn` to run `delay` after Now(). Negative delays clamp to
  /// zero and count in `clamped_schedules()`, same as past-time
  /// ScheduleAt.
  EventId ScheduleAfter(SimTime delay, Callback fn) override {
    if (delay < SimTime::Zero()) {
      ++clamped_schedules_;
      delay = SimTime::Zero();
    }
    return AddEvent(now_ + delay, SimTime::Zero(), std::move(fn));
  }

  /// Cancels a pending event. Returns true if the event existed and had
  /// not yet fired.
  bool Cancel(EventId id) override {
    std::uint32_t slot = static_cast<std::uint32_t>(id & 0xffffffffu);
    std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
    if (gen == 0 || slot >= slots_.size()) return false;
    Event& e = slots_[slot];
    if (e.gen != gen) return false;  // already fired, cancelled, or recycled
    // The generation bump strands the event's heap entry; it is skipped
    // when it reaches the top, or swept out by Compact() once stale
    // entries outnumber live ones.
    ReleaseSlot(slot);
    --pending_;
    if (heap_.size() > 2 * pending_ + kCompactSlack) Compact();
    return true;
  }

  /// Schedules `fn` every `interval`, starting at Now() + interval, until
  /// the returned id is cancelled. `fn` runs before the next occurrence
  /// is scheduled, so it may Cancel the series from inside itself.
  EventId RepeatEvery(SimTime interval, Callback fn) override;

  /// Runs events until the queue is empty or `horizon` is passed. Events
  /// scheduled exactly at the horizon DO run. Returns the number of
  /// events executed.
  std::uint64_t RunUntil(SimTime horizon) override;

  /// Runs until the queue is empty. A runaway self-rescheduling workload
  /// would never terminate, so `max_events` (default ~4e9) bounds it.
  std::uint64_t Run(std::uint64_t max_events = (1ULL << 32)) override;

  /// Executes exactly one event if any is pending. Returns true if an
  /// event ran.
  bool Step();

  /// Writes the next live event's firing time to `when` and returns
  /// true; false when idle. The thread backend's coordinator uses this
  /// to pace dispatch against the wall clock without popping anything.
  bool PeekNextTime(SimTime* when) {
    SkipStale();
    if (heap_.empty()) return false;
    *when = heap_.Top().when;
    return true;
  }

  /// True if no events are pending (cancelled events are ignored).
  bool Idle() const override { return pending_ == 0; }

  /// Number of pending (non-cancelled) events.
  std::size_t PendingEvents() const override { return pending_; }

  std::uint64_t executed_events() const { return executed_events_; }
  std::uint64_t clamped_schedules() const { return clamped_schedules_; }

 private:
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;
  static constexpr std::size_t kCompactSlack = 64;

  /// Slab entry: everything an event needs at fire time. The ordering
  /// key lives in the heap entry, not here.
  struct Event {
    Callback fn;
    SimTime interval;                // nonzero marks a repeat series
    std::uint32_t gen = 1;           // bumped when the slot is recycled
    std::uint32_t next_free = kNilSlot;
  };

  /// 24-byte heap entry: key plus the generation-tagged slot handle.
  struct HeapEntry {
    SimTime when;
    std::uint64_t seq;               // tie breaker: global schedule order
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct EntryLess {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      // Sift comparisons resolve essentially randomly, so a two-step
      // compare mispredicts constantly. Folding (when, seq) into one
      // 128-bit key keeps the whole comparison branchless (sub/sbb);
      // the sign-bit flip maps signed micros onto uint64 preserving
      // order.
#ifdef __SIZEOF_INT128__
      return Key(a) < Key(b);
#else
      return (a.when < b.when) |
             ((a.when == b.when) & (a.seq < b.seq));
#endif
    }
#ifdef __SIZEOF_INT128__
    static unsigned __int128 Key(const HeapEntry& e) {
      std::uint64_t biased =
          static_cast<std::uint64_t>(e.when.micros()) ^ (1ULL << 63);
      return (static_cast<unsigned __int128>(biased) << 64) | e.seq;
    }
#endif
  };

  static EventId MakeId(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  EventId AddEvent(SimTime when, SimTime interval, Callback fn) {
    std::uint32_t slot = AcquireSlot();
    Event& e = slots_[slot];
    e.interval = interval;
    e.fn = std::move(fn);
    ++pending_;
    heap_.Push(HeapEntry{when, next_seq_++, slot, e.gen});
    return MakeId(slot, e.gen);
  }

  std::uint32_t AcquireSlot() {
    if (free_head_ != kNilSlot) {
      std::uint32_t slot = free_head_;
      free_head_ = slots_[slot].next_free;
      return slot;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void ReleaseSlot(std::uint32_t slot) {
    Event& e = slots_[slot];
    e.fn = nullptr;
    // The generation bump is what invalidates the old EventId; skip 0 so
    // MakeId never produces kInvalidEventId.
    if (++e.gen == 0) e.gen = 1;
    e.next_free = free_head_;
    free_head_ = slot;
  }

  /// Discards generation-stale heap tops so Top(), if any, is live.
  void SkipStale() {
    while (!heap_.empty()) {
      const HeapEntry& top = heap_.Top();
      if (slots_[top.slot].gen == top.gen) break;
      heap_.PopTop();
    }
  }

  void Compact();
  /// Pops and executes the top event (top must exist and be live).
  void FireTop();

  SimTime now_;
  std::uint64_t next_seq_ = 1;  // 0 is reserved (kInvalidEventId legacy)
  std::vector<Event> slots_;
  std::uint32_t free_head_ = kNilSlot;
  EventHeap<HeapEntry, EntryLess> heap_;
  std::size_t pending_ = 0;
  std::uint64_t executed_events_ = 0;
  std::uint64_t clamped_schedules_ = 0;
};

}  // namespace tdr::sim

#endif  // TDR_SIM_SIMULATOR_H_
