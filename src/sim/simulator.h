#ifndef TDR_SIM_SIMULATOR_H_
#define TDR_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/sim_time.h"
#include "util/status.h"

namespace tdr::sim {

/// Identifies a scheduled event so it can be cancelled. Ids are never
/// reused within one Simulator.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

/// Deterministic discrete-event simulator.
///
/// Events are (time, sequence, callback) triples executed in strictly
/// nondecreasing time order; ties break by scheduling order (sequence),
/// which makes runs reproducible across platforms. All of the replication
/// machinery in this library — transaction actions, message deliveries,
/// disconnect/reconnect cycles — runs as events on one Simulator.
///
/// The simulator is single-threaded by design: the paper's model counts
/// logical conflicts, and a deterministic single-threaded event loop
/// reproduces those exactly while staying debuggable.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Starts at zero.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run at absolute time `when`. Scheduling in the
  /// past is an error and the event is clamped to Now() (and counted in
  /// `clamped_schedules()` so tests can assert it never happens).
  EventId ScheduleAt(SimTime when, Callback fn);

  /// Schedules `fn` to run `delay` after Now(). Negative delays clamp.
  EventId ScheduleAfter(SimTime delay, Callback fn);

  /// Cancels a pending event. Returns true if the event existed and had
  /// not yet fired.
  bool Cancel(EventId id);

  /// Schedules `fn` every `interval`, starting at Now() + interval, until
  /// the returned id is cancelled. `fn` runs before the next occurrence
  /// is scheduled, so it may Cancel the series from inside itself.
  EventId RepeatEvery(SimTime interval, Callback fn);

  /// Runs events until the queue is empty or `horizon` is passed. Events
  /// scheduled exactly at the horizon DO run. Returns the number of
  /// events executed.
  std::uint64_t RunUntil(SimTime horizon);

  /// Runs until the queue is empty. A runaway self-rescheduling workload
  /// would never terminate, so `max_events` (default ~4e9) bounds it.
  std::uint64_t Run(std::uint64_t max_events = (1ULL << 32));

  /// Executes exactly one event if any is pending. Returns true if an
  /// event ran.
  bool Step();

  /// True if no events are pending (cancelled events are ignored).
  bool Idle() const { return pending_ids_.empty(); }

  /// Number of pending (non-cancelled) events.
  std::size_t PendingEvents() const { return pending_ids_.size(); }

  std::uint64_t executed_events() const { return executed_events_; }
  std::uint64_t clamped_schedules() const { return clamped_schedules_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;   // tie breaker and identity
    Callback fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return b.when < a.when;
      return b.seq < a.seq;
    }
  };

  /// Pops the next non-cancelled event, or returns false.
  bool PopNext(Event* out);

  SimTime now_;
  std::uint64_t next_seq_ = 1;  // 0 is kInvalidEventId
  /// Schedules the next occurrence of a repeat series.
  void ScheduleTick(EventId series, SimTime interval);

  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  // Ids currently in queue_ and not cancelled.
  std::unordered_set<EventId> pending_ids_;
  std::unordered_set<EventId> cancelled_;
  // Live repeat series: id -> callback. Owned here (not by the queued
  // events) so cancellation frees the callback and no reference cycles
  // form.
  std::unordered_map<EventId, Callback> repeating_;
  std::uint64_t executed_events_ = 0;
  std::uint64_t clamped_schedules_ = 0;
};

}  // namespace tdr::sim

#endif  // TDR_SIM_SIMULATOR_H_
