file(REMOVE_RECURSE
  "CMakeFiles/tdr_storage.dir/object_store.cc.o"
  "CMakeFiles/tdr_storage.dir/object_store.cc.o.d"
  "CMakeFiles/tdr_storage.dir/tentative_store.cc.o"
  "CMakeFiles/tdr_storage.dir/tentative_store.cc.o.d"
  "CMakeFiles/tdr_storage.dir/timestamp.cc.o"
  "CMakeFiles/tdr_storage.dir/timestamp.cc.o.d"
  "CMakeFiles/tdr_storage.dir/update_log.cc.o"
  "CMakeFiles/tdr_storage.dir/update_log.cc.o.d"
  "libtdr_storage.a"
  "libtdr_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdr_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
