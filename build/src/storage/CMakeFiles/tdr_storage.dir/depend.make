# Empty dependencies file for tdr_storage.
# This may be replaced when dependencies are built.
