file(REMOVE_RECURSE
  "libtdr_storage.a"
)
