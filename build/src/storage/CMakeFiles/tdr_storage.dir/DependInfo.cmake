
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/object_store.cc" "src/storage/CMakeFiles/tdr_storage.dir/object_store.cc.o" "gcc" "src/storage/CMakeFiles/tdr_storage.dir/object_store.cc.o.d"
  "/root/repo/src/storage/tentative_store.cc" "src/storage/CMakeFiles/tdr_storage.dir/tentative_store.cc.o" "gcc" "src/storage/CMakeFiles/tdr_storage.dir/tentative_store.cc.o.d"
  "/root/repo/src/storage/timestamp.cc" "src/storage/CMakeFiles/tdr_storage.dir/timestamp.cc.o" "gcc" "src/storage/CMakeFiles/tdr_storage.dir/timestamp.cc.o.d"
  "/root/repo/src/storage/update_log.cc" "src/storage/CMakeFiles/tdr_storage.dir/update_log.cc.o" "gcc" "src/storage/CMakeFiles/tdr_storage.dir/update_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tdr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
