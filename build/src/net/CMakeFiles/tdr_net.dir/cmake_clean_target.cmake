file(REMOVE_RECURSE
  "libtdr_net.a"
)
