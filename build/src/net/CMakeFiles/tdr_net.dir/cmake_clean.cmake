file(REMOVE_RECURSE
  "CMakeFiles/tdr_net.dir/network.cc.o"
  "CMakeFiles/tdr_net.dir/network.cc.o.d"
  "libtdr_net.a"
  "libtdr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
