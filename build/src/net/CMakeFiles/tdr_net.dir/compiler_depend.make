# Empty compiler generated dependencies file for tdr_net.
# This may be replaced when dependencies are built.
