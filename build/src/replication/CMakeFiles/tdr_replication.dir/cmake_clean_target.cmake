file(REMOVE_RECURSE
  "libtdr_replication.a"
)
