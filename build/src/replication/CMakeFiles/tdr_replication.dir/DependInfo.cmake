
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/replication/cluster.cc" "src/replication/CMakeFiles/tdr_replication.dir/cluster.cc.o" "gcc" "src/replication/CMakeFiles/tdr_replication.dir/cluster.cc.o.d"
  "/root/repo/src/replication/convergence.cc" "src/replication/CMakeFiles/tdr_replication.dir/convergence.cc.o" "gcc" "src/replication/CMakeFiles/tdr_replication.dir/convergence.cc.o.d"
  "/root/repo/src/replication/driver.cc" "src/replication/CMakeFiles/tdr_replication.dir/driver.cc.o" "gcc" "src/replication/CMakeFiles/tdr_replication.dir/driver.cc.o.d"
  "/root/repo/src/replication/eager.cc" "src/replication/CMakeFiles/tdr_replication.dir/eager.cc.o" "gcc" "src/replication/CMakeFiles/tdr_replication.dir/eager.cc.o.d"
  "/root/repo/src/replication/lazy_group.cc" "src/replication/CMakeFiles/tdr_replication.dir/lazy_group.cc.o" "gcc" "src/replication/CMakeFiles/tdr_replication.dir/lazy_group.cc.o.d"
  "/root/repo/src/replication/lazy_master.cc" "src/replication/CMakeFiles/tdr_replication.dir/lazy_master.cc.o" "gcc" "src/replication/CMakeFiles/tdr_replication.dir/lazy_master.cc.o.d"
  "/root/repo/src/replication/ownership.cc" "src/replication/CMakeFiles/tdr_replication.dir/ownership.cc.o" "gcc" "src/replication/CMakeFiles/tdr_replication.dir/ownership.cc.o.d"
  "/root/repo/src/replication/quorum.cc" "src/replication/CMakeFiles/tdr_replication.dir/quorum.cc.o" "gcc" "src/replication/CMakeFiles/tdr_replication.dir/quorum.cc.o.d"
  "/root/repo/src/replication/repair.cc" "src/replication/CMakeFiles/tdr_replication.dir/repair.cc.o" "gcc" "src/replication/CMakeFiles/tdr_replication.dir/repair.cc.o.d"
  "/root/repo/src/replication/replica_applier.cc" "src/replication/CMakeFiles/tdr_replication.dir/replica_applier.cc.o" "gcc" "src/replication/CMakeFiles/tdr_replication.dir/replica_applier.cc.o.d"
  "/root/repo/src/replication/retry.cc" "src/replication/CMakeFiles/tdr_replication.dir/retry.cc.o" "gcc" "src/replication/CMakeFiles/tdr_replication.dir/retry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/tdr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tdr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/tdr_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tdr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tdr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tdr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
