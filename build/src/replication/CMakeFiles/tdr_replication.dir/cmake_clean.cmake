file(REMOVE_RECURSE
  "CMakeFiles/tdr_replication.dir/cluster.cc.o"
  "CMakeFiles/tdr_replication.dir/cluster.cc.o.d"
  "CMakeFiles/tdr_replication.dir/convergence.cc.o"
  "CMakeFiles/tdr_replication.dir/convergence.cc.o.d"
  "CMakeFiles/tdr_replication.dir/driver.cc.o"
  "CMakeFiles/tdr_replication.dir/driver.cc.o.d"
  "CMakeFiles/tdr_replication.dir/eager.cc.o"
  "CMakeFiles/tdr_replication.dir/eager.cc.o.d"
  "CMakeFiles/tdr_replication.dir/lazy_group.cc.o"
  "CMakeFiles/tdr_replication.dir/lazy_group.cc.o.d"
  "CMakeFiles/tdr_replication.dir/lazy_master.cc.o"
  "CMakeFiles/tdr_replication.dir/lazy_master.cc.o.d"
  "CMakeFiles/tdr_replication.dir/ownership.cc.o"
  "CMakeFiles/tdr_replication.dir/ownership.cc.o.d"
  "CMakeFiles/tdr_replication.dir/quorum.cc.o"
  "CMakeFiles/tdr_replication.dir/quorum.cc.o.d"
  "CMakeFiles/tdr_replication.dir/repair.cc.o"
  "CMakeFiles/tdr_replication.dir/repair.cc.o.d"
  "CMakeFiles/tdr_replication.dir/replica_applier.cc.o"
  "CMakeFiles/tdr_replication.dir/replica_applier.cc.o.d"
  "CMakeFiles/tdr_replication.dir/retry.cc.o"
  "CMakeFiles/tdr_replication.dir/retry.cc.o.d"
  "libtdr_replication.a"
  "libtdr_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdr_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
