# Empty dependencies file for tdr_replication.
# This may be replaced when dependencies are built.
