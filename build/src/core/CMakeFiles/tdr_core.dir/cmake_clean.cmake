file(REMOVE_RECURSE
  "CMakeFiles/tdr_core.dir/acceptance.cc.o"
  "CMakeFiles/tdr_core.dir/acceptance.cc.o.d"
  "CMakeFiles/tdr_core.dir/two_tier.cc.o"
  "CMakeFiles/tdr_core.dir/two_tier.cc.o.d"
  "libtdr_core.a"
  "libtdr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
