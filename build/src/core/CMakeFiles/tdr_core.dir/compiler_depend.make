# Empty compiler generated dependencies file for tdr_core.
# This may be replaced when dependencies are built.
