file(REMOVE_RECURSE
  "libtdr_core.a"
)
