file(REMOVE_RECURSE
  "libtdr_analytic.a"
)
