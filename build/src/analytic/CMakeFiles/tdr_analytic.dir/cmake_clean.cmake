file(REMOVE_RECURSE
  "CMakeFiles/tdr_analytic.dir/fit.cc.o"
  "CMakeFiles/tdr_analytic.dir/fit.cc.o.d"
  "CMakeFiles/tdr_analytic.dir/model.cc.o"
  "CMakeFiles/tdr_analytic.dir/model.cc.o.d"
  "libtdr_analytic.a"
  "libtdr_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdr_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
