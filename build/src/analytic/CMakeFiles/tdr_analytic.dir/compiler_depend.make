# Empty compiler generated dependencies file for tdr_analytic.
# This may be replaced when dependencies are built.
