file(REMOVE_RECURSE
  "CMakeFiles/tdr_txn.dir/executor.cc.o"
  "CMakeFiles/tdr_txn.dir/executor.cc.o.d"
  "CMakeFiles/tdr_txn.dir/lock_manager.cc.o"
  "CMakeFiles/tdr_txn.dir/lock_manager.cc.o.d"
  "CMakeFiles/tdr_txn.dir/op.cc.o"
  "CMakeFiles/tdr_txn.dir/op.cc.o.d"
  "CMakeFiles/tdr_txn.dir/program.cc.o"
  "CMakeFiles/tdr_txn.dir/program.cc.o.d"
  "CMakeFiles/tdr_txn.dir/replay_validator.cc.o"
  "CMakeFiles/tdr_txn.dir/replay_validator.cc.o.d"
  "CMakeFiles/tdr_txn.dir/trace.cc.o"
  "CMakeFiles/tdr_txn.dir/trace.cc.o.d"
  "CMakeFiles/tdr_txn.dir/wait_for_graph.cc.o"
  "CMakeFiles/tdr_txn.dir/wait_for_graph.cc.o.d"
  "libtdr_txn.a"
  "libtdr_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdr_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
