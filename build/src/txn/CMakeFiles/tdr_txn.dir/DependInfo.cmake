
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/executor.cc" "src/txn/CMakeFiles/tdr_txn.dir/executor.cc.o" "gcc" "src/txn/CMakeFiles/tdr_txn.dir/executor.cc.o.d"
  "/root/repo/src/txn/lock_manager.cc" "src/txn/CMakeFiles/tdr_txn.dir/lock_manager.cc.o" "gcc" "src/txn/CMakeFiles/tdr_txn.dir/lock_manager.cc.o.d"
  "/root/repo/src/txn/op.cc" "src/txn/CMakeFiles/tdr_txn.dir/op.cc.o" "gcc" "src/txn/CMakeFiles/tdr_txn.dir/op.cc.o.d"
  "/root/repo/src/txn/program.cc" "src/txn/CMakeFiles/tdr_txn.dir/program.cc.o" "gcc" "src/txn/CMakeFiles/tdr_txn.dir/program.cc.o.d"
  "/root/repo/src/txn/replay_validator.cc" "src/txn/CMakeFiles/tdr_txn.dir/replay_validator.cc.o" "gcc" "src/txn/CMakeFiles/tdr_txn.dir/replay_validator.cc.o.d"
  "/root/repo/src/txn/trace.cc" "src/txn/CMakeFiles/tdr_txn.dir/trace.cc.o" "gcc" "src/txn/CMakeFiles/tdr_txn.dir/trace.cc.o.d"
  "/root/repo/src/txn/wait_for_graph.cc" "src/txn/CMakeFiles/tdr_txn.dir/wait_for_graph.cc.o" "gcc" "src/txn/CMakeFiles/tdr_txn.dir/wait_for_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/tdr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tdr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tdr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
