file(REMOVE_RECURSE
  "libtdr_txn.a"
)
