# Empty compiler generated dependencies file for tdr_txn.
# This may be replaced when dependencies are built.
