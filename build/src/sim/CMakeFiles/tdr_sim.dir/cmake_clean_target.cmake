file(REMOVE_RECURSE
  "libtdr_sim.a"
)
