# Empty dependencies file for tdr_sim.
# This may be replaced when dependencies are built.
