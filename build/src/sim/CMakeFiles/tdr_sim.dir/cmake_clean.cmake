file(REMOVE_RECURSE
  "CMakeFiles/tdr_sim.dir/simulator.cc.o"
  "CMakeFiles/tdr_sim.dir/simulator.cc.o.d"
  "libtdr_sim.a"
  "libtdr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
