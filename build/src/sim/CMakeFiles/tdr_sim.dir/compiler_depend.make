# Empty compiler generated dependencies file for tdr_sim.
# This may be replaced when dependencies are built.
