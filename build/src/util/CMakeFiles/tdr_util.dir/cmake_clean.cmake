file(REMOVE_RECURSE
  "CMakeFiles/tdr_util.dir/logging.cc.o"
  "CMakeFiles/tdr_util.dir/logging.cc.o.d"
  "CMakeFiles/tdr_util.dir/rng.cc.o"
  "CMakeFiles/tdr_util.dir/rng.cc.o.d"
  "CMakeFiles/tdr_util.dir/stats.cc.o"
  "CMakeFiles/tdr_util.dir/stats.cc.o.d"
  "CMakeFiles/tdr_util.dir/status.cc.o"
  "CMakeFiles/tdr_util.dir/status.cc.o.d"
  "libtdr_util.a"
  "libtdr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
