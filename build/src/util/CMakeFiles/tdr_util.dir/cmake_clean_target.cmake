file(REMOVE_RECURSE
  "libtdr_util.a"
)
