# Empty compiler generated dependencies file for tdr_util.
# This may be replaced when dependencies are built.
