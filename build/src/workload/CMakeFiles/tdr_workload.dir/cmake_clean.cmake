file(REMOVE_RECURSE
  "CMakeFiles/tdr_workload.dir/scenarios.cc.o"
  "CMakeFiles/tdr_workload.dir/scenarios.cc.o.d"
  "CMakeFiles/tdr_workload.dir/workload.cc.o"
  "CMakeFiles/tdr_workload.dir/workload.cc.o.d"
  "libtdr_workload.a"
  "libtdr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
