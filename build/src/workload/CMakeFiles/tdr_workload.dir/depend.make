# Empty dependencies file for tdr_workload.
# This may be replaced when dependencies are built.
