file(REMOVE_RECURSE
  "libtdr_workload.a"
)
