# Empty dependencies file for two_tier_test.
# This may be replaced when dependencies are built.
