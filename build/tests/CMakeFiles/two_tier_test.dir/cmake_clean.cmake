file(REMOVE_RECURSE
  "CMakeFiles/two_tier_test.dir/two_tier_test.cc.o"
  "CMakeFiles/two_tier_test.dir/two_tier_test.cc.o.d"
  "two_tier_test"
  "two_tier_test.pdb"
  "two_tier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_tier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
