# Empty compiler generated dependencies file for gossip_property_test.
# This may be replaced when dependencies are built.
