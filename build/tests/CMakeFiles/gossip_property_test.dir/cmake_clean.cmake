file(REMOVE_RECURSE
  "CMakeFiles/gossip_property_test.dir/gossip_property_test.cc.o"
  "CMakeFiles/gossip_property_test.dir/gossip_property_test.cc.o.d"
  "gossip_property_test"
  "gossip_property_test.pdb"
  "gossip_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
