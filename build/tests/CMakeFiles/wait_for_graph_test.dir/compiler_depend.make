# Empty compiler generated dependencies file for wait_for_graph_test.
# This may be replaced when dependencies are built.
