file(REMOVE_RECURSE
  "CMakeFiles/executor_ablation_test.dir/executor_ablation_test.cc.o"
  "CMakeFiles/executor_ablation_test.dir/executor_ablation_test.cc.o.d"
  "executor_ablation_test"
  "executor_ablation_test.pdb"
  "executor_ablation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_ablation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
