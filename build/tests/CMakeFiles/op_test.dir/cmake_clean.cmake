file(REMOVE_RECURSE
  "CMakeFiles/op_test.dir/op_test.cc.o"
  "CMakeFiles/op_test.dir/op_test.cc.o.d"
  "op_test"
  "op_test.pdb"
  "op_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
