
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/property_test.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/property_test.dir/property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tdr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/replication/CMakeFiles/tdr_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/tdr_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tdr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tdr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/tdr_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tdr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tdr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tdr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
