# Empty compiler generated dependencies file for replica_applier_test.
# This may be replaced when dependencies are built.
