file(REMOVE_RECURSE
  "CMakeFiles/replica_applier_test.dir/replica_applier_test.cc.o"
  "CMakeFiles/replica_applier_test.dir/replica_applier_test.cc.o.d"
  "replica_applier_test"
  "replica_applier_test.pdb"
  "replica_applier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_applier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
