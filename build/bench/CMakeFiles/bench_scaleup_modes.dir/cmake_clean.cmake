file(REMOVE_RECURSE
  "CMakeFiles/bench_scaleup_modes.dir/bench_scaleup_modes.cc.o"
  "CMakeFiles/bench_scaleup_modes.dir/bench_scaleup_modes.cc.o.d"
  "bench_scaleup_modes"
  "bench_scaleup_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaleup_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
