# Empty compiler generated dependencies file for bench_scaleup_modes.
# This may be replaced when dependencies are built.
