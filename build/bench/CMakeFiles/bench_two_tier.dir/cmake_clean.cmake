file(REMOVE_RECURSE
  "CMakeFiles/bench_two_tier.dir/bench_two_tier.cc.o"
  "CMakeFiles/bench_two_tier.dir/bench_two_tier.cc.o.d"
  "bench_two_tier"
  "bench_two_tier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_two_tier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
