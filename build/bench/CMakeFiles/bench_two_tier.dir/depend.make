# Empty dependencies file for bench_two_tier.
# This may be replaced when dependencies are built.
