file(REMOVE_RECURSE
  "CMakeFiles/bench_lazy_group.dir/bench_lazy_group.cc.o"
  "CMakeFiles/bench_lazy_group.dir/bench_lazy_group.cc.o.d"
  "bench_lazy_group"
  "bench_lazy_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lazy_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
