# Empty dependencies file for bench_lazy_group.
# This may be replaced when dependencies are built.
