file(REMOVE_RECURSE
  "CMakeFiles/bench_scaled_db.dir/bench_scaled_db.cc.o"
  "CMakeFiles/bench_scaled_db.dir/bench_scaled_db.cc.o.d"
  "bench_scaled_db"
  "bench_scaled_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaled_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
