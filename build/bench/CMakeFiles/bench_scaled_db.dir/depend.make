# Empty dependencies file for bench_scaled_db.
# This may be replaced when dependencies are built.
