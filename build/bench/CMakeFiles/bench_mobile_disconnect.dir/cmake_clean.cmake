file(REMOVE_RECURSE
  "CMakeFiles/bench_mobile_disconnect.dir/bench_mobile_disconnect.cc.o"
  "CMakeFiles/bench_mobile_disconnect.dir/bench_mobile_disconnect.cc.o.d"
  "bench_mobile_disconnect"
  "bench_mobile_disconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mobile_disconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
