# Empty dependencies file for bench_mobile_disconnect.
# This may be replaced when dependencies are built.
