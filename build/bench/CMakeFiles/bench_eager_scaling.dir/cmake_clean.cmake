file(REMOVE_RECURSE
  "CMakeFiles/bench_eager_scaling.dir/bench_eager_scaling.cc.o"
  "CMakeFiles/bench_eager_scaling.dir/bench_eager_scaling.cc.o.d"
  "bench_eager_scaling"
  "bench_eager_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eager_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
