# Empty dependencies file for bench_eager_scaling.
# This may be replaced when dependencies are built.
