file(REMOVE_RECURSE
  "CMakeFiles/bench_work_growth.dir/bench_work_growth.cc.o"
  "CMakeFiles/bench_work_growth.dir/bench_work_growth.cc.o.d"
  "bench_work_growth"
  "bench_work_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_work_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
