# Empty compiler generated dependencies file for bench_lazy_master.
# This may be replaced when dependencies are built.
