file(REMOVE_RECURSE
  "CMakeFiles/bench_lazy_master.dir/bench_lazy_master.cc.o"
  "CMakeFiles/bench_lazy_master.dir/bench_lazy_master.cc.o.d"
  "bench_lazy_master"
  "bench_lazy_master.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lazy_master.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
