# Empty compiler generated dependencies file for bench_quorum.
# This may be replaced when dependencies are built.
