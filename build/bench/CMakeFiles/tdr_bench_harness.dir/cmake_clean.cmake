file(REMOVE_RECURSE
  "CMakeFiles/tdr_bench_harness.dir/harness.cc.o"
  "CMakeFiles/tdr_bench_harness.dir/harness.cc.o.d"
  "libtdr_bench_harness.a"
  "libtdr_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdr_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
