file(REMOVE_RECURSE
  "libtdr_bench_harness.a"
)
