# Empty compiler generated dependencies file for tdr_bench_harness.
# This may be replaced when dependencies are built.
