file(REMOVE_RECURSE
  "CMakeFiles/disconnected_day.dir/disconnected_day.cc.o"
  "CMakeFiles/disconnected_day.dir/disconnected_day.cc.o.d"
  "disconnected_day"
  "disconnected_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disconnected_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
