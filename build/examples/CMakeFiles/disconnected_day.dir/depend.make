# Empty dependencies file for disconnected_day.
# This may be replaced when dependencies are built.
