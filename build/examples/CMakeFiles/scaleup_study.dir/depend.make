# Empty dependencies file for scaleup_study.
# This may be replaced when dependencies are built.
