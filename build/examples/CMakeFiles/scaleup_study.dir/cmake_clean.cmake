file(REMOVE_RECURSE
  "CMakeFiles/scaleup_study.dir/scaleup_study.cc.o"
  "CMakeFiles/scaleup_study.dir/scaleup_study.cc.o.d"
  "scaleup_study"
  "scaleup_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaleup_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
