file(REMOVE_RECURSE
  "CMakeFiles/checkbook.dir/checkbook.cc.o"
  "CMakeFiles/checkbook.dir/checkbook.cc.o.d"
  "checkbook"
  "checkbook.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkbook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
