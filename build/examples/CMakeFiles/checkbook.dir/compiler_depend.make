# Empty compiler generated dependencies file for checkbook.
# This may be replaced when dependencies are built.
