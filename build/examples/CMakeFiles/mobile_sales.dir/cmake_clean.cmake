file(REMOVE_RECURSE
  "CMakeFiles/mobile_sales.dir/mobile_sales.cc.o"
  "CMakeFiles/mobile_sales.dir/mobile_sales.cc.o.d"
  "mobile_sales"
  "mobile_sales.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_sales.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
