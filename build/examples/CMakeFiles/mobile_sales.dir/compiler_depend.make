# Empty compiler generated dependencies file for mobile_sales.
# This may be replaced when dependencies are built.
