file(REMOVE_RECURSE
  "CMakeFiles/tdr_sim_cli.dir/tdr_sim.cc.o"
  "CMakeFiles/tdr_sim_cli.dir/tdr_sim.cc.o.d"
  "tdrsim"
  "tdrsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdr_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
