# Empty dependencies file for tdr_sim_cli.
# This may be replaced when dependencies are built.
