# Empty compiler generated dependencies file for protocol_traces.
# This may be replaced when dependencies are built.
