file(REMOVE_RECURSE
  "CMakeFiles/protocol_traces.dir/protocol_traces.cc.o"
  "CMakeFiles/protocol_traces.dir/protocol_traces.cc.o.d"
  "protocol_traces"
  "protocol_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
