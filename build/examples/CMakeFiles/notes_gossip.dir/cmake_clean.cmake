file(REMOVE_RECURSE
  "CMakeFiles/notes_gossip.dir/notes_gossip.cc.o"
  "CMakeFiles/notes_gossip.dir/notes_gossip.cc.o.d"
  "notes_gossip"
  "notes_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/notes_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
