# Empty dependencies file for notes_gossip.
# This may be replaced when dependencies are built.
