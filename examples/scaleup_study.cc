// Scaleup study: explore the paper's analytic model interactively.
//
//   ./scaleup_study [db_size] [tps_per_node] [actions] [action_time_ms]
//
// Prints the predicted wait / deadlock / reconciliation rates for every
// replication strategy across a node sweep — the numbers behind "a
// ten-fold increase in nodes gives a thousand-fold increase in deadlocks
// or reconciliations" — plus the mobile-disconnect forecast for your
// parameters.

#include <cstdio>
#include <cstdlib>

#include "analytic/model.h"

using namespace tdr::analytic;

int main(int argc, char** argv) {
  ModelParams p;
  p.db_size = argc > 1 ? std::atof(argv[1]) : 100000;
  p.tps = argc > 2 ? std::atof(argv[2]) : 10;
  p.actions = argc > 3 ? std::atof(argv[3]) : 5;
  p.action_time = argc > 4 ? std::atof(argv[4]) / 1000.0 : 0.01;

  std::printf("model parameters: %s\n\n", p.ToString().c_str());
  std::printf("Workload shape at one node (equations 1-5):\n");
  p.nodes = 1;
  std::printf("  concurrent transactions per node (Eq.1): %.3f\n",
              ConcurrentTransactions(p));
  std::printf("  P(transaction waits)            (Eq.2): %.6f\n",
              SingleNodeWaitProbability(p));
  std::printf("  P(transaction deadlocks)        (Eq.3): %.3g\n",
              SingleNodeDeadlockProbability(p));
  std::printf("  node deadlock rate              (Eq.5): %.3g /s\n\n",
              SingleNodeDeadlockRate(p));

  std::printf("Scaling forecast (rates per second; x = vs 1 node):\n");
  std::printf("%6s | %-24s | %-24s | %-24s\n", "",
              "eager deadlocks (Eq.12)", "lazy-group reconc. (Eq.14)",
              "lazy-master dl (Eq.19)");
  std::printf("%6s | %12s %9s | %12s %9s | %12s %9s\n", "nodes", "rate",
              "growth", "rate", "growth", "rate", "growth");
  std::printf("-------+--------------------------+---------------------"
              "-----+--------------------------\n");
  std::vector<double> sweep = {1, 2, 5, 10, 20, 50, 100};
  auto rows = SweepNodes(p, sweep);
  const ScalingRow& base = rows.front();
  for (const ScalingRow& row : rows) {
    std::printf("%6.0f | %12.4g %8.0fx | %12.4g %8.0fx | %12.4g %8.0fx\n",
                row.nodes, row.eager_deadlock_rate,
                row.eager_deadlock_rate / base.eager_deadlock_rate,
                row.lazy_group_reconciliation,
                row.lazy_group_reconciliation /
                    base.lazy_group_reconciliation,
                row.lazy_master_deadlock,
                row.lazy_master_deadlock / base.lazy_master_deadlock);
  }

  std::printf("\nIf the database instead scales with the nodes "
              "(Eq.13, TPC-style):\n");
  for (double n : {1.0, 10.0, 100.0}) {
    ModelParams q = p;
    q.nodes = n;
    std::printf("  %3.0f nodes: %.4g deadlocks/s (%.0fx)\n", n,
                EagerDeadlockRateScaledDb(q),
                EagerDeadlockRateScaledDb(q) /
                    EagerDeadlockRateScaledDb(p));
  }

  std::printf("\nMobile scenario (Eqs. 15-18), nodes=10, nightly sync "
              "(Disconnect_Time = 24h):\n");
  ModelParams m = p;
  m.nodes = 10;
  m.disconnected_time = 24 * 3600;
  std::printf("  outbound updates pending at reconnect (Eq.15): %.0f\n",
              MobileOutboundUpdates(m));
  std::printf("  inbound updates pending              (Eq.16): %.0f\n",
              MobileInboundUpdates(m));
  std::printf("  expected collisions per node-cycle   (Eq.17): %.3g\n",
              MobileCollisionProbability(m));
  std::printf("  reconciliation rate                  (Eq.18): %.3g /s "
              "(%.0f per day)\n",
              MobileReconciliationRate(m),
              MobileReconciliationRate(m) * 86400);
  std::printf("\nTwo-tier forecast: base deadlock rate follows Eq.19; "
              "reconciliation\nrate is the acceptance-failure rate — zero "
              "if your transactions commute.\n");
  return 0;
}
