// Notes-style gossip: the §6 convergence systems, hands on.
//
// Three disconnected offices keep replicas of a shared discussion
// database (Lotus Notes style). They work independently, then gossip
// pairwise. The demo walks through:
//   1. timestamped APPEND — everything converges, nothing is lost;
//   2. timestamped REPLACE — converges, but concurrent edits lose
//      updates (the §6 lost-update problem);
//   3. version vectors — the same race, but DETECTED and resolved by an
//      Oracle-7-style rule chosen from the twelve-rule catalogue;
//   4. commutative deltas — the §6 trick that needs no rules at all.

#include <cstdio>

#include "replication/convergence.h"

using namespace tdr;

namespace {

void Banner(const char* title) { std::printf("\n==== %s ====\n", title); }

constexpr ObjectId kThread = 0;   // discussion thread (append list)
constexpr ObjectId kTitle = 1;    // document title (replace)
constexpr ObjectId kBudget = 2;   // running total (deltas)

}  // namespace

int main() {
  Banner("1. timestamped append (the Notes discussion thread)");
  {
    GossipCluster offices(3, 4);
    // Note ids encode office and sequence; appends happen concurrently.
    offices.replica(0).LocalAppend(kThread, 101);
    offices.replica(1).LocalAppend(kThread, 201);
    offices.replica(2).LocalAppend(kThread, 301);
    offices.replica(0).LocalAppend(kThread, 102);
    std::uint64_t shipped = offices.ConvergeOps();
    std::printf("gossiped %llu ops; every office sees the thread as %s\n",
                (unsigned long long)shipped,
                offices.replica(2)
                    .store()
                    .GetUnchecked(kThread)
                    .value.ToString()
                    .c_str());
    std::printf("converged=%s, all four notes survive, in timestamp "
                "order.\n",
                offices.Converged() ? "yes" : "NO");
  }

  Banner("2. timestamped replace (last writer wins, updates lost)");
  {
    GossipCluster offices(3, 4);
    offices.replica(0).LocalReplace(kTitle, Value(111));  // "draft-A"
    offices.replica(1).LocalReplace(kTitle, Value(222));  // "draft-B"
    std::uint64_t conflicts = offices.ConvergeState(TimePriorityRule());
    std::printf("conflicts=%llu; surviving title: %lld — the other edit "
                "is just GONE.\n",
                (unsigned long long)conflicts,
                (long long)offices.replica(0)
                    .store()
                    .GetUnchecked(kTitle)
                    .value.AsScalar());
  }

  Banner("3. version vectors + the Oracle rule catalogue");
  {
    std::printf("the twelve rules: ");
    for (const std::string& name : RuleCatalogue()) {
      std::printf("%s ", name.c_str());
    }
    std::printf("\n");
    GossipCluster offices(2, 4);
    offices.replica(0).LocalReplaceAdd(kBudget, 70);
    offices.replica(1).LocalReplaceAdd(kBudget, 30);
    // Version vectors detect the race; the 'additive' rule folds both
    // branches instead of dropping one.
    std::uint64_t conflicts =
        offices.ConvergeState(RuleByName("additive"));
    std::printf("conflicts detected=%llu; additive merge keeps both "
                "branches: budget = %lld\n",
                (unsigned long long)conflicts,
                (long long)offices.replica(0)
                    .store()
                    .GetUnchecked(kBudget)
                    .value.AsScalar());
  }

  Banner("4. commutative deltas (no rules needed)");
  {
    GossipCluster offices(3, 4);
    offices.replica(0).LocalDelta(kBudget, 70);
    offices.replica(1).LocalDelta(kBudget, 30);
    offices.replica(2).LocalDelta(kBudget, -25);
    offices.ConvergeOps();
    std::printf("budget everywhere: %lld (= 70 + 30 - 25), zero "
                "conflicts by construction.\n",
                (long long)offices.replica(1)
                    .store()
                    .GetUnchecked(kBudget)
                    .value.AsScalar());
    std::printf(
        "\n§6's ladder, climbed: convergence is easy; convergence that\n"
        "keeps every update takes commutative operations — which is the\n"
        "design rule the two-tier scheme asks of its transactions.\n");
  }
  return 0;
}
