// Quickstart: the two-tier replication scheme in ~60 lines of user code.
//
// A laptop (mobile node) edits an account while offline; on reconnect
// its tentative transaction is re-executed at the base tier as a real,
// serializable transaction and either accepted or rejected.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/two_tier.h"

using namespace tdr;

int main() {
  // 2 always-connected base nodes + 1 mostly-disconnected mobile node,
  // replicating a 16-object database. Object ids are dense integers.
  TwoTierSystem::Options options;
  options.num_base = 2;
  options.num_mobile = 1;
  options.db_size = 16;
  TwoTierSystem sys(options);
  const NodeId kLaptop = 2;   // first mobile id = num_base
  const ObjectId kAccount = 0;

  // Seed the account with $500 via an ordinary base transaction
  // (connected operation = plain lazy-master replication).
  sys.SubmitBase(0, Program({Op::Write(kAccount, 500)}), nullptr);
  sys.sim().Run();

  // The laptop is offline but keeps working: withdraw $200, tentatively.
  // Acceptance criterion: the balance must never go negative.
  Status submitted = sys.SubmitTentative(
      kLaptop, Program({Op::Subtract(kAccount, 200)}),
      ScalarAtLeast(kAccount, 0),
      /*on_tentative=*/
      [](const TxnResult& r) {
        std::printf("[laptop ] tentative commit at t=%s\n",
                    r.end_time.ToString().c_str());
      },
      /*on_final=*/
      [](const FinalOutcome& o) {
        std::printf("[bank   ] base transaction %s%s%s\n",
                    o.accepted ? "ACCEPTED" : "REJECTED",
                    o.accepted ? "" : ": ", o.reason.c_str());
      });
  if (!submitted.ok()) {
    std::printf("submit failed: %s\n", submitted.ToString().c_str());
    return 1;
  }
  sys.sim().Run();

  // Offline, the laptop already sees its own tentative value...
  std::printf("[laptop ] local (tentative) balance: $%lld\n",
              (long long)sys.mobile(kLaptop)
                  .Read(kAccount)
                  .value()
                  .value.AsScalar());
  // ...but the bank's master copy is untouched. The laptop never saw the
  // deposit either — its replica is stale, which is fine.
  std::printf("[bank   ] master balance while laptop offline: $%lld\n",
              (long long)sys.cluster()
                  .node(0)
                  ->store()
                  .GetUnchecked(kAccount)
                  .value.AsScalar());

  // Reconnect: replica refresh + reprocessing happen automatically.
  sys.Connect(kLaptop);
  sys.sim().Run();

  std::printf("[bank   ] master balance after reconnect: $%lld\n",
              (long long)sys.cluster()
                  .node(0)
                  ->store()
                  .GetUnchecked(kAccount)
                  .value.AsScalar());
  std::printf("[laptop ] refreshed balance: $%lld (tentative versions: "
              "%zu)\n",
              (long long)sys.mobile(kLaptop)
                  .Read(kAccount)
                  .value()
                  .value.AsScalar(),
              sys.mobile(kLaptop).PendingCount());
  std::printf("base tier converged: %s\n",
              sys.BaseTierConverged() ? "yes" : "no");
  return 0;
}
