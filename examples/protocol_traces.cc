// Protocol traces: the paper's figures, regenerated as actual
// executions of this library with the trace facility attached.
//
//   Figure 1 — a single-node transaction vs. a three-node EAGER
//              transaction vs. a three-node LAZY transaction (which is
//              really three transactions);
//   Figure 4 — a lazy transaction whose replica update arrives with a
//              mismatched old timestamp and triggers reconciliation;
//   Figure 5/6 flavour — a tentative transaction becoming a base
//              transaction on reconnect (traced through the executor).

#include <cstdio>

#include "core/two_tier.h"
#include "replication/eager.h"
#include "replication/lazy_group.h"
#include "txn/trace.h"

using namespace tdr;

namespace {

void Banner(const char* title) {
  std::printf("\n==== %s ====\n", title);
}

Cluster::Options ThreeNodes() {
  Cluster::Options o;
  o.num_nodes = 3;
  o.db_size = 8;
  o.action_time = SimTime::Millis(10);
  return o;
}

void Figure1SingleNode() {
  Banner("Figure 1 (left): single-node transaction");
  Cluster::Options o = ThreeNodes();
  o.num_nodes = 1;
  Cluster cluster(o);
  VectorTraceSink sink;
  cluster.executor().set_trace_sink(&sink);
  EagerGroupScheme scheme(&cluster);
  scheme.Submit(0, Program({Op::Write(0, 1), Op::Write(1, 2),
                            Op::Write(2, 3)}),
                nullptr);
  cluster.sim().Run();
  std::printf("%s", sink.ToString().c_str());
}

void Figure1Eager() {
  Banner("Figure 1 (middle): three-node EAGER transaction — one "
         "transaction, 3x the work");
  Cluster cluster(ThreeNodes());
  VectorTraceSink sink;
  cluster.executor().set_trace_sink(&sink);
  EagerGroupScheme scheme(&cluster);
  scheme.Submit(0, Program({Op::Write(0, 1), Op::Write(1, 2),
                            Op::Write(2, 3)}),
                nullptr);
  cluster.sim().Run();
  std::printf("%s", sink.ToString().c_str());
}

void Figure1Lazy() {
  Banner("Figure 1 (right): three-node LAZY transaction — actually 3 "
         "transactions");
  Cluster cluster(ThreeNodes());
  VectorTraceSink sink;
  cluster.executor().set_trace_sink(&sink);
  LazyGroupScheme scheme(&cluster);
  scheme.set_trace_sink(&sink);
  scheme.Submit(0, Program({Op::Write(0, 1), Op::Write(1, 2),
                            Op::Write(2, 3)}),
                nullptr);
  cluster.sim().Run();
  std::printf("%s", sink.ToString().c_str());
}

void Figure4Reconciliation() {
  Banner("Figure 4: lazy replica update carries (OID, old ts, new value); "
         "a mismatch means reconciliation");
  Cluster cluster(ThreeNodes());
  VectorTraceSink sink;
  cluster.executor().set_trace_sink(&sink);
  LazyGroupScheme scheme(&cluster);
  scheme.set_trace_sink(&sink);
  // Two racing root transactions on object 0 at different nodes: each
  // commits locally, each ships a replica update stamped with the old
  // timestamp it saw — and each finds the other's commit in the way.
  scheme.Submit(0, Program({Op::Write(0, 100)}), nullptr);
  scheme.Submit(1, Program({Op::Write(0, 200)}), nullptr);
  cluster.sim().Run();
  std::printf("%s", sink.ToString().c_str());
  std::printf("-> reconciliations detected: %llu (the books now "
              "disagree)\n",
              (unsigned long long)scheme.reconciliations());
}

void Figure5TwoTier() {
  Banner("Figure 5/6: tentative transaction reprocessed as a base "
         "transaction at reconnect");
  TwoTierSystem::Options topts;
  topts.num_base = 2;
  topts.num_mobile = 1;
  topts.db_size = 8;
  topts.action_time = SimTime::Millis(10);
  TwoTierSystem sys(topts);
  VectorTraceSink sink;
  sys.cluster().executor().set_trace_sink(&sink);
  sys.lazy_master().set_trace_sink(&sink);
  sys.SubmitTentative(2, Program({Op::Subtract(0, 50)}),
                      ScalarAtLeast(0, -1000), nullptr, nullptr);
  sys.sim().Run();
  std::printf("(mobile node 2 executed the tentative transaction locally; "
              "nothing below ran yet)\n");
  sys.Connect(2);
  sys.sim().Run();
  std::printf("%s", sink.ToString().c_str());
  std::printf("-> base state after reprocessing: %lld at base node 0\n",
              (long long)sys.cluster()
                  .node(0)
                  ->store()
                  .GetUnchecked(0)
                  .value.AsScalar());
}

}  // namespace

int main() {
  Figure1SingleNode();
  Figure1Eager();
  Figure1Lazy();
  Figure4Reconciliation();
  Figure5TwoTier();
  return 0;
}
