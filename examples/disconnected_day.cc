// A day in the life of a two-tier sales fleet — the full §7 machinery
// on one timeline.
//
// Cast: 2 base servers at headquarters; 3 salespeople with laptops.
// The database: a shared order counter, per-salesperson quota objects
// (MASTERED AT THE LAPTOPS — §7's mobile-mastered data), product stock,
// and an order log.
//
// The day: laptops sync at 9:00, go offline, work all day (tentative
// orders against stock, LOCAL quota bookkeeping), and reconnect in the
// evening. Headquarters trades all day too. We watch availability,
// rejections, and convergence through the whole cycle.

#include <cstdio>

#include "core/two_tier.h"

using namespace tdr;

namespace {

constexpr ObjectId kStock = 0;     // product stock, base-mastered
constexpr ObjectId kOrderLog = 1;  // append-only order log, base-mastered
// Objects 2..4 become the laptops' quota counters (mobile-mastered).

const char* kNames[] = {"ana", "bo", "cy"};

SimTime Hour(double h) { return SimTime::Seconds(h * 3600); }

}  // namespace

int main() {
  TwoTierSystem::Options options;
  options.num_base = 2;
  options.num_mobile = 3;
  options.db_size = 8;
  options.action_time = SimTime::Millis(5);
  TwoTierSystem sys(options);
  auto& sim = sys.sim();

  // Quota objects are mastered at the laptops.
  for (std::uint32_t m = 0; m < 3; ++m) {
    sys.SetMobileMaster(2 + m, 2 + m);
  }
  // 08:00 — headquarters stocks the shelves: 10 units.
  sim.ScheduleAt(Hour(8), [&] {
    sys.SubmitBase(0, Program({Op::Write(kStock, 10)}), nullptr);
    std::printf("08:00  HQ stocks 10 units\n");
  });
  // 09:00 — everyone syncs in the office, then hits the road.
  sim.ScheduleAt(Hour(9), [&] {
    for (NodeId m = 2; m < 5; ++m) sys.Connect(m);
    std::printf("09:00  laptops sync (stock=10 everywhere)\n");
  });
  sim.ScheduleAt(Hour(9.5), [&] {
    for (NodeId m = 2; m < 5; ++m) sys.Disconnect(m);
    std::printf("09:30  laptops offline for the day\n");
  });

  // During the day: each salesperson books 4 units tentatively (12
  // total against 10 in stock — somebody's deal will bounce), logs the
  // order, and tracks quota via LOCAL transactions (their own master
  // data: durable immediately, even offline).
  int rejected = 0, accepted = 0;
  for (std::uint32_t m = 0; m < 3; ++m) {
    NodeId laptop = 2 + m;
    const char* name = kNames[m];
    sim.ScheduleAt(Hour(11 + m), [&, laptop, name] {
      std::printf("%02d:00  %s books 4 units (tentative) + quota "
                  "(local)\n",
                  11 + static_cast<int>(laptop) - 2, name);
      sys.SubmitTentative(
          laptop,
          Program({Op::Subtract(kStock, 4),
                   Op::Append(kOrderLog, 1000 + laptop)}),
          ScalarAtLeast(kStock, 0), nullptr,
          [&, name](const FinalOutcome& o) {
            (o.accepted ? accepted : rejected) += 1;
            std::printf("        [evening clearing] %s's order %s%s%s\n",
                        name, o.accepted ? "CLEARED" : "BOUNCED",
                        o.accepted ? "" : ": ", o.reason.c_str());
          });
      sys.SubmitLocal(laptop, Program({Op::Add(laptop, 4)}), nullptr);
    });
  }

  // 14:00 — a walk-in customer at HQ buys 1 unit (base transaction,
  // connected operation keeps working all day).
  sim.ScheduleAt(Hour(14), [&] {
    sys.SubmitBase(1, Program({Op::Subtract(kStock, 1),
                               Op::Append(kOrderLog, 999)}),
                   [](const TxnResult& r) {
                     std::printf("14:00  HQ walk-in sale: %s\n",
                                 std::string(TxnOutcomeToString(r.outcome))
                                     .c_str());
                   });
  });

  // 18:00-18:30 — the fleet reconnects one by one; tentative orders are
  // reprocessed in commit order, quota updates stream in as slave
  // refreshes.
  for (std::uint32_t m = 0; m < 3; ++m) {
    sim.ScheduleAt(Hour(18 + 0.25 * m), [&, m] {
      std::printf("%02d:%02d  %s reconnects\n", 18,
                  static_cast<int>(15 * m), kNames[m]);
      sys.Connect(2 + m);
    });
  }

  sim.Run();

  const ObjectStore& hq = sys.cluster().node(0)->store();
  std::printf("\n===== end of day =====\n");
  std::printf("orders accepted/rejected: %d/%d\n", accepted, rejected);
  std::printf("stock remaining at HQ: %lld\n",
              (long long)hq.GetUnchecked(kStock).value.AsScalar());
  std::printf("order log: %s\n",
              hq.GetUnchecked(kOrderLog).value.ToString().c_str());
  for (std::uint32_t m = 0; m < 3; ++m) {
    std::printf("%s's quota (mastered on the laptop, visible at HQ): "
                "%lld\n",
                kNames[m],
                (long long)hq.GetUnchecked(2 + m).value.AsScalar());
  }
  std::printf("base tier converged: %s — the books balance, the bounced "
              "deal is a phone call, not a database repair.\n",
              sys.BaseTierConverged() ? "yes" : "NO");
  return 0;
}
