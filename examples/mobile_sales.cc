// Mobile sales force: the §7 acceptance-criteria examples end to end.
//
// A traveling salesman's laptop holds a replica of the product catalog
// and order book. Disconnected, he:
//   * quotes prices   — acceptance: "the price quote can not exceed the
//                       tentative quote";
//   * reserves stock  — acceptance: "the item must not go out of stock"
//                       (inventory must stay >= 0);
//   * logs orders     — commutative appends, always acceptable.
//
// Headquarters changes prices and inventory while he is away; the base
// re-execution of his tentative transactions reveals which deals hold.

#include <cstdio>
#include <string>

#include "core/two_tier.h"

using namespace tdr;

namespace {

// Catalog layout.
constexpr ObjectId kWidgetPrice = 0;
constexpr ObjectId kWidgetStock = 1;
constexpr ObjectId kOrderLog = 2;

void Report(const char* what, const FinalOutcome& o) {
  std::printf("  %-28s %s%s%s\n", what,
              o.accepted ? "ACCEPTED" : "REJECTED",
              o.accepted ? "" : " — ", o.accepted ? "" : o.reason.c_str());
}

}  // namespace

int main() {
  TwoTierSystem::Options options;
  options.num_base = 2;   // HQ database servers
  options.num_mobile = 1; // the salesman's laptop
  options.db_size = 8;
  TwoTierSystem sys(options);
  const NodeId kLaptop = 2;

  // HQ sets up the catalog: widgets cost $90, 3 in stock.
  sys.SubmitBase(0, Program({Op::Write(kWidgetPrice, 90),
                             Op::Write(kWidgetStock, 3)}),
                 nullptr);
  sys.sim().Run();

  // The laptop syncs once in the office, then hits the road.
  sys.Connect(kLaptop);
  sys.sim().Run();
  sys.Disconnect(kLaptop);
  std::printf("laptop synced: price=$%lld stock=%lld, now offline\n",
              (long long)sys.mobile(kLaptop)
                  .Read(kWidgetPrice)
                  .value()
                  .value.AsScalar(),
              (long long)sys.mobile(kLaptop)
                  .Read(kWidgetStock)
                  .value()
                  .value.AsScalar());

  // On the road: quote a price (touch the price so base/tentative final
  // values are comparable), reserve 2 widgets, log the order (append
  // commutes with everything, so it can never be rejected).
  sys.SubmitTentative(kLaptop, Program({Op::Add(kWidgetPrice, 0)}),
                      NoWorseThanTentative(kWidgetPrice), nullptr,
                      [](const FinalOutcome& o) {
                        Report("price quote ($90):", o);
                      });
  sys.SubmitTentative(kLaptop, Program({Op::Subtract(kWidgetStock, 2)}),
                      ScalarAtLeast(kWidgetStock, 0), nullptr,
                      [](const FinalOutcome& o) {
                        Report("reserve 2 widgets:", o);
                      });
  sys.SubmitTentative(kLaptop, Program({Op::Append(kOrderLog, 7001)}),
                      AcceptAlways(), nullptr,
                      [](const FinalOutcome& o) {
                        Report("log order #7001:", o);
                      });
  sys.sim().Run();

  // Meanwhile HQ raises the price and another salesman drains stock.
  sys.SubmitBase(0, Program({Op::Write(kWidgetPrice, 120)}), nullptr);
  sys.SubmitBase(1, Program({Op::Subtract(kWidgetStock, 2)}), nullptr);
  sys.sim().Run();
  std::printf("meanwhile at HQ: price -> $120, stock -> 1\n");

  std::printf("salesman reconnects; the bank-style clearing run says:\n");
  sys.Connect(kLaptop);
  sys.sim().Run();

  const ObjectStore& hq = sys.cluster().node(0)->store();
  std::printf(
      "final HQ state: price=$%lld stock=%lld orders=%s, base tier "
      "converged=%s\n",
      (long long)hq.GetUnchecked(kWidgetPrice).value.AsScalar(),
      (long long)hq.GetUnchecked(kWidgetStock).value.AsScalar(),
      hq.GetUnchecked(kOrderLog).value.ToString().c_str(),
      sys.BaseTierConverged() ? "yes" : "no");
  std::printf(
      "\nthe price quote bounced (price rose), the reservation bounced\n"
      "(stock ran out), the commutative order-log append sailed through —\n"
      "and nobody had to reconcile a corrupted database.\n");
  return 0;
}
