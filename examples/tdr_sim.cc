// tdr_sim — command-line driver for the replication simulator.
//
//   tdr_sim [scheme] [nodes] [db_size] [tps] [actions] [action_ms]
//           [seconds] [seed]
//
//   scheme: eager-group | eager-group-parallel | eager-group-readlocks |
//           eager-master | lazy-group | lazy-master   (default lazy-group)
//
// Runs the Table-2 workload model under the chosen strategy and prints
// measured rates next to the paper's closed-form predictions — the same
// engine the bench/ binaries use, exposed for ad-hoc exploration.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/harness.h"
#include "util/logging.h"

using namespace tdr;
using namespace tdr::bench;

namespace {

SchemeKind ParseScheme(const char* name) {
  if (std::strcmp(name, "eager-group") == 0) return SchemeKind::kEagerGroup;
  if (std::strcmp(name, "eager-group-parallel") == 0) {
    return SchemeKind::kEagerGroupParallel;
  }
  if (std::strcmp(name, "eager-group-readlocks") == 0) {
    return SchemeKind::kEagerGroupReadLocks;
  }
  if (std::strcmp(name, "eager-master") == 0) {
    return SchemeKind::kEagerMaster;
  }
  if (std::strcmp(name, "lazy-group") == 0) return SchemeKind::kLazyGroup;
  if (std::strcmp(name, "lazy-master") == 0) return SchemeKind::kLazyMaster;
  std::fprintf(stderr, "unknown scheme '%s'\n", name);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  SimConfig config;
  config.kind = argc > 1 ? ParseScheme(argv[1]) : SchemeKind::kLazyGroup;
  config.nodes = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2]))
                          : 3;
  config.db_size =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 2000;
  config.tps = argc > 4 ? std::atof(argv[4]) : 10;
  config.actions =
      argc > 5 ? static_cast<std::uint32_t>(std::atoi(argv[5])) : 4;
  config.action_time = argc > 6 ? std::atof(argv[6]) / 1000.0 : 0.01;
  config.sim_seconds = argc > 7 ? std::atof(argv[7]) : 300;
  config.seed = argc > 8 ? static_cast<std::uint64_t>(std::atoll(argv[8]))
                         : 42;

  std::printf("scheme=%s nodes=%u db=%llu tps=%.3g/node actions=%u "
              "action=%.3gms window=%.0fs seed=%llu\n\n",
              std::string(SchemeKindName(config.kind)).c_str(),
              config.nodes, (unsigned long long)config.db_size, config.tps,
              config.actions, config.action_time * 1000,
              config.sim_seconds, (unsigned long long)config.seed);

  SimOutcome out = RunScheme(config);
  analytic::ModelParams p = ToModelParams(config);

  std::printf("%-28s %12s %12s\n", "", "measured", "model");
  std::printf("%-28s %12llu %12s\n", "transactions submitted",
              (unsigned long long)out.submitted,
              StrPrintf("%.0f", config.tps * config.nodes *
                                    config.sim_seconds)
                  .c_str());
  std::printf("%-28s %12llu\n", "transactions committed",
              (unsigned long long)out.committed);
  std::printf("%-28s %12.4f %12.4f\n", "wait rate (/s)", out.wait_rate(),
              analytic::EagerWaitRate(p));
  bool lazy_group = config.kind == SchemeKind::kLazyGroup;
  std::printf("%-28s %12.5f %12.5f\n", "deadlock rate (/s)",
              out.deadlock_rate(),
              config.kind == SchemeKind::kLazyMaster
                  ? analytic::LazyMasterDeadlockRate(p)
                  : (lazy_group ? 0.0 : analytic::EagerDeadlockRate(p)));
  std::printf("%-28s %12.4f %12.4f\n", "reconciliation rate (/s)",
              out.reconciliation_rate(),
              lazy_group ? analytic::LazyGroupReconciliationRate(p) : 0.0);
  std::printf("%-28s %12llu\n", "unavailable",
              (unsigned long long)out.unavailable);
  std::printf("%-28s %12llu\n", "divergent replica slots",
              (unsigned long long)out.divergent_slots);
  std::printf("\nModel references: waits Eq.(10); deadlocks Eq.(12)/(19); "
              "reconciliation Eq.(14).\n");
  return 0;
}
