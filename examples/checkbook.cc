// The paper's running example, executed under three replication designs.
//
// "Consider a joint checking account you share with your spouse. Suppose
// it has $1,000 in it. This account is replicated in three places: your
// checkbook, your spouse's checkbook, and the bank's ledger."
//
// Both spouses write checks totaling $1,000 each while out of contact.
//  * EAGER replication simply refuses while anyone is disconnected.
//  * LAZY GROUP lets both commit, then discovers the conflict during
//    replica exchange: reconciliation, diverged books.
//  * TWO-TIER treats the checks as tentative transactions; the bank
//    (master) clears what fits and bounces the rest. The ledger never
//    lies.

#include <cstdio>

#include "core/two_tier.h"
#include "replication/eager.h"
#include "replication/lazy_group.h"
#include "replication/repair.h"

using namespace tdr;

namespace {

constexpr ObjectId kAccount = 0;

void RunEager() {
  std::printf("--- eager replication -------------------------------\n");
  Cluster::Options copts;
  copts.num_nodes = 3;  // bank, you, spouse
  copts.db_size = 4;
  Cluster cluster(copts);
  EagerGroupScheme scheme(&cluster);
  scheme.Submit(0, Program({Op::Write(kAccount, 1000)}), nullptr);
  cluster.sim().Run();

  cluster.net().SetConnected(2, false);  // spouse takes the checkbook out
  scheme.Submit(1, Program({Op::Subtract(kAccount, 1000)}),
                [](const TxnResult& r) {
                  std::printf("your $1000 check: %s\n",
                              std::string(TxnOutcomeToString(r.outcome))
                                  .c_str());
                });
  cluster.sim().Run();
  std::printf("eager can't update while a replica is away — safe but "
              "useless on the road.\n\n");
}

void RunLazyGroup() {
  std::printf("--- lazy group replication --------------------------\n");
  Cluster::Options copts;
  copts.num_nodes = 3;
  copts.db_size = 4;
  Cluster cluster(copts);
  LazyGroupScheme scheme(&cluster);
  scheme.Submit(0, Program({Op::Write(kAccount, 1000)}), nullptr);
  cluster.sim().Run();

  // Both spouses disconnect and each writes checks for the full $1000.
  cluster.net().SetConnected(1, false);
  cluster.net().SetConnected(2, false);
  // You spend it all; your spouse spends $950 of it.
  scheme.Submit(1, Program({Op::Write(kAccount, 0)}), nullptr);
  scheme.Submit(2, Program({Op::Write(kAccount, 50)}), nullptr);
  cluster.sim().Run();
  std::printf("while disconnected, both books committed ~$1000 of checks "
              "against the same $1000.\n");

  cluster.net().SetConnected(1, true);
  cluster.net().SetConnected(2, true);
  cluster.sim().Run();
  std::printf("after exchange: reconciliations needed = %llu, books "
              "agree = %s\n",
              (unsigned long long)scheme.reconciliations(),
              cluster.Converged() ? "yes" : "NO");
  std::printf("lazy group committed both, then punted the mess to a "
              "human.\n");
  // The "human" (a DBA with a rulebook): repair the delusion by
  // installing one winner everywhere. The bank's version wins.
  DivergenceRepair repair(&cluster);
  auto report = repair.Execute(SitePriorityRule());
  std::printf("manual reconciliation: %llu object(s) repaired, books now "
              "agree = %s — but one spouse's checks silently vanished.\n\n",
              (unsigned long long)report.objects_diverged,
              cluster.Converged() ? "yes" : "NO");
}

void RunTwoTier() {
  std::printf("--- two-tier replication ----------------------------\n");
  TwoTierSystem::Options topts;
  topts.num_base = 1;   // the bank
  topts.num_mobile = 2; // two checkbooks
  topts.db_size = 4;
  TwoTierSystem sys(topts);
  const NodeId kYou = 1, kSpouse = 2;
  sys.SubmitBase(0, Program({Op::Write(kAccount, 1000)}), nullptr);
  sys.sim().Run();

  auto check = [&](NodeId who, const char* name, std::int64_t amount) {
    sys.SubmitTentative(
        who, Program({Op::Subtract(kAccount, amount)}),
        ScalarAtLeast(kAccount, 0), nullptr,
        [name, amount](const FinalOutcome& o) {
          std::printf("%s's $%lld check: %s%s%s\n", name,
                      (long long)amount,
                      o.accepted ? "CLEARED" : "BOUNCED", o.accepted ? ""
                                                                     : " (",
                      o.accepted ? "" : (o.reason + ")").c_str());
        });
  };
  check(kYou, "you", 600);
  check(kYou, "you", 400);
  check(kSpouse, "spouse", 700);
  check(kSpouse, "spouse", 300);
  sys.sim().Run();
  std::printf("four tentative checks written offline, $2000 total against "
              "$1000.\n");

  sys.Connect(kYou);
  sys.sim().Run();
  sys.Connect(kSpouse);
  sys.sim().Run();
  std::printf("bank's final balance: $%lld (never negative, never "
              "deluded)\n",
              (long long)sys.cluster()
                  .node(0)
                  ->store()
                  .GetUnchecked(kAccount)
                  .value.AsScalar());
}

}  // namespace

int main() {
  RunEager();
  RunLazyGroup();
  RunTwoTier();
  return 0;
}
