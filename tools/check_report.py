#!/usr/bin/env python3
"""Schema checker for tdr observability artifacts.

Validates two document families:

  * run reports (schema "tdr.run_report.v1") written by RunReport — the
    machine-readable output of every bench and chaos run;
  * Chrome trace-event JSON written by ChromeTraceWriter (--trace),
    checked against the Perfetto loading contract: metadata first,
    required keys, monotone per-track timestamps, complete X slices,
    balanced flow start/finish pairs.

Usage:
  check_report.py report.json [more_reports.json ...] [--trace t.json ...]

Exits nonzero with a per-file diagnostic on the first violation; prints
one OK line per valid file. No third-party dependencies.
"""

import json
import sys

REPORT_SCHEMA = "tdr.run_report.v1"
SECTION_ORDER = [
    "schema", "experiment", "config", "rows",
    "metrics", "series", "invariants", "profile",
]
METRIC_KINDS = {"counter", "gauge", "histogram", "stats", "profile"}
REQUIRED_BY_KIND = {
    "counter": {"value"},
    "gauge": {"value"},
    "histogram": {"count", "mean", "min", "max", "p50", "p95", "p99"},
    "stats": {"count", "mean", "stddev", "min", "max"},
    "profile": {"count", "mean", "stddev", "min", "max"},
}


class Bad(Exception):
    pass


def expect(cond, msg):
    if not cond:
        raise Bad(msg)


def check_metrics_section(metrics, where):
    expect(isinstance(metrics, dict), f"{where}: must be an object")
    names = list(metrics)
    expect(names == sorted(names), f"{where}: metric names not sorted")
    for name, value in metrics.items():
        expect(isinstance(value, dict), f"{where}.{name}: must be an object")
        kind = value.get("kind")
        expect(kind in METRIC_KINDS, f"{where}.{name}: bad kind {kind!r}")
        missing = REQUIRED_BY_KIND[kind] - value.keys()
        expect(not missing, f"{where}.{name}: missing {sorted(missing)}")


def check_series_section(series):
    expect(isinstance(series, dict), "series: must be an object")
    expect(isinstance(series.get("interval_seconds"), (int, float)),
           "series.interval_seconds: missing or not a number")
    channels = series.get("channels")
    expect(isinstance(channels, list), "series.channels: must be an array")
    names = []
    for i, channel in enumerate(channels):
        expect(isinstance(channel, dict),
               f"series.channels[{i}]: must be an object")
        name = channel.get("name")
        expect(isinstance(name, str) and name,
               f"series.channels[{i}]: missing name")
        names.append(name)
        # Plain series carry `values`; merged sweep stats carry per-bucket
        # mean/stddev/count arrays.
        has_values = isinstance(channel.get("values"), list)
        has_moments = all(isinstance(channel.get(k), list)
                          for k in ("mean", "stddev", "count"))
        expect(has_values or has_moments,
               f"series.channels[{i}] ({name}): neither values nor "
               "mean/stddev/count arrays")
    expect(names == sorted(names), "series.channels: names not sorted")


def check_report(doc):
    expect(isinstance(doc, dict), "top level must be an object")
    expect(doc.get("schema") == REPORT_SCHEMA,
           f"schema must be {REPORT_SCHEMA!r}, got {doc.get('schema')!r}")
    expect(isinstance(doc.get("experiment"), str) and doc["experiment"],
           "experiment: missing or empty")
    expect(isinstance(doc.get("config"), dict), "config: must be an object")
    rows = doc.get("rows")
    expect(isinstance(rows, list), "rows: must be an array")
    for i, row in enumerate(rows):
        expect(isinstance(row, dict), f"rows[{i}]: must be an object")

    unknown = set(doc) - set(SECTION_ORDER)
    expect(not unknown, f"unknown top-level sections {sorted(unknown)}")
    positions = [SECTION_ORDER.index(k) for k in doc]
    expect(positions == sorted(positions),
           f"sections out of canonical order: {list(doc)}")

    if "metrics" in doc:
        check_metrics_section(doc["metrics"], "metrics")
        expect(not any(v.get("kind") == "profile"
                       for v in doc["metrics"].values()),
               "metrics: profile entries belong in the profile section")
    if "series" in doc:
        check_series_section(doc["series"])
    if "invariants" in doc:
        expect(isinstance(doc["invariants"], dict),
               "invariants: must be an object")
    if "profile" in doc:
        check_metrics_section(doc["profile"], "profile")


def check_trace(doc):
    expect(isinstance(doc, dict), "top level must be an object")
    events = doc.get("traceEvents")
    expect(isinstance(events, list), "traceEvents: must be an array")
    expect(events, "traceEvents: empty")

    last_ts = {}
    flow_starts = {}
    flow_finishes = {}
    metadata_done = False
    for i, e in enumerate(events):
        expect(isinstance(e, dict), f"traceEvents[{i}]: must be an object")
        for key in ("ph", "name", "ts", "pid", "tid"):
            expect(key in e, f"traceEvents[{i}]: missing {key!r}")
        ph = e["ph"]
        if ph == "M":
            expect(not metadata_done,
                   f"traceEvents[{i}]: metadata after timed events")
            continue
        metadata_done = True
        track = (e["pid"], e["tid"])
        ts = e["ts"]
        expect(isinstance(ts, (int, float)),
               f"traceEvents[{i}]: ts not a number")
        if track in last_ts:
            expect(last_ts[track] <= ts,
                   f"traceEvents[{i}]: ts {ts} < {last_ts[track]} "
                   f"on track {track}")
        last_ts[track] = ts
        if ph == "X":
            expect(isinstance(e.get("dur"), (int, float)) and e["dur"] >= 0,
                   f"traceEvents[{i}]: X slice without nonnegative dur")
        elif ph in ("s", "t", "f"):
            expect("id" in e, f"traceEvents[{i}]: flow without id")
            if ph == "s":
                flow_starts[e["id"]] = flow_starts.get(e["id"], 0) + 1
            elif ph == "f":
                expect(e.get("bp") == "e",
                       f"traceEvents[{i}]: flow finish without bp=e")
                flow_finishes[e["id"]] = flow_finishes.get(e["id"], 0) + 1
        else:
            expect(ph == "i", f"traceEvents[{i}]: unexpected phase {ph!r}")
    expect(set(flow_starts) == set(flow_finishes),
           f"unbalanced flows: starts {sorted(flow_starts)} vs "
           f"finishes {sorted(flow_finishes)}")
    for flow_id, n in flow_starts.items():
        expect(n == 1 and flow_finishes[flow_id] == 1,
               f"flow {flow_id}: {n} starts / "
               f"{flow_finishes[flow_id]} finishes")


def main(argv):
    reports, traces = [], []
    bucket = reports
    for arg in argv[1:]:
        if arg == "--trace":
            bucket = traces
            continue
        bucket.append(arg)
    if not reports and not traces:
        print(__doc__)
        return 2

    failed = False
    for path, checker, label in (
            [(p, check_report, "report") for p in reports]
            + [(p, check_trace, "trace") for p in traces]):
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
            checker(doc)
            print(f"OK [{label}] {path}")
        except (OSError, json.JSONDecodeError, Bad) as err:
            print(f"FAIL [{label}] {path}: {err}", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
