#!/usr/bin/env python3
"""Cross-backend digest differ for BENCH_runtime.json (E15/E18).

Groups a tdr.run_report.v1 report's rows by (section, scheme, seed,
fault_plan) and requires every backend's state_digest and
shard_digests to be identical within a group — the sim-as-oracle
equivalence property, re-checked from the report artifact alone so CI
validates the whole pipeline (run -> report -> artifact), not just the
in-process comparison. The fault_plan axis keeps faulted rows
(crash/recovery, chaos drops) compared only against the same fault
plan on the other backend; rows without the field compare as plan
"none". The section axis keeps experiments apart (E18's epoch_speedup
rows reuse E15's schemes at different cluster sizes); within a group,
thread rows for EVERY dispatch mode (turn, epoch, epoch+steal) must
match the sim oracle bit for bit.

Usage:
  diff_digests.py BENCH_runtime.json [more_reports.json ...]

Exits nonzero listing every mismatching group; prints one OK line per
clean file. No third-party dependencies.
"""

import json
import sys


def check_file(path):
    with open(path, encoding="utf-8") as f:
        report = json.load(f)
    rows = report.get("rows", [])
    if not rows:
        return [f"{path}: no rows"]

    groups = {}
    for i, row in enumerate(rows):
        backend = row.get("backend")
        if backend is None:
            return [f"{path}: rows[{i}] missing 'backend'"]
        if "state_digest" not in row:
            return [f"{path}: rows[{i}] missing 'state_digest'"]
        key = (row.get("section", "main"), row.get("scheme"),
               row.get("seed"), row.get("fault_plan", "none"))
        groups.setdefault(key, []).append((backend, row))

    errors = []
    for (section, scheme, seed, plan), members in sorted(groups.items()):
        where = (f"({section}, {scheme}, seed={seed}, plan={plan})")
        backends = [b for b, _ in members]
        if len(set(backends)) < 2:
            errors.append(
                f"{path}: {where} has only "
                f"backend(s) {sorted(set(backends))} — nothing to compare")
            continue
        reference_backend, reference = members[0]
        for backend, row in members[1:]:
            # Thread rows carry the dispatch mode; name it in mismatch
            # output so a diverging epoch cell is identifiable.
            label = backend
            if "dispatch" in row:
                label = f"{backend}/{row['dispatch']}"
            for field in ("state_digest", "shard_digests", "committed"):
                if row.get(field) != reference.get(field):
                    errors.append(
                        f"{path}: {where} "
                        f"{field} differs: "
                        f"{reference_backend}={reference.get(field)!r} "
                        f"{label}={row.get(field)!r}")
    if not errors:
        n = len(groups)
        print(f"OK {path}: {n} (section, scheme, seed, fault_plan) groups "
              f"bit-identical across backends")
    return errors


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__.strip())
        return 2
    errors = []
    for path in argv[1:]:
        try:
            errors.extend(check_file(path))
        except (OSError, json.JSONDecodeError) as e:
            errors.append(f"{path}: {e}")
    for e in errors:
        print(f"MISMATCH {e}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
