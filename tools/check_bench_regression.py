#!/usr/bin/env python3
"""Bench-baseline regression gate for BENCH_*.json reports.

Compares freshly produced tdr.run_report.v1 reports against the
baselines committed at the repo root, row by row:

  * identity fields (scheme, seed, backend, fault_plan, section, ...)
    pair each fresh row with its baseline row;
  * deterministic outputs (digests, commit/abort counts) must be EXACT
    — these come from seeded virtual-time runs, so any drift is a
    behavior change, not noise;
  * rate metrics (committed_per_sec, *_rate) get a relative tolerance
    band (default ±25%);
  * wall-clock and syscall-count columns are ignored — they measure
    the machine, not the model.

Informational by default: every violation prints as a GitHub
`::warning` annotation and the exit code stays 0, so CI surfaces
drift without blocking. `--strict` upgrades violations to `::error`
and exits 1 — flip it on once the baselines are re-recorded on the CI
runner class.

Usage:
  check_bench_regression.py --baseline-dir . --fresh-dir build/bench
  check_bench_regression.py BENCH_runtime.json --fresh-dir build/bench
  check_bench_regression.py --strict --tolerance 0.10 ...

No third-party dependencies.
"""

import argparse
import glob
import json
import os
import sys

# Fields that name a row rather than measure it.
IDENTITY_FIELDS = (
    "section",
    "scheme",
    "seed",
    "backend",
    "fault_plan",
    "durability",
    "nodes",
    "num_shards",
    "clients_per_node",
    "dispatch",
    "fsync",
)

# Deterministic outputs of a seeded virtual-time run: exact match.
EXACT_FIELDS = (
    "state_digest",
    "shard_digests",
    "committed",
    "submitted",
    "unavailable",
    "divergent_slots",
    "wal_records",
    "wal_flushes",
    "proc.frames_sent",
    "proc.frames_received",
    "proc.bytes_sent",
    "proc.bytes_received",
    "proc.deliveries_shipped",
    "proc.deliveries_verified",
)

# Rates derived from virtual time: tolerance-banded, not exact, so a
# baseline recorded before a rounding change doesn't hard-fail.
RATE_SUFFIXES = ("_per_sec", "_rate")

# Machine-dependent measurements: never compared.
IGNORED_FIELDS = (
    "wall_seconds",
    "wall_sim_ratio",
    "runtime_dispatched",
    "runtime_wall_seconds",
    "speedup_vs_turn",
    "seconds",
    "records_per_sec",
    "syncs_per_sec",
    "proc.writev_calls",
    "proc.read_calls",
    "proc.partial_writes",
    "proc.partial_frames",
    "proc.eagain_waits",
)


def row_key(row):
    return tuple((f, json.dumps(row[f])) for f in IDENTITY_FIELDS
                 if f in row)


def key_str(key):
    return ", ".join(f"{f}={v}" for f, v in key) or "<no identity fields>"


def index_rows(rows, path, problems):
    indexed = {}
    for i, row in enumerate(rows):
        key = row_key(row)
        if key in indexed:
            problems.append(f"{path}: duplicate row identity ({key_str(key)})"
                            f" at rows[{i}]")
        indexed[key] = row
    return indexed


def classify(field):
    if field in IDENTITY_FIELDS or field in IGNORED_FIELDS:
        return "skip"
    if field in EXACT_FIELDS:
        return "exact"
    if field.endswith(RATE_SUFFIXES):
        return "rate"
    # Unknown metric: compare exactly if it isn't numeric noise we know
    # about — new deterministic columns get gated by default.
    return "exact"


def compare_rows(name, key, base, fresh, tolerance, problems):
    for field in sorted(set(base) & set(fresh)):
        kind = classify(field)
        if kind == "skip":
            continue
        b, f = base[field], fresh[field]
        if kind == "rate" and isinstance(b, (int, float)) \
                and isinstance(f, (int, float)):
            limit = tolerance * max(abs(b), 1e-9)
            if abs(f - b) > limit:
                problems.append(
                    f"{name} ({key_str(key)}): {field} drifted "
                    f"{b} -> {f} (>±{tolerance:.0%})")
        elif b != f:
            problems.append(
                f"{name} ({key_str(key)}): {field} changed "
                f"{b!r} -> {f!r} (deterministic, must be exact)")


def check_report(baseline_path, fresh_path, tolerance, problems):
    name = os.path.basename(baseline_path)
    with open(baseline_path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    with open(fresh_path, encoding="utf-8") as fh:
        fresh = json.load(fh)
    base_rows = index_rows(baseline.get("rows", []), baseline_path, problems)
    fresh_rows = index_rows(fresh.get("rows", []), fresh_path, problems)
    compared = 0
    for key, base in base_rows.items():
        if key not in fresh_rows:
            problems.append(f"{name} ({key_str(key)}): row missing from "
                            f"fresh report")
            continue
        compare_rows(name, key, base, fresh_rows[key], tolerance, problems)
        compared += 1
    return compared, len(base_rows)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("reports", nargs="*",
                        help="baseline report filenames (default: every "
                             "BENCH_*.json in --baseline-dir)")
    parser.add_argument("--baseline-dir", default=".",
                        help="directory holding committed baselines")
    parser.add_argument("--fresh-dir", default="build/bench",
                        help="directory holding freshly produced reports")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="relative band for rate metrics (default 0.25)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on any violation (default: warn only)")
    args = parser.parse_args()

    baselines = [os.path.join(args.baseline_dir, r) for r in args.reports]
    if not baselines:
        baselines = sorted(
            glob.glob(os.path.join(args.baseline_dir, "BENCH_*.json")))
    if not baselines:
        print(f"no BENCH_*.json baselines under {args.baseline_dir}; "
              f"nothing to check")
        return 0

    problems = []
    checked = 0
    for baseline_path in baselines:
        fresh_path = os.path.join(args.fresh_dir,
                                  os.path.basename(baseline_path))
        if not os.path.exists(fresh_path):
            print(f"skip {os.path.basename(baseline_path)}: no fresh report "
                  f"at {fresh_path}")
            continue
        compared, total = check_report(baseline_path, fresh_path,
                                       args.tolerance, problems)
        checked += 1
        print(f"checked {os.path.basename(baseline_path)}: "
              f"{compared}/{total} baseline rows matched against fresh run")

    level = "error" if args.strict else "warning"
    for p in problems:
        print(f"::{level} title=bench regression::{p}")
    if problems:
        print(f"{len(problems)} violation(s) across {checked} report(s)"
              f"{' (strict: failing)' if args.strict else ' (informational)'}")
        return 1 if args.strict else 0
    print(f"OK: {checked} report(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
