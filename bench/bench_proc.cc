// E17 — the multi-process socket backend vs the sim oracle. Runs each
// scheme configuration in-process (the oracle) and as one forked OS
// process per node with every cross-node delivery rendezvoused over
// CRC-framed Unix-domain sockets (src/proc), then checks that final
// state digest, per-shard digest matrix, and commit counts are
// bit-identical — the differential suite's property, re-verified in
// the bench artifact — and reports what the process backend costs:
// frames and bytes on the wire, writev/read syscalls, wall clock.
//
// Rows carry backend "sim" / "proc" plus the digests as hex strings,
// so tools/diff_digests.py re-checks the cross-backend equality from
// BENCH_proc.json alone — same artifact pipeline as E15. A mismatch
// also fails THIS binary (nonzero exit).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/proc_harness.h"

namespace tdr::bench {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 2, 3};

std::string Hex(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx", (unsigned long long)v);
  return buf;
}

double WallSeconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

SimConfig Config(SchemeKind kind, std::uint64_t seed) {
  SimConfig c;
  c.kind = kind;
  c.nodes = 4;
  c.db_size = 128;
  c.tps = 25;
  c.actions = 4;
  c.action_time = 0.01;
  c.sim_seconds = 2;
  c.seed = seed;
  c.num_shards = 2;
  c.drain = true;
  c.run_invariant_checker = true;
  if (kind == SchemeKind::kLazyGroup || kind == SchemeKind::kLazyMaster) {
    c.batch_flush_window = 0.05;
    c.batch_max_updates = 8;
  }
  return c;
}

/// Crash/recovery under WAL group commit — the faulted rows, grouped
/// apart by fault_plan in diff_digests.py.
SimConfig FaultedConfig(SchemeKind kind, std::uint64_t seed) {
  SimConfig c = Config(kind, seed);
  c.fault_crash_cycle = true;
  c.durability = DurabilityMode::kGroup;
  return c;
}

obs::Json OracleRow(const SimConfig& config, const SimOutcome& out) {
  obs::Json row = ReportRow(config, out);
  row.Set("backend", "sim");
  row.Set("state_digest", Hex(out.state_digest));
  obs::Json shards = obs::Json::Array();
  for (std::uint64_t d : out.shard_digests) shards.Push(Hex(d));
  row.Set("shard_digests", std::move(shards));
  return row;
}

obs::Json ProcRow(const SimConfig& config, const ProcOutcome& out,
                  double wall_seconds) {
  obs::Json row = obs::Json::Object();
  row.Set("scheme", SchemeKindName(config.kind));
  row.Set("seed", config.seed);
  row.Set("nodes", static_cast<std::uint64_t>(config.nodes));
  row.Set("fault_plan", FaultPlanName(config));
  row.Set("backend", "proc");
  row.Set("committed", out.committed);
  row.Set("state_digest", Hex(out.state_digest));
  obs::Json shards = obs::Json::Array();
  for (std::uint64_t d : out.shard_digests) shards.Push(Hex(d));
  row.Set("shard_digests", std::move(shards));
  // Transport cost columns, summed over all node processes.
  // Nondeterministic syscall/wall columns are reported, never compared.
  for (const char* name :
       {"proc.frames_sent", "proc.frames_received", "proc.bytes_sent",
        "proc.bytes_received", "proc.deliveries_shipped",
        "proc.deliveries_verified", "proc.writev_calls", "proc.read_calls",
        "proc.partial_writes", "proc.partial_frames", "proc.eagain_waits"}) {
    row.Set(name, out.Counter(name));
  }
  row.Set("wall_seconds", wall_seconds);
  return row;
}

}  // namespace

int Main() {
  PrintBanner("E17", "Multi-process socket backend vs the sim oracle",
              "post-paper engineering: fork-per-node differential check");

  constexpr SchemeKind kAll[] = {
      SchemeKind::kEagerGroup,
      SchemeKind::kEagerMaster,
      SchemeKind::kLazyGroup,
      SchemeKind::kLazyMaster,
  };

  SimConfig base = Config(kAll[0], kSeeds[0]);
  obs::RunReport report = MakeReport("bench_proc", base);
  report.SetConfig("backends", "sim,proc");
  report.SetConfig("seeds", static_cast<std::uint64_t>(std::size(kSeeds)));

  std::printf("%14s | %5s | %7s | %16s | %7s | %9s | %8s\n", "scheme",
              "seed", "plan", "state digest", "frames", "bytes", "wall ms");
  std::printf("---------------+-------+---------+------------------+--------"
              "-+-----------+---------\n");

  std::uint64_t mismatches = 0;
  std::uint64_t proc_failures = 0;
  auto run_pair = [&](const SimConfig& config, const char* plan_label) {
    const SimOutcome oracle = RunScheme(config);
    const auto start = std::chrono::steady_clock::now();
    const ProcOutcome proc = RunSchemeMultiProcess(config);
    const double wall = WallSeconds(start);
    if (!proc.ok) {
      ++proc_failures;
      std::printf("%14s | %5llu | %7s | proc run FAILED: %s\n",
                  std::string(SchemeKindName(config.kind)).c_str(),
                  (unsigned long long)config.seed, plan_label,
                  proc.error.c_str());
      return;
    }
    const bool equal = oracle.state_digest == proc.state_digest &&
                       oracle.shard_digests == proc.shard_digests &&
                       oracle.committed == proc.committed &&
                       proc.invariant_violations == 0;
    if (!equal) ++mismatches;
    std::printf("%14s | %5llu | %7s | %16s | %7llu | %9llu | %7.1f%s\n",
                std::string(SchemeKindName(config.kind)).c_str(),
                (unsigned long long)config.seed, plan_label,
                Hex(proc.state_digest).c_str(),
                (unsigned long long)proc.Counter("proc.frames_sent"),
                (unsigned long long)proc.Counter("proc.bytes_sent"),
                wall * 1e3, equal ? "" : "  << MISMATCH");
    report.AddRow(OracleRow(config, oracle));
    report.AddRow(ProcRow(config, proc, wall));
  };

  for (SchemeKind kind : kAll) {
    for (std::uint64_t seed : kSeeds) {
      run_pair(Config(kind, seed), "none");
    }
  }
  // Faulted rows: lazy master keeps real traffic on the wire across
  // the crash/recovery boundary.
  for (std::uint64_t seed : kSeeds) {
    run_pair(FaultedConfig(SchemeKind::kLazyMaster, seed), "crash");
  }

  std::printf(
      "\n%llu mismatches, %llu failed runs across %zu (scheme, seed, plan)"
      " pairs.\nEach proc row is one coordinator + %u forked node"
      " processes; every\ncross-node delivery rendezvoused over a"
      " CRC-framed socket frame, so\nthe digest columns above must match"
      " the sim oracle's bit for bit.\n",
      (unsigned long long)mismatches, (unsigned long long)proc_failures,
      std::size(kAll) * std::size(kSeeds) + std::size(kSeeds),
      base.nodes);

  WriteReport(report, "BENCH_proc.json");
  if (mismatches > 0 || proc_failures > 0) {
    std::fprintf(stderr, "FAIL: %llu digest mismatches, %llu failed runs\n",
                 (unsigned long long)mismatches,
                 (unsigned long long)proc_failures);
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}

}  // namespace tdr::bench

int main() { return tdr::bench::Main(); }
