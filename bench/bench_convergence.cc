// E11 — §6: non-transactional convergence schemes. Reproduces the
// section's qualitative claims quantitatively:
//
//  * "Timestamp schemes are vulnerable to lost updates": K concurrent
//    read-modify-write REPLACEs of a counter converge but lose all but
//    one increment per conflict round.
//  * Commutative updates (deltas / appends) converge with ZERO lost
//    updates — "incremental transformations ... applied in any order".
//  * Version vectors (Microsoft Access "Wingman") detect exactly the
//    concurrent update pairs; "rejected updates are reported".
//  * Oracle-7-style pluggable rules (site/time/value priority, additive
//    merge) all converge; only the additive rule preserves every effect.

#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "replication/convergence.h"

namespace tdr::bench {
namespace {

struct ConvResult {
  std::int64_t final_value = 0;
  std::int64_t intended = 0;
  std::uint64_t conflicts = 0;
  bool converged = false;

  std::int64_t lost() const { return intended - final_value; }
};

// Each of `replicas` replicas applies `updates_each` +1 increments to
// one counter, then the cluster converges with `rule` (state-based) or
// with op gossip (if `use_ops`).
ConvResult RunCounter(std::uint32_t replicas, int updates_each,
                      bool use_ops, const ReconciliationRule& rule,
                      int rounds) {
  ConvResult result;
  GossipCluster cluster(replicas, 1);
  for (int round = 0; round < rounds; ++round) {
    for (NodeId r = 0; r < replicas; ++r) {
      for (int i = 0; i < updates_each; ++i) {
        if (use_ops) {
          cluster.replica(r).LocalDelta(0, 1);
        } else {
          cluster.replica(r).LocalReplaceAdd(0, 1);
        }
        ++result.intended;
      }
    }
    if (use_ops) {
      cluster.ConvergeOps();
    } else {
      result.conflicts += cluster.ConvergeState(rule);
    }
  }
  result.converged = cluster.Converged();
  result.final_value =
      cluster.replica(0).store().GetUnchecked(0).value.AsScalar();
  return result;
}

}  // namespace

void Main() {
  PrintBanner("E11", "Convergence without transactions",
              "Section 6 (pp. 179-180)");
  const std::uint32_t kReplicas = 4;
  const int kUpdates = 5;
  const int kRounds = 10;
  std::printf("%u replicas x %d increments/round x %d rounds; intended "
              "final counter = %d\n\n",
              kReplicas, kUpdates, kRounds,
              kReplicas * kUpdates * kRounds);

  std::printf("%-26s | %9s | %9s | %9s | %s\n", "scheme", "final",
              "lost", "conflicts", "converged");
  std::printf("---------------------------+-----------+-----------+------"
              "-----+----------\n");
  struct Entry {
    const char* name;
    bool use_ops;
    ReconciliationRule rule;
  };
  std::vector<Entry> entries;
  entries.push_back({"LWW replace (Notes)", false, TimePriorityRule()});
  entries.push_back({"site priority (Oracle)", false, SitePriorityRule()});
  entries.push_back({"value priority (Oracle)", false, ValuePriorityRule()});
  entries.push_back({"commutative deltas", true, nullptr});
  for (const Entry& e : entries) {
    ConvResult r =
        RunCounter(kReplicas, kUpdates, e.use_ops, e.rule, kRounds);
    std::printf("%-26s | %9lld | %9lld | %9llu | %s\n", e.name,
                (long long)r.final_value, (long long)r.lost(),
                (unsigned long long)r.conflicts,
                r.converged ? "yes" : "NO");
  }
  // The additive state-merge rule is exact only for a single conflicting
  // pair over a common zero base (its documented contract) — shown in
  // that regime; the general commutative mechanism is the op-based row
  // above.
  {
    ConvResult r = RunCounter(2, kUpdates, false, AdditiveMergeRule(), 1);
    std::printf("%-26s | %9lld | %9lld | %9llu | %s   (2 replicas, "
                "1 round)\n",
                "additive merge (Oracle)", (long long)r.final_value,
                (long long)(2 * kUpdates - r.final_value),
                (unsigned long long)r.conflicts,
                r.converged ? "yes" : "NO");
  }

  // Version-vector conflict detection: the number of reported conflicts
  // equals the number of truly concurrent pairwise update races.
  std::printf("\nVersion-vector detection (Access 'Wingman'):\n");
  {
    GossipCluster cluster(3, 4);
    // Two concurrent updates to object 0, one lone update to object 1.
    cluster.replica(0).LocalReplace(0, Value(10));
    cluster.replica(1).LocalReplace(0, Value(20));
    cluster.replica(2).LocalReplace(1, Value(30));
    std::uint64_t conflicts = cluster.ConvergeState(TimePriorityRule());
    std::printf("  3 updates, 1 concurrent pair -> %llu conflict(s) "
                "reported, converged=%s\n",
                (unsigned long long)conflicts,
                cluster.Converged() ? "yes" : "NO");
  }

  // Notes-style append: all notes from all replicas survive, in
  // timestamp order, at every replica.
  std::printf("\nTimestamped append (Notes):\n");
  {
    GossipCluster cluster(3, 1);
    int notes = 0;
    for (NodeId r = 0; r < 3; ++r) {
      for (int i = 0; i < 4; ++i) {
        cluster.replica(r).LocalAppend(0, 100 * (r + 1) + i);
        ++notes;
      }
    }
    cluster.ConvergeOps();
    std::printf("  %d notes appended at 3 replicas -> every replica holds "
                "%zu notes, converged=%s\n",
                notes,
                cluster.replica(0).store().GetUnchecked(0).value.AsList()
                    .size(),
                cluster.Converged() ? "yes" : "NO");
  }
  std::printf(
      "\n§6's conclusion, reproduced: convergence alone is cheap, but\n"
      "only commutative updates converge to the state that reflects ALL\n"
      "committed work — the design trick the two-tier scheme builds on.\n");
}

}  // namespace tdr::bench

int main() { tdr::bench::Main(); }
