// E2 — Figure 1 and equations (6)-(8): how transaction size, duration,
// concurrent-transaction count and total action rate grow as a 1-node
// system is replicated to N nodes.
//
// For each N we print the analytic prediction and a simulator
// measurement of the same quantity:
//  * eager transaction duration (Eq. 6: Actions x Nodes x Action_Time),
//  * lazy transaction count per user update (Figure 1: N transactions),
//  * total action (update) rate (Eq. 8: TPS x Actions x Nodes^2).

#include <cstdio>
#include <optional>

#include "bench/harness.h"

namespace tdr::bench {
namespace {

struct Measured {
  double eager_duration;   // seconds, single uncontended txn
  double lazy_txns;        // transactions per user update
  double action_rate;      // installed updates per second, whole cluster
};

Measured MeasureAt(std::uint32_t nodes) {
  Measured m{};
  // (a) Eager single-transaction duration on an idle cluster.
  {
    Cluster::Options copts;
    copts.num_nodes = nodes;
    copts.db_size = 64;
    copts.action_time = SimTime::Millis(10);
    Cluster cluster(copts);
    EagerGroupScheme scheme(&cluster);
    std::optional<TxnResult> result;
    scheme.Submit(0, Program({Op::Write(0, 1), Op::Write(1, 1),
                              Op::Write(2, 1), Op::Write(3, 1)}),
                  [&](const TxnResult& r) { result = r; });
    cluster.sim().Run();
    m.eager_duration = result->Duration().seconds();
  }
  // (b) Lazy transactions per user update.
  {
    Cluster::Options copts;
    copts.num_nodes = nodes;
    copts.db_size = 64;
    copts.action_time = SimTime::Millis(10);
    Cluster cluster(copts);
    LazyGroupScheme scheme(&cluster);
    scheme.Submit(0, Program({Op::Write(0, 1)}), nullptr);
    cluster.sim().Run();
    // Root + one replica-update transaction per remote node.
    m.lazy_txns = 1.0 + static_cast<double>(
                            cluster.metrics().Get("net.delivered"));
  }
  // (c) Total action rate under load (updates installed per second at
  // all replicas). Low contention so queueing does not distort it.
  {
    SimConfig config;
    config.kind = SchemeKind::kLazyGroup;
    config.nodes = nodes;
    config.db_size = 20000;
    config.tps = 5;
    config.actions = 4;
    config.action_time = 0.002;
    config.sim_seconds = 100;
    SimOutcome out = RunScheme(config);
    // Each committed root txn installs `actions` updates at the origin;
    // each replica batch re-installs them at one remote node.
    m.action_rate = (static_cast<double>(out.committed) * config.actions +
                     static_cast<double>(out.replica_applied)) /
                    out.seconds;
  }
  return m;
}

}  // namespace

void Main() {
  PrintBanner("E2", "Replication work growth",
              "Figure 1 + equations (6)-(8) (pp. 175-177)");
  analytic::ModelParams p;
  p.tps = 5;
  p.actions = 4;
  p.action_time = 0.002;
  p.db_size = 20000;

  std::printf(
      "Single eager txn: Actions=4, Action_Time=10ms. Load: TPS=5/node, "
      "Actions=4, Action_Time=2ms.\n\n");
  std::printf("%5s | %-21s | %-21s | %-21s\n", "", "eager txn duration (s)",
              "lazy txns / update", "action rate (upd/s)");
  std::printf("%5s | %10s %10s | %10s %10s | %10s %10s\n", "nodes", "model",
              "measured", "model", "measured", "model", "measured");
  std::printf("------+----------------------+----------------------+-------"
              "---------------\n");

  // Each node count's three measurements are independent full
  // simulations; fan them out over the sweep runner's pool.
  const std::vector<std::uint32_t> kNodes{1, 2, 3, 5, 10};
  sim::SweepRunner runner;
  std::vector<Measured> measured = runner.Map<Measured>(
      kNodes.size(), [&](std::size_t i) { return MeasureAt(kNodes[i]); });

  std::vector<std::pair<double, double>> rate_points;
  for (std::size_t i = 0; i < kNodes.size(); ++i) {
    std::uint32_t n = kNodes[i];
    p.nodes = n;
    const Measured& m = measured[i];
    double model_duration = 4 * n * 0.010;  // Eq. (6) at bench params
    double model_lazy_txns = n;             // Figure 1 / Table 1
    double model_rate = analytic::ActionRate(p);  // Eq. (8)
    std::printf("%5u | %10.3f %10.3f | %10.0f %10.0f | %10.1f %10.1f\n", n,
                model_duration, m.eager_duration, model_lazy_txns,
                m.lazy_txns, model_rate, m.action_rate);
    rate_points.emplace_back(n, m.action_rate);
  }
  std::printf(
      "\nMeasured action-rate growth exponent: %.2f (model: 2.00 — \"the "
      "node update rate grows by N^2\")\n",
      FitPowerLawExponent(rate_points));
  std::printf(
      "Eq. (7) corollary: eager has fewer-longer transactions, lazy has\n"
      "more-shorter ones; the total active-transaction count is the same.\n");
}

}  // namespace tdr::bench

int main() { tdr::bench::Main(); }
