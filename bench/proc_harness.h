#ifndef TDR_BENCH_PROC_HARNESS_H_
#define TDR_BENCH_PROC_HARNESS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.h"

namespace tdr::bench {

/// Round-trippable text form of a SimConfig — the payload of the
/// coordinator's kConfig frame. Doubles are written with %.17g so the
/// parsed config is bit-identical to the original (the whole design
/// rests on every process building the same cluster).
std::string SerializeSimConfig(const SimConfig& config);

/// Inverse of SerializeSimConfig. False (with diagnosis) on unknown
/// keys, malformed values, or a version it does not speak.
bool ParseSimConfig(const std::string& text, SimConfig* out,
                    std::string* error);

/// Result of one multi-process run (see RunSchemeMultiProcess).
struct ProcOutcome {
  bool ok = false;
  /// First failure: child kError (delivery-rendezvous mismatch, frame
  /// corruption, non-idle transport), crash, wedge, or cross-child
  /// digest disagreement.
  std::string error;

  std::uint64_t committed = 0;
  std::uint64_t invariant_violations = 0;
  /// Full-cluster digest every node process agreed on.
  std::uint64_t state_digest = 0;
  /// Per-shard digest matrix (shard-major, then node order) assembled
  /// from each owner process's column — same layout as
  /// SimOutcome::shard_digests, so the two compare element-wise.
  std::vector<std::uint64_t> shard_digests;
  /// FNV-1a over the metrics snapshot text, agreed by every child.
  std::uint64_t metrics_fp = 0;
  /// FaultPlan::Fingerprint every child derived from the shipped config.
  std::uint64_t plan_fp = 0;
  /// Transport/bridge counters summed across node processes
  /// (proc.frames_sent, proc.bytes_received, ...), sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  std::uint64_t Counter(const std::string& name) const;
};

/// Runs `config` as a real multi-process cluster: one forked OS process
/// per node, every cross-node Network delivery rendezvoused over a
/// Unix-domain socket pair (src/proc). Each process builds the full
/// cluster from the serialized config and executes the identical
/// deterministic schedule; the socket layer is load-bearing because a
/// receiver BLOCKS on, and field-verifies, its owner's frame for every
/// delivery it owns. Returns the digests all processes agreed on.
///
/// The caller compares the result against RunScheme(config) run
/// in-process — the sim-as-oracle differential gate.
ProcOutcome RunSchemeMultiProcess(const SimConfig& config);

/// FNV-1a fingerprint of a metrics snapshot's deterministic text form —
/// the same hash children report, exposed so the oracle side of a
/// differential comparison can compute its own.
std::uint64_t MetricsFingerprint(const obs::MetricsSnapshot& snapshot);

}  // namespace tdr::bench

#endif  // TDR_BENCH_PROC_HARNESS_H_
