// E10 — §7: the two-tier scheme. Three claims reproduced:
//
//  1. Base transactions run under lazy-master rules, so their deadlock
//     behaviour is Eq. (19) — N^2, and deadlocked base transactions are
//     resubmitted until they succeed (retries measured).
//  2. "The reconciliation rate for base transactions will be zero if all
//     the transactions commute" — the acceptance-failure rate is swept
//     against the non-commutative fraction of the workload, falling to
//     exactly zero at 100% commutative.
//  3. "The master database is always converged — there is no system
//     delusion" — checked after every run, and contrasted with lazy
//     group under the identical mobile workload.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/harness.h"
#include "core/two_tier.h"
#include "net/network.h"
#include "obs/run_report.h"

namespace tdr::bench {
namespace {

struct TwoTierOutcome {
  std::uint64_t tentative = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t base_retries = 0;
  bool base_converged = false;
  double seconds = 0;

  double rejection_rate() const {
    return seconds > 0 ? rejected / seconds : 0;
  }
};

TwoTierOutcome RunTwoTier(std::uint32_t num_mobile,
                          double commutative_fraction,
                          double disconnect_seconds, double tps,
                          double sim_seconds, std::uint64_t db_size) {
  TwoTierSystem::Options topts;
  topts.num_base = 2;
  topts.num_mobile = num_mobile;
  topts.db_size = db_size;
  topts.action_time = SimTime::Millis(1);
  topts.seed = 23;
  TwoTierSystem sys(topts);

  ProgramGenerator::Options gcommute;
  gcommute.db_size = db_size;
  gcommute.actions = 2;
  gcommute.mix = OpMix::AllCommutative();
  ProgramGenerator commutative_gen(gcommute);

  TwoTierOutcome outcome;
  outcome.seconds = sim_seconds;

  Rng rng = sys.cluster().ForkRng();
  std::vector<std::unique_ptr<OpenLoopArrivals>> arrivals;
  std::vector<std::unique_ptr<ConnectivitySchedule>> schedules;
  for (std::uint32_t m = 0; m < num_mobile; ++m) {
    NodeId mobile = topts.num_base + m;
    OpenLoopArrivals::Options aopts;
    aopts.tps = tps;
    auto gen_rng = std::make_shared<Rng>(rng.Fork());
    arrivals.push_back(std::make_unique<OpenLoopArrivals>(
        &sys.sim(), aopts, rng.Fork(),
        [&, mobile, gen_rng]() {
          bool commutes = gen_rng->Bernoulli(commutative_fraction);
          Program program;
          if (commutes) {
            program = commutative_gen.Next(*gen_rng);
          } else {
            // Non-commutative: read-then-replace on two objects. The
            // outputs depend on the state the transaction saw, so
            // interference during the disconnection shows up as a
            // read/output mismatch at reprocessing time.
            for (int k = 0; k < 2; ++k) {
              ObjectId oid = gen_rng->UniformInt(db_size);
              program.Add(Op::Read(oid));
              program.Add(
                  Op::Write(oid, gen_rng->UniformRange(1, 100)));
            }
          }
          // Commutative transactions tolerate different base results;
          // non-commutative ones demand identical outputs (§7: "If the
          // acceptance criteria requires the base and tentative
          // transaction have identical outputs").
          AcceptanceCriterion crit =
              commutes ? AcceptAlways() : IdenticalReads();
          ++outcome.tentative;
          sys.SubmitTentative(mobile, std::move(program), std::move(crit),
                              nullptr, [&](const FinalOutcome& o) {
                                if (o.accepted) {
                                  ++outcome.accepted;
                                } else {
                                  ++outcome.rejected;
                                }
                              });
        }));
    arrivals.back()->Start();

    ConnectivitySchedule::Options sopts;
    sopts.time_between_disconnects =
        SimTime::Seconds(disconnect_seconds * 0.1);
    sopts.disconnected_time = SimTime::Seconds(disconnect_seconds);
    sopts.start_disconnected = true;
    schedules.push_back(std::make_unique<ConnectivitySchedule>(
        &sys.sim(), &sys.cluster().net(), mobile, sopts, rng.Fork()));
    ConnectivitySchedule* sched = schedules.back().get();
    double offset = disconnect_seconds * static_cast<double>(m) /
                    std::max(1u, num_mobile);
    sys.sim().ScheduleAt(SimTime::Seconds(offset),
                         [sched]() { sched->Start(); });
  }

  sys.sim().RunUntil(SimTime::Seconds(sim_seconds));
  for (auto& a : arrivals) a->Stop();
  for (auto& s : schedules) s->Stop();
  // Let in-flight drains and propagation settle so the convergence check
  // is meaningful.
  for (NodeId m = topts.num_base; m < topts.num_base + num_mobile; ++m) {
    sys.Connect(m);
  }
  sys.sim().Run(2'000'000);

  outcome.base_retries = sys.base_deadlock_retries();
  outcome.base_converged = sys.BaseTierConverged();
  return outcome;
}

// The same mobile workload under plain lazy-group, for the delusion
// comparison.
std::uint64_t LazyGroupDivergence(std::uint32_t nodes,
                                  double disconnect_seconds, double tps,
                                  double sim_seconds,
                                  std::uint64_t db_size) {
  Cluster::Options copts;
  copts.num_nodes = nodes;
  copts.db_size = db_size;
  copts.action_time = SimTime::Millis(1);
  copts.seed = 23;
  Cluster cluster(copts);
  LazyGroupScheme scheme(&cluster);
  ProgramGenerator::Options gopts;
  gopts.db_size = db_size;
  gopts.actions = 2;
  gopts.mix = OpMix::AllWrites();
  ProgramGenerator gen(gopts);
  Rng rng = cluster.ForkRng();
  std::vector<std::unique_ptr<OpenLoopArrivals>> arrivals;
  std::vector<std::unique_ptr<ConnectivitySchedule>> schedules;
  for (NodeId id = 0; id < nodes; ++id) {
    OpenLoopArrivals::Options aopts;
    aopts.tps = tps;
    auto gen_rng = std::make_shared<Rng>(rng.Fork());
    arrivals.push_back(std::make_unique<OpenLoopArrivals>(
        &cluster.sim(), aopts, rng.Fork(), [&, id, gen_rng]() {
          scheme.Submit(id, gen.Next(*gen_rng), nullptr);
        }));
    arrivals.back()->Start();
    if (id >= 2) {  // first two play "base"; the rest cycle like mobiles
      ConnectivitySchedule::Options sopts;
      sopts.time_between_disconnects =
          SimTime::Seconds(disconnect_seconds * 0.1);
      sopts.disconnected_time = SimTime::Seconds(disconnect_seconds);
      sopts.start_disconnected = true;
      schedules.push_back(std::make_unique<ConnectivitySchedule>(
          &cluster.sim(), &cluster.net(), id, sopts, rng.Fork()));
      ConnectivitySchedule* sched = schedules.back().get();
      cluster.sim().ScheduleAt(
          SimTime::Seconds(disconnect_seconds * id / nodes),
          [sched]() { sched->Start(); });
    }
  }
  cluster.sim().RunUntil(SimTime::Seconds(sim_seconds));
  for (auto& a : arrivals) a->Stop();
  for (auto& s : schedules) s->Stop();
  for (NodeId id = 2; id < nodes; ++id) cluster.net().SetConnected(id, true);
  cluster.sim().Run(2'000'000);
  return cluster.DivergentSlots();
}

}  // namespace

void Main() {
  PrintBanner("E10", "Two-tier replication",
              "Section 7 + equation (19) (pp. 180-182)");
  const double kTps = 1.0;
  const double kDisconnect = 30;
  const double kWindow = 600;
  const std::uint64_t kDb = 200;
  const std::uint32_t kMobiles = 4;

  obs::RunReport report("two_tier");
  report.SetConfig("base_nodes", obs::Json(2))
      .SetConfig("mobile_nodes", obs::Json(static_cast<std::int64_t>(kMobiles)))
      .SetConfig("db_size", obs::Json(static_cast<std::int64_t>(kDb)))
      .SetConfig("tps_per_mobile", obs::Json(kTps))
      .SetConfig("disconnect_seconds", obs::Json(kDisconnect))
      .SetConfig("window_seconds", obs::Json(kWindow));

  std::printf("2 base + %u mobile nodes, DB_Size=%llu, tentative TPS=%.1f/"
              "mobile,\nmobiles disconnected %gs per cycle. Window %gs.\n\n",
              kMobiles, (unsigned long long)kDb, kTps, kDisconnect,
              kWindow);

  std::printf("Sweep: non-commutative fraction of the tentative workload\n");
  std::printf("%12s | %9s | %9s | %9s | %12s | %s\n", "non-commut.",
              "tentative", "accepted", "rejected", "retries", "base "
              "converged");
  std::printf("-------------+-----------+-----------+-----------+--------"
              "------+---------------\n");
  bool all_converged = true;
  for (double noncommutative : {1.0, 0.5, 0.25, 0.0}) {
    TwoTierOutcome out =
        RunTwoTier(kMobiles, 1.0 - noncommutative, kDisconnect, kTps,
                   kWindow, kDb);
    all_converged = all_converged && out.base_converged;
    std::printf("%11.0f%% | %9llu | %9llu | %9llu | %12llu | %s\n",
                noncommutative * 100,
                (unsigned long long)out.tentative,
                (unsigned long long)out.accepted,
                (unsigned long long)out.rejected,
                (unsigned long long)out.base_retries,
                out.base_converged ? "YES" : "NO (BUG)");
    obs::Json row = obs::Json::Object();
    row.Set("noncommutative_fraction", obs::Json(noncommutative))
        .Set("tentative", obs::Json(out.tentative))
        .Set("accepted", obs::Json(out.accepted))
        .Set("rejected", obs::Json(out.rejected))
        .Set("rejection_rate", obs::Json(out.rejection_rate()))
        .Set("base_deadlock_retries", obs::Json(out.base_retries))
        .Set("base_converged", obs::Json(out.base_converged));
    report.AddRow(std::move(row));
  }

  std::uint64_t lazy_divergence =
      LazyGroupDivergence(2 + kMobiles, kDisconnect, kTps, kWindow, kDb);
  std::printf(
      "\nContrast — plain lazy-group under the same mobile workload ends\n"
      "with %llu divergent (node,object) slots (system delusion), while\n"
      "the two-tier base state is converged in every row above.\n",
      (unsigned long long)lazy_divergence);
  std::printf(
      "Key §7 properties verified: tentative updates while disconnected;\n"
      "single-copy serializable base execution; durability at base\n"
      "commit; convergence; zero reconciliation when all transactions\n"
      "commute.\n");

  obs::Json invariants = obs::Json::Object();
  invariants.Set("base_converged_all_rows", obs::Json(all_converged));
  invariants.Set("lazy_group_divergent_slots", obs::Json(lazy_divergence));
  report.SetInvariants(std::move(invariants));
  WriteReport(report, "BENCH_two_tier.json");
}

}  // namespace tdr::bench

int main() { tdr::bench::Main(); }
