// E3 — Figure 3: "Systems can grow by (1) scaleup, (2) partitioning, or
// (3) replication ... Notice that each of the replicated servers is
// performing 2 TPS and the aggregate rate is 4 TPS. Doubling the users
// increased the total workload by a factor of four."
//
// We reproduce the figure's four boxes as simulations and report the
// per-server and aggregate update-processing rates.

#include <cstdio>

#include "bench/harness.h"

namespace tdr::bench {
namespace {

struct BoxResult {
  double per_server_tps;    // user transactions processed per server/s
  double per_server_work;   // update actions processed per server/s
  double aggregate_work;    // update actions processed cluster-wide/s
};

// A centralized (or partitioned-shard) server: one node, `tps` user load.
BoxResult RunStandalone(double tps, std::uint32_t servers) {
  SimConfig config;
  config.kind = SchemeKind::kLazyGroup;  // irrelevant at N=1: no replicas
  config.nodes = 1;
  config.db_size = 10000;
  config.tps = tps;
  config.actions = 2;
  config.action_time = 0.001;
  config.sim_seconds = 200;
  SimOutcome out = RunScheme(config);
  BoxResult r;
  r.per_server_tps = out.Rate(out.committed);
  r.per_server_work = out.Rate(out.committed * config.actions);
  r.aggregate_work = r.per_server_work * servers;
  return r;
}

// Two replicated servers, each with its own users at `tps`: every server
// does its own work plus the other's replica updates.
BoxResult RunReplicated(double tps) {
  SimConfig config;
  config.kind = SchemeKind::kLazyGroup;
  config.nodes = 2;
  config.db_size = 10000;
  config.tps = tps;
  config.actions = 2;
  config.action_time = 0.001;
  config.sim_seconds = 200;
  SimOutcome out = RunScheme(config);
  BoxResult r;
  double own_work = static_cast<double>(out.committed) * config.actions;
  double replica_work = static_cast<double>(out.replica_applied);
  r.aggregate_work = (own_work + replica_work) / out.seconds;
  r.per_server_work = r.aggregate_work / 2;
  r.per_server_tps = r.per_server_work / config.actions;
  return r;
}

}  // namespace

void Main() {
  PrintBanner("E3", "Scaleup vs partitioning vs replication",
              "Figure 3 (p. 176)");
  std::printf("Workload: 1 'TPS' box = 1 user txn/s of 2 updates.\n\n");
  std::printf("%-34s | %10s | %12s | %12s\n", "configuration",
              "servers", "work/server", "total work");
  std::printf("-----------------------------------+------------+----------"
              "----+--------------\n");

  // The figure's four boxes are independent simulations; run them as
  // one parallel batch.
  sim::SweepRunner runner;
  std::vector<BoxResult> boxes = runner.Map<BoxResult>(4, [](std::size_t i) {
    switch (i) {
      case 0: return RunStandalone(1.0, 1);   // base case
      case 1: return RunStandalone(2.0, 1);   // scaleup
      case 2: return RunStandalone(1.0, 2);   // partitioning
      default: return RunReplicated(1.0);     // replication
    }
  });
  const BoxResult& base = boxes[0];
  const BoxResult& scaleup = boxes[1];
  const BoxResult& partitioned = boxes[2];
  const BoxResult& replicated = boxes[3];
  std::printf("%-34s | %10u | %12.2f | %12.2f\n",
              "base case: 1 server, 1 TPS", 1, base.per_server_work,
              base.aggregate_work);
  std::printf("%-34s | %10u | %12.2f | %12.2f\n",
              "scaleup: 1 bigger server, 2 TPS", 1,
              scaleup.per_server_work, scaleup.aggregate_work);
  std::printf("%-34s | %10u | %12.2f | %12.2f\n",
              "partitioning: 2 shards, 1 TPS each", 2,
              partitioned.per_server_work, partitioned.aggregate_work);
  std::printf("%-34s | %10u | %12.2f | %12.2f\n",
              "replication: 2 replicas, 1 TPS each", 2,
              replicated.per_server_work, replicated.aggregate_work);

  std::printf(
      "\nFigure 3's point: the replicated servers each process ~2x the\n"
      "update work of a partitioned shard (own updates + the peer's\n"
      "replica updates), so doubling users quadrupled total work:\n"
      "  replicated total / base total = %.2f (model: 4.0)\n",
      replicated.aggregate_work / base.aggregate_work);
}

}  // namespace tdr::bench

int main() { tdr::bench::Main(); }
