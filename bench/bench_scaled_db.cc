// E6 — Equation (13): if the database grows with the system (DB_Size
// proportional to Nodes, as in TPC-A/B/C), the eager deadlock rate grows
// only LINEARLY in nodes: "a ten-fold growth in the number of nodes
// creates only a ten-fold growth in the deadlock rate. This is still an
// unstable situation, but it is a big improvement over equation (12)."

#include <cstdio>

#include "bench/harness.h"

namespace tdr::bench {

void Main() {
  PrintBanner("E6", "Eager deadlocks with a scaled-up database",
              "Equation (13) (p. 178)");
  SimConfig base;
  // Eager MASTER: Eq. (13) is about lock contention under scaleup, and
  // the master variant removes the same-object replica-ordering race
  // that inflates eager-group rates above the model (see E5's note).
  base.kind = SchemeKind::kEagerMaster;
  base.db_size = 600;  // per-node base size; total = base x nodes
  base.tps = 5;        // low enough to stay in the model's PW << 1 regime
  base.actions = 4;
  base.action_time = 0.01;
  base.sim_seconds = 2500;

  std::printf("Sweep 1 — fixed DB_Size=%llu (the unstable Eq. 12 case), "
              "TPS=%.0f/node, Actions=%u\n",
              (unsigned long long)base.db_size, base.tps, base.actions);
  std::printf("%5s | %11s %11s\n", "nodes", "Eq.(12)", "measured");
  std::printf("------+------------------------\n");
  const std::vector<std::uint32_t> kNodes{1, 2, 3, 5, 8};
  std::vector<SimConfig> fixed_grid;
  for (std::uint32_t nodes : kNodes) {
    SimConfig fixed = base;
    fixed.nodes = nodes;
    fixed_grid.push_back(fixed);
  }
  std::vector<SimOutcome> fixed_out = RunSweep(fixed_grid);
  std::vector<std::pair<double, double>> scaled_points, fixed_points;
  for (std::size_t i = 0; i < kNodes.size(); ++i) {
    analytic::ModelParams p = ToModelParams(fixed_grid[i]);
    std::printf("%5u | %11.5f %11.5f\n", kNodes[i],
                analytic::EagerDeadlockRate(p), fixed_out[i].deadlock_rate());
    fixed_points.emplace_back(kNodes[i], fixed_out[i].deadlock_rate());
  }

  // The scaled-database sweep carries more load (TPS, Actions) so the
  // much rarer deadlocks are measurable; Eq. (13) is evaluated at the
  // same parameters.
  SimConfig sbase = base;
  sbase.tps = 15;
  sbase.actions = 5;
  sbase.sim_seconds = 3000;
  std::printf("\nSweep 2 — DB_Size=%llu x Nodes (TPC-style growth, Eq. "
              "13), TPS=%.0f/node, Actions=%u\n",
              (unsigned long long)sbase.db_size, sbase.tps, sbase.actions);
  std::printf("%5s | %9s | %11s %11s\n", "nodes", "DB size", "Eq.(13)",
              "measured");
  std::printf("------+-----------+------------------------\n");
  std::vector<SimConfig> scaled_grid;
  for (std::uint32_t nodes : kNodes) {
    SimConfig scaled = sbase;
    scaled.nodes = nodes;
    scaled.db_size = sbase.db_size * nodes;
    scaled_grid.push_back(scaled);
  }
  std::vector<SimOutcome> scaled_out = RunSweep(scaled_grid);
  for (std::size_t i = 0; i < kNodes.size(); ++i) {
    analytic::ModelParams ps = ToModelParams(scaled_grid[i]);
    ps.db_size = static_cast<double>(sbase.db_size);  // per-node size
    std::printf("%5u | %9llu | %11.5f %11.5f\n", kNodes[i],
                (unsigned long long)scaled_grid[i].db_size,
                analytic::EagerDeadlockRateScaledDb(ps),
                scaled_out[i].deadlock_rate());
    scaled_points.emplace_back(kNodes[i], scaled_out[i].deadlock_rate());
  }
  std::printf(
      "\nMeasured growth exponents: fixed DB %.2f (model 3.00), scaled DB "
      "%.2f (model 1.00)\n",
      FitPowerLawExponent(fixed_points),
      FitPowerLawExponent(scaled_points));
}

}  // namespace tdr::bench

int main() { tdr::bench::Main(); }
