// E15 — the real-threads runtime vs the sim oracle. Runs every scheme
// configuration on both backends for a spread of seeds, checks that
// the final state digests are bit-identical (the differential suite's
// property, re-verified in the bench artifact), and reports what the
// thread backend costs: events dispatched across threads, wall-clock
// per sim-second, worker utilization (profile section).
//
// The report rows carry the digests as hex strings;
// tools/diff_digests.py re-checks the cross-backend equality from the
// JSON alone, so CI validates the property end-to-end through the
// artifact pipeline. A mismatch also fails THIS binary (nonzero exit).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/harness.h"

namespace tdr::bench {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 2, 3, 4, 5};

std::string Hex(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx", (unsigned long long)v);
  return buf;
}

const char* BackendName(RuntimeBackend backend) {
  return backend == RuntimeBackend::kThreads ? "threads" : "sim";
}

SimConfig Config(SchemeKind kind, std::uint64_t seed, RuntimeBackend backend) {
  SimConfig c;
  c.kind = kind;
  c.nodes = 4;
  c.db_size = 256;
  c.tps = 25;
  c.actions = 4;
  c.action_time = 0.01;
  c.sim_seconds = 5;
  c.seed = seed;
  c.num_shards = 4;
  c.backend = backend;
  c.drain = true;
  c.run_invariant_checker = true;
  if (kind == SchemeKind::kLazyGroup || kind == SchemeKind::kLazyMaster) {
    c.batch_flush_window = 0.05;
    c.batch_max_updates = 16;
  }
  return c;
}

/// The faulted rows: same workload under a crash/restart of the last
/// node with WAL group-commit durability — the recovery path's digests
/// must ALSO be bit-identical across backends. Rows carry fault_plan
/// ("crash") so diff_digests.py groups them apart from the clean rows.
SimConfig FaultedConfig(SchemeKind kind, std::uint64_t seed,
                        RuntimeBackend backend) {
  SimConfig c = Config(kind, seed, backend);
  c.fault_crash_cycle = true;
  c.durability = DurabilityMode::kGroup;
  return c;
}

obs::Json RuntimeRow(const SimConfig& config, const SimOutcome& out) {
  obs::Json row = ReportRow(config, out);
  row.Set("backend", BackendName(config.backend));
  row.Set("state_digest", Hex(out.state_digest));
  obs::Json shards = obs::Json::Array();
  for (std::uint64_t d : out.shard_digests) shards.Push(Hex(d));
  row.Set("shard_digests", std::move(shards));
  if (config.backend == RuntimeBackend::kThreads) {
    row.Set("runtime_dispatched", out.runtime_dispatched);
    // Nondeterministic wall-clock cost — reported, never compared.
    row.Set("wall_sim_ratio", out.wall_sim_ratio);
  }
  return row;
}

}  // namespace

int Main() {
  PrintBanner("E15", "Real-threads runtime vs the sim oracle",
              "post-paper engineering: sim-as-oracle differential check");

  constexpr SchemeKind kAll[] = {
      SchemeKind::kEagerGroup, SchemeKind::kEagerGroupParallel,
      SchemeKind::kEagerGroupReadLocks, SchemeKind::kEagerMaster,
      SchemeKind::kLazyGroup, SchemeKind::kLazyMaster,
  };

  SimConfig base = Config(kAll[0], kSeeds[0], RuntimeBackend::kSim);
  obs::RunReport report = MakeReport("bench_runtime", base);
  report.SetConfig("backends", "sim,threads");
  report.SetConfig("seeds", static_cast<std::uint64_t>(std::size(kSeeds)));

  std::printf("%22s | %5s | %10s | %16s | %8s | %9s\n", "scheme", "seed",
              "commit/s", "state digest", "dispatch", "wall/sim");
  std::printf("-----------------------+-------+------------+---------------"
              "---+----------+----------\n");

  std::uint64_t mismatches = 0;
  for (SchemeKind kind : kAll) {
    for (std::uint64_t seed : kSeeds) {
      // The sim oracle runs in the parallel sweep pool; the thread
      // backend run spins up its own workers, so it runs by itself.
      SimOutcome sim_out = RunScheme(Config(kind, seed, RuntimeBackend::kSim));
      SimOutcome thr_out =
          RunScheme(Config(kind, seed, RuntimeBackend::kThreads));
      bool equal = sim_out.state_digest == thr_out.state_digest &&
                   sim_out.shard_digests == thr_out.shard_digests &&
                   sim_out.committed == thr_out.committed;
      if (!equal) ++mismatches;
      std::printf("%22s | %5llu | %10.2f | %16s | %8llu | %8.3f%s\n",
                  std::string(SchemeKindName(kind)).c_str(),
                  (unsigned long long)seed, thr_out.Rate(thr_out.committed),
                  Hex(thr_out.state_digest).c_str(),
                  (unsigned long long)thr_out.runtime_dispatched,
                  thr_out.wall_sim_ratio, equal ? "" : "  << MISMATCH");
      report.AddRow(
          RuntimeRow(Config(kind, seed, RuntimeBackend::kSim), sim_out));
      report.AddRow(
          RuntimeRow(Config(kind, seed, RuntimeBackend::kThreads), thr_out));
    }
  }

  // Faulted rows: crash/recovery under WAL group commit, two seeds per
  // scheme. diff_digests.py compares them within the "crash" fault
  // plan; a recovered cluster must drain to the same digests on both
  // backends.
  for (SchemeKind kind : kAll) {
    for (std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{2}}) {
      SimOutcome sim_out =
          RunScheme(FaultedConfig(kind, seed, RuntimeBackend::kSim));
      SimOutcome thr_out =
          RunScheme(FaultedConfig(kind, seed, RuntimeBackend::kThreads));
      bool equal = sim_out.state_digest == thr_out.state_digest &&
                   sim_out.shard_digests == thr_out.shard_digests &&
                   sim_out.committed == thr_out.committed;
      if (!equal) ++mismatches;
      std::printf("%22s | %5llu | %10.2f | %16s | %8llu | crash+wal%s\n",
                  std::string(SchemeKindName(kind)).c_str(),
                  (unsigned long long)seed, thr_out.Rate(thr_out.committed),
                  Hex(thr_out.state_digest).c_str(),
                  (unsigned long long)thr_out.runtime_dispatched,
                  equal ? "" : "  << MISMATCH");
      report.AddRow(
          RuntimeRow(FaultedConfig(kind, seed, RuntimeBackend::kSim),
                     sim_out));
      report.AddRow(
          RuntimeRow(FaultedConfig(kind, seed, RuntimeBackend::kThreads),
                     thr_out));
    }
  }

  std::printf(
      "\n%llu mismatches across %zu (scheme, seed) pairs x 2 backends.\n"
      "The thread backend executes the identical virtual-time event\n"
      "order (turn-based over per-node worker threads), so every digest\n"
      "column above must match the sim oracle's bit for bit.\n",
      (unsigned long long)mismatches,
      std::size(kAll) * (std::size(kSeeds) + 2));

  WriteReport(report, "BENCH_runtime.json");
  if (mismatches > 0) {
    std::fprintf(stderr, "FAIL: %llu digest mismatches\n",
                 (unsigned long long)mismatches);
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}

}  // namespace tdr::bench

int main() { return tdr::bench::Main(); }
