// E15 — the real-threads runtime vs the sim oracle. Runs every scheme
// configuration on both backends for a spread of seeds, checks that
// the final state digests are bit-identical (the differential suite's
// property, re-verified in the bench artifact), and reports what the
// thread backend costs: events dispatched across threads, wall-clock
// per sim-second, worker utilization (profile section).
//
// E18 — epoch-dispatch speedup. An 8-node eager-group workload run
// through the thread backend under {turn, epoch, epoch+steal}
// dispatch, each cell digest-checked against the sim oracle, with the
// wall-clock ratio turn/epoch as the speedup column. The binary FAILS
// if any cell's digests diverge or if the median speedup over the
// seeds falls below 1.5x — parallelism that changed the bits, or
// parallelism that isn't there, both count as regressions.
//
// The report rows carry the digests as hex strings;
// tools/diff_digests.py re-checks the cross-backend equality from the
// JSON alone (E18 rows use their own seed range, so each (scheme,
// seed) group spans the sim row plus all three dispatch cells), so CI
// validates the property end-to-end through the artifact pipeline. A
// mismatch also fails THIS binary (nonzero exit).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/harness.h"

namespace tdr::bench {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 2, 3, 4, 5};

std::string Hex(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx", (unsigned long long)v);
  return buf;
}

const char* BackendName(RuntimeBackend backend) {
  return backend == RuntimeBackend::kThreads ? "threads" : "sim";
}

SimConfig Config(SchemeKind kind, std::uint64_t seed, RuntimeBackend backend) {
  SimConfig c;
  c.kind = kind;
  c.nodes = 4;
  c.db_size = 256;
  c.tps = 25;
  c.actions = 4;
  c.action_time = 0.01;
  c.sim_seconds = 5;
  c.seed = seed;
  c.num_shards = 4;
  c.backend = backend;
  c.drain = true;
  c.run_invariant_checker = true;
  if (kind == SchemeKind::kLazyGroup || kind == SchemeKind::kLazyMaster) {
    c.batch_flush_window = 0.05;
    c.batch_max_updates = 16;
  }
  return c;
}

/// The faulted rows: same workload under a crash/restart of the last
/// node with WAL group-commit durability — the recovery path's digests
/// must ALSO be bit-identical across backends. Rows carry fault_plan
/// ("crash") so diff_digests.py groups them apart from the clean rows.
SimConfig FaultedConfig(SchemeKind kind, std::uint64_t seed,
                        RuntimeBackend backend) {
  SimConfig c = Config(kind, seed, backend);
  c.fault_crash_cycle = true;
  c.durability = DurabilityMode::kGroup;
  return c;
}

// E18's workload: 8 nodes, eager-group, LOCKSTEP arrivals — with a
// fixed 1/tps cadence every node submits at the same virtual instants,
// and constant action/network delays keep the per-node pipelines
// aligned, so the wave planner sees genuine width-8 epochs to run in
// parallel (Poisson arrivals almost never share a timestamp, which
// turns epoch dispatch into turn-based-with-barriers). Seeds live in
// their own range (101+) so diff_digests.py groups E18 rows apart from
// E15's.
constexpr std::uint64_t kSpeedupSeeds[] = {101, 102, 103};

SimConfig SpeedupConfig(std::uint64_t seed) {
  SimConfig c;
  c.kind = SchemeKind::kEagerGroup;
  c.nodes = 8;
  c.db_size = 1024;
  c.tps = 40;
  c.actions = 4;
  c.action_time = 0.005;
  c.sim_seconds = 10;
  c.seed = seed;
  c.num_shards = 4;
  c.poisson_arrivals = false;
  c.drain = true;
  return c;
}

struct SpeedupCell {
  const char* name;
  runtime::ThreadRuntime::DispatchMode mode;
  bool steal;
};

constexpr SpeedupCell kSpeedupCells[] = {
    {"turn", runtime::ThreadRuntime::DispatchMode::kTurnBased, false},
    {"epoch", runtime::ThreadRuntime::DispatchMode::kEpoch, false},
    {"epoch+steal", runtime::ThreadRuntime::DispatchMode::kEpoch, true},
};

SimConfig SpeedupCellConfig(std::uint64_t seed, const SpeedupCell& cell) {
  SimConfig c = SpeedupConfig(seed);
  c.backend = RuntimeBackend::kThreads;
  c.dispatch = cell.mode;
  c.steal_untagged = cell.steal;
  return c;
}

/// E18's performance floor: epoch dispatch must beat turn-based by at
/// least this factor (median over seeds) or the binary fails.
constexpr double kSpeedupGate = 1.5;

obs::Json RuntimeRow(const SimConfig& config, const SimOutcome& out) {
  obs::Json row = ReportRow(config, out);
  row.Set("backend", BackendName(config.backend));
  row.Set("state_digest", Hex(out.state_digest));
  obs::Json shards = obs::Json::Array();
  for (std::uint64_t d : out.shard_digests) shards.Push(Hex(d));
  row.Set("shard_digests", std::move(shards));
  if (config.backend == RuntimeBackend::kThreads) {
    row.Set("runtime_dispatched", out.runtime_dispatched);
    // Nondeterministic wall-clock cost — reported, never compared.
    row.Set("wall_sim_ratio", out.wall_sim_ratio);
  }
  return row;
}

}  // namespace

int Main() {
  PrintBanner("E15", "Real-threads runtime vs the sim oracle",
              "post-paper engineering: sim-as-oracle differential check");

  constexpr SchemeKind kAll[] = {
      SchemeKind::kEagerGroup, SchemeKind::kEagerGroupParallel,
      SchemeKind::kEagerGroupReadLocks, SchemeKind::kEagerMaster,
      SchemeKind::kLazyGroup, SchemeKind::kLazyMaster,
  };

  SimConfig base = Config(kAll[0], kSeeds[0], RuntimeBackend::kSim);
  obs::RunReport report = MakeReport("bench_runtime", base);
  report.SetConfig("backends", "sim,threads");
  report.SetConfig("seeds", static_cast<std::uint64_t>(std::size(kSeeds)));

  std::printf("%22s | %5s | %10s | %16s | %8s | %9s\n", "scheme", "seed",
              "commit/s", "state digest", "dispatch", "wall/sim");
  std::printf("-----------------------+-------+------------+---------------"
              "---+----------+----------\n");

  std::uint64_t mismatches = 0;
  for (SchemeKind kind : kAll) {
    for (std::uint64_t seed : kSeeds) {
      // The sim oracle runs in the parallel sweep pool; the thread
      // backend run spins up its own workers, so it runs by itself.
      SimOutcome sim_out = RunScheme(Config(kind, seed, RuntimeBackend::kSim));
      SimOutcome thr_out =
          RunScheme(Config(kind, seed, RuntimeBackend::kThreads));
      bool equal = sim_out.state_digest == thr_out.state_digest &&
                   sim_out.shard_digests == thr_out.shard_digests &&
                   sim_out.committed == thr_out.committed;
      if (!equal) ++mismatches;
      std::printf("%22s | %5llu | %10.2f | %16s | %8llu | %8.3f%s\n",
                  std::string(SchemeKindName(kind)).c_str(),
                  (unsigned long long)seed, thr_out.Rate(thr_out.committed),
                  Hex(thr_out.state_digest).c_str(),
                  (unsigned long long)thr_out.runtime_dispatched,
                  thr_out.wall_sim_ratio, equal ? "" : "  << MISMATCH");
      report.AddRow(
          RuntimeRow(Config(kind, seed, RuntimeBackend::kSim), sim_out));
      report.AddRow(
          RuntimeRow(Config(kind, seed, RuntimeBackend::kThreads), thr_out));
    }
  }

  // Faulted rows: crash/recovery under WAL group commit, two seeds per
  // scheme. diff_digests.py compares them within the "crash" fault
  // plan; a recovered cluster must drain to the same digests on both
  // backends.
  for (SchemeKind kind : kAll) {
    for (std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{2}}) {
      SimOutcome sim_out =
          RunScheme(FaultedConfig(kind, seed, RuntimeBackend::kSim));
      SimOutcome thr_out =
          RunScheme(FaultedConfig(kind, seed, RuntimeBackend::kThreads));
      bool equal = sim_out.state_digest == thr_out.state_digest &&
                   sim_out.shard_digests == thr_out.shard_digests &&
                   sim_out.committed == thr_out.committed;
      if (!equal) ++mismatches;
      std::printf("%22s | %5llu | %10.2f | %16s | %8llu | crash+wal%s\n",
                  std::string(SchemeKindName(kind)).c_str(),
                  (unsigned long long)seed, thr_out.Rate(thr_out.committed),
                  Hex(thr_out.state_digest).c_str(),
                  (unsigned long long)thr_out.runtime_dispatched,
                  equal ? "" : "  << MISMATCH");
      report.AddRow(
          RuntimeRow(FaultedConfig(kind, seed, RuntimeBackend::kSim),
                     sim_out));
      report.AddRow(
          RuntimeRow(FaultedConfig(kind, seed, RuntimeBackend::kThreads),
                     thr_out));
    }
  }

  std::printf(
      "\n%llu mismatches across %zu (scheme, seed) pairs x 2 backends.\n"
      "The thread backend executes the identical virtual-time event\n"
      "order (turn-based over per-node worker threads), so every digest\n"
      "column above must match the sim oracle's bit for bit.\n",
      (unsigned long long)mismatches,
      std::size(kAll) * (std::size(kSeeds) + 2));

  // E18: the epoch-dispatch speedup sweep. Same oracle discipline as
  // above — every thread cell must reproduce the sim digests — plus a
  // performance gate: epoch dispatch must actually buy wall-clock time
  // over turn-based on the wide 8-node workload.
  PrintBanner("E18", "Epoch dispatch speedup (8-node eager-group)",
              "turn vs epoch vs epoch+steal; digests re-checked per cell");

  std::printf("%5s | %10s | %10s | %12s | %8s | %16s\n", "seed", "turn s",
              "epoch s", "epoch+steal", "speedup", "state digest");
  std::printf("------+------------+------------+--------------+----------+"
              "-----------------\n");

  std::vector<double> speedups;
  for (std::uint64_t seed : kSpeedupSeeds) {
    SimConfig oracle_cfg = SpeedupConfig(seed);
    SimOutcome oracle = RunScheme(oracle_cfg);
    obs::Json oracle_row = RuntimeRow(oracle_cfg, oracle);
    oracle_row.Set("section", "epoch_speedup");
    report.AddRow(std::move(oracle_row));

    double wall[std::size(kSpeedupCells)] = {};
    std::uint64_t digest = 0;
    bool seed_ok = true;
    for (std::size_t i = 0; i < std::size(kSpeedupCells); ++i) {
      SimConfig cfg = SpeedupCellConfig(seed, kSpeedupCells[i]);
      SimOutcome out = RunScheme(cfg);
      wall[i] = out.runtime_wall_seconds;
      digest = out.state_digest;
      bool equal = out.state_digest == oracle.state_digest &&
                   out.shard_digests == oracle.shard_digests &&
                   out.committed == oracle.committed;
      if (!equal) {
        ++mismatches;
        seed_ok = false;
      }
      obs::Json row = RuntimeRow(cfg, out);
      row.Set("section", "epoch_speedup");
      // Wall-clock columns are machine-dependent — reported for the
      // E18 table, ignored by the regression checker.
      row.Set("runtime_wall_seconds", out.runtime_wall_seconds);
      if (i > 0 && wall[i] > 0) {
        row.Set("speedup_vs_turn", wall[0] / wall[i]);
      }
      report.AddRow(std::move(row));
    }
    double speedup = wall[1] > 0 ? wall[0] / wall[1] : 0;
    speedups.push_back(speedup);
    std::printf("%5llu | %10.3f | %10.3f | %12.3f | %7.2fx | %16s%s\n",
                (unsigned long long)seed, wall[0], wall[1], wall[2], speedup,
                Hex(digest).c_str(), seed_ok ? "" : "  << MISMATCH");
  }

  std::sort(speedups.begin(), speedups.end());
  double median_speedup = speedups[speedups.size() / 2];
  std::printf(
      "\nmedian epoch speedup over turn-based: %.2fx (gate: >= %.1fx)\n",
      median_speedup, kSpeedupGate);

  WriteReport(report, "BENCH_runtime.json");
  if (mismatches > 0) {
    std::fprintf(stderr, "FAIL: %llu digest mismatches\n",
                 (unsigned long long)mismatches);
    return EXIT_FAILURE;
  }
  if (median_speedup < kSpeedupGate) {
    std::fprintf(stderr, "FAIL: median epoch speedup %.2fx below %.1fx\n",
                 median_speedup, kSpeedupGate);
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}

}  // namespace tdr::bench

int main() { return tdr::bench::Main(); }
