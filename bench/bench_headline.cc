// E12 — The abstract's headline: "Update anywhere-anytime-anyway
// transactional replication has unstable behavior as the workload scales
// up: a ten-fold increase in nodes and traffic gives a thousand fold
// increase in deadlocks or reconciliations. Master copy replication
// schemes reduce this problem."
//
// One table, all schemes, N in {2, 5, 10}, every rate normalized to its
// own N=2 value (at N=1 failure rates are vanishingly small in both the
// model and the simulation — there is nothing robust to divide by). The
// model ratios from 2 -> 10 are (10/2)^3 = 125x for the update-anywhere
// schemes and (10/2)^2 = 25x for master-copy schemes; the 1 -> 10 story
// is the abstract's 1000x vs 100x.
//
// BENCH_headline.json is a tdr.run_report.v1 document (tools/
// check_report.py validates it in ctest): the scaling table and the
// robustness column as rows, the retained-throughput map as invariants,
// and the metrics-instrumentation overhead measurement as its own row.

#include <chrono>
#include <cstdio>
#include <map>
#include <string>

#include "bench/harness.h"

namespace tdr::bench {
namespace {

double Normalized(double value, double base) {
  return base > 0 ? value / base : 0;
}

// Robustness column: the same workload under faults — 1% message drop
// plus one partition/heal cycle — with the invariant checker armed (a
// violation aborts the binary). The report records the throughput
// retained under faults so regressions in robustness overhead are
// tracked like any perf number.
void RunFaultedColumn(obs::RunReport* report) {
  std::printf("\nRobustness under faults (N=5, 1%% drop + one partition/"
              "heal cycle,\ninvariants machine-checked throughout; "
              "overhead = faulted/clean\ncommitted rate):\n\n");
  SimConfig base;
  base.nodes = 5;
  base.db_size = 800;
  base.tps = 4;
  base.actions = 5;
  base.action_time = 0.01;
  base.sim_seconds = 1000;

  const SchemeKind kKinds[] = {SchemeKind::kEagerGroup,
                               SchemeKind::kLazyGroup,
                               SchemeKind::kLazyMaster};
  std::vector<SimConfig> grid;
  for (SchemeKind kind : kKinds) {
    SimConfig clean = base;
    clean.kind = kind;
    if (kind == SchemeKind::kLazyMaster) clean.db_size = 300;
    grid.push_back(clean);
    SimConfig faulted = clean;
    faulted.fault_drop_probability = 0.01;
    faulted.fault_partition_cycle = true;
    grid.push_back(faulted);
  }
  std::vector<SimOutcome> outcomes = RunSweep(grid);

  std::printf("%-12s | %10s | %10s | %8s | %9s | %5s\n", "scheme",
              "clean c/s", "fault c/s", "retained", "unavail", "viol");
  std::printf("-------------+------------+------------+----------+-----------"
              "+------\n");
  std::map<std::string, double> clean_rates, faulted_rates, retained;
  std::uint64_t total_violations = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    const SimOutcome& clean = outcomes[2 * i];
    const SimOutcome& faulted = outcomes[2 * i + 1];
    std::string name(SchemeKindName(kKinds[i]));
    clean_rates[name] = clean.Rate(clean.committed);
    faulted_rates[name] = faulted.Rate(faulted.committed);
    retained[name] = Normalized(faulted_rates[name], clean_rates[name]);
    total_violations += faulted.invariant_violations;
    std::printf("%-12s | %10.2f | %10.2f | %7.1f%% | %9llu | %5llu\n",
                name.c_str(), clean_rates[name], faulted_rates[name],
                100 * retained[name],
                (unsigned long long)faulted.unavailable,
                (unsigned long long)faulted.invariant_violations);
    for (std::size_t j = 0; j < 2; ++j) {
      obs::Json row = ReportRow(grid[2 * i + j], outcomes[2 * i + j]);
      row.Set("table", obs::Json("faults"));
      row.Set("faulted", obs::Json(j == 1));
      report->AddRow(std::move(row));
    }
  }

  obs::Json retained_json = obs::Json::Object();
  for (const auto& [name, ratio] : retained) {
    retained_json.Set(name, obs::Json(ratio));
  }
  obs::Json invariants = obs::Json::Object();
  invariants.Set("faulted_violations",
                 obs::Json(static_cast<std::int64_t>(total_violations)));
  invariants.Set("throughput_retained_under_faults",
                 std::move(retained_json));
  report->SetInvariants(std::move(invariants));
  std::printf("\n(an invariant violation under faults aborts this binary, "
              "so a nonzero\n'viol' column can never ship)\n");
}

// Instrumentation overhead gate: the same clean run with the full
// registry (cached handles, histogram of wait times, per-node labeled
// submit counters) versus with no registry at all (every handle a
// no-op). Wall-clock, so nondeterministic — the row records the ratio,
// the console prints the verdict. Budget: < 5%.
void RunOverheadColumn(obs::RunReport* report) {
  SimConfig config;
  config.kind = SchemeKind::kEagerGroup;
  config.nodes = 5;
  config.db_size = 800;
  config.tps = 4;
  config.actions = 5;
  config.action_time = 0.01;
  config.sim_seconds = 400;

  auto wall_seconds = [](const SimConfig& c) {
    auto t0 = std::chrono::steady_clock::now();
    SimOutcome out = RunScheme(c);
    auto t1 = std::chrono::steady_clock::now();
    (void)out;
    return std::chrono::duration<double>(t1 - t0).count();
  };
  // Warm-up run absorbs first-touch allocation and cache effects, then
  // alternate baseline/instrumented and keep each variant's best time
  // (min-of-k is the standard low-noise wall-clock estimator).
  SimConfig noop = config;
  noop.enable_metrics = false;
  (void)wall_seconds(config);
  double best_instr = 1e100, best_noop = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    double t = wall_seconds(noop);
    if (t < best_noop) best_noop = t;
    t = wall_seconds(config);
    if (t < best_instr) best_instr = t;
  }
  double ratio = best_noop > 0 ? best_instr / best_noop : 1.0;
  std::printf("\nMetrics instrumentation overhead (same run, registry vs "
              "no-op handles,\nmin of 3 wall-clock reps): %.3fs vs %.3fs "
              "= %+.1f%% (budget < 5%%)\n",
              best_instr, best_noop, 100 * (ratio - 1));

  obs::Json row = obs::Json::Object();
  row.Set("table", obs::Json("overhead"));
  row.Set("wall_instrumented_seconds", obs::Json(best_instr));
  row.Set("wall_noop_seconds", obs::Json(best_noop));
  row.Set("overhead_ratio", obs::Json(ratio));
  report->AddRow(std::move(row));
}

void Main() {
  PrintBanner("E12", "Headline scaling table",
              "Abstract + Sections 3-5 summary");
  SimConfig base;
  base.db_size = 800;
  base.tps = 4;
  base.actions = 5;
  base.action_time = 0.01;

  obs::RunReport report = MakeReport("headline", base);

  std::printf("Failure events/second, normalized to each scheme's 2-node "
              "rate.\nfailure = deadlock (eager, lazy-master) or "
              "reconciliation (lazy-group).\nModel ratios 2->10: 125x "
              "(update anywhere, cubic) vs 25x (master, quadratic);\n"
              "extrapolated 1->10: 1000x vs 100x, the abstract's claim.\n"
              "(Each column runs at its own contention level so its rare\n"
              "events are measurable; ratios are within-column.)\n\n");
  std::printf("%5s | %-23s | %-23s | %-23s\n", "", "eager group (Eq.12)",
              "lazy group (Eq.14)", "lazy master (Eq.19)");
  std::printf("%5s | %11s %11s | %11s %11s | %11s %11s\n", "nodes", "model",
              "measured", "model", "measured", "model", "measured");
  std::printf("------+-------------------------+------------------------"
              "-+-------------------------\n");

  // All nine (scheme, N) cells run as one parallel sweep.
  const std::vector<std::uint32_t> kNodes{2, 5, 10};
  std::vector<SimConfig> grid;
  for (std::uint32_t nodes : kNodes) {
    SimConfig config = base;
    config.nodes = nodes;

    // Longer windows at small N (rare events), shorter at N=10 (the
    // cluster is saturating — that IS the instability).
    config.kind = SchemeKind::kEagerGroup;
    config.sim_seconds = nodes >= 10 ? 400 : (nodes >= 5 ? 3000 : 8000);
    grid.push_back(config);

    config.kind = SchemeKind::kLazyGroup;
    grid.push_back(config);

    // Lazy-master deadlocks are ~30x rarer at the same parameters; its
    // column runs a hotter database (still model-regime) so the N=2
    // baseline has events. Ratios stay within-column.
    config.kind = SchemeKind::kLazyMaster;
    config.db_size = 300;
    config.sim_seconds = nodes >= 10 ? 1500 : (nodes >= 5 ? 3000 : 8000);
    grid.push_back(config);
  }
  std::vector<SimOutcome> outcomes = RunSweep(grid);

  double eager2 = 0, lazy2 = 0, master2 = 0;
  double eager2_m = 0, lazy2_m = 0, master2_m = 0;
  for (std::size_t i = 0; i < kNodes.size(); ++i) {
    std::uint32_t nodes = kNodes[i];
    const SimOutcome& eager = outcomes[3 * i];
    const SimOutcome& lazy = outcomes[3 * i + 1];
    const SimOutcome& master = outcomes[3 * i + 2];
    analytic::ModelParams p = ToModelParams(grid[3 * i]);
    analytic::ModelParams pm = ToModelParams(grid[3 * i + 2]);

    double em = analytic::EagerDeadlockRate(p);
    double lm = analytic::LazyGroupReconciliationRate(p);
    double mm = analytic::LazyMasterDeadlockRate(pm);
    if (nodes == 2) {
      eager2 = em;
      lazy2 = lm;
      master2 = mm;
      eager2_m = eager.deadlock_rate();
      lazy2_m = lazy.reconciliation_rate();
      master2_m = master.deadlock_rate();
    }
    const double models[] = {Normalized(em, eager2), Normalized(lm, lazy2),
                             Normalized(mm, master2)};
    const double measured[] = {Normalized(eager.deadlock_rate(), eager2_m),
                               Normalized(lazy.reconciliation_rate(), lazy2_m),
                               Normalized(master.deadlock_rate(), master2_m)};
    std::printf("%5u | %10.1fx %10.1fx | %10.1fx %10.1fx | %10.1fx "
                "%10.1fx\n",
                nodes, models[0], measured[0], models[1], measured[1],
                models[2], measured[2]);
    for (std::size_t j = 0; j < 3; ++j) {
      obs::Json row = ReportRow(grid[3 * i + j], outcomes[3 * i + j]);
      row.Set("table", obs::Json("scaling"));
      row.Set("model_ratio_vs_n2", obs::Json(models[j]));
      row.Set("measured_ratio_vs_n2", obs::Json(measured[j]));
      report.AddRow(std::move(row));
    }
  }
  std::printf(
      "\nReading the last row: lazy-master tracks its quadratic model\n"
      "(~25x). Eager group OVERSHOOTS its cubic model via the\n"
      "same-object replica-ordering race (E5's note) — worse than\n"
      "advertised. Lazy group UNDERSHOOTS its headline ratio for the\n"
      "opposite reason: its N=2 baseline is already cascade-inflated and\n"
      "by N=10 nearly every replica update needs reconciliation — the\n"
      "rate hits its ceiling (total system delusion; see the divergent\n"
      "slot counts in bench_lazy_group). Both distortions are the\n"
      "instability the abstract warns about, arriving even sooner than\n"
      "the first-order model predicts. The two-tier scheme inherits the\n"
      "master column for its base transactions and drives reconciliation\n"
      "to zero with commutative transactions (bench_two_tier).\n");

  RunFaultedColumn(&report);
  RunOverheadColumn(&report);
  WriteReport(report, "BENCH_headline.json");
}

}  // namespace
}  // namespace tdr::bench

int main() { tdr::bench::Main(); }
