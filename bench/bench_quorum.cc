// Quorum availability study — the §3 availability mechanism ("eager
// replication systems allow updates among members of the quorum or
// cluster", citing Gifford's weighted voting).
//
// Measures, across failure patterns on a 5-node cluster:
//  * write availability (fraction of submitted transactions that could
//    run) for plain eager vs majority-quorum eager;
//  * correctness: quorum reads always return the latest committed value
//    (r + w > v) and no committed increment is ever lost, even with
//    nodes leaving and rejoining mid-run;
//  * the catch-up volume rejoining replicas absorb.

#include <cstdio>
#include <memory>

#include "bench/harness.h"
#include "net/network.h"
#include "obs/run_report.h"
#include "replication/quorum.h"

namespace tdr::bench {
namespace {

struct AvailResult {
  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;
  std::uint64_t unavailable = 0;
  std::int64_t final_value = 0;
  std::int64_t committed_delta = 0;
  std::uint64_t catch_up = 0;

  double availability() const {
    return submitted > 0
               ? static_cast<double>(committed) /
                     static_cast<double>(submitted)
               : 0;
  }
};

AvailResult Run(bool quorum_mode, double disconnect_seconds) {
  Cluster::Options copts;
  copts.num_nodes = 5;
  copts.db_size = 64;
  copts.action_time = SimTime::Millis(5);
  copts.seed = 13;
  Cluster cluster(copts);
  std::unique_ptr<ReplicationScheme> scheme;
  QuorumEagerScheme* quorum = nullptr;
  if (quorum_mode) {
    auto q = std::make_unique<QuorumEagerScheme>(&cluster);
    quorum = q.get();
    scheme = std::move(q);
  } else {
    scheme = std::make_unique<EagerGroupScheme>(&cluster);
  }

  Rng rng = cluster.ForkRng();
  AvailResult result;
  // Nodes 3 and 4 cycle connectivity (a rolling minority failure).
  std::vector<std::unique_ptr<ConnectivitySchedule>> schedules;
  for (NodeId id : {3u, 4u}) {
    ConnectivitySchedule::Options sopts;
    sopts.time_between_disconnects = SimTime::Seconds(disconnect_seconds);
    sopts.disconnected_time = SimTime::Seconds(disconnect_seconds);
    sopts.exponential = true;
    schedules.push_back(std::make_unique<ConnectivitySchedule>(
        &cluster.sim(), &cluster.net(), id, sopts, rng.Fork()));
    schedules.back()->Start();
  }
  // Increment workload from the three stable nodes.
  std::vector<std::unique_ptr<OpenLoopArrivals>> arrivals;
  for (NodeId origin = 0; origin < 3; ++origin) {
    OpenLoopArrivals::Options aopts;
    aopts.tps = 5;
    auto gen_rng = std::make_shared<Rng>(rng.Fork());
    arrivals.push_back(std::make_unique<OpenLoopArrivals>(
        &cluster.sim(), aopts, rng.Fork(),
        [&result, s = scheme.get(), origin, gen_rng]() {
          ++result.submitted;
          ObjectId oid = gen_rng->UniformInt(64);
          s->Submit(origin, Program({Op::Add(oid, 1)}),
                    [&result](const TxnResult& r) {
                      if (r.outcome == TxnOutcome::kCommitted) {
                        ++result.committed;
                        ++result.committed_delta;
                      } else if (r.outcome == TxnOutcome::kUnavailable) {
                        ++result.unavailable;
                      }
                    });
        }));
    arrivals.back()->Start();
  }
  cluster.sim().RunUntil(SimTime::Seconds(300));
  for (auto& a : arrivals) a->Stop();
  for (auto& s : schedules) s->Stop();
  cluster.net().SetConnected(3, true);
  cluster.net().SetConnected(4, true);
  cluster.sim().Run();

  // Total of all objects via quorum reads (or node 0 for plain eager).
  for (ObjectId oid = 0; oid < 64; ++oid) {
    if (quorum != nullptr) {
      auto latest = quorum->ReadLatest(oid);
      result.final_value += latest.ok() ? latest->value.AsScalar() : 0;
    } else {
      result.final_value +=
          cluster.node(0)->store().GetUnchecked(oid).value.AsScalar();
    }
  }
  if (quorum != nullptr) result.catch_up = quorum->catch_up_objects();
  return result;
}

}  // namespace

void Main() {
  PrintBanner("Q1", "Quorum availability under rolling failures",
              "Section 3 availability discussion (Gifford voting)");
  std::printf("5 nodes, nodes 3-4 cycling with mean up=down=D, 15 "
              "increments/s submitted for 300s.\n\n");
  std::printf("%6s | %-26s | %-26s\n", "",
              "plain eager (all-or-nothing)", "majority quorum (w=3)");
  std::printf("%6s | %9s %9s %6s | %9s %9s %6s %8s\n", "D (s)", "avail",
              "commit", "lost", "avail", "commit", "lost", "catchup");
  std::printf("-------+----------------------------+------------------"
              "-----------------\n");
  obs::RunReport report("quorum");
  report.SetConfig("nodes", obs::Json(5))
      .SetConfig("db_size", obs::Json(64))
      .SetConfig("tps_total", obs::Json(15.0))
      .SetConfig("window_seconds", obs::Json(300.0));
  std::int64_t total_lost = 0;
  for (double d : {10.0, 30.0, 120.0}) {
    AvailResult plain = Run(false, d);
    AvailResult quorum = Run(true, d);
    std::printf("%6.0f | %8.1f%% %9llu %6lld | %8.1f%% %9llu %6lld "
                "%8llu\n",
                d, 100 * plain.availability(),
                (unsigned long long)plain.committed,
                (long long)(plain.committed_delta - plain.final_value),
                100 * quorum.availability(),
                (unsigned long long)quorum.committed,
                (long long)(quorum.committed_delta - quorum.final_value),
                (unsigned long long)quorum.catch_up);
    for (int mode = 0; mode < 2; ++mode) {
      const AvailResult& r = mode == 0 ? plain : quorum;
      std::int64_t lost = r.committed_delta - r.final_value;
      total_lost += mode == 1 ? lost : 0;  // only quorum promises zero
      obs::Json row = obs::Json::Object();
      row.Set("scheme", obs::Json(mode == 0 ? "eager_group" : "quorum"))
          .Set("disconnect_seconds", obs::Json(d))
          .Set("submitted", obs::Json(r.submitted))
          .Set("committed", obs::Json(r.committed))
          .Set("unavailable", obs::Json(r.unavailable))
          .Set("availability", obs::Json(r.availability()))
          .Set("lost_increments", obs::Json(lost))
          .Set("catch_up_objects", obs::Json(r.catch_up));
      report.AddRow(std::move(row));
    }
  }
  report.SetInvariants(obs::Json::Object().Set(
      "quorum_lost_increments_total", obs::Json(total_lost)));
  WriteReport(report, "BENCH_quorum.json");
  std::printf(
      "\nPlain eager refuses all updates whenever anyone is down; the\n"
      "majority quorum stays ~100%% available through minority failures\n"
      "and loses nothing: rejoining replicas catch up and quorum reads\n"
      "always intersect the last write quorum. 'Lost' compares the sum\n"
      "of committed increments with the database total (0 = exact).\n");
}

}  // namespace tdr::bench

int main() { tdr::bench::Main(); }
