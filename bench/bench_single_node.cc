// E4 — Equations (2)-(5): single-node wait probability, deadlock
// probability, and node deadlock rate, measured against the closed form.
//
// Sweeps the transaction size (Actions) at fixed TPS/DB_Size, the axis
// along which the model predicts the sharpest growth (PW ~ Actions^3
// through equation (2)'s Transactions term, PD ~ Actions^5).

#include <cstdio>

#include "bench/harness.h"

namespace tdr::bench {

void Main() {
  PrintBanner("E4", "Single-node waits and deadlocks",
              "Equations (2)-(5) (p. 177)");
  SimConfig base;
  base.kind = SchemeKind::kEagerGroup;  // N=1: plain single-node locking
  base.nodes = 1;
  base.db_size = 500;
  base.tps = 40;
  base.action_time = 0.01;
  base.sim_seconds = 2000;

  std::printf("DB_Size=%llu TPS=%.0f Action_Time=%.0fms window=%.0fs\n\n",
              (unsigned long long)base.db_size, base.tps,
              base.action_time * 1000, base.sim_seconds);
  std::printf("%7s | %-23s | %-23s\n", "",
              "P(wait) per txn", "node deadlock rate (/s)");
  std::printf("%7s | %11s %11s | %11s %11s\n", "actions", "Eq.(2)",
              "measured", "Eq.(5)", "measured");
  std::printf("--------+-------------------------+---------------------"
              "----\n");

  const std::vector<std::uint32_t> kActions{2, 4, 6, 8};
  std::vector<SimConfig> grid;
  for (std::uint32_t actions : kActions) {
    SimConfig config = base;
    config.actions = actions;
    grid.push_back(config);
  }
  std::vector<SimOutcome> outcomes = RunSweep(grid);
  std::vector<std::pair<double, double>> deadlock_points;
  std::vector<double> model_rates;
  for (std::size_t i = 0; i < kActions.size(); ++i) {
    std::uint32_t actions = kActions[i];
    const SimOutcome& out = outcomes[i];
    analytic::ModelParams p = ToModelParams(grid[i]);
    double measured_pw =
        out.submitted > 0
            ? static_cast<double>(out.waits) /
                  static_cast<double>(out.submitted)
            : 0;
    std::printf("%7u | %11.4f %11.4f | %11.4f %11.4f\n", actions,
                analytic::SingleNodeWaitProbability(p), measured_pw,
                analytic::SingleNodeDeadlockRate(p), out.deadlock_rate());
    deadlock_points.emplace_back(actions, out.deadlock_rate());
    model_rates.push_back(analytic::SingleNodeDeadlockRate(p));
  }
  std::printf(
      "\nMeasured deadlock-rate growth exponent in Actions: %.2f "
      "(model: 5.00 — \"the fifth power of the transaction size\")\n",
      FitPowerLawExponent(deadlock_points));
}

}  // namespace tdr::bench

int main() { tdr::bench::Main(); }
