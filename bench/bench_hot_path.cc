// E14 — hot-path cost per committed transaction.
//
// The paper's scale argument is quantitative, so the simulator's own
// per-transaction constant factors bound how far the sweeps can scale.
// This bench measures those constants directly for every scheme class:
// wall-clock nanoseconds per committed transaction and heap
// allocations per committed transaction, over a steady-state window
// that starts after a warmup run has filled the pools.
//
// Allocation counting comes from util/alloc_audit.h: this binary links
// tdr_alloc_audit, which replaces global operator new/delete with
// counting versions. The EXPERIMENTS.md E14 table and the
// alloc-regression gate (tests/alloc_audit_test) both key off the
// numbers reported here; BENCH_hot_path.json is schema-checked in CI.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "obs/run_report.h"
#include "replication/driver.h"
#include "replication/eager.h"
#include "replication/lazy_group.h"
#include "replication/lazy_master.h"
#include "replication/ownership.h"
#include "replication/quorum.h"
#include "util/alloc_audit.h"

namespace tdr::bench {
namespace {

constexpr std::uint32_t kNodes = 4;
constexpr std::uint64_t kDbSize = 10000;
constexpr double kTpsPerNode = 120;
constexpr std::uint32_t kActions = 4;
constexpr double kActionTime = 0.005;  // 5 ms
constexpr double kWarmupSeconds = 5;
constexpr double kMeasureSeconds = 20;

enum class HotScheme {
  kEagerGroup,
  kLazyGroup,
  kLazyGroupBatched,
  kLazyMaster,
  kLazyMasterBatched,
  kQuorum,
};

struct HotConfig {
  const char* name;
  HotScheme scheme;
  /// The configuration the ≥1.3x throughput acceptance gate is
  /// measured on (EXPERIMENTS.md E14).
  bool headline = false;
};

struct HotResult {
  std::uint64_t committed = 0;
  std::uint64_t deadlocks = 0;
  double sim_rate = 0;             // committed / sim-second
  double wall_seconds = 0;         // wall time of the measured window
  double ns_per_committed = 0;
  double allocs_per_committed = 0;
  double bytes_per_committed = 0;
};

HotResult RunHot(const HotConfig& config) {
  Cluster::Options copts;
  copts.num_nodes = kNodes;
  copts.db_size = kDbSize;
  copts.action_time = SimTime::Seconds(kActionTime);
  copts.seed = 42;
  // No metrics registry: measure the bare hot path, as bench_headline's
  // overhead baseline does.
  copts.enable_metrics = false;
  Cluster cluster(copts);

  std::vector<NodeId> all_nodes(kNodes);
  for (std::uint32_t i = 0; i < kNodes; ++i) all_nodes[i] = i;
  Ownership ownership = Ownership::RoundRobin(kDbSize, all_nodes);

  BatchShipper::Options batched;
  batched.flush_window = SimTime::Millis(50);

  std::unique_ptr<ReplicationScheme> scheme;
  switch (config.scheme) {
    case HotScheme::kEagerGroup:
      scheme = std::make_unique<EagerGroupScheme>(&cluster);
      break;
    case HotScheme::kLazyGroup:
      scheme = std::make_unique<LazyGroupScheme>(&cluster);
      break;
    case HotScheme::kLazyGroupBatched: {
      LazyGroupScheme::Options o;
      o.batch = batched;
      scheme = std::make_unique<LazyGroupScheme>(&cluster, o);
      break;
    }
    case HotScheme::kLazyMaster:
      scheme = std::make_unique<LazyMasterScheme>(&cluster, &ownership);
      break;
    case HotScheme::kLazyMasterBatched: {
      LazyMasterScheme::Options o;
      o.batch = batched;
      scheme =
          std::make_unique<LazyMasterScheme>(&cluster, &ownership, o);
      break;
    }
    case HotScheme::kQuorum:
      scheme = std::make_unique<QuorumEagerScheme>(&cluster);
      break;
  }

  WorkloadDriver::Options dopts;
  dopts.tps_per_node = kTpsPerNode;
  dopts.workload.db_size = kDbSize;
  dopts.workload.actions = kActions;
  dopts.seconds = kMeasureSeconds;
  WorkloadDriver driver(&cluster, scheme.get(), dopts);

  // Warmup window: reaches open-loop steady state and fills every pool
  // (event slots, messages, lock waiters, inflight txns, batches).
  // Only the second window is measured.
  (void)driver.Run();

  // TDR_TRACE_ALLOCS=N dumps backtraces for the first N measured-window
  // allocations of every config — how to localize a regression when the
  // allocs/txn column stops reading 0.
  if (const char* trace = std::getenv("TDR_TRACE_ALLOCS")) {
    std::fprintf(stderr, "[alloc-audit] config %s\n", config.name);
    TraceNextAllocations(std::atoll(trace));
  }

  AllocScope scope;
  auto wall_start = std::chrono::steady_clock::now();
  WorkloadDriver::Outcome out = driver.Run();
  auto wall_end = std::chrono::steady_clock::now();

  HotResult result;
  result.committed = out.committed;
  result.deadlocks = out.deadlocks;
  result.sim_rate = out.committed_rate();
  result.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  if (out.committed > 0) {
    auto denom = static_cast<double>(out.committed);
    result.ns_per_committed = result.wall_seconds * 1e9 / denom;
    result.allocs_per_committed =
        static_cast<double>(scope.allocations()) / denom;
    result.bytes_per_committed = static_cast<double>(scope.bytes()) / denom;
  }
  return result;
}

int Main() {
  PrintBanner("E14", "Hot-path cost per committed transaction",
              "constant factors behind every sweep (ROADMAP north star)");
  if (!AllocAuditLinked()) {
    std::printf("WARNING: alloc audit hooks not linked; "
                "allocation columns will read 0\n");
  }

  const std::vector<HotConfig> configs = {
      {"eager-group", HotScheme::kEagerGroup},
      {"lazy-group", HotScheme::kLazyGroup},
      {"lazy-group-batched", HotScheme::kLazyGroupBatched, true},
      {"lazy-master", HotScheme::kLazyMaster},
      {"lazy-master-batched", HotScheme::kLazyMasterBatched},
      {"quorum", HotScheme::kQuorum},
  };

  std::printf("%-20s %10s %10s %12s %12s %12s\n", "scheme", "committed",
              "sim tps", "ns/txn", "allocs/txn", "bytes/txn");

  obs::RunReport report("hot_path");
  report.SetConfig("nodes", obs::Json(std::uint64_t{kNodes}))
      .SetConfig("db_size", obs::Json(std::uint64_t{kDbSize}))
      .SetConfig("tps_per_node", obs::Json(kTpsPerNode))
      .SetConfig("actions", obs::Json(std::uint64_t{kActions}))
      .SetConfig("action_time", obs::Json(kActionTime))
      .SetConfig("warmup_seconds", obs::Json(kWarmupSeconds))
      .SetConfig("measure_seconds", obs::Json(kMeasureSeconds))
      .SetConfig("alloc_audit_linked", obs::Json(AllocAuditLinked()));

  for (const HotConfig& config : configs) {
    HotResult r = RunHot(config);
    std::printf("%-20s %10llu %10.1f %12.0f %12.2f %12.1f\n", config.name,
                static_cast<unsigned long long>(r.committed), r.sim_rate,
                r.ns_per_committed, r.allocs_per_committed,
                r.bytes_per_committed);

    obs::Json row = obs::Json::Object();
    row.Set("scheme", obs::Json(config.name));
    row.Set("headline", obs::Json(config.headline));
    row.Set("committed", obs::Json(r.committed));
    row.Set("deadlocks", obs::Json(r.deadlocks));
    row.Set("sim_committed_rate", obs::Json(r.sim_rate));
    row.Set("wall_seconds", obs::Json(r.wall_seconds));
    row.Set("ns_per_committed", obs::Json(r.ns_per_committed));
    row.Set("allocs_per_committed", obs::Json(r.allocs_per_committed));
    row.Set("bytes_per_committed", obs::Json(r.bytes_per_committed));
    report.AddRow(std::move(row));
  }

  WriteReport(report, "BENCH_hot_path.json");
  return 0;
}

}  // namespace
}  // namespace tdr::bench

int main() { return tdr::bench::Main(); }
