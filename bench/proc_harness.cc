#include "bench/proc_harness.h"

#include <cstdlib>
#include <optional>
#include <sstream>

#include "proc/frame.h"
#include "proc/net_bridge.h"
#include "proc/process_coordinator.h"
#include "util/logging.h"

namespace tdr::bench {

namespace {

constexpr int kConfigVersion = 1;

void PutU64(std::string* out, const char* key, std::uint64_t v) {
  out->append(
      StrPrintf("%s=%llu\n", key, static_cast<unsigned long long>(v)));
}

void PutF64(std::string* out, const char* key, double v) {
  out->append(StrPrintf("%s=%.17g\n", key, v));
}

}  // namespace

std::string SerializeSimConfig(const SimConfig& c) {
  std::string out;
  PutU64(&out, "version", kConfigVersion);
  PutU64(&out, "kind", static_cast<std::uint64_t>(c.kind));
  PutU64(&out, "nodes", c.nodes);
  PutU64(&out, "db_size", c.db_size);
  PutF64(&out, "tps", c.tps);
  PutU64(&out, "actions", c.actions);
  PutF64(&out, "action_time", c.action_time);
  PutF64(&out, "sim_seconds", c.sim_seconds);
  PutU64(&out, "seed", c.seed);
  PutF64(&out, "mix_write", c.mix.write);
  PutF64(&out, "mix_add", c.mix.add);
  PutF64(&out, "mix_subtract", c.mix.subtract);
  PutF64(&out, "mix_append", c.mix.append);
  PutF64(&out, "mix_read", c.mix.read);
  PutU64(&out, "num_shards", c.num_shards);
  PutF64(&out, "batch_flush_window", c.batch_flush_window);
  PutU64(&out, "batch_max_updates", c.batch_max_updates);
  PutF64(&out, "hot_fraction", c.hot_fraction);
  PutU64(&out, "hot_shards", c.hot_shards);
  PutU64(&out, "skew_shards", c.skew_shards);
  PutF64(&out, "fault_drop_probability", c.fault_drop_probability);
  PutU64(&out, "fault_partition_cycle", c.fault_partition_cycle ? 1 : 0);
  PutU64(&out, "fault_crash_cycle", c.fault_crash_cycle ? 1 : 0);
  PutU64(&out, "durability", static_cast<std::uint64_t>(c.durability));
  PutF64(&out, "wal_flush_latency", c.wal_flush_latency);
  PutF64(&out, "wal_group_window", c.wal_group_window);
  PutU64(&out, "wal_group_max_records", c.wal_group_max_records);
  PutU64(&out, "wal_segment_bytes", c.wal_segment_bytes);
  out.append(StrPrintf("wal_dir=%s\n", c.wal_dir.c_str()));
  PutU64(&out, "enable_metrics", c.enable_metrics ? 1 : 0);
  PutU64(&out, "record_series", c.record_series ? 1 : 0);
  PutF64(&out, "series_interval_seconds", c.series_interval_seconds);
  PutU64(&out, "backend", static_cast<std::uint64_t>(c.backend));
  PutF64(&out, "time_scale", c.time_scale);
  PutU64(&out, "drain", c.drain ? 1 : 0);
  PutU64(&out, "run_invariant_checker", c.run_invariant_checker ? 1 : 0);
  return out;
}

bool ParseSimConfig(const std::string& text, SimConfig* out,
                    std::string* error) {
  *out = SimConfig();
  bool saw_version = false;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      *error = StrPrintf("config line without '=': %s", line.c_str());
      return false;
    }
    const std::string key = line.substr(0, eq);
    const std::string val = line.substr(eq + 1);
    if (key == "wal_dir") {
      out->wal_dir = val;
      continue;
    }
    char* end = nullptr;
    const double f = std::strtod(val.c_str(), &end);
    if (end == val.c_str() || *end != '\0') {
      *error = StrPrintf("non-numeric config value in: %s", line.c_str());
      return false;
    }
    const std::uint64_t u =
        std::strtoull(val.c_str(), &end, 10);
    if (key == "version") {
      if (u != kConfigVersion) {
        *error = StrPrintf("config version %llu, expected %d",
                           static_cast<unsigned long long>(u),
                           kConfigVersion);
        return false;
      }
      saw_version = true;
    } else if (key == "kind") {
      out->kind = static_cast<SchemeKind>(u);
    } else if (key == "nodes") {
      out->nodes = static_cast<std::uint32_t>(u);
    } else if (key == "db_size") {
      out->db_size = u;
    } else if (key == "tps") {
      out->tps = f;
    } else if (key == "actions") {
      out->actions = static_cast<std::uint32_t>(u);
    } else if (key == "action_time") {
      out->action_time = f;
    } else if (key == "sim_seconds") {
      out->sim_seconds = f;
    } else if (key == "seed") {
      out->seed = u;
    } else if (key == "mix_write") {
      out->mix.write = f;
    } else if (key == "mix_add") {
      out->mix.add = f;
    } else if (key == "mix_subtract") {
      out->mix.subtract = f;
    } else if (key == "mix_append") {
      out->mix.append = f;
    } else if (key == "mix_read") {
      out->mix.read = f;
    } else if (key == "num_shards") {
      out->num_shards = static_cast<std::uint32_t>(u);
    } else if (key == "batch_flush_window") {
      out->batch_flush_window = f;
    } else if (key == "batch_max_updates") {
      out->batch_max_updates = u;
    } else if (key == "hot_fraction") {
      out->hot_fraction = f;
    } else if (key == "hot_shards") {
      out->hot_shards = static_cast<std::uint32_t>(u);
    } else if (key == "skew_shards") {
      out->skew_shards = static_cast<std::uint32_t>(u);
    } else if (key == "fault_drop_probability") {
      out->fault_drop_probability = f;
    } else if (key == "fault_partition_cycle") {
      out->fault_partition_cycle = u != 0;
    } else if (key == "fault_crash_cycle") {
      out->fault_crash_cycle = u != 0;
    } else if (key == "durability") {
      out->durability = static_cast<DurabilityMode>(u);
    } else if (key == "wal_flush_latency") {
      out->wal_flush_latency = f;
    } else if (key == "wal_group_window") {
      out->wal_group_window = f;
    } else if (key == "wal_group_max_records") {
      out->wal_group_max_records = u;
    } else if (key == "wal_segment_bytes") {
      out->wal_segment_bytes = u;
    } else if (key == "enable_metrics") {
      out->enable_metrics = u != 0;
    } else if (key == "record_series") {
      out->record_series = u != 0;
    } else if (key == "series_interval_seconds") {
      out->series_interval_seconds = f;
    } else if (key == "backend") {
      out->backend = static_cast<RuntimeBackend>(u);
    } else if (key == "time_scale") {
      out->time_scale = f;
    } else if (key == "drain") {
      out->drain = u != 0;
    } else if (key == "run_invariant_checker") {
      out->run_invariant_checker = u != 0;
    } else {
      *error = StrPrintf("unknown config key: %s", key.c_str());
      return false;
    }
  }
  if (!saw_version) {
    *error = "config payload carries no version";
    return false;
  }
  return true;
}

std::uint64_t MetricsFingerprint(const obs::MetricsSnapshot& snapshot) {
  const std::string text = snapshot.ToString();
  return proc::HashBytes(text.data(), text.size());
}

std::uint64_t ProcOutcome::Counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

namespace {

/// The forked node process's whole life: rebuild the cluster from the
/// shipped config, run it with the NetBridge attached (every owned
/// delivery rendezvouses over the sockets), drain-barrier, digest.
proc::NodeReport ProcChildBody(proc::ProcessCoordinator::NodeContext& ctx) {
  SimConfig config;
  std::string parse_error;
  if (!ParseSimConfig(ctx.config(), &config, &parse_error)) {
    ctx.Fail(StrPrintf("config parse: %s", parse_error.c_str()));
  }
  if (config.nodes != ctx.num_nodes()) {
    ctx.Fail(StrPrintf("config says %u nodes, coordinator forked %u",
                       config.nodes, ctx.num_nodes()));
  }
  if (!config.wal_dir.empty()) {
    // Every process re-runs the whole cluster's WAL traffic; give each
    // its own directory or they would clobber one another's segments.
    config.wal_dir += StrPrintf("/p%u", ctx.node());
  }

  std::optional<proc::NetBridge> bridge;
  RunHooks hooks;
  hooks.on_built = [&](Cluster& cluster) {
    bridge.emplace(
        ctx.node(), ctx.num_nodes(), ctx.data(), &cluster.runtime(),
        &cluster.sim(), proc::NetBridge::Options{},
        [&ctx](const std::string& why) { ctx.Fail(why); });
    cluster.net().set_delivery_hook(&*bridge);
  };
  hooks.before_digest = [&](Cluster& cluster) {
    (void)cluster;
    if (!ctx.data()->FlushAll(30000)) {
      ctx.Fail(StrPrintf("final flush: %s", ctx.data()->error().c_str()));
    }
    std::string barrier_error;
    if (!ctx.Barrier(&barrier_error)) {
      ctx.Fail(barrier_error);
    }
    // Every process has now drained AND flushed: anything still queued,
    // buffered, or half-reassembled is a schedule disagreement.
    std::string why;
    if (!ctx.data()->Idle(&why)) {
      ctx.Fail(StrPrintf("transport not idle after drain barrier: %s",
                         why.c_str()));
    }
  };

  const SimOutcome out = RunScheme(config, hooks);

  proc::NodeReport report;
  report.node = ctx.node();
  report.state_digest = out.state_digest;
  report.matrix_fp = proc::HashBytes(
      out.shard_digests.data(),
      out.shard_digests.size() * sizeof(std::uint64_t));
  report.metrics_fp = MetricsFingerprint(out.metrics);
  report.plan_fp = BuildFaultPlan(config).Fingerprint();
  report.committed = out.committed;
  report.invariant_violations = out.invariant_violations;
  const std::size_t shards = config.nodes > 0
                                 ? out.shard_digests.size() / config.nodes
                                 : 0;
  report.owned_shard_digests.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    report.owned_shard_digests.push_back(
        out.shard_digests[s * config.nodes + ctx.node()]);
  }
  const proc::SocketTransport::Stats& st = ctx.data()->stats();
  report.counters = {
      {"proc.bytes_received", st.bytes_received},
      {"proc.bytes_sent", st.bytes_sent},
      {"proc.deliveries_observed_remote", bridge->observed_remote()},
      {"proc.deliveries_shipped", bridge->shipped()},
      {"proc.deliveries_verified", bridge->verified()},
      {"proc.eagain_waits", st.eagain_waits},
      {"proc.frames_received", st.frames_received},
      {"proc.frames_sent", st.frames_sent},
      {"proc.partial_frames", st.partial_frames},
      {"proc.partial_writes", st.partial_writes},
      {"proc.read_calls", st.read_calls},
      {"proc.writev_calls", st.writev_calls},
  };
  return report;
}

}  // namespace

ProcOutcome RunSchemeMultiProcess(const SimConfig& config) {
  ProcOutcome result;
  proc::ProcessCoordinator::Options opts;
  opts.num_nodes = config.nodes;
  opts.config = SerializeSimConfig(config);
  proc::ProcessCoordinator::Result run =
      proc::ProcessCoordinator::Run(opts, ProcChildBody);
  if (!run.ok) {
    result.error = run.error;
    return result;
  }
  std::string validate_error;
  if (!proc::ProcessCoordinator::ValidateReports(run.reports,
                                                 &validate_error)) {
    result.error = validate_error;
    return result;
  }
  const proc::NodeReport& first = run.reports.front();
  result.committed = first.committed;
  // Every process runs the full cluster, so each reports the same
  // checker verdict; take the worst rather than summing n copies.
  for (const proc::NodeReport& r : run.reports) {
    if (r.invariant_violations > result.invariant_violations) {
      result.invariant_violations = r.invariant_violations;
    }
  }
  result.state_digest = first.state_digest;
  result.metrics_fp = first.metrics_fp;
  result.plan_fp = first.plan_fp;
  for (const auto& row :
       proc::ProcessCoordinator::AssembleShardMatrix(run.reports)) {
    result.shard_digests.insert(result.shard_digests.end(), row.begin(),
                                row.end());
  }
  // The assembled matrix splices one authoritative column out of each
  // OS process; hashing it must reproduce the full-matrix fingerprint
  // every child computed locally, or some process's replica state
  // disagrees with its owner's.
  const std::uint64_t assembled_fp = proc::HashBytes(
      result.shard_digests.data(),
      result.shard_digests.size() * sizeof(std::uint64_t));
  if (assembled_fp != first.matrix_fp) {
    result.error = StrPrintf(
        "assembled owner-column matrix fp %016llx != per-child matrix fp "
        "%016llx",
        static_cast<unsigned long long>(assembled_fp),
        static_cast<unsigned long long>(first.matrix_fp));
    return result;
  }
  result.counters = proc::ProcessCoordinator::MergeCounters(run.reports);
  result.ok = true;
  return result;
}

}  // namespace tdr::bench
