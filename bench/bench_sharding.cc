// E13 — the sharded + batched data plane. The paper's lazy schemes ship
// one replica-update transaction per commit per destination; under a
// hot/cold shard skew the hot objects' replica-apply load alone exceeds
// their service capacity (utilization > 1) and committed throughput
// collapses exactly the way Eq. (10)/(14) predict — waits and deadlocks
// explode. Coalescing a flush window's updates per (origin, dest)
// stream divides the hot-object apply load by the dedup factor
//   D = tps x actions x hot_fraction x window / hot_objects,
// pulling utilization back below 1: the classic production escape hatch
// (group commit for the replication stream). The second table varies
// the cluster's shard count under a fixed workload: per-shard lock
// tables plus atomic-per-shard batch application shrink replica
// transactions' lock footprints, converting applier-vs-user deadlocks
// into short waits.

#include <cstdio>

#include "bench/harness.h"

namespace tdr::bench {

namespace {

SimConfig BaseConfig() {
  SimConfig base;
  base.kind = SchemeKind::kLazyGroup;
  base.db_size = 2048;
  base.num_shards = 128;  // 16 objects per shard
  base.tps = 10;
  base.actions = 4;
  base.action_time = 0.05;
  base.sim_seconds = 30;
  // 90% of picks land in shard 0 (16 objects) — the hot shard.
  base.hot_shards = 1;
  base.hot_fraction = 0.9;
  base.skew_shards = 128;  // hot span fixed even when num_shards varies
  return base;
}

}  // namespace

void Main() {
  PrintBanner("E13", "Sharded + batched replication data plane",
              "post-paper engineering: the \"solution\" at scale");

  SimConfig base = BaseConfig();
  std::printf(
      "DB_Size=%llu shards=%u TPS=%.0f/node Actions=%u Action_Time=%.0fms\n"
      "hot skew: %.0f%% of picks in shard 0 (%llu objects), window=%.0fs\n\n",
      (unsigned long long)base.db_size, base.num_shards, base.tps,
      base.actions, base.action_time * 1000, base.hot_fraction * 100,
      (unsigned long long)(base.db_size / base.num_shards), 2.0);

  obs::RunReport report = MakeReport("bench_sharding", base);

  // --- Table 1: batched vs per-commit shipping, growing the cluster ---
  std::printf("batched (2s window) vs per-commit shipping:\n");
  std::printf("%5s | %21s | %21s | %7s\n", "",
              "committed txns/s", "replica deadlocks", "speedup");
  std::printf("%5s | %10s %10s | %10s %10s | %7s\n", "nodes", "unbatched",
              "batched", "unbatched", "batched", "x");
  std::printf("------+-----------------------+-----------------------+--------"
              "\n");

  const std::vector<std::uint32_t> kNodes{4, 8, 16, 24};
  std::vector<SimConfig> grid;
  for (std::uint32_t nodes : kNodes) {
    SimConfig unbatched = base;
    unbatched.nodes = nodes;
    grid.push_back(unbatched);
    SimConfig batched = unbatched;
    batched.batch_flush_window = 2.0;
    batched.batch_max_updates = 512;
    grid.push_back(batched);
  }
  std::vector<SimOutcome> outcomes = RunSweep(grid);
  double speedup_at_16 = 0;
  for (std::size_t i = 0; i < kNodes.size(); ++i) {
    const SimOutcome& plain = outcomes[2 * i];
    const SimOutcome& batched = outcomes[2 * i + 1];
    double plain_rate = plain.Rate(plain.committed);
    double batched_rate = batched.Rate(batched.committed);
    double speedup = plain_rate > 0 ? batched_rate / plain_rate : 0;
    if (kNodes[i] == 16) speedup_at_16 = speedup;
    std::printf("%5u | %10.2f %10.2f | %10llu %10llu | %6.2fx\n", kNodes[i],
                plain_rate, batched_rate,
                (unsigned long long)plain.replica_deadlocks,
                (unsigned long long)batched.replica_deadlocks, speedup);
    report.AddRow(ReportRow(grid[2 * i], plain));
    report.AddRow(ReportRow(grid[2 * i + 1], batched));
  }
  std::printf(
      "\nAt 16 nodes the batched plane commits %.2fx the unbatched rate\n"
      "(acceptance floor: 1.50x). The unbatched hot-shard apply load is\n"
      "(N-1) x TPS x Actions x hot_fraction x Action_Time / hot_objects\n"
      "= %.2f utilization per hot object at N=16 — past saturation, so\n"
      "the open-loop workload queues on hot locks and commits collapse.\n"
      "Coalescing ships each hot object once per window instead.\n",
      speedup_at_16,
      15 * base.tps * base.actions * base.hot_fraction * base.action_time /
          (base.db_size / base.num_shards));

  // --- Table 2: shard-count sweep under the batched plane -------------
  std::printf("\nshard-count sweep (16 nodes, batched, fixed workload):\n");
  std::printf("%7s | %10s | %10s | %10s | %10s\n", "shards", "commit/s",
              "user dlk/s", "repl dlks", "batches");
  std::printf("--------+------------+------------+------------+-----------\n");
  const std::vector<std::uint32_t> kShards{1, 8, 32, 128};
  std::vector<SimConfig> shard_grid;
  for (std::uint32_t shards : kShards) {
    SimConfig config = base;
    config.nodes = 16;
    config.num_shards = shards;
    config.batch_flush_window = 2.0;
    config.batch_max_updates = 512;
    shard_grid.push_back(config);
  }
  std::vector<SimOutcome> shard_out = RunSweep(shard_grid);
  for (std::size_t i = 0; i < kShards.size(); ++i) {
    const SimOutcome& out = shard_out[i];
    std::printf("%7u | %10.2f | %10.4f | %10llu | %10llu\n", kShards[i],
                out.Rate(out.committed), out.deadlock_rate(),
                (unsigned long long)out.replica_deadlocks,
                (unsigned long long)out.batches_shipped);
    report.AddRow(ReportRow(shard_grid[i], out));
  }
  std::printf(
      "\nCommitted throughput is insensitive to the shard count — the\n"
      "range partition is a correctness-neutral mechanism knob, and the\n"
      "hot shard's lock utilization dominates either way. What changes\n"
      "is apply granularity: at 128 shards a batch applies as one short\n"
      "transaction per shard instead of one batch-wide transaction, so\n"
      "no applier holds locks across shards, a deadlocked retry re-runs\n"
      "one shard's slice (the extra, cheaper victims above), and\n"
      "per-shard divergence is checkable in isolation (ShardDigests).\n");

  WriteReport(report, "BENCH_sharding.json");
}

}  // namespace tdr::bench

int main() { tdr::bench::Main(); }
