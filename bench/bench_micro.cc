// Microbenchmarks (google-benchmark) for the substrate hot paths: event
// scheduling, lock acquisition, deadlock search, RNG, and store digests.
// These bound how large a simulated cluster the experiment benches can
// afford; they are not paper artifacts themselves.

#include <benchmark/benchmark.h>

#include "replication/cluster.h"
#include "replication/eager.h"
#include "sim/simulator.h"
#include "workload/workload.h"
#include "storage/object_store.h"
#include "txn/lock_manager.h"
#include "util/rng.h"

namespace tdr {
namespace {

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const int kEvents = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    for (int i = 0; i < kEvents; ++i) {
      sim.ScheduleAt(SimTime::Micros(i % 997), [&fired] { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * kEvents);
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1024)->Arg(16384);

void BM_SimulatorSelfRescheduling(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t ticks = 0;
    std::function<void()> tick = [&] {
      if (++ticks < 10000) sim.ScheduleAfter(SimTime::Micros(1), tick);
    };
    sim.ScheduleAfter(SimTime::Micros(1), tick);
    sim.Run();
    benchmark::DoNotOptimize(ticks);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorSelfRescheduling);

void BM_LockAcquireReleaseUncontended(benchmark::State& state) {
  WaitForGraph graph;
  LockManager locks(0, 4096, &graph);
  TxnId txn = 1;
  ObjectId oid = 0;
  for (auto _ : state) {
    locks.Acquire(txn, oid, nullptr);
    locks.Release(txn, oid);
    ++txn;
    oid = (oid + 1) % 4096;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockAcquireReleaseUncontended);

void BM_LockConflictChainGrant(benchmark::State& state) {
  const int kChain = static_cast<int>(state.range(0));
  for (auto _ : state) {
    WaitForGraph graph;
    LockManager locks(0, 4096, &graph);
    locks.Acquire(1, 7, nullptr);
    for (TxnId t = 2; t <= static_cast<TxnId>(kChain); ++t) {
      locks.Acquire(t, 7, [] {});
    }
    locks.ReleaseAll(1);
    for (TxnId t = 2; t <= static_cast<TxnId>(kChain); ++t) {
      locks.ReleaseAll(t);
    }
    benchmark::DoNotOptimize(locks.WaiterCount());
  }
  state.SetItemsProcessed(state.iterations() * kChain);
}
BENCHMARK(BM_LockConflictChainGrant)->Arg(8)->Arg(64);

void BM_WaitForGraphCycleSearch(benchmark::State& state) {
  const TxnId kChain = static_cast<TxnId>(state.range(0));
  WaitForGraph graph;
  for (TxnId t = 1; t < kChain; ++t) graph.AddEdge(t, t + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.HasCycleFrom(1));
  }
  state.SetItemsProcessed(state.iterations() * kChain);
}
BENCHMARK(BM_WaitForGraphCycleSearch)->Arg(16)->Arg(256);

void BM_ObjectStoreDigest(benchmark::State& state) {
  ObjectStore store(static_cast<std::uint64_t>(state.range(0)));
  for (ObjectId oid = 0; oid < store.size(); ++oid) {
    store.Put(oid, Value(static_cast<std::int64_t>(oid * 31)),
              Timestamp(oid + 1, 0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Digest());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ObjectStoreDigest)->Arg(1024)->Arg(65536);

void BM_RngSampleWithoutReplacement(benchmark::State& state) {
  Rng rng(99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rng.SampleWithoutReplacement(10000, state.range(0)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RngSampleWithoutReplacement)->Arg(4)->Arg(64);

void BM_EndToEndEagerCluster(benchmark::State& state) {
  // One full simulated second of a loaded 3-node eager cluster — the
  // experiment benches' inner loop.
  for (auto _ : state) {
    Cluster::Options copts;
    copts.num_nodes = 3;
    copts.db_size = 1000;
    copts.action_time = SimTime::Millis(10);
    Cluster cluster(copts);
    EagerGroupScheme scheme(&cluster);
    Rng rng = cluster.ForkRng();
    ProgramGenerator::Options gopts;
    gopts.db_size = copts.db_size;
    gopts.actions = 4;
    ProgramGenerator gen(gopts);
    for (int i = 0; i < 50; ++i) {
      NodeId origin = static_cast<NodeId>(rng.UniformInt(3));
      scheme.Submit(origin, gen.Next(rng), nullptr);
    }
    cluster.sim().Run();
    benchmark::DoNotOptimize(cluster.executor().committed());
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_EndToEndEagerCluster);

}  // namespace
}  // namespace tdr

BENCHMARK_MAIN();
