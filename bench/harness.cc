#include "bench/harness.h"

#include <cmath>

#include "fault/fault_injector.h"
#include "fault/invariant_checker.h"
#include "obs/timeseries.h"
#include "replication/driver.h"
#include "util/logging.h"

namespace tdr::bench {

namespace {

fault::SchemeClass ToSchemeClass(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kEagerGroup:
    case SchemeKind::kEagerGroupParallel:
    case SchemeKind::kEagerGroupReadLocks:
      return fault::SchemeClass::kEagerGroup;
    case SchemeKind::kEagerMaster:
      return fault::SchemeClass::kEagerMaster;
    case SchemeKind::kLazyGroup:
      return fault::SchemeClass::kLazyGroup;
    case SchemeKind::kLazyMaster:
      return fault::SchemeClass::kLazyMaster;
  }
  return fault::SchemeClass::kEagerGroup;
}

}  // namespace

std::string_view SchemeKindName(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kEagerGroup:
      return "eager-group";
    case SchemeKind::kEagerGroupParallel:
      return "eager-group-parallel";
    case SchemeKind::kEagerGroupReadLocks:
      return "eager-group-readlocks";
    case SchemeKind::kEagerMaster:
      return "eager-master";
    case SchemeKind::kLazyGroup:
      return "lazy-group";
    case SchemeKind::kLazyMaster:
      return "lazy-master";
  }
  return "?";
}

std::string_view DispatchLabel(const SimConfig& config) {
  if (config.dispatch == runtime::ThreadRuntime::DispatchMode::kTurnBased) {
    return "turn";
  }
  return config.steal_untagged ? "epoch+steal" : "epoch";
}

analytic::ModelParams ToModelParams(const SimConfig& config) {
  analytic::ModelParams p;
  p.db_size = static_cast<double>(config.db_size);
  p.nodes = config.nodes;
  p.tps = config.tps;
  p.actions = config.actions;
  p.action_time = config.action_time;
  return p;
}

fault::FaultPlan BuildFaultPlan(const SimConfig& config) {
  fault::FaultPlan plan;
  if (config.fault_drop_probability > 0) {
    fault::ChaosProfile chaos;
    chaos.drop_probability = config.fault_drop_probability;
    plan.WithChaos(chaos);
  }
  if (config.fault_partition_cycle && config.nodes > 1) {
    // One cycle: the last node splits off for the middle third.
    plan.PartitionAt(SimTime::Seconds(config.sim_seconds / 3), "cycle",
                     {static_cast<NodeId>(config.nodes - 1)})
        .HealPartitionAt(SimTime::Seconds(2 * config.sim_seconds / 3),
                         "cycle");
  }
  if (config.fault_crash_cycle && config.nodes > 1) {
    // Crash the last node for the middle third; restart routes
    // through Cluster::recovery() — WAL replay under kCommit/kGroup,
    // the legacy durable-store model under kOff.
    plan.CrashAt(SimTime::Seconds(config.sim_seconds / 3),
                 static_cast<NodeId>(config.nodes - 1))
        .RestartAt(SimTime::Seconds(2 * config.sim_seconds / 3),
                   static_cast<NodeId>(config.nodes - 1));
  }
  return plan;
}

SimOutcome RunScheme(const SimConfig& config) {
  return RunScheme(config, RunHooks{});
}

SimOutcome RunScheme(const SimConfig& config, const RunHooks& hooks) {
  Cluster::Options copts;
  copts.num_nodes = config.nodes;
  copts.db_size = config.db_size;
  copts.num_shards = config.num_shards;
  copts.action_time = SimTime::Seconds(config.action_time);
  copts.seed = config.seed;
  copts.enable_metrics = config.enable_metrics;
  copts.backend = config.backend;
  copts.time_scale = config.time_scale;
  copts.runtime.dispatch = config.dispatch;
  copts.runtime.steal_untagged = config.steal_untagged;
  copts.runtime.mailbox_capacity =
      static_cast<std::size_t>(config.mailbox_capacity);
  copts.runtime.overflow = config.overflow_shed
                               ? runtime::ThreadRuntime::OverflowPolicy::kShed
                               : runtime::ThreadRuntime::OverflowPolicy::kBlock;
  copts.wal.mode = config.durability;
  copts.wal.fsync = config.wal_fsync;
  copts.wal.wal_dir = config.wal_dir;
  copts.wal.flush_latency = SimTime::Seconds(config.wal_flush_latency);
  copts.wal.group_window = SimTime::Seconds(config.wal_group_window);
  copts.wal.group_max_records =
      static_cast<std::size_t>(config.wal_group_max_records);
  copts.wal.segment_bytes = config.wal_segment_bytes;
  Cluster cluster(copts);
  if (hooks.on_built) hooks.on_built(cluster);

  BatchShipper::Options batch;
  batch.flush_window = SimTime::Seconds(config.batch_flush_window);
  batch.max_batch_updates =
      static_cast<std::size_t>(config.batch_max_updates);

  std::vector<NodeId> all_nodes(config.nodes);
  for (std::uint32_t i = 0; i < config.nodes; ++i) all_nodes[i] = i;
  Ownership ownership = Ownership::RoundRobin(config.db_size, all_nodes);

  const bool faulted = config.fault_drop_probability > 0 ||
                       config.fault_partition_cycle ||
                       config.fault_crash_cycle;

  std::unique_ptr<ReplicationScheme> scheme;
  LazyGroupScheme* lazy_group = nullptr;
  LazyMasterScheme* lazy_master = nullptr;
  switch (config.kind) {
    case SchemeKind::kEagerGroup:
      scheme = std::make_unique<EagerGroupScheme>(&cluster);
      break;
    case SchemeKind::kEagerGroupParallel: {
      EagerGroupScheme::Options o;
      o.parallel_replica_updates = true;
      scheme = std::make_unique<EagerGroupScheme>(&cluster, o);
      break;
    }
    case SchemeKind::kEagerGroupReadLocks: {
      EagerGroupScheme::Options o;
      o.lock_reads = true;
      scheme = std::make_unique<EagerGroupScheme>(&cluster, o);
      break;
    }
    case SchemeKind::kEagerMaster:
      scheme = std::make_unique<EagerMasterScheme>(&cluster, &ownership);
      break;
    case SchemeKind::kLazyGroup: {
      LazyGroupScheme::Options o;
      o.batch = batch;
      auto lg = std::make_unique<LazyGroupScheme>(&cluster, o);
      lazy_group = lg.get();
      scheme = std::move(lg);
      break;
    }
    case SchemeKind::kLazyMaster: {
      LazyMasterScheme::Options o;
      // Faulted runs need the reconnect/heal catch-up hooks, or replicas
      // that missed updates during an outage would never converge.
      o.reconnect_catch_up = faulted;
      o.batch = batch;
      auto lm = std::make_unique<LazyMasterScheme>(&cluster, &ownership, o);
      lazy_master = lm.get();
      scheme = std::move(lm);
      break;
    }
  }

  // Fault layer: a deterministic plan (drawn from its own RNG stream)
  // plus the always-on invariant checker. Violations left in the checker
  // abort the process at scope exit — a benchmark under faults is also a
  // correctness gate.
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<fault::InvariantChecker> checker;
  if (faulted) {
    injector = std::make_unique<fault::FaultInjector>(
        &cluster, BuildFaultPlan(config), Rng(config.seed, 777));
  }
  if (faulted || config.run_invariant_checker) {
    fault::InvariantChecker::Options chk;
    chk.scheme = ToSchemeClass(config.kind);
    chk.ownership = &ownership;
    chk.check_interval = SimTime::Seconds(config.sim_seconds / 20);
    if (injector != nullptr) {
      chk.trace_fn = [inj = injector.get()]() {
        return inj->AppliedLogString();
      };
    }
    checker = std::make_unique<fault::InvariantChecker>(&cluster, chk);
  }
  if (injector != nullptr) injector->Arm();
  if (checker != nullptr) checker->Arm();

  obs::TimeSeriesRecorder::Options ropts;
  ropts.interval = SimTime::Seconds(config.series_interval_seconds);
  obs::TimeSeriesRecorder recorder(&cluster.runtime(), &cluster.metrics(),
                                   ropts);
  if (config.record_series && config.enable_metrics) {
    recorder.TrackRate("txn.committed");
    recorder.TrackRate("txn.deadlocks");
    recorder.TrackRate("replica.applied");
    recorder.TrackRate("net.delivered");
    recorder.Start();
  }

  WorkloadDriver::Options dopts;
  dopts.tps_per_node = config.tps;
  dopts.poisson_arrivals = config.poisson_arrivals;
  dopts.workload.actions = config.actions;
  dopts.workload.mix = config.mix;
  if (config.hot_shards > 0 && config.hot_fraction > 0) {
    dopts.workload.skew_num_shards =
        config.skew_shards != 0 ? config.skew_shards : config.num_shards;
    dopts.workload.skew_hot_shards = config.hot_shards;
    dopts.workload.skew_hot_fraction = config.hot_fraction;
  }
  dopts.seconds = config.sim_seconds;
  WorkloadDriver driver(&cluster, scheme.get(), dopts);
  WorkloadDriver::Outcome out = driver.Run();
  recorder.Stop();

  SimOutcome outcome;
  if (checker != nullptr) checker->Disarm();
  if (injector != nullptr) {
    injector->Disarm();
    injector->HealAll();
  }
  if (faulted || config.drain) {
    // Heal, drain, anti-entropy. Pending batch windows are bounded
    // staleness, not loss: drain them before the convergence check,
    // like any other in-flight traffic.
    if (lazy_group != nullptr) lazy_group->FlushAllBatches();
    if (lazy_master != nullptr) lazy_master->FlushAllBatches();
    cluster.runtime().Run();
    if (lazy_master != nullptr) lazy_master->CatchUpAll();
    cluster.runtime().Run();
  }
  // Quiescent point: no further events can fire, digests not yet taken.
  if (hooks.before_digest) hooks.before_digest(cluster);
  if (checker != nullptr) {
    // The final invariant check: convergence, or recorded delusion for
    // lazy-group. Violations stay unacknowledged: the checker
    // destructor reports them and aborts the benchmark (the CI
    // robustness gate).
    checker->CheckFinal();
    outcome.invariant_violations = checker->violations_total();
    outcome.delusion_slots = checker->delusion_slots();
  }
  if (injector != nullptr) {
    outcome.injected_drops = injector->injected_drops();
  }
  outcome.seconds = out.seconds;
  outcome.submitted = out.submitted;
  outcome.committed = out.committed;
  outcome.deadlocks = out.deadlocks;
  outcome.waits = out.waits;
  outcome.reconciliations = out.reconciliations;
  outcome.unavailable = out.unavailable;
  outcome.replica_deadlocks = out.replica_deadlocks;
  outcome.replica_applied = out.replica_applied;
  outcome.divergent_slots = out.divergent_slots;
  if (lazy_group != nullptr && lazy_group->batch_shipper() != nullptr) {
    outcome.batches_shipped = lazy_group->batch_shipper()->batches_shipped();
    outcome.updates_coalesced =
        lazy_group->batch_shipper()->updates_coalesced();
  }
  if (lazy_master != nullptr && lazy_master->batch_shipper() != nullptr) {
    outcome.batches_shipped = lazy_master->batch_shipper()->batches_shipped();
    outcome.updates_coalesced =
        lazy_master->batch_shipper()->updates_coalesced();
  }
  if (cluster.wals() != nullptr) {
    const wal::WalMetrics& wm = cluster.wals()->wal_metrics();
    outcome.wal_records = wm.records_appended.value();
    outcome.wal_flushes = wm.flushes.value();
  }
  outcome.wal_recoveries = cluster.recovery().recoveries();
  outcome.wal_replayed = cluster.recovery().records_replayed();
  // Equivalence fingerprints: the full-state digest plus per-shard
  // digests, captured after any drain so both backends see the same
  // quiesced state.
  outcome.state_digest = cluster.StateDigest();
  outcome.shard_digests.reserve(
      static_cast<std::size_t>(cluster.shards().num_shards()) *
      cluster.size());
  for (ShardId s = 0; s < cluster.shards().num_shards(); ++s) {
    for (std::uint64_t d : cluster.ShardDigests(s)) {
      outcome.shard_digests.push_back(d);
    }
  }
  if (cluster.thread_runtime() != nullptr) {
    // Join the workers now (idempotent — the destructor also does it)
    // so the runtime's kProfile metrics are published and its counters
    // are final before the snapshot below.
    cluster.thread_runtime()->Shutdown();
    outcome.runtime_dispatched = cluster.thread_runtime()->dispatched();
    outcome.runtime_epochs = cluster.thread_runtime()->epochs();
    outcome.runtime_epoch_width_max =
        cluster.thread_runtime()->epoch_width_max();
    outcome.runtime_steals = cluster.thread_runtime()->steal_count();
    outcome.runtime_sheds = cluster.thread_runtime()->shed_count();
    double sim_s = cluster.thread_runtime()->sim_seconds();
    outcome.runtime_wall_seconds = cluster.thread_runtime()->wall_seconds();
    outcome.wall_sim_ratio =
        sim_s > 0 ? outcome.runtime_wall_seconds / sim_s : 0;
  }
  if (config.enable_metrics) {
    // Export the simulator's own health gauges before snapshotting;
    // they are deterministic (event counts, not wall time).
    cluster.metrics().SetGauge(
        "sim.executed_events",
        static_cast<double>(cluster.sim().executed_events()));
    cluster.metrics().SetGauge(
        "sim.clamped_schedules",
        static_cast<double>(cluster.sim().clamped_schedules()));
    outcome.metrics = cluster.metrics().Snapshot();
    outcome.series = recorder.Series();
  }
  return outcome;
}

std::vector<SimOutcome> RunSweep(const std::vector<SimConfig>& configs,
                                 SweepOptions options) {
  sim::SweepRunner runner(sim::SweepRunner::Options{options.threads});
  return runner.Map<SimOutcome>(configs.size(), [&](std::size_t i) {
    SimConfig config = configs[i];
    if (options.base_seed != 0) {
      config.seed = sim::DeriveSeed(options.base_seed, i);
    }
    return RunScheme(config);
  });
}

void OutcomeStats::Add(const SimOutcome& out) {
  committed_rate.Add(out.Rate(out.committed));
  deadlock_rate.Add(out.deadlock_rate());
  wait_rate.Add(out.wait_rate());
  reconciliation_rate.Add(out.reconciliation_rate());
  metrics.Merge(out.metrics);
  series.Add(out.series);
}

void OutcomeStats::Merge(const OutcomeStats& other) {
  committed_rate.Merge(other.committed_rate);
  deadlock_rate.Merge(other.deadlock_rate);
  wait_rate.Merge(other.wait_rate);
  reconciliation_rate.Merge(other.reconciliation_rate);
  metrics.Merge(other.metrics);
  series.Merge(other.series);
}

OutcomeStats RunRepeatedStats(const SimConfig& config, std::size_t reps,
                              std::uint64_t base_seed, SweepOptions options) {
  sim::SweepRunner runner(sim::SweepRunner::Options{options.threads});
  // Fixed block partition — a function of `reps` alone, never of thread
  // count — so each block's Add order and the final Merge order are
  // identical on every machine and the merged moments are bit-stable.
  constexpr std::size_t kStatsBlocks = 8;
  std::size_t blocks = kStatsBlocks < reps ? kStatsBlocks : reps;
  if (blocks == 0) blocks = 1;
  std::vector<OutcomeStats> partial =
      runner.Map<OutcomeStats>(blocks, [&](std::size_t b) {
        OutcomeStats stats;
        for (std::size_t rep = b; rep < reps; rep += blocks) {
          SimConfig run = config;
          run.seed = sim::DeriveSeed(base_seed, rep);
          stats.Add(RunScheme(run));
        }
        return stats;
      });
  OutcomeStats merged;
  for (const OutcomeStats& block : partial) merged.Merge(block);
  return merged;
}

obs::RunReport MakeReport(std::string experiment, const SimConfig& config) {
  obs::RunReport report(std::move(experiment));
  report.SetConfig("scheme", SchemeKindName(config.kind))
      .SetConfig("nodes", static_cast<std::uint64_t>(config.nodes))
      .SetConfig("db_size", config.db_size)
      .SetConfig("tps", config.tps)
      .SetConfig("actions", static_cast<std::uint64_t>(config.actions))
      .SetConfig("action_time", config.action_time)
      .SetConfig("sim_seconds", config.sim_seconds)
      .SetConfig("seed", config.seed)
      .SetConfig("num_shards", static_cast<std::uint64_t>(config.num_shards))
      .SetConfig("batch_flush_window", config.batch_flush_window)
      .SetConfig("batch_max_updates", config.batch_max_updates)
      .SetConfig("hot_fraction", config.hot_fraction)
      .SetConfig("hot_shards", static_cast<std::uint64_t>(config.hot_shards))
      .SetConfig("durability", DurabilityModeName(config.durability))
      .SetConfig("wal_flush_latency", config.wal_flush_latency)
      .SetConfig("wal_group_window", config.wal_group_window)
      .SetConfig("wal_group_max_records", config.wal_group_max_records);
  return report;
}

std::string FaultPlanName(const SimConfig& config) {
  std::string name;
  auto append = [&name](const std::string& part) {
    if (!name.empty()) name += '+';
    name += part;
  };
  if (config.fault_drop_probability > 0) {
    append(StrPrintf("drop=%g", config.fault_drop_probability));
  }
  if (config.fault_partition_cycle) append("partition");
  if (config.fault_crash_cycle) append("crash");
  if (name.empty()) name = "none";
  return name;
}

obs::Json ReportRow(const SimConfig& config, const SimOutcome& out) {
  obs::Json row = obs::Json::Object();
  row.Set("scheme", SchemeKindName(config.kind));
  row.Set("nodes", static_cast<std::uint64_t>(config.nodes));
  row.Set("seed", config.seed);
  row.Set("submitted", out.submitted);
  row.Set("committed", out.committed);
  row.Set("committed_per_sec", out.Rate(out.committed));
  row.Set("deadlock_rate", out.deadlock_rate());
  row.Set("wait_rate", out.wait_rate());
  row.Set("reconciliation_rate", out.reconciliation_rate());
  row.Set("unavailable", out.unavailable);
  row.Set("divergent_slots", out.divergent_slots);
  // Fault-plan digest channel: every row names its plan (satellite of
  // the cross-backend diff — tools/diff_digests.py groups on it) and,
  // when faulted, carries the equivalence fingerprints.
  row.Set("fault_plan", FaultPlanName(config));
  if (config.durability != DurabilityMode::kOff) {
    row.Set("durability", DurabilityModeName(config.durability));
    row.Set("wal_records", out.wal_records);
    row.Set("wal_flushes", out.wal_flushes);
    row.Set("wal_recoveries", out.wal_recoveries);
    row.Set("wal_replayed", out.wal_replayed);
  }
  if (config.backend == RuntimeBackend::kThreads) {
    row.Set("dispatch", DispatchLabel(config));
    row.Set("runtime_epochs", out.runtime_epochs);
    row.Set("runtime_epoch_width_max", out.runtime_epoch_width_max);
  }
  if (config.num_shards > 1) {
    row.Set("num_shards", static_cast<std::uint64_t>(config.num_shards));
  }
  if (config.batch_flush_window > 0 || config.batch_max_updates > 0) {
    row.Set("batch_flush_window", config.batch_flush_window);
    row.Set("batches_shipped", out.batches_shipped);
    row.Set("updates_coalesced", out.updates_coalesced);
  }
  return row;
}

void WriteReport(const obs::RunReport& report, const std::string& path) {
  if (!report.WriteFile(path)) {
    std::fprintf(stderr, "warning: cannot write report to %s\n",
                 path.c_str());
    return;
  }
  std::printf("\nreport: %s\n", path.c_str());
}

void PrintBanner(const char* experiment_id, const char* title,
                 const char* paper_ref) {
  std::printf("\n");
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s: %s\n", experiment_id, title);
  std::printf("Paper artifact: %s\n", paper_ref);
  std::printf("==============================================================="
              "=================\n");
}

}  // namespace tdr::bench
