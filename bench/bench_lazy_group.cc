// E7 — Equation (14): lazy-group replication converts the eager scheme's
// waits into reconciliations: "Transactions that would wait in an eager
// replication system face reconciliation in a lazy-group replication
// system ... the system-wide lazy-group reconciliation rate follows the
// transaction wait rate equation (Equation 10)." Cubic in Actions x
// Nodes; a 10x node scaleup means ~1000x reconciliations.
//
// Also demonstrates the consequence the model cannot capture: each
// reconciliation leaves replicas divergent ("system delusion"), reported
// as divergent (node, object) slots at the end of the run.

#include <cstdio>

#include "bench/harness.h"

namespace tdr::bench {

void Main() {
  PrintBanner("E7", "Lazy-group reconciliation scaling",
              "Equation (14) (p. 179)");
  SimConfig base;
  base.kind = SchemeKind::kLazyGroup;
  base.db_size = 2000;
  base.tps = 10;
  base.actions = 4;
  base.action_time = 0.01;
  base.sim_seconds = 300;

  std::printf("DB_Size=%llu TPS=%.0f/node Actions=%u Action_Time=%.0fms\n\n",
              (unsigned long long)base.db_size, base.tps, base.actions,
              base.action_time * 1000);
  std::printf("%5s | %-23s | %10s | %10s\n", "",
              "reconciliation rate (/s)", "root", "divergent");
  std::printf("%5s | %11s %11s | %10s | %10s\n", "nodes", "Eq.(14)",
              "measured", "deadlk/s", "slots");
  std::printf("------+-------------------------+------------+-----------"
              "-\n");

  const std::vector<std::uint32_t> kNodes{1, 2, 3, 5, 8};
  std::vector<SimConfig> grid;
  for (std::uint32_t nodes : kNodes) {
    SimConfig config = base;
    config.nodes = nodes;
    grid.push_back(config);
  }
  std::vector<SimOutcome> outcomes = RunSweep(grid);
  std::vector<std::pair<double, double>> points;
  for (std::size_t i = 0; i < kNodes.size(); ++i) {
    const SimOutcome& out = outcomes[i];
    analytic::ModelParams p = ToModelParams(grid[i]);
    std::printf("%5u | %11.4f %11.4f | %10.5f | %10llu\n", kNodes[i],
                analytic::LazyGroupReconciliationRate(p),
                out.reconciliation_rate(), out.deadlock_rate(),
                (unsigned long long)out.divergent_slots);
    points.emplace_back(kNodes[i], out.reconciliation_rate());
  }
  std::printf(
      "\nMeasured reconciliation growth exponent: %.2f (model 3.00).\n"
      "Note the measured rate runs above the model at larger N: every\n"
      "unreconciled conflict leaves replicas divergent, so later updates\n"
      "carrying stale timestamps keep conflicting — the paper's \"the\n"
      "database at each node diverges further and further\" feedback\n"
      "loop, which the first-order model deliberately ignores.\n",
      FitPowerLawExponent(points));

  // Cascade-free estimate: Eq. (14) prices the FIRST conflicts, so run
  // many short fresh-cluster windows (divergence cannot compound) and
  // average. This isolates the model's quantity from the feedback loop.
  std::printf("\nFresh-window estimate (20 x 15s fresh clusters per N):\n");
  std::printf("%5s | %11s %11s %11s\n", "nodes", "Eq.(14)", "measured",
              "+-95%CI");
  std::printf("------+------------------------------------\n");
  // All 80 windows (20 per N) go through one parallel sweep; the
  // per-window rates are then folded into a Welford accumulator per N.
  const std::vector<std::uint32_t> kFreshNodes{2, 3, 5, 8};
  const int kWindows = 20;
  std::vector<SimConfig> windows;
  for (std::uint32_t nodes : kFreshNodes) {
    for (int w = 0; w < kWindows; ++w) {
      SimConfig config = base;
      config.nodes = nodes;
      config.sim_seconds = 15;
      config.seed = 1000 + w;
      windows.push_back(config);
    }
  }
  std::vector<SimOutcome> window_out = RunSweep(windows);
  std::vector<std::pair<double, double>> fresh_points;
  for (std::size_t i = 0; i < kFreshNodes.size(); ++i) {
    OnlineStats rate_stats;
    for (int w = 0; w < kWindows; ++w) {
      rate_stats.Add(window_out[i * kWindows + w].reconciliation_rate());
    }
    analytic::ModelParams p = ToModelParams(base);
    p.nodes = kFreshNodes[i];
    std::printf("%5u | %11.4f %11.4f %11.4f\n", kFreshNodes[i],
                analytic::LazyGroupReconciliationRate(p), rate_stats.mean(),
                rate_stats.ci95_half_width());
    fresh_points.emplace_back(kFreshNodes[i], rate_stats.mean());
  }
  std::printf(
      "Fresh-window growth exponent: %.2f (model 3.00). At low\n"
      "contention the measurement lands ON the closed form (N=2: 0.127\n"
      "vs 0.128); at larger N even 15-second windows accumulate enough\n"
      "divergence to compound — the cascade is intrinsic to lazy group,\n"
      "not an artifact of long runs. The instability is the result.\n",
      FitPowerLawExponent(fresh_points));
}

}  // namespace tdr::bench

int main() { tdr::bench::Main(); }
