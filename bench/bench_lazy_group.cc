// E7 — Equation (14): lazy-group replication converts the eager scheme's
// waits into reconciliations: "Transactions that would wait in an eager
// replication system face reconciliation in a lazy-group replication
// system ... the system-wide lazy-group reconciliation rate follows the
// transaction wait rate equation (Equation 10)." Cubic in Actions x
// Nodes; a 10x node scaleup means ~1000x reconciliations.
//
// Also demonstrates the consequence the model cannot capture: each
// reconciliation leaves replicas divergent ("system delusion"), reported
// as divergent (node, object) slots at the end of the run.

#include <cstdio>

#include "bench/harness.h"

namespace tdr::bench {

void Main() {
  PrintBanner("E7", "Lazy-group reconciliation scaling",
              "Equation (14) (p. 179)");
  SimConfig base;
  base.kind = SchemeKind::kLazyGroup;
  base.db_size = 2000;
  base.tps = 10;
  base.actions = 4;
  base.action_time = 0.01;
  base.sim_seconds = 300;

  std::printf("DB_Size=%llu TPS=%.0f/node Actions=%u Action_Time=%.0fms\n\n",
              (unsigned long long)base.db_size, base.tps, base.actions,
              base.action_time * 1000);
  std::printf("%5s | %-23s | %10s | %10s\n", "",
              "reconciliation rate (/s)", "root", "divergent");
  std::printf("%5s | %11s %11s | %10s | %10s\n", "nodes", "Eq.(14)",
              "measured", "deadlk/s", "slots");
  std::printf("------+-------------------------+------------+-----------"
              "-\n");

  std::vector<std::pair<double, double>> points;
  for (std::uint32_t nodes : {1u, 2u, 3u, 5u, 8u}) {
    SimConfig config = base;
    config.nodes = nodes;
    SimOutcome out = RunScheme(config);
    analytic::ModelParams p = ToModelParams(config);
    std::printf("%5u | %11.4f %11.4f | %10.5f | %10llu\n", nodes,
                analytic::LazyGroupReconciliationRate(p),
                out.reconciliation_rate(), out.deadlock_rate(),
                (unsigned long long)out.divergent_slots);
    points.emplace_back(nodes, out.reconciliation_rate());
  }
  std::printf(
      "\nMeasured reconciliation growth exponent: %.2f (model 3.00).\n"
      "Note the measured rate runs above the model at larger N: every\n"
      "unreconciled conflict leaves replicas divergent, so later updates\n"
      "carrying stale timestamps keep conflicting — the paper's \"the\n"
      "database at each node diverges further and further\" feedback\n"
      "loop, which the first-order model deliberately ignores.\n",
      FitPowerLawExponent(points));

  // Cascade-free estimate: Eq. (14) prices the FIRST conflicts, so run
  // many short fresh-cluster windows (divergence cannot compound) and
  // average. This isolates the model's quantity from the feedback loop.
  std::printf("\nFresh-window estimate (20 x 15s fresh clusters per N):\n");
  std::printf("%5s | %11s %11s\n", "nodes", "Eq.(14)", "measured");
  std::printf("------+------------------------\n");
  std::vector<std::pair<double, double>> fresh_points;
  for (std::uint32_t nodes : {2u, 3u, 5u, 8u}) {
    double total = 0;
    const int kWindows = 20;
    for (int w = 0; w < kWindows; ++w) {
      SimConfig config = base;
      config.nodes = nodes;
      config.sim_seconds = 15;
      config.seed = 1000 + w;
      SimOutcome out = RunScheme(config);
      total += out.reconciliation_rate();
    }
    double rate = total / kWindows;
    analytic::ModelParams p = ToModelParams(base);
    p.nodes = nodes;
    std::printf("%5u | %11.4f %11.4f\n", nodes,
                analytic::LazyGroupReconciliationRate(p), rate);
    fresh_points.emplace_back(nodes, rate);
  }
  std::printf(
      "Fresh-window growth exponent: %.2f (model 3.00). At low\n"
      "contention the measurement lands ON the closed form (N=2: 0.127\n"
      "vs 0.128); at larger N even 15-second windows accumulate enough\n"
      "divergence to compound — the cascade is intrinsic to lazy group,\n"
      "not an artifact of long runs. The instability is the result.\n",
      FitPowerLawExponent(fresh_points));
}

}  // namespace tdr::bench

int main() { tdr::bench::Main(); }
