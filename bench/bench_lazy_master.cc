// E9 — Equation (19): lazy-master replication. Master transactions
// contend at the owners, giving a deadlock rate quadratic in Nodes:
// (TPS x Nodes)^2 x Action_Time x Actions^5 / (4 x DB_Size^2).
// "This is better behavior than lazy-group replication" — and there are
// NO reconciliations, ever.

#include <cstdio>

#include "bench/harness.h"

namespace tdr::bench {

void Main() {
  PrintBanner("E9", "Lazy-master deadlock scaling",
              "Equation (19) (p. 179)");
  SimConfig base;
  base.kind = SchemeKind::kLazyMaster;
  base.db_size = 500;
  base.tps = 10;
  base.actions = 5;
  base.action_time = 0.01;
  base.sim_seconds = 3000;

  std::printf("DB_Size=%llu TPS=%.0f/node Actions=%u Action_Time=%.0fms\n\n",
              (unsigned long long)base.db_size, base.tps, base.actions,
              base.action_time * 1000);
  std::printf("%5s | %-23s | %11s | %11s | %11s\n", "",
              "master deadlock rate/s", "reconcile", "eager", "divergent");
  std::printf("%5s | %11s %11s | %11s | %11s | %11s\n", "nodes", "Eq.(19)",
              "measured", "measured", "Eq.(12)", "slots");
  std::printf("------+-------------------------+-------------+----------"
              "---+------------\n");

  const std::vector<std::uint32_t> kNodes{1, 2, 3, 5, 8};
  std::vector<SimConfig> grid;
  for (std::uint32_t nodes : kNodes) {
    SimConfig config = base;
    config.nodes = nodes;
    grid.push_back(config);
  }
  std::vector<SimOutcome> outcomes = RunSweep(grid);
  std::vector<std::pair<double, double>> points;
  for (std::size_t i = 0; i < kNodes.size(); ++i) {
    const SimOutcome& out = outcomes[i];
    analytic::ModelParams p = ToModelParams(grid[i]);
    std::printf("%5u | %11.5f %11.5f | %11llu | %11.5f | %11llu\n",
                kNodes[i], analytic::LazyMasterDeadlockRate(p),
                out.deadlock_rate(),
                (unsigned long long)out.reconciliations,
                analytic::EagerDeadlockRate(p),
                (unsigned long long)out.divergent_slots);
    points.emplace_back(kNodes[i], out.deadlock_rate());
  }
  std::printf(
      "\nMeasured deadlock growth exponent: %.2f (model 2.00 — versus\n"
      "3.00 for eager). Reconciliations are identically zero: \"lazy-\n"
      "master systems have no reconciliation failures; rather, conflicts\n"
      "are resolved by waiting or deadlock\" (§5). Divergent slots decay\n"
      "to the in-flight refresh backlog (newer-wins convergence, not\n"
      "delusion).\n",
      FitPowerLawExponent(points));
}

}  // namespace tdr::bench

int main() { tdr::bench::Main(); }
